package tmsync

import (
	"tmsync/internal/harness"
	"tmsync/internal/mech"
)

// Differential checking: the cross-engine scenario harness of
// internal/harness, re-exported so library users can validate their own
// engine or mechanism changes the same way cmd/tmcheck does — run a
// deterministic concurrent scenario under every engine × mechanism pair
// and diff the observed final state against a sequential oracle.

// Scenario is one deterministic concurrent program with a sequential
// oracle, runnable under any engine × mechanism pair.
type Scenario = harness.Scenario

// ScenarioResult is the outcome of one engine × mechanism execution.
type ScenarioResult = harness.Result

// ScenarioObservation is a rendered snapshot of observable final state.
type ScenarioObservation = harness.Observation

// ScenarioGenConfig bounds GenerateScenario.
type ScenarioGenConfig = harness.GenConfig

// ScenarioReport aggregates results into pass/abort-rate tables.
type ScenarioReport = harness.Report

// Mechanism names one condition-synchronization technique.
type Mechanism = mech.Mechanism

// Mechanisms lists every mechanism in the paper's legend order.
var Mechanisms = mech.All

// GenerateScenario derives a complete random scenario from one seed; the
// same seed always yields the same scenario, so failures replay from a
// printed seed alone.
func GenerateScenario(seed uint64, cfg ScenarioGenConfig) *Scenario {
	return harness.Generate(seed, cfg)
}

// RunScenario executes s under all four engines × applicable mechanisms
// and diffs each execution against the sequential oracle.
func RunScenario(s *Scenario) []ScenarioResult { return harness.RunScenario(s) }

// ParsecScenarios registers the eight PARSEC concurrency skeletons as
// differential scenarios.
func ParsecScenarios(threads, scale int) []*Scenario {
	return harness.ParsecScenarios(threads, scale)
}

// DiffObservations returns the facts on which got deviates from want.
func DiffObservations(want, got ScenarioObservation) []string { return harness.Diff(want, got) }
