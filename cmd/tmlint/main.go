// Command tmlint runs the repo's static-analysis suite (internal/lint)
// over the named packages. It is the CI gate for the runtime's
// concurrency invariants: shard-lock ordering, atomic-field discipline,
// no blocking inside transactions, monotonic measurement timing,
// cache-line padding, and nil-guarded hooks — plus the flow-sensitive
// clock–version protocol checks built on internal/lint/flow (bumporder,
// commitstamp, extrecheck, lockverflow), which machine-check the
// serializability invariants the commit/rollback/extension paths rest
// on.
//
// Usage:
//
//	tmlint ./...
//	tmlint -tests ./...
//	tmlint -json ./... > tmlint.json
//	tmlint -list
//	tmlint -analyzers monoclock,padcheck ./internal/core/
//
// -tests also loads _test.go files (in-package and external test
// packages), closing the loader's historical test-tree blind spot; CI
// runs with it on. -json emits a machine-readable report on stdout:
// one object with ok/packages/analyzers and one entry per violation
// carrying the analyzer, file:line:col, message, and the //tm:
// directives in effect at the reported line.
//
// Exit status: 0 if clean, 1 if violations were reported, 2 on usage or
// load errors.
package main

import (
	"os"

	"tmsync/internal/lint"
)

func main() {
	os.Exit(lint.Run(os.Args[1:], os.Stdout, os.Stderr))
}
