// Command tmlint runs the repo's static-analysis suite (internal/lint)
// over the named packages. It is the CI gate for the runtime's
// concurrency invariants: shard-lock ordering, atomic-field discipline,
// no blocking inside transactions, monotonic measurement timing,
// cache-line padding, and nil-guarded hooks.
//
// Usage:
//
//	tmlint ./...
//	tmlint -list
//	tmlint -analyzers monoclock,padcheck ./internal/core/
//
// Exit status: 0 if clean, 1 if violations were reported, 2 on usage or
// load errors.
package main

import (
	"os"

	"tmsync/internal/lint"
)

func main() {
	os.Exit(lint.Run(os.Args[1:], os.Stdout, os.Stderr))
}
