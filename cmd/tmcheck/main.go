// Command tmcheck is the cross-engine differential checker: it generates
// randomized concurrent scenarios and runs each one under every TM engine
// (eager STM, lazy STM, simulated HTM, hybrid) × every applicable
// condition-synchronization mechanism, diffing the observed final state
// against a sequential oracle. Any deviation — state mismatch, token
// conservation failure, per-producer FIFO violation, or a wedged (lost
// wakeup) run — is reported with a one-line seed that reproduces it.
//
// Usage:
//
//	go run ./cmd/tmcheck -n 50 -seed 1          # 50 scenarios, all engines
//	go run ./cmd/tmcheck -n 1 -seed 123 -v      # replay one failure, verbose
//	go run ./cmd/tmcheck -budget 30s            # as many scenarios as fit
//	go run ./cmd/tmcheck -parsec -scale 2       # PARSEC skeletons instead
//	go run ./cmd/tmcheck -n 5 -inject           # prove the checker detects faults
//	go run ./cmd/tmcheck -n 15 -adaptive        # forced online stripe resizes (1->4->64->16)
//	go run ./cmd/tmcheck -n 15 -coalesce 8      # cross-commit wakeup coalescing (flush every 8)
//	go run ./cmd/tmcheck -n 15 -coalesce 8 -max-delay 2ms  # with the age-bound flush armed
//	go run ./cmd/tmcheck -n 15 -clock pof       # GV4 pass-on-CAS-failure commit clock
//	go run ./cmd/tmcheck -n 15 -clock deferred -ext  # GV5-style deferred clock + timestamp extension
//	go run ./cmd/tmcheck -n 20 -zipf 1.2        # Zipf-skewed key contention
//	go run ./cmd/tmcheck -n 20 -read-mostly     # read-mostly long transactions
//	go run ./cmd/tmcheck -n 10 -phases 20:counters,20:readmostly,10:map  # phase-shifting mix
//	go run ./cmd/tmcheck -n 5 -record traces/   # capture each run as a replayable trace
//	go run ./cmd/tmcheck -replay 'traces/*.trace'  # differential replay of recorded traces
//
// Mode flags are validated for coherence before anything runs: -stripes
// pins a static count and therefore contradicts -adaptive's forced resize
// schedule, -resize-every modifies only -adaptive, -unbatched
// (signal-at-claim delivery) contradicts -coalesce (a deferred scan IS a
// batch carried across commits), -max-delay ages the pending buffer
// -coalesce maintains, so it requires -coalesce and a positive duration,
// and -clock must name a known commit-clock mode (global, pof, deferred).
// -replay reruns committed traces, so it contradicts every flag that
// shapes generation (-seed, -n, -threads, -ops, -zipf, -read-mostly,
// -phases, -inject, -parsec, -record); knob flags remain allowed and
// override the trace's stamped knobs field by field, with the merged
// configuration re-validated. Nonsensical combinations exit 2 instead of
// silently running just one of the modes.
//
// Exit status is 0 iff every execution matched its oracle (inverted under
// -inject: the run fails if any injected fault goes undetected).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tmsync/internal/clock"
	"tmsync/internal/harness"
	"tmsync/internal/locktable"
	"tmsync/internal/mech"
	"tmsync/internal/mono"
	"tmsync/internal/trace"
)

func main() {
	n := flag.Int("n", 50, "number of randomized scenarios")
	seed := flag.Uint64("seed", 1, "base seed; scenario i uses seed+i, so any failure replays with -n 1 -seed <printed>")
	threads := flag.Int("threads", 0, "threads per scenario (0 = seed-derived 2-4)")
	ops := flag.Int("ops", 0, "approx ops per thread (0 = seed-derived 8-24)")
	budget := flag.Duration("budget", 0, "stop starting new scenarios after this much time (0 = no budget)")
	engine := flag.String("engine", "", "restrict to one engine (default: all four)")
	stripes := flag.Int("stripes", 0, "orec-table stripe count for every system (0 = default); any power of two must yield identical outcomes")
	adaptive := flag.Bool("adaptive", false, "force a deterministic online stripe-resize schedule (1 -> 4 -> 64 -> 16, cycling) while the suite runs; resizing is a pure performance mechanism, so outcomes must be identical")
	resizeEvery := flag.Int("resize-every", 10, "writer commits between forced resizes (with -adaptive)")
	unbatched := flag.Bool("unbatched", false, "signal-at-claim wakeup delivery instead of the per-commit batch; must yield identical outcomes")
	coalesce := flag.Int("coalesce", 0, "cross-commit wakeup coalescing: defer post-commit wake scans across up to this many adjacent commits per thread (0 = scan every commit); must yield identical outcomes")
	maxDelay := flag.Duration("max-delay", 0, "age bound on the coalesced pending buffer (with -coalesce): flush deferred wake scans older than this, including by the idle-owner backstop; must yield identical outcomes")
	clockMode := flag.String("clock", "", "commit-clock mode for every system: global (default), pof (pass-on-CAS-failure), or deferred (no per-commit clock bump); a pure timestamp-protocol knob, so outcomes must be identical")
	ext := flag.Bool("ext", false, "enable the eager engine's timestamp extension (read-time snapshot extension; other engines ignore it); must yield identical outcomes")
	only := flag.String("mech", "", "restrict to one mechanism (default: all applicable)")
	parsec := flag.Bool("parsec", false, "check the eight PARSEC skeletons instead of random scenarios")
	scale := flag.Int("scale", 1, "PARSEC workload scale (with -parsec)")
	inject := flag.Bool("inject", false, "inject a deliberate invariant violation into every scenario; exit 0 iff all are caught")
	zipf := flag.Float64("zipf", 0, "Zipf exponent for key selection in generated scenarios (0 = uniform); skews contention onto a few hot keys")
	readMostly := flag.Bool("read-mostly", false, "generate read-mostly long transactions (wide read scans with one commutative write)")
	phases := flag.String("phases", "", "phase-shifting workload schedule `ops:mix,ops:mix,...` (mixes: "+strings.Join(harness.Mixes, ", ")+")")
	record := flag.String("record", "", "record one execution of every scenario as a replayable trace into this `dir`")
	replay := flag.String("replay", "", "differentially replay the traces matching this `glob` instead of generating scenarios")
	verbose := flag.Bool("v", false, "per-scenario progress and the engine × mechanism breakdown")
	flag.Parse()

	// Flag-coherence validation. Each mode flag selects one experiment;
	// some overlap (coalescing under forced resizes is a meaningful
	// cross), others contradict each other outright. The contradictions
	// used to be accepted silently, with one flag winning arbitrarily — a
	// green run that never tested what the invocation claimed.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	resizeEveryExplicit, maxDelayExplicit := explicit["resize-every"], explicit["max-delay"]
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tmcheck: "+format+"\n", args...)
		os.Exit(2)
	}
	if *stripes < 0 || (*stripes > 0 && *stripes&(*stripes-1) != 0) || *stripes > locktable.DefaultSize {
		fail("-stripes %d must be a power of two in [1, %d] (or 0 for the default)", *stripes, locktable.DefaultSize)
	}
	if *coalesce < 0 {
		fail("-coalesce %d must be >= 0", *coalesce)
	}
	if *stripes > 0 && *adaptive {
		fail("-stripes pins a static stripe count and contradicts -adaptive's forced resize schedule; pick one")
	}
	if resizeEveryExplicit && !*adaptive {
		fail("-resize-every modifies -adaptive and does nothing alone; add -adaptive or drop it")
	}
	if *unbatched && *coalesce > 0 {
		fail("-unbatched (signal-at-claim delivery) contradicts -coalesce (a deferred scan is a batch carried across commits); pick one")
	}
	if maxDelayExplicit && *maxDelay <= 0 {
		fail("-max-delay %v must be a positive duration", *maxDelay)
	}
	if maxDelayExplicit && *coalesce == 0 {
		fail("-max-delay ages the pending buffer -coalesce maintains and does nothing alone; add -coalesce or drop it")
	}
	if *parsec && *inject {
		// Fault injection rewrites generated programs; the PARSEC
		// skeletons are fixed workloads with nothing to inject into.
		fail("-inject applies to randomized scenarios only, not -parsec")
	}
	if *zipf < 0 {
		fail("-zipf %g must be >= 0", *zipf)
	}
	if _, err := clock.ParseMode(*clockMode); err != nil {
		fail("-clock: %v", err)
	}
	for _, genFlag := range []string{"zipf", "read-mostly", "phases", "record"} {
		if explicit[genFlag] && *parsec {
			// The PARSEC skeletons are fixed workloads: nothing to skew,
			// reshape, or record as an op program.
			fail("-%s applies to randomized scenarios only, not -parsec", genFlag)
		}
	}
	if *readMostly && *phases != "" {
		fail("-read-mostly names a default mix and is ignored under -phases; put readmostly in the schedule instead")
	}
	var phaseSchedule []harness.Phase
	if *phases != "" {
		var err error
		if phaseSchedule, err = harness.ParsePhases(*phases); err != nil {
			fail("-phases: %v", err)
		}
	}
	if *replay != "" {
		// Replay reruns committed programs; every flag that shapes
		// generation would be silently ignored, so reject the combination.
		for _, genFlag := range []string{"seed", "n", "threads", "ops", "inject", "parsec", "scale", "zipf", "read-mostly", "phases", "record"} {
			if explicit[genFlag] {
				fail("-replay reruns recorded traces; -%s shapes generation and contradicts it", genFlag)
			}
		}
	}

	engines := harness.Engines
	if *engine != "" {
		ok := false
		for _, e := range harness.Engines {
			if e == *engine {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "tmcheck: unknown engine %q (have %s)\n", *engine, strings.Join(harness.Engines, ", "))
			os.Exit(2)
		}
		engines = []string{*engine}
	}

	knobs := harness.Knobs{Stripes: *stripes, Unbatched: *unbatched, CoalesceCommits: *coalesce, CoalesceMaxDelay: *maxDelay, ClockMode: *clockMode, TimestampExtension: *ext}
	if *adaptive {
		// The forced schedule drives the stripe count through growth,
		// large jumps, and shrinkage (1 -> 4 -> 64 -> 16, cycling) while
		// waiters sleep across the swaps; every engine x mechanism run
		// must still match the sequential oracle exactly.
		if *resizeEvery <= 0 {
			fail("-resize-every must be positive")
		}
		knobs.Stripes = 1 // start deliberately wrong: the old global table
		knobs.ResizeEvery = *resizeEvery
		knobs.ResizeSchedule = []int{4, 64, 16, 1}
	}

	var rep harness.Report
	start := mono.Now()
	scenarios := 0

	runOne := func(s *harness.Scenario, k harness.Knobs) {
		results := harness.RunScenarioKnobs(s, engines, mech.Mechanism(*only), k)
		rep.Add(results)
		scenarios++
		failed := 0
		for i := range results {
			if results[i].Failed() {
				failed++
				if !*inject {
					fmt.Println(results[i].String())
				}
			}
		}
		if *verbose {
			fmt.Printf("%-12s threads=%d runs=%d failed=%d\n", s.Name, s.Threads, len(results), failed)
		}
	}

	// recordOne captures one execution of s (first selected engine, first
	// applicable mechanism) and writes it as a trace file the -replay mode
	// and the committed-fixture suite can rerun.
	recordOne := func(s *harness.Scenario) {
		recMech := harness.MechsFor(engines[0])[0]
		if *only != "" {
			found := false
			for _, m := range harness.MechsFor(engines[0]) {
				if m == mech.Mechanism(*only) {
					found = true
				}
			}
			if !found {
				fail("-record: mechanism %q does not run on engine %q", *only, engines[0])
			}
			recMech = mech.Mechanism(*only)
		}
		tr, res, err := harness.Record(s, engines[0], recMech, knobs)
		if err != nil {
			fail("-record: %v", err)
		}
		rep.Add([]harness.Result{res})
		if res.Failed() && !*inject {
			fmt.Println(res.String())
		}
		path := filepath.Join(*record, s.Name+".trace")
		f, err := os.Create(path)
		if err != nil {
			fail("-record: %v", err)
		}
		if err := trace.Encode(f, tr); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fail("-record: writing %s: %v", path, err)
		}
		if *verbose {
			fmt.Printf("recorded %s (%d events)\n", path, len(tr.Events))
		}
	}

	switch {
	case *replay != "":
		files, err := filepath.Glob(*replay)
		if err != nil {
			fail("-replay: bad pattern %q: %v", *replay, err)
		}
		if len(files) == 0 {
			fail("-replay: %q matched no trace files", *replay)
		}
		sort.Strings(files)
		for _, file := range files {
			if *budget > 0 && start.Elapsed() > *budget {
				fmt.Printf("# budget %v exhausted before %s\n", *budget, file)
				break
			}
			f, err := os.Open(file)
			if err != nil {
				fail("-replay: %v", err)
			}
			tr, err := trace.Decode(f)
			f.Close()
			if err != nil {
				fail("-replay: %s: %v", file, err)
			}
			s, stamped, err := harness.ReplayTrace(tr)
			if err != nil {
				fail("-replay: %s: %v", file, err)
			}
			// Start from the trace's stamped knobs; explicit CLI knob flags
			// override field by field, and the merged configuration must
			// still be coherent — a stamp saying coalesce=8 plus an
			// -unbatched override is as contradictory as the flag pair.
			k := stamped
			if explicit["stripes"] {
				k.Stripes = knobs.Stripes
			}
			if explicit["unbatched"] {
				k.Unbatched = *unbatched
			}
			if explicit["coalesce"] {
				k.CoalesceCommits = *coalesce
			}
			if explicit["max-delay"] {
				k.CoalesceMaxDelay = *maxDelay
			}
			if explicit["clock"] {
				k.ClockMode = *clockMode
			}
			if explicit["ext"] {
				k.TimestampExtension = *ext
			}
			if explicit["adaptive"] {
				k.Stripes, k.ResizeEvery, k.ResizeSchedule = knobs.Stripes, knobs.ResizeEvery, knobs.ResizeSchedule
			}
			if k.Unbatched && k.CoalesceCommits > 0 {
				fail("-replay: %s: merged knobs %q are contradictory (unbatched with coalescing)", file, harness.EncodeKnobs(k))
			}
			if k.CoalesceMaxDelay > 0 && k.CoalesceCommits == 0 {
				fail("-replay: %s: merged knobs %q are contradictory (max-delay without coalescing)", file, harness.EncodeKnobs(k))
			}
			s.Name = filepath.Base(file)
			runOne(s, k)
		}
	case *parsec:
		for _, s := range harness.ParsecScenarios(*threads, *scale) {
			if *budget > 0 && start.Elapsed() > *budget {
				break
			}
			runOne(s, knobs)
		}
	default:
		if *record != "" {
			if err := os.MkdirAll(*record, 0o755); err != nil {
				fail("-record: %v", err)
			}
		}
		for i := 0; i < *n; i++ {
			if *budget > 0 && start.Elapsed() > *budget {
				fmt.Printf("# budget %v exhausted after %d of %d scenarios\n", *budget, i, *n)
				break
			}
			s := harness.Generate(*seed+uint64(i), harness.GenConfig{
				Threads:     *threads,
				Ops:         *ops,
				InjectFault: *inject,
				Zipf:        *zipf,
				ReadMostly:  *readMostly,
				Phases:      phaseSchedule,
			})
			runOne(s, knobs)
			if *record != "" {
				recordOne(s)
			}
		}
	}

	failures := rep.Failures()
	fmt.Printf("\n# %d scenario(s), %v elapsed\n", scenarios, start.Elapsed().Round(time.Millisecond))
	fmt.Print(rep.EngineTable())
	if rep.Runs() == 0 {
		// An OK verdict over zero executions would be vacuous — the
		// -engine/-mech filters selected an inapplicable combination
		// (e.g. retry-orig needs STM metadata the hardware engines lack).
		fmt.Printf("\nFAIL: no executions selected — mechanism %q does not run on the chosen engine(s)\n", *only)
		os.Exit(2)
	}
	if *verbose {
		fmt.Println()
		fmt.Print(rep.MechTable())
	}

	if *inject {
		// Detection check: every scenario carried a deliberate violation,
		// so every execution must have deviated from its oracle.
		if rep.AllPassed() {
			fmt.Println("\nFAIL: injected invariant violations went undetected")
			os.Exit(1)
		}
		fmt.Printf("\nOK: all injected violations caught (%d failing executions, as intended)\n", len(failures))
		if len(failures) > 0 {
			fmt.Printf("example: %s\n", failures[0].String())
		}
		return
	}
	if !rep.AllPassed() {
		fmt.Printf("\nFAIL: %d execution(s) deviated from the sequential oracle\n", len(failures))
		os.Exit(1)
	}
	fmt.Println("\nOK: every engine x mechanism pair matched the sequential oracle")
}
