// Command tmcheck is the cross-engine differential checker: it generates
// randomized concurrent scenarios and runs each one under every TM engine
// (eager STM, lazy STM, simulated HTM, hybrid) × every applicable
// condition-synchronization mechanism, diffing the observed final state
// against a sequential oracle. Any deviation — state mismatch, token
// conservation failure, per-producer FIFO violation, or a wedged (lost
// wakeup) run — is reported with a one-line seed that reproduces it.
//
// Usage:
//
//	go run ./cmd/tmcheck -n 50 -seed 1          # 50 scenarios, all engines
//	go run ./cmd/tmcheck -n 1 -seed 123 -v      # replay one failure, verbose
//	go run ./cmd/tmcheck -budget 30s            # as many scenarios as fit
//	go run ./cmd/tmcheck -parsec -scale 2       # PARSEC skeletons instead
//	go run ./cmd/tmcheck -n 5 -inject           # prove the checker detects faults
//	go run ./cmd/tmcheck -n 15 -adaptive        # forced online stripe resizes (1->4->64->16)
//	go run ./cmd/tmcheck -n 15 -coalesce 8      # cross-commit wakeup coalescing (flush every 8)
//	go run ./cmd/tmcheck -n 15 -coalesce 8 -max-delay 2ms  # with the age-bound flush armed
//
// Mode flags are validated for coherence before anything runs: -stripes
// pins a static count and therefore contradicts -adaptive's forced resize
// schedule, -resize-every modifies only -adaptive, -unbatched
// (signal-at-claim delivery) contradicts -coalesce (a deferred scan IS a
// batch carried across commits), and -max-delay ages the pending buffer
// -coalesce maintains, so it requires -coalesce and a positive duration.
// Nonsensical combinations exit 2 instead of silently running just one of
// the modes.
//
// Exit status is 0 iff every execution matched its oracle (inverted under
// -inject: the run fails if any injected fault goes undetected).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tmsync/internal/harness"
	"tmsync/internal/locktable"
	"tmsync/internal/mech"
)

func main() {
	n := flag.Int("n", 50, "number of randomized scenarios")
	seed := flag.Uint64("seed", 1, "base seed; scenario i uses seed+i, so any failure replays with -n 1 -seed <printed>")
	threads := flag.Int("threads", 0, "threads per scenario (0 = seed-derived 2-4)")
	ops := flag.Int("ops", 0, "approx ops per thread (0 = seed-derived 8-24)")
	budget := flag.Duration("budget", 0, "stop starting new scenarios after this much time (0 = no budget)")
	engine := flag.String("engine", "", "restrict to one engine (default: all four)")
	stripes := flag.Int("stripes", 0, "orec-table stripe count for every system (0 = default); any power of two must yield identical outcomes")
	adaptive := flag.Bool("adaptive", false, "force a deterministic online stripe-resize schedule (1 -> 4 -> 64 -> 16, cycling) while the suite runs; resizing is a pure performance mechanism, so outcomes must be identical")
	resizeEvery := flag.Int("resize-every", 10, "writer commits between forced resizes (with -adaptive)")
	unbatched := flag.Bool("unbatched", false, "signal-at-claim wakeup delivery instead of the per-commit batch; must yield identical outcomes")
	coalesce := flag.Int("coalesce", 0, "cross-commit wakeup coalescing: defer post-commit wake scans across up to this many adjacent commits per thread (0 = scan every commit); must yield identical outcomes")
	maxDelay := flag.Duration("max-delay", 0, "age bound on the coalesced pending buffer (with -coalesce): flush deferred wake scans older than this, including by the idle-owner backstop; must yield identical outcomes")
	only := flag.String("mech", "", "restrict to one mechanism (default: all applicable)")
	parsec := flag.Bool("parsec", false, "check the eight PARSEC skeletons instead of random scenarios")
	scale := flag.Int("scale", 1, "PARSEC workload scale (with -parsec)")
	inject := flag.Bool("inject", false, "inject a deliberate invariant violation into every scenario; exit 0 iff all are caught")
	verbose := flag.Bool("v", false, "per-scenario progress and the engine × mechanism breakdown")
	flag.Parse()

	// Flag-coherence validation. Each mode flag selects one experiment;
	// some overlap (coalescing under forced resizes is a meaningful
	// cross), others contradict each other outright. The contradictions
	// used to be accepted silently, with one flag winning arbitrarily — a
	// green run that never tested what the invocation claimed.
	resizeEveryExplicit, maxDelayExplicit := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "resize-every":
			resizeEveryExplicit = true
		case "max-delay":
			maxDelayExplicit = true
		}
	})
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tmcheck: "+format+"\n", args...)
		os.Exit(2)
	}
	if *stripes < 0 || (*stripes > 0 && *stripes&(*stripes-1) != 0) || *stripes > locktable.DefaultSize {
		fail("-stripes %d must be a power of two in [1, %d] (or 0 for the default)", *stripes, locktable.DefaultSize)
	}
	if *coalesce < 0 {
		fail("-coalesce %d must be >= 0", *coalesce)
	}
	if *stripes > 0 && *adaptive {
		fail("-stripes pins a static stripe count and contradicts -adaptive's forced resize schedule; pick one")
	}
	if resizeEveryExplicit && !*adaptive {
		fail("-resize-every modifies -adaptive and does nothing alone; add -adaptive or drop it")
	}
	if *unbatched && *coalesce > 0 {
		fail("-unbatched (signal-at-claim delivery) contradicts -coalesce (a deferred scan is a batch carried across commits); pick one")
	}
	if maxDelayExplicit && *maxDelay <= 0 {
		fail("-max-delay %v must be a positive duration", *maxDelay)
	}
	if maxDelayExplicit && *coalesce == 0 {
		fail("-max-delay ages the pending buffer -coalesce maintains and does nothing alone; add -coalesce or drop it")
	}
	if *parsec && *inject {
		// Fault injection rewrites generated programs; the PARSEC
		// skeletons are fixed workloads with nothing to inject into.
		fail("-inject applies to randomized scenarios only, not -parsec")
	}

	engines := harness.Engines
	if *engine != "" {
		ok := false
		for _, e := range harness.Engines {
			if e == *engine {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "tmcheck: unknown engine %q (have %s)\n", *engine, strings.Join(harness.Engines, ", "))
			os.Exit(2)
		}
		engines = []string{*engine}
	}

	knobs := harness.Knobs{Stripes: *stripes, Unbatched: *unbatched, CoalesceCommits: *coalesce, CoalesceMaxDelay: *maxDelay}
	if *adaptive {
		// The forced schedule drives the stripe count through growth,
		// large jumps, and shrinkage (1 -> 4 -> 64 -> 16, cycling) while
		// waiters sleep across the swaps; every engine x mechanism run
		// must still match the sequential oracle exactly.
		if *resizeEvery <= 0 {
			fail("-resize-every must be positive")
		}
		knobs.Stripes = 1 // start deliberately wrong: the old global table
		knobs.ResizeEvery = *resizeEvery
		knobs.ResizeSchedule = []int{4, 64, 16, 1}
	}

	var rep harness.Report
	start := time.Now()
	scenarios := 0

	runOne := func(s *harness.Scenario) {
		results := harness.RunScenarioKnobs(s, engines, mech.Mechanism(*only), knobs)
		rep.Add(results)
		scenarios++
		failed := 0
		for i := range results {
			if results[i].Failed() {
				failed++
				if !*inject {
					fmt.Println(results[i].String())
				}
			}
		}
		if *verbose {
			fmt.Printf("%-12s threads=%d runs=%d failed=%d\n", s.Name, s.Threads, len(results), failed)
		}
	}

	if *parsec {
		for _, s := range harness.ParsecScenarios(*threads, *scale) {
			if *budget > 0 && time.Since(start) > *budget {
				break
			}
			runOne(s)
		}
	} else {
		for i := 0; i < *n; i++ {
			if *budget > 0 && time.Since(start) > *budget {
				fmt.Printf("# budget %v exhausted after %d of %d scenarios\n", *budget, i, *n)
				break
			}
			runOne(harness.Generate(*seed+uint64(i), harness.GenConfig{
				Threads:     *threads,
				Ops:         *ops,
				InjectFault: *inject,
			}))
		}
	}

	failures := rep.Failures()
	fmt.Printf("\n# %d scenario(s), %v elapsed\n", scenarios, time.Since(start).Round(time.Millisecond))
	fmt.Print(rep.EngineTable())
	if rep.Runs() == 0 {
		// An OK verdict over zero executions would be vacuous — the
		// -engine/-mech filters selected an inapplicable combination
		// (e.g. retry-orig needs STM metadata the hardware engines lack).
		fmt.Printf("\nFAIL: no executions selected — mechanism %q does not run on the chosen engine(s)\n", *only)
		os.Exit(2)
	}
	if *verbose {
		fmt.Println()
		fmt.Print(rep.MechTable())
	}

	if *inject {
		// Detection check: every scenario carried a deliberate violation,
		// so every execution must have deviated from its oracle.
		if rep.AllPassed() {
			fmt.Println("\nFAIL: injected invariant violations went undetected")
			os.Exit(1)
		}
		fmt.Printf("\nOK: all injected violations caught (%d failing executions, as intended)\n", len(failures))
		if len(failures) > 0 {
			fmt.Printf("example: %s\n", failures[0].String())
		}
		return
	}
	if !rep.AllPassed() {
		fmt.Printf("\nFAIL: %d execution(s) deviated from the sequential oracle\n", len(failures))
		os.Exit(1)
	}
	fmt.Println("\nOK: every engine x mechanism pair matched the sequential oracle")
}
