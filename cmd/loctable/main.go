// Command loctable regenerates Table 2.1: for each of the eight PARSEC
// benchmarks, the number of unique condition-synchronization points and
// the lines of code each mechanism contributes at those points, versus the
// lines of lock/condvar code it replaces.
//
// The numbers are derived from this repository's real sources: sync points
// are the `// syncpoint(<bench>)` markers in internal/parsecsim, each
// classified by the primitive it uses (queue wait, counter wait, barrier),
// and per-mechanism line counts are measured from the mechanism-specific
// branches of those primitives (internal/parsecsim/kit.go and the bounded
// buffer of internal/buffer). "Removed" is the Pthreads (lock + condvar)
// code those branches replace.
//
// Usage: go run ./cmd/loctable [-src internal/parsecsim]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// primitive kinds a sync point can use.
const (
	kindQueueGet = "queue-get"
	kindQueuePut = "queue-put"
	kindCounter  = "counter-wait"
	kindBarrier  = "barrier"
)

var benchNames = []string{
	"bodytrack", "dedup", "facesim", "ferret",
	"fluidanimate", "raytrace", "streamcluster", "x264",
}

func main() {
	src := flag.String("src", "internal/parsecsim", "parsecsim source directory")
	bufSrc := flag.String("bufsrc", "internal/buffer", "bounded-buffer source directory")
	flag.Parse()

	points, err := collectSyncPoints(*src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	kitLines, err := measureKit(filepath.Join(*src, "kit.go"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bufLines, err := measureBuffer(filepath.Join(*bufSrc, "buffer.go"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Lines contributed by mechanism m at a sync point of the given kind.
	cost := func(m, kind string) int {
		switch kind {
		case kindQueueGet:
			return bufLines[m]["get"]
		case kindQueuePut:
			return bufLines[m]["put"]
		case kindCounter:
			return kitLines[m]["counter"]
		case kindBarrier:
			return kitLines[m]["barrier"]
		}
		return 0
	}

	fmt.Println("# Table 2.1: lines of code added and removed per condition")
	fmt.Println("# synchronization mechanism (derived from this repository's sources).")
	fmt.Println("# Parenthesized: unique condition synchronization points.")
	fmt.Println()
	fmt.Printf("%-20s %9s %7s %7s %9s\n", "Benchmark", "WaitPred", "Await", "Retry", "Removed")
	for _, name := range benchNames {
		pts := points[name]
		if len(pts) == 0 {
			fmt.Fprintf(os.Stderr, "no sync points found for %s\n", name)
			os.Exit(1)
		}
		var wp, aw, rt, rm int
		for _, kind := range pts {
			wp += cost("waitpred", kind)
			aw += cost("await", kind)
			rt += cost("retry", kind)
			rm += cost("pthreads", kind)
		}
		fmt.Printf("%-20s %9d %7d %7d %9d\n",
			fmt.Sprintf("%s (%d)", name, len(pts)), wp, aw, rt, rm)
	}
}

var markerRe = regexp.MustCompile(`//\s*syncpoint\((\w+)\)`)

// collectSyncPoints scans the workload sources for syncpoint markers and
// classifies each by the primitive used on the marker's line or the next.
func collectSyncPoints(dir string) (map[string][]string, error) {
	out := make(map[string][]string)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		lines, err := readLines(f)
		if err != nil {
			return nil, err
		}
		for i, line := range lines {
			m := markerRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			kind := classify(lines, i)
			if kind == "" {
				return nil, fmt.Errorf("%s:%d: cannot classify sync point", f, i+1)
			}
			out[m[1]] = append(out[m[1]], kind)
		}
	}
	return out, nil
}

func classify(lines []string, at int) string {
	for j := at; j < len(lines) && j <= at+3; j++ {
		l := lines[j]
		switch {
		case strings.Contains(l, ".Get("):
			return kindQueueGet
		case strings.Contains(l, ".Put("):
			return kindQueuePut
		case strings.Contains(l, ".WaitAtLeast("):
			return kindCounter
		case strings.Contains(l, ".Arrive("):
			return kindBarrier
		}
	}
	return ""
}

// measureKit counts the mechanism-specific lines of the Counter and
// Barrier wait paths in kit.go: the `case mech.X:` branches plus, for
// Pthreads, the dedicated lock/condvar blocks.
func measureKit(path string) (map[string]map[string]int, error) {
	lines, err := readLines(path)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]int{}
	add := func(m, prim string, n int) {
		if out[m] == nil {
			out[m] = map[string]int{}
		}
		out[m][prim] += n
	}
	// Locate the two wait methods and count per-mechanism case branches.
	for _, prim := range []struct{ name, method string }{
		{"counter", "func (c *Counter) WaitAtLeast"},
		{"barrier", "func (b *Barrier) Arrive"},
	} {
		body := methodBody(lines, prim.method)
		if body == nil {
			return nil, fmt.Errorf("%s: method %q not found", path, prim.method)
		}
		for m, n := range caseBranchLines(body) {
			add(m, prim.name, n)
		}
		add("pthreads", prim.name, pthreadsBlockLines(body))
	}
	return out, nil
}

// measureBuffer counts the lines of each per-mechanism Put/Get variant of
// the bounded buffer (Figure 2.2) and of the lock-based baseline.
func measureBuffer(path string) (map[string]map[string]int, error) {
	lines, err := readLines(path)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]int{}
	set := func(m, prim string, n int) {
		if out[m] == nil {
			out[m] = map[string]int{}
		}
		out[m][prim] = n
	}
	variants := map[string][2]string{
		"waitpred":   {"PutPred", "GetPred"},
		"await":      {"PutAwait", "GetAwait"},
		"retry":      {"PutRetry", "GetRetry"},
		"retry-orig": {"PutOrig", "GetOrig"},
		"restart":    {"PutRestart", "GetRestart"},
		"tmcondvar":  {"PutCondVar", "GetCondVar"},
	}
	for m, pg := range variants {
		put := methodBody(lines, "func (b *TMBuffer) "+pg[0])
		get := methodBody(lines, "func (b *TMBuffer) "+pg[1])
		if put == nil || get == nil {
			return nil, fmt.Errorf("%s: methods for %s not found", path, m)
		}
		set(m, "put", countCode(put))
		set(m, "get", countCode(get))
	}
	set("pthreads", "put", countCode(methodBody(lines, "func (b *LockBuffer) Put")))
	set("pthreads", "get", countCode(methodBody(lines, "func (b *LockBuffer) Get")))
	return out, nil
}

// methodBody returns the lines of the first method whose declaration
// starts with prefix, up to its closing brace.
func methodBody(lines []string, prefix string) []string {
	for i, l := range lines {
		if strings.HasPrefix(l, prefix) {
			depth := 0
			for j := i; j < len(lines); j++ {
				depth += strings.Count(lines[j], "{") - strings.Count(lines[j], "}")
				if depth == 0 && j > i {
					return lines[i : j+1]
				}
			}
		}
	}
	return nil
}

var caseRe = regexp.MustCompile(`case mech\.(\w+):`)

// caseBranchLines counts the code lines in each `case mech.X:` branch.
func caseBranchLines(body []string) map[string]int {
	out := map[string]int{}
	names := map[string]string{
		"TMCondVar": "tmcondvar", "WaitPred": "waitpred", "Await": "await",
		"Retry": "retry", "RetryOrig": "retry-orig", "Restart": "restart",
	}
	cur := ""
	for _, l := range body {
		if m := caseRe.FindStringSubmatch(l); m != nil {
			cur = names[m[1]]
			out[cur]++ // the case label itself
			continue
		}
		t := strings.TrimSpace(l)
		if strings.HasPrefix(t, "case ") || strings.HasPrefix(t, "default:") || t == "}" {
			cur = ""
			continue
		}
		if cur != "" && t != "" && !strings.HasPrefix(t, "//") {
			out[cur]++
		}
	}
	return out
}

// pthreadsBlockLines counts code inside `if ... mech.Pthreads {` guards.
func pthreadsBlockLines(body []string) int {
	n := 0
	depth := 0
	for _, l := range body {
		if strings.Contains(l, "mech.Pthreads") && strings.Contains(l, "{") {
			depth = 1
			continue
		}
		if depth > 0 {
			depth += strings.Count(l, "{") - strings.Count(l, "}")
			if depth <= 0 {
				depth = 0
				continue
			}
			t := strings.TrimSpace(l)
			if t != "" && !strings.HasPrefix(t, "//") {
				n++
			}
		}
	}
	return n
}

// countCode counts non-blank, non-comment lines of a method body,
// excluding the declaration and closing brace.
func countCode(body []string) int {
	if body == nil {
		return 0
	}
	n := 0
	for _, l := range body[1 : len(body)-1] {
		t := strings.TrimSpace(l)
		if t != "" && !strings.HasPrefix(t, "//") {
			n++
		}
	}
	return n
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines, sc.Err()
}
