// Command tmbench is the seeded benchmark pipeline: it sweeps every TM
// engine × condition-synchronization mechanism over the repository's
// workloads (lane-partitioned bounded buffer + the eight PARSEC
// concurrency skeletons) across a goroutine ladder, runs a bounded-buffer
// stripe sweep (1 stripe versus 64) to measure the post-commit wakeup
// cost the sharded orec table removes, runs the Retry-Orig contention
// sweep (a token ring of Retry-Orig sleepers at 8 and 16 goroutines,
// sharded/global × batched/unbatched) to measure the registry-scan and
// signal-delivery cost the sharded registry and the per-commit signal
// batch remove, runs the adaptive-vs-static sweep (the same wakeup-bound
// cells with the online stripe controller enabled and a deliberately
// wrong one-stripe start, judged against the best static configuration),
// runs the cross-commit coalescing sweep (the tight-loop producer workload
// at CoalesceCommits 0/2/8 plus buffer and Retry-Orig regression guards),
// runs the wake-latency sweep (the tightloop/idle workload, whose
// producers go idle on a plain channel with wake scans still pending so
// only the CoalesceMaxDelay age backstop can wake the sleeping consumers;
// p99 sleep-to-signal latency must land within the bound plus slack),
// runs the commit-clock sweep (the tight-loop and bounded-buffer
// workloads on the STM engines at 8/16/32 goroutines under every
// Config.ClockMode protocol — global fetch-and-add, pass-on-CAS-failure,
// deferred — measuring commits/sec and shared clock-word operations per
// commit), and writes one machine-readable JSON report (schema
// tmsync-bench/1; see README "Benchmark pipeline").
//
// Usage:
//
//	go run ./cmd/tmbench -seed 1 -threads 1,2,4,8          # full sweep -> BENCH_PR9.json
//	go run ./cmd/tmbench -quick -out /tmp/bench.json       # reduced ops (CI, smoke)
//	go run ./cmd/tmbench -workloads buffer -mechs retry    # narrow the axes
//	go run ./cmd/tmbench -diff BENCH_PR6.json              # trajectory diff vs a prior report
//	go run ./cmd/tmbench -max-delay 10ms                   # tighter wake-latency bound
//	go run ./cmd/tmbench -clock-threads 8,16,32            # commit-clock scaling rungs
//
// The trajectory diff defaults to the previous PR's committed report and
// is skipped with a note when that file is absent; an explicitly named
// -diff report that cannot be loaded is fatal.
//
// Exit status is non-zero if any workload self-check fails (a PARSEC
// checksum deviating from its sequential reference, or ring-token
// conservation breaking in the Retry-Orig sweep) or the report cannot be
// written.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tmsync/internal/mech"
	"tmsync/internal/perf"
)

func main() {
	seed := flag.Uint64("seed", 1, "seed for produced value streams (recorded in the report)")
	threadsFlag := flag.String("threads", "1,2,4,8", "comma-separated goroutine counts")
	enginesFlag := flag.String("engines", "", "comma-separated engines (default: all four)")
	mechsFlag := flag.String("mechs", "", "comma-separated mechanisms (default: all TM mechanisms)")
	workloadsFlag := flag.String("workloads", "", "comma-separated workloads (default: buffer + all parsec/<name>)")
	ops := flag.Int("ops", 0, "bounded-buffer operations per worker (0 = default)")
	bufCap := flag.Int("cap", 0, "bounded-buffer capacity per lane (0 = default)")
	scale := flag.Int("scale", 0, "PARSEC workload scale (0 = default)")
	trials := flag.Int("trials", 1, "trials per cell; each is one report point")
	sweepFlag := flag.String("sweep-stripes", "1,64", "stripe counts for the bounded-buffer stripe sweep and the Retry-Orig sweep")
	origThreadsFlag := flag.String("orig-threads", "8,16", "goroutine counts for the Retry-Orig contention sweep (empty = skip)")
	origPasses := flag.Int("orig-passes", 0, "token hand-offs per Retry-Orig ring worker (0 = default)")
	adaptiveThreadsFlag := flag.String("adaptive-threads", "8", "goroutine counts for the adaptive-vs-static stripe sweep (empty = skip)")
	adaptiveOrigPasses := flag.Int("adaptive-orig-passes", 0, "token hand-offs per ring worker in the adaptive Retry-Orig cells (0 = default)")
	coalesceThreadsFlag := flag.String("coalesce-threads", "8", "goroutine counts for the cross-commit wakeup coalescing sweep (empty = skip)")
	coalesceKsFlag := flag.String("coalesce-ks", "", "CoalesceCommits values for the tight-loop cells (default 0,2,8; 0 is always included)")
	tightloopOps := flag.Int("tightloop-ops", 0, "tight-loop producer commits per lane in the coalesce sweep (0 = default)")
	latencyThreadsFlag := flag.String("latency-threads", "8", "goroutine counts for the wake-latency sweep (empty = skip)")
	maxDelay := flag.Duration("max-delay", 0, "CoalesceMaxDelay for the wake-latency cells (0 = default 25ms)")
	latencyRounds := flag.Int("latency-rounds", 0, "burst/claim hand-offs per lane in the wake-latency cells (0 = default)")
	clockThreadsFlag := flag.String("clock-threads", "8,16,32", "goroutine counts for the commit-clock sweep (empty = skip)")
	clockModesFlag := flag.String("clock-modes", "", "comma-separated ClockMode protocols for the clock cells (default global,pof,deferred; global is always included)")
	noBaseline := flag.Bool("no-baseline", false, "skip the Pthreads lock+condvar baseline rows")
	quick := flag.Bool("quick", false, "reduced operation counts (CI and smoke tests)")
	out := flag.String("out", "BENCH_PR9.json", "output path for the JSON report")
	diff := flag.String("diff", "BENCH_PR6.json", "prior report to diff wake-checks/commit and signals/commit against (\"\" = skip); a missing file is fatal only when -diff was given explicitly")
	verbose := flag.Bool("v", false, "per-point progress lines")
	flag.Parse()
	diffExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "diff" {
			diffExplicit = true
		}
	})

	o := perf.Options{
		Seed:               *seed,
		Threads:            parseInts(*threadsFlag, "threads"),
		BufferOps:          *ops,
		BufferCap:          *bufCap,
		Scale:              *scale,
		Trials:             *trials,
		SweepStripes:       parseInts(*sweepFlag, "sweep-stripes"),
		OrigThreads:        parseInts(*origThreadsFlag, "orig-threads"),
		OrigPasses:         *origPasses,
		AdaptiveThreads:    parseInts(*adaptiveThreadsFlag, "adaptive-threads"),
		AdaptiveOrigPasses: *adaptiveOrigPasses,
		CoalesceThreads:    parseInts(*coalesceThreadsFlag, "coalesce-threads"),
		CoalesceKs:         parseIntsMin(*coalesceKsFlag, "coalesce-ks", 0),
		TightloopOps:       *tightloopOps,
		LatencyThreads:     parseInts(*latencyThreadsFlag, "latency-threads"),
		LatencyMaxDelay:    *maxDelay,
		LatencyRounds:      *latencyRounds,
		ClockThreads:       parseInts(*clockThreadsFlag, "clock-threads"),
		Baseline:           !*noBaseline,
	}
	if *clockModesFlag != "" {
		o.ClockModes = strings.Split(*clockModesFlag, ",")
	}
	if *enginesFlag != "" {
		o.Engines = strings.Split(*enginesFlag, ",")
	}
	if *mechsFlag != "" {
		for _, m := range strings.Split(*mechsFlag, ",") {
			o.Mechs = append(o.Mechs, mech.Mechanism(m))
		}
	}
	if *workloadsFlag != "" {
		o.Workloads = strings.Split(*workloadsFlag, ",")
	}
	if *quick {
		if o.BufferOps == 0 {
			o.BufferOps = 100
		}
		if o.Scale == 0 {
			o.Scale = 1
		}
		if o.OrigPasses == 0 {
			o.OrigPasses = 50
		}
		if o.AdaptiveOrigPasses == 0 {
			o.AdaptiveOrigPasses = 300
		}
		if o.TightloopOps == 0 {
			o.TightloopOps = 200
		}
		if o.LatencyRounds == 0 {
			o.LatencyRounds = 4
		}
	}

	// Load the prior report before the sweep so a bad -diff path fails
	// fast instead of discarding an hour of measurement. The default diff
	// target is the previous PR's committed report, which a fresh
	// checkout may legitimately lack — skip with a note in that case, and
	// fail only when the user named a report explicitly.
	var prior *perf.Report
	if *diff != "" {
		var err error
		prior, err = perf.LoadReport(*diff)
		if err != nil {
			if diffExplicit {
				fmt.Fprintln(os.Stderr, "tmbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "tmbench: no trajectory diff: %v (pass -diff explicitly to make this fatal)\n", err)
		}
	}
	if *verbose {
		o.Progress = func(done, total int, p perf.Point) {
			fmt.Printf("[%4d/%4d] %-20s %-7s %-10s t=%d stripes=%d %.3fs\n",
				done, total, p.Workload, p.Engine, p.Mech, p.Threads, p.Stripes, p.Seconds)
		}
	}

	rep, err := perf.Run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmbench:", err)
		os.Exit(1)
	}

	// The latency verdict's throughput guard needs the prior report:
	// bounding wake latency must not cost the tight loop the throughput
	// the previous PR's coalesce sweep measured. Vacuously true when
	// either side lacks the number (no prior report, or a narrowed run
	// that skipped the coalesce sweep).
	if lv := rep.LatencyVerdict; lv != nil {
		if cv := rep.CoalesceVerdict; cv != nil {
			lv.TightloopThroughput = cv.TightloopThroughputOn
			// Only a prior verdict at the same rung and K is comparable:
			// a -quick run at 2 goroutines against the committed 8-goroutine
			// report would fail on the axes, not the change under test.
			if prior != nil && prior.CoalesceVerdict != nil &&
				prior.CoalesceVerdict.Threads == cv.Threads && prior.CoalesceVerdict.K == cv.K {
				lv.TightloopThroughputPrior = prior.CoalesceVerdict.TightloopThroughputOn
			}
		}
		if lv.TightloopThroughputPrior > 0 && lv.TightloopThroughput > 0 {
			lv.ThroughputWithin10Pct = lv.TightloopThroughput >= 0.90*lv.TightloopThroughputPrior
		}
		lv.Holds = lv.WithinBound && lv.ThroughputWithin10Pct
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tmbench:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark report: %d points + %d stripe-sweep points + %d orig-sweep points + %d adaptive points + %d coalesce points + %d latency points + %d clock points -> %s\n",
		len(rep.Points), len(rep.StripeSweep), len(rep.OrigSweep), len(rep.AdaptiveSweep), len(rep.CoalesceSweep), len(rep.LatencySweep), len(rep.ClockSweep), *out)
	if v := rep.StripeVerdict; v != nil {
		fmt.Printf("stripe sweep (%s, %d goroutines): wakeup checks per commit %.2f @ %d stripe(s) vs %.2f @ %d stripes\n",
			v.Workload, v.Threads, v.WakeupsPerCommitLow, v.LowStripes, v.WakeupsPerCommitHigh, v.HighStripes)
		if v.Improved {
			fmt.Println("stripe verdict: IMPROVED (sharded wakeup index visits fewer waiters per commit)")
		} else {
			fmt.Println("stripe verdict: no improvement measured on this run")
		}
	}
	if v := rep.OrigVerdict; v != nil {
		fmt.Printf("retry-orig sweep (%s, %d goroutines): %s vs %s\n", v.Workload, v.Threads, v.Baseline, v.Candidate)
		fmt.Printf("  orig-scan checks per commit %.3f -> %.3f, signals per commit %.3f -> %.3f, throughput %.0f -> %.0f ops/s\n",
			v.OrigChecksPerCommitBaseline, v.OrigChecksPerCommitCandidate,
			v.SignalsPerCommitBaseline, v.SignalsPerCommitCandidate,
			v.ThroughputBaseline, v.ThroughputCandidate)
		if v.Improved {
			fmt.Println("retry-orig verdict: IMPROVED (sharded registry scans fewer sleepers; batched delivery signals no more)")
		} else {
			fmt.Println("retry-orig verdict: no improvement measured on this run")
		}
	}
	if v := rep.AdaptiveVerdict; v != nil {
		fmt.Printf("adaptive sweep (%d goroutines, start %d stripe, bounds [1, %d]):\n", v.Threads, v.StartStripes, v.MaxStripes)
		fmt.Printf("  buffer   wake-checks/commit: best static %.3f @ %d stripes, adaptive %.3f (within 10%%: %v)\n",
			v.BufferChecksPerCommitBest, v.BufferBestStaticStripes, v.BufferChecksPerCommitAdap, v.BufferWithin10Pct)
		fmt.Printf("  origring orig-checks/commit: best static %.3f @ %d stripes, adaptive %.3f (within 10%%: %v)\n",
			v.OrigChecksPerCommitBest, v.OrigBestStaticStripes, v.OrigChecksPerCommitAdap, v.OrigWithin10Pct)
		if v.Converged {
			fmt.Println("adaptive verdict: CONVERGED (controller lands within 10% of the best static configuration)")
		} else {
			fmt.Println("adaptive verdict: did not land within 10% of the best static configuration on this run")
		}
	}
	if v := rep.CoalesceVerdict; v != nil {
		fmt.Printf("coalesce sweep (%d goroutines, K=%d vs per-commit scans):\n", v.Threads, v.K)
		fmt.Printf("  tightloop wake-checks/commit: %.3f -> %.3f, throughput %.0f -> %.0f ops/s (improved: %v)\n",
			v.TightloopChecksPerCommitOff, v.TightloopChecksPerCommitOn,
			v.TightloopThroughputOff, v.TightloopThroughputOn, v.TightloopImproved)
		fmt.Printf("  buffer    wake-checks/commit: %.3f -> %.3f (no regression: %v)\n",
			v.BufferChecksPerCommitOff, v.BufferChecksPerCommitOn, v.BufferNoRegression)
		fmt.Printf("  origring  orig-checks/commit: %.3f -> %.3f (no regression: %v)\n",
			v.OrigChecksPerCommitOff, v.OrigChecksPerCommitOn, v.OrigNoRegression)
		if v.Improved {
			fmt.Println("coalesce verdict: IMPROVED (tight-loop scans coalesced; blocking workloads unharmed)")
		} else {
			fmt.Println("coalesce verdict: no improvement measured on this run")
		}
	}
	if v := rep.LatencyVerdict; v != nil {
		fmt.Printf("latency sweep (%s, %d goroutines, K=%d, max delay %v + %v slack):\n",
			v.Workload, v.Threads, v.K, time.Duration(v.MaxDelayNs), time.Duration(v.SlackNs))
		fmt.Printf("  sleep-to-signal latency over %d sleeps (worst cell): p50 %v, p99 %v, max %v (within bound: %v)\n",
			v.Sleeps, time.Duration(v.P50Ns), time.Duration(v.P99Ns), time.Duration(v.MaxNs), v.WithinBound)
		fmt.Printf("  tightloop throughput %.0f vs prior %.0f ops/s (within 10%%: %v)\n",
			v.TightloopThroughput, v.TightloopThroughputPrior, v.ThroughputWithin10Pct)
		if v.Holds {
			fmt.Println("latency verdict: HOLDS (no waiter sleeps past the age bound while its notifier idles)")
		} else {
			fmt.Println("latency verdict: did not hold on this run")
		}
	}
	if v := rep.ClockVerdict; v != nil {
		fmt.Printf("clock sweep (%d goroutines, modes %s):\n", v.Threads, strings.Join(v.Modes, ","))
		if v.BestMode == "" {
			fmt.Println("clock verdict: only the global mode was measured; nothing to compare")
		} else {
			fmt.Printf("  tightloop commits/sec: global %.0f vs %s %.0f (improved: %v)\n",
				v.TightloopCommitsPerSecGlobal, v.BestMode, v.TightloopCommitsPerSecBest, v.TightloopImproved)
			fmt.Printf("  buffer    commits/sec: global %.0f vs %s %.0f (improved: %v)\n",
				v.BufferCommitsPerSecGlobal, v.BestMode, v.BufferCommitsPerSecBest, v.BufferImproved)
			fmt.Printf("  clock-word ops/commit: global %.4f vs %s %.4f (reduced: %v)\n",
				v.ClockOpsPerCommitGlobal, v.TrafficMode, v.ClockOpsPerCommitTraffic, v.TrafficReduced)
			if v.Improved {
				fmt.Printf("clock verdict: IMPROVED (%s commits faster than the global clock on both workloads; %s issues less clock-word traffic)\n", v.BestMode, v.TrafficMode)
			} else {
				fmt.Println("clock verdict: no improvement measured on this run")
			}
		}
	}
	if prior != nil {
		fmt.Printf("trajectory diff against %s:\n", *diff)
		for _, line := range perf.DiffReports(prior, rep) {
			fmt.Println("  " + line)
		}
	}
}

func parseInts(s, flagName string) []int {
	return parseIntsMin(s, flagName, 1)
}

// parseIntsMin parses a comma-separated int list rejecting entries below
// min (-coalesce-ks legitimately includes 0, thread ladders do not).
func parseIntsMin(s, flagName string, min int) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			fmt.Fprintf(os.Stderr, "tmbench: bad -%s entry %q\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
