// Command tmstress soak-tests a TM engine and condition-synchronization
// mechanism combination: producers and consumers hammer a tiny bounded
// buffer (the configuration most prone to lost wakeups) for a fixed
// duration, then conservation is verified: every produced element must be
// consumed exactly once. Useful for shaking out races unit tests miss.
//
// Usage:
//
//	go run ./cmd/tmstress -engine hybrid -mech retry -threads 8 -seconds 10
//	go run ./cmd/tmstress -all -seconds 2   # every engine × mechanism
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tmsync/internal/bench"
	"tmsync/internal/buffer"
	"tmsync/internal/mech"
	"tmsync/internal/mono"
	"tmsync/internal/tm"
)

// pill is the shutdown marker; consumers exit when they dequeue it.
const pill = ^uint64(0)

func main() {
	engine := flag.String("engine", "eager", "TM engine: eager | lazy | htm | hybrid")
	mechName := flag.String("mech", "retry", "mechanism (see internal/mech)")
	threads := flag.Int("threads", 8, "total workers (half produce, half consume)")
	seconds := flag.Float64("seconds", 5, "soak duration per configuration")
	capacity := flag.Int("cap", 2, "buffer capacity (small = maximal contention)")
	all := flag.Bool("all", false, "soak every engine × mechanism combination")
	flag.Parse()

	failed := false
	if *all {
		for _, e := range []string{"eager", "lazy", "htm", "hybrid"} {
			for _, m := range bench.MechsFor(e) {
				if !soak(e, m, *threads, *capacity, *seconds) {
					failed = true
				}
			}
		}
	} else {
		if !soak(*engine, mech.Mechanism(*mechName), *threads, *capacity, *seconds) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// soak runs the workload for the given duration and verifies conservation.
// Shutdown protocol: producers stop producing on the flag; once all have
// exited, the main thread feeds one pill per consumer (consumers exit only
// on a pill, so blocked producers always find room); leftovers are drained
// and counted at the end.
func soak(engine string, m mech.Mechanism, threads, capacity int, seconds float64) bool {
	producers := max(threads/2, 1)
	consumers := max(threads-producers, 1)

	var produced, consumed atomic.Uint64
	var stop atomic.Bool
	var wgProd, wgCons sync.WaitGroup

	var put func(thr *tm.Thread, v uint64)
	var get func(thr *tm.Thread) uint64
	var count func(thr *tm.Thread) int
	newThread := func() *tm.Thread { return nil }
	var tmStats func() map[string]uint64

	if m == mech.Pthreads {
		b := buffer.NewLock(capacity)
		put = func(_ *tm.Thread, v uint64) { b.Put(v) }
		get = func(_ *tm.Thread) uint64 { return b.Get() }
		count = func(_ *tm.Thread) int { return b.Count() }
	} else {
		s, err := bench.NewSystem(engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		b := buffer.NewTM(capacity)
		newThread = func() *tm.Thread { return s.NewThread() }
		put = func(thr *tm.Thread, v uint64) { b.PutMech(thr, m, v) }
		get = func(thr *tm.Thread) uint64 { return b.GetMech(thr, m) }
		count = func(thr *tm.Thread) int {
			var n int
			thr.Atomic(func(tx *tm.Tx) { n = int(b.Count(tx)) })
			return n
		}
		tmStats = s.Stats.Snapshot
	}

	start := mono.Now()
	for p := 0; p < producers; p++ {
		wgProd.Add(1)
		go func() {
			defer wgProd.Done()
			thr := newThread()
			for n := uint64(1); !stop.Load(); n++ {
				put(thr, n)
				produced.Add(1)
			}
		}()
	}
	for c := 0; c < consumers; c++ {
		wgCons.Add(1)
		go func() {
			defer wgCons.Done()
			thr := newThread()
			for {
				if get(thr) == pill {
					return
				}
				consumed.Add(1)
			}
		}()
	}

	time.Sleep(time.Duration(seconds * float64(time.Second)))
	stop.Store(true)
	wgProd.Wait()
	main := newThread()
	for c := 0; c < consumers; c++ {
		put(main, pill)
	}
	wgCons.Wait()
	// Drain leftovers: committed produces whose consumes never ran, plus
	// any pills that raced past an exiting consumer.
	for count(main) > 0 {
		if get(main) != pill {
			consumed.Add(1)
		}
	}

	var stats map[string]uint64
	if tmStats != nil {
		stats = tmStats()
	}
	return report(engine, m, start.Elapsed(), produced.Load(), consumed.Load(), stats)
}

func report(engine string, m mech.Mechanism, elapsed time.Duration, produced, consumed uint64, stats map[string]uint64) bool {
	ok := produced == consumed
	status := "OK"
	if !ok {
		status = "LOST ELEMENTS"
	}
	fmt.Printf("%-7s %-11s %6.1fs  produced=%-10d consumed=%-10d %s\n",
		engine, m, elapsed.Seconds(), produced, consumed, status)
	if stats != nil {
		fmt.Printf("        commits=%d aborts=%d deschedules=%d wakeups=%d serializations=%d\n",
			stats["commits"], stats["aborts"], stats["deschedules"], stats["wakeups"], stats["serializations"])
	}
	return ok
}
