// Command boundedbuffer regenerates the bounded-buffer microbenchmark
// figures of the evaluation (Figure 2.3 eager STM, Figure 2.4 lazy STM,
// Figure 2.5 HTM): a grid of producer/consumer configurations × buffer
// sizes, with one timing column per condition-synchronization mechanism.
//
// Usage:
//
//	go run ./cmd/boundedbuffer -engine eager [-ops 1048576] [-trials 5] [-quick]
//
// The paper's full experiment uses 2^20 elements and 5 trials; -quick
// shrinks both for a fast sanity pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"tmsync/internal/bench"
	"tmsync/internal/stats"
)

func main() {
	engine := flag.String("engine", "eager", "TM engine: eager | lazy | htm | hybrid")
	ops := flag.Int("ops", 1<<20, "elements produced (and consumed) per trial")
	trials := flag.Int("trials", 5, "trials per configuration (values are averaged)")
	quick := flag.Bool("quick", false, "small run: 2^14 ops, 2 trials, reduced grid")
	flag.Parse()

	if _, err := bench.NewSystem(*engine); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	threadCounts := []int{1, 2, 4, 8}
	sizes := []int{4, 16, 128}
	if *quick {
		// -quick shrinks whatever the user did not set explicitly, so
		// "-quick -ops 2048" means a quick grid at 2048 ops.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["ops"] {
			*ops = 1 << 14
		}
		if !set["trials"] {
			*trials = 2
		}
		threadCounts = []int{1, 2}
	}
	figure, ok := map[string]string{"eager": "2.3", "lazy": "2.4", "htm": "2.5"}[*engine]
	if !ok {
		figure = "ext (HyTM extension, no paper counterpart)"
	}
	fmt.Printf("# Figure %s: bounded buffer performance with %s\n", figure, *engine)
	fmt.Printf("# %d elements produced+consumed per trial, buffer half-filled, %d trials\n", *ops, *trials)
	fmt.Printf("# values: seconds (mean±stddev)\n\n")

	mechs := bench.MechsFor(*engine)
	for _, p := range threadCounts {
		for _, c := range threadCounts {
			fmt.Printf("## p%d-c%d\n", p, c)
			fmt.Printf("%-8s", "bufsize")
			for _, m := range mechs {
				fmt.Printf(" %16s", m)
			}
			fmt.Println()
			for _, size := range sizes {
				fmt.Printf("%-8d", size)
				for _, m := range mechs {
					ts, err := bench.RunBuffer(bench.BufferConfig{
						Engine: *engine, Mech: m,
						Producers: p, Consumers: c, BufferSize: size,
						TotalOps: *ops, Trials: *trials,
					})
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					fmt.Printf(" %16s", stats.Summarize(ts))
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
}
