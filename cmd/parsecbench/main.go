// Command parsecbench regenerates the PARSEC-skeleton figures of the
// evaluation (Figure 2.6 eager STM, Figure 2.7 lazy STM, Figure 2.8 HTM):
// for each of the eight condition-variable PARSEC benchmarks, execution
// time versus thread count (1–8) with one series per mechanism.
//
// Usage:
//
//	go run ./cmd/parsecbench -engine lazy [-scale 4] [-trials 5] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"tmsync/internal/bench"
	"tmsync/internal/parsecsim"
	"tmsync/internal/stats"
)

func main() {
	engine := flag.String("engine", "eager", "TM engine: eager | lazy | htm | hybrid")
	scale := flag.Int("scale", 4, "workload scale factor")
	trials := flag.Int("trials", 5, "trials per configuration")
	benchName := flag.String("bench", "", "run only this benchmark (default: all eight)")
	quick := flag.Bool("quick", false, "small run: scale 1, 2 trials, threads {1,2,4}")
	flag.Parse()

	if _, err := bench.NewSystem(*engine); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	threads := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if *quick {
		// -quick shrinks whatever the user did not set explicitly, so
		// "-quick -trials 1" means a quick grid with one trial.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["scale"] {
			*scale = 1
		}
		if !set["trials"] {
			*trials = 2
		}
		threads = []int{1, 2, 4}
	}
	figure, ok := map[string]string{"eager": "2.6", "lazy": "2.7", "htm": "2.8"}[*engine]
	if !ok {
		figure = "ext (HyTM extension, no paper counterpart)"
	}
	fmt.Printf("# Figure %s: PARSEC performance with %s\n", figure, *engine)
	fmt.Printf("# scale %d, %d trials; values: seconds (mean±stddev)\n\n", *scale, *trials)

	mechs := bench.MechsFor(*engine)
	for _, b := range parsecsim.Benchmarks {
		if *benchName != "" && b.Name != *benchName {
			continue
		}
		fmt.Printf("## %s\n", b.Name)
		fmt.Printf("%-8s", "threads")
		for _, m := range mechs {
			fmt.Printf(" %16s", m)
		}
		fmt.Println()
		var checksum uint64
		first := true
		for _, n := range threads {
			if !b.ValidThreads(n) {
				continue
			}
			fmt.Printf("%-8d", n)
			for _, m := range mechs {
				ts, cs, err := bench.RunParsec(bench.ParsecConfig{
					Engine: *engine, Mech: m, Benchmark: b.Name,
					Threads: n, Scale: *scale, Trials: *trials,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if first {
					checksum = cs
					first = false
				} else if cs != checksum {
					fmt.Fprintf(os.Stderr, "%s: checksum mismatch (%x vs %x) for %s@%d\n", b.Name, cs, checksum, m, n)
					os.Exit(1)
				}
				fmt.Printf(" %16s", stats.Summarize(ts))
			}
			fmt.Println()
		}
		fmt.Printf("checksum %x (identical across all mechanisms)\n\n", checksum)
	}
}
