// Package mono is the repository's single blessed source of elapsed-time
// measurement. Every duration that can end up in a committed artifact — a
// BENCH report rate, a harness Result.Duration, a wake-latency sample —
// must be derived from a mono.Time, never from raw wall-clock reads: a
// wall-clock step (NTP adjustment, suspend/resume) between two time.Now
// calls once corrupted a committed BENCH report, which is why the tmlint
// monoclock analyzer forbids time.Now/time.Since outside this package
// unless the call site carries a //tm:wallclock directive.
//
// The package is a thin veneer over the runtime's monotonic clock:
// time.Now captures a monotonic reading alongside the wall reading, and
// time.Since subtracts on the monotonic half. Wrapping the reading in an
// opaque Time keeps callers from mixing it back into wall-clock
// arithmetic (no Add, no After, no Format).
package mono

import "time"

// Time is one monotonic-clock reading. The zero Time is the zero wall
// instant with no monotonic reading; always obtain Times from Now.
type Time struct {
	t time.Time
}

// Now captures a monotonic reading.
func Now() Time {
	return Time{t: time.Now()} //tm:wallclock — the one blessed capture site; only the monotonic half is ever used
}

// Elapsed returns the time that has passed since the reading was taken.
// It is non-negative and immune to wall-clock steps.
func (t Time) Elapsed() time.Duration {
	d := time.Since(t.t) //tm:wallclock — subtracts on the monotonic half of the reading
	if d < 0 {
		return 0
	}
	return d
}

// Timed runs fn and returns how long it took.
func Timed(fn func()) time.Duration {
	start := Now()
	fn()
	return start.Elapsed()
}
