package mono

import (
	"testing"
	"time"
)

func TestElapsedIsNonNegativeAndGrows(t *testing.T) {
	start := Now()
	if d := start.Elapsed(); d < 0 {
		t.Fatalf("Elapsed() = %v, want >= 0", d)
	}
	time.Sleep(time.Millisecond)
	if d := start.Elapsed(); d < time.Millisecond {
		t.Fatalf("Elapsed() = %v after 1ms sleep, want >= 1ms", d)
	}
}

func TestTimedCoversTheCallable(t *testing.T) {
	d := Timed(func() { time.Sleep(2 * time.Millisecond) })
	if d < 2*time.Millisecond {
		t.Fatalf("Timed() = %v, want >= 2ms", d)
	}
}

func TestZeroTimeElapsedClampsAtZero(t *testing.T) {
	// The zero Time has no monotonic reading; Elapsed falls back to wall
	// subtraction, which is huge but must never be negative.
	var z Time
	if d := z.Elapsed(); d < 0 {
		t.Fatalf("zero Time Elapsed() = %v, want >= 0", d)
	}
}
