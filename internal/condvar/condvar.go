// Package condvar implements transaction-safe condition variables
// ("TMCondVar" in the evaluation), following the semantics of Wang et
// al. [7]: Wait commits the in-flight transaction at the wait point —
// breaking its atomicity and making partial effects visible — enqueues the
// calling thread FIFO, sleeps, and then re-executes the atomic block from
// the top (the explicit while-loop of Listing 2). Signal and Broadcast
// issued inside a transaction are deferred until that transaction commits,
// so a signal can never escape from an attempt that later aborts.
package condvar

import (
	"tmsync/internal/sem"
	"tmsync/internal/spin"
	"tmsync/internal/tm"
)

// Var is a transaction-safe condition variable.
type Var struct {
	mu    spin.Lock
	queue []*waiter

	// waitseq is transactional state written by every Wait before its
	// punctuation commit. The write forces the commit onto the validating
	// writer path, so a waiter whose condition check raced with a
	// signalling commit aborts and re-checks instead of sleeping against
	// a stale snapshot — the transactional analogue of enqueuing under
	// the monitor lock.
	waitseq uint64
}

type waiter struct {
	s *sem.Sem
}

// New returns an empty condition variable.
func New() *Var { return &Var{} }

// WaitingLen reports the number of queued waiters (tests and stats).
func (v *Var) WaitingLen() int {
	v.mu.Lock()
	n := len(v.queue)
	v.mu.Unlock()
	return n
}

func (v *Var) enqueue(w *waiter) {
	v.mu.Lock()
	v.queue = append(v.queue, w)
	v.mu.Unlock()
}

func (v *Var) dequeueSpecific(w *waiter) {
	v.mu.Lock()
	for i, x := range v.queue {
		if x == w {
			v.queue = append(v.queue[:i], v.queue[i+1:]...)
			break
		}
	}
	v.mu.Unlock()
}

func (v *Var) popOne() *waiter {
	v.mu.Lock()
	if len(v.queue) == 0 {
		v.mu.Unlock()
		return nil
	}
	w := v.queue[0]
	v.queue = v.queue[1:]
	v.mu.Unlock()
	return w
}

func (v *Var) popAll() []*waiter {
	v.mu.Lock()
	out := v.queue
	v.queue = nil
	v.mu.Unlock()
	return out
}

// Wait commits the current transaction's effects at the wait point (the
// atomicity break that distinguishes condition variables from Retry,
// §1.2), sleeps until signalled, and restarts the atomic block. The waiter
// is enqueued before the commit, so a signaller whose state change
// conflicts with this transaction either aborts this commit (and the block
// re-checks its condition) or finds the waiter queued — no lost wakeups.
func (v *Var) Wait(tx *tm.Tx) {
	// Discard any token left over from an earlier sleep cycle (a ghost
	// waiter popped by a racing Signal after this thread withdrew, or a
	// late batched wakeup from a Deschedule cycle the thread departed)
	// before this waiter is enqueued and becomes signallable. The thread
	// holds no published waiter of any kind here, so a buffered token can
	// only be stale; consumed later by the sleep below, it would fire a
	// spurious wakeup with the condition unestablished.
	tx.Thr.Sem.TryDrain()
	w := &waiter{s: tx.Thr.Sem}
	v.enqueue(w)
	var wrote bool
	func() {
		defer func() {
			if r := recover(); r != nil {
				// The sequence bump or punctuation commit aborted;
				// withdraw the queue entry and let the driver retry the
				// whole block. Leaving it queued would leak a stale
				// waiter that a later Signal would consume.
				v.dequeueSpecific(w)
				panic(r)
			}
		}()
		tx.Write(&v.waitseq, tx.Read(&v.waitseq)+1)
		wrote = tx.DidWrite()
		tx.Sys.Engine.Commit(tx)
	}()
	// The attempt committed: finalize deferred frees, keep allocations,
	// and detach deferred actions before the driver's abort-path reset
	// (which would otherwise undo them) runs. The write set is copied
	// into the signal itself: the deferred actions below may commit their
	// own transactions before Handle's post-commit wake scan runs, and
	// per-thread or descriptor state would be overwritten by then.
	tx.Sys.FreeBlocks(tx.Frees)
	tx.Frees = tx.Frees[:0]
	tx.Mallocs = tx.Mallocs[:0]
	deferred := tx.OnCommit
	tx.OnCommit = nil
	panic(waitSignal{
		v:            v,
		w:            w,
		wrote:        wrote,
		deferred:     deferred,
		gen:          tx.TableView.Gen,
		writeOrecs:   append([]uint32(nil), tx.WriteOrecs...),
		writeStripes: append([]uint32(nil), tx.WriteStripes...),
	})
}

type waitSignal struct {
	v        *Var
	w        *waiter
	wrote    bool
	deferred []func()

	// writeOrecs/writeStripes carry the punctuation commit's captured
	// write set to the post-commit wake scan in Handle; gen is the
	// orec-table stripe geometry they were named under (an online resize
	// between the punctuation commit and the scan makes the hook
	// re-derive or full-scan, exactly as for an ordinary commit).
	gen          uint64
	writeOrecs   []uint32
	writeStripes []uint32
}

// Handle accounts for the punctuation commit, runs the transaction's
// deferred signals, sleeps, and resumes the block from the top.
func (s waitSignal) Handle(tx *tm.Tx) tm.Outcome {
	sys := tx.Sys
	if s.wrote {
		sys.Stats.Commits.Add(1)
	} else {
		sys.Stats.ROCommits.Add(1)
	}
	for _, f := range s.deferred {
		f()
	}
	if s.wrote && sys.PostCommit != nil {
		sys.PostCommit(tx.Thr, s.gen, s.writeOrecs, s.writeStripes)
	}
	// Force any coalesced wake scans out before sleeping — including the
	// punctuation commit's own scan, which the hook above may just have
	// deferred. The driver already flushed before this handler ran, but
	// that was before the punctuation commit was accounted; without this
	// flush a deferred scan (and the wakeups it owes) would sleep with us.
	tx.Thr.FlushPending(tm.FlushBlock)
	sys.SemWait(s.w.s)
	// Withdraw the queue entry if a stale coalesced token woke us before a
	// signaller popped it. Leaving it behind would let a later Signal be
	// spent on a "ghost" waiter that is no longer sleeping — a lost wakeup
	// for whoever should have received that signal.
	s.v.dequeueSpecific(s.w)
	tx.Attempts = 0
	return tm.OutcomeRetryNow
}

// Signal wakes one queued waiter, deferred until tx commits.
func (v *Var) Signal(tx *tm.Tx) {
	tx.OnCommit = append(tx.OnCommit, v.SignalNow)
}

// Broadcast wakes all queued waiters, deferred until tx commits.
func (v *Var) Broadcast(tx *tm.Tx) {
	tx.OnCommit = append(tx.OnCommit, v.BroadcastNow)
}

// SignalNow wakes one queued waiter immediately (non-transactional use).
func (v *Var) SignalNow() {
	if w := v.popOne(); w != nil {
		w.s.Signal()
	}
}

// BroadcastNow wakes all queued waiters immediately (non-transactional use).
func (v *Var) BroadcastNow() {
	for _, w := range v.popAll() {
		w.s.Signal()
	}
}
