package condvar_test

import (
	"sync"
	"testing"
	"time"

	"tmsync/internal/mono"

	"tmsync/internal/condvar"
	"tmsync/internal/htm"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

func systems() map[string]*tm.System {
	return map[string]*tm.System{
		"eager": tm.NewSystem(tm.Config{Quiesce: true}, eager.New),
		"lazy":  tm.NewSystem(tm.Config{Quiesce: true}, lazy.New),
		"htm":   tm.NewSystem(tm.Config{}, htm.New),
	}
}

func forEach(t *testing.T, fn func(t *testing.T, sys *tm.System)) {
	t.Helper()
	for name, sys := range systems() {
		t.Run(name, func(t *testing.T) { fn(t, sys) })
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	start := mono.Now()
	for !cond() {
		if start.Elapsed() > 5*time.Second {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWaitSignalHandoff(t *testing.T) {
	forEach(t, func(t *testing.T, sys *tm.System) {
		cv := condvar.New()
		var ready, out uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				v := tx.Read(&ready)
				if v == 0 {
					cv.Wait(tx)
				}
				out = v
			})
			close(done)
		}()
		waitCond(t, "queued waiter", func() bool { return cv.WaitingLen() == 1 })
		sig := sys.NewThread()
		sig.Atomic(func(tx *tm.Tx) {
			tx.Write(&ready, 5)
			cv.Signal(tx)
		})
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke")
		}
		if out != 5 {
			t.Fatalf("out = %d, want 5", out)
		}
	})
}

func TestWaitBreaksAtomicity(t *testing.T) {
	// The defining difference from Retry: effects before the Wait commit
	// and become visible to other threads while the waiter sleeps.
	forEach(t, func(t *testing.T, sys *tm.System) {
		cv := condvar.New()
		var partial, gate uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				g := tx.Read(&gate)
				tx.Write(&partial, tx.Read(&partial)+1)
				if g == 0 {
					cv.Wait(tx)
				}
			})
			close(done)
		}()
		waitCond(t, "queued waiter", func() bool { return cv.WaitingLen() == 1 })
		obs := sys.NewThread()
		var seen uint64
		obs.Atomic(func(tx *tm.Tx) { seen = tx.Read(&partial) })
		if seen != 1 {
			t.Fatalf("partial effect not visible during wait: saw %d, want 1", seen)
		}
		obs.Atomic(func(tx *tm.Tx) { tx.Write(&gate, 1) })
		cv.SignalNow()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke")
		}
	})
}

func TestSignalDeferredUntilCommit(t *testing.T) {
	// A transaction that signals and then aborts must not have signalled.
	forEach(t, func(t *testing.T, sys *tm.System) {
		cv := condvar.New()
		var x uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&x) == 0 {
					cv.Wait(tx)
				}
			})
			close(done)
		}()
		waitCond(t, "queued waiter", func() bool { return cv.WaitingLen() == 1 })
		sig := sys.NewThread()
		tries := 0
		sig.Atomic(func(tx *tm.Tx) {
			tries++
			cv.Signal(tx)
			if tries == 1 {
				tx.Abort(tm.AbortExplicit)
			}
			tx.Write(&x, 1)
		})
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("committed signal lost")
		}
		if tries != 2 {
			t.Fatalf("tries = %d", tries)
		}
	})
}

func TestBroadcastWakesAll(t *testing.T) {
	forEach(t, func(t *testing.T, sys *tm.System) {
		cv := condvar.New()
		var gate uint64
		const n = 5
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				thr.Atomic(func(tx *tm.Tx) {
					if tx.Read(&gate) == 0 {
						cv.Wait(tx)
					}
				})
			}()
		}
		waitCond(t, "all queued", func() bool { return cv.WaitingLen() == n })
		sig := sys.NewThread()
		sig.Atomic(func(tx *tm.Tx) {
			tx.Write(&gate, 1)
			cv.Broadcast(tx)
		})
		ch := make(chan struct{})
		go func() { wg.Wait(); close(ch) }()
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("broadcast left %d waiters queued", cv.WaitingLen())
		}
	})
}

func TestSignalNoWaitersIsNoop(t *testing.T) {
	cv := condvar.New()
	cv.SignalNow()
	cv.BroadcastNow()
	if cv.WaitingLen() != 0 {
		t.Fatal("queue corrupted")
	}
}

func TestWaitWithPriorWritesPublishesThem(t *testing.T) {
	// Punctuation commit must publish writes made before the Wait even
	// when the engine buffers them (lazy, HTM).
	forEach(t, func(t *testing.T, sys *tm.System) {
		cv := condvar.New()
		var a, b, gate uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				g := tx.Read(&gate)
				tx.Write(&a, 10)
				tx.Write(&b, 20)
				if g == 0 {
					cv.Wait(tx)
				}
			})
			close(done)
		}()
		waitCond(t, "queued", func() bool { return cv.WaitingLen() == 1 })
		obs := sys.NewThread()
		var sa, sb uint64
		obs.Atomic(func(tx *tm.Tx) { sa, sb = tx.Read(&a), tx.Read(&b) })
		if sa != 10 || sb != 20 {
			t.Fatalf("punctuation commit lost writes: a=%d b=%d", sa, sb)
		}
		obs.Atomic(func(tx *tm.Tx) { tx.Write(&gate, 1) })
		cv.SignalNow()
		<-done
	})
}
