package buffer_test

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tmsync/internal/mono"

	"tmsync/internal/buffer"
	"tmsync/internal/core"
	"tmsync/internal/htm"
	"tmsync/internal/hybrid"
	"tmsync/internal/mem"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

func newSys(kind string) *tm.System {
	var sys *tm.System
	switch kind {
	case "eager":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, eager.New)
	case "lazy":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, lazy.New)
	case "htm":
		sys = tm.NewSystem(tm.Config{}, htm.New)
	case "hybrid":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, hybrid.New)
	}
	core.Enable(sys)
	return sys
}

var allEngines = []string{"eager", "lazy", "htm", "hybrid"}

// mechsFor returns the transactional mechanisms applicable to an engine
// (Retry-Orig is STM-only, as in the paper's figures).
func mechsFor(kind string) []buffer.Mechanism {
	if kind == "htm" || kind == "hybrid" {
		out := make([]buffer.Mechanism, 0, len(buffer.TMMechanisms)-1)
		for _, m := range buffer.TMMechanisms {
			if m != buffer.RetryOrig {
				out = append(out, m)
			}
		}
		return out
	}
	return buffer.TMMechanisms
}

func TestLockBufferFIFO(t *testing.T) {
	b := buffer.NewLock(4)
	for i := uint64(1); i <= 4; i++ {
		b.Put(i)
	}
	for i := uint64(1); i <= 4; i++ {
		if got := b.Get(); got != i {
			t.Fatalf("Get = %d, want %d", got, i)
		}
	}
	if b.Count() != 0 {
		t.Fatalf("count = %d", b.Count())
	}
}

func TestLockBufferBlocksWhenFull(t *testing.T) {
	b := buffer.NewLock(2)
	b.Put(1)
	b.Put(2)
	done := make(chan struct{})
	go func() { b.Put(3); close(done) }()
	select {
	case <-done:
		t.Fatal("Put on a full buffer did not block")
	case <-time.After(30 * time.Millisecond):
	}
	if got := b.Get(); got != 1 {
		t.Fatalf("Get = %d", got)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Put never completed after Get")
	}
}

func TestTMBufferFIFOSingleThread(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			sys := newSys(kind)
			for _, m := range mechsFor(kind) {
				t.Run(string(m), func(t *testing.T) {
					b := buffer.NewTM(8)
					thr := sys.NewThread()
					for i := uint64(1); i <= 8; i++ {
						b.PutMech(thr, m, i)
					}
					for i := uint64(1); i <= 8; i++ {
						if got := b.GetMech(thr, m); got != i {
							t.Fatalf("Get = %d, want %d", got, i)
						}
					}
				})
			}
		})
	}
}

func TestPrefill(t *testing.T) {
	sys := newSys("eager")
	b := buffer.NewTM(8)
	b.Prefill([]uint64{7, 8, 9})
	thr := sys.NewThread()
	thr.Atomic(func(tx *tm.Tx) {
		if b.Count(tx) != 3 {
			t.Errorf("count = %d", b.Count(tx))
		}
	})
	for _, want := range []uint64{7, 8, 9} {
		if got := b.GetRetry(thr); got != want {
			t.Fatalf("Get = %d, want %d", got, want)
		}
	}
	// Wrap-around after prefill: next produce lands at slot 3.
	b.PutRetry(thr, 100)
	if got := b.GetRetry(thr); got != 100 {
		t.Fatalf("Get after wrap = %d", got)
	}
}

// runProducersConsumers drives p producers and c consumers moving total
// elements through b with mechanism m, and checks conservation: every
// produced value is consumed exactly once.
func runProducersConsumers(t *testing.T, sys *tm.System, m buffer.Mechanism, capacity, p, c, total int) {
	t.Helper()
	b := buffer.NewTM(capacity)
	var wg sync.WaitGroup
	consumed := make([][]uint64, c)
	perProd := total / p
	perCons := total / c
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := sys.NewThread()
			for k := 0; k < perProd; k++ {
				b.PutMech(thr, m, uint64(id*perProd+k)+1)
			}
		}(i)
	}
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := sys.NewThread()
			out := make([]uint64, 0, perCons)
			for k := 0; k < perCons; k++ {
				out = append(out, b.GetMech(thr, m))
			}
			consumed[id] = out
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("%s: producer/consumer run wedged", m)
	}
	seen := make(map[uint64]bool, total)
	for _, out := range consumed {
		for _, v := range out {
			if v == 0 {
				t.Fatal("consumed a zero (uninitialized slot)")
			}
			if seen[v] {
				t.Fatalf("value %d consumed twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != total {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), total)
	}
}

// stressTotal scales a stress iteration count: full counts by default,
// reduced short-mode variants so `go test -short` stays fast while still
// exercising every code path.
func stressTotal(full int) int {
	if testing.Short() {
		// Round to a multiple of 60 so the total stays divisible by every
		// producer/consumer count the callers use.
		s := full / 10
		s -= s % 60
		return max(s, 120)
	}
	return full
}

func TestProducerConsumerAllMechanisms(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			for _, m := range mechsFor(kind) {
				t.Run(string(m), func(t *testing.T) {
					sys := newSys(kind)
					runProducersConsumers(t, sys, m, 4, 2, 2, stressTotal(2000))
				})
			}
		})
	}
}

func TestProducerConsumerImbalanced(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			for _, pc := range [][2]int{{1, 4}, {4, 1}} {
				sys := newSys(kind)
				runProducersConsumers(t, sys, buffer.Retry, 4, pc[0], pc[1], stressTotal(2000))
			}
		})
	}
}

func TestTinyBufferHighContention(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			for _, m := range []buffer.Mechanism{buffer.Retry, buffer.WaitPred, buffer.Await, buffer.TMCondVar} {
				t.Run(string(m), func(t *testing.T) {
					sys := newSys(kind)
					runProducersConsumers(t, sys, m, 1, 3, 3, stressTotal(900))
				})
			}
		})
	}
}

func TestComposeRetryIsAtomic(t *testing.T) {
	// Algorithm 3 under Retry: the observer must never see inprogress set,
	// and the composition must consume two consecutively produced
	// elements (here: the two only elements, in FIFO order).
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			sys := newSys(kind)
			b := buffer.NewTM(8)
			var inprogress mem.Var
			type pair struct{ a, b uint64 }
			res := make(chan pair, 1)
			go func() {
				thr := sys.NewThread()
				x, y := b.Produce1Consume2Retry(thr, &inprogress, 77)
				res <- pair{x, y}
			}()
			obs := sys.NewThread()
			violations := 0
			start := mono.Now()
			fed := false
			for {
				var ip uint64
				obs.Atomic(func(tx *tm.Tx) { ip = tx.Read(inprogress.Addr()) })
				if ip != 0 {
					violations++
				}
				if !fed && sys.Stats.Deschedules.Load() > 0 {
					// The composer is asleep (second consume found the
					// buffer empty and unrolled everything). Feed it.
					obs.Atomic(func(tx *tm.Tx) {
						if !b.Full(tx) {
							b.Put(tx, 55)
						}
					})
					fed = true
				}
				select {
				case p := <-res:
					if violations != 0 {
						t.Fatalf("observer saw inprogress set %d times under Retry", violations)
					}
					if !fed {
						t.Fatal("composition completed without waiting (test setup broken)")
					}
					if p.a != 55 || p.b != 77 {
						t.Fatalf("consumed (%d,%d), want FIFO (55,77)", p.a, p.b)
					}
					return
				default:
				}
				if start.Elapsed() > 5*time.Second {
					t.Fatal("composition never completed")
				}
			}
		})
	}
}

func TestComposeCondVarBreaksAtomicity(t *testing.T) {
	// The same composition over TMCondVar: the wait commits the outer
	// transaction, so the observer CAN see inprogress set — the dangerous
	// scenario of §2.2.1.
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			sys := newSys(kind)
			b := buffer.NewTM(8)
			var inprogress mem.Var
			done := make(chan struct{})
			go func() {
				thr := sys.NewThread()
				b.Produce1Consume2CondVar(thr, &inprogress, 77)
				close(done)
			}()
			obs := sys.NewThread()
			sawPartial := false
			start := mono.Now()
			for !sawPartial {
				var ip uint64
				obs.Atomic(func(tx *tm.Tx) { ip = tx.Read(inprogress.Addr()) })
				if ip != 0 {
					sawPartial = true
				}
				if start.Elapsed() > 5*time.Second {
					t.Fatal("never observed the atomicity break")
				}
			}
			// Feed the sleeping composer so it can finish.
			obs.Atomic(func(tx *tm.Tx) {
				if !b.Full(tx) {
					b.Put(tx, 55)
				}
			})
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("composition never completed after feeding")
			}
		})
	}
}

func TestBufferConservationProperty(t *testing.T) {
	// Property: for random (capacity, prefill, ops) the buffer conserves
	// elements and count equals prefill+puts-gets.
	sys := newSys("lazy")
	thr := sys.NewThread()
	f := func(capSeed, preSeed uint8, ops []bool) bool {
		capacity := int(capSeed%16) + 1
		pre := int(preSeed) % (capacity + 1)
		b := buffer.NewTM(capacity)
		vals := make([]uint64, pre)
		for i := range vals {
			vals[i] = uint64(i) + 1000
		}
		b.Prefill(vals)
		count := pre
		next := uint64(1)
		for _, isPut := range ops {
			if isPut && count < capacity {
				b.PutRetry(thr, next)
				next++
				count++
			} else if !isPut && count > 0 {
				if b.GetRetry(thr) == 0 {
					return false
				}
				count--
			}
		}
		got := 0
		thr.Atomic(func(tx *tm.Tx) { got = int(b.Count(tx)) })
		return got == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerProducerProperty(t *testing.T) {
	// With concurrent producers, each producer's own values must be
	// consumed in the order it produced them (FIFO buffer).
	sys := newSys("eager")
	const producers = 3
	const per = 300
	b := buffer.NewTM(4)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := sys.NewThread()
			for k := 0; k < per; k++ {
				// Encode producer id in the high bits, sequence in low.
				b.PutRetry(thr, uint64(id)<<32|uint64(k+1))
			}
		}(p)
	}
	order := make([][]uint64, producers)
	wg.Add(1)
	go func() {
		defer wg.Done()
		thr := sys.NewThread()
		for k := 0; k < producers*per; k++ {
			v := b.GetRetry(thr)
			id := int(v >> 32)
			order[id] = append(order[id], v&0xffffffff)
		}
	}()
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(60 * time.Second):
		t.Fatal("wedged")
	}
	for id, seq := range order {
		if len(seq) != per {
			t.Fatalf("producer %d: consumed %d values", id, len(seq))
		}
		for i, v := range seq {
			if v != uint64(i+1) {
				t.Fatalf("producer %d: position %d holds %d (FIFO violated)", id, i, v)
			}
		}
	}
}
