// Package buffer implements the multi-producer multi-consumer bounded
// buffer of the evaluation (Figure 2.2 / Algorithm 2) in all seven
// condition-synchronization variants the paper compares:
//
//	Pthreads   lock + condition variables (no TM)        → LockBuffer
//	TMCondVar  transactions + transaction-safe condvars  → PutCondVar/GetCondVar
//	WaitPred   transactions + explicit predicates        → PutPred/GetPred
//	Await      transactions + static address list        → PutAwait/GetAwait
//	Retry      transactions + dynamic read set           → PutRetry/GetRetry
//	Retry-Orig original metadata-based retry (STM only)  → PutOrig/GetOrig
//	Restart    abort-and-respin                          → PutRestart/GetRestart
package buffer

import (
	"sync"

	"tmsync/internal/condvar"
	"tmsync/internal/core"
	"tmsync/internal/mech"
	"tmsync/internal/mem"
	"tmsync/internal/tm"
)

// Mechanism names one condition-synchronization technique (see package mech).
type Mechanism = mech.Mechanism

const (
	Pthreads  = mech.Pthreads
	TMCondVar = mech.TMCondVar
	WaitPred  = mech.WaitPred
	Await     = mech.Await
	Retry     = mech.Retry
	RetryOrig = mech.RetryOrig
	Restart   = mech.Restart
)

// Mechanisms lists every technique, in the order the paper's legends use.
var Mechanisms = mech.All

// TMMechanisms lists the transactional techniques (everything but Pthreads).
var TMMechanisms = mech.TM

// TMBuffer is the transactional bounded buffer. All its methods run inside
// (possibly nested) transactions and may be composed into larger atomic
// operations.
type TMBuffer struct {
	buf      *mem.Array
	capacity uint64
	count    mem.Var
	nextprod mem.Var
	nextcons mem.Var

	notempty *condvar.Var // consumers wait here (TMCondVar variant)
	notfull  *condvar.Var // producers wait here (TMCondVar variant)

	notFullPred  core.Pred
	notEmptyPred core.Pred
}

// NewTM returns an empty transactional buffer with the given capacity.
func NewTM(capacity int) *TMBuffer {
	b := &TMBuffer{
		buf:      mem.NewArray(capacity),
		capacity: uint64(capacity),
		notempty: condvar.New(),
		notfull:  condvar.New(),
	}
	b.notFullPred = func(tx *tm.Tx, _ []uint64) bool { return !b.full(tx) }
	b.notEmptyPred = func(tx *tm.Tx, _ []uint64) bool { return !b.empty(tx) }
	return b
}

// CountAddr exposes the address of the count word (used by Await callers
// and tests).
func (b *TMBuffer) CountAddr() *uint64 { return b.count.Addr() }

// Cap returns the buffer capacity.
func (b *TMBuffer) Cap() int { return int(b.capacity) }

// Count reads the current element count transactionally.
func (b *TMBuffer) Count(tx *tm.Tx) uint64 { return b.count.Get(tx) }

// Prefill inserts vals without transactions; the caller must guarantee no
// transactions are in flight (experiment setup: "we half-fill the buffer
// before starting each experiment").
func (b *TMBuffer) Prefill(vals []uint64) {
	if uint64(len(vals)) > b.capacity {
		panic("buffer: prefill exceeds capacity")
	}
	for i, v := range vals {
		b.buf.Store(i, v)
	}
	b.nextprod.Store(uint64(len(vals)) % b.capacity)
	b.nextcons.Store(0)
	b.count.Store(uint64(len(vals)))
}

// Internal methods of Algorithm 2.

func (b *TMBuffer) full(tx *tm.Tx) bool  { return b.count.Get(tx) == b.capacity }
func (b *TMBuffer) empty(tx *tm.Tx) bool { return b.count.Get(tx) == 0 }

func (b *TMBuffer) put(tx *tm.Tx, x uint64) {
	np := b.nextprod.Get(tx)
	b.buf.Set(tx, int(np), x)
	b.nextprod.Set(tx, (np+1)%b.capacity)
	b.count.Set(tx, b.count.Get(tx)+1)
}

func (b *TMBuffer) get(tx *tm.Tx) uint64 {
	nc := b.nextcons.Get(tx)
	x := b.buf.Get(tx, int(nc))
	b.nextcons.Set(tx, (nc+1)%b.capacity)
	b.count.Set(tx, b.count.Get(tx)-1)
	return x
}

// Full reports whether the buffer is full, transactionally.
func (b *TMBuffer) Full(tx *tm.Tx) bool { return b.full(tx) }

// Empty reports whether the buffer is empty, transactionally.
func (b *TMBuffer) Empty(tx *tm.Tx) bool { return b.empty(tx) }

// Put inserts x; the caller must already be inside a transaction and must
// have established ¬Full. Exposed for composition (Algorithm 3).
func (b *TMBuffer) Put(tx *tm.Tx, x uint64) { b.put(tx, x) }

// Get removes and returns an element; the caller must already be inside a
// transaction and must have established ¬Empty.
func (b *TMBuffer) Get(tx *tm.Tx) uint64 { return b.get(tx) }

// ----- WaitPred variant (Figure 2.2, left column) -----

// PutPred inserts x, waiting on the ¬Full predicate when necessary.
func (b *TMBuffer) PutPred(thr *tm.Thread, x uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		if b.full(tx) {
			core.WaitPred(tx, b.notFullPred)
		}
		b.put(tx, x)
	})
}

// GetPred removes an element, waiting on the ¬Empty predicate.
func (b *TMBuffer) GetPred(thr *tm.Thread) uint64 {
	var out uint64
	thr.Atomic(func(tx *tm.Tx) {
		if b.empty(tx) {
			core.WaitPred(tx, b.notEmptyPred)
		}
		out = b.get(tx)
	})
	return out
}

// ----- Await variant (Figure 2.2, middle column) -----

// PutAwait inserts x, waiting on changes to &count when full.
func (b *TMBuffer) PutAwait(thr *tm.Thread, x uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		if b.full(tx) {
			core.Await(tx, b.count.Addr())
		}
		b.put(tx, x)
	})
}

// GetAwait removes an element, waiting on changes to &count when empty.
func (b *TMBuffer) GetAwait(thr *tm.Thread) uint64 {
	var out uint64
	thr.Atomic(func(tx *tm.Tx) {
		if b.empty(tx) {
			core.Await(tx, b.count.Addr())
		}
		out = b.get(tx)
	})
	return out
}

// ----- Retry variant (Figure 2.2, right column) -----

// PutRetry inserts x, retrying on the dynamic read set when full.
func (b *TMBuffer) PutRetry(thr *tm.Thread, x uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		if b.full(tx) {
			core.Retry(tx)
		}
		b.put(tx, x)
	})
}

// GetRetry removes an element, retrying on the dynamic read set when empty.
func (b *TMBuffer) GetRetry(thr *tm.Thread) uint64 {
	var out uint64
	thr.Atomic(func(tx *tm.Tx) {
		if b.empty(tx) {
			core.Retry(tx)
		}
		out = b.get(tx)
	})
	return out
}

// ----- Retry-Orig variant (Algorithm 1; STM engines only) -----

// PutOrig inserts x using the original metadata-based Retry.
func (b *TMBuffer) PutOrig(thr *tm.Thread, x uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		if b.full(tx) {
			core.RetryOrig(tx)
		}
		b.put(tx, x)
	})
}

// GetOrig removes an element using the original metadata-based Retry.
func (b *TMBuffer) GetOrig(thr *tm.Thread) uint64 {
	var out uint64
	thr.Atomic(func(tx *tm.Tx) {
		if b.empty(tx) {
			core.RetryOrig(tx)
		}
		out = b.get(tx)
	})
	return out
}

// ----- Restart variant (abort and immediately re-attempt) -----

// PutRestart inserts x, spinning via immediate restarts while full.
func (b *TMBuffer) PutRestart(thr *tm.Thread, x uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		if b.full(tx) {
			tx.Restart()
		}
		b.put(tx, x)
	})
}

// GetRestart removes an element, spinning via immediate restarts while empty.
func (b *TMBuffer) GetRestart(thr *tm.Thread) uint64 {
	var out uint64
	thr.Atomic(func(tx *tm.Tx) {
		if b.empty(tx) {
			tx.Restart()
		}
		out = b.get(tx)
	})
	return out
}

// ----- TMCondVar variant (Algorithm 2 as written) -----

// PutCondVar inserts x using transaction-safe condition variables; the
// wait commits the in-flight transaction (breaking atomicity) and the
// block re-executes on wakeup, reproducing Algorithm 2's retry loop.
func (b *TMBuffer) PutCondVar(thr *tm.Thread, x uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		if b.full(tx) {
			b.notfull.Wait(tx)
		}
		b.put(tx, x)
		b.notempty.Signal(tx)
	})
}

// GetCondVar removes an element using transaction-safe condition variables.
func (b *TMBuffer) GetCondVar(thr *tm.Thread) uint64 {
	var out uint64
	thr.Atomic(func(tx *tm.Tx) {
		if b.empty(tx) {
			b.notempty.Wait(tx)
		}
		out = b.get(tx)
		b.notfull.Signal(tx)
	})
	return out
}

// PutMech dispatches to the named mechanism (benchmark harness).
func (b *TMBuffer) PutMech(thr *tm.Thread, m Mechanism, x uint64) {
	switch m {
	case TMCondVar:
		b.PutCondVar(thr, x)
	case WaitPred:
		b.PutPred(thr, x)
	case Await:
		b.PutAwait(thr, x)
	case Retry:
		b.PutRetry(thr, x)
	case RetryOrig:
		b.PutOrig(thr, x)
	case Restart:
		b.PutRestart(thr, x)
	default:
		panic("buffer: mechanism " + string(m) + " is not transactional")
	}
}

// GetMech dispatches to the named mechanism (benchmark harness).
func (b *TMBuffer) GetMech(thr *tm.Thread, m Mechanism) uint64 {
	switch m {
	case TMCondVar:
		return b.GetCondVar(thr)
	case WaitPred:
		return b.GetPred(thr)
	case Await:
		return b.GetAwait(thr)
	case Retry:
		return b.GetRetry(thr)
	case RetryOrig:
		return b.GetOrig(thr)
	case Restart:
		return b.GetRestart(thr)
	default:
		panic("buffer: mechanism " + string(m) + " is not transactional")
	}
}

// LockBuffer is the Pthreads baseline: a mutex-protected bounded buffer
// with standard condition variables.
type LockBuffer struct {
	mu       sync.Mutex
	notfull  *sync.Cond
	notempty *sync.Cond
	buf      []uint64
	count    int
	nextprod int
	nextcons int
}

// NewLock returns an empty lock-based buffer with the given capacity.
func NewLock(capacity int) *LockBuffer {
	b := &LockBuffer{buf: make([]uint64, capacity)}
	b.notfull = sync.NewCond(&b.mu)
	b.notempty = sync.NewCond(&b.mu)
	return b
}

// Prefill inserts vals before any concurrency begins.
func (b *LockBuffer) Prefill(vals []uint64) {
	copy(b.buf, vals)
	b.count = len(vals)
	b.nextprod = len(vals) % len(b.buf)
	b.nextcons = 0
}

// Put inserts x, blocking while the buffer is full.
func (b *LockBuffer) Put(x uint64) {
	b.mu.Lock()
	for b.count == len(b.buf) {
		b.notfull.Wait()
	}
	b.buf[b.nextprod] = x
	b.nextprod = (b.nextprod + 1) % len(b.buf)
	b.count++
	b.notempty.Signal()
	b.mu.Unlock()
}

// Get removes an element, blocking while the buffer is empty.
func (b *LockBuffer) Get() uint64 {
	b.mu.Lock()
	for b.count == 0 {
		b.notempty.Wait()
	}
	x := b.buf[b.nextcons]
	b.nextcons = (b.nextcons + 1) % len(b.buf)
	b.count--
	b.notfull.Signal()
	b.mu.Unlock()
	return x
}

// Count returns the current element count.
func (b *LockBuffer) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}
