// The dangerous composition scenario of §2.2.1 (Algorithm 3): an outer
// transaction that produces one element and atomically consumes two. With
// Retry-style mechanisms the whole composition stays atomic — a Retry in a
// nested Consume unrolls the outer transaction completely. With
// transaction-safe condition variables the wait commits the outer
// transaction mid-flight, exposing the temporary inprogress state and
// losing the produce/consume pairing.
package buffer

import (
	"tmsync/internal/mem"
	"tmsync/internal/tm"
)

// Produce1Consume2Retry atomically produces x and consumes two elements,
// composing the Retry-based Put and Get. inprogress is the temporary
// shared flag of Algorithm 3: under Retry it is never observable as set.
func (b *TMBuffer) Produce1Consume2Retry(thr *tm.Thread, inprogress *mem.Var, x uint64) (first, second uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		inprogress.Set(tx, 1)
		b.PutRetry(thr, x) // nested transaction, flattened into ours
		first = b.GetRetry(thr)
		second = b.GetRetry(thr)
		inprogress.Set(tx, 0)
	})
	return first, second
}

// Produce1Consume2CondVar is the same composition over the TMCondVar
// variant. When a nested Get must wait, the outer transaction commits at
// the wait point: inprogress=1 becomes visible to other threads and the
// produce is published before the second consume — the atomicity violation
// the paper's mechanisms exist to prevent.
func (b *TMBuffer) Produce1Consume2CondVar(thr *tm.Thread, inprogress *mem.Var, x uint64) (first, second uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		inprogress.Set(tx, 1)
		b.PutCondVar(thr, x)
		first = b.GetCondVar(thr)
		second = b.GetCondVar(thr)
		inprogress.Set(tx, 0)
	})
	return first, second
}
