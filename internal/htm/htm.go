// Package htm simulates a best-effort hardware transactional memory with a
// GCC-style software fallback, standing in for Intel TSX which is not
// available in this environment (see DESIGN.md §2).
//
// The simulation reproduces the behaviours the paper's evaluation depends
// on:
//
//   - Speculative writes are invisible (buffered) until commit.
//   - Conflicts abort transactions eagerly: a committing writer "invalidates
//     the cache lines" of concurrent hardware transactions by matching its
//     write set against their read/write signatures and dooming overlaps —
//     including read-only transactions such as wakeWaiters (§2.4.1).
//   - Read- and write-set capacity is bounded; exceeding it aborts.
//   - Optional spurious aborts model interrupts/false sharing.
//   - After HTMMaxRetries aborts the transaction serializes on a global
//     lock and runs to completion (GCC's progress guarantee).
//   - Hardware mode has no escape actions: transactions that must log a
//     waitset or deschedule re-execute in ModeSerial, an instrumented
//     software mode under the serial lock (§2.2.3).
//
// Safety does not rest on the signatures alone: commit-time validation of
// the read set against orec versions guarantees serializability even if a
// signature race misses a doom, so the signatures only shape abort
// behaviour, never correctness.
package htm

import (
	"sync/atomic"

	"tmsync/internal/locktable"
	"tmsync/internal/tm"
)

// Engine is the simulated-HTM back end. Construct with New.
type Engine struct {
	sys *tm.System
}

// New returns the engine factory expected by tm.NewSystem.
func New(sys *tm.System) tm.Engine { return &Engine{sys: sys} }

// Name implements tm.Engine.
func (e *Engine) Name() string { return "htm" }

// Begin chooses between hardware and serial-software execution. Hardware
// attempts wait out an active serial section; serial attempts doom every
// in-flight hardware transaction, exactly as acquiring the fallback lock
// aborts subscribed hardware transactions on real hardware.
func (e *Engine) Begin(tx *tm.Tx) {
	if tx.SerialHeld {
		// The driver already serialized this attempt (irrevocability);
		// run it directly in the instrumented software mode.
		tx.Mode = tm.ModeSerial
		tx.StampTableView()
		tx.Start = tx.Thr.PublishStart()
		return
	}
	if tx.WantSoftware || tx.IsRetry || tx.Attempts > e.sys.Cfg.HTMMaxRetries {
		e.beginSerial(tx)
		return
	}
	for e.sys.SerialActive.Load() != 0 {
		yield()
	}
	t := tx.Thr
	t.Doomed.Store(false)
	t.SigReset()
	t.HWActive.Store(true)
	// Re-check after publishing activity: if a serial section began in the
	// window, it may not have seen us; stand down and wait.
	if e.sys.SerialActive.Load() != 0 {
		t.HWActive.Store(false)
		for e.sys.SerialActive.Load() != 0 {
			yield()
		}
		t.Doomed.Store(false)
		t.HWActive.Store(true)
	}
	tx.Mode = tm.ModeHW
	tx.StampTableView()
	tx.Start = t.PublishStart()
}

func (e *Engine) beginSerial(tx *tm.Tx) {
	tx.WantSoftware = false
	e.sys.SerialMu.Lock()
	e.sys.SerialActive.Store(1)
	tx.SerialHeld = true
	e.sys.Stats.Serializations.Add(1)
	// Doom all in-flight hardware transactions and wait for them to drain,
	// so the serial section runs truly alone.
	for _, t := range e.sys.Threads() {
		if t == tx.Thr {
			continue
		}
		if t.HWActive.Load() {
			t.Doomed.Store(true)
		}
	}
	for _, t := range e.sys.Threads() {
		if t == tx.Thr {
			continue
		}
		for t.HWActive.Load() {
			t.Doomed.Store(true)
			yield()
		}
	}
	tx.Mode = tm.ModeSerial
	tx.StampTableView()
	tx.Start = tx.Thr.PublishStart()
}

func (e *Engine) releaseSerial(tx *tm.Tx) {
	if !tx.SerialHeld {
		return
	}
	tx.SerialHeld = false
	e.sys.SerialActive.Store(0)
	e.sys.SerialMu.Unlock()
}

// checkHW aborts if the hardware transaction has been doomed by a
// conflicting committer or draws a simulated spurious abort.
func (e *Engine) checkHW(tx *tm.Tx) {
	if tx.Thr.Doomed.Load() {
		tx.Thr.HWActive.Store(false)
		tx.Abort(tm.AbortConflict)
	}
	if p := e.sys.Cfg.HTMSpuriousAbortPerMille; p > 0 && tx.Rand()%1000 < uint64(p) {
		tx.Thr.HWActive.Store(false)
		tx.Abort(tm.AbortSpurious)
	}
}

// Read implements tm.Engine.
func (e *Engine) Read(tx *tm.Tx, addr *uint64) uint64 {
	if tx.Mode == tm.ModeSerial {
		val := atomic.LoadUint64(addr)
		if tx.IsRetry {
			if old, ok := tx.OldValue(addr); ok {
				tx.LogWait(addr, old)
			} else {
				tx.LogWait(addr, val)
			}
		}
		return val
	}
	e.checkHW(tx)
	if buf, ok := tx.Redo.Get(addr); ok {
		return buf
	}
	idx := e.sys.Table.IndexOf(addr)
	w1 := e.sys.Table.Get(idx)
	val := atomic.LoadUint64(addr)
	w2 := e.sys.Table.Get(idx)
	if w1 != w2 || locktable.Locked(w1) || locktable.Version(w1) > tx.Start {
		if w1 == w2 && !locktable.Locked(w1) {
			// Keep a deferred clock moving so the re-executed attempt
			// starts late enough to read this version.
			e.sys.Clock.NoteStale(locktable.Version(w1))
		}
		tx.Thr.HWActive.Store(false)
		tx.Abort(tm.AbortConflict)
	}
	tx.Thr.SigAdd(idx)
	tx.Reads = append(tx.Reads, tm.ReadEntry{Addr: addr, Orec: idx})
	tx.HWReads++
	if tx.HWReads > e.sys.Cfg.HTMReadCap {
		tx.Thr.HWActive.Store(false)
		tx.Abort(tm.AbortCapacity)
	}
	return val
}

// Write implements tm.Engine.
func (e *Engine) Write(tx *tm.Tx, addr *uint64, val uint64) {
	if tx.Mode == tm.ModeSerial {
		// Serial-mode stores bypass orec acquisition (the section runs
		// alone), but the post-commit wakeup still needs to know which
		// stripes the write set covers, so record the covering orec's
		// stripe (deduplicated) here. The orec itself is not logged: the
		// write-orec capture feeds only Retry-Orig, which this engine
		// rejects.
		tx.NoteWriteStripe(e.sys.Table.IndexOf(addr))
		tx.Undo = append(tx.Undo, tm.UndoEntry{Addr: addr, Old: atomic.LoadUint64(addr)})
		atomic.StoreUint64(addr, val)
		return
	}
	e.checkHW(tx)
	idx := e.sys.Table.IndexOf(addr)
	tx.Thr.SigAdd(idx)
	if _, dup := tx.Redo.Get(addr); !dup {
		tx.HWWrites++
		if tx.HWWrites > e.sys.Cfg.HTMWriteCap {
			tx.Thr.HWActive.Store(false)
			tx.Abort(tm.AbortCapacity)
		}
	}
	tx.Redo.Put(addr, val, idx)
}

// Commit implements tm.Engine. Hardware commits acquire the write set's
// orecs, validate the read set (the safety net behind the signatures),
// doom concurrent hardware transactions whose signatures overlap the write
// set (eager invalidation), write back, and release. Serial commits simply
// bump the clock and release the serial lock.
func (e *Engine) Commit(tx *tm.Tx) {
	if tx.Mode == tm.ModeSerial {
		if len(tx.Undo) > 0 {
			// Even the serial fallback names write stripes for the
			// post-commit wakeup, so a resize since Begin aborts it too
			// (Rollback undoes the in-place writes and releases the lock).
			tx.RevalidateTableGen()
			e.sys.Clock.Bump()
			tx.Undo = tx.Undo[:0]
		}
		e.releaseSerial(tx)
		return
	}
	e.checkHW(tx)
	t := tx.Thr
	if tx.Redo.Len() == 0 {
		t.HWActive.Store(false)
		return
	}
	for i := range tx.Redo.Entries {
		idx := tx.Redo.Entries[i].Orec
		if e.holds(tx, idx) {
			continue
		}
		w := e.sys.Table.Get(idx)
		//tm:lock-acquire
		if locktable.Locked(w) || !e.sys.Table.CAS(idx, w, locktable.LockedBy(t.ID, locktable.Version(w))) {
			t.HWActive.Store(false)
			tx.Abort(tm.AbortConflict)
		}
		if v := locktable.Version(w); v > tx.MaxLockVer {
			tx.MaxLockVer = v
		}
		tx.Locks = append(tx.Locks, idx)
		tx.NoteWriteStripe(idx)
	}
	end, exclusive := e.sys.Clock.Commit(tx.Start, tx.MaxLockVer)
	if !exclusive && !e.validateReads(tx) {
		t.HWActive.Store(false)
		tx.Abort(tm.AbortConflict)
	}
	// An online stripe resize since Begin invalidates the attempt's
	// write-stripe set; abort (Rollback clears HWActive) and re-execute
	// against the new geometry.
	tx.RevalidateTableGen()
	// WriteOrecs stays empty: it feeds only Retry-Orig, which this engine
	// rejects, and an empty lock-set snapshot lets origWake return without
	// touching its global lock. Wakeups ride on WriteStripes instead.
	// Eager invalidation: doom concurrent hardware transactions whose
	// signature may overlap our write set. This is what makes read-only
	// wakeWaiters transactions abort under writer pressure (§2.4.1).
	others := e.sys.Threads()
	for i := range tx.Redo.Entries {
		idx := tx.Redo.Entries[i].Orec
		for _, o := range others {
			if o != t && o.HWActive.Load() && o.SigMightContain(idx) {
				o.Doomed.Store(true)
			}
		}
	}
	for i := range tx.Redo.Entries {
		atomic.StoreUint64(tx.Redo.Entries[i].Addr, tx.Redo.Entries[i].Val)
	}
	for _, idx := range tx.Locks {
		e.sys.Table.Set(idx, locktable.UnlockedAt(end))
	}
	tx.Locks = tx.Locks[:0]
	t.HWActive.Store(false)
}

func (e *Engine) holds(tx *tm.Tx, idx uint32) bool {
	for _, l := range tx.Locks {
		if l == idx {
			return true
		}
	}
	return false
}

func (e *Engine) validateReads(tx *tm.Tx) bool {
	for i := range tx.Reads {
		w := e.sys.Table.Get(tx.Reads[i].Orec)
		if locktable.Locked(w) {
			if locktable.Owner(w) != tx.Thr.ID || locktable.Version(w) > tx.Start {
				return false
			}
		} else if v := locktable.Version(w); v > tx.Start {
			e.sys.Clock.NoteStale(v)
			return false
		}
	}
	return true
}

// Validate implements tm.Engine.
func (e *Engine) Validate(tx *tm.Tx) bool {
	if tx.Mode == tm.ModeSerial {
		return true
	}
	return e.validateReads(tx)
}

// Rollback implements tm.Engine. Serial attempts undo their in-place
// writes and release the serial lock; hardware attempts discard the redo
// buffer and release any commit-time locks.
//
//tm:rollback
func (e *Engine) Rollback(tx *tm.Tx) {
	if tx.SerialHeld {
		for i := len(tx.Undo) - 1; i >= 0; i-- {
			atomic.StoreUint64(tx.Undo[i].Addr, tx.Undo[i].Old)
		}
		tx.Undo = tx.Undo[:0]
		e.releaseSerial(tx)
		return
	}
	tx.Thr.HWActive.Store(false)
	if len(tx.Locks) == 0 {
		return
	}
	// Bump before releasing: under global/pof the republished versions
	// must already be covered by the clock when they become visible, or
	// a concurrent Commit could hand the same version out again.
	e.sys.Clock.Bump()
	for _, idx := range tx.Locks {
		w := e.sys.Table.Get(idx)
		e.sys.Table.Set(idx, locktable.UnlockedAt(locktable.Version(w)+1))
	}
	tx.Locks = tx.Locks[:0]
}

// AwaitSnapshot implements tm.Engine. In hardware mode escape actions are
// unavailable, so the caller (core.Await) switches to software first; in
// serial mode the section runs alone, so after undoing its writes the
// committed values can be read directly.
func (e *Engine) AwaitSnapshot(tx *tm.Tx, addrs []*uint64) {
	if tx.Mode != tm.ModeSerial {
		panic("htm: AwaitSnapshot requires software (serial) mode")
	}
	for i := len(tx.Undo) - 1; i >= 0; i-- {
		atomic.StoreUint64(tx.Undo[i].Addr, tx.Undo[i].Old)
	}
	tx.Undo = tx.Undo[:0]
	for _, addr := range addrs {
		tx.LogWait(addr, atomic.LoadUint64(addr))
	}
}
