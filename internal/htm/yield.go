package htm

import "runtime"

// yield parks the goroutine briefly while waiting for a serial section to
// drain or begin.
func yield() { runtime.Gosched() }
