package htm_test

import (
	"testing"

	"tmsync/internal/htm"
	"tmsync/internal/tm"
)

// TestSerializationPolicy verifies the GCC-style progress guarantee: a
// transaction that keeps aborting in hardware runs serially after
// HTMMaxRetries attempts and then commits.
func TestSerializationPolicy(t *testing.T) {
	sys := tm.NewSystem(tm.Config{HTMMaxRetries: 2}, htm.New)
	thr := sys.NewThread()
	var x uint64
	attempts := 0
	thr.Atomic(func(tx *tm.Tx) {
		attempts++
		tx.Write(&x, uint64(attempts))
		if tx.Mode == tm.ModeHW {
			tx.Abort(tm.AbortExplicit) // keep failing in hardware
		}
	})
	// Attempts 1–2 run in hardware; attempt 3 (Attempts > HTMMaxRetries)
	// serializes and commits.
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (2 hardware + 1 serial)", attempts)
	}
	if sys.Stats.Serializations.Load() != 1 {
		t.Fatalf("serializations = %d", sys.Stats.Serializations.Load())
	}
	if x != 3 {
		t.Fatalf("x = %d", x)
	}
}

// TestHWModeReported verifies uncontended transactions run in hardware.
func TestHWModeReported(t *testing.T) {
	sys := tm.NewSystem(tm.Config{}, htm.New)
	thr := sys.NewThread()
	var mode tm.Mode
	var x uint64
	thr.Atomic(func(tx *tm.Tx) {
		mode = tx.Mode
		tx.Write(&x, 1)
	})
	if mode != tm.ModeHW {
		t.Fatalf("mode = %v, want hw", mode)
	}
	if sys.Stats.Serializations.Load() != 0 {
		t.Fatal("uncontended transaction serialized")
	}
}

// TestReadCapacityAbort verifies the read-set bound fires separately from
// the write bound.
func TestReadCapacityAbort(t *testing.T) {
	sys := tm.NewSystem(tm.Config{HTMReadCap: 8, HTMWriteCap: 1024}, htm.New)
	thr := sys.NewThread()
	words := make([]uint64, 64)
	var sum uint64
	thr.Atomic(func(tx *tm.Tx) {
		sum = 0
		for i := range words {
			sum += tx.Read(&words[i])
		}
		tx.Write(&words[0], sum+1) // make it a writer so commit is real
	})
	if sys.Stats.CapacityAborts.Load() == 0 {
		t.Fatal("no capacity abort despite 64 reads against a cap of 8")
	}
	if words[0] != 1 {
		t.Fatalf("words[0] = %d", words[0])
	}
}
