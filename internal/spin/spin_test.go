package spin

import (
	"sync"
	"testing"
)

func TestBackoffGrowsAndResets(t *testing.T) {
	var b Backoff
	for i := 0; i < 20; i++ {
		b.Wait()
	}
	if b.Attempts() != 20 {
		t.Fatalf("attempts = %d, want 20", b.Attempts())
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("attempts after reset = %d", b.Attempts())
	}
}

func TestLockMutualExclusion(t *testing.T) {
	var l Lock
	var counter int
	const goroutines = 8
	const per = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*per {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, goroutines*per)
	}
}

func TestTryLock(t *testing.T) {
	var l Lock
	if !l.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded on held lock")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed after Unlock")
	}
	l.Unlock()
}
