// Package spin provides bounded exponential backoff and a tiny spinlock,
// the low-level waiting primitives used by the STM engines and the
// condition-synchronization runtime.
package spin

import (
	"runtime"
	"sync/atomic"
)

// Backoff implements randomized bounded exponential backoff. The zero value
// is ready to use. It is not safe for concurrent use; each goroutine keeps
// its own.
type Backoff struct {
	attempt uint
	rng     uint64
}

// maxShift bounds the backoff window at 2^maxShift spins.
const maxShift = 10

// Wait spins for a randomized interval that grows exponentially with the
// number of calls since the last Reset, yielding the processor between
// bursts so that oversubscribed configurations make progress.
func (b *Backoff) Wait() {
	if b.rng == 0 {
		b.rng = 0x9e3779b97f4a7c15
	}
	shift := b.attempt
	if shift > maxShift {
		shift = maxShift
	}
	// xorshift64 for a cheap thread-local random spin count.
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	spins := b.rng % (1 << shift)
	for i := uint64(0); i < spins; i++ {
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
	runtime.Gosched()
	b.attempt++
}

// Attempts reports how many times Wait has been called since the last Reset.
func (b *Backoff) Attempts() uint { return b.attempt }

// Reset clears the backoff window after a success.
func (b *Backoff) Reset() { b.attempt = 0 }

// Lock is a test-and-test-and-set spinlock. The zero value is unlocked.
// It is used only for short critical sections over in-memory metadata
// (e.g. the waiters registry) where a full mutex would dominate.
type Lock struct {
	state atomic.Uint32
}

// Lock acquires the spinlock.
func (l *Lock) Lock() {
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		runtime.Gosched()
	}
}

// TryLock attempts to acquire the spinlock without blocking.
func (l *Lock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the spinlock. It must be held.
func (l *Lock) Unlock() {
	l.state.Store(0)
}
