package harness

// Tests for the portable Zipf weight math. The golden digests in
// golden_test.go pin the draw stream bit-for-bit; these tests pin the
// property that makes that pinning legitimate across platforms — the
// weights come from a fixed sequence of exactly-rounded operations — and
// guard portablePow against implementation blunders by holding it near
// math.Pow over the argument range newZipf actually uses.

import (
	"math"
	"testing"
)

func TestPortablePowMatchesMathPow(t *testing.T) {
	// newZipf calls portablePow(i+1, -s) for ranks up to MaxCounters-ish
	// and CLI-supplied exponents; sweep well past both.
	for _, s := range []float64{0.1, 0.5, 0.8, 0.9, 1.0, 1.1, 1.2, 1.5, 2.0, 3.0, 10.0} {
		for i := 1; i <= 8192; i *= 2 {
			for _, x := range []float64{float64(i), float64(i + 1)} {
				got := portablePow(x, -s)
				want := math.Pow(x, -s)
				if relErr := math.Abs(got-want) / want; relErr > 1e-13 {
					t.Errorf("portablePow(%g, %g) = %g, math.Pow = %g (rel err %g)", x, -s, got, want, relErr)
				}
			}
		}
	}
}

func TestPortablePowEdges(t *testing.T) {
	if got := portablePow(1, -2.5); got != 1 {
		t.Errorf("portablePow(1, -2.5) = %g, want 1", got)
	}
	// Hostile CLI exponents must degrade gracefully (underflow to 0 or
	// propagate NaN), never convert an out-of-range float to int.
	if got := portablePow(2, -1e6); got != 0 {
		t.Errorf("portablePow(2, -1e6) = %g, want underflow to 0", got)
	}
	if got := portablePow(2, 1e6); !math.IsInf(got, 1) {
		t.Errorf("portablePow(2, 1e6) = %g, want +Inf", got)
	}
	if got := portablePow(1, math.Inf(-1)); !math.IsNaN(got) {
		t.Errorf("portablePow(1, -Inf) = %g, want NaN (0·∞ in the exponent)", got)
	}
}
