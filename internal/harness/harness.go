// Package harness is the cross-engine differential scenario harness: the
// safety net behind every refactor of the TM engines and condition-
// synchronization mechanisms.
//
// The paper's central claim is interchangeability — Retry, Await,
// WaitPred, TMCondVar, Retry-Orig, and Restart are drop-in replacements
// for one another, over interchangeable TM back ends (eager STM, lazy
// STM, simulated HTM, hybrid). If that holds, any workload must produce
// identical observable state no matter which engine × mechanism pair runs
// it. This package checks exactly that: a Scenario is a deterministic
// concurrent program over shared words and txds structures; the harness
// runs it under every engine × applicable mechanism, snapshots the final
// state, and diffs it — together with aggregate invariants (token
// conservation, per-producer FIFO order, sum conservation) — against a
// sequential oracle computed without any concurrency at all.
//
// Scenarios come from two sources: the randomized generator (Generate),
// which derives the whole program from one printable seed so any failure
// replays from a one-line -seed flag, and the eight PARSEC concurrency
// skeletons of internal/parsecsim (ParsecScenarios). cmd/tmcheck is the
// CLI front end.
package harness

import (
	"fmt"
	"sort"
	"time"

	"tmsync/internal/clock"
	"tmsync/internal/core"
	"tmsync/internal/htm"
	"tmsync/internal/hybrid"
	"tmsync/internal/mech"
	"tmsync/internal/mono"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

// Engines lists the four TM back ends, in the order the paper evaluates
// them. It must stay in lockstep with tmsync.EngineKinds (the root
// package re-exports this harness and asserts parity in its tests).
var Engines = []string{"eager", "lazy", "htm", "hybrid"}

// Knobs is optional per-run system configuration, used by differential
// sweeps over performance-only parameters (which must not change any
// observable outcome) and by the benchmark pipeline.
type Knobs struct {
	// Stripes overrides the initial orec-table stripe count (0 = default).
	// It also sizes the per-stripe waiter index and the sharded Retry-Orig
	// registry, which have one shard per stripe.
	Stripes int
	// Unbatched reverts post-commit wakeups to signal-at-claim delivery
	// instead of the per-commit signal batch (a measurement baseline;
	// observably inert).
	Unbatched bool
	// CoalesceCommits defers post-commit wake scans across up to this many
	// adjacent commits of one thread, flushed at the bounds tm.Config
	// documents (0 = scan every commit). A latency/throughput trade, not a
	// semantic one: any value must yield identical observable outcomes,
	// which tmcheck checks at {0, 2, 8} — alone and under forced resizes.
	// Incompatible with Unbatched.
	CoalesceCommits int
	// CoalesceMaxDelay bounds how long a coalesced pending buffer may age
	// before it is flushed regardless of the attempt-triggered bounds —
	// including by the backstop that drains buffers whose owner has gone
	// idle (tm.Config.CoalesceMaxDelay). Another latency knob that must be
	// observably inert, which tmcheck -max-delay checks; requires
	// CoalesceCommits > 0.
	CoalesceMaxDelay time.Duration
	// MinStripes/MaxStripes enable the adaptive stripe controller when
	// they differ (0 = pinned at Stripes); the controller resizes the
	// table online within the bounds. AdaptWindow overrides the
	// controller's decision window (0 = default).
	MinStripes, MaxStripes, AdaptWindow int
	// ResizeEvery/ResizeSchedule force a deterministic online resize
	// schedule: every ResizeEvery writer commits the stripe count moves
	// to the next schedule entry, cycling. Online resizing is a pure
	// performance mechanism, so any schedule must yield identical
	// observable outcomes — the property tmcheck -adaptive checks.
	ResizeEvery    int
	ResizeSchedule []int
	// ClockMode selects the commit-timestamp protocol
	// (tm.Config.ClockMode): "" or "global", "pof", "deferred". Another
	// pure performance knob — every mode must yield identical observable
	// outcomes, which tmcheck -clock checks across all engines and
	// mechanisms.
	ClockMode string
	// TimestampExtension enables read-time snapshot extension
	// (tm.Config.TimestampExtension) in the software TMs — eager, lazy,
	// and the hybrid's software mode; hardware attempts and the HTM
	// engine ignore it. Pairs naturally with the deferred clock, which
	// turns most too-new aborts into in-place extensions. Observably
	// inert like the rest.
	TimestampExtension bool
}

// NewSystem builds a TM system for the named engine with condition
// synchronization enabled, mirroring tmsync.New without importing the
// root package (which re-exports this one).
func NewSystem(engine string) (*tm.System, error) {
	return NewSystemKnobs(engine, Knobs{})
}

// NewSystemKnobs is NewSystem with explicit performance knobs.
func NewSystemKnobs(engine string, k Knobs) (*tm.System, error) {
	if _, err := clock.ParseMode(k.ClockMode); err != nil {
		return nil, fmt.Errorf("harness: %v", err)
	}
	cfg := tm.Config{
		Stripes:            k.Stripes,
		UnbatchedWakeups:   k.Unbatched,
		CoalesceCommits:    k.CoalesceCommits,
		CoalesceMaxDelay:   k.CoalesceMaxDelay,
		MinStripes:         k.MinStripes,
		MaxStripes:         k.MaxStripes,
		AdaptWindow:        k.AdaptWindow,
		ResizeEvery:        k.ResizeEvery,
		ResizeSchedule:     k.ResizeSchedule,
		ClockMode:          k.ClockMode,
		TimestampExtension: k.TimestampExtension,
	}
	var sys *tm.System
	switch engine {
	case "eager":
		cfg.Quiesce = true
		sys = tm.NewSystem(cfg, eager.New)
	case "lazy":
		cfg.Quiesce = true
		sys = tm.NewSystem(cfg, lazy.New)
	case "htm":
		sys = tm.NewSystem(cfg, htm.New)
	case "hybrid":
		cfg.Quiesce = true
		sys = tm.NewSystem(cfg, hybrid.New)
	default:
		return nil, fmt.Errorf("harness: unknown engine %q", engine)
	}
	core.Enable(sys)
	return sys, nil
}

// MechsFor returns the transactional mechanisms applicable to an engine:
// everything but the Pthreads baseline, minus Retry-Orig under the
// hardware engines (it needs STM metadata).
func MechsFor(engine string) []mech.Mechanism {
	out := make([]mech.Mechanism, 0, len(mech.TM))
	for _, m := range mech.ForEngine(engine) {
		if m == mech.Pthreads {
			continue
		}
		out = append(out, m)
	}
	return out
}

// Observation is a rendered snapshot of a scenario's observable final
// state: a set of named facts that must be identical across every
// engine × mechanism execution. Keys name state ("counter[2]",
// "queue.len", "map"); values are canonical renderings.
type Observation map[string]string

// Diff returns human-readable lines describing every fact on which got
// deviates from want, sorted by key; nil means identical.
func Diff(want, got Observation) []string {
	keys := make(map[string]struct{}, len(want)+len(got))
	for k := range want {
		keys[k] = struct{}{}
	}
	for k := range got {
		keys[k] = struct{}{}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var out []string
	for _, k := range sorted {
		w, wok := want[k]
		g, gok := got[k]
		switch {
		case !wok:
			out = append(out, fmt.Sprintf("%s: unexpected %q (oracle has no such fact)", k, g))
		case !gok:
			out = append(out, fmt.Sprintf("%s: missing (oracle has %q)", k, w))
		case w != g:
			out = append(out, fmt.Sprintf("%s: got %q, oracle says %q", k, g, w))
		}
	}
	return out
}

// Scenario is one deterministic concurrent program, runnable under any
// engine × mechanism pair, with a sequential oracle for its final state.
type Scenario struct {
	// Name identifies the scenario ("gen-001f" for generated ones,
	// "parsec/dedup" for registered workloads).
	Name string
	// Seed reproduces a generated scenario exactly (0 for registered
	// workloads, which are deterministic by construction).
	Seed uint64
	// Injected marks a scenario carrying a deliberate fault, so replay
	// hints include the -inject flag that recreates it.
	Injected bool
	// ReplayArgs holds the extra tmcheck flags (beyond -seed) needed to
	// regenerate this exact scenario, e.g. "-threads 8 -ops 100" when the
	// generator ran with explicit overrides. Empty when defaults suffice.
	ReplayArgs string
	// Digest fingerprints a generated scenario's complete program (world
	// geometry plus every thread's op sequence). Generator drift — any
	// change that silently re-rolls what a pinned seed covers — changes
	// the digest, which golden-seed regression tests pin. Empty for
	// registered (non-generated) workloads.
	Digest string
	// Threads is the number of concurrent workers the program uses.
	Threads int
	// Mechs lists the mechanisms the scenario can run under on the given
	// engine; defaults to MechsFor when nil.
	Mechs func(engine string) []mech.Mechanism
	// Oracle returns the expected observation, computed sequentially.
	Oracle func() Observation
	// Run executes the program on sys under mechanism m and returns the
	// observed final state. It must return an error for any invariant
	// violation it detects while running (duplicate consumption,
	// per-producer FIFO breaks, wedged workers).
	Run func(sys *tm.System, m mech.Mechanism) (Observation, error)

	// sp is the executed program in spec form, set for spec-backed
	// scenarios (generated or trace-replayed); Record needs it to emit the
	// program-event layer of a trace. Nil for registered workloads, which
	// therefore cannot be recorded.
	sp *spec
}

// Result is the outcome of one engine × mechanism execution.
type Result struct {
	Scenario   string
	Seed       uint64
	Injected   bool
	ReplayArgs string
	Engine     string
	Mech       mech.Mechanism
	Pass       bool
	Diff       []string // oracle mismatches, if any
	Err        error    // invariant violation or wedge, if any
	Duration   time.Duration

	// Aggregate engine counters for the run (fresh system per run).
	Commits   uint64
	Aborts    uint64
	AbortRate float64
}

// Failed reports whether the execution deviated from the oracle.
func (r *Result) Failed() bool { return !r.Pass }

// String renders a one-line verdict, including the seed-replay hint on
// failure.
func (r *Result) String() string {
	if r.Pass {
		return fmt.Sprintf("PASS %s %s/%s", r.Scenario, r.Engine, r.Mech)
	}
	s := fmt.Sprintf("FAIL %s %s/%s", r.Scenario, r.Engine, r.Mech)
	if r.Err != nil {
		s += ": " + r.Err.Error()
	}
	for _, d := range r.Diff {
		s += "\n  " + d
	}
	if r.Seed != 0 {
		s += fmt.Sprintf("\n  reproduce: go run ./cmd/tmcheck -n 1 -seed %d", r.Seed)
		if r.ReplayArgs != "" {
			s += " " + r.ReplayArgs
		}
		if r.Injected {
			s += " -inject"
		}
	}
	return s
}

// RunScenario executes s under every engine × applicable mechanism and
// returns one Result per pair, each diffed against the sequential oracle.
func RunScenario(s *Scenario) []Result {
	return RunScenarioOn(s, Engines, "")
}

// RunScenarioOn is RunScenario restricted to the given engines and, when
// only is non-empty, to one mechanism.
func RunScenarioOn(s *Scenario, engines []string, only mech.Mechanism) []Result {
	return RunScenarioKnobs(s, engines, only, Knobs{})
}

// RunScenarioKnobs is RunScenarioOn with explicit performance knobs for
// every system it builds — the entry point for proving that a knob (e.g.
// the stripe count) is observably inert across the whole scenario suite.
func RunScenarioKnobs(s *Scenario, engines []string, only mech.Mechanism, k Knobs) []Result {
	oracle := s.Oracle()
	mechs := s.Mechs
	if mechs == nil {
		mechs = MechsFor
	}
	var out []Result
	for _, engine := range engines {
		for _, m := range mechs(engine) {
			if only != "" && m != only {
				continue
			}
			out = append(out, runOne(s, oracle, engine, m, k))
		}
	}
	return out
}

func runOne(s *Scenario, oracle Observation, engine string, m mech.Mechanism, k Knobs) Result {
	res := Result{Scenario: s.Name, Seed: s.Seed, Injected: s.Injected, ReplayArgs: s.ReplayArgs, Engine: engine, Mech: m}
	sys, err := NewSystemKnobs(engine, k)
	if err != nil {
		res.Err = err
		return res
	}
	start := mono.Now()
	obs, err := s.Run(sys, m)
	res.Duration = start.Elapsed()
	res.Commits = sys.Stats.Commits.Load() + sys.Stats.ROCommits.Load()
	res.Aborts = sys.Stats.Aborts.Load()
	res.AbortRate = sys.Stats.AbortRate()
	if err != nil {
		res.Err = err
		return res
	}
	res.Diff = Diff(oracle, obs)
	res.Pass = len(res.Diff) == 0
	return res
}
