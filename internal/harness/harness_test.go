package harness

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"tmsync/internal/mech"
	"tmsync/internal/tm"
)

func TestGeneratorIsDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if a.Name != b.Name || a.Threads != b.Threads {
			t.Fatalf("seed %d: shape differs across calls", seed)
		}
		if !reflect.DeepEqual(a.Oracle(), b.Oracle()) {
			t.Fatalf("seed %d: oracle differs across calls:\n%v\n%v", seed, a.Oracle(), b.Oracle())
		}
	}
}

func TestGeneratedScenarioRunsMatchOracleEverywhere(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, r := range RunScenario(s) {
			if !r.Pass {
				t.Errorf("%s", r.String())
			}
		}
	}
}

func TestSameSeedSameObservationAcrossEngines(t *testing.T) {
	// The differential property stated directly: two arbitrary engine ×
	// mechanism pairs observe identical final state for the same seed.
	s := Generate(42, GenConfig{})
	sysA, _ := NewSystem("eager")
	sysB, _ := NewSystem("hybrid")
	obsA, errA := s.Run(sysA, mech.Retry)
	obsB, errB := s.Run(sysB, mech.WaitPred)
	if errA != nil || errB != nil {
		t.Fatalf("run errors: %v / %v", errA, errB)
	}
	if d := Diff(obsA, obsB); d != nil {
		t.Fatalf("engines observed different state:\n%s", strings.Join(d, "\n"))
	}
}

func TestInjectedFaultIsCaughtAndReproduces(t *testing.T) {
	const seed = 7
	s := Generate(seed, GenConfig{InjectFault: true})
	results := RunScenarioOn(s, []string{"eager"}, mech.Retry)
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	if r.Pass {
		t.Fatal("injected fault was not caught")
	}
	if len(r.Diff) == 0 {
		t.Fatalf("fault reported without a diff: %v", r.Err)
	}
	if r.Seed != seed {
		t.Fatalf("failure lost its seed: %d", r.Seed)
	}
	if !strings.Contains(r.String(), "-seed 7") {
		t.Fatalf("failure rendering lacks the replay hint:\n%s", r.String())
	}
	// Replay from the printed seed: the same fault must reproduce with an
	// identical oracle diff (the detection is deterministic, not flaky).
	replay := RunScenarioOn(Generate(seed, GenConfig{InjectFault: true}), []string{"eager"}, mech.Retry)
	if replay[0].Pass || !reflect.DeepEqual(replay[0].Diff, r.Diff) {
		t.Fatalf("replay diff differs:\n%v\nvs\n%v", replay[0].Diff, r.Diff)
	}
}

func TestInjectedFaultCaughtOnEveryEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine × mechanism sweep")
	}
	s := Generate(11, GenConfig{InjectFault: true})
	for _, r := range RunScenario(s) {
		if r.Pass {
			t.Errorf("%s/%s: injected fault not caught", r.Engine, r.Mech)
		}
	}
}

func TestDiffRendering(t *testing.T) {
	want := Observation{"a": "1", "b": "2", "c": "3"}
	got := Observation{"a": "1", "b": "9", "d": "4"}
	d := Diff(want, got)
	if len(d) != 3 {
		t.Fatalf("Diff = %v", d)
	}
	if !strings.Contains(d[0], `b: got "9", oracle says "2"`) {
		t.Errorf("unexpected first line %q", d[0])
	}
	if Diff(want, Observation{"a": "1", "b": "2", "c": "3"}) != nil {
		t.Error("identical observations must diff to nil")
	}
}

func TestMechsFor(t *testing.T) {
	for _, e := range Engines {
		ms := MechsFor(e)
		for _, m := range ms {
			if m == mech.Pthreads {
				t.Errorf("%s: Pthreads is not a transactional mechanism", e)
			}
			if m == mech.RetryOrig && (e == "htm" || e == "hybrid") {
				t.Errorf("%s: Retry-Orig needs STM metadata", e)
			}
		}
		if len(ms) == 0 {
			t.Errorf("%s: no mechanisms", e)
		}
	}
}

func TestParsecScenariosMatchReference(t *testing.T) {
	scens := ParsecScenarios(2, 1)
	if len(scens) != 8 {
		t.Fatalf("registered %d parsec scenarios, want 8", len(scens))
	}
	pick := scens
	if testing.Short() {
		pick = scens[:2]
	}
	for _, s := range pick {
		engines := Engines
		if testing.Short() {
			engines = []string{"lazy"}
		}
		for _, engine := range engines {
			for _, r := range RunScenarioOn(s, []string{engine}, mech.Retry) {
				if !r.Pass {
					t.Errorf("%s", r.String())
				}
			}
		}
	}
}

func TestReportTables(t *testing.T) {
	var rep Report
	s := Generate(3, GenConfig{})
	rep.Add(RunScenarioOn(s, []string{"eager", "htm"}, ""))
	if !rep.AllPassed() {
		for _, f := range rep.Failures() {
			t.Errorf("%s", f.String())
		}
	}
	et := rep.EngineTable()
	if !strings.Contains(et, "eager") || !strings.Contains(et, "htm") || !strings.Contains(et, "abort-rate") {
		t.Errorf("engine table malformed:\n%s", et)
	}
	mt := rep.MechTable()
	if !strings.Contains(mt, "retry") || !strings.Contains(mt, "waitpred") {
		t.Errorf("mech table malformed:\n%s", mt)
	}
}

func TestWorldSnapshotAgainstHandBuiltSpec(t *testing.T) {
	// A tiny hand-built spec with a known answer, run on one engine:
	// guards the oracle and the observation plumbing independently of the
	// generator.
	sp := &spec{
		threads:  2,
		counters: 2,
		bufCap:   2,
		hasMap:   true,
		mapKeys:  2,
		mapCap:   6,
		programs: [][]op{
			{
				{kind: opCounterAdd, a: 0, b: 5},
				{kind: opBufPut, a: encodeVal(0, 1)},
				{kind: opBufPut, a: encodeVal(0, 2)},
				{kind: opMapPut, a: 1, b: 11},
			},
			{
				{kind: opBufGet},
				{kind: opBufGet},
				{kind: opCounterAdd, a: 1, b: 3},
				{kind: opTransfer, a: 1, b: 0, c: 2},
				{kind: opMapPut, a: 2, b: 22},
				{kind: opMapDel, a: 2},
			},
		},
	}
	want := Observation{
		"counter[0]":    "7",
		"counter[1]":    "1",
		"buffer.len":    "0",
		"buffer.tokens": strconv.FormatUint(encodeVal(0, 1)+encodeVal(0, 2), 10),
		"map":           "1:11",
		"map.len":       "1",
	}
	if d := Diff(want, oracle(sp)); d != nil {
		t.Fatalf("oracle wrong:\n%s", strings.Join(d, "\n"))
	}
	sys, _ := NewSystem("lazy")
	got, err := runSpec(sp, sys, mech.Retry)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(want, got); d != nil {
		t.Fatalf("execution deviates:\n%s", strings.Join(d, "\n"))
	}
}

func TestStatsReportedPerRun(t *testing.T) {
	s := Generate(5, GenConfig{})
	rs := RunScenarioOn(s, []string{"eager"}, mech.Retry)
	for _, r := range rs {
		if r.Commits == 0 {
			t.Errorf("%s/%s: no commits recorded", r.Engine, r.Mech)
		}
		if r.AbortRate < 0 || r.AbortRate > 1 {
			t.Errorf("abort rate out of range: %v", r.AbortRate)
		}
	}
}

var _ = tm.Config{} // keep the tm import for the hand-built-spec test's types

func TestReplayHintCarriesGeneratorOverrides(t *testing.T) {
	s := Generate(9, GenConfig{Threads: 3, Ops: 30, InjectFault: true})
	rs := RunScenarioOn(s, []string{"eager"}, mech.Retry)
	if len(rs) != 1 || rs[0].Pass {
		t.Fatalf("expected one failing run, got %+v", rs)
	}
	hint := rs[0].String()
	for _, frag := range []string{"-seed 9", "-threads 3", "-ops 30", "-inject"} {
		if !strings.Contains(hint, frag) {
			t.Errorf("replay hint lacks %q:\n%s", frag, hint)
		}
	}
}

func TestEveryThreadHasInjectionTarget(t *testing.T) {
	// injectFault must never be a silent no-op: every generated program
	// carries at least one counter-add per thread.
	for seed := uint64(1); seed <= 50; seed++ {
		sp := Generate(seed, GenConfig{})
		faulted := Generate(seed, GenConfig{InjectFault: true})
		if reflect.DeepEqual(sp.Oracle(), faulted.Oracle()) {
			// Oracles match by construction (fault only affects Run);
			// the real check: the faulted run must fail somewhere.
			rs := RunScenarioOn(faulted, []string{"lazy"}, mech.Retry)
			if rs[0].Pass {
				t.Fatalf("seed %d: injected fault was a no-op", seed)
			}
		}
	}
}
