package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tmsync/internal/buffer"
	"tmsync/internal/condvar"
	"tmsync/internal/core"
	"tmsync/internal/mech"
	"tmsync/internal/mem"
	"tmsync/internal/tm"
	"tmsync/internal/trace"
	"tmsync/internal/txds"
)

// WedgeTimeout bounds one scenario execution; a run that exceeds it is
// reported as wedged (a lost wakeup or deadlock) instead of hanging the
// whole check.
var WedgeTimeout = 60 * time.Second

// opKind enumerates the operations a generated program is built from.
type opKind uint8

const (
	opCounterAdd opKind = iota // counters[a] += b
	opTransfer                 // counters[a] -= c; counters[b] += c (sum-conserving)
	opBufPut                   // bounded-buffer put of value a (blocks while full)
	opBufGet                   // bounded-buffer get (blocks while empty)
	opQueuePut                 // FIFO queue put of value a
	opQueueTake                // FIFO queue take (blocks while empty)
	opStackPush                // stack push of value a
	opStackPop                 // stack pop (blocks while empty)
	opMapPut                   // map[a] = b (keys are thread-partitioned)
	opMapDel                   // delete map[a]
	opReadHeavy                // one long read-mostly transaction: read counters[(a+j)%len] for j in [1, c], then counters[a] += b
)

// op is one step of a thread program. Field meaning depends on kind.
type op struct {
	kind    opKind
	a, b, c uint64
}

// spec is the deterministic description of a generated scenario: the
// world geometry plus one op program per thread. Everything an execution
// or the oracle needs derives from it.
type spec struct {
	threads  int
	counters int
	bufCap   int // 0 = scenario has no bounded buffer
	hasQueue bool
	hasStack bool
	hasMap   bool
	mapKeys  int // distinct keys (thread-partitioned)

	// arena capacities, sized so Alloc never blocks indefinitely
	queueCap, stackCap, mapCap int

	programs [][]op
}

// producerSeq decomposes an encoded structure value into its producing
// thread and per-thread sequence number. Values are tid<<24|seq with seq
// starting at 1, so zero (an uninitialized slot) is never a legal value.
func producerSeq(v uint64) (tid, seq uint64) { return v >> 24, v & (1<<24 - 1) }

func encodeVal(tid int, seq uint64) uint64 { return uint64(tid)<<24 | seq }

// world instantiates a spec's shared state on one TM system, with every
// blocking point dispatched through one condition-synchronization
// mechanism.
type world struct {
	sys *tm.System
	m   mech.Mechanism

	counters *mem.Array
	buf      *buffer.TMBuffer
	queue    *txds.Queue
	stack    *txds.Stack
	mp       *txds.Map

	// TMCondVar representation: producers broadcast on these after
	// un-emptying their structure (the buffer carries its own pair).
	queueCV *condvar.Var
	stackCV *condvar.Var

	queueNotEmpty core.Pred
	stackNotEmpty core.Pred
}

func newWorld(sp *spec, sys *tm.System, m mech.Mechanism) *world {
	w := &world{sys: sys, m: m, counters: mem.NewArray(sp.counters)}
	if sp.bufCap > 0 {
		w.buf = buffer.NewTM(sp.bufCap)
	}
	if sp.hasQueue {
		w.queue = txds.NewQueue(txds.NewArena(sp.queueCap, txds.QueueNodeWords))
		w.queueCV = condvar.New()
		w.queueNotEmpty = func(tx *tm.Tx, _ []uint64) bool { return w.queue.LenTx(tx) > 0 }
	}
	if sp.hasStack {
		w.stack = txds.NewStack(txds.NewArena(sp.stackCap, txds.StackNodeWords))
		w.stackCV = condvar.New()
		w.stackNotEmpty = func(tx *tm.Tx, _ []uint64) bool { return w.stack.LenTx(tx) > 0 }
	}
	if sp.hasMap {
		w.mp = txds.NewMap(txds.NewArena(sp.mapCap, txds.MapNodeWords), 16)
	}
	return w
}

// wait dispatches one blocking point through the world's mechanism. It is
// called inside a transaction whose precondition check failed; addr is
// the word the check read and the enabling writer writes (Await), pred is
// the precondition (WaitPred), cv is the structure's condition variable
// (TMCondVar). All paths unwind the transaction except TMCondVar's Wait,
// which commits it and re-executes the block from the top.
func (w *world) wait(tx *tm.Tx, cv *condvar.Var, pred core.Pred, addr *uint64) {
	switch w.m {
	case mech.TMCondVar:
		cv.Wait(tx)
	case mech.WaitPred:
		core.WaitPred(tx, pred)
	case mech.Await:
		core.Await(tx, addr)
	case mech.Retry:
		core.Retry(tx)
	case mech.RetryOrig:
		core.RetryOrig(tx)
	case mech.Restart:
		tx.Restart()
	default:
		panic("harness: mechanism " + string(w.m) + " is not transactional")
	}
}

func (w *world) queuePut(thr *tm.Thread, v uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		w.queue.PutTx(tx, v)
		if w.m == mech.TMCondVar {
			w.queueCV.Broadcast(tx)
		}
	})
}

func (w *world) queueTake(thr *tm.Thread) uint64 {
	var out uint64
	thr.Atomic(func(tx *tm.Tx) {
		v, ok := w.queue.TryTakeTx(tx)
		if !ok {
			w.wait(tx, w.queueCV, w.queueNotEmpty, w.queue.HeadAddr())
		}
		out = v
	})
	return out
}

func (w *world) stackPush(thr *tm.Thread, v uint64) {
	thr.Atomic(func(tx *tm.Tx) {
		w.stack.PushTx(tx, v)
		if w.m == mech.TMCondVar {
			w.stackCV.Broadcast(tx)
		}
	})
}

func (w *world) stackPop(thr *tm.Thread) uint64 {
	var out uint64
	thr.Atomic(func(tx *tm.Tx) {
		v, ok := w.stack.TryPopTx(tx)
		if !ok {
			w.wait(tx, w.stackCV, w.stackNotEmpty, w.stack.TopAddr())
		}
		out = v
	})
	return out
}

// threadLog records what one thread consumed, for post-run invariant
// checks. Written only by its owning goroutine, read after the join.
type threadLog struct {
	bufGot   []uint64
	queueGot []uint64
	stackGot []uint64
}

func (w *world) runThread(thr *tm.Thread, t int, prog []op, log *threadLog, rec *trace.Recorder) {
	for _, o := range prog {
		switch o.kind {
		case opCounterAdd:
			thr.Atomic(func(tx *tm.Tx) {
				w.counters.Set(tx, int(o.a), w.counters.Get(tx, int(o.a))+o.b)
			})
		case opTransfer:
			thr.Atomic(func(tx *tm.Tx) {
				w.counters.Set(tx, int(o.a), w.counters.Get(tx, int(o.a))-o.c)
				w.counters.Set(tx, int(o.b), w.counters.Get(tx, int(o.b))+o.c)
			})
		case opBufPut:
			w.buf.PutMech(thr, w.m, o.a)
		case opBufGet:
			log.bufGot = append(log.bufGot, w.buf.GetMech(thr, w.m))
		case opQueuePut:
			w.queuePut(thr, o.a)
		case opQueueTake:
			log.queueGot = append(log.queueGot, w.queueTake(thr))
		case opStackPush:
			w.stackPush(thr, o.a)
		case opStackPop:
			log.stackGot = append(log.stackGot, w.stackPop(thr))
		case opMapPut:
			thr.Atomic(func(tx *tm.Tx) { w.mp.PutTx(tx, o.a, o.b) })
		case opMapDel:
			thr.Atomic(func(tx *tm.Tx) { w.mp.DeleteTx(tx, o.a) })
		case opReadHeavy:
			// The read-mostly long transaction: a wide read set over the
			// counter array (stressing validation and wake-scan overlap)
			// whose only effect is one commutative add, so the oracle fact
			// stays interleaving-independent — the reads feed nothing.
			thr.Atomic(func(tx *tm.Tx) {
				n := uint64(w.counters.Len())
				for j := uint64(1); j <= o.c; j++ {
					_ = w.counters.Get(tx, int((o.a+j)%n))
				}
				w.counters.Set(tx, int(o.a), w.counters.Get(tx, int(o.a))+o.b)
			})
		}
		if rec != nil {
			// One group per completed op, emitted after Atomic returns:
			// aborted attempts never duplicate program events, and each
			// thread's groups land in its program order.
			rec.Group(w.opEvents(t, o)...)
		}
	}
}

// opEvents renders one completed op as its begin..commit program-event
// group — the exact inverse of replay's groupOp.
func (w *world) opEvents(t int, o op) []trace.Event {
	begin := trace.Event{Thread: t, Kind: trace.Begin}
	commit := trace.Event{Thread: t, Kind: trace.Commit}
	wrap := func(payload ...trace.Event) []trace.Event {
		out := make([]trace.Event, 0, len(payload)+2)
		out = append(out, begin)
		out = append(out, payload...)
		return append(out, commit)
	}
	switch o.kind {
	case opCounterAdd:
		return wrap(trace.Event{Thread: t, Kind: trace.Write, Obj: trace.Counter, K: o.a, V: o.b})
	case opTransfer:
		return wrap(
			trace.Event{Thread: t, Kind: trace.Write, Obj: trace.Counter, K: o.a, V: o.c, Neg: true},
			trace.Event{Thread: t, Kind: trace.Write, Obj: trace.Counter, K: o.b, V: o.c})
	case opBufPut:
		return wrap(trace.Event{Thread: t, Kind: trace.Write, Obj: trace.Buf, V: o.a})
	case opBufGet:
		return wrap(trace.Event{Thread: t, Kind: trace.Read, Obj: trace.Buf})
	case opQueuePut:
		return wrap(trace.Event{Thread: t, Kind: trace.Write, Obj: trace.Queue, V: o.a})
	case opQueueTake:
		return wrap(trace.Event{Thread: t, Kind: trace.Read, Obj: trace.Queue})
	case opStackPush:
		return wrap(trace.Event{Thread: t, Kind: trace.Write, Obj: trace.Stack, V: o.a})
	case opStackPop:
		return wrap(trace.Event{Thread: t, Kind: trace.Read, Obj: trace.Stack})
	case opMapPut:
		return wrap(trace.Event{Thread: t, Kind: trace.Write, Obj: trace.Map, K: o.a, V: o.b})
	case opMapDel:
		return wrap(trace.Event{Thread: t, Kind: trace.Del, Obj: trace.Map, K: o.a})
	case opReadHeavy:
		n := uint64(w.counters.Len())
		payload := make([]trace.Event, 0, o.c+1)
		for j := uint64(1); j <= o.c; j++ {
			payload = append(payload, trace.Event{Thread: t, Kind: trace.Read, Obj: trace.Counter, K: (o.a + j) % n})
		}
		payload = append(payload, trace.Event{Thread: t, Kind: trace.Write, Obj: trace.Counter, K: o.a, V: o.b})
		return wrap(payload...)
	}
	panic("harness: unknown op kind")
}

// runSpec executes the spec's program concurrently on sys under m,
// checks the interleaving-independent invariants, and returns the final
// observation.
func runSpec(sp *spec, sys *tm.System, m mech.Mechanism) (Observation, error) {
	return runSpecRec(sp, sys, m, nil)
}

// runSpecRec is runSpec with an optional trace recorder: each worker is
// bound to its scenario thread index (so driver runtime events attribute
// correctly) and emits one program-event group per completed op.
func runSpecRec(sp *spec, sys *tm.System, m mech.Mechanism, rec *trace.Recorder) (Observation, error) {
	w := newWorld(sp, sys, m)
	logs := make([]threadLog, sp.threads)
	done := make(chan int, sp.threads)
	for t := 0; t < sp.threads; t++ {
		go func(t int) {
			thr := sys.NewThread()
			if rec != nil {
				rec.Bind(thr, t)
			}
			w.runThread(thr, t, sp.programs[t], &logs[t], rec)
			// Teardown flush bound: with wakeup coalescing enabled a
			// finishing worker must not strand deferred wake scans that
			// still-blocked peers are waiting on.
			thr.Detach()
			done <- t
		}(t)
	}
	deadline := time.After(WedgeTimeout)
	for t := 0; t < sp.threads; t++ {
		select {
		case <-done:
		case <-deadline:
			return nil, fmt.Errorf("wedged: %d of %d threads still blocked after %v (lost wakeup?)", sp.threads-t, sp.threads, WedgeTimeout)
		}
	}
	return w.observe(sp, logs)
}

// observe snapshots the final state, verifies conservation and FIFO
// invariants against the programs, and renders the observation.
func (w *world) observe(sp *spec, logs []threadLog) (Observation, error) {
	obs := Observation{}
	thr := w.sys.NewThread()

	var counters []uint64
	var bufRemaining, queueRemaining, stackRemaining []uint64
	var mapSnap map[uint64]uint64
	thr.Atomic(func(tx *tm.Tx) {
		counters = counters[:0]
		for i := 0; i < w.counters.Len(); i++ {
			counters = append(counters, w.counters.Get(tx, i))
		}
		if w.buf != nil {
			bufRemaining = bufRemaining[:0]
			for n := w.buf.Count(tx); n > 0; n-- {
				bufRemaining = append(bufRemaining, w.buf.Get(tx))
			}
		}
		if w.queue != nil {
			queueRemaining = w.queue.SnapshotTx(tx)
		}
		if w.stack != nil {
			stackRemaining = w.stack.SnapshotTx(tx)
		}
		if w.mp != nil {
			mapSnap = w.mp.SnapshotTx(tx)
		}
	})

	for i, v := range counters {
		obs[fmt.Sprintf("counter[%d]", i)] = fmt.Sprintf("%d", v)
	}

	check := func(structure string, produced []uint64, remaining []uint64, got func(*threadLog) []uint64, fifo bool) error {
		consumed := make([]uint64, 0, len(produced))
		for t := range logs {
			g := got(&logs[t])
			consumed = append(consumed, g...)
			if fifo {
				// Per-producer FIFO: within one consumer's stream, values
				// from any single producer must appear in production order.
				last := map[uint64]uint64{}
				for _, v := range g {
					tid, seq := producerSeq(v)
					if seq <= last[tid] {
						return fmt.Errorf("%s: consumer %d saw producer %d out of order (seq %d after %d)", structure, t, tid, seq, last[tid])
					}
					last[tid] = seq
				}
			}
		}
		all := append(append([]uint64(nil), consumed...), remaining...)
		if err := sameMultiset(structure, produced, all); err != nil {
			return err
		}
		var sum uint64
		for _, v := range produced {
			sum += v
		}
		obs[structure+".len"] = fmt.Sprintf("%d", len(remaining))
		obs[structure+".tokens"] = fmt.Sprintf("%d", sum)
		return nil
	}

	if w.buf != nil {
		if err := check("buffer", producedValues(sp, opBufPut), bufRemaining, func(l *threadLog) []uint64 { return l.bufGot }, true); err != nil {
			return nil, err
		}
	}
	if w.queue != nil {
		if err := check("queue", producedValues(sp, opQueuePut), queueRemaining, func(l *threadLog) []uint64 { return l.queueGot }, true); err != nil {
			return nil, err
		}
	}
	if w.stack != nil {
		// LIFO order is interleaving-dependent; conservation is not.
		if err := check("stack", producedValues(sp, opStackPush), stackRemaining, func(l *threadLog) []uint64 { return l.stackGot }, false); err != nil {
			return nil, err
		}
	}
	if w.mp != nil {
		obs["map"] = renderMap(mapSnap)
		obs["map.len"] = fmt.Sprintf("%d", len(mapSnap))
	}
	return obs, nil
}

// producedValues lists every value the programs feed into one structure.
func producedValues(sp *spec, kind opKind) []uint64 {
	var out []uint64
	for _, prog := range sp.programs {
		for _, o := range prog {
			if o.kind == kind {
				out = append(out, o.a)
			}
		}
	}
	return out
}

// sameMultiset reports whether got is a permutation of want — token
// conservation: every produced value consumed or still present, exactly
// once, nothing invented.
func sameMultiset(structure string, want, got []uint64) error {
	if len(want) != len(got) {
		return fmt.Errorf("%s: %d values produced but %d accounted for", structure, len(want), len(got))
	}
	count := make(map[uint64]int, len(want))
	for _, v := range want {
		count[v]++
	}
	for _, v := range got {
		count[v]--
		if count[v] < 0 {
			if v == 0 {
				return fmt.Errorf("%s: observed value 0 (uninitialized slot leaked)", structure)
			}
			tid, seq := producerSeq(v)
			return fmt.Errorf("%s: value %d (producer %d seq %d) observed more times than produced", structure, v, tid, seq)
		}
	}
	return nil
}

func renderMap(m map[uint64]uint64) string {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d:%d", k, m[k])
	}
	return strings.Join(parts, ";")
}

// oracle computes the expected observation sequentially: it replays every
// program thread-major over a plain-Go model. All scenario facts are
// interleaving-independent (counter arithmetic commutes, token sums are
// conserved, map keys are thread-partitioned), so any replay order gives
// the unique answer a correct concurrent execution must reach.
func oracle(sp *spec) Observation {
	obs := Observation{}
	counters := make([]uint64, sp.counters)
	model := map[uint64]uint64{}
	var bufLen, queueLen, stackLen int
	var bufSum, queueSum, stackSum uint64
	for _, prog := range sp.programs {
		for _, o := range prog {
			switch o.kind {
			case opCounterAdd:
				counters[o.a] += o.b
			case opTransfer:
				counters[o.a] -= o.c
				counters[o.b] += o.c
			case opBufPut:
				bufLen++
				bufSum += o.a
			case opBufGet:
				bufLen--
			case opQueuePut:
				queueLen++
				queueSum += o.a
			case opQueueTake:
				queueLen--
			case opStackPush:
				stackLen++
				stackSum += o.a
			case opStackPop:
				stackLen--
			case opMapPut:
				model[o.a] = o.b
			case opMapDel:
				delete(model, o.a)
			case opReadHeavy:
				counters[o.a] += o.b
			}
		}
	}
	for i, v := range counters {
		obs[fmt.Sprintf("counter[%d]", i)] = fmt.Sprintf("%d", v)
	}
	if sp.bufCap > 0 {
		obs["buffer.len"] = fmt.Sprintf("%d", bufLen)
		obs["buffer.tokens"] = fmt.Sprintf("%d", bufSum)
	}
	if sp.hasQueue {
		obs["queue.len"] = fmt.Sprintf("%d", queueLen)
		obs["queue.tokens"] = fmt.Sprintf("%d", queueSum)
	}
	if sp.hasStack {
		obs["stack.len"] = fmt.Sprintf("%d", stackLen)
		obs["stack.tokens"] = fmt.Sprintf("%d", stackSum)
	}
	if sp.hasMap {
		obs["map"] = renderMap(model)
		obs["map.len"] = fmt.Sprintf("%d", len(model))
	}
	return obs
}
