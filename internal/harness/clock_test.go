package harness

// Differential clock-mode testing: Knobs.ClockMode swaps the commit-
// timestamp protocol (global fetch-and-add, GV4 pass-on-CAS-failure,
// GV5-style deferred) underneath every engine. Shared timestamps and a
// clock that only moves on too-new observations change which commits
// validate and which extend, but must never change an observable
// outcome. Running the generated suite under every mode — bare, with
// timestamp extension (the configuration deferred is designed for), and
// crossed with the adaptive-resize and coalescing machinery — pins that
// claim against the sequential oracle.

import (
	"testing"
	"time"

	"tmsync/internal/clock"
)

func clockModes() []string {
	out := make([]string, 0, 3)
	for _, m := range clock.Modes() {
		out = append(out, string(m))
	}
	return out
}

func TestGeneratedSuiteIdenticalAcrossClockModes(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, mode := range clockModes() {
			for _, ext := range []bool{false, true} {
				k := Knobs{ClockMode: mode, TimestampExtension: ext}
				for _, r := range RunScenarioKnobs(s, Engines, "", k) {
					if !r.Pass {
						t.Errorf("clock=%s ext=%v: %s", mode, ext, r.String())
					}
				}
			}
		}
	}
}

// TestGeneratedSuiteIdenticalClockModesUnderResizesAndCoalescing crosses
// the clock protocols with the other deferred-state machinery: forced
// online stripe resizes (which abort commits between timestamp and
// release) and coalesced wake scans (which ride on commit timestamps'
// lock-release ordering).
func TestGeneratedSuiteIdenticalClockModesUnderResizesAndCoalescing(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, mode := range []string{"pof", "deferred"} {
			adaptive := Knobs{
				ClockMode:      mode,
				Stripes:        1,
				ResizeEvery:    5,
				ResizeSchedule: []int{4, 64, 16, 1},
			}
			coalesce := Knobs{
				ClockMode:        mode,
				CoalesceCommits:  8,
				CoalesceMaxDelay: 2 * time.Millisecond,
			}
			for _, k := range []Knobs{adaptive, coalesce} {
				for _, r := range RunScenarioKnobs(s, Engines, "", k) {
					if !r.Pass {
						t.Errorf("clock=%s knobs=%+v: %s", mode, k, r.String())
					}
				}
			}
		}
	}
}

// TestRetryOrigIdenticalAcrossClockModes pins the Retry-Orig path, whose
// registry scans key off the write orecs committed at (possibly shared)
// timestamps.
func TestRetryOrigIdenticalAcrossClockModes(t *testing.T) {
	seeds := []uint64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	stmEngines := []string{"eager", "lazy"} // Retry-Orig needs STM metadata
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, mode := range clockModes() {
			for _, r := range RunScenarioKnobs(s, stmEngines, "retry-orig", Knobs{ClockMode: mode}) {
				if !r.Pass {
					t.Errorf("clock=%s: %s", mode, r.String())
				}
			}
		}
	}
}

// TestInjectedFaultStillCaughtAcrossClockModes keeps the checker honest:
// a quieter clock must not mask real invariant violations.
func TestInjectedFaultStillCaughtAcrossClockModes(t *testing.T) {
	s := Generate(7, GenConfig{InjectFault: true})
	for _, mode := range []string{"pof", "deferred"} {
		res := RunScenarioKnobs(s, Engines, "", Knobs{ClockMode: mode})
		var rep Report
		rep.Add(res)
		if rep.AllPassed() {
			t.Errorf("clock=%s: injected violation went undetected", mode)
		}
	}
}

// TestKnobRoundTripClock pins the trace stamp for the clock knobs.
func TestKnobRoundTripClock(t *testing.T) {
	in := Knobs{ClockMode: "deferred", TimestampExtension: true}
	enc := EncodeKnobs(in)
	out, err := DecodeKnobs(enc)
	if err != nil {
		t.Fatalf("DecodeKnobs(%q): %v", enc, err)
	}
	if out.ClockMode != in.ClockMode || out.TimestampExtension != in.TimestampExtension {
		t.Fatalf("round trip %q: got %+v, want %+v", enc, out, in)
	}
	if _, err := DecodeKnobs("clock=bogus"); err == nil {
		t.Fatal("DecodeKnobs accepted clock=bogus")
	}
	if _, err := DecodeKnobs("ext=2"); err == nil {
		t.Fatal("DecodeKnobs accepted ext=2")
	}
}
