package harness

import (
	"fmt"
	"sort"

	"tmsync/internal/mech"
	"tmsync/internal/stats"
)

// Report aggregates differential results into the per-engine (and per
// engine × mechanism) pass/abort-rate tables cmd/tmcheck prints.
type Report struct {
	cells    map[string]*cell
	failures []Result
}

type cell struct {
	engine    string
	mechanism mech.Mechanism
	runs      int
	passes    int
	commits   uint64
	aborts    uint64
	rates     []float64 // per-run abort rates, summarized with stats
}

// Add folds a batch of results into the report.
func (rep *Report) Add(results []Result) {
	if rep.cells == nil {
		rep.cells = make(map[string]*cell)
	}
	for i := range results {
		r := &results[i]
		key := r.Engine + "/" + string(r.Mech)
		c := rep.cells[key]
		if c == nil {
			c = &cell{engine: r.Engine, mechanism: r.Mech}
			rep.cells[key] = c
		}
		c.runs++
		if r.Pass {
			c.passes++
		} else {
			rep.failures = append(rep.failures, *r)
		}
		c.commits += r.Commits
		c.aborts += r.Aborts
		c.rates = append(c.rates, r.AbortRate)
	}
}

// Failures returns every failed result, in insertion order.
func (rep *Report) Failures() []Result { return rep.failures }

// Runs returns the total number of executions folded in.
func (rep *Report) Runs() int {
	n := 0
	for _, c := range rep.cells {
		n += c.runs
	}
	return n
}

// AllPassed reports whether no execution deviated from its oracle.
func (rep *Report) AllPassed() bool { return len(rep.failures) == 0 }

// engineOrder ranks engines in the canonical evaluation order.
func engineOrder(e string) int {
	for i, x := range Engines {
		if x == e {
			return i
		}
	}
	return len(Engines)
}

// EngineTable renders one row per engine: runs, passes, commit and abort
// totals, and the abort rate across runs as mean±stddev (internal/stats).
func (rep *Report) EngineTable() string {
	agg := map[string]*cell{}
	for _, c := range rep.cells {
		a := agg[c.engine]
		if a == nil {
			a = &cell{engine: c.engine}
			agg[a.engine] = a
		}
		a.runs += c.runs
		a.passes += c.passes
		a.commits += c.commits
		a.aborts += c.aborts
		a.rates = append(a.rates, c.rates...)
	}
	rows := make([]*cell, 0, len(agg))
	for _, c := range agg {
		rows = append(rows, c)
	}
	sort.Slice(rows, func(i, j int) bool { return engineOrder(rows[i].engine) < engineOrder(rows[j].engine) })
	var t stats.Table
	t.Header("engine", "pass", "commits", "aborts", "abort-rate")
	for _, c := range rows {
		t.Row(c.engine, fmt.Sprintf("%d/%d", c.passes, c.runs),
			fmt.Sprintf("%d", c.commits), fmt.Sprintf("%d", c.aborts),
			stats.Summarize(c.rates).String())
	}
	return t.String()
}

// MechTable renders the full engine × mechanism breakdown.
func (rep *Report) MechTable() string {
	rows := make([]*cell, 0, len(rep.cells))
	for _, c := range rep.cells {
		rows = append(rows, c)
	}
	sort.Slice(rows, func(i, j int) bool {
		if a, b := engineOrder(rows[i].engine), engineOrder(rows[j].engine); a != b {
			return a < b
		}
		return rows[i].mechanism < rows[j].mechanism
	})
	var t stats.Table
	t.Header("engine", "mechanism", "pass", "commits", "aborts", "abort-rate")
	for _, c := range rows {
		t.Row(c.engine, string(c.mechanism), fmt.Sprintf("%d/%d", c.passes, c.runs),
			fmt.Sprintf("%d", c.commits), fmt.Sprintf("%d", c.aborts),
			stats.Summarize(c.rates).String())
	}
	return t.String()
}
