package harness

// Differential coalesce testing: cross-commit wakeup coalescing
// (Knobs.CoalesceCommits) trades wakeup latency for fewer scans but must
// never change an observable outcome — every deferred scan flushes at a
// bound (K commits, block, abort, read-back, worker teardown), so no
// wakeup is ever lost. Running the generated suite at K ∈ {0, 2, 8}
// (0 IS the scan-every-commit baseline), alone and combined with forced
// online stripe resizes, pins that claim against the sequential oracle.

import (
	"testing"
	"time"
)

var coalesceBounds = []int{0, 2, 8}

func TestGeneratedSuiteIdenticalAcrossCoalesceBounds(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, k := range coalesceBounds {
			for _, r := range RunScenarioKnobs(s, Engines, "", Knobs{CoalesceCommits: k}) {
				if !r.Pass {
					t.Errorf("coalesce=%d: %s", k, r.String())
				}
			}
		}
	}
}

// TestGeneratedSuiteIdenticalCoalescingUnderForcedResizes crosses the two
// deferred-state machines: a pending scan buffer whose stripe set was
// named under a generation the forced schedule keeps abandoning must
// re-derive its coverage and still wake exactly the right waiters.
func TestGeneratedSuiteIdenticalCoalescingUnderForcedResizes(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, k := range []int{2, 8} {
			knobs := Knobs{
				Stripes:         1,
				CoalesceCommits: k,
				ResizeEvery:     5,
				ResizeSchedule:  []int{4, 64, 16, 1},
			}
			for _, r := range RunScenarioKnobs(s, Engines, "", knobs) {
				if !r.Pass {
					t.Errorf("coalesce=%d under forced resizes: %s", k, r.String())
				}
			}
		}
	}
}

// TestGeneratedSuiteIdenticalWithAgeBound crosses coalescing with the
// CoalesceMaxDelay age bound: the age flush (commit/attempt boundary
// checks and the idle-owner backstop drain alike) is pure latency
// mechanics, so even sub-millisecond bounds that fire constantly must
// yield outcomes identical to the sequential oracle.
func TestGeneratedSuiteIdenticalWithAgeBound(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	bounds := []struct {
		k int
		d time.Duration
	}{
		{2, 500 * time.Microsecond}, // fires constantly, racing owner flushes
		{8, 2 * time.Millisecond},
		{8, time.Hour}, // armed but never firing: plain coalescing behaviour
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, b := range bounds {
			knobs := Knobs{CoalesceCommits: b.k, CoalesceMaxDelay: b.d}
			for _, r := range RunScenarioKnobs(s, Engines, "", knobs) {
				if !r.Pass {
					t.Errorf("coalesce=%d max-delay=%v: %s", b.k, b.d, r.String())
				}
			}
		}
	}
}

// TestRetryOrigIdenticalAcrossCoalesceBounds pins the Retry-Orig path in
// isolation: its registry entries are claimed by the merged origWake of a
// flush rather than per-commit scans.
func TestRetryOrigIdenticalAcrossCoalesceBounds(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	stmEngines := []string{"eager", "lazy"} // Retry-Orig needs STM metadata
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, k := range coalesceBounds {
			for _, r := range RunScenarioKnobs(s, stmEngines, "retry-orig", Knobs{CoalesceCommits: k}) {
				if !r.Pass {
					t.Errorf("coalesce=%d: %s", k, r.String())
				}
			}
		}
	}
}

// TestParsecScenarioIdenticalWithCoalescing covers the registered
// workloads, whose workers flush at teardown via Thread.Detach — the
// bound the randomized scenarios exercise through the world runner.
func TestParsecScenarioIdenticalWithCoalescing(t *testing.T) {
	if testing.Short() {
		t.Skip("full parsec coalesce sweep is not short")
	}
	for _, s := range ParsecScenarios(4, 1) {
		for _, r := range RunScenarioKnobs(s, Engines, "", Knobs{CoalesceCommits: 8}) {
			if !r.Pass {
				t.Errorf("coalesce=8: %s", r.String())
			}
		}
	}
}

// TestInjectedFaultStillCaughtWithCoalescing keeps the checker honest:
// coalescing must not mask real invariant violations either.
func TestInjectedFaultStillCaughtWithCoalescing(t *testing.T) {
	s := Generate(7, GenConfig{InjectFault: true})
	for _, k := range []int{2, 8} {
		res := RunScenarioKnobs(s, Engines, "", Knobs{CoalesceCommits: k})
		var rep Report
		rep.Add(res)
		if rep.AllPassed() {
			t.Errorf("coalesce=%d: injected violation went undetected", k)
		}
	}
}
