package harness

// Differential replay: reconstruct a runnable scenario from a decoded
// trace. The program layer (begin..commit groups) maps back onto spec
// ops by shape — the exact inverse of world.opEvents — after which the
// scenario runs through the ordinary engine × mechanism sweep against a
// freshly computed sequential oracle. Runtime events (abort/block/wake/
// detach) are commentary about the recorded schedule and are ignored:
// replay re-executes the program, it does not re-enforce a schedule.
//
// Because fixtures may be written by hand, reconstruction also enforces
// the semantic preconditions the oracle's soundness rests on, plus the
// per-structure termination floors: thread-partitioned map keys,
// producer-encoded structure values, takes covered by puts, and capacity
// floors. The decoder cannot check these (they span events). Validation
// is deliberately per-structure: cross-structure ordering — e.g. thread A
// doing buffer-get then queue-put while thread B does queue-take then
// buffer-put, a circular blocking dependency — is NOT checked, because
// deciding that every interleaving terminates is a model-checking
// problem. A hand-written fixture with such a cycle can still deadlock
// at run time; the harness wedge detector (WedgeTimeout in world.go)
// converts that into a reported wedge error rather than a hang.

import (
	"fmt"

	"tmsync/internal/mech"
	"tmsync/internal/tm"
	"tmsync/internal/trace"
)

// ReplayTrace turns a decoded trace back into a runnable scenario plus
// the knob configuration stamped at record time.
func ReplayTrace(tr *trace.Trace) (*Scenario, Knobs, error) {
	sp, err := specFromTrace(tr)
	if err != nil {
		return nil, Knobs{}, err
	}
	k, err := DecodeKnobs(tr.Knobs)
	if err != nil {
		return nil, Knobs{}, fmt.Errorf("trace knobs stamp: %w", err)
	}
	oracleObs := oracle(sp)
	name := "replay"
	if tr.Source != "" {
		name = "replay-" + tr.Source
	}
	return &Scenario{
		Name:       name,
		Seed:       tr.Seed,
		ReplayArgs: tr.Replay,
		Digest:     sp.digest(),
		Threads:    sp.threads,
		Oracle:     func() Observation { return oracleObs },
		Run: func(sys *tm.System, m mech.Mechanism) (Observation, error) {
			return runSpec(sp, sys, m)
		},
		sp: sp,
	}, k, nil
}

// specFromTrace rebuilds the spec a trace's program layer describes.
func specFromTrace(tr *trace.Trace) (*spec, error) {
	w := tr.World
	sp := &spec{
		threads:  w.Threads,
		counters: w.Counters,
		bufCap:   w.BufCap,
		hasQueue: w.HasQueue,
		hasStack: w.HasStack,
		hasMap:   w.HasMap,
		mapKeys:  w.MapKeys,
		queueCap: w.QueueCap,
		stackCap: w.StackCap,
		mapCap:   w.MapCap,
	}
	if sp.threads < 1 {
		return nil, fmt.Errorf("trace world has no threads")
	}
	sp.programs = make([][]op, sp.threads)
	open := make([][]trace.Event, sp.threads)
	inTxn := make([]bool, sp.threads)
	for _, ev := range tr.Events {
		if ev.Kind.Runtime() {
			continue
		}
		t := ev.Thread
		if t < 0 || t >= sp.threads {
			return nil, fmt.Errorf("event thread %d out of range [0, %d)", t, sp.threads)
		}
		switch ev.Kind {
		case trace.Begin:
			if inTxn[t] {
				return nil, fmt.Errorf("thread %d: nested begin", t)
			}
			inTxn[t] = true
			open[t] = open[t][:0]
		case trace.Commit:
			if !inTxn[t] {
				return nil, fmt.Errorf("thread %d: commit without begin", t)
			}
			o, err := groupOp(sp, open[t])
			if err != nil {
				return nil, fmt.Errorf("thread %d, op %d: %w", t, len(sp.programs[t])+1, err)
			}
			sp.programs[t] = append(sp.programs[t], o)
			inTxn[t] = false
		default:
			if !inTxn[t] {
				return nil, fmt.Errorf("thread %d: %s outside a transaction", t, ev.Kind)
			}
			open[t] = append(open[t], ev)
		}
	}
	for t, openT := range inTxn {
		if openT {
			return nil, fmt.Errorf("thread %d: trace ends inside an open transaction", t)
		}
	}
	if err := validateSpec(sp); err != nil {
		return nil, err
	}
	return sp, nil
}

// groupOp maps one transaction's payload events onto the spec op whose
// opEvents rendering they are. Shapes that match no op are errors — an
// event sequence the harness cannot execute must not replay silently as
// something else.
func groupOp(sp *spec, evs []trace.Event) (op, error) {
	if len(evs) == 1 {
		e := evs[0]
		switch {
		case e.Kind == trace.Write && e.Obj == trace.Counter && !e.Neg:
			return op{kind: opCounterAdd, a: e.K, b: e.V}, nil
		case e.Kind == trace.Write && e.Obj == trace.Buf:
			return op{kind: opBufPut, a: e.V}, nil
		case e.Kind == trace.Read && e.Obj == trace.Buf:
			return op{kind: opBufGet}, nil
		case e.Kind == trace.Write && e.Obj == trace.Queue:
			return op{kind: opQueuePut, a: e.V}, nil
		case e.Kind == trace.Read && e.Obj == trace.Queue:
			return op{kind: opQueueTake}, nil
		case e.Kind == trace.Write && e.Obj == trace.Stack:
			return op{kind: opStackPush, a: e.V}, nil
		case e.Kind == trace.Read && e.Obj == trace.Stack:
			return op{kind: opStackPop}, nil
		case e.Kind == trace.Write && e.Obj == trace.Map:
			return op{kind: opMapPut, a: e.K, b: e.V}, nil
		case e.Kind == trace.Del && e.Obj == trace.Map:
			return op{kind: opMapDel, a: e.K}, nil
		}
		return op{}, fmt.Errorf("unrecognized single-event transaction (%s %s)", evs[0].Kind, evs[0].Obj)
	}
	// Two counter writes, -d then +d on distinct cells: a transfer.
	if len(evs) == 2 &&
		evs[0].Kind == trace.Write && evs[0].Obj == trace.Counter && evs[0].Neg &&
		evs[1].Kind == trace.Write && evs[1].Obj == trace.Counter && !evs[1].Neg &&
		evs[0].V == evs[1].V && evs[0].K != evs[1].K {
		return op{kind: opTransfer, a: evs[0].K, b: evs[1].K, c: evs[0].V}, nil
	}
	// k counter reads walking (a+j) % counters for j in [1, k], then one
	// positive counter write to a: a read-heavy transaction.
	last := evs[len(evs)-1]
	if len(evs) >= 2 && last.Kind == trace.Write && last.Obj == trace.Counter && !last.Neg {
		a, n := last.K, uint64(sp.counters)
		for j, e := range evs[:len(evs)-1] {
			if e.Kind != trace.Read || e.Obj != trace.Counter || e.K != (a+uint64(j)+1)%n {
				return op{}, fmt.Errorf("unrecognized transaction shape: reads before a counter write must walk (%d+j) %% %d", a, n)
			}
		}
		return op{kind: opReadHeavy, a: a, b: last.V, c: uint64(len(evs) - 1)}, nil
	}
	return op{}, fmt.Errorf("unrecognized %d-event transaction shape", len(evs))
}

// validateSpec enforces the cross-event semantic preconditions replayed
// programs must meet (see the package comment above — per-structure
// totals and floors only; cross-structure blocking cycles are left to
// the run-time wedge detector).
func validateSpec(sp *spec) error {
	// Counter indices feed slice accesses in the oracle and the runner;
	// the decoder bounds them already, but a spec can also arrive from a
	// programmatically built trace, so re-check here as defense in depth.
	for t, prog := range sp.programs {
		for _, o := range prog {
			var bad bool
			switch o.kind {
			case opCounterAdd, opReadHeavy:
				bad = o.a >= uint64(sp.counters)
			case opTransfer:
				bad = o.a >= uint64(sp.counters) || o.b >= uint64(sp.counters)
			}
			if bad {
				return fmt.Errorf("thread %d: counter index out of range [0, %d)", t, sp.counters)
			}
		}
	}
	type structCheck struct {
		name     string
		put      opKind
		take     opKind
		arenaCap int // -1: no arena (the buffer is a fixed ring)
	}
	checks := []structCheck{
		{"buffer", opBufPut, opBufGet, -1},
		{"queue", opQueuePut, opQueueTake, sp.queueCap},
		{"stack", opStackPush, opStackPop, sp.stackCap},
	}
	for _, c := range checks {
		puts, takes := 0, 0
		lastSeq := make([]uint64, sp.threads)
		for t, prog := range sp.programs {
			for _, o := range prog {
				switch o.kind {
				case c.put:
					puts++
					tid, seq := producerSeq(o.a)
					if o.a == 0 || tid != uint64(t) || seq <= lastSeq[t] {
						return fmt.Errorf("%s: thread %d produces value %d; values must encode thread<<24|seq with per-thread strictly ascending seq >= 1 (the conservation and FIFO invariants read them back)", c.name, t, o.a)
					}
					lastSeq[t] = seq
				case c.take:
					takes++
				}
			}
		}
		if takes > puts {
			return fmt.Errorf("%s: %d takes but only %d puts — some consumer would block forever", c.name, takes, puts)
		}
		if c.name == "buffer" && puts-takes > sp.bufCap && sp.bufCap > 0 {
			return fmt.Errorf("buffer: %d values left over exceed capacity %d — the last producers could never commit", puts-takes, sp.bufCap)
		}
		if c.arenaCap >= 0 && puts > c.arenaCap {
			return fmt.Errorf("%s: %d puts exceed arena capacity %d — allocation could block a producer forever", c.name, puts, c.arenaCap)
		}
	}
	owner := map[uint64]int{}
	for t, prog := range sp.programs {
		for _, o := range prog {
			if o.kind != opMapPut && o.kind != opMapDel {
				continue
			}
			if o.a < 1 || o.a > uint64(sp.mapKeys) {
				return fmt.Errorf("map key %d out of range [1, %d]", o.a, sp.mapKeys)
			}
			if prev, ok := owner[o.a]; ok && prev != t {
				return fmt.Errorf("map key %d touched by threads %d and %d; keys must stay thread-partitioned or the oracle's final map is interleaving-dependent", o.a, prev, t)
			}
			owner[o.a] = t
		}
	}
	if len(owner) > sp.mapCap {
		return fmt.Errorf("map: %d distinct keys exceed arena capacity %d", len(owner), sp.mapCap)
	}
	return nil
}
