package harness

// Golden-seed regression tests for the scenario generator. The harness's
// value rests on seeds being durable: a failure seed printed months ago
// must regenerate the same program forever, and the fixed seeds CI runs
// must keep covering the same programs. Any generator change that re-rolls
// the stream — reordering draws, resizing a range, touching splitmix64 —
// changes these digests and must be a conscious decision (update the
// goldens in the same commit and say why), never silent drift.

import "testing"

var goldenScenarios = []struct {
	seed    uint64
	threads int
	digest  string
}{
	{seed: 1, threads: 4, digest: "e5d019defe3666a2"},
	{seed: 42, threads: 3, digest: "370e0e3bab8e3d21"},
	{seed: 9001, threads: 4, digest: "fb5397eba2fea5c4"},
}

func TestGoldenSeedDigests(t *testing.T) {
	for _, g := range goldenScenarios {
		s := Generate(g.seed, GenConfig{})
		if s.Digest != g.digest {
			t.Errorf("seed %d: digest %s, golden %s — generator drift; if intentional, update the golden and explain why",
				g.seed, s.Digest, g.digest)
		}
		if s.Threads != g.threads {
			t.Errorf("seed %d: threads %d, golden %d", g.seed, s.Threads, g.threads)
		}
	}
}

// goldenDiversified pins the widened-generator paths (Zipf skew,
// read-mostly transactions, phase schedules) with their own golden
// digests; the plain-config goldens above prove the legacy draw stream is
// untouched when every new knob is off.
var goldenDiversified = []struct {
	name   string
	seed   uint64
	cfg    GenConfig
	digest string
}{
	{name: "zipf", seed: 42, cfg: GenConfig{Zipf: 1.2}, digest: "3244d5c1f2b8ca0d"},
	{name: "readmostly", seed: 42, cfg: GenConfig{ReadMostly: true}, digest: "06f93220c27f5dcf"},
	{name: "phases", seed: 42, cfg: GenConfig{Phases: []Phase{{Ops: 6, Mix: "counters"}, {Ops: 6, Mix: "readmostly"}, {Ops: 4, Mix: "map"}}}, digest: "99cc6eeb8b42c358"},
	{name: "zipf+phases", seed: 9001, cfg: GenConfig{Zipf: 0.9, Phases: []Phase{{Ops: 8, Mix: "transfers"}, {Ops: 8, Mix: "mixed"}}}, digest: "15f26a25d644282a"},
}

func TestGoldenDiversifiedDigests(t *testing.T) {
	for _, g := range goldenDiversified {
		s := Generate(g.seed, g.cfg)
		if s.Digest != g.digest {
			t.Errorf("%s (seed %d): digest %s, golden %s — generator drift; if intentional, update the golden and explain why",
				g.name, g.seed, s.Digest, g.digest)
		}
	}
}

func TestDiversifiedScenariosPassDifferential(t *testing.T) {
	// Each widened-generator shape must still hold the oracle on a real
	// engine; one engine here keeps the test fast, CI sweeps all four.
	for _, g := range goldenDiversified {
		s := Generate(g.seed, g.cfg)
		for _, res := range RunScenarioOn(s, []string{"eager"}, "tmcondvar") {
			if res.Failed() {
				t.Errorf("%s: %s", g.name, res.String())
			}
		}
	}
}

func TestDigestDistinguishesConfigAndFault(t *testing.T) {
	base := Generate(42, GenConfig{})
	if got := Generate(42, GenConfig{}); got.Digest != base.Digest {
		t.Fatal("same seed and config produced different digests")
	}
	if over := Generate(42, GenConfig{Threads: 8, Ops: 100}); over.Digest == base.Digest {
		t.Error("generator overrides did not change the digest")
	}
	if inj := Generate(42, GenConfig{InjectFault: true}); inj.Digest == base.Digest {
		t.Error("fault injection did not change the digest (digest must cover the executed program)")
	}
	if other := Generate(43, GenConfig{}); other.Digest == base.Digest {
		t.Error("different seeds produced identical digests")
	}
	if base.Digest == "" || len(base.Digest) != 16 {
		t.Errorf("digest %q is not a 16-hex-digit fingerprint", base.Digest)
	}
}
