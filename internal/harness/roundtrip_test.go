package harness

// Record→replay round-trip property: for any generated scenario, running
// it with the recorder attached, encoding the trace to text, decoding it
// back, and reconstructing a scenario must reproduce the executed
// program's digest exactly — across every GenConfig variant, including
// the widened Zipf / read-mostly / phase-schedule paths and injected
// faults (the trace captures what actually ran). This is what makes a
// committed fixture trustworthy: the bytes in the file fingerprint the
// precise program every future replay will run.

import (
	"bytes"
	"testing"

	"tmsync/internal/mech"
	"tmsync/internal/trace"
)

var roundTripConfigs = []struct {
	name string
	cfg  GenConfig
}{
	{"default", GenConfig{}},
	{"overrides", GenConfig{Threads: 3, Ops: 12}},
	{"zipf", GenConfig{Zipf: 1.1}},
	{"readmostly", GenConfig{ReadMostly: true}},
	{"phases", GenConfig{Phases: []Phase{{Ops: 5, Mix: "counters"}, {Ops: 5, Mix: "readmostly"}, {Ops: 5, Mix: "map"}}}},
	{"zipf+phases", GenConfig{Zipf: 0.8, Phases: []Phase{{Ops: 6, Mix: "transfers"}, {Ops: 6, Mix: "mixed"}}}},
	{"inject", GenConfig{InjectFault: true}},
}

func TestRecordReplayDigestRoundTrip(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for _, c := range roundTripConfigs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				s := Generate(seed, c.cfg)
				tr, res, err := Record(s, "eager", mech.Retry, Knobs{})
				if err != nil {
					t.Fatalf("seed %d: record: %v", seed, err)
				}
				if c.cfg.InjectFault {
					if res.Pass {
						t.Errorf("seed %d: injected fault went undetected during recording", seed)
					}
				} else if !res.Pass {
					t.Fatalf("seed %d: recorded run failed: %s", seed, res.String())
				}

				var buf bytes.Buffer
				if err := trace.Encode(&buf, tr); err != nil {
					t.Fatalf("seed %d: encode: %v", seed, err)
				}
				dec, err := trace.Decode(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("seed %d: decode of our own encoding: %v\n%s", seed, err, buf.String())
				}
				var re bytes.Buffer
				if err := trace.Encode(&re, dec); err != nil {
					t.Fatalf("seed %d: re-encode: %v", seed, err)
				}
				if !bytes.Equal(buf.Bytes(), re.Bytes()) {
					t.Fatalf("seed %d: encode→decode→encode is not a fixed point", seed)
				}

				rs, k, err := ReplayTrace(dec)
				if err != nil {
					t.Fatalf("seed %d: replay: %v", seed, err)
				}
				if rs.Digest != s.Digest {
					t.Errorf("seed %d: replayed digest %s != recorded program digest %s", seed, rs.Digest, s.Digest)
				}
				if got := EncodeKnobs(k); got != "" {
					t.Errorf("seed %d: default-knob recording replayed with knobs %q", seed, got)
				}
				if rs.Threads != s.Threads {
					t.Errorf("seed %d: replayed threads %d != %d", seed, rs.Threads, s.Threads)
				}
			}
		})
	}
}

// TestReplayedScenarioPassesDifferential closes the loop end to end: a
// replayed trace is not just digest-identical, it actually runs and holds
// the oracle — including for a recorded *injected* run, where the trace
// captures the faulty program and replay's oracle is recomputed from it,
// so the replay itself passes.
func TestReplayedScenarioPassesDifferential(t *testing.T) {
	for _, c := range []GenConfig{{}, {InjectFault: true}, {ReadMostly: true}} {
		s := Generate(7, c)
		tr, _, err := Record(s, "lazy", mech.WaitPred, Knobs{})
		if err != nil {
			t.Fatal(err)
		}
		rs, k, err := ReplayTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range RunScenarioKnobs(rs, []string{"eager", "htm"}, mech.Retry, k) {
			if res.Failed() {
				t.Errorf("inject=%v readmostly=%v: %s", c.InjectFault, c.ReadMostly, res.String())
			}
		}
	}
}

// TestKnobsStampRoundTrip pins the knob stamp codec both ways, including
// through a recorded trace.
func TestKnobsStampRoundTrip(t *testing.T) {
	k := Knobs{Stripes: 128, CoalesceCommits: 8, CoalesceMaxDelay: 2000000, ResizeEvery: 5, ResizeSchedule: []int{64, 256}}
	enc := EncodeKnobs(k)
	dec, err := DecodeKnobs(enc)
	if err != nil {
		t.Fatalf("decode %q: %v", enc, err)
	}
	if got := EncodeKnobs(dec); got != enc {
		t.Fatalf("knob stamp not a fixed point: %q -> %q", enc, got)
	}
	if _, err := DecodeKnobs("coalesce=2 bogus-knob=1"); err == nil {
		t.Error("unknown knob decoded without error")
	}
	if _, err := DecodeKnobs("coalesce"); err == nil {
		t.Error("malformed knob decoded without error")
	}

	s := Generate(11, GenConfig{})
	tr, res, err := Record(s, "eager", mech.TMCondVar, k)
	if err != nil || !res.Pass {
		t.Fatalf("record under knobs: err=%v res=%+v", err, res)
	}
	if tr.Knobs != enc {
		t.Fatalf("trace knob stamp %q, want %q", tr.Knobs, enc)
	}
	_, k2, err := ReplayTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if EncodeKnobs(k2) != enc {
		t.Fatalf("replayed knobs %q, want %q", EncodeKnobs(k2), enc)
	}
}

// TestRecordRejectsNonSpecScenario pins the spec-backed restriction.
func TestRecordRejectsNonSpecScenario(t *testing.T) {
	s := &Scenario{Name: "registered", Oracle: func() Observation { return Observation{} }}
	if _, _, err := Record(s, "eager", mech.Retry, Knobs{}); err == nil {
		t.Error("recording a non-spec scenario must error")
	}
}
