package harness

// Differential stripe testing: the orec-table stripe count is a pure
// performance knob, so the whole scenario suite must produce identical
// oracle outcomes at any stripe count. Running the suite at {1, 4, 64}
// proves the sharded table and the per-stripe waiter index observably
// equivalent to the old global table and global wakeup scan (1 stripe IS
// the old global behaviour).

import (
	"testing"
)

var stripeCounts = []int{1, 4, 64}

func TestGeneratedSuiteIdenticalAcrossStripeCounts(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, stripes := range stripeCounts {
			for _, r := range RunScenarioKnobs(s, Engines, "", Knobs{Stripes: stripes}) {
				if !r.Pass {
					t.Errorf("stripes=%d: %s", stripes, r.String())
				}
			}
		}
	}
}

func TestParsecScenarioIdenticalAcrossStripeCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full parsec stripe sweep is not short")
	}
	for _, s := range ParsecScenarios(4, 1) {
		for _, stripes := range stripeCounts {
			for _, r := range RunScenarioKnobs(s, Engines, "", Knobs{Stripes: stripes}) {
				if !r.Pass {
					t.Errorf("stripes=%d: %s", stripes, r.String())
				}
			}
		}
	}
}

// TestRetryOrigShardedIdenticalAcrossStripeCounts is the sharded
// Retry-Orig registry's differential proof: the registry has one shard
// per orec-table stripe, and one stripe IS the original global registry
// with its single lock — so restricting the generated suite to the
// retry-orig mechanism at {1, 4, 64} stripes pins the sharded
// validate-and-insert protocol against Algorithm 1's global behaviour.
func TestRetryOrigShardedIdenticalAcrossStripeCounts(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	stmEngines := []string{"eager", "lazy"} // Retry-Orig needs STM metadata
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, stripes := range stripeCounts {
			for _, r := range RunScenarioKnobs(s, stmEngines, "retry-orig", Knobs{Stripes: stripes}) {
				if !r.Pass {
					t.Errorf("retry-orig stripes=%d: %s", stripes, r.String())
				}
			}
		}
	}
}

// TestGeneratedSuiteIdenticalWithUnbatchedWakeups proves the per-commit
// signal batch observably inert: delivering every wakeup at claim time
// (the pre-batching behaviour) must produce the same oracle outcomes at
// every stripe count.
func TestGeneratedSuiteIdenticalWithUnbatchedWakeups(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, stripes := range stripeCounts {
			for _, r := range RunScenarioKnobs(s, Engines, "", Knobs{Stripes: stripes, Unbatched: true}) {
				if !r.Pass {
					t.Errorf("unbatched stripes=%d: %s", stripes, r.String())
				}
			}
		}
	}
}

// adaptiveKnobs is the forced online-resize configuration the suite runs
// under: start at one stripe (the old global table) and swap the geometry
// every few commits through growth, a large jump, and shrinkage, cycling.
var adaptiveKnobs = Knobs{Stripes: 1, ResizeEvery: 5, ResizeSchedule: []int{4, 64, 16, 1}}

// TestGeneratedSuiteIdenticalUnderForcedResizes is the online-resize
// differential proof: swapping the stripe geometry while transactions run
// and waiters sleep — including the engine-side generation aborts and the
// registry migration — must be observably inert, for every engine x
// mechanism pair, against the same sequential oracle.
func TestGeneratedSuiteIdenticalUnderForcedResizes(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, r := range RunScenarioKnobs(s, Engines, "", adaptiveKnobs) {
			if !r.Pass {
				t.Errorf("forced resizes: %s", r.String())
			}
		}
	}
}

// TestRetryOrigIdenticalUnderForcedResizes pins the sharded Retry-Orig
// registry's all-shards validate-and-insert against online migration: an
// entry registered before a swap must survive it and wake exactly once.
func TestRetryOrigIdenticalUnderForcedResizes(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, r := range RunScenarioKnobs(s, []string{"eager", "lazy"}, "retry-orig", adaptiveKnobs) {
			if !r.Pass {
				t.Errorf("retry-orig forced resizes: %s", r.String())
			}
		}
	}
}

// TestParsecScenarioIdenticalUnderForcedResizes runs the PARSEC skeletons
// across forced resizes (not short: the skeletons are the long pole).
func TestParsecScenarioIdenticalUnderForcedResizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full parsec forced-resize sweep is not short")
	}
	for _, s := range ParsecScenarios(4, 1) {
		for _, r := range RunScenarioKnobs(s, Engines, "", adaptiveKnobs) {
			if !r.Pass {
				t.Errorf("forced resizes: %s", r.String())
			}
		}
	}
}

// TestInjectedFaultStillCaughtUnderForcedResizes guards the detection
// path: online resizing must not blunt the harness's ability to flag a
// deliberately broken program.
func TestInjectedFaultStillCaughtUnderForcedResizes(t *testing.T) {
	s := Generate(7, GenConfig{InjectFault: true})
	for _, r := range RunScenarioKnobs(s, []string{"eager"}, "retry", adaptiveKnobs) {
		if r.Pass {
			t.Error("forced resizes: injected fault went undetected")
		}
	}
}

// TestInjectedFaultStillCaughtAtEveryStripeCount guards the detection
// path itself: sharding must not blunt the harness's ability to flag a
// deliberately broken program.
func TestInjectedFaultStillCaughtAtEveryStripeCount(t *testing.T) {
	s := Generate(7, GenConfig{InjectFault: true})
	for _, stripes := range stripeCounts {
		results := RunScenarioKnobs(s, []string{"eager"}, "retry", Knobs{Stripes: stripes})
		for _, r := range results {
			if r.Pass {
				t.Errorf("stripes=%d: injected fault went undetected", stripes)
			}
		}
	}
}
