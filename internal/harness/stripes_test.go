package harness

// Differential stripe testing: the orec-table stripe count is a pure
// performance knob, so the whole scenario suite must produce identical
// oracle outcomes at any stripe count. Running the suite at {1, 4, 64}
// proves the sharded table and the per-stripe waiter index observably
// equivalent to the old global table and global wakeup scan (1 stripe IS
// the old global behaviour).

import (
	"testing"
)

var stripeCounts = []int{1, 4, 64}

func TestGeneratedSuiteIdenticalAcrossStripeCounts(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		s := Generate(seed, GenConfig{})
		for _, stripes := range stripeCounts {
			for _, r := range RunScenarioKnobs(s, Engines, "", Knobs{Stripes: stripes}) {
				if !r.Pass {
					t.Errorf("stripes=%d: %s", stripes, r.String())
				}
			}
		}
	}
}

func TestParsecScenarioIdenticalAcrossStripeCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full parsec stripe sweep is not short")
	}
	for _, s := range ParsecScenarios(4, 1) {
		for _, stripes := range stripeCounts {
			for _, r := range RunScenarioKnobs(s, Engines, "", Knobs{Stripes: stripes}) {
				if !r.Pass {
					t.Errorf("stripes=%d: %s", stripes, r.String())
				}
			}
		}
	}
}

// TestInjectedFaultStillCaughtAtEveryStripeCount guards the detection
// path itself: sharding must not blunt the harness's ability to flag a
// deliberately broken program.
func TestInjectedFaultStillCaughtAtEveryStripeCount(t *testing.T) {
	s := Generate(7, GenConfig{InjectFault: true})
	for _, stripes := range stripeCounts {
		results := RunScenarioKnobs(s, []string{"eager"}, "retry", Knobs{Stripes: stripes})
		for _, r := range results {
			if r.Pass {
				t.Errorf("stripes=%d: injected fault went undetected", stripes)
			}
		}
	}
}
