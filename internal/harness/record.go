package harness

// Trace capture: run a spec-backed scenario once with the recorder
// attached and hand back the event log, stamped with everything needed to
// rebuild the run — seed, generator flags, and the knob configuration in
// the key=value form EncodeKnobs/DecodeKnobs define.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tmsync/internal/clock"
	"tmsync/internal/mech"
	"tmsync/internal/mono"
	"tmsync/internal/trace"
)

// specWorld renders a spec's geometry as a trace world header. The field
// set matches what the scenario digest covers, so a replayed program
// fingerprints identically to the recorded one.
func specWorld(sp *spec) trace.World {
	return trace.World{
		Threads:  sp.threads,
		Counters: sp.counters,
		BufCap:   sp.bufCap,
		HasQueue: sp.hasQueue,
		HasStack: sp.hasStack,
		HasMap:   sp.hasMap,
		MapKeys:  sp.mapKeys,
		QueueCap: sp.queueCap,
		StackCap: sp.stackCap,
		MapCap:   sp.mapCap,
	}
}

// Record executes s once under engine × m with a trace recorder attached
// and returns the captured trace alongside the run's differential result.
// Only spec-backed scenarios (generated or trace-replayed) can be
// recorded; registered workloads drive their own structures and have no
// op program to log.
func Record(s *Scenario, engine string, m mech.Mechanism, k Knobs) (*trace.Trace, Result, error) {
	if s.sp == nil {
		return nil, Result{}, fmt.Errorf("harness: scenario %s is not spec-backed and cannot be recorded", s.Name)
	}
	res := Result{Scenario: s.Name, Seed: s.Seed, Injected: s.Injected, ReplayArgs: s.ReplayArgs, Engine: engine, Mech: m}
	sys, err := NewSystemKnobs(engine, k)
	if err != nil {
		return nil, Result{}, err
	}
	rec := trace.NewRecorder(s.Name, s.Seed, EncodeKnobs(k), s.ReplayArgs, specWorld(s.sp))
	rec.Attach(sys)
	start := mono.Now()
	obs, runErr := runSpecRec(s.sp, sys, m, rec)
	res.Duration = start.Elapsed()
	res.Commits = sys.Stats.Commits.Load() + sys.Stats.ROCommits.Load()
	res.Aborts = sys.Stats.Aborts.Load()
	res.AbortRate = sys.Stats.AbortRate()
	if runErr != nil {
		res.Err = runErr
		return rec.Trace(), res, nil
	}
	res.Diff = Diff(s.Oracle(), obs)
	res.Pass = len(res.Diff) == 0
	return rec.Trace(), res, nil
}

// EncodeKnobs renders a knob configuration as the space-separated
// key=value stamp traces carry; zero-valued knobs are omitted, so the
// default configuration encodes as the empty string.
func EncodeKnobs(k Knobs) string {
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	if k.Stripes != 0 {
		add("stripes", strconv.Itoa(k.Stripes))
	}
	if k.Unbatched {
		add("unbatched", "1")
	}
	if k.CoalesceCommits != 0 {
		add("coalesce", strconv.Itoa(k.CoalesceCommits))
	}
	if k.CoalesceMaxDelay != 0 {
		add("max-delay", k.CoalesceMaxDelay.String())
	}
	if k.MinStripes != 0 {
		add("min-stripes", strconv.Itoa(k.MinStripes))
	}
	if k.MaxStripes != 0 {
		add("max-stripes", strconv.Itoa(k.MaxStripes))
	}
	if k.AdaptWindow != 0 {
		add("adapt-window", strconv.Itoa(k.AdaptWindow))
	}
	if k.ResizeEvery != 0 {
		add("resize-every", strconv.Itoa(k.ResizeEvery))
	}
	if len(k.ResizeSchedule) > 0 {
		ss := make([]string, len(k.ResizeSchedule))
		for i, v := range k.ResizeSchedule {
			ss[i] = strconv.Itoa(v)
		}
		add("resize-schedule", strings.Join(ss, ","))
	}
	if k.ClockMode != "" {
		add("clock", k.ClockMode)
	}
	if k.TimestampExtension {
		add("ext", "1")
	}
	return strings.Join(parts, " ")
}

// DecodeKnobs parses the stamp EncodeKnobs writes. Unknown keys are
// errors: a knob this build does not understand cannot be silently
// dropped without changing what configuration the replay runs under.
func DecodeKnobs(s string) (Knobs, error) {
	var k Knobs
	for _, part := range strings.Fields(s) {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Knobs{}, fmt.Errorf("malformed knob %q (want key=value)", part)
		}
		key, val := kv[0], kv[1]
		atoi := func() (int, error) {
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("knob %s: %q is not a non-negative integer", key, val)
			}
			return n, nil
		}
		var err error
		switch key {
		case "stripes":
			k.Stripes, err = atoi()
		case "unbatched":
			if val != "1" {
				return Knobs{}, fmt.Errorf("knob unbatched: want 1, got %q", val)
			}
			k.Unbatched = true
		case "coalesce":
			k.CoalesceCommits, err = atoi()
		case "max-delay":
			k.CoalesceMaxDelay, err = time.ParseDuration(val)
			if err == nil && k.CoalesceMaxDelay < 0 {
				err = fmt.Errorf("knob max-delay: negative duration %q", val)
			}
		case "min-stripes":
			k.MinStripes, err = atoi()
		case "max-stripes":
			k.MaxStripes, err = atoi()
		case "adapt-window":
			k.AdaptWindow, err = atoi()
		case "resize-every":
			k.ResizeEvery, err = atoi()
		case "resize-schedule":
			for _, f := range strings.Split(val, ",") {
				n, aerr := strconv.Atoi(f)
				if aerr != nil || n <= 0 {
					return Knobs{}, fmt.Errorf("knob resize-schedule: %q is not a positive integer", f)
				}
				k.ResizeSchedule = append(k.ResizeSchedule, n)
			}
		case "clock":
			if _, err = clock.ParseMode(val); err == nil {
				k.ClockMode = val
			}
		case "ext":
			if val != "1" {
				return Knobs{}, fmt.Errorf("knob ext: want 1, got %q", val)
			}
			k.TimestampExtension = true
		default:
			return Knobs{}, fmt.Errorf("unknown knob %q", key)
		}
		if err != nil {
			return Knobs{}, err
		}
	}
	return k, nil
}
