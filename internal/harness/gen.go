package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"tmsync/internal/mech"
	"tmsync/internal/tm"
)

// GenConfig bounds the randomized scenario generator. Zero values pick
// seed-derived defaults.
type GenConfig struct {
	// Threads fixes the worker count (default: seed-derived, 2–4).
	Threads int
	// Ops is the approximate number of operations per thread (default:
	// seed-derived, 8–24).
	Ops int
	// InjectFault deliberately drops one committed operation from the
	// executed program while leaving the oracle intact, so the harness's
	// detection path itself can be exercised end to end.
	InjectFault bool
	// Zipf, when > 0, draws every key selection (counter indices, the
	// per-thread map-key ranks) from a Zipf distribution with this
	// exponent instead of uniformly: rank i is chosen with probability
	// proportional to 1/(i+1)^Zipf, so a few hot keys absorb most of the
	// traffic — the skewed-contention shape real workloads have and the
	// uniform generator never produces.
	Zipf float64
	// ReadMostly switches the filler mix to read-mostly long
	// transactions: most filler ops become one wide read scan over the
	// counter array followed by a single commutative add (opReadHeavy),
	// stressing read-set validation and wake-scan overlap instead of
	// write contention. Ignored when Phases is set (name the mix there).
	ReadMostly bool
	// Phases, when non-empty, replaces the seed-derived filler with an
	// explicit schedule: phase k contributes Ops filler operations per
	// thread drawn from mix Mix, in order, so the workload's op-mix
	// shifts mid-scenario. Blocking producer/consumer ops are still woven
	// across the whole program.
	Phases []Phase
}

// Phase is one segment of a phase-shifting workload schedule.
type Phase struct {
	// Ops is the number of filler operations per thread in this phase
	// (must be positive).
	Ops int
	// Mix names the phase's filler distribution: "mixed" (the default
	// generator blend), "counters" (commutative adds only), "transfers"
	// (sum-conserving moves), "readmostly" (wide read-scan transactions),
	// or "map" (thread-partitioned map churn).
	Mix string
}

// Mixes lists the valid Phase.Mix names.
var Mixes = []string{"mixed", "counters", "transfers", "readmostly", "map"}

func validMix(m string) bool {
	for _, x := range Mixes {
		if x == m {
			return true
		}
	}
	return false
}

// diversified reports whether any of the widened-generator knobs is on;
// when none is, Generate takes the original draw path verbatim, so pinned
// seeds from before the widening keep their digests.
func (cfg GenConfig) diversified() bool {
	return cfg.Zipf > 0 || cfg.ReadMostly || len(cfg.Phases) > 0
}

// ParsePhases parses the CLI phase-schedule syntax "ops:mix,ops:mix,..."
// (e.g. "20:counters,20:readmostly,10:map") into a Phase slice.
func ParsePhases(s string) ([]Phase, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty phase schedule")
	}
	var out []Phase
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("phase %q: want <ops>:<mix>", part)
		}
		n, err := strconv.Atoi(kv[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("phase %q: ops must be a positive integer", part)
		}
		if !validMix(kv[1]) {
			return nil, fmt.Errorf("phase %q: unknown mix (have %s)", part, strings.Join(Mixes, ", "))
		}
		out = append(out, Phase{Ops: n, Mix: kv[1]})
	}
	return out, nil
}

// FormatPhases renders a schedule in the syntax ParsePhases reads.
func FormatPhases(ph []Phase) string {
	parts := make([]string, len(ph))
	for i, p := range ph {
		parts[i] = fmt.Sprintf("%d:%s", p.Ops, p.Mix)
	}
	return strings.Join(parts, ",")
}

// zipfDist is a deterministic Zipf sampler over n ranks: rank i has
// weight 1/(i+1)^s. The cumulative table is built once per Generate with
// a fixed summation order and portablePow (not math.Pow, whose last bits
// may differ across architectures and Go releases), so a pinned seed
// draws the same ranks on every platform forever.
type zipfDist struct{ cum []float64 }

func newZipf(n int, s float64) *zipfDist {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += portablePow(float64(i+1), -s)
		cum[i] = total
	}
	return &zipfDist{cum: cum}
}

// portablePow returns x**y for finite x > 0 through a fixed sequence of
// exactly-rounded IEEE-754 operations (+, -, *, /) plus the exact bit
// manipulations Frexp/Ldexp/Floor — every one of which Go evaluates
// bit-identically on all architectures and releases, unlike math.Pow,
// which has per-platform assembly. The Zipf golden digests pin draws
// derived from these weights, so they must be stable bits, not just
// accurate values (relative error here is ~1e-15, far below what shaping
// a sampling distribution needs).
func portablePow(x, y float64) float64 {
	t := y * portableLog(x)
	if math.IsNaN(t) {
		return t
	}
	if t < -745.2 { // exp underflows to 0; also keeps int(k) below in range
		return 0
	}
	if t > 709.7 {
		return math.Inf(1)
	}
	return portableExp(t)
}

// ln 2 split into a 32-bit head and a tail, so k*ln2Hi is exact for the
// small k range-reduction produces.
const (
	ln2Hi = 6.93147180369123816490e-01
	ln2Lo = 1.90821492927058770002e-10
)

// portableLog is the natural log for finite x > 0: Frexp-normalize into
// m ∈ [√2/2, √2), then the atanh series log m = 2t(1 + t²/3 + t⁴/5 + …)
// with t = (m-1)/(m+1), |t| < 0.1716, truncated where the tail is < 1 ulp.
func portableLog(x float64) float64 {
	m, e := math.Frexp(x)
	if m < math.Sqrt2/2 {
		m *= 2
		e--
	}
	t := (m - 1) / (m + 1)
	t2 := t * t
	p := 0.0
	for k := 27; k >= 3; k -= 2 {
		p = p*t2 + 1/float64(k)
	}
	return 2*t*(1+t2*p) + float64(e)*ln2Hi + float64(e)*ln2Lo
}

// portableExp range-reduces y = k·ln2 + r with |r| ≤ ln2/2 and sums the
// Taylor series for exp(r) with a fixed term count (tail < 1 ulp at
// |r| ≤ 0.347), then rescales exactly with Ldexp.
func portableExp(y float64) float64 {
	k := math.Floor(y/math.Ln2 + 0.5)
	r := (y - k*ln2Hi) - k*ln2Lo
	term, sum := 1.0, 1.0
	for i := 1; i <= 14; i++ {
		term *= r / float64(i)
		sum += term
	}
	return math.Ldexp(sum, int(k))
}

func (z *zipfDist) draw(r *prng) int {
	// 53 uniform bits, scaled into [0, total); ranks are few (counters
	// and per-thread key ranks), so a linear scan beats a binary search.
	u := float64(r.next()>>11) / (1 << 53) * z.cum[len(z.cum)-1]
	for i, c := range z.cum {
		if u < c {
			return i
		}
	}
	return len(z.cum) - 1
}

// prng is splitmix64 — deterministic, seedable, and stable across Go
// releases (math/rand's stream is not guaranteed), so a seed printed by a
// failing run replays forever.
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate derives a complete scenario — world geometry, one program per
// thread, oracle — from one seed. Programs are constructed so that every
// interleaving terminates (see the deadlock-freedom notes inline) and the
// oracle facts are interleaving-independent, which is exactly what makes
// them comparable across engines and mechanisms.
func Generate(seed uint64, cfg GenConfig) *Scenario {
	r := &prng{s: seed}
	sp := &spec{}
	sp.threads = cfg.Threads
	if sp.threads == 0 {
		sp.threads = 2 + r.intn(3)
	}
	ops := cfg.Ops
	if ops == 0 {
		ops = 8 + r.intn(17)
	}
	sp.counters = 2 + r.intn(4)

	// Choose the blocking structures. At least one is always present so
	// every scenario exercises condition synchronization.
	kinds := []opKind{opBufPut, opQueuePut, opStackPush}
	for i := len(kinds) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		kinds[i], kinds[j] = kinds[j], kinds[i]
	}
	kinds = kinds[:1+r.intn(3)]
	if contains(kinds, opBufPut) {
		sp.bufCap = 1 + r.intn(6)
	}
	sp.hasQueue = contains(kinds, opQueuePut)
	sp.hasStack = contains(kinds, opStackPush)
	sp.hasMap = r.intn(2) == 0

	// Each thread is producer or consumer for exactly ONE blocking
	// structure (plus non-blocking filler anywhere). Structures therefore
	// form independent producer/consumer systems, which — with matched
	// totals and leftovers bounded by capacity — cannot deadlock; mixing
	// roles across structures in one thread could (A waits on what B
	// produces only after B waits on what A produces later).
	partitions := make([][]int, len(kinds))
	for t := 0; t < sp.threads; t++ {
		g := t % len(kinds)
		partitions[g] = append(partitions[g], t)
	}

	sp.programs = make([][]op, sp.threads)
	role := make([][]op, sp.threads) // ordered blocking-structure ops per thread

	for g, members := range partitions {
		kind := kinds[g]
		if len(members) == 0 {
			continue
		}
		if len(members) == 1 {
			// A lone thread alternates put/get so its balance stays within
			// any capacity; an optional trailing put leaves one element
			// behind to diversify final lengths.
			t := members[0]
			pairs := max(1, ops/4)
			seq := uint64(0)
			for i := 0; i < pairs; i++ {
				seq++
				role[t] = append(role[t], op{kind: kind, a: encodeVal(t, seq)}, op{kind: takeKind(kind)})
			}
			if r.intn(2) == 0 {
				seq++
				role[t] = append(role[t], op{kind: kind, a: encodeVal(t, seq)})
			}
			continue
		}
		nprod := 1 + r.intn(len(members)-1)
		producers, consumers := members[:nprod], members[nprod:]
		total := 0
		for _, t := range producers {
			items := 1 + r.intn(max(1, ops/2))
			for s := 1; s <= items; s++ {
				role[t] = append(role[t], op{kind: kind, a: encodeVal(t, uint64(s))})
			}
			total += items
		}
		// Leftover elements stay in the structure at the end; for the
		// bounded buffer they must fit, or the last producers would block
		// forever with no consumer left to drain.
		maxLeft := total
		if kind == opBufPut && sp.bufCap < maxLeft {
			maxLeft = sp.bufCap
		}
		if maxLeft > 3 {
			maxLeft = 3
		}
		left := r.intn(maxLeft + 1)
		gets := total - left
		for i, t := range consumers {
			n := gets / len(consumers)
			if i == 0 {
				n += gets % len(consumers)
			}
			for j := 0; j < n; j++ {
				role[t] = append(role[t], op{kind: takeKind(kind)})
			}
		}
	}

	// Filler: commutative counter arithmetic and thread-partitioned map
	// ops, interleaved deterministically with the role ops.
	const keysPerThread = 3
	if sp.hasMap {
		sp.mapKeys = sp.threads * keysPerThread
	}
	var zc, zk *zipfDist
	if cfg.Zipf > 0 {
		zc = newZipf(sp.counters, cfg.Zipf)
		zk = newZipf(keysPerThread, cfg.Zipf)
	}
	for t := 0; t < sp.threads; t++ {
		var filler []op
		if cfg.diversified() {
			filler = diversifiedFiller(r, sp, cfg, t, ops, keysPerThread, zc, zk)
		} else {
			// One guaranteed counter op per thread, making the fault-injection
			// target unconditional (injectFault drops a counter-add).
			filler = []op{{kind: opCounterAdd, a: uint64(r.intn(sp.counters)), b: uint64(1 + r.intn(8))}}
			nf := 1 + r.intn(max(1, ops/2))
			for i := 0; i < nf; i++ {
				switch r.intn(4) {
				case 0, 1:
					filler = append(filler, op{kind: opCounterAdd, a: uint64(r.intn(sp.counters)), b: uint64(1 + r.intn(8))})
				case 2:
					from := r.intn(sp.counters)
					to := (from + 1 + r.intn(sp.counters-1)) % sp.counters
					filler = append(filler, op{kind: opTransfer, a: uint64(from), b: uint64(to), c: uint64(1 + r.intn(4))})
				case 3:
					if sp.hasMap {
						key := uint64(t*keysPerThread + r.intn(keysPerThread) + 1)
						if r.intn(3) == 0 {
							filler = append(filler, op{kind: opMapDel, a: key})
						} else {
							filler = append(filler, op{kind: opMapPut, a: key, b: r.next() % 1000})
						}
					} else {
						filler = append(filler, op{kind: opCounterAdd, a: uint64(r.intn(sp.counters)), b: 1})
					}
				}
			}
		}
		sp.programs[t] = weave(r, role[t], filler)
	}

	// Size the arenas so allocation pressure never blocks a producer
	// (memory-pressure waits are tested separately in internal/txds; here
	// they would entangle the per-structure deadlock-freedom argument).
	sp.queueCap = len(producedValues(sp, opQueuePut)) + sp.threads + 1
	sp.stackCap = len(producedValues(sp, opStackPush)) + sp.threads + 1
	sp.mapCap = sp.mapKeys + sp.threads + 2

	oracleObs := oracle(sp)

	runSp := sp
	if cfg.InjectFault {
		runSp = injectFault(sp)
	}

	replay := ""
	if cfg.Threads != 0 {
		replay += fmt.Sprintf("-threads %d", cfg.Threads)
	}
	if cfg.Ops != 0 {
		if replay != "" {
			replay += " "
		}
		replay += fmt.Sprintf("-ops %d", cfg.Ops)
	}
	if cfg.Zipf > 0 {
		if replay != "" {
			replay += " "
		}
		replay += fmt.Sprintf("-zipf %g", cfg.Zipf)
	}
	if cfg.ReadMostly && len(cfg.Phases) == 0 {
		if replay != "" {
			replay += " "
		}
		replay += "-read-mostly"
	}
	if len(cfg.Phases) > 0 {
		if replay != "" {
			replay += " "
		}
		replay += "-phases " + FormatPhases(cfg.Phases)
	}

	return &Scenario{
		Name:       fmt.Sprintf("gen-%d", seed),
		Seed:       seed,
		Injected:   cfg.InjectFault,
		ReplayArgs: replay,
		Digest:     runSp.digest(),
		Threads:    sp.threads,
		Oracle:     func() Observation { return oracleObs },
		Run: func(sys *tm.System, m mech.Mechanism) (Observation, error) {
			return runSpec(runSp, sys, m)
		},
		sp: runSp,
	}
}

// digest fingerprints the spec: FNV-1a over the world geometry and every
// program op, in a fixed field order. Stable across Go releases (no map
// iteration, no math/rand), so golden digests pin generator behaviour.
func (sp *spec) digest() string {
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	word(uint64(sp.threads))
	word(uint64(sp.counters))
	word(uint64(sp.bufCap))
	word(b2u(sp.hasQueue))
	word(b2u(sp.hasStack))
	word(b2u(sp.hasMap))
	word(uint64(sp.mapKeys))
	word(uint64(sp.queueCap))
	word(uint64(sp.stackCap))
	word(uint64(sp.mapCap))
	for _, prog := range sp.programs {
		word(uint64(len(prog)))
		for _, o := range prog {
			word(uint64(o.kind))
			word(o.a)
			word(o.b)
			word(o.c)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// injectFault returns a copy of sp with the last counter-add of thread 0
// dropped: the executed program then commits less than the oracle
// expects, which a correct harness must flag on every engine × mechanism.
func injectFault(sp *spec) *spec {
	cp := *sp
	cp.programs = make([][]op, len(sp.programs))
	for i := range sp.programs {
		cp.programs[i] = append([]op(nil), sp.programs[i]...)
	}
	for t := range cp.programs {
		for i := len(cp.programs[t]) - 1; i >= 0; i-- {
			if cp.programs[t][i].kind == opCounterAdd {
				cp.programs[t] = append(cp.programs[t][:i], cp.programs[t][i+1:]...)
				return &cp
			}
		}
	}
	return &cp
}

// diversifiedFiller is the widened-generator filler path: the same
// guaranteed leading counter-add, then a phase schedule of mix-drawn ops.
// Without an explicit schedule the whole filler is one phase whose mix is
// "mixed" (or "readmostly" under cfg.ReadMostly) and whose length is the
// seed-derived filler count the legacy path uses.
func diversifiedFiller(r *prng, sp *spec, cfg GenConfig, t, ops, keysPerThread int, zc, zk *zipfDist) []op {
	counterIdx := func() uint64 {
		if zc != nil {
			return uint64(zc.draw(r))
		}
		return uint64(r.intn(sp.counters))
	}
	filler := []op{{kind: opCounterAdd, a: counterIdx(), b: uint64(1 + r.intn(8))}}
	phases := cfg.Phases
	if len(phases) == 0 {
		mix := "mixed"
		if cfg.ReadMostly {
			mix = "readmostly"
		}
		phases = []Phase{{Ops: 1 + r.intn(max(1, ops/2)), Mix: mix}}
	}
	for _, ph := range phases {
		if ph.Ops <= 0 || !validMix(ph.Mix) {
			panic(fmt.Sprintf("harness: invalid phase %+v (build schedules with ParsePhases)", ph))
		}
		for i := 0; i < ph.Ops; i++ {
			filler = append(filler, mixOp(r, sp, ph.Mix, t, keysPerThread, counterIdx, zk))
		}
	}
	return filler
}

// mixOp draws one filler op from the named mix. Every mix keeps the
// oracle interleaving-independent: counter effects are commutative adds,
// transfers conserve the sum, map keys stay thread-partitioned, and the
// read-heavy transaction's reads feed nothing.
func mixOp(r *prng, sp *spec, mix string, t, keysPerThread int, counterIdx func() uint64, zk *zipfDist) op {
	counterAdd := func() op {
		return op{kind: opCounterAdd, a: counterIdx(), b: uint64(1 + r.intn(8))}
	}
	transfer := func() op {
		from := int(counterIdx())
		to := (from + 1 + r.intn(sp.counters-1)) % sp.counters
		return op{kind: opTransfer, a: uint64(from), b: uint64(to), c: uint64(1 + r.intn(4))}
	}
	readHeavy := func() op {
		return op{kind: opReadHeavy, a: counterIdx(), b: uint64(1 + r.intn(4)), c: uint64(2 + r.intn(6))}
	}
	mapOp := func() op {
		if !sp.hasMap {
			return counterAdd()
		}
		rank := r.intn(keysPerThread)
		if zk != nil {
			rank = zk.draw(r)
		}
		key := uint64(t*keysPerThread + rank + 1)
		if r.intn(3) == 0 {
			return op{kind: opMapDel, a: key}
		}
		return op{kind: opMapPut, a: key, b: r.next() % 1000}
	}
	switch mix {
	case "counters":
		return counterAdd()
	case "transfers":
		return transfer()
	case "readmostly":
		if r.intn(4) == 3 {
			return counterAdd()
		}
		return readHeavy()
	case "map":
		if r.intn(4) == 3 {
			return counterAdd()
		}
		return mapOp()
	default: // "mixed": the legacy generator blend
		switch r.intn(4) {
		case 0, 1:
			return counterAdd()
		case 2:
			return transfer()
		}
		return mapOp()
	}
}

func takeKind(put opKind) opKind {
	switch put {
	case opBufPut:
		return opBufGet
	case opQueuePut:
		return opQueueTake
	case opStackPush:
		return opStackPop
	}
	panic("harness: not a producer op")
}

func contains(ks []opKind, k opKind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

// weave merges two op lists into one program, preserving each list's
// internal order, with a deterministic seed-derived interleaving.
func weave(r *prng, a, b []op) []op {
	out := make([]op, 0, len(a)+len(b))
	for len(a) > 0 || len(b) > 0 {
		if len(b) == 0 || (len(a) > 0 && r.intn(len(a)+len(b)) < len(a)) {
			out = append(out, a[0])
			a = a[1:]
		} else {
			out = append(out, b[0])
			b = b[1:]
		}
	}
	return out
}
