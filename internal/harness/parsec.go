package harness

import (
	"fmt"
	"sync"
	"time"

	"tmsync/internal/mech"
	"tmsync/internal/parsecsim"
	"tmsync/internal/tm"
)

// ParsecScenarios registers the eight PARSEC concurrency skeletons of
// internal/parsecsim as differential scenarios: each one's observable
// state is its workload checksum, which must match the sequential oracle
// (the Pthreads baseline on one thread) under every engine × mechanism.
//
// threads ≤ 0 selects two workers, which every benchmark accepts; other
// counts are lowered to the benchmark's nearest valid count.
func ParsecScenarios(threads, scale int) []*Scenario {
	if threads <= 0 {
		threads = 2
	}
	if scale <= 0 {
		scale = 1
	}
	out := make([]*Scenario, 0, len(parsecsim.Benchmarks))
	for i := range parsecsim.Benchmarks {
		b := &parsecsim.Benchmarks[i]
		n := threads
		for n > 1 && !b.ValidThreads(n) {
			n--
		}
		var once sync.Once
		var ref Observation
		out = append(out, &Scenario{
			Name:    "parsec/" + b.Name,
			Threads: n,
			Mechs:   MechsFor,
			Oracle: func() Observation {
				once.Do(func() {
					ref = Observation{"checksum": fmt.Sprintf("%x", b.Reference(scale))}
				})
				return ref
			},
			Run: func(sys *tm.System, m mech.Mechanism) (Observation, error) {
				// Bound the run like runSpec does: a lost-wakeup regression
				// must surface as a wedge error, not hang the whole check.
				type outcome struct{ sum uint64 }
				ch := make(chan outcome, 1)
				go func() {
					k := &parsecsim.Kit{Mech: m, Sys: sys}
					ch <- outcome{sum: b.Run(k, n, scale)}
				}()
				select {
				case o := <-ch:
					return Observation{"checksum": fmt.Sprintf("%x", o.sum)}, nil
				case <-time.After(WedgeTimeout):
					return nil, fmt.Errorf("wedged: %s still running after %v (lost wakeup?)", b.Name, WedgeTimeout)
				}
			},
		})
	}
	return out
}
