package locktable

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Orec{
		{},
		{Locked: true, Owner: 1, Version: 0},
		{Locked: true, Owner: MaxOwner, Version: 12345},
		{Locked: false, Version: MaxVersion},
		{Locked: true, Owner: 7, Version: MaxVersion},
	}
	for _, c := range cases {
		got := Decode(Encode(c))
		want := c
		if !want.Locked {
			want.Owner = 0
		}
		if got != want {
			t.Errorf("Decode(Encode(%+v)) = %+v", c, got)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(locked bool, owner, version uint64) bool {
		o := Orec{Locked: locked, Owner: owner % (MaxOwner + 1), Version: version % (MaxVersion + 1)}
		d := Decode(Encode(o))
		if !o.Locked {
			o.Owner = 0
		}
		return d == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldAccessorsAgreeWithDecode(t *testing.T) {
	f := func(locked bool, owner, version uint64) bool {
		o := Orec{Locked: locked, Owner: owner % (MaxOwner + 1), Version: version % (MaxVersion + 1)}
		w := Encode(o)
		if Locked(w) != o.Locked {
			return false
		}
		if Version(w) != o.Version {
			return false
		}
		if o.Locked && Owner(w) != o.Owner {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockedByUnlockedAt(t *testing.T) {
	w := LockedBy(5, 99)
	if !Locked(w) || Owner(w) != 5 || Version(w) != 99 {
		t.Fatalf("LockedBy(5,99) decodes to %+v", Decode(w))
	}
	u := UnlockedAt(100)
	if Locked(u) || Version(u) != 100 {
		t.Fatalf("UnlockedAt(100) decodes to %+v", Decode(u))
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	for _, size := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", size)
				}
			}()
			New(size)
		}()
	}
}

func TestIndexOfInRangeAndStable(t *testing.T) {
	tbl := New(1 << 10)
	words := make([]uint64, 4096)
	seen := make(map[uint32]bool)
	for i := range words {
		idx := tbl.IndexOf(&words[i])
		if int(idx) >= tbl.Len() {
			t.Fatalf("index %d out of range %d", idx, tbl.Len())
		}
		if tbl.IndexOf(&words[i]) != idx {
			t.Fatal("IndexOf not stable for the same address")
		}
		seen[idx] = true
	}
	// With 4096 addresses over 1024 slots we should hit a large fraction of
	// the table; a pathological hash would collapse to a few slots.
	if len(seen) < tbl.Len()/2 {
		t.Fatalf("hash collapses: only %d/%d slots used", len(seen), tbl.Len())
	}
}

func TestAdjacentWordsSpread(t *testing.T) {
	tbl := New(1 << 12)
	var arr [64]uint64
	collisions := 0
	for i := 0; i < len(arr)-1; i++ {
		if tbl.IndexOf(&arr[i]) == tbl.IndexOf(&arr[i+1]) {
			collisions++
		}
	}
	if collisions > 4 {
		t.Fatalf("adjacent words collide too often: %d/63", collisions)
	}
}

func TestCASAndSet(t *testing.T) {
	tbl := New(8)
	idx := uint32(3)
	if !tbl.CAS(idx, 0, LockedBy(1, 0)) {
		t.Fatal("CAS from zero failed")
	}
	if tbl.CAS(idx, 0, LockedBy(2, 0)) {
		t.Fatal("CAS from stale value succeeded")
	}
	tbl.Set(idx, UnlockedAt(42))
	if Version(tbl.Get(idx)) != 42 || Locked(tbl.Get(idx)) {
		t.Fatalf("Set did not store: %+v", Decode(tbl.Get(idx)))
	}
}

func TestConcurrentCASExclusive(t *testing.T) {
	tbl := New(2)
	const goroutines = 16
	const rounds = 1000
	var wins [goroutines]int
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				w := tbl.Get(0)
				if Locked(w) {
					continue
				}
				if tbl.CAS(0, w, LockedBy(uint64(id+1), Version(w))) {
					wins[id]++
					// release with a bumped version
					tbl.Set(0, UnlockedAt(Version(w)+1))
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if uint64(total) != Version(tbl.Get(0)) {
		t.Fatalf("lock acquisitions (%d) != final version (%d): lost or duplicated a CAS", total, Version(tbl.Get(0)))
	}
}
