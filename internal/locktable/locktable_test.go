package locktable

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Orec{
		{},
		{Locked: true, Owner: 1, Version: 0},
		{Locked: true, Owner: MaxOwner, Version: 12345},
		{Locked: false, Version: MaxVersion},
		{Locked: true, Owner: 7, Version: MaxVersion},
	}
	for _, c := range cases {
		got := Decode(Encode(c))
		want := c
		if !want.Locked {
			want.Owner = 0
		}
		if got != want {
			t.Errorf("Decode(Encode(%+v)) = %+v", c, got)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(locked bool, owner, version uint64) bool {
		o := Orec{Locked: locked, Owner: owner % (MaxOwner + 1), Version: version % (MaxVersion + 1)}
		d := Decode(Encode(o))
		if !o.Locked {
			o.Owner = 0
		}
		return d == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldAccessorsAgreeWithDecode(t *testing.T) {
	f := func(locked bool, owner, version uint64) bool {
		o := Orec{Locked: locked, Owner: owner % (MaxOwner + 1), Version: version % (MaxVersion + 1)}
		w := Encode(o)
		if Locked(w) != o.Locked {
			return false
		}
		if Version(w) != o.Version {
			return false
		}
		if o.Locked && Owner(w) != o.Owner {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockedByUnlockedAt(t *testing.T) {
	w := LockedBy(5, 99)
	if !Locked(w) || Owner(w) != 5 || Version(w) != 99 {
		t.Fatalf("LockedBy(5,99) decodes to %+v", Decode(w))
	}
	u := UnlockedAt(100)
	if Locked(u) || Version(u) != 100 {
		t.Fatalf("UnlockedAt(100) decodes to %+v", Decode(u))
	}
}

// TestEncodeDecodeFieldBoundaries pins the exact field boundaries: the
// largest encodable owner and version round-trip, in every combination,
// and one-past-the-boundary inputs wrap instead of corrupting neighbours.
func TestEncodeDecodeFieldBoundaries(t *testing.T) {
	cases := []Orec{
		{Locked: true, Owner: MaxOwner, Version: 0},
		{Locked: true, Owner: MaxOwner, Version: MaxVersion},
		{Locked: true, Owner: 1, Version: MaxVersion},
		{Locked: false, Version: MaxVersion},
		{Locked: true, Owner: MaxOwner - 1, Version: MaxVersion - 1},
	}
	for _, c := range cases {
		got := Decode(Encode(c))
		want := c
		if !want.Locked {
			want.Owner = 0
		}
		if got != want {
			t.Errorf("Decode(Encode(%+v)) = %+v", c, got)
		}
	}
	// An owner one past the boundary must not leak into the version or
	// locked fields (Encode masks it to the owner field's width).
	w := Encode(Orec{Locked: true, Owner: MaxOwner + 1, Version: 7})
	if Version(w) != 7 || !Locked(w) {
		t.Errorf("overflowing owner corrupted other fields: %+v", Decode(w))
	}
}

// TestEncodeIsLeftInverseOfDecode: every word built from a valid state is
// reproduced bit-for-bit by Encode∘Decode (no information besides the
// unlocked owner, which has no representation, is lost).
func TestEncodeIsLeftInverseOfDecode(t *testing.T) {
	f := func(locked bool, owner, version uint64) bool {
		var w uint64
		if locked {
			w = LockedBy(owner%(MaxOwner+1), version%(MaxVersion+1))
		} else {
			w = UnlockedAt(version % (MaxVersion + 1))
		}
		return Encode(Decode(w)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	for _, size := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", size)
				}
			}()
			New(size)
		}()
	}
}

func TestIndexOfInRangeAndStable(t *testing.T) {
	tbl := New(1 << 10)
	words := make([]uint64, 4096)
	seen := make(map[uint32]bool)
	for i := range words {
		idx := tbl.IndexOf(&words[i])
		if int(idx) >= tbl.Len() {
			t.Fatalf("index %d out of range %d", idx, tbl.Len())
		}
		if tbl.IndexOf(&words[i]) != idx {
			t.Fatal("IndexOf not stable for the same address")
		}
		seen[idx] = true
	}
	// With 4096 addresses over 1024 slots we should hit a large fraction of
	// the table; a pathological hash would collapse to a few slots.
	if len(seen) < tbl.Len()/2 {
		t.Fatalf("hash collapses: only %d/%d slots used", len(seen), tbl.Len())
	}
}

func TestAdjacentWordsSpread(t *testing.T) {
	tbl := New(1 << 12)
	var arr [64]uint64
	collisions := 0
	for i := 0; i < len(arr)-1; i++ {
		if tbl.IndexOf(&arr[i]) == tbl.IndexOf(&arr[i+1]) {
			collisions++
		}
	}
	if collisions > 4 {
		t.Fatalf("adjacent words collide too often: %d/63", collisions)
	}
}

func TestCASAndSet(t *testing.T) {
	tbl := New(8)
	idx := uint32(3)
	if !tbl.CAS(idx, 0, LockedBy(1, 0)) {
		t.Fatal("CAS from zero failed")
	}
	if tbl.CAS(idx, 0, LockedBy(2, 0)) {
		t.Fatal("CAS from stale value succeeded")
	}
	tbl.Set(idx, UnlockedAt(42))
	if Version(tbl.Get(idx)) != 42 || Locked(tbl.Get(idx)) {
		t.Fatalf("Set did not store: %+v", Decode(tbl.Get(idx)))
	}
}

func TestNewShardedRejectsBadStripeCounts(t *testing.T) {
	for _, c := range []struct{ size, stripes int }{
		{32, 0}, {32, -1}, {32, 3}, {32, 12}, {32, 64}, {3, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSharded(%d, %d) did not panic", c.size, c.stripes)
				}
			}()
			NewSharded(c.size, c.stripes)
		}()
	}
}

func TestNewClampsDefaultStripesToSize(t *testing.T) {
	for _, size := range []int{1, 2, 8, 64, 256} {
		tbl := New(size)
		if tbl.Len() != size {
			t.Fatalf("New(%d).Len() = %d", size, tbl.Len())
		}
		if n := tbl.NumStripes(); n > size || n <= 0 {
			t.Fatalf("New(%d) has %d stripes", size, n)
		}
		if tbl.NumStripes()*tbl.StripeLen() != tbl.Len() {
			t.Fatalf("New(%d): stripes %d x %d != %d", size, tbl.NumStripes(), tbl.StripeLen(), tbl.Len())
		}
	}
}

// TestStripesPartitionSlotSpace: every slot belongs to exactly one
// in-range stripe, and the stripes split the slot space into equal parts —
// the partition half of the stripe-mapping invariant.
func TestStripesPartitionSlotSpace(t *testing.T) {
	for _, cfg := range []struct{ size, stripes int }{
		{1 << 10, 1}, {1 << 10, 4}, {1 << 10, 64}, {1 << 10, 1 << 10}, {64, 8},
	} {
		tbl := NewSharded(cfg.size, cfg.stripes)
		counts := make([]int, tbl.NumStripes())
		for idx := 0; idx < tbl.Len(); idx++ {
			s := tbl.StripeOf(uint32(idx))
			if int(s) >= tbl.NumStripes() {
				t.Fatalf("size=%d stripes=%d: slot %d maps to out-of-range stripe %d", cfg.size, cfg.stripes, idx, s)
			}
			counts[s]++
		}
		for s, n := range counts {
			if n != tbl.StripeLen() {
				t.Fatalf("size=%d stripes=%d: stripe %d owns %d slots, want %d", cfg.size, cfg.stripes, s, n, tbl.StripeLen())
			}
		}
	}
}

// TestAddressStripeMappingStableProperty: the same address always maps to
// the same slot and therefore the same stripe, on every table geometry —
// the determinism half of the stripe-mapping invariant (a waiter indexed
// under a stripe can never be missed by a writer hashing the same
// address).
func TestAddressStripeMappingStableProperty(t *testing.T) {
	words := make([]uint64, 512)
	tables := []*Table{
		NewSharded(1<<12, 1),
		NewSharded(1<<12, 4),
		NewSharded(1<<12, 64),
	}
	f := func(which []uint16) bool {
		for _, w := range which {
			addr := &words[int(w)%len(words)]
			for _, tbl := range tables {
				idx := tbl.IndexOf(addr)
				if tbl.IndexOf(addr) != idx {
					return false
				}
				if tbl.StripeOf(idx) != tbl.StripeOf(tbl.IndexOf(addr)) {
					return false
				}
				if int(tbl.StripeOf(idx)) >= tbl.NumStripes() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStripesSpreadAddresses: distinct structures (distant addresses)
// should populate many stripes, not collapse onto a few — the property
// the per-stripe wakeup index's benefit rests on.
func TestStripesSpreadAddresses(t *testing.T) {
	tbl := New(1 << 16)
	blocks := make([][]uint64, 64)
	seen := make(map[uint32]bool)
	for i := range blocks {
		blocks[i] = make([]uint64, 8)
		seen[tbl.StripeOf(tbl.IndexOf(&blocks[i][0]))] = true
	}
	if len(seen) < tbl.NumStripes()/4 {
		t.Fatalf("64 separate blocks landed on only %d/%d stripes", len(seen), tbl.NumStripes())
	}
}

// TestResizePartitionProperty: after any sequence of online resizes, the
// current geometry still partitions the slot range exactly once — every
// slot belongs to exactly one in-range stripe and the stripes split the
// space into equal parts — and slot contents survive untouched.
func TestResizePartitionProperty(t *testing.T) {
	const size = 1 << 10
	tbl := NewResizable(size, 1, 256)
	tbl.Set(17, UnlockedAt(99))
	counts := make([]int, 256)
	check := func(stripes int) {
		v := tbl.Current()
		if v.NumStripes() != stripes {
			t.Fatalf("NumStripes = %d, want %d", v.NumStripes(), stripes)
		}
		for i := range counts {
			counts[i] = 0
		}
		for idx := 0; idx < size; idx++ {
			s := v.StripeOf(uint32(idx))
			if int(s) >= stripes {
				t.Fatalf("stripes=%d: slot %d maps to out-of-range stripe %d", stripes, idx, s)
			}
			counts[s]++
		}
		for s := 0; s < stripes; s++ {
			if counts[s] != size/stripes {
				t.Fatalf("stripes=%d: stripe %d owns %d slots, want %d", stripes, s, counts[s], size/stripes)
			}
		}
		if Version(tbl.Get(17)) != 99 {
			t.Fatalf("stripes=%d: slot contents changed across resize", stripes)
		}
	}
	check(1)
	gen := tbl.Gen()
	f := func(steps []uint8) bool {
		for _, step := range steps {
			n := 1 << (step % 9) // 1..256
			v := tbl.Resize(n)
			if v.NumStripes() != n {
				return false
			}
			if g := tbl.Gen(); g < gen {
				t.Fatalf("generation went backwards: %d -> %d", gen, g)
			} else {
				gen = g
			}
			check(n)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestResizeGenerationBumpsExactlyOnChange: resizing to a new count bumps
// the generation once; resizing to the current count is a no-op.
func TestResizeGenerationBumpsExactlyOnChange(t *testing.T) {
	tbl := NewResizable(1<<8, 4, 64)
	g0 := tbl.Gen()
	if v := tbl.Resize(4); v.Gen != g0 {
		t.Fatalf("no-op resize bumped generation %d -> %d", g0, v.Gen)
	}
	v := tbl.Resize(8)
	if v.Gen != g0+1 {
		t.Fatalf("resize bumped generation %d -> %d, want +1", g0, v.Gen)
	}
	if tbl.NumStripes() != 8 || tbl.StripeLen() != (1<<8)/8 {
		t.Fatalf("resize not visible: stripes=%d stripeLen=%d", tbl.NumStripes(), tbl.StripeLen())
	}
}

// TestResizeRejectsBadCounts pins Resize's validation: non-powers of two,
// non-positive counts, and counts beyond the table's physical headroom.
func TestResizeRejectsBadCounts(t *testing.T) {
	tbl := NewResizable(1<<8, 4, 64)
	for _, n := range []int{0, -1, 3, 12, 128, 1 << 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Resize(%d) did not panic", n)
				}
			}()
			tbl.Resize(n)
		}()
	}
}

// TestStripesOfDedupAcrossGenerations: StripesOf on a captured View keeps
// deduplicating and sorting correctly no matter how the table has been
// resized since — and old and new views disagree only in labelling, never
// in which slots share a stripe within one view.
func TestStripesOfDedupAcrossGenerations(t *testing.T) {
	tbl := NewResizable(1<<12, 4, 1<<10)
	words := make([]uint64, 256)
	views := []View{tbl.Current()}
	for _, n := range []int{64, 1 << 10, 16, 1} {
		views = append(views, tbl.Resize(n))
	}
	f := func(which []uint16) bool {
		slots := make([]uint32, 0, len(which))
		for _, w := range which {
			slots = append(slots, tbl.IndexOf(&words[int(w)%len(words)]))
		}
		for _, v := range views {
			got := v.StripesOf(append([]uint32(nil), slots...), nil)
			want := make(map[uint32]bool)
			for _, s := range slots {
				want[v.StripeOf(s)] = true
			}
			if len(got) != len(want) {
				return false
			}
			for i, s := range got {
				if !want[s] {
					return false
				}
				if i > 0 && got[i-1] >= s {
					return false // not strictly ascending
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestViewAtMatchesPublishedGeometry: the planning view for a count maps
// slots to stripes exactly as the published geometry at that count does.
func TestViewAtMatchesPublishedGeometry(t *testing.T) {
	tbl := NewResizable(1<<10, 1, 256)
	for _, n := range []int{1, 4, 64, 256} {
		planned := tbl.ViewAt(n)
		live := tbl.Resize(n)
		for idx := uint32(0); idx < uint32(tbl.Len()); idx += 7 {
			if planned.StripeOf(idx) != live.StripeOf(idx) {
				t.Fatalf("stripes=%d: ViewAt maps slot %d to %d, live geometry to %d",
					n, idx, planned.StripeOf(idx), live.StripeOf(idx))
			}
		}
	}
}

// TestCrossStripeSlotsIndependent: Get/Set/CAS on slots in different
// stripes do not interfere (the global-slot API survives the sharding).
func TestCrossStripeSlotsIndependent(t *testing.T) {
	tbl := NewSharded(256, 16)
	per := uint32(tbl.StripeLen())
	a, b := uint32(0), per*3+1 // stripes 0 and 3
	tbl.Set(a, UnlockedAt(11))
	tbl.Set(b, UnlockedAt(22))
	if Version(tbl.Get(a)) != 11 || Version(tbl.Get(b)) != 22 {
		t.Fatalf("cross-stripe stores interfered: %d %d", Version(tbl.Get(a)), Version(tbl.Get(b)))
	}
	if !tbl.CAS(a, UnlockedAt(11), LockedBy(1, 11)) {
		t.Fatal("CAS on stripe 0 failed")
	}
	if Locked(tbl.Get(b)) {
		t.Fatal("CAS on stripe 0 locked a slot in stripe 3")
	}
}

func TestConcurrentCASExclusive(t *testing.T) {
	tbl := New(2)
	const goroutines = 16
	const rounds = 1000
	var wins [goroutines]int
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				w := tbl.Get(0)
				if Locked(w) {
					continue
				}
				if tbl.CAS(0, w, LockedBy(uint64(id+1), Version(w))) {
					wins[id]++
					// release with a bumped version
					tbl.Set(0, UnlockedAt(Version(w)+1))
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if uint64(total) != Version(tbl.Get(0)) {
		t.Fatalf("lock acquisitions (%d) != final version (%d): lost or duplicated a CAS", total, Version(tbl.Get(0)))
	}
}

func TestStripesOfDedupsAndSorts(t *testing.T) {
	tbl := NewSharded(64, 8)                   // 8 slots per stripe
	slots := []uint32{63, 0, 17, 7, 16, 62, 1} // stripes 7,0,2,0,2,7,0
	got := tbl.StripesOf(slots, nil)
	want := []uint32{0, 2, 7}
	if len(got) != len(want) {
		t.Fatalf("StripesOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StripesOf = %v, want %v (ascending, deduplicated)", got, want)
		}
	}
	// Reusing a scratch buffer must not retain old entries.
	got = tbl.StripesOf([]uint32{8}, got)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("StripesOf with reused buffer = %v, want [1]", got)
	}
}
