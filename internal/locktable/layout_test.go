package locktable

import (
	"testing"
	"unsafe"
)

// Runtime pin of the //tm:padded invariant on chunk (tmlint's padcheck
// verifies the same thing statically): a chunk header must fill whole
// cache lines so adjacent chunks in the table's chunk array never share
// one, and the orecs slice header must lead the struct so the pad stays a
// pure suffix.
func TestChunkLayout(t *testing.T) {
	if sz := unsafe.Sizeof(chunk{}); sz%cacheLine != 0 || sz == 0 {
		t.Errorf("chunk is %d bytes; want a non-zero multiple of %d", sz, cacheLine)
	}
	if off := unsafe.Offsetof(chunk{}.orecs); off != 0 {
		t.Errorf("chunk.orecs at offset %d; want 0", off)
	}
	chunks := make([]chunk, 2)
	a := uintptr(unsafe.Pointer(&chunks[0]))
	b := uintptr(unsafe.Pointer(&chunks[1]))
	if a/cacheLine == b/cacheLine {
		t.Errorf("adjacent chunk headers share cache line %#x", a/cacheLine)
	}
}
