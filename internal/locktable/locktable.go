// Package locktable implements the table of ownership records (orecs) that
// maps shared-memory words to versioned locks, as in TinySTM, TL2, and the
// software TM of Appendix A. A single 64-bit word encodes either
// {unlocked, version} or {locked, owner, version}, so that all fields of a
// Lock object can be read atomically and modified with compare-and-swap.
package locktable

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Orec field layout. Bit 0 is the locked flag. When locked, bits 1..15
// carry the owner thread id (1-based) and bits 16..63 keep the version the
// word had when it was acquired, so release-for-abort can restore it.
// When unlocked, bits 16..63 carry the version and the owner field is zero.
const (
	lockedBit    = uint64(1)
	ownerShift   = 1
	ownerBits    = 15
	ownerMask    = (uint64(1)<<ownerBits - 1) << ownerShift
	versionShift = 16
	// MaxOwner is the largest encodable owner id.
	MaxOwner = uint64(1)<<ownerBits - 1
	// MaxVersion is the largest encodable version.
	MaxVersion = uint64(1)<<(64-versionShift) - 1
)

// Orec is the decoded form of an ownership record.
type Orec struct {
	Locked  bool
	Owner   uint64 // thread id, valid only when Locked
	Version uint64 // time of last unlock (kept while locked, for abort)
}

// Encode packs an Orec into its 64-bit word form.
func Encode(o Orec) uint64 {
	w := o.Version << versionShift
	if o.Locked {
		w |= lockedBit | (o.Owner << ownerShift & ownerMask)
	}
	return w
}

// Decode unpacks a 64-bit orec word.
func Decode(w uint64) Orec {
	o := Orec{Version: w >> versionShift}
	if w&lockedBit != 0 {
		o.Locked = true
		o.Owner = (w & ownerMask) >> ownerShift
	}
	return o
}

// Locked reports whether the encoded word is locked.
func Locked(w uint64) bool { return w&lockedBit != 0 }

// Owner returns the owner id of an encoded, locked word.
func Owner(w uint64) uint64 { return (w & ownerMask) >> ownerShift }

// Version returns the version of an encoded word.
func Version(w uint64) uint64 { return w >> versionShift }

// LockedBy builds the word for a lock held by owner with the given
// pre-acquisition version.
func LockedBy(owner, version uint64) uint64 {
	return version<<versionShift | owner<<ownerShift&ownerMask | lockedBit
}

// UnlockedAt builds the word for an unlocked orec with the given version.
func UnlockedAt(version uint64) uint64 { return version << versionShift }

// Table is a fixed-size, power-of-two array of orecs. Distinct addresses
// may hash to the same orec (false conflicts), exactly as in word-based STM.
type Table struct {
	mask  uintptr
	orecs []atomic.Uint64
}

// DefaultSize is the default number of orecs (1<<16, 512 KiB).
const DefaultSize = 1 << 16

// New returns a table with size orecs; size must be a power of two.
func New(size int) *Table {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("locktable: size %d is not a positive power of two", size))
	}
	return &Table{mask: uintptr(size - 1), orecs: make([]atomic.Uint64, size)}
}

// Len returns the number of orecs in the table.
func (t *Table) Len() int { return len(t.orecs) }

// IndexOf returns the table slot covering addr. Word-aligned addresses are
// mixed with a Fibonacci multiplier so that adjacent words land on
// different orecs.
func (t *Table) IndexOf(addr *uint64) uint32 {
	p := uintptr(unsafe.Pointer(addr)) >> 3
	p *= 0x9e3779b97f4a7c15 & ^uintptr(0)
	return uint32((p >> 16) & t.mask)
}

// Get returns the orec word for slot idx.
func (t *Table) Get(idx uint32) uint64 { return t.orecs[idx].Load() }

// CAS attempts to transition slot idx from old to new.
func (t *Table) CAS(idx uint32, old, new uint64) bool {
	return t.orecs[idx].CompareAndSwap(old, new)
}

// Set unconditionally stores word w into slot idx. Only the lock owner may
// do this (release paths).
func (t *Table) Set(idx uint32, w uint64) { t.orecs[idx].Store(w) }

// ForAddr returns the orec word covering addr.
func (t *Table) ForAddr(addr *uint64) uint64 { return t.Get(t.IndexOf(addr)) }
