// Package locktable implements the table of ownership records (orecs) that
// maps shared-memory words to versioned locks, as in TinySTM, TL2, and the
// software TM of Appendix A. A single 64-bit word encodes either
// {unlocked, version} or {locked, owner, version}, so that all fields of a
// Lock object can be read atomically and modified with compare-and-swap.
package locktable

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Orec field layout. Bit 0 is the locked flag. When locked, bits 1..15
// carry the owner thread id (1-based) and bits 16..63 keep the version the
// word had when it was acquired, so release-for-abort can restore it.
// When unlocked, bits 16..63 carry the version and the owner field is zero.
const (
	lockedBit    = uint64(1)
	ownerShift   = 1
	ownerBits    = 15
	ownerMask    = (uint64(1)<<ownerBits - 1) << ownerShift
	versionShift = 16
	// MaxOwner is the largest encodable owner id.
	MaxOwner = uint64(1)<<ownerBits - 1
	// MaxVersion is the largest encodable version.
	MaxVersion = uint64(1)<<(64-versionShift) - 1
)

// Orec is the decoded form of an ownership record.
type Orec struct {
	Locked  bool
	Owner   uint64 // thread id, valid only when Locked
	Version uint64 // time of last unlock (kept while locked, for abort)
}

// Encode packs an Orec into its 64-bit word form.
func Encode(o Orec) uint64 {
	w := o.Version << versionShift
	if o.Locked {
		w |= lockedBit | (o.Owner << ownerShift & ownerMask)
	}
	return w
}

// Decode unpacks a 64-bit orec word.
func Decode(w uint64) Orec {
	o := Orec{Version: w >> versionShift}
	if w&lockedBit != 0 {
		o.Locked = true
		o.Owner = (w & ownerMask) >> ownerShift
	}
	return o
}

// Locked reports whether the encoded word is locked.
func Locked(w uint64) bool { return w&lockedBit != 0 }

// Owner returns the owner id of an encoded, locked word.
func Owner(w uint64) uint64 { return (w & ownerMask) >> ownerShift }

// Version returns the version of an encoded word.
func Version(w uint64) uint64 { return w >> versionShift }

// LockedBy builds the word for a lock held by owner with the given
// pre-acquisition version.
func LockedBy(owner, version uint64) uint64 {
	return version<<versionShift | owner<<ownerShift&ownerMask | lockedBit
}

// UnlockedAt builds the word for an unlocked orec with the given version.
func UnlockedAt(version uint64) uint64 { return version << versionShift }

// cacheLine is the assumed coherence granularity. Storage chunks are
// padded to it so that metadata of adjacent chunks never shares a line.
const cacheLine = 64

// chunk is one physical shard of the orec storage: its own orec array,
// separately allocated so that hot orecs of different chunks live on
// different cache lines, with the header padded out to a line boundary.
// Chunks are allocated once, at the finest stripe granularity the table
// will ever use (MaxStripes), so that online stripe resizing never has to
// move an orec word: a logical stripe is always a contiguous union of
// chunks, and only the slot→stripe mapping (the View) changes.
//
//tm:padded
type chunk struct {
	orecs []atomic.Uint64
	_     [(cacheLine - unsafe.Sizeof([]atomic.Uint64(nil))%cacheLine) % cacheLine]byte
}

// View is one generation of the table's slot→stripe mapping. Orec slots
// and their contents are generation-independent (IndexOf/Get/CAS/Set never
// change meaning); a View only decides which stripe a slot belongs to, so
// swapping Views at runtime is a pure re-labelling. Views are immutable:
// code that must name stripes consistently across an operation (a
// transaction attempt, a registry scan) captures one View and uses it
// throughout, comparing Gen to detect that the table has moved on.
type View struct {
	// Gen is the geometry generation, strictly increasing across resizes.
	Gen   uint64
	shift uint32 // slot >> shift = stripe id
	n     int    // stripe count
}

// NumStripes returns the view's stripe count.
func (v View) NumStripes() int { return v.n }

// StripeOf returns the stripe owning slot idx under this view. Every slot
// belongs to exactly one stripe, and the same address always maps to the
// same stripe within a generation (IndexOf is a pure function of the
// address).
func (v View) StripeOf(idx uint32) uint32 { return idx >> v.shift }

// Table is a fixed-size, power-of-two array of orecs, sharded into a
// power-of-two number of cache-line-padded storage chunks. Distinct
// addresses may hash to the same orec (false conflicts), exactly as in
// word-based STM. Slot indexes are global (0..Len-1) and stable for the
// table's lifetime; the logical stripe count is a generation-tagged View
// loaded through an atomic pointer and may be changed online with Resize.
//
//tm:orec-table
type Table struct {
	mask       uintptr
	size       int
	chunkShift uint32 // slot >> chunkShift = chunk id
	chunkMask  uint32 // slot & chunkMask = index within the chunk
	chunks     []chunk
	maxStripes int
	geo        atomic.Pointer[View]
	resizeMu   sync.Mutex
}

// DefaultSize is the default number of orecs (1<<16, 512 KiB).
const DefaultSize = 1 << 16

// DefaultStripes is the default stripe count. 64 stripes keep the
// per-commit wakeup index small while still spreading independent
// structures across distinct stripes with high probability.
const DefaultStripes = 64

// New returns a table with size orecs and the default stripe count
// (clamped to size for tiny tables); size must be a power of two.
func New(size int) *Table {
	stripes := DefaultStripes
	if size < stripes {
		stripes = size
	}
	return NewSharded(size, stripes)
}

// NewSharded returns a table with size orecs split into the given number
// of stripes. Both must be powers of two, with 1 <= stripes <= size. The
// table can be resized online only down (Resize within [1, stripes]); use
// NewResizable to reserve headroom for growth.
func NewSharded(size, stripes int) *Table {
	return NewResizable(size, stripes, stripes)
}

// NewResizable returns a table with size orecs, an initial stripe count,
// and physical storage laid out for online resizing anywhere within
// [1, maxStripes]. All three must be powers of two, with
// 1 <= stripes <= maxStripes <= size.
func NewResizable(size, stripes, maxStripes int) *Table {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("locktable: size %d is not a positive power of two", size))
	}
	if stripes <= 0 || stripes&(stripes-1) != 0 {
		panic(fmt.Sprintf("locktable: stripe count %d is not a positive power of two", stripes))
	}
	if maxStripes <= 0 || maxStripes&(maxStripes-1) != 0 {
		panic(fmt.Sprintf("locktable: max stripe count %d is not a positive power of two", maxStripes))
	}
	if stripes > maxStripes {
		panic(fmt.Sprintf("locktable: stripe count %d exceeds max %d", stripes, maxStripes))
	}
	if maxStripes > size {
		panic(fmt.Sprintf("locktable: stripe count %d exceeds table size %d", maxStripes, size))
	}
	per := size / maxStripes
	t := &Table{
		mask:       uintptr(size - 1),
		size:       size,
		chunkShift: uint32(bits.TrailingZeros(uint(per))),
		chunkMask:  uint32(per - 1),
		chunks:     make([]chunk, maxStripes),
		maxStripes: maxStripes,
	}
	for i := range t.chunks {
		t.chunks[i].orecs = make([]atomic.Uint64, per)
	}
	t.geo.Store(&View{Gen: 1, shift: shiftFor(size, stripes), n: stripes})
	return t
}

func shiftFor(size, stripes int) uint32 {
	return uint32(bits.TrailingZeros(uint(size / stripes)))
}

// Current returns the table's current stripe geometry.
func (t *Table) Current() View { return *t.geo.Load() }

// Gen returns the current geometry generation.
func (t *Table) Gen() uint64 { return t.geo.Load().Gen }

// MaxStripes returns the largest stripe count Resize accepts.
func (t *Table) MaxStripes() int { return t.maxStripes }

// Resize publishes a new stripe geometry with the given count and returns
// it. The count must be a power of two in [1, MaxStripes]. Orec words are
// untouched — slots keep their indexes and contents — so transactions
// racing the resize stay correct; only code that names stripes must notice
// the generation change. Resizing to the current count is a no-op (no
// generation bump, so in-flight transactions are not disturbed).
func (t *Table) Resize(stripes int) View {
	if stripes <= 0 || stripes&(stripes-1) != 0 || stripes > t.maxStripes {
		panic(fmt.Sprintf("locktable: resize to %d stripes (want a power of two in [1, %d])", stripes, t.maxStripes))
	}
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	cur := t.geo.Load()
	if cur.n == stripes {
		return *cur
	}
	nv := &View{Gen: cur.Gen + 1, shift: shiftFor(t.size, stripes), n: stripes}
	t.geo.Store(nv)
	return *nv
}

// ViewAt returns the geometry the table would have at the given stripe
// count, without publishing it (generation 0, never equal to a live
// generation). Planning helper: callers that lay out addresses for a
// geometry the adaptive controller is expected to reach use it to name
// stripes of that future geometry.
func (t *Table) ViewAt(stripes int) View {
	if stripes <= 0 || stripes&(stripes-1) != 0 || stripes > t.maxStripes {
		panic(fmt.Sprintf("locktable: view at %d stripes (want a power of two in [1, %d])", stripes, t.maxStripes))
	}
	return View{shift: shiftFor(t.size, stripes), n: stripes}
}

// Len returns the number of orecs in the table.
func (t *Table) Len() int { return t.size }

// NumStripes returns the current number of stripes.
func (t *Table) NumStripes() int { return t.geo.Load().n }

// StripeLen returns the number of orec slots per stripe under the current
// geometry.
func (t *Table) StripeLen() int { return t.size / t.geo.Load().n }

// StripeOf returns the stripe owning slot idx under the current geometry.
// Code that must name stripes consistently across several calls should
// capture Current() once and use View.StripeOf instead.
func (t *Table) StripeOf(idx uint32) uint32 { return t.geo.Load().StripeOf(idx) }

// IndexOf returns the table slot covering addr. Word-aligned addresses are
// mixed with a Fibonacci multiplier so that adjacent words land on
// different orecs (and, with high probability, on different stripes).
func (t *Table) IndexOf(addr *uint64) uint32 {
	p := uintptr(unsafe.Pointer(addr)) >> 3
	p *= 0x9e3779b97f4a7c15 & ^uintptr(0)
	return uint32((p >> 16) & t.mask)
}

func (t *Table) slot(idx uint32) *atomic.Uint64 {
	return &t.chunks[idx>>t.chunkShift].orecs[idx&t.chunkMask]
}

// Get returns the orec word for slot idx.
func (t *Table) Get(idx uint32) uint64 { return t.slot(idx).Load() }

// CAS attempts to transition slot idx from old to new.
func (t *Table) CAS(idx uint32, old, new uint64) bool {
	return t.slot(idx).CompareAndSwap(old, new)
}

// Set unconditionally stores word w into slot idx. Only the lock owner may
// do this (release paths).
func (t *Table) Set(idx uint32, w uint64) { t.slot(idx).Store(w) }

// ForAddr returns the orec word covering addr.
func (t *Table) ForAddr(addr *uint64) uint64 { return t.Get(t.IndexOf(addr)) }

// StripesOf appends to buf[:0] the deduplicated stripes covering the given
// orec slots under the current geometry; see View.StripesOf.
func (t *Table) StripesOf(slots []uint32, buf []uint32) []uint32 {
	return t.Current().StripesOf(slots, buf)
}

// StripesOf appends to buf[:0] the deduplicated stripes covering the given
// orec slots, in ascending order. Slot sets are small relative to the
// stripe count, so an insertion sort with linear dedup beats sorting a
// copy or building a map; buf lets hot paths (the post-commit wake scan)
// reuse one scratch slice across calls.
func (v View) StripesOf(slots []uint32, buf []uint32) []uint32 {
	out := buf[:0]
	for _, idx := range slots {
		s := idx >> v.shift
		pos := len(out)
		for pos > 0 && out[pos-1] >= s {
			if out[pos-1] == s {
				pos = -1
				break
			}
			pos--
		}
		if pos < 0 {
			continue
		}
		out = append(out, 0)
		copy(out[pos+1:], out[pos:])
		out[pos] = s
	}
	return out
}
