// Package locktable implements the table of ownership records (orecs) that
// maps shared-memory words to versioned locks, as in TinySTM, TL2, and the
// software TM of Appendix A. A single 64-bit word encodes either
// {unlocked, version} or {locked, owner, version}, so that all fields of a
// Lock object can be read atomically and modified with compare-and-swap.
package locktable

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Orec field layout. Bit 0 is the locked flag. When locked, bits 1..15
// carry the owner thread id (1-based) and bits 16..63 keep the version the
// word had when it was acquired, so release-for-abort can restore it.
// When unlocked, bits 16..63 carry the version and the owner field is zero.
const (
	lockedBit    = uint64(1)
	ownerShift   = 1
	ownerBits    = 15
	ownerMask    = (uint64(1)<<ownerBits - 1) << ownerShift
	versionShift = 16
	// MaxOwner is the largest encodable owner id.
	MaxOwner = uint64(1)<<ownerBits - 1
	// MaxVersion is the largest encodable version.
	MaxVersion = uint64(1)<<(64-versionShift) - 1
)

// Orec is the decoded form of an ownership record.
type Orec struct {
	Locked  bool
	Owner   uint64 // thread id, valid only when Locked
	Version uint64 // time of last unlock (kept while locked, for abort)
}

// Encode packs an Orec into its 64-bit word form.
func Encode(o Orec) uint64 {
	w := o.Version << versionShift
	if o.Locked {
		w |= lockedBit | (o.Owner << ownerShift & ownerMask)
	}
	return w
}

// Decode unpacks a 64-bit orec word.
func Decode(w uint64) Orec {
	o := Orec{Version: w >> versionShift}
	if w&lockedBit != 0 {
		o.Locked = true
		o.Owner = (w & ownerMask) >> ownerShift
	}
	return o
}

// Locked reports whether the encoded word is locked.
func Locked(w uint64) bool { return w&lockedBit != 0 }

// Owner returns the owner id of an encoded, locked word.
func Owner(w uint64) uint64 { return (w & ownerMask) >> ownerShift }

// Version returns the version of an encoded word.
func Version(w uint64) uint64 { return w >> versionShift }

// LockedBy builds the word for a lock held by owner with the given
// pre-acquisition version.
func LockedBy(owner, version uint64) uint64 {
	return version<<versionShift | owner<<ownerShift&ownerMask | lockedBit
}

// UnlockedAt builds the word for an unlocked orec with the given version.
func UnlockedAt(version uint64) uint64 { return version << versionShift }

// cacheLine is the assumed coherence granularity. Stripes are padded to
// it so that metadata of adjacent stripes never shares a line.
const cacheLine = 64

// stripe is one shard of the table: its own orec array, separately
// allocated so that hot orecs of different stripes live on different cache
// lines, with the header padded out to a line boundary.
type stripe struct {
	orecs []atomic.Uint64
	_     [(cacheLine - unsafe.Sizeof([]atomic.Uint64(nil))%cacheLine) % cacheLine]byte
}

// Table is a fixed-size, power-of-two array of orecs, sharded into a
// power-of-two number of cache-line-padded stripes. Distinct addresses may
// hash to the same orec (false conflicts), exactly as in word-based STM.
// Slot indexes remain global (0..Len-1); each stripe owns one contiguous
// range of Len/NumStripes slots, so StripeOf is a shift and the stripes
// partition the slot space exactly.
type Table struct {
	mask        uintptr
	stripeShift uint32 // slot >> stripeShift = stripe id
	slotMask    uint32 // slot & slotMask = index within the stripe
	stripes     []stripe
}

// DefaultSize is the default number of orecs (1<<16, 512 KiB).
const DefaultSize = 1 << 16

// DefaultStripes is the default stripe count. 64 stripes keep the
// per-commit wakeup index small while still spreading independent
// structures across distinct stripes with high probability.
const DefaultStripes = 64

// New returns a table with size orecs and the default stripe count
// (clamped to size for tiny tables); size must be a power of two.
func New(size int) *Table {
	stripes := DefaultStripes
	if size < stripes {
		stripes = size
	}
	return NewSharded(size, stripes)
}

// NewSharded returns a table with size orecs split into the given number
// of stripes. Both must be powers of two, with 1 <= stripes <= size.
func NewSharded(size, stripes int) *Table {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("locktable: size %d is not a positive power of two", size))
	}
	if stripes <= 0 || stripes&(stripes-1) != 0 {
		panic(fmt.Sprintf("locktable: stripe count %d is not a positive power of two", stripes))
	}
	if stripes > size {
		panic(fmt.Sprintf("locktable: stripe count %d exceeds table size %d", stripes, size))
	}
	per := size / stripes
	t := &Table{
		mask:        uintptr(size - 1),
		stripeShift: uint32(bits.TrailingZeros(uint(per))),
		slotMask:    uint32(per - 1),
		stripes:     make([]stripe, stripes),
	}
	for i := range t.stripes {
		t.stripes[i].orecs = make([]atomic.Uint64, per)
	}
	return t
}

// Len returns the number of orecs in the table.
func (t *Table) Len() int { return len(t.stripes) * len(t.stripes[0].orecs) }

// NumStripes returns the number of stripes.
func (t *Table) NumStripes() int { return len(t.stripes) }

// StripeLen returns the number of orec slots per stripe.
func (t *Table) StripeLen() int { return len(t.stripes[0].orecs) }

// StripeOf returns the stripe owning slot idx. Every slot belongs to
// exactly one stripe, and the same address always maps to the same stripe
// (IndexOf is a pure function of the address).
func (t *Table) StripeOf(idx uint32) uint32 { return idx >> t.stripeShift }

// IndexOf returns the table slot covering addr. Word-aligned addresses are
// mixed with a Fibonacci multiplier so that adjacent words land on
// different orecs (and, with high probability, on different stripes).
func (t *Table) IndexOf(addr *uint64) uint32 {
	p := uintptr(unsafe.Pointer(addr)) >> 3
	p *= 0x9e3779b97f4a7c15 & ^uintptr(0)
	return uint32((p >> 16) & t.mask)
}

func (t *Table) slot(idx uint32) *atomic.Uint64 {
	return &t.stripes[idx>>t.stripeShift].orecs[idx&t.slotMask]
}

// Get returns the orec word for slot idx.
func (t *Table) Get(idx uint32) uint64 { return t.slot(idx).Load() }

// CAS attempts to transition slot idx from old to new.
func (t *Table) CAS(idx uint32, old, new uint64) bool {
	return t.slot(idx).CompareAndSwap(old, new)
}

// Set unconditionally stores word w into slot idx. Only the lock owner may
// do this (release paths).
func (t *Table) Set(idx uint32, w uint64) { t.slot(idx).Store(w) }

// ForAddr returns the orec word covering addr.
func (t *Table) ForAddr(addr *uint64) uint64 { return t.Get(t.IndexOf(addr)) }

// StripesOf appends to buf[:0] the deduplicated stripes covering the given
// orec slots, in ascending order. Slot sets are small relative to the
// stripe count, so an insertion sort with linear dedup beats sorting a
// copy or building a map; buf lets hot paths (the post-commit wake scan)
// reuse one scratch slice across calls.
func (t *Table) StripesOf(slots []uint32, buf []uint32) []uint32 {
	out := buf[:0]
	for _, idx := range slots {
		s := idx >> t.stripeShift
		pos := len(out)
		for pos > 0 && out[pos-1] >= s {
			if out[pos-1] == s {
				pos = -1
				break
			}
			pos--
		}
		if pos < 0 {
			continue
		}
		out = append(out, 0)
		copy(out[pos+1:], out[pos:])
		out[pos] = s
	}
	return out
}

// GroupByStripe visits the given orec slots grouped by owning stripe, in
// ascending stripe order, calling fn once per distinct stripe with the
// slots it covers. It returns false (stopping early) as soon as fn does —
// the shape the sharded Retry-Orig registry needs for its per-shard
// validate-and-insert, which abandons the remaining shards on the first
// validation failure. The slots slice is sorted in place by stripe.
func (t *Table) GroupByStripe(slots []uint32, fn func(stripe uint32, slots []uint32) bool) bool {
	// Insertion sort by stripe (slot sets are small); stable enough for
	// grouping since only the stripe key matters.
	for i := 1; i < len(slots); i++ {
		v := slots[i]
		j := i
		for j > 0 && slots[j-1]>>t.stripeShift > v>>t.stripeShift {
			slots[j] = slots[j-1]
			j--
		}
		slots[j] = v
	}
	for lo := 0; lo < len(slots); {
		s := slots[lo] >> t.stripeShift
		hi := lo + 1
		for hi < len(slots) && slots[hi]>>t.stripeShift == s {
			hi++
		}
		if !fn(s, slots[lo:hi]) {
			return false
		}
		lo = hi
	}
	return true
}
