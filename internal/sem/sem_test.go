package sem

import (
	"sync"
	"testing"
	"time"
)

func TestSignalThenWait(t *testing.T) {
	s := New()
	s.Signal()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait blocked despite pending signal")
	}
}

func TestSignalsCoalesce(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Signal()
	}
	s.Wait() // consumes the single coalesced token
	if s.TryDrain() {
		t.Fatal("more than one token buffered")
	}
}

func TestWaitBlocksUntilSignal(t *testing.T) {
	s := New()
	released := make(chan struct{})
	go func() { s.Wait(); close(released) }()
	select {
	case <-released:
		t.Fatal("Wait returned without a signal")
	case <-time.After(20 * time.Millisecond):
	}
	s.Signal()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake after Signal")
	}
}

func TestTryDrain(t *testing.T) {
	s := New()
	if s.TryDrain() {
		t.Fatal("TryDrain succeeded on empty semaphore")
	}
	s.Signal()
	if !s.TryDrain() {
		t.Fatal("TryDrain failed with pending token")
	}
	if s.TryDrain() {
		t.Fatal("TryDrain consumed a second phantom token")
	}
}

// TestBatchReuseAcrossFlushCycles pins the contract cross-commit wakeup
// coalescing leans on: SignalAll empties the batch but retains capacity
// for the next flush cycle, and a reused batch must deliver exactly the
// semaphores added since the last SignalAll — never re-delivering a prior
// cycle's, whose waiters have long departed.
func TestBatchReuseAcrossFlushCycles(t *testing.T) {
	var b Batch
	first := []*Sem{New(), New(), New()}
	for _, s := range first {
		b.Add(s)
	}
	if n := b.SignalAll(); n != 3 {
		t.Fatalf("first cycle delivered %d signals, want 3", n)
	}
	for i, s := range first {
		if !s.TryDrain() {
			t.Fatalf("first-cycle sem %d missing its token", i)
		}
	}
	if cap(b.sems) < 3 {
		t.Errorf("SignalAll dropped the batch's capacity (cap %d, want >= 3)", cap(b.sems))
	}

	// Second cycle on the same batch: only the new semaphore may fire.
	second := New()
	b.Add(second)
	if n := b.SignalAll(); n != 1 {
		t.Fatalf("second cycle delivered %d signals, want 1", n)
	}
	if !second.TryDrain() {
		t.Fatal("second-cycle sem missing its token")
	}
	for i, s := range first {
		if s.TryDrain() {
			t.Fatalf("reused batch re-delivered first-cycle sem %d (stale token for a departed waiter)", i)
		}
	}

	// An empty flush stays empty.
	if n := b.SignalAll(); n != 0 {
		t.Fatalf("empty batch delivered %d signals", n)
	}
}

// TestBatchLenAcrossInterleavedAddSignalAll pins Len's bookkeeping while
// Add and SignalAll interleave, as they do across a thread's flush cycles.
func TestBatchLenAcrossInterleavedAddSignalAll(t *testing.T) {
	var b Batch
	if b.Len() != 0 {
		t.Fatalf("zero-value batch has Len %d", b.Len())
	}
	sems := []*Sem{New(), New(), New(), New(), New()}
	for i, s := range sems[:3] {
		b.Add(s)
		if b.Len() != i+1 {
			t.Fatalf("Len = %d after %d Adds", b.Len(), i+1)
		}
	}
	if n := b.SignalAll(); n != 3 || b.Len() != 0 {
		t.Fatalf("after SignalAll: delivered %d, Len %d; want 3, 0", n, b.Len())
	}
	b.Add(sems[3])
	b.Add(sems[4])
	if b.Len() != 2 {
		t.Fatalf("Len = %d after two post-flush Adds, want 2", b.Len())
	}
	if n := b.SignalAll(); n != 2 || b.Len() != 0 {
		t.Fatalf("second flush: delivered %d, Len %d; want 2, 0", n, b.Len())
	}
	for i, s := range sems {
		if !s.TryDrain() {
			t.Fatalf("sem %d never received its token", i)
		}
		if s.TryDrain() {
			t.Fatalf("sem %d received more than one token", i)
		}
	}
}

func TestManySignalersOneWaiter(t *testing.T) {
	s := New()
	const rounds = 1000
	var wg sync.WaitGroup
	woken := 0
	done := make(chan struct{})
	go func() {
		for i := 0; i < rounds; i++ {
			s.Wait()
			woken++
			done <- struct{}{}
		}
	}()
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Signal() }()
		<-done
	}
	wg.Wait()
	if woken != rounds {
		t.Fatalf("woken %d times, want %d", woken, rounds)
	}
}
