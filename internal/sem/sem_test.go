package sem

import (
	"sync"
	"testing"
	"time"
)

func TestSignalThenWait(t *testing.T) {
	s := New()
	s.Signal()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait blocked despite pending signal")
	}
}

func TestSignalsCoalesce(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Signal()
	}
	s.Wait() // consumes the single coalesced token
	if s.TryDrain() {
		t.Fatal("more than one token buffered")
	}
}

func TestWaitBlocksUntilSignal(t *testing.T) {
	s := New()
	released := make(chan struct{})
	go func() { s.Wait(); close(released) }()
	select {
	case <-released:
		t.Fatal("Wait returned without a signal")
	case <-time.After(20 * time.Millisecond):
	}
	s.Signal()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake after Signal")
	}
}

func TestTryDrain(t *testing.T) {
	s := New()
	if s.TryDrain() {
		t.Fatal("TryDrain succeeded on empty semaphore")
	}
	s.Signal()
	if !s.TryDrain() {
		t.Fatal("TryDrain failed with pending token")
	}
	if s.TryDrain() {
		t.Fatal("TryDrain consumed a second phantom token")
	}
}

func TestManySignalersOneWaiter(t *testing.T) {
	s := New()
	const rounds = 1000
	var wg sync.WaitGroup
	woken := 0
	done := make(chan struct{})
	go func() {
		for i := 0; i < rounds; i++ {
			s.Wait()
			woken++
			done <- struct{}{}
		}
	}()
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Signal() }()
		<-done
	}
	wg.Wait()
	if woken != rounds {
		t.Fatalf("woken %d times, want %d", woken, rounds)
	}
}
