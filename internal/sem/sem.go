// Package sem provides the per-thread binary semaphore used by the
// Deschedule mechanism (Algorithm 4): a waiter sleeps on its semaphore and
// any number of writers may signal it, with signals coalescing so that at
// most one wakeup token is buffered.
package sem

// Sem is a binary semaphore with coalescing signals. The zero value is not
// usable; construct with New.
type Sem struct {
	ch chan struct{}
}

// New returns a semaphore with no pending signal.
func New() *Sem {
	return &Sem{ch: make(chan struct{}, 1)}
}

// Signal posts a wakeup. If a token is already pending the call is a no-op,
// giving the coalescing behaviour of a binary semaphore.
func (s *Sem) Signal() {
	select {
	case s.ch <- struct{}{}:
	default:
	}
}

// Wait blocks until a signal is (or was) posted, consuming the token.
func (s *Sem) Wait() {
	<-s.ch
}

// TryDrain consumes a pending token without blocking and reports whether
// one was present. The Deschedule protocol uses it to discard a stale token
// when a waiter decides not to sleep after all, and — at the start of every
// sleep cycle — to keep tokens from one cycle from leaking into the next.
func (s *Sem) TryDrain() bool {
	select {
	case <-s.ch:
		return true
	default:
		return false
	}
}

// Batch accumulates semaphores to be signalled together, after the caller
// has released whatever locks it scanned under — the per-commit form of the
// paper's deferred semaphore operations (Algorithm 4 line 9). A committing
// writer CAS-claims every waiter it should wake into a Batch while walking
// its shards, then issues every signal in one burst with SignalAll.
//
// The zero value is an empty batch ready for use. A Batch is not safe for
// concurrent use; each committing thread builds its own.
type Batch struct {
	sems []*Sem
}

// Add appends a semaphore to the batch. The caller must already hold the
// exclusive claim on the corresponding waiter (the asleep/woken CAS), so
// the same waiter can never be added twice for one sleep cycle.
func (b *Batch) Add(s *Sem) {
	b.sems = append(b.sems, s)
}

// Len reports the number of pending signals.
func (b *Batch) Len() int { return len(b.sems) }

// SignalAll delivers every pending signal, empties the batch (retaining
// capacity for reuse), and returns the number of signals issued.
func (b *Batch) SignalAll() int {
	n := len(b.sems)
	for i, s := range b.sems {
		s.Signal()
		b.sems[i] = nil
	}
	b.sems = b.sems[:0]
	return n
}
