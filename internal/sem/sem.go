// Package sem provides the per-thread binary semaphore used by the
// Deschedule mechanism (Algorithm 4): a waiter sleeps on its semaphore and
// any number of writers may signal it, with signals coalescing so that at
// most one wakeup token is buffered.
package sem

// Sem is a binary semaphore with coalescing signals. The zero value is not
// usable; construct with New.
type Sem struct {
	ch chan struct{}
}

// New returns a semaphore with no pending signal.
func New() *Sem {
	return &Sem{ch: make(chan struct{}, 1)}
}

// Signal posts a wakeup. If a token is already pending the call is a no-op,
// giving the coalescing behaviour of a binary semaphore.
func (s *Sem) Signal() {
	select {
	case s.ch <- struct{}{}:
	default:
	}
}

// Wait blocks until a signal is (or was) posted, consuming the token.
func (s *Sem) Wait() {
	<-s.ch
}

// TryDrain consumes a pending token without blocking and reports whether
// one was present. The Deschedule protocol uses it to discard a stale token
// when a waiter decides not to sleep after all.
func (s *Sem) TryDrain() bool {
	select {
	case <-s.ch:
		return true
	default:
		return false
	}
}
