package perf

import (
	"encoding/json"
	"testing"

	"tmsync/internal/mech"
)

// TestSweepSmoke runs a tiny sweep over every engine and checks the
// report's shape: full axis coverage, valid JSON, sane counters.
func TestSweepSmoke(t *testing.T) {
	rep, err := Run(Options{
		Seed:      1,
		Threads:   []int{1, 2},
		Workloads: []string{"buffer", "parsec/dedup"},
		BufferOps: 50,
		Scale:     1,
		Baseline:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema %q", rep.Schema)
	}
	engines := map[string]bool{}
	mechs := map[string]bool{}
	for _, p := range rep.Points {
		engines[p.Engine] = true
		mechs[p.Mech] = true
		if p.Seconds < 0 {
			t.Errorf("%s %s/%s: negative duration", p.Workload, p.Engine, p.Mech)
		}
		if p.Engine != "none" && p.Commits == 0 && p.ROCommits == 0 {
			t.Errorf("%s %s/%s t=%d: no transactions committed", p.Workload, p.Engine, p.Mech, p.Threads)
		}
	}
	for _, e := range []string{"eager", "lazy", "htm", "hybrid", "none"} {
		if !engines[e] {
			t.Errorf("engine %s missing from the sweep", e)
		}
	}
	for _, m := range mech.TM {
		if !mechs[string(m)] {
			t.Errorf("mechanism %s missing from the sweep", m)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip through JSON: %v", err)
	}
	if len(back.Points) != len(rep.Points) {
		t.Fatalf("round-trip lost points: %d != %d", len(back.Points), len(rep.Points))
	}
}

// TestUnknownWorkloadRejectedUpFront: a typo in a workload name must fail
// the run immediately, not silently produce an empty report (CI would
// upload it as the trajectory artifact).
func TestUnknownWorkloadRejectedUpFront(t *testing.T) {
	for _, w := range []string{"parsec/raytrcae", "bufffer"} {
		if _, err := Run(Options{Workloads: []string{w}}); err == nil {
			t.Errorf("workload %q accepted; want an error", w)
		}
	}
	if _, err := Run(Options{SweepStripes: []int{3}}); err == nil {
		t.Error("non-power-of-two sweep stripes accepted; want an error")
	}
}

// TestParsecBaselineHasThroughput: the Pthreads baseline rows must carry a
// comparable throughput metric (inverse wall time), not a meaningless 0.
func TestParsecBaselineHasThroughput(t *testing.T) {
	rep, err := Run(Options{
		Threads:   []int{2},
		Engines:   []string{"eager"},
		Mechs:     []mech.Mechanism{mech.Retry},
		Workloads: []string{"parsec/x264"},
		Scale:     1,
		Baseline:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if p.Throughput <= 0 {
			t.Errorf("%s %s/%s: throughput %v, want > 0", p.Workload, p.Engine, p.Mech, p.Throughput)
		}
	}
}

// TestRetryOrigExcludedFromHardwareEngines: the sweep must not try to run
// the metadata-based retry on engines without STM metadata (it would
// panic).
func TestRetryOrigExcludedFromHardwareEngines(t *testing.T) {
	rep, err := Run(Options{
		Seed:      1,
		Threads:   []int{2},
		Engines:   []string{"htm", "hybrid"},
		Mechs:     []mech.Mechanism{mech.RetryOrig, mech.Retry},
		Workloads: []string{"buffer"},
		BufferOps: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if p.Mech == string(mech.RetryOrig) {
			t.Errorf("retry-orig scheduled on %s", p.Engine)
		}
	}
}

// TestOrigSweepReducesRegistryScan is the sharded Retry-Orig registry's
// acceptance criterion as a regression test: on the token ring at 8
// goroutines, the 64-shard registry must examine fewer sleeping entries
// per commit than the single-shard (global, signal-at-claim) baseline.
// The effect is structural: with one shard every hand-off commit scans
// every sleeping worker in the ring; with 64 shards it scans only the
// entries registered on the stripes its two written slots cover.
func TestOrigSweepReducesRegistryScan(t *testing.T) {
	passes := 300
	if testing.Short() {
		passes = 60
	}
	rep, err := Run(Options{
		Seed:         1,
		Threads:      []int{2},
		Engines:      []string{"eager", "lazy"},
		Mechs:        []mech.Mechanism{mech.Retry},
		Workloads:    []string{"buffer"},
		BufferOps:    20,
		OrigThreads:  []int{8},
		OrigPasses:   passes,
		SweepStripes: []int{1, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OrigSweep) != 80 { // 2 engines × 2 stripe counts × {batched, unbatched} × 10 pooled reps
		t.Fatalf("orig sweep has %d points, want 80", len(rep.OrigSweep))
	}
	for _, p := range rep.OrigSweep {
		if p.Deschedules == 0 {
			t.Errorf("origring %s stripes=%d unbatched=%v: ring never slept", p.Engine, p.Stripes, p.Unbatched)
		}
		if p.Unbatched && p.BatchedSignals != 0 {
			t.Errorf("origring %s stripes=%d: unbatched point reports %d batched signals", p.Engine, p.Stripes, p.BatchedSignals)
		}
	}
	v := rep.OrigVerdict
	if v == nil {
		t.Fatal("orig sweep produced no verdict")
	}
	if v.Threads != 8 {
		t.Fatalf("verdict at %d threads, want 8", v.Threads)
	}
	if v.OrigChecksPerCommitBaseline == 0 {
		t.Fatalf("single-shard baseline measured no registry checks at all: %+v", v)
	}
	if !v.ChecksImproved {
		t.Errorf("registry checks per commit did not improve: baseline %.4f vs sharded %.4f",
			v.OrigChecksPerCommitBaseline, v.OrigChecksPerCommitCandidate)
	}
}

// TestDiffReportsSharedCells: the trajectory diff must line up cells by
// workload × engine × mechanism × threads and always end with the
// aggregate line.
func TestDiffReportsSharedCells(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Options{
			Seed:      1,
			Threads:   []int{2},
			Engines:   []string{"eager"},
			Mechs:     []mech.Mechanism{mech.Retry},
			Workloads: []string{"buffer"},
			BufferOps: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	old, cur := run(), run()
	lines := DiffReports(old, cur)
	if len(lines) != 2 {
		t.Fatalf("diff of single-cell reports has %d lines, want cell + total:\n%v", len(lines), lines)
	}
}

// TestStripeSweepReducesWakeScan is the PR's acceptance criterion as a
// regression test: on the lane-partitioned bounded buffer at 8
// goroutines, the 64-stripe wakeup index must visit fewer waiters per
// commit than the 1-stripe (global) scan. The effect is structural — with
// one stripe every commit scans every sleeping waiter in every lane, with
// 64 stripes it scans only its own lane's — so the inequality holds far
// from the noise floor.
// TestCoalesceSweepReducesTightloopScan pins the coalesce sweep's
// machinery on a small configuration: the tight-loop producer workload
// must pay measurably fewer wake checks per commit with the scans
// coalesced, the workload's token-conservation self-check must hold, and
// the verdict must carry both sides.
func TestCoalesceSweepReducesTightloopScan(t *testing.T) {
	ops := 1500
	if testing.Short() {
		ops = 400
	}
	rep, err := Run(Options{
		Seed:            1,
		Threads:         []int{1},
		Engines:         []string{"eager", "lazy"},
		Mechs:           []mech.Mechanism{mech.Retry},
		Workloads:       []string{"buffer"},
		BufferOps:       50,
		CoalesceThreads: []int{2},
		CoalesceKs:      []int{0, 8},
		TightloopOps:    ops,
		OrigPasses:      50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CoalesceSweep) == 0 {
		t.Fatal("coalesce sweep produced no points")
	}
	for _, p := range rep.CoalesceSweep {
		if p.Workload == "tightloop" && p.Commits == 0 {
			t.Errorf("tightloop %s coalesce=%d: no commits", p.Engine, p.Coalesce)
		}
		if p.Coalesce > 0 && p.Workload == "tightloop" && p.CoalescedScans == 0 {
			t.Errorf("tightloop %s coalesce=%d: no scans were deferred", p.Engine, p.Coalesce)
		}
	}
	v := rep.CoalesceVerdict
	if v == nil {
		t.Fatal("sweep produced no coalesce verdict")
	}
	if v.TightloopChecksPerCommitOff == 0 {
		t.Fatalf("uncoalesced tightloop measured no wake checks at all: %+v", v)
	}
	if !v.TightloopImproved {
		t.Errorf("tightloop wake checks per commit did not improve: %.4f off vs %.4f at K=%d",
			v.TightloopChecksPerCommitOff, v.TightloopChecksPerCommitOn, v.K)
	}
}

func TestStripeSweepReducesWakeScan(t *testing.T) {
	ops := 2000
	if testing.Short() {
		ops = 500
	}
	rep, err := Run(Options{
		Seed:         1,
		Threads:      []int{8},
		Mechs:        []mech.Mechanism{mech.Retry, mech.Await},
		Workloads:    []string{"buffer"},
		BufferOps:    ops,
		SweepStripes: []int{1, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := rep.StripeVerdict
	if v == nil {
		t.Fatal("sweep produced no stripe verdict")
	}
	if v.WakeupsPerCommitLow == 0 {
		t.Fatalf("1-stripe sweep measured no wakeup checks at all (commits missing?): %+v", v)
	}
	if !v.Improved {
		t.Errorf("wakeup checks per commit did not improve: %.4f @ %d stripes vs %.4f @ %d stripes",
			v.WakeupsPerCommitLow, v.LowStripes, v.WakeupsPerCommitHigh, v.HighStripes)
	}
}
