package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// LoadReport reads a previously emitted benchmark report (any
// tmsync-bench/1 file, e.g. BENCH_PR2.json) for trajectory diffing.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("perf: %s has schema %q, want %q", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// cellKey identifies a comparable cell across two reports' main sweeps.
type cellKey struct {
	workload string
	engine   string
	mech     string
	threads  int
}

// DiffReports compares the post-commit wakeup costs of two reports —
// wake checks per commit and delivered signals per commit, aggregated
// per workload × engine × mechanism × thread-count cell over the main
// sweep — and renders one line per cell present in both, followed by an
// aggregate line. It is the CI trajectory check between BENCH_PR<N>
// artifacts: informative, not pass/fail, since both quantities move with
// scheduling noise; the committed verdicts carry the pass/fail claims.
func DiffReports(old, cur *Report) []string {
	type sums struct {
		checks, wakeups, commits uint64
	}
	accumulate := func(points []Point) map[cellKey]*sums {
		m := make(map[cellKey]*sums)
		for _, p := range points {
			if p.Commits == 0 {
				continue
			}
			k := cellKey{p.Workload, p.Engine, p.Mech, p.Threads}
			s := m[k]
			if s == nil {
				s = &sums{}
				m[k] = s
			}
			s.checks += p.WakeChecks
			s.wakeups += p.Wakeups
			s.commits += p.Commits
		}
		return m
	}
	oldCells := accumulate(old.Points)
	curCells := accumulate(cur.Points)

	keys := make([]cellKey, 0, len(curCells))
	for k := range curCells {
		if _, ok := oldCells[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		if a.engine != b.engine {
			return a.engine < b.engine
		}
		if a.mech != b.mech {
			return a.mech < b.mech
		}
		return a.threads < b.threads
	})

	rate := func(num, den uint64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	var out []string
	var aggOld, aggCur sums
	for _, k := range keys {
		o, c := oldCells[k], curCells[k]
		aggOld.checks += o.checks
		aggOld.wakeups += o.wakeups
		aggOld.commits += o.commits
		aggCur.checks += c.checks
		aggCur.wakeups += c.wakeups
		aggCur.commits += c.commits
		out = append(out, fmt.Sprintf(
			"%-20s %-7s %-10s t=%-2d wake-checks/commit %.3f -> %.3f  signals/commit %.3f -> %.3f",
			k.workload, k.engine, k.mech, k.threads,
			rate(o.checks, o.commits), rate(c.checks, c.commits),
			rate(o.wakeups, o.commits), rate(c.wakeups, c.commits)))
	}
	out = append(out, fmt.Sprintf(
		"TOTAL over %d shared cells: wake-checks/commit %.3f -> %.3f  signals/commit %.3f -> %.3f",
		len(keys),
		rate(aggOld.checks, aggOld.commits), rate(aggCur.checks, aggCur.commits),
		rate(aggOld.wakeups, aggOld.commits), rate(aggCur.wakeups, aggCur.commits)))
	return out
}
