// Package perf is the seeded benchmark pipeline behind BENCH_PR2.json:
// a sweep driver that runs every TM engine × condition-synchronization
// mechanism over the repository's workloads (the lane-partitioned bounded
// buffer and the eight PARSEC concurrency skeletons) across a ladder of
// goroutine counts, from a fixed seed, and emits one machine-readable
// report per invocation. The report is the performance trajectory later
// PRs diff against: throughput, abort rate, the quantity the sharded orec
// table exists to shrink — wakeup-scan work per commit — and, since the
// CoalesceMaxDelay age bound, sleep-to-signal wake latency.
//
// Every run also self-checks: PARSEC checksums are diffed against the
// sequential reference, so a benchmark that silently computes the wrong
// thing fails instead of reporting a meaningless number.
package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"tmsync/internal/buffer"
	"tmsync/internal/clock"
	"tmsync/internal/core"
	"tmsync/internal/harness"
	"tmsync/internal/locktable"
	"tmsync/internal/mech"
	"tmsync/internal/mono"
	"tmsync/internal/parsecsim"
	"tmsync/internal/tm"
)

// Schema identifies the report layout; bump on incompatible change.
const Schema = "tmsync-bench/1"

// Options parameterizes one sweep. Zero values select defaults.
type Options struct {
	// Seed feeds the produced value streams; recorded in the report so a
	// run can be reproduced exactly.
	Seed uint64
	// Threads is the goroutine-count ladder (default 1, 2, 4, 8).
	Threads []int
	// Engines restricts the engine axis (default: all four).
	Engines []string
	// Mechs restricts the mechanism axis (default: all TM mechanisms;
	// the Pthreads baseline is always measured once per workload cell).
	Mechs []mech.Mechanism
	// Workloads restricts the workload axis (default: Workloads()).
	Workloads []string
	// BufferOps is the number of operations each bounded-buffer worker
	// performs (default 2000).
	BufferOps int
	// BufferCap is the per-lane buffer capacity (default 4; small, so
	// workers block often and condition synchronization is exercised).
	BufferCap int
	// Scale is the PARSEC workload scale (default 2).
	Scale int
	// Trials repeats every cell (default 1); each trial is one point.
	Trials int
	// SweepStripes is the stripe-count axis of the bounded-buffer stripe
	// sweep (default {1, 64}: the global table versus the sharded one).
	SweepStripes []int
	// Baseline includes the Pthreads lock+condvar baseline per workload.
	Baseline bool

	// OrigThreads is the goroutine ladder of the Retry-Orig contention
	// sweep; empty skips the sweep (cmd/tmbench passes 8,16 by default).
	// Each cell is a token ring of that many Retry-Orig workers, run on
	// the STM engines at every SweepStripes count, both batched and
	// unbatched — the A/B for the sharded registry and the per-commit
	// signal batch.
	OrigThreads []int
	// OrigPasses is the number of token hand-offs each ring worker
	// performs (default 400).
	OrigPasses int
	// OrigWindow is the number of ring slots each worker reads per
	// attempt (default 4): window reads inflate the sleeper's orec set
	// across registry shards and create the futile-wakeup crosstalk the
	// sweep is meant to stress.
	OrigWindow int

	// AdaptiveThreads is the goroutine ladder of the adaptive-vs-static
	// sweep; empty skips it (cmd/tmbench passes 8 by default). Each rung
	// reruns the stripe sweep's wakeup-bound cells (buffer under Retry
	// and Await, the Retry-Orig token ring) with the adaptive controller
	// enabled and a deliberately wrong starting count of one stripe,
	// bounded by [1, max(SweepStripes)] — the static cells of the stripe
	// and Retry-Orig sweeps are the baselines the verdict compares
	// against.
	AdaptiveThreads []int
	// AdaptiveOrigPasses is the token hand-offs per ring worker in the
	// adaptive Retry-Orig cells. Defaults to OrigPasses: the ring's
	// scan-cost rate drifts with run length on a loaded machine, so the
	// adaptive cells must run exactly as long as the static baseline
	// they are judged against.
	AdaptiveOrigPasses int

	// CoalesceThreads is the goroutine ladder of the cross-commit wakeup
	// coalescing sweep; empty skips it (cmd/tmbench passes 8 by default).
	// Each rung measures the tight-loop producer workload at every
	// CoalesceKs value, plus the bounded buffer (Retry and Await) and the
	// Retry-Orig token ring at {0, max K} as regression guards: those
	// workloads block constantly, so their scans flush at the block bound
	// and coalescing must neither help nor hurt them much.
	CoalesceThreads []int
	// CoalesceKs lists the Config.CoalesceCommits values the tight-loop
	// cells measure (default {0, 2, 8}; 0 — scan every commit — is the
	// baseline the verdict compares against and is always included).
	CoalesceKs []int
	// TightloopOps is the number of tight-loop producer commits per lane
	// (default 2000, rounded up to a TightloopBatch multiple);
	// TightloopBatch is the consumer's claim size (default 200).
	TightloopOps, TightloopBatch int

	// LatencyThreads is the goroutine ladder of the wake-latency sweep;
	// empty skips it (cmd/tmbench passes 8 by default). Each rung runs the
	// tightloop/idle workload — producers that go idle on a plain Go
	// channel with wake scans still pending, the exact shape of the
	// stranding bug — and measures sleep-to-signal latency where only the
	// CoalesceMaxDelay age backstop can deliver the wakeup.
	LatencyThreads []int
	// LatencyMaxDelay is the Config.CoalesceMaxDelay the latency cells run
	// with (default 25ms). LatencySlack is the scheduling allowance the
	// verdict grants on top of it (default 20ms): the backstop wakes
	// within OS-timer and scheduler slack of the deadline, not at it.
	LatencyMaxDelay, LatencySlack time.Duration
	// LatencyRounds is the number of burst/claim hand-offs per lane
	// (default 12; each round records one consumer sleep). LatencyBurst is
	// the commits per producer burst (default 8); the cells run
	// CoalesceCommits at four times this, so no commit-count bound can
	// preempt the age bound being measured.
	LatencyRounds, LatencyBurst int

	// ClockThreads is the goroutine ladder of the commit-clock sweep;
	// empty skips it (cmd/tmbench passes 8,16,32 by default — the rungs
	// past 8 are where a single fetch-and-add word stops scaling). Each
	// rung runs the tight-loop producer workload and the bounded buffer
	// (Retry) on the STM engines under every ClockModes protocol, with
	// timestamp extension enabled uniformly: deferred turns too-new
	// observations into extensions rather than aborts, and the knob must
	// not differ between the cells being compared.
	ClockThreads []int
	// ClockModes lists the Config.ClockMode protocols the clock cells
	// measure (default: all three — global, pof, deferred). The global
	// cells ARE the pre-sweep implementation — one atomic add on the one
	// cache line every committer shares — so the sweep carries its own
	// baseline, and global is always included.
	ClockModes []string

	// Progress, when set, receives one call per completed point.
	Progress func(done, total int, p Point)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8}
	}
	if len(o.Engines) == 0 {
		o.Engines = harness.Engines
	}
	if len(o.Mechs) == 0 {
		o.Mechs = mech.TM
	}
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads()
	}
	if o.BufferOps == 0 {
		o.BufferOps = 2000
	}
	if o.BufferCap == 0 {
		o.BufferCap = 4
	}
	if o.Scale == 0 {
		o.Scale = 2
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	if len(o.SweepStripes) == 0 {
		o.SweepStripes = []int{1, 64}
	}
	if o.OrigPasses == 0 {
		// 1200 passes x 8 workers ≈ 10k commits per cell: the ring's
		// scan-cost rates carry ±20% run noise at a few thousand commits,
		// which the adaptive-vs-static 10% comparison cannot tolerate.
		o.OrigPasses = 1200
	}
	if o.OrigWindow == 0 {
		o.OrigWindow = 4
	}
	if o.AdaptiveOrigPasses == 0 {
		o.AdaptiveOrigPasses = o.OrigPasses
	}
	if len(o.CoalesceKs) == 0 {
		o.CoalesceKs = []int{0, 2, 8}
	}
	hasZero := false
	for _, k := range o.CoalesceKs {
		if k == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		o.CoalesceKs = append([]int{0}, o.CoalesceKs...)
	}
	if o.TightloopOps == 0 {
		o.TightloopOps = 2000
	}
	if o.TightloopBatch == 0 {
		// A longer batch keeps consumers asleep through longer futile-scan
		// runs — the regime coalescing targets — without changing the
		// workload's total work.
		o.TightloopBatch = 200
	}
	if o.LatencyMaxDelay == 0 {
		o.LatencyMaxDelay = 25 * time.Millisecond
	}
	if o.LatencySlack == 0 {
		o.LatencySlack = 20 * time.Millisecond
	}
	if o.LatencyRounds == 0 {
		o.LatencyRounds = 12
	}
	if o.LatencyBurst == 0 {
		o.LatencyBurst = 8
	}
	if len(o.ClockModes) == 0 {
		for _, m := range clock.Modes() {
			o.ClockModes = append(o.ClockModes, string(m))
		}
	}
	hasGlobal := false
	for _, m := range o.ClockModes {
		if m == string(clock.Global) {
			hasGlobal = true
		}
	}
	if !hasGlobal {
		o.ClockModes = append([]string{string(clock.Global)}, o.ClockModes...)
	}
	return o
}

// Workloads lists every workload name: the bounded buffer plus the eight
// PARSEC skeletons.
func Workloads() []string {
	out := []string{"buffer"}
	for i := range parsecsim.Benchmarks {
		out = append(out, "parsec/"+parsecsim.Benchmarks[i].Name)
	}
	return out
}

// Point is one measured cell: workload × engine × mechanism × goroutine
// count (× stripe count, for the stripe sweep).
type Point struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"` // "none" for the Pthreads baseline
	Mech     string `json:"mech"`
	Threads  int    `json:"threads"`
	// Stripes is the orec-table stripe count (0 = engine default).
	Stripes int `json:"stripes,omitempty"`
	// Unbatched marks a point measured with signal-at-claim wakeup
	// delivery instead of the per-commit signal batch (the A/B baseline
	// of the Retry-Orig contention sweep).
	Unbatched bool `json:"unbatched,omitempty"`
	// Adaptive marks a point measured with the online stripe controller
	// enabled; Stripes is then the (deliberately wrong) starting count.
	Adaptive bool `json:"adaptive,omitempty"`
	// FinalStripes is the stripe count the table ended the run at (only
	// interesting for adaptive points; the controller should have
	// converged away from the starting count).
	FinalStripes int `json:"final_stripes,omitempty"`
	// Resizes counts online stripe-geometry swaps during the run.
	Resizes uint64 `json:"resizes,omitempty"`
	// GenAborts counts commit-time aborts caused by a resize landing
	// mid-transaction — the per-transaction cost of the epoch swap.
	GenAborts uint64 `json:"gen_aborts,omitempty"`
	// Coalesce is the Config.CoalesceCommits value the point ran with
	// (0 = scan after every commit, the baseline).
	Coalesce int `json:"coalesce,omitempty"`
	Trial    int `json:"trial"`

	Seconds float64 `json:"seconds"`
	// Ops counts application-level operations where the workload defines
	// them (bounded buffer: puts+gets); 0 for checksum workloads.
	Ops uint64 `json:"ops,omitempty"`
	// Throughput is Ops/Seconds when Ops is known (buffer); for checksum
	// workloads it is workload runs per second (inverse wall time), which
	// stays comparable across engines, mechanisms, and the Pthreads
	// baseline.
	Throughput float64 `json:"throughput_per_sec"`

	Commits     uint64  `json:"commits"`
	ROCommits   uint64  `json:"ro_commits"`
	Aborts      uint64  `json:"aborts"`
	AbortRate   float64 `json:"abort_rate"`
	Deschedules uint64  `json:"deschedules"`
	// Wakeups counts semaphore wakeups delivered to sleeping waiters.
	Wakeups uint64 `json:"wakeups"`
	// WakeChecks counts sleeping waiters visited by post-commit wakeup
	// scans — the O(waiters)-versus-O(write set) scan work the stripe
	// index eliminates.
	WakeChecks uint64 `json:"wake_checks"`
	// WakeupsPerCommit is WakeChecks per writer commit: the wakeup-scan
	// cost a committing writer pays.
	WakeupsPerCommit float64 `json:"wakeups_per_commit"`
	// SignalsPerCommit is delivered wakeups per writer commit.
	SignalsPerCommit float64 `json:"signals_per_commit"`
	// BatchedSignals counts signals issued through the per-commit batch
	// (zero for unbatched points).
	BatchedSignals uint64 `json:"batched_signals,omitempty"`
	// OrigShardChecks counts Retry-Orig registry entries examined by
	// post-commit origWake scans — the work the sharded registry shrinks.
	OrigShardChecks uint64 `json:"orig_shard_checks,omitempty"`
	// OrigChecksPerCommit is OrigShardChecks per writer commit.
	OrigChecksPerCommit float64 `json:"orig_checks_per_commit,omitempty"`
	// CoalescedScans counts writer commits whose wake scan remained
	// deferred past the commit itself (coalesce points only): the ratio
	// to Commits is the fraction of scans coalescing removed.
	CoalescedScans uint64 `json:"coalesced_scans,omitempty"`
	// FlushK/FlushBlock/FlushAbort/FlushRead/FlushTeardown break pending-
	// buffer flushes down by trigger, exposing the effective flush
	// interval a cell actually ran at (coalesce points only).
	FlushK        uint64 `json:"flush_k,omitempty"`
	FlushBlock    uint64 `json:"flush_block,omitempty"`
	FlushAbort    uint64 `json:"flush_abort,omitempty"`
	FlushRead     uint64 `json:"flush_read,omitempty"`
	FlushAge      uint64 `json:"flush_age,omitempty"`
	FlushTeardown uint64 `json:"flush_teardown,omitempty"`
	// ClockMode is the Config.ClockMode the point ran with (clock-sweep
	// cells; empty = the global default everywhere else).
	ClockMode string `json:"clock_mode,omitempty"`
	// ClockAdvances counts successful writes to the shared clock word;
	// ClockCASRetries counts CAS attempts on it that lost.
	// ClockOpsPerCommit is their sum per writer commit — the cost every
	// commit pays on the one cache line all committers share, the
	// quantity the pof and deferred protocols exist to shrink.
	ClockAdvances     uint64  `json:"clock_advances,omitempty"`
	ClockCASRetries   uint64  `json:"clock_cas_retries,omitempty"`
	ClockOpsPerCommit float64 `json:"clock_ops_per_commit,omitempty"`
	// MaxDelayNs is the Config.CoalesceMaxDelay the point ran with
	// (latency cells only).
	MaxDelayNs int64 `json:"max_delay_ns,omitempty"`
	// WakeSleeps counts the semaphore sleeps the cell timed;
	// WakeLatencyP50Ns/P99Ns/MaxNs are nearest-rank quantiles of the
	// sleep-to-signal latency across them (latency cells only).
	WakeSleeps       uint64 `json:"wake_sleeps,omitempty"`
	WakeLatencyP50Ns int64  `json:"wake_latency_p50_ns,omitempty"`
	WakeLatencyP99Ns int64  `json:"wake_latency_p99_ns,omitempty"`
	WakeLatencyMaxNs int64  `json:"wake_latency_max_ns,omitempty"`
	// Checksum is the workload checksum (PARSEC kernels), verified
	// against the sequential reference before the point is recorded.
	Checksum uint64 `json:"checksum,omitempty"`
}

// StripeVerdict summarizes the stripe sweep at the highest goroutine
// count: aggregate wakeup-scan work per commit under the fewest versus the
// most stripes. Improved is the PR's headline claim — sharding makes the
// post-commit wakeup cheaper.
type StripeVerdict struct {
	Workload             string  `json:"workload"`
	Threads              int     `json:"threads"`
	LowStripes           int     `json:"low_stripes"`
	HighStripes          int     `json:"high_stripes"`
	WakeupsPerCommitLow  float64 `json:"wakeups_per_commit_low_stripes"`
	WakeupsPerCommitHigh float64 `json:"wakeups_per_commit_high_stripes"`
	Improved             bool    `json:"improved"`
}

// OrigVerdict summarizes the Retry-Orig contention sweep at 8 goroutines
// (the acceptance point; the ladder also measures 16): the unsharded,
// unbatched baseline — one registry shard, signal-at-claim delivery, i.e.
// the pre-sharding implementation — against the sharded registry with the
// per-commit signal batch. ChecksImproved is the headline claim: a
// committing writer examines fewer sleeping Retry-Orig entries when it
// takes only the registry shards of stripes in its lock set.
type OrigVerdict struct {
	Workload  string `json:"workload"`
	Threads   int    `json:"threads"`
	Baseline  string `json:"baseline"` // e.g. "1 stripe, unbatched"
	Candidate string `json:"candidate"`

	OrigChecksPerCommitBaseline  float64 `json:"orig_checks_per_commit_baseline"`
	OrigChecksPerCommitCandidate float64 `json:"orig_checks_per_commit_candidate"`
	SignalsPerCommitBaseline     float64 `json:"signals_per_commit_baseline"`
	SignalsPerCommitCandidate    float64 `json:"signals_per_commit_candidate"`
	ThroughputBaseline           float64 `json:"throughput_baseline"`
	ThroughputCandidate          float64 `json:"throughput_candidate"`

	ChecksImproved  bool `json:"checks_improved"`
	SignalsImproved bool `json:"signals_improved"`
	Improved        bool `json:"improved"`
}

// AdaptiveVerdict summarizes the adaptive-vs-static sweep at 8 goroutines
// (the acceptance point): starting from a deliberately wrong stripe count
// of 1, the online controller must converge and land the full-run
// wakeup-scan cost — convergence transient included — within 10% of the
// best static configuration, on both the wakeup-bound buffer cells
// (wake-checks per commit, Retry and Await across all engines) and the
// Retry-Orig token ring (registry checks per commit).
type AdaptiveVerdict struct {
	Threads      int `json:"threads"`
	StartStripes int `json:"start_stripes"`
	MaxStripes   int `json:"max_stripes"`

	BufferBestStaticStripes   int     `json:"buffer_best_static_stripes"`
	BufferChecksPerCommitBest float64 `json:"buffer_wake_checks_per_commit_best_static"`
	BufferChecksPerCommitAdap float64 `json:"buffer_wake_checks_per_commit_adaptive"`
	BufferWithin10Pct         bool    `json:"buffer_within_10pct"`

	OrigBestStaticStripes   int     `json:"origring_best_static_stripes"`
	OrigChecksPerCommitBest float64 `json:"origring_checks_per_commit_best_static"`
	OrigChecksPerCommitAdap float64 `json:"origring_checks_per_commit_adaptive"`
	OrigWithin10Pct         bool    `json:"origring_within_10pct"`

	// Converged is the headline claim: both workloads landed within 10%.
	Converged bool `json:"converged"`
}

// CoalesceVerdict summarizes the cross-commit wakeup coalescing sweep at
// 8 goroutines (the acceptance point): the tight-loop producer workload —
// writers committing back-to-back with WaitPred consumers asleep on the
// unindexed list, the structure coalescing exists for — must pay fewer
// wake-scan checks per commit at the highest measured CoalesceCommits than
// at 0, while the bounded buffer and the Retry-Orig token ring, whose
// threads block constantly (so almost every scan flushes at the block
// bound), must not regress beyond noise.
type CoalesceVerdict struct {
	Threads int `json:"threads"`
	K       int `json:"k"` // highest CoalesceCommits measured

	TightloopChecksPerCommitOff float64 `json:"tightloop_wake_checks_per_commit_off"`
	TightloopChecksPerCommitOn  float64 `json:"tightloop_wake_checks_per_commit_on"`
	TightloopThroughputOff      float64 `json:"tightloop_throughput_off"`
	TightloopThroughputOn       float64 `json:"tightloop_throughput_on"`
	TightloopImproved           bool    `json:"tightloop_improved"`

	// The guard claims hold vacuously (rates zero, bool true) when the
	// guard's cells were filtered out of the sweep by -workloads/-engines.
	BufferChecksPerCommitOff float64 `json:"buffer_wake_checks_per_commit_off"`
	BufferChecksPerCommitOn  float64 `json:"buffer_wake_checks_per_commit_on"`
	BufferNoRegression       bool    `json:"buffer_no_regression"`

	OrigChecksPerCommitOff float64 `json:"origring_checks_per_commit_off"`
	OrigChecksPerCommitOn  float64 `json:"origring_checks_per_commit_on"`
	OrigNoRegression       bool    `json:"origring_no_regression"`

	// Improved is the headline claim: the tight-loop scans got cheaper and
	// neither blocking workload regressed.
	Improved bool `json:"improved"`
}

// LatencyVerdict summarizes the wake-latency sweep at 8 goroutines (or
// the sweep's highest rung): on the tightloop/idle workload — producers
// that go idle on a plain channel with wake scans still pending, so only
// the CoalesceMaxDelay age backstop can wake the sleeping consumers — the
// worst measured cell's p99 sleep-to-signal latency must stay within the
// configured bound plus a scheduling slack. The throughput fields compare
// this run's coalesce-sweep tight-loop throughput at the highest K
// against the prior report's (cmd/tmbench fills them; the guard passes
// vacuously without a prior report): bounding wake latency must not cost
// the tight loop the scans coalescing saved.
type LatencyVerdict struct {
	Workload   string `json:"workload"`
	Threads    int    `json:"threads"`
	K          int    `json:"k"` // CoalesceCommits the cells ran with
	MaxDelayNs int64  `json:"max_delay_ns"`
	SlackNs    int64  `json:"slack_ns"`

	// Sleeps pools every cell at the verdict rung; the quantiles are the
	// WORST cell's (max over per-cell quantiles — pooling raw samples
	// would let a fast engine's sleeps dilute a slow engine's tail).
	Sleeps uint64 `json:"sleeps"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
	// WithinBound additionally requires that sleeps were actually timed:
	// a run whose consumers never slept proves nothing about latency.
	WithinBound bool `json:"within_bound"`

	TightloopThroughputPrior float64 `json:"tightloop_throughput_prior,omitempty"`
	TightloopThroughput      float64 `json:"tightloop_throughput,omitempty"`
	ThroughputWithin10Pct    bool    `json:"throughput_within_10pct"`

	// Holds is the headline claim: no waiter sleeps past the age bound
	// (plus slack) while its notifier idles, at no material throughput
	// cost.
	Holds bool `json:"holds"`
}

// ClockVerdict summarizes the commit-clock sweep at 16 goroutines (the
// acceptance rung; the ladder also measures 8 and 32), pooled across the
// STM engines and repetitions. BestMode is the non-global protocol whose
// worse workload-throughput ratio against global is highest — both
// workloads have to clear the bar, so the candidate is picked by its
// weakest showing. TrafficMode is judged separately: it is the
// non-global protocol with the fewest shared clock-word operations per
// commit, because the two claims are won by different protocols on some
// hardware (POF keeps global's uncontended commit fast path while
// Deferred is the one that actually silences the shared word). Improved
// is the headline claim: some non-global mode commits strictly faster
// than the global fetch-and-add clock on BOTH the tight-loop and the
// bounded-buffer workload, and some non-global mode issues strictly
// fewer shared clock-word operations per commit.
type ClockVerdict struct {
	Threads  int      `json:"threads"`
	Modes    []string `json:"modes"`
	BestMode string   `json:"best_mode"`

	TightloopCommitsPerSecGlobal float64 `json:"tightloop_commits_per_sec_global"`
	TightloopCommitsPerSecBest   float64 `json:"tightloop_commits_per_sec_best"`
	TightloopImproved            bool    `json:"tightloop_improved"`

	// The buffer claims hold vacuously (rates zero, bool true) when the
	// buffer cells were filtered out of the sweep by -workloads.
	BufferCommitsPerSecGlobal float64 `json:"buffer_commits_per_sec_global"`
	BufferCommitsPerSecBest   float64 `json:"buffer_commits_per_sec_best"`
	BufferImproved            bool    `json:"buffer_improved"`

	// TrafficMode's clock-word operation rate versus global's; BestMode's
	// own rate is reported alongside for completeness.
	TrafficMode              string  `json:"traffic_mode"`
	ClockOpsPerCommitGlobal  float64 `json:"clock_ops_per_commit_global"`
	ClockOpsPerCommitBest    float64 `json:"clock_ops_per_commit_best"`
	ClockOpsPerCommitTraffic float64 `json:"clock_ops_per_commit_traffic"`
	TrafficReduced           bool    `json:"traffic_reduced"`

	Improved bool `json:"improved"`
}

// Report is the machine-readable result of one sweep (BENCH_PR<N>.json).
type Report struct {
	Schema          string           `json:"schema"`
	Generated       string           `json:"generated"`
	Seed            uint64           `json:"seed"`
	Threads         []int            `json:"threads"`
	Engines         []string         `json:"engines"`
	Mechs           []string         `json:"mechs"`
	Workloads       []string         `json:"workloads"`
	BufferOps       int              `json:"buffer_ops"`
	BufferCap       int              `json:"buffer_cap"`
	Scale           int              `json:"scale"`
	SweepStripes    []int            `json:"sweep_stripes"`
	OrigThreads     []int            `json:"orig_threads,omitempty"`
	OrigPasses      int              `json:"orig_passes,omitempty"`
	AdaptiveThreads []int            `json:"adaptive_threads,omitempty"`
	Points          []Point          `json:"points"`
	StripeSweep     []Point          `json:"stripe_sweep"`
	StripeVerdict   *StripeVerdict   `json:"stripe_verdict,omitempty"`
	OrigSweep       []Point          `json:"orig_sweep,omitempty"`
	OrigVerdict     *OrigVerdict     `json:"orig_verdict,omitempty"`
	AdaptiveSweep   []Point          `json:"adaptive_sweep,omitempty"`
	AdaptiveVerdict *AdaptiveVerdict `json:"adaptive_verdict,omitempty"`
	CoalesceThreads []int            `json:"coalesce_threads,omitempty"`
	CoalesceKs      []int            `json:"coalesce_ks,omitempty"`
	CoalesceSweep   []Point          `json:"coalesce_sweep,omitempty"`
	CoalesceVerdict *CoalesceVerdict `json:"coalesce_verdict,omitempty"`
	LatencyThreads  []int            `json:"latency_threads,omitempty"`
	LatencySweep    []Point          `json:"latency_sweep,omitempty"`
	LatencyVerdict  *LatencyVerdict  `json:"latency_verdict,omitempty"`
	ClockThreads    []int            `json:"clock_threads,omitempty"`
	ClockModes      []string         `json:"clock_modes,omitempty"`
	ClockSweep      []Point          `json:"clock_sweep,omitempty"`
	ClockVerdict    *ClockVerdict    `json:"clock_verdict,omitempty"`
}

// runTimed executes one cell's measured section and returns its elapsed
// wall time in seconds. All cell timing goes through this single helper,
// now itself built on internal/mono's monotonic capture, so a wall-clock
// step (NTP adjustment, suspend/resume) during a cell cannot corrupt the
// rates a committed BENCH report carries. Before it existed, four
// scaffolds hand-rolled their own start/elapsed pairs.
func runTimed(fn func()) float64 {
	return mono.Timed(fn).Seconds()
}

// mechRuns reports whether mechanism m runs on engine e.
func mechRuns(e string, m mech.Mechanism) bool {
	for _, x := range mech.ForEngine(e) {
		if x == m {
			return true
		}
	}
	return false
}

// Run executes the sweep. It fails fast on any workload self-check
// failure (a PARSEC checksum deviating from the sequential reference).
func Run(o Options) (*Report, error) {
	o = o.withDefaults()
	for _, s := range o.SweepStripes {
		if s <= 0 || s&(s-1) != 0 || s > locktable.DefaultSize {
			return nil, fmt.Errorf("perf: stripe count %d must be a power of two in [1, %d]", s, locktable.DefaultSize)
		}
	}
	for _, m := range o.ClockModes {
		if _, err := clock.ParseMode(m); err != nil {
			return nil, fmt.Errorf("perf: %w", err)
		}
	}
	for _, w := range o.Workloads {
		switch {
		case w == "buffer":
		case strings.HasPrefix(w, "parsec/"):
			if _, err := parsecsim.ByName(strings.TrimPrefix(w, "parsec/")); err != nil {
				return nil, fmt.Errorf("perf: %w", err)
			}
		default:
			return nil, fmt.Errorf("perf: unknown workload %q (have %s)", w, strings.Join(Workloads(), ", "))
		}
	}
	rep := &Report{
		Schema:       Schema,
		Generated:    time.Now().UTC().Format(time.RFC3339), //tm:wallclock — report timestamp, not a measurement
		Seed:         o.Seed,
		Threads:      o.Threads,
		Engines:      o.Engines,
		Workloads:    o.Workloads,
		BufferOps:    o.BufferOps,
		BufferCap:    o.BufferCap,
		Scale:        o.Scale,
		SweepStripes: o.SweepStripes,
	}
	for _, m := range o.Mechs {
		rep.Mechs = append(rep.Mechs, string(m))
	}

	type cell struct {
		workload  string
		engine    string
		m         mech.Mechanism
		threads   int
		stripes   int
		sweep     bool
		orig      bool
		unbatched bool
		adaptive  bool
		coal      bool // belongs to the coalesce sweep
		lat       bool // belongs to the wake-latency sweep
		clk       bool // belongs to the commit-clock sweep
		coalesce  int  // Config.CoalesceCommits for the cell
		// clockMode is the Config.ClockMode for the cell ("" = global);
		// clock cells also run with timestamp extension enabled.
		clockMode string
		maxDelay  time.Duration
		// reps repeats the cell (multiplied by Trials): the Retry-Orig
		// ring's scan rate carries heavy scheduling noise per run, and
		// pooled repetitions are what make a 10% comparison meaningful.
		reps int
	}
	var cells []cell
	for _, w := range o.Workloads {
		for _, threads := range o.Threads {
			if !validThreads(w, threads) {
				continue
			}
			if o.Baseline {
				cells = append(cells, cell{workload: w, engine: "none", m: mech.Pthreads, threads: threads})
			}
			for _, e := range o.Engines {
				for _, m := range o.Mechs {
					if m == mech.Pthreads || !mechRuns(e, m) {
						continue
					}
					cells = append(cells, cell{workload: w, engine: e, m: m, threads: threads})
				}
			}
		}
	}
	// Stripe sweep: the bounded buffer under the waitset-indexed
	// mechanisms (Retry and Await register waiters on the stripes of
	// their waitsets; WaitPred is unindexed by construction and TMCondVar
	// bypasses the waiter index entirely).
	maxThreads := 0
	for _, t := range o.Threads {
		if t > maxThreads {
			maxThreads = t
		}
	}
	sweepWorkload := "buffer"
	if maxThreads >= 2 && hasWorkload(o.Workloads, sweepWorkload) {
		for _, stripes := range o.SweepStripes {
			for _, e := range o.Engines {
				for _, m := range []mech.Mechanism{mech.Retry, mech.Await} {
					// reps pools allocation luck: whether two lanes'
					// words share a stripe is decided by the heap layout
					// each run draws, and the adaptive verdict's 10%
					// comparison needs that averaged on both sides.
					cells = append(cells, cell{workload: sweepWorkload, engine: e, m: m, threads: maxThreads, stripes: stripes, sweep: true, reps: 4})
				}
			}
		}
	}
	// Retry-Orig contention sweep: the token ring on the STM engines
	// (Retry-Orig needs orec metadata), at every sweep stripe count, both
	// with the per-commit signal batch and without it. The {fewest
	// stripes, unbatched} corner IS the pre-sharding implementation — one
	// global registry scan per commit, signal-at-claim — so the sweep
	// carries its own baseline.
	if len(o.OrigThreads) > 0 {
		rep.OrigThreads = o.OrigThreads
		rep.OrigPasses = o.OrigPasses
		for _, threads := range o.OrigThreads {
			for _, e := range o.Engines {
				if e != "eager" && e != "lazy" {
					continue
				}
				for _, stripes := range o.SweepStripes {
					for _, unbatched := range []bool{true, false} {
						// The ring cells are cheap (tens of ms) and their
						// scan rate has metastable scheduling regimes;
						// heavy pooling is what makes the verdicts stable.
						cells = append(cells, cell{workload: "origring", engine: e, m: mech.RetryOrig, threads: threads, stripes: stripes, orig: true, unbatched: unbatched, reps: 10})
					}
				}
			}
		}
	}
	// Adaptive-vs-static sweep: the stripe sweep's wakeup-bound buffer
	// cells and the Retry-Orig ring, re-run with the online controller
	// enabled and a deliberately wrong one-stripe start. The static cells
	// above are the baselines, so only the adaptive runs are added here.
	if len(o.AdaptiveThreads) > 0 {
		rep.AdaptiveThreads = o.AdaptiveThreads
		for _, threads := range o.AdaptiveThreads {
			if hasWorkload(o.Workloads, sweepWorkload) && threads >= 2 {
				for _, e := range o.Engines {
					for _, m := range []mech.Mechanism{mech.Retry, mech.Await} {
						cells = append(cells, cell{workload: sweepWorkload, engine: e, m: m, threads: threads, stripes: 1, adaptive: true, reps: 6})
					}
				}
			}
			for _, e := range o.Engines {
				if e != "eager" && e != "lazy" {
					continue
				}
				cells = append(cells, cell{workload: "origring", engine: e, m: mech.RetryOrig, threads: threads, stripes: 1, orig: true, adaptive: true, reps: 10})
			}
		}
	}

	// Cross-commit wakeup coalescing sweep: the tight-loop producer
	// workload at every CoalesceCommits value, plus the blocking workloads
	// (buffer under the waitset-indexed mechanisms, the Retry-Orig ring)
	// at {0, max K} as regression guards. All cells run at the engines'
	// default stripe geometry — coalescing composes with sharding; this
	// sweep isolates the cross-commit axis.
	coalesceMaxK := 0
	for _, k := range o.CoalesceKs {
		if k > coalesceMaxK {
			coalesceMaxK = k
		}
	}
	if len(o.CoalesceThreads) > 0 && coalesceMaxK > 0 {
		rep.CoalesceThreads = o.CoalesceThreads
		rep.CoalesceKs = o.CoalesceKs
		for _, threads := range o.CoalesceThreads {
			if threads < 2 {
				continue // the tight loop needs producer/consumer pairs
			}
			for _, e := range o.Engines {
				for _, k := range o.CoalesceKs {
					cells = append(cells, cell{workload: "tightloop", engine: e, m: mech.WaitPred, threads: threads, coal: true, coalesce: k, reps: 4})
				}
			}
			for _, k := range []int{0, coalesceMaxK} {
				if hasWorkload(o.Workloads, sweepWorkload) {
					for _, e := range o.Engines {
						for _, m := range []mech.Mechanism{mech.Retry, mech.Await} {
							cells = append(cells, cell{workload: sweepWorkload, engine: e, m: m, threads: threads, coal: true, coalesce: k, reps: 4})
						}
					}
				}
				for _, e := range o.Engines {
					if e != "eager" && e != "lazy" {
						continue
					}
					cells = append(cells, cell{workload: "origring", engine: e, m: mech.RetryOrig, threads: threads, orig: true, coal: true, coalesce: k, reps: 10})
				}
			}
		}
	}
	// Wake-latency sweep: the tightloop/idle workload at every
	// LatencyThreads rung × engine, coalescing armed with the age bound.
	// Producers go idle on a plain channel mid-round with wake scans still
	// pending, so the cells are a direct measurement of the idle-owner
	// backstop: without it every one of them deadlocks.
	if len(o.LatencyThreads) > 0 {
		rep.LatencyThreads = o.LatencyThreads
		for _, threads := range o.LatencyThreads {
			if threads < 2 {
				continue // needs producer/consumer pairs
			}
			for _, e := range o.Engines {
				cells = append(cells, cell{workload: "tightloop/idle", engine: e, m: mech.WaitPred, threads: threads, lat: true, coalesce: 4 * o.LatencyBurst, maxDelay: o.LatencyMaxDelay, reps: 3})
			}
		}
	}

	// Commit-clock sweep: the tight-loop producer workload and the
	// bounded buffer (Retry) on the STM engines, at every ClockThreads
	// rung × ClockModes protocol. In the tight loop the lanes' counters
	// sit on distinct orecs, so the commit clock is the one cache line
	// every committer shares — exactly the hot spot the sweep measures;
	// the buffer adds blocking and wake scans around the commit, checking
	// the protocol still wins when the clock is not the whole story. All
	// clock cells run with timestamp extension on (see Options.ClockModes).
	// The verdict is a strict throughput comparison, so the repetitions
	// are interleaved across modes (one cell per rep, modes round-robin)
	// rather than blocked per mode: machine-wide throughput drift during
	// the run then lands on every mode equally instead of biasing
	// whichever mode happened to occupy a slow window.
	if len(o.ClockThreads) > 0 {
		rep.ClockThreads = o.ClockThreads
		rep.ClockModes = o.ClockModes
		for _, threads := range o.ClockThreads {
			if threads < 2 {
				continue // both workloads need producer/consumer pairs
			}
			for _, e := range o.Engines {
				if e != "eager" && e != "lazy" {
					continue // the hardware paths serialize commits elsewhere
				}
				for rep := 0; rep < 5; rep++ {
					for _, mode := range o.ClockModes {
						cells = append(cells, cell{workload: "tightloop", engine: e, m: mech.WaitPred, threads: threads, clk: true, clockMode: mode, reps: 1})
						if hasWorkload(o.Workloads, sweepWorkload) {
							cells = append(cells, cell{workload: sweepWorkload, engine: e, m: mech.Retry, threads: threads, clk: true, clockMode: mode, reps: 1})
						}
					}
				}
			}
		}
	}

	highStripes := 0
	for _, s := range o.SweepStripes {
		if s > highStripes {
			highStripes = s
		}
	}

	total := 0
	for _, c := range cells {
		reps := c.reps
		if reps == 0 {
			reps = 1
		}
		total += reps * o.Trials
	}
	done := 0
	for _, c := range cells {
		reps := c.reps
		if reps == 0 {
			reps = 1
		}
		for trial := 0; trial < reps*o.Trials; trial++ {
			k := harness.Knobs{Stripes: c.stripes, Unbatched: c.unbatched, CoalesceCommits: c.coalesce, CoalesceMaxDelay: c.maxDelay, ClockMode: c.clockMode, TimestampExtension: c.clk}
			if c.adaptive {
				// Start deliberately wrong (one stripe, the old global
				// table) and let the controller roam up to the sweep's
				// best static count.
				k.MinStripes, k.MaxStripes = 1, highStripes
				// The adaptive cells run exactly as long as their static
				// baselines, so the convergence transient must be short:
				// a 16-commit window converges 1 -> 64 within ~100 of
				// the ~10k commits each cell measures.
				k.AdaptWindow = 16
			}
			var p Point
			var err error
			if c.orig {
				passes := o.OrigPasses
				if c.adaptive {
					passes = o.AdaptiveOrigPasses
				}
				p, err = runOrigRing(c.engine, c.threads, k, passes, trial, o)
			} else {
				p, err = runCell(c.workload, c.engine, c.m, c.threads, k, trial, o)
			}
			if err != nil {
				return nil, fmt.Errorf("perf: %s %s/%s t=%d: %w", c.workload, c.engine, c.m, c.threads, err)
			}
			p.Adaptive = c.adaptive
			p.Coalesce = c.coalesce
			p.ClockMode = c.clockMode
			switch {
			case c.clk:
				rep.ClockSweep = append(rep.ClockSweep, p)
			case c.lat:
				rep.LatencySweep = append(rep.LatencySweep, p)
			case c.coal:
				rep.CoalesceSweep = append(rep.CoalesceSweep, p)
			case c.adaptive:
				rep.AdaptiveSweep = append(rep.AdaptiveSweep, p)
			case c.orig:
				rep.OrigSweep = append(rep.OrigSweep, p)
			case c.sweep:
				rep.StripeSweep = append(rep.StripeSweep, p)
			default:
				rep.Points = append(rep.Points, p)
			}
			done++
			if o.Progress != nil {
				o.Progress(done, total, p)
			}
		}
	}
	rep.StripeVerdict = verdict(rep.StripeSweep, sweepWorkload, maxThreads, o.SweepStripes)
	rep.OrigVerdict = origVerdict(rep.OrigSweep, o.SweepStripes)
	rep.AdaptiveVerdict = adaptiveVerdict(rep, o, sweepWorkload, maxThreads, highStripes)
	rep.CoalesceVerdict = coalesceVerdict(rep.CoalesceSweep, sweepWorkload, coalesceMaxK)
	rep.LatencyVerdict = latencyVerdict(rep.LatencySweep, o)
	rep.ClockVerdict = clockVerdict(rep.ClockSweep, o.ClockModes)
	return rep, nil
}

// runOrigRing measures the Retry-Orig contention workload: a ring of
// `threads` workers, each consuming tokens from its own slot and
// producing into its successor's, sleeping via RetryOrig when its slot is
// empty. Tokens seed every threads/4-th slot, so several hand-off chains
// run concurrently and at any moment most workers sleep in the registry.
// Each attempt also reads a window of neighbouring slots, spreading the
// sleeper's orec set over several registry shards and making unrelated
// hand-offs wake it futilely — the storm the sharded registry localizes.
// Token conservation is the workload's self-check.
func runOrigRing(engine string, threads int, k harness.Knobs, passes, trial int, o Options) (Point, error) {
	p := Point{Workload: "origring", Engine: engine, Mech: string(mech.RetryOrig), Threads: threads, Stripes: k.Stripes, Unbatched: k.Unbatched, Trial: trial}
	sys, err := harness.NewSystemKnobs(engine, k)
	if err != nil {
		return Point{}, err
	}
	n := threads
	window := o.OrigWindow
	if window > n {
		window = n
	}
	// Pick ring slots on pairwise-distinct orecs — and, when the table has
	// enough stripes, pairwise-distinct stripes. Where a slot lands in the
	// orec table is a function of its heap address, so without this
	// normalization the measured scan cost would be hostage to allocator
	// luck (two slots hashing into one stripe makes every hand-off commit
	// scan both neighbourhoods); with it, the cell measures the structure
	// the sweep is about. Adaptive cells normalize against the geometry
	// the controller is expected to converge to (the upper bound), so
	// their converged layout matches the best static cell's.
	geomStripes := sys.Table.NumStripes()
	if k.MaxStripes > geomStripes {
		geomStripes = k.MaxStripes
	}
	nv := sys.Table.ViewAt(geomStripes)
	backing := make([]uint64, 4096)
	slots := make([]*uint64, 0, n)
	distinctStripes := nv.NumStripes() >= n
	usedOrec := make(map[uint32]bool)
	usedStripe := make(map[uint32]bool)
	for i := range backing {
		idx := sys.Table.IndexOf(&backing[i])
		if usedOrec[idx] {
			continue
		}
		if distinctStripes && usedStripe[nv.StripeOf(idx)] {
			continue
		}
		usedOrec[idx] = true
		usedStripe[nv.StripeOf(idx)] = true
		slots = append(slots, &backing[i])
		if len(slots) == n {
			break
		}
	}
	if len(slots) < n {
		return Point{}, fmt.Errorf("origring: found only %d of %d distinct-orec ring slots", len(slots), n)
	}
	tokens := uint64(0)
	for i := 0; i < n; i += max(1, n/4) {
		*slots[i] = 1
		tokens++
	}
	var wg sync.WaitGroup
	secs := runTimed(func() {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				thr := sys.NewThread()
				defer thr.Detach()
				next := (i + 1) % n
				for pass := 0; pass < passes; pass++ {
					thr.Atomic(func(tx *tm.Tx) {
						v := tx.Read(slots[i])
						for j := 1; j < window; j++ {
							_ = tx.Read(slots[(i+j)%n])
						}
						if v == 0 {
							core.RetryOrig(tx)
						}
						tx.Write(slots[i], v-1)
						tx.Write(slots[next], tx.Read(slots[next])+1)
					})
				}
			}(i)
		}
		wg.Wait()
	})
	var left uint64
	for _, s := range slots {
		left += *s
	}
	if left != tokens {
		return Point{}, fmt.Errorf("origring: %d tokens left in the ring, want %d (lost or duplicated wakeup)", left, tokens)
	}
	p.Ops = uint64(n) * uint64(passes)
	fill(&p, sys, secs)
	return p, nil
}

// origVerdict aggregates the Retry-Orig sweep at 8 goroutines (or the
// lowest measured rung): {fewest stripes, unbatched} — the pre-sharding
// implementation — versus {most stripes, batched}.
func origVerdict(sweep []Point, stripes []int) *OrigVerdict {
	if len(sweep) == 0 || len(stripes) < 2 {
		return nil
	}
	low, high := stripes[0], stripes[0]
	for _, s := range stripes {
		if s < low {
			low = s
		}
		if s > high {
			high = s
		}
	}
	threads := sweep[0].Threads
	for _, p := range sweep {
		if p.Threads == 8 {
			threads = 8
		}
	}
	agg := func(wantStripes int, wantUnbatched bool) (checks, signals, thru float64) {
		var origChecks, wakeups, commits uint64
		var thruSum float64
		var cells int
		for _, p := range sweep {
			if p.Threads != threads || p.Stripes != wantStripes || p.Unbatched != wantUnbatched {
				continue
			}
			origChecks += p.OrigShardChecks
			wakeups += p.Wakeups
			commits += p.Commits
			thruSum += p.Throughput
			cells++
		}
		if commits > 0 {
			checks = float64(origChecks) / float64(commits)
			signals = float64(wakeups) / float64(commits)
		}
		if cells > 0 {
			thru = thruSum / float64(cells)
		}
		return
	}
	v := &OrigVerdict{
		Workload:  "origring",
		Threads:   threads,
		Baseline:  fmt.Sprintf("%d stripe(s), unbatched", low),
		Candidate: fmt.Sprintf("%d stripes, batched", high),
	}
	v.OrigChecksPerCommitBaseline, v.SignalsPerCommitBaseline, v.ThroughputBaseline = agg(low, true)
	v.OrigChecksPerCommitCandidate, v.SignalsPerCommitCandidate, v.ThroughputCandidate = agg(high, false)
	v.ChecksImproved = v.OrigChecksPerCommitCandidate < v.OrigChecksPerCommitBaseline
	v.SignalsImproved = v.SignalsPerCommitCandidate <= v.SignalsPerCommitBaseline
	v.Improved = v.ChecksImproved && v.SignalsImproved
	return v
}

// adaptiveVerdict compares the adaptive sweep against the best static
// configuration measured by the stripe and Retry-Orig sweeps, at the
// acceptance rung (8 goroutines when measured, else the sweep's rung).
// The adaptive numbers are full-run averages, convergence transient
// included — the controller must not merely reach the right count, it
// must reach it fast enough that the detour stays within 10%.
func adaptiveVerdict(rep *Report, o Options, workload string, staticThreads, highStripes int) *AdaptiveVerdict {
	if len(rep.AdaptiveSweep) == 0 {
		return nil
	}
	threads := rep.AdaptiveSweep[0].Threads
	for _, p := range rep.AdaptiveSweep {
		if p.Threads == 8 {
			threads = 8
		}
	}
	if threads != staticThreads {
		// No comparable static baseline was measured at this rung.
		return nil
	}
	v := &AdaptiveVerdict{Threads: threads, StartStripes: 1, MaxStripes: highStripes}

	// Buffer: wake checks per commit over the wakeup-bound cells (Retry
	// and Await, all engines), static per stripe count vs adaptive.
	bufStatic := func(stripes int) (float64, bool) {
		var checks, commits uint64
		for _, p := range rep.StripeSweep {
			if p.Workload == workload && p.Threads == threads && p.Stripes == stripes {
				checks += p.WakeChecks
				commits += p.Commits
			}
		}
		if commits == 0 {
			return 0, false
		}
		return float64(checks) / float64(commits), true
	}
	bestBuf, haveBuf := 0.0, false
	for _, s := range o.SweepStripes {
		if r, ok := bufStatic(s); ok && (!haveBuf || r < bestBuf) {
			bestBuf, v.BufferBestStaticStripes, haveBuf = r, s, true
		}
	}
	var bufChecks, bufCommits uint64
	for _, p := range rep.AdaptiveSweep {
		if p.Workload == workload && p.Threads == threads {
			bufChecks += p.WakeChecks
			bufCommits += p.Commits
		}
	}
	if haveBuf && bufCommits > 0 {
		v.BufferChecksPerCommitBest = bestBuf
		v.BufferChecksPerCommitAdap = float64(bufChecks) / float64(bufCommits)
		v.BufferWithin10Pct = v.BufferChecksPerCommitAdap <= 1.10*bestBuf
	}

	// Retry-Orig ring: registry checks per commit, static batched cells
	// per stripe count vs adaptive.
	origStatic := func(stripes int) (float64, bool) {
		var checks, commits uint64
		for _, p := range rep.OrigSweep {
			if p.Threads == threads && p.Stripes == stripes && !p.Unbatched {
				checks += p.OrigShardChecks
				commits += p.Commits
			}
		}
		if commits == 0 {
			return 0, false
		}
		return float64(checks) / float64(commits), true
	}
	bestOrig, haveOrig := 0.0, false
	for _, s := range o.SweepStripes {
		if r, ok := origStatic(s); ok && (!haveOrig || r < bestOrig) {
			bestOrig, v.OrigBestStaticStripes, haveOrig = r, s, true
		}
	}
	var origChecks, origCommits uint64
	for _, p := range rep.AdaptiveSweep {
		if p.Workload == "origring" && p.Threads == threads {
			origChecks += p.OrigShardChecks
			origCommits += p.Commits
		}
	}
	if haveOrig && origCommits > 0 {
		v.OrigChecksPerCommitBest = bestOrig
		v.OrigChecksPerCommitAdap = float64(origChecks) / float64(origCommits)
		v.OrigWithin10Pct = v.OrigChecksPerCommitAdap <= 1.10*bestOrig
	}

	v.Converged = (haveBuf && bufCommits > 0 && v.BufferWithin10Pct) &&
		(haveOrig && origCommits > 0 && v.OrigWithin10Pct)
	return v
}

// verdict aggregates the sweep's wakeup-scan work per commit at the low
// and high stripe counts.
func verdict(sweep []Point, workload string, threads int, stripes []int) *StripeVerdict {
	if len(sweep) == 0 || len(stripes) < 2 {
		return nil
	}
	low, high := stripes[0], stripes[0]
	for _, s := range stripes {
		if s < low {
			low = s
		}
		if s > high {
			high = s
		}
	}
	rate := func(want int) float64 {
		var checks, commits uint64
		for _, p := range sweep {
			if p.Workload == workload && p.Threads == threads && p.Stripes == want {
				checks += p.WakeChecks
				commits += p.Commits
			}
		}
		if commits == 0 {
			return 0
		}
		return float64(checks) / float64(commits)
	}
	v := &StripeVerdict{
		Workload:             workload,
		Threads:              threads,
		LowStripes:           low,
		HighStripes:          high,
		WakeupsPerCommitLow:  rate(low),
		WakeupsPerCommitHigh: rate(high),
	}
	v.Improved = v.WakeupsPerCommitHigh < v.WakeupsPerCommitLow
	return v
}

func hasWorkload(ws []string, w string) bool {
	for _, x := range ws {
		if x == w {
			return true
		}
	}
	return false
}

func validThreads(workload string, threads int) bool {
	if !strings.HasPrefix(workload, "parsec/") {
		return true
	}
	b, err := parsecsim.ByName(strings.TrimPrefix(workload, "parsec/"))
	if err != nil {
		return false
	}
	return b.ValidThreads(threads)
}

func runCell(workload, engine string, m mech.Mechanism, threads int, k harness.Knobs, trial int, o Options) (Point, error) {
	if workload == "buffer" {
		return runBuffer(engine, m, threads, k, trial, o)
	}
	if workload == "tightloop" {
		return runTightloop(engine, threads, k, trial, o)
	}
	if workload == "tightloop/idle" {
		return runTightloopIdle(engine, threads, k, trial, o)
	}
	if strings.HasPrefix(workload, "parsec/") {
		return runParsec(strings.TrimPrefix(workload, "parsec/"), engine, m, threads, k, trial, o)
	}
	return Point{}, fmt.Errorf("unknown workload %q", workload)
}

// fill finalizes a point from the (possibly nil, for Pthreads) system's
// counters. Throughput is defined here and only here: ops/second when
// the workload counts operations, otherwise workload runs per second
// (inverse wall time) — the one metric comparable across engines,
// mechanisms, and the Pthreads baseline (which has no commit counters).
func fill(p *Point, sys *tm.System, secs float64) {
	p.Seconds = secs
	if secs > 0 {
		if p.Ops > 0 {
			p.Throughput = float64(p.Ops) / secs
		} else {
			p.Throughput = 1 / secs
		}
	}
	if sys == nil {
		return
	}
	s := &sys.Stats
	p.Commits = s.Commits.Load()
	p.ROCommits = s.ROCommits.Load()
	p.Aborts = s.Aborts.Load()
	p.AbortRate = s.AbortRate()
	p.Deschedules = s.Deschedules.Load()
	p.Wakeups = s.Wakeups.Load()
	p.WakeChecks = s.WakeChecks.Load()
	p.BatchedSignals = s.BatchedSignals.Load()
	p.OrigShardChecks = s.OrigShardChecks.Load()
	p.GenAborts = s.GenAborts.Load()
	p.CoalescedScans = s.CoalescedScans.Load()
	p.ClockAdvances = s.ClockAdvances.Load()
	p.ClockCASRetries = s.ClockCASRetries.Load()
	p.FlushK = s.FlushReasonK.Load()
	p.FlushBlock = s.FlushReasonBlock.Load()
	p.FlushAbort = s.FlushReasonAbort.Load()
	p.FlushRead = s.FlushReasonRead.Load()
	p.FlushAge = s.FlushReasonAge.Load()
	p.FlushTeardown = s.FlushReasonTeardown.Load()
	if p.Resizes = s.StripeResizes.Load(); p.Resizes > 0 {
		p.FinalStripes = sys.Table.NumStripes()
	}
	if p.Commits > 0 {
		p.WakeupsPerCommit = float64(p.WakeChecks) / float64(p.Commits)
		p.SignalsPerCommit = float64(p.Wakeups) / float64(p.Commits)
		p.OrigChecksPerCommit = float64(p.OrigShardChecks) / float64(p.Commits)
		p.ClockOpsPerCommit = float64(p.ClockAdvances+p.ClockCASRetries) / float64(p.Commits)
	}
}

// runBuffer measures the lane-partitioned bounded buffer: goroutine pairs
// (one producer, one consumer) each own an independent small buffer, so
// at higher thread counts the workload contains genuinely disjoint
// producer/consumer systems — the structure whose post-commit wakeups the
// stripe index localizes. A lone goroutine alternates put/get and never
// blocks; an odd straggler alternates on lane 0.
func runBuffer(engine string, m mech.Mechanism, threads int, k harness.Knobs, trial int, o Options) (Point, error) {
	p := Point{Workload: "buffer", Engine: engine, Mech: string(m), Threads: threads, Stripes: k.Stripes, Trial: trial}
	ops := o.BufferOps
	lanes := threads / 2
	if lanes < 1 {
		lanes = 1
	}

	if m == mech.Pthreads {
		bufs := make([]*buffer.LockBuffer, lanes)
		for i := range bufs {
			bufs[i] = buffer.NewLock(o.BufferCap)
		}
		var wg sync.WaitGroup
		secs := runTimed(func() {
			forBufferWorkers(threads, lanes, &wg, func(worker, lane int, produce, consume bool) {
				b := bufs[lane]
				for i := 0; i < ops; i++ {
					if produce {
						b.Put(o.Seed + uint64(worker)<<32 + uint64(i))
					}
					if consume {
						b.Get()
					}
				}
			})
			wg.Wait()
		})
		p.Ops = bufferOpsTotal(threads, lanes, ops)
		fill(&p, nil, secs)
		return p, nil
	}

	sys, err := harness.NewSystemKnobs(engine, k)
	if err != nil {
		return Point{}, err
	}
	bufs := make([]*buffer.TMBuffer, lanes)
	for i := range bufs {
		bufs[i] = buffer.NewTM(o.BufferCap)
	}
	var wg sync.WaitGroup
	secs := runTimed(func() {
		forBufferWorkers(threads, lanes, &wg, func(worker, lane int, produce, consume bool) {
			thr := sys.NewThread()
			defer thr.Detach()
			b := bufs[lane]
			for i := 0; i < ops; i++ {
				if produce {
					b.PutMech(thr, m, o.Seed+uint64(worker)<<32+uint64(i))
				}
				if consume {
					b.GetMech(thr, m)
				}
			}
		})
		wg.Wait()
	})
	p.Ops = bufferOpsTotal(threads, lanes, ops)
	fill(&p, sys, secs)
	return p, nil
}

// runTightloop measures the tight-loop producer workload of the coalesce
// sweep: per lane, a producer commits back-to-back increments of the
// lane's counter — it never blocks, so nothing but the coalescing bounds
// ever interrupts its commit stream — while a consumer sleeps in WaitPred
// until a full batch has accumulated and then claims it. WaitPred waiters
// live on the unindexed list that every writer commit scans, so at
// CoalesceCommits = 0 each producer commit pays one wake check per
// sleeping consumer; coalescing divides that by the flush interval. The
// consumer's own commits exercise the block-bound flush. Self-check:
// every produced unit is consumed (all counters end at zero).
func runTightloop(engine string, threads int, k harness.Knobs, trial int, o Options) (Point, error) {
	p := Point{Workload: "tightloop", Engine: engine, Mech: string(mech.WaitPred), Threads: threads, Stripes: k.Stripes, Trial: trial}
	if threads < 2 {
		return Point{}, fmt.Errorf("tightloop: need at least 2 threads (have %d)", threads)
	}
	sys, err := harness.NewSystemKnobs(engine, k)
	if err != nil {
		return Point{}, err
	}
	lanes := threads / 2
	batch := uint64(o.TightloopBatch)
	ops := uint64(o.TightloopOps)
	if r := ops % batch; r != 0 {
		ops += batch - r // consumers claim whole batches
	}
	counts := make([]uint64, lanes)
	var wg sync.WaitGroup
	secs := runTimed(func() {
		for lane := 0; lane < lanes; lane++ {
			wg.Add(2)
			count := &counts[lane]
			go func() { // producer: the tight loop
				defer wg.Done()
				thr := sys.NewThread()
				defer thr.Detach()
				for i := uint64(0); i < ops; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						tx.Write(count, tx.Read(count)+1)
					})
				}
			}()
			go func() { // consumer: asleep most of the time
				defer wg.Done()
				thr := sys.NewThread()
				defer thr.Detach()
				full := func(tx *tm.Tx, _ []uint64) bool { return tx.Read(count) >= batch }
				for consumed := uint64(0); consumed < ops; consumed += batch {
					thr.Atomic(func(tx *tm.Tx) {
						c := tx.Read(count)
						if c < batch {
							core.WaitPred(tx, full)
						}
						tx.Write(count, c-batch)
					})
				}
			}()
		}
		wg.Wait()
	})
	for lane, c := range counts {
		if c != 0 {
			return Point{}, fmt.Errorf("tightloop: lane %d ends with %d unconsumed units (lost or duplicated wakeup)", lane, c)
		}
	}
	p.Ops = 2 * ops * uint64(lanes)
	fill(&p, sys, secs)
	return p, nil
}

// latencyRecorder collects sleep-to-signal durations through the system's
// WakeLatency hook. Mutex-guarded: consumers on every lane record
// concurrently.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []int64
}

func (r *latencyRecorder) record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, int64(d))
	r.mu.Unlock()
}

// stats returns the sample count and nearest-rank p50/p99/max quantiles.
func (r *latencyRecorder) stats() (n uint64, p50, p99, max int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0, 0, 0, 0
	}
	s := append([]int64(nil), r.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(q float64) int64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return uint64(len(s)), rank(0.50), rank(0.99), s[len(s)-1]
}

// runTightloopIdle measures one wake-latency cell: the tight-loop pair,
// restructured so the producer goes idle with its wake scan still pending
// — the exact shape of the stranding bug the age bound fixes. Per round,
// the producer commits LatencyBurst-1 increments (the consumer reads the
// partial count and sleeps in WaitPred), pauses a moment so the consumer
// is asleep, commits the final increment that makes the predicate true —
// the scan is deferred, CoalesceCommits being four bursts deep — and then
// blocks on a plain Go channel. No attempt-triggered flush bound can fire
// while it idles there (and it must not poll the count transactionally:
// that would trip the read-back flush and measure the wrong mechanism),
// so only the CoalesceMaxDelay backstop can wake the consumer; the timed
// sleep-to-signal latency is the age bound's enforcement latency plus
// scheduling slack. Self-check: every produced unit is consumed.
func runTightloopIdle(engine string, threads int, k harness.Knobs, trial int, o Options) (Point, error) {
	p := Point{Workload: "tightloop/idle", Engine: engine, Mech: string(mech.WaitPred), Threads: threads, MaxDelayNs: int64(k.CoalesceMaxDelay), Trial: trial}
	if threads < 2 {
		return Point{}, fmt.Errorf("tightloop/idle: need at least 2 threads (have %d)", threads)
	}
	if k.CoalesceMaxDelay <= 0 || k.CoalesceCommits <= o.LatencyBurst {
		return Point{}, fmt.Errorf("tightloop/idle: needs CoalesceMaxDelay > 0 and CoalesceCommits > LatencyBurst (the cell deadlocks without the age backstop, by design)")
	}
	sys, err := harness.NewSystemKnobs(engine, k)
	if err != nil {
		return Point{}, err
	}
	rec := &latencyRecorder{}
	sys.WakeLatency = rec.record
	lanes := threads / 2
	burst := uint64(o.LatencyBurst)
	rounds := o.LatencyRounds
	counts := make([]uint64, lanes)
	var wg sync.WaitGroup
	secs := runTimed(func() {
		for lane := 0; lane < lanes; lane++ {
			wg.Add(2)
			count := &counts[lane]
			ready := make(chan struct{})
			consumed := make(chan struct{})
			go func() { // producer: bursts, then idles on a channel
				defer wg.Done()
				thr := sys.NewThread()
				defer thr.Detach()
				inc := func() {
					thr.Atomic(func(tx *tm.Tx) {
						tx.Write(count, tx.Read(count)+1)
					})
				}
				for r := 0; r < rounds; r++ {
					<-ready
					for i := uint64(0); i < burst-1; i++ {
						inc()
					}
					// Let the consumer reach its WaitPred sleep on the
					// partial count before the final increment defers the
					// one wakeup it needs.
					time.Sleep(time.Millisecond)
					inc()
					<-consumed
				}
			}()
			go func() { // consumer: one sleep-and-claim per round
				defer wg.Done()
				thr := sys.NewThread()
				defer thr.Detach()
				full := func(tx *tm.Tx, _ []uint64) bool { return tx.Read(count) >= burst }
				for r := 0; r < rounds; r++ {
					ready <- struct{}{}
					thr.Atomic(func(tx *tm.Tx) {
						c := tx.Read(count)
						if c < burst {
							core.WaitPred(tx, full)
						}
						tx.Write(count, c-burst)
					})
					consumed <- struct{}{}
				}
			}()
		}
		wg.Wait()
	})
	for lane, c := range counts {
		if c != 0 {
			return Point{}, fmt.Errorf("tightloop/idle: lane %d ends with %d unconsumed units (lost or duplicated wakeup)", lane, c)
		}
	}
	p.Ops = burst * uint64(rounds) * uint64(lanes)
	fill(&p, sys, secs)
	p.WakeSleeps, p.WakeLatencyP50Ns, p.WakeLatencyP99Ns, p.WakeLatencyMaxNs = rec.stats()
	return p, nil
}

// latencyVerdict aggregates the wake-latency sweep at 8 goroutines (or
// its highest rung). The quantiles take the worst cell rather than
// pooling samples, and the throughput guard stays vacuously true here —
// cmd/tmbench fills it from the prior report's coalesce verdict and
// recomputes Holds.
func latencyVerdict(sweep []Point, o Options) *LatencyVerdict {
	if len(sweep) == 0 {
		return nil
	}
	threads := 0
	for _, p := range sweep {
		if p.Threads > threads {
			threads = p.Threads
		}
	}
	v := &LatencyVerdict{
		Workload:              "tightloop/idle",
		Threads:               threads,
		K:                     4 * o.LatencyBurst,
		MaxDelayNs:            int64(o.LatencyMaxDelay),
		SlackNs:               int64(o.LatencySlack),
		ThroughputWithin10Pct: true,
	}
	for _, p := range sweep {
		if p.Threads != threads {
			continue
		}
		v.Sleeps += p.WakeSleeps
		if p.WakeLatencyP50Ns > v.P50Ns {
			v.P50Ns = p.WakeLatencyP50Ns
		}
		if p.WakeLatencyP99Ns > v.P99Ns {
			v.P99Ns = p.WakeLatencyP99Ns
		}
		if p.WakeLatencyMaxNs > v.MaxNs {
			v.MaxNs = p.WakeLatencyMaxNs
		}
	}
	v.WithinBound = v.Sleeps > 0 && v.P99Ns <= v.MaxDelayNs+v.SlackNs
	v.Holds = v.WithinBound && v.ThroughputWithin10Pct
	return v
}

// coalesceVerdict aggregates the coalesce sweep at 8 goroutines (or the
// sweep's rung), pooled across engines and mechanisms per workload: the
// tight loop must get cheaper at the highest K, the blocking workloads
// must stay within noise (10%) of their K=0 scan rates.
func coalesceVerdict(sweep []Point, workload string, maxK int) *CoalesceVerdict {
	if len(sweep) == 0 || maxK == 0 {
		return nil
	}
	// Judge at the highest measured rung — the most contended one —
	// matching the "highest K" convention of the knob axis.
	threads := 0
	for _, p := range sweep {
		if p.Threads > threads {
			threads = p.Threads
		}
	}
	type agg struct {
		checks, orig, commits uint64
		thru                  float64
		cells                 int
	}
	pool := func(workload string, k int) agg {
		var a agg
		for _, p := range sweep {
			if p.Workload != workload || p.Threads != threads || p.Coalesce != k {
				continue
			}
			a.checks += p.WakeChecks
			a.orig += p.OrigShardChecks
			a.commits += p.Commits
			a.thru += p.Throughput
			a.cells++
		}
		return a
	}
	rate := func(num, den uint64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	v := &CoalesceVerdict{Threads: threads, K: maxK}

	tOff, tOn := pool("tightloop", 0), pool("tightloop", maxK)
	v.TightloopChecksPerCommitOff = rate(tOff.checks, tOff.commits)
	v.TightloopChecksPerCommitOn = rate(tOn.checks, tOn.commits)
	if tOff.cells > 0 {
		v.TightloopThroughputOff = tOff.thru / float64(tOff.cells)
	}
	if tOn.cells > 0 {
		v.TightloopThroughputOn = tOn.thru / float64(tOn.cells)
	}
	v.TightloopImproved = tOn.commits > 0 && tOff.commits > 0 &&
		v.TightloopChecksPerCommitOn < v.TightloopChecksPerCommitOff

	// A guard whose cells were filtered out of the sweep (-workloads
	// without buffer, -engines without an STM engine) is not applicable,
	// not a regression: it passes vacuously so a narrowed run's tightloop
	// improvement is not reported as "no improvement".
	bOff, bOn := pool(workload, 0), pool(workload, maxK)
	v.BufferChecksPerCommitOff = rate(bOff.checks, bOff.commits)
	v.BufferChecksPerCommitOn = rate(bOn.checks, bOn.commits)
	v.BufferNoRegression = bOn.commits == 0 || bOff.commits == 0 ||
		v.BufferChecksPerCommitOn <= 1.10*v.BufferChecksPerCommitOff

	oOff, oOn := pool("origring", 0), pool("origring", maxK)
	v.OrigChecksPerCommitOff = rate(oOff.orig, oOff.commits)
	v.OrigChecksPerCommitOn = rate(oOn.orig, oOn.commits)
	v.OrigNoRegression = oOn.commits == 0 || oOff.commits == 0 ||
		v.OrigChecksPerCommitOn <= 1.10*v.OrigChecksPerCommitOff

	v.Improved = v.TightloopImproved && v.BufferNoRegression && v.OrigNoRegression
	return v
}

// clockVerdict aggregates the commit-clock sweep at 16 goroutines (the
// acceptance rung; else the sweep's highest). Commits/sec pools every
// cell of a (workload, mode) pair — sum of commits over sum of wall time
// across engines and repetitions — and the clock-word traffic rate pools
// both workloads: the protocol claim is about the shared word, not one
// workload's mix.
func clockVerdict(sweep []Point, modes []string) *ClockVerdict {
	if len(sweep) == 0 {
		return nil
	}
	threads := 0
	for _, p := range sweep {
		if p.Threads > threads {
			threads = p.Threads
		}
	}
	for _, p := range sweep {
		if p.Threads == 16 {
			threads = 16
		}
	}
	// pool returns commits/sec and clock ops/commit for one mode at the
	// verdict rung, restricted to workload when non-empty.
	pool := func(workload, mode string) (commitsPerSec, clockOps float64) {
		var commits, ops uint64
		var secs float64
		for _, p := range sweep {
			if p.Threads != threads || p.ClockMode != mode {
				continue
			}
			if workload != "" && p.Workload != workload {
				continue
			}
			commits += p.Commits
			ops += p.ClockAdvances + p.ClockCASRetries
			secs += p.Seconds
		}
		if secs > 0 {
			commitsPerSec = float64(commits) / secs
		}
		if commits > 0 {
			clockOps = float64(ops) / float64(commits)
		}
		return
	}
	// ratio treats an unmeasured pair (both sides zero — the workload was
	// filtered out of the sweep) as neutral rather than as a loss.
	ratio := func(x, base float64) float64 {
		if base <= 0 {
			return 1
		}
		return x / base
	}
	v := &ClockVerdict{Threads: threads, Modes: modes}
	v.TightloopCommitsPerSecGlobal, _ = pool("tightloop", string(clock.Global))
	v.BufferCommitsPerSecGlobal, _ = pool("buffer", string(clock.Global))
	_, v.ClockOpsPerCommitGlobal = pool("", string(clock.Global))
	bestScore := 0.0
	for _, m := range modes {
		if m == string(clock.Global) {
			continue
		}
		t, _ := pool("tightloop", m)
		b, _ := pool("buffer", m)
		if t == 0 && b == 0 {
			continue // mode not measured at this rung
		}
		// Judge a candidate by its weaker workload: both must beat global.
		score := math.Min(ratio(t, v.TightloopCommitsPerSecGlobal), ratio(b, v.BufferCommitsPerSecGlobal))
		if v.BestMode == "" || score > bestScore {
			v.BestMode, bestScore = m, score
		}
	}
	if v.BestMode == "" {
		return v // only global measured; nothing to compare
	}
	v.TightloopCommitsPerSecBest, _ = pool("tightloop", v.BestMode)
	v.BufferCommitsPerSecBest, _ = pool("buffer", v.BestMode)
	_, v.ClockOpsPerCommitBest = pool("", v.BestMode)
	for _, m := range modes {
		if m == string(clock.Global) {
			continue
		}
		t, ops := pool("", m)
		if t == 0 {
			continue // mode not measured at this rung
		}
		if v.TrafficMode == "" || ops < v.ClockOpsPerCommitTraffic {
			v.TrafficMode, v.ClockOpsPerCommitTraffic = m, ops
		}
	}
	v.TightloopImproved = v.TightloopCommitsPerSecGlobal > 0 &&
		v.TightloopCommitsPerSecBest > v.TightloopCommitsPerSecGlobal
	v.BufferImproved = v.BufferCommitsPerSecGlobal == 0 && v.BufferCommitsPerSecBest == 0 ||
		v.BufferCommitsPerSecBest > v.BufferCommitsPerSecGlobal
	v.TrafficReduced = v.ClockOpsPerCommitTraffic < v.ClockOpsPerCommitGlobal
	v.Improved = v.TightloopImproved && v.BufferImproved && v.TrafficReduced
	return v
}

// forBufferWorkers launches the worker topology: lanes producer/consumer
// pairs plus, when threads is odd (including 1), one alternator that both
// produces and consumes on lane 0 and therefore never deadlocks.
func forBufferWorkers(threads, lanes int, wg *sync.WaitGroup, body func(worker, lane int, produce, consume bool)) {
	spawn := func(worker, lane int, produce, consume bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(worker, lane, produce, consume)
		}()
	}
	if threads == 1 {
		spawn(0, 0, true, true)
		return
	}
	for l := 0; l < lanes; l++ {
		spawn(l, l, true, false)
		spawn(lanes+l, l, false, true)
	}
	if threads%2 == 1 {
		spawn(2*lanes, 0, true, true)
	}
}

func bufferOpsTotal(threads, lanes, ops int) uint64 {
	if threads == 1 {
		return uint64(2 * ops)
	}
	total := uint64(2*lanes) * uint64(ops)
	if threads%2 == 1 {
		total += uint64(2 * ops)
	}
	return total
}

// refMu guards the per-(benchmark, scale) reference checksum cache.
var refMu sync.Mutex
var refCache = map[string]uint64{}

func referenceFor(b *parsecsim.Benchmark, scale int) uint64 {
	key := fmt.Sprintf("%s/%d", b.Name, scale)
	refMu.Lock()
	defer refMu.Unlock()
	if v, ok := refCache[key]; ok {
		return v
	}
	v := b.Reference(scale)
	refCache[key] = v
	return v
}

// runParsec measures one PARSEC concurrency skeleton and verifies its
// checksum against the sequential reference.
func runParsec(name, engine string, m mech.Mechanism, threads int, knobs harness.Knobs, trial int, o Options) (Point, error) {
	b, err := parsecsim.ByName(name)
	if err != nil {
		return Point{}, err
	}
	p := Point{Workload: "parsec/" + name, Engine: engine, Mech: string(m), Threads: threads, Stripes: knobs.Stripes, Trial: trial}
	k := &parsecsim.Kit{Mech: m}
	var sys *tm.System
	if m != mech.Pthreads {
		sys, err = harness.NewSystemKnobs(engine, knobs)
		if err != nil {
			return Point{}, err
		}
		k.Sys = sys
	}
	want := referenceFor(b, o.Scale)
	var cs uint64
	secs := runTimed(func() { cs = b.Run(k, threads, o.Scale) })
	if cs != want {
		return Point{}, fmt.Errorf("checksum %x deviates from sequential reference %x", cs, want)
	}
	p.Checksum = cs
	fill(&p, sys, secs)
	return p, nil
}
