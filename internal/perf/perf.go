// Package perf is the seeded benchmark pipeline behind BENCH_PR2.json:
// a sweep driver that runs every TM engine × condition-synchronization
// mechanism over the repository's workloads (the lane-partitioned bounded
// buffer and the eight PARSEC concurrency skeletons) across a ladder of
// goroutine counts, from a fixed seed, and emits one machine-readable
// report per invocation. The report is the performance trajectory later
// PRs diff against: throughput, abort rate, and — the quantity the
// sharded orec table exists to shrink — wakeup-scan work per commit.
//
// Every run also self-checks: PARSEC checksums are diffed against the
// sequential reference, so a benchmark that silently computes the wrong
// thing fails instead of reporting a meaningless number.
package perf

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tmsync/internal/buffer"
	"tmsync/internal/harness"
	"tmsync/internal/locktable"
	"tmsync/internal/mech"
	"tmsync/internal/parsecsim"
	"tmsync/internal/tm"
)

// Schema identifies the report layout; bump on incompatible change.
const Schema = "tmsync-bench/1"

// Options parameterizes one sweep. Zero values select defaults.
type Options struct {
	// Seed feeds the produced value streams; recorded in the report so a
	// run can be reproduced exactly.
	Seed uint64
	// Threads is the goroutine-count ladder (default 1, 2, 4, 8).
	Threads []int
	// Engines restricts the engine axis (default: all four).
	Engines []string
	// Mechs restricts the mechanism axis (default: all TM mechanisms;
	// the Pthreads baseline is always measured once per workload cell).
	Mechs []mech.Mechanism
	// Workloads restricts the workload axis (default: Workloads()).
	Workloads []string
	// BufferOps is the number of operations each bounded-buffer worker
	// performs (default 2000).
	BufferOps int
	// BufferCap is the per-lane buffer capacity (default 4; small, so
	// workers block often and condition synchronization is exercised).
	BufferCap int
	// Scale is the PARSEC workload scale (default 2).
	Scale int
	// Trials repeats every cell (default 1); each trial is one point.
	Trials int
	// SweepStripes is the stripe-count axis of the bounded-buffer stripe
	// sweep (default {1, 64}: the global table versus the sharded one).
	SweepStripes []int
	// Baseline includes the Pthreads lock+condvar baseline per workload.
	Baseline bool
	// Progress, when set, receives one call per completed point.
	Progress func(done, total int, p Point)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8}
	}
	if len(o.Engines) == 0 {
		o.Engines = harness.Engines
	}
	if len(o.Mechs) == 0 {
		o.Mechs = mech.TM
	}
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads()
	}
	if o.BufferOps == 0 {
		o.BufferOps = 2000
	}
	if o.BufferCap == 0 {
		o.BufferCap = 4
	}
	if o.Scale == 0 {
		o.Scale = 2
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	if len(o.SweepStripes) == 0 {
		o.SweepStripes = []int{1, 64}
	}
	return o
}

// Workloads lists every workload name: the bounded buffer plus the eight
// PARSEC skeletons.
func Workloads() []string {
	out := []string{"buffer"}
	for i := range parsecsim.Benchmarks {
		out = append(out, "parsec/"+parsecsim.Benchmarks[i].Name)
	}
	return out
}

// Point is one measured cell: workload × engine × mechanism × goroutine
// count (× stripe count, for the stripe sweep).
type Point struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"` // "none" for the Pthreads baseline
	Mech     string `json:"mech"`
	Threads  int    `json:"threads"`
	// Stripes is the orec-table stripe count (0 = engine default).
	Stripes int `json:"stripes,omitempty"`
	Trial   int `json:"trial"`

	Seconds float64 `json:"seconds"`
	// Ops counts application-level operations where the workload defines
	// them (bounded buffer: puts+gets); 0 for checksum workloads.
	Ops uint64 `json:"ops,omitempty"`
	// Throughput is Ops/Seconds when Ops is known (buffer); for checksum
	// workloads it is workload runs per second (inverse wall time), which
	// stays comparable across engines, mechanisms, and the Pthreads
	// baseline.
	Throughput float64 `json:"throughput_per_sec"`

	Commits     uint64  `json:"commits"`
	ROCommits   uint64  `json:"ro_commits"`
	Aborts      uint64  `json:"aborts"`
	AbortRate   float64 `json:"abort_rate"`
	Deschedules uint64  `json:"deschedules"`
	// Wakeups counts semaphore wakeups delivered to sleeping waiters.
	Wakeups uint64 `json:"wakeups"`
	// WakeChecks counts sleeping waiters visited by post-commit wakeup
	// scans — the O(waiters)-versus-O(write set) scan work the stripe
	// index eliminates.
	WakeChecks uint64 `json:"wake_checks"`
	// WakeupsPerCommit is WakeChecks per writer commit: the wakeup-scan
	// cost a committing writer pays.
	WakeupsPerCommit float64 `json:"wakeups_per_commit"`
	// SignalsPerCommit is delivered wakeups per writer commit.
	SignalsPerCommit float64 `json:"signals_per_commit"`
	// Checksum is the workload checksum (PARSEC kernels), verified
	// against the sequential reference before the point is recorded.
	Checksum uint64 `json:"checksum,omitempty"`
}

// StripeVerdict summarizes the stripe sweep at the highest goroutine
// count: aggregate wakeup-scan work per commit under the fewest versus the
// most stripes. Improved is the PR's headline claim — sharding makes the
// post-commit wakeup cheaper.
type StripeVerdict struct {
	Workload             string  `json:"workload"`
	Threads              int     `json:"threads"`
	LowStripes           int     `json:"low_stripes"`
	HighStripes          int     `json:"high_stripes"`
	WakeupsPerCommitLow  float64 `json:"wakeups_per_commit_low_stripes"`
	WakeupsPerCommitHigh float64 `json:"wakeups_per_commit_high_stripes"`
	Improved             bool    `json:"improved"`
}

// Report is the machine-readable result of one sweep (BENCH_PR2.json).
type Report struct {
	Schema        string         `json:"schema"`
	Generated     string         `json:"generated"`
	Seed          uint64         `json:"seed"`
	Threads       []int          `json:"threads"`
	Engines       []string       `json:"engines"`
	Mechs         []string       `json:"mechs"`
	Workloads     []string       `json:"workloads"`
	BufferOps     int            `json:"buffer_ops"`
	BufferCap     int            `json:"buffer_cap"`
	Scale         int            `json:"scale"`
	SweepStripes  []int          `json:"sweep_stripes"`
	Points        []Point        `json:"points"`
	StripeSweep   []Point        `json:"stripe_sweep"`
	StripeVerdict *StripeVerdict `json:"stripe_verdict,omitempty"`
}

// mechRuns reports whether mechanism m runs on engine e.
func mechRuns(e string, m mech.Mechanism) bool {
	for _, x := range mech.ForEngine(e) {
		if x == m {
			return true
		}
	}
	return false
}

// Run executes the sweep. It fails fast on any workload self-check
// failure (a PARSEC checksum deviating from the sequential reference).
func Run(o Options) (*Report, error) {
	o = o.withDefaults()
	for _, s := range o.SweepStripes {
		if s <= 0 || s&(s-1) != 0 || s > locktable.DefaultSize {
			return nil, fmt.Errorf("perf: stripe count %d must be a power of two in [1, %d]", s, locktable.DefaultSize)
		}
	}
	for _, w := range o.Workloads {
		switch {
		case w == "buffer":
		case strings.HasPrefix(w, "parsec/"):
			if _, err := parsecsim.ByName(strings.TrimPrefix(w, "parsec/")); err != nil {
				return nil, fmt.Errorf("perf: %w", err)
			}
		default:
			return nil, fmt.Errorf("perf: unknown workload %q (have %s)", w, strings.Join(Workloads(), ", "))
		}
	}
	rep := &Report{
		Schema:       Schema,
		Generated:    time.Now().UTC().Format(time.RFC3339),
		Seed:         o.Seed,
		Threads:      o.Threads,
		Engines:      o.Engines,
		Workloads:    o.Workloads,
		BufferOps:    o.BufferOps,
		BufferCap:    o.BufferCap,
		Scale:        o.Scale,
		SweepStripes: o.SweepStripes,
	}
	for _, m := range o.Mechs {
		rep.Mechs = append(rep.Mechs, string(m))
	}

	type cell struct {
		workload string
		engine   string
		m        mech.Mechanism
		threads  int
		stripes  int
		sweep    bool
	}
	var cells []cell
	for _, w := range o.Workloads {
		for _, threads := range o.Threads {
			if !validThreads(w, threads) {
				continue
			}
			if o.Baseline {
				cells = append(cells, cell{workload: w, engine: "none", m: mech.Pthreads, threads: threads})
			}
			for _, e := range o.Engines {
				for _, m := range o.Mechs {
					if m == mech.Pthreads || !mechRuns(e, m) {
						continue
					}
					cells = append(cells, cell{workload: w, engine: e, m: m, threads: threads})
				}
			}
		}
	}
	// Stripe sweep: the bounded buffer under the waitset-indexed
	// mechanisms (Retry and Await register waiters on the stripes of
	// their waitsets; WaitPred is unindexed by construction and TMCondVar
	// bypasses the waiter index entirely).
	maxThreads := 0
	for _, t := range o.Threads {
		if t > maxThreads {
			maxThreads = t
		}
	}
	sweepWorkload := "buffer"
	if maxThreads >= 2 && hasWorkload(o.Workloads, sweepWorkload) {
		for _, stripes := range o.SweepStripes {
			for _, e := range o.Engines {
				for _, m := range []mech.Mechanism{mech.Retry, mech.Await} {
					cells = append(cells, cell{workload: sweepWorkload, engine: e, m: m, threads: maxThreads, stripes: stripes, sweep: true})
				}
			}
		}
	}

	total := len(cells) * o.Trials
	done := 0
	for _, c := range cells {
		for trial := 0; trial < o.Trials; trial++ {
			p, err := runCell(c.workload, c.engine, c.m, c.threads, c.stripes, trial, o)
			if err != nil {
				return nil, fmt.Errorf("perf: %s %s/%s t=%d: %w", c.workload, c.engine, c.m, c.threads, err)
			}
			if c.sweep {
				rep.StripeSweep = append(rep.StripeSweep, p)
			} else {
				rep.Points = append(rep.Points, p)
			}
			done++
			if o.Progress != nil {
				o.Progress(done, total, p)
			}
		}
	}
	rep.StripeVerdict = verdict(rep.StripeSweep, sweepWorkload, maxThreads, o.SweepStripes)
	return rep, nil
}

// verdict aggregates the sweep's wakeup-scan work per commit at the low
// and high stripe counts.
func verdict(sweep []Point, workload string, threads int, stripes []int) *StripeVerdict {
	if len(sweep) == 0 || len(stripes) < 2 {
		return nil
	}
	low, high := stripes[0], stripes[0]
	for _, s := range stripes {
		if s < low {
			low = s
		}
		if s > high {
			high = s
		}
	}
	rate := func(want int) float64 {
		var checks, commits uint64
		for _, p := range sweep {
			if p.Workload == workload && p.Threads == threads && p.Stripes == want {
				checks += p.WakeChecks
				commits += p.Commits
			}
		}
		if commits == 0 {
			return 0
		}
		return float64(checks) / float64(commits)
	}
	v := &StripeVerdict{
		Workload:             workload,
		Threads:              threads,
		LowStripes:           low,
		HighStripes:          high,
		WakeupsPerCommitLow:  rate(low),
		WakeupsPerCommitHigh: rate(high),
	}
	v.Improved = v.WakeupsPerCommitHigh < v.WakeupsPerCommitLow
	return v
}

func hasWorkload(ws []string, w string) bool {
	for _, x := range ws {
		if x == w {
			return true
		}
	}
	return false
}

func validThreads(workload string, threads int) bool {
	if !strings.HasPrefix(workload, "parsec/") {
		return true
	}
	b, err := parsecsim.ByName(strings.TrimPrefix(workload, "parsec/"))
	if err != nil {
		return false
	}
	return b.ValidThreads(threads)
}

func runCell(workload, engine string, m mech.Mechanism, threads, stripes, trial int, o Options) (Point, error) {
	if workload == "buffer" {
		return runBuffer(engine, m, threads, stripes, trial, o)
	}
	if strings.HasPrefix(workload, "parsec/") {
		return runParsec(strings.TrimPrefix(workload, "parsec/"), engine, m, threads, stripes, trial, o)
	}
	return Point{}, fmt.Errorf("unknown workload %q", workload)
}

// fill finalizes a point from the (possibly nil, for Pthreads) system's
// counters. Throughput is defined here and only here: ops/second when
// the workload counts operations, otherwise workload runs per second
// (inverse wall time) — the one metric comparable across engines,
// mechanisms, and the Pthreads baseline (which has no commit counters).
func fill(p *Point, sys *tm.System, secs float64) {
	p.Seconds = secs
	if secs > 0 {
		if p.Ops > 0 {
			p.Throughput = float64(p.Ops) / secs
		} else {
			p.Throughput = 1 / secs
		}
	}
	if sys == nil {
		return
	}
	s := &sys.Stats
	p.Commits = s.Commits.Load()
	p.ROCommits = s.ROCommits.Load()
	p.Aborts = s.Aborts.Load()
	p.AbortRate = s.AbortRate()
	p.Deschedules = s.Deschedules.Load()
	p.Wakeups = s.Wakeups.Load()
	p.WakeChecks = s.WakeChecks.Load()
	if p.Commits > 0 {
		p.WakeupsPerCommit = float64(p.WakeChecks) / float64(p.Commits)
		p.SignalsPerCommit = float64(p.Wakeups) / float64(p.Commits)
	}
}

// runBuffer measures the lane-partitioned bounded buffer: goroutine pairs
// (one producer, one consumer) each own an independent small buffer, so
// at higher thread counts the workload contains genuinely disjoint
// producer/consumer systems — the structure whose post-commit wakeups the
// stripe index localizes. A lone goroutine alternates put/get and never
// blocks; an odd straggler alternates on lane 0.
func runBuffer(engine string, m mech.Mechanism, threads, stripes, trial int, o Options) (Point, error) {
	p := Point{Workload: "buffer", Engine: engine, Mech: string(m), Threads: threads, Stripes: stripes, Trial: trial}
	ops := o.BufferOps
	lanes := threads / 2
	if lanes < 1 {
		lanes = 1
	}

	if m == mech.Pthreads {
		bufs := make([]*buffer.LockBuffer, lanes)
		for i := range bufs {
			bufs[i] = buffer.NewLock(o.BufferCap)
		}
		var wg sync.WaitGroup
		start := time.Now()
		forBufferWorkers(threads, lanes, &wg, func(worker, lane int, produce, consume bool) {
			b := bufs[lane]
			for i := 0; i < ops; i++ {
				if produce {
					b.Put(o.Seed + uint64(worker)<<32 + uint64(i))
				}
				if consume {
					b.Get()
				}
			}
		})
		wg.Wait()
		p.Ops = bufferOpsTotal(threads, lanes, ops)
		fill(&p, nil, time.Since(start).Seconds())
		return p, nil
	}

	sys, err := harness.NewSystemKnobs(engine, harness.Knobs{Stripes: stripes})
	if err != nil {
		return Point{}, err
	}
	bufs := make([]*buffer.TMBuffer, lanes)
	for i := range bufs {
		bufs[i] = buffer.NewTM(o.BufferCap)
	}
	var wg sync.WaitGroup
	start := time.Now()
	forBufferWorkers(threads, lanes, &wg, func(worker, lane int, produce, consume bool) {
		thr := sys.NewThread()
		b := bufs[lane]
		for i := 0; i < ops; i++ {
			if produce {
				b.PutMech(thr, m, o.Seed+uint64(worker)<<32+uint64(i))
			}
			if consume {
				b.GetMech(thr, m)
			}
		}
	})
	wg.Wait()
	p.Ops = bufferOpsTotal(threads, lanes, ops)
	fill(&p, sys, time.Since(start).Seconds())
	return p, nil
}

// forBufferWorkers launches the worker topology: lanes producer/consumer
// pairs plus, when threads is odd (including 1), one alternator that both
// produces and consumes on lane 0 and therefore never deadlocks.
func forBufferWorkers(threads, lanes int, wg *sync.WaitGroup, body func(worker, lane int, produce, consume bool)) {
	spawn := func(worker, lane int, produce, consume bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(worker, lane, produce, consume)
		}()
	}
	if threads == 1 {
		spawn(0, 0, true, true)
		return
	}
	for l := 0; l < lanes; l++ {
		spawn(l, l, true, false)
		spawn(lanes+l, l, false, true)
	}
	if threads%2 == 1 {
		spawn(2*lanes, 0, true, true)
	}
}

func bufferOpsTotal(threads, lanes, ops int) uint64 {
	if threads == 1 {
		return uint64(2 * ops)
	}
	total := uint64(2*lanes) * uint64(ops)
	if threads%2 == 1 {
		total += uint64(2 * ops)
	}
	return total
}

// refMu guards the per-(benchmark, scale) reference checksum cache.
var refMu sync.Mutex
var refCache = map[string]uint64{}

func referenceFor(b *parsecsim.Benchmark, scale int) uint64 {
	key := fmt.Sprintf("%s/%d", b.Name, scale)
	refMu.Lock()
	defer refMu.Unlock()
	if v, ok := refCache[key]; ok {
		return v
	}
	v := b.Reference(scale)
	refCache[key] = v
	return v
}

// runParsec measures one PARSEC concurrency skeleton and verifies its
// checksum against the sequential reference.
func runParsec(name, engine string, m mech.Mechanism, threads, stripes, trial int, o Options) (Point, error) {
	b, err := parsecsim.ByName(name)
	if err != nil {
		return Point{}, err
	}
	p := Point{Workload: "parsec/" + name, Engine: engine, Mech: string(m), Threads: threads, Stripes: stripes, Trial: trial}
	k := &parsecsim.Kit{Mech: m}
	var sys *tm.System
	if m != mech.Pthreads {
		sys, err = harness.NewSystemKnobs(engine, harness.Knobs{Stripes: stripes})
		if err != nil {
			return Point{}, err
		}
		k.Sys = sys
	}
	want := referenceFor(b, o.Scale)
	start := time.Now()
	cs := b.Run(k, threads, o.Scale)
	secs := time.Since(start).Seconds()
	if cs != want {
		return Point{}, fmt.Errorf("checksum %x deviates from sequential reference %x", cs, want)
	}
	p.Checksum = cs
	fill(&p, sys, secs)
	return p, nil
}
