package core_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmsync/internal/mono"

	"tmsync/internal/core"
	"tmsync/internal/htm"
	"tmsync/internal/hybrid"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

func newSys(kind string) (*tm.System, *core.CondSync) {
	var sys *tm.System
	switch kind {
	case "eager":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, eager.New)
	case "lazy":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, lazy.New)
	case "htm":
		sys = tm.NewSystem(tm.Config{}, htm.New)
	case "hybrid":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, hybrid.New)
	default:
		panic(kind)
	}
	cs := core.Enable(sys)
	return sys, cs
}

var allEngines = []string{"eager", "lazy", "htm", "hybrid"}
var stmEngines = []string{"eager", "lazy"}

func forEach(t *testing.T, kinds []string, fn func(t *testing.T, sys *tm.System, cs *core.CondSync)) {
	t.Helper()
	for _, k := range kinds {
		t.Run(k, func(t *testing.T) {
			sys, cs := newSys(k)
			fn(t, sys, cs)
		})
	}
}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	start := mono.Now()
	for !cond() {
		if start.Elapsed() > 5*time.Second {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRetryBlocksUntilWrite(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag, out uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				v := tx.Read(&flag)
				if v == 0 {
					core.Retry(tx)
				}
				out = v
			})
			close(done)
		}()
		// The waiter must publish itself and sleep, not spin or finish.
		waitCond(t, "waiter to publish", func() bool { return cs.WaitingLen() == 1 })
		select {
		case <-done:
			t.Fatal("waiter completed with flag == 0")
		default:
		}
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 42) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke after the write")
		}
		if out != 42 {
			t.Fatalf("out = %d, want 42", out)
		}
		if cs.WaitingLen() != 0 {
			t.Fatalf("waiter list not drained: %d", cs.WaitingLen())
		}
	})
}

func TestRetrySilentStoreDoesNotWake(t *testing.T) {
	// Value-based validation: a silent store (same value) must not wake a
	// Retry waiter — one of the paper's advantages over lock-based retry.
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag uint64 // starts 0
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&flag) == 0 {
					core.Retry(tx)
				}
			})
			close(done)
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 0) }) // silent store
		select {
		case <-done:
			t.Fatal("silent store woke the waiter through to completion")
		case <-time.After(100 * time.Millisecond):
		}
		if cs.WaitingLen() != 1 {
			t.Fatal("waiter should still be (or again be) published")
		}
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("real store did not wake the waiter")
		}
	})
}

func TestAwaitOnlyNamedAddresses(t *testing.T) {
	// An Await waiter names &a; writes to unrelated b must not complete
	// it, writes to a must.
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var a, b uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&a) == 0 {
					core.Await(tx, &a)
				}
			})
			close(done)
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
		writer := sys.NewThread()
		for i := 0; i < 10; i++ {
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&b, uint64(i)+1) })
		}
		select {
		case <-done:
			t.Fatal("write to unrelated address completed the Await")
		case <-time.After(100 * time.Millisecond):
		}
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&a, 9) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("write to awaited address did not wake")
		}
	})
}

func TestAwaitSeesPreTransactionValues(t *testing.T) {
	// The waitset must hold committed values even when the transaction
	// wrote the awaited address before calling Await (read-after-write
	// must not put speculative values in the waitset — §2.2.6).
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var gate, x uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				_ = tx.Read(&x)
				tx.Write(&x, 777) // speculative write, will be undone
				if tx.Read(&gate) == 0 {
					core.Await(tx, &x)
				}
			})
			close(done)
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
		// x in memory is 0 (the speculative 777 was rolled back). A writer
		// storing 0 is silent; storing nonzero wakes.
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&x, 0) })
		select {
		case <-done:
			t.Fatal("silent store woke Await (waitset held speculative value?)")
		case <-time.After(100 * time.Millisecond):
		}
		// Open the gate so the retry completes, then touch x for real.
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&gate, 1) })
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&x, 5) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never completed")
		}
	})
}

func TestWaitPredWakesOnlyWhenPredicateHolds(t *testing.T) {
	// WaitPred avoids futile wakeups: writes that do not establish the
	// predicate leave the waiter asleep even though the address changed.
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var level uint64
		atLeast5 := func(tx *tm.Tx, _ []uint64) bool { return tx.Read(&level) >= 5 }
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&level) < 5 {
					core.WaitPred(tx, atLeast5)
				}
			})
			close(done)
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
		writer := sys.NewThread()
		for v := uint64(1); v <= 4; v++ {
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&level, v) })
		}
		select {
		case <-done:
			t.Fatal("woke although the predicate does not hold")
		case <-time.After(100 * time.Millisecond):
		}
		if cs.WaitingLen() != 1 {
			t.Fatal("waiter should still be published")
		}
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&level, 5) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("predicate-establishing write did not wake")
		}
	})
}

func TestWaitPredArgsMarshalled(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var x uint64
		equals := func(tx *tm.Tx, args []uint64) bool { return tx.Read(&x) == args[0] }
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&x) != 33 {
					core.WaitPred(tx, equals, 33)
				}
			})
			close(done)
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&x, 32) })
		select {
		case <-done:
			t.Fatal("woke on wrong value")
		case <-time.After(50 * time.Millisecond):
		}
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&x, 33) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("never woke on matching value")
		}
	})
}

func TestRetryNoLostWakeupRace(t *testing.T) {
	// Hammer the publish/double-check/sleep window: a writer that commits
	// immediately after the waiter's failed check must always wake it.
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		const rounds = 200
		var token uint64
		waiterThr := sys.NewThread()
		writerThr := sys.NewThread()
		for i := 0; i < rounds; i++ {
			done := make(chan struct{})
			go func() {
				waiterThr.Atomic(func(tx *tm.Tx) {
					if tx.Read(&token) == 0 {
						core.Retry(tx)
					}
					tx.Write(&token, 0) // consume
				})
				close(done)
			}()
			writerThr.Atomic(func(tx *tm.Tx) { tx.Write(&token, 1) })
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d: lost wakeup", i)
			}
		}
	})
}

func TestRetryOrigBlocksAndWakes(t *testing.T) {
	forEach(t, stmEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&flag) == 0 {
					core.RetryOrig(tx)
				}
			})
			close(done)
		}()
		waitCond(t, "deschedule", func() bool { return sys.Stats.Deschedules.Load() >= 1 })
		select {
		case <-done:
			t.Fatal("completed while flag == 0")
		default:
		}
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("orig retry never woke")
		}
	})
}

func TestRetryOrigWakesOnSilentStore(t *testing.T) {
	// The documented contrast with value-based Retry: the original
	// mechanism intersects lock metadata, so a silent store *does* wake
	// the sleeper (futile wakeup); the re-executed transaction then
	// sleeps again and overall progress still requires a real change.
	forEach(t, stmEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&flag) == 0 {
					core.RetryOrig(tx)
				}
			})
			close(done)
		}()
		waitCond(t, "first sleep", func() bool { return sys.Stats.Deschedules.Load() >= 1 })
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 0) }) // silent store
		waitCond(t, "futile wakeup and re-sleep", func() bool {
			return sys.Stats.Wakeups.Load() >= 1 && sys.Stats.Deschedules.Load() >= 2
		})
		select {
		case <-done:
			t.Fatal("silent store let the transaction complete")
		default:
		}
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 3) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("real store never woke orig retry")
		}
	})
}

func TestManyWaitersBroadcastSemantics(t *testing.T) {
	// Our mechanisms "essentially broadcast" (§2.4.1): after one
	// production every consumer whose predicate holds is woken; exactly
	// one succeeds per element, the rest re-sleep — but with enough
	// elements all waiters finish.
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		const waiters = 6
		var pool uint64
		var wg sync.WaitGroup
		var got atomic.Uint64
		for w := 0; w < waiters; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				thr.Atomic(func(tx *tm.Tx) {
					v := tx.Read(&pool)
					if v == 0 {
						core.Retry(tx)
					}
					tx.Write(&pool, v-1)
				})
				got.Add(1)
			}()
		}
		waitCond(t, "all waiters asleep", func() bool { return cs.WaitingLen() == waiters })
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&pool, waiters) })
		ch := make(chan struct{})
		go func() { wg.Wait(); close(ch) }()
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d waiters completed", got.Load(), waiters)
		}
		if pool != 0 {
			t.Fatalf("pool = %d, want 0", pool)
		}
	})
}

func TestDeschedulePreservesAllocationsUntilWake(t *testing.T) {
	// Captured memory: a transaction allocates, reads the allocation, and
	// retries; findChanges must be able to read the block while the
	// waiter sleeps (i.e. it was not recycled), and the block is undone
	// after wakeup.
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var gate uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				b := tx.Alloc(4)
				tx.Write(&b[0], 11)
				_ = tx.Read(&b[0])
				if tx.Read(&gate) == 0 {
					core.Retry(tx)
				}
			})
			close(done)
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
		writer := sys.NewThread()
		// Wake repeatedly with gate still closed: each futile wakeup
		// re-evaluates findChanges over the captured block.
		for i := 0; i < 5; i++ {
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&gate, 0) })
			time.Sleep(2 * time.Millisecond)
		}
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&gate, 1) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never completed")
		}
	})
}

func TestWaitPredFastPathHTM(t *testing.T) {
	// The 8-bit abort-code model: WaitPred deschedules straight from the
	// hardware abort, without a serialized software re-execution.
	sys := tm.NewSystem(tm.Config{HTMWaitPredFastPath: true}, htm.New)
	cs := core.Enable(sys)
	var x uint64
	done := make(chan struct{})
	go func() {
		thr := sys.NewThread()
		thr.Atomic(func(tx *tm.Tx) {
			if tx.Read(&x) == 0 {
				core.WaitPred(tx, func(tx *tm.Tx, _ []uint64) bool { return tx.Read(&x) != 0 })
			}
		})
		close(done)
	}()
	waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
	if sys.Stats.Serializations.Load() != 0 {
		t.Error("fast path still serialized")
	}
	writer := sys.NewThread()
	writer.Atomic(func(tx *tm.Tx) { tx.Write(&x, 1) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("never woke")
	}
}

func TestHTMRetrySerializesForSoftwareMode(t *testing.T) {
	// Retry under HTM must switch to the instrumented serial mode (no
	// escape actions in hardware).
	sys := tm.NewSystem(tm.Config{}, htm.New)
	cs := core.Enable(sys)
	var x uint64
	done := make(chan struct{})
	go func() {
		thr := sys.NewThread()
		thr.Atomic(func(tx *tm.Tx) {
			if tx.Read(&x) == 0 {
				core.Retry(tx)
			}
		})
		close(done)
	}()
	waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
	if sys.Stats.Serializations.Load() == 0 {
		t.Error("Retry under HTM should have used the serial software mode")
	}
	writer := sys.NewThread()
	writer.Atomic(func(tx *tm.Tx) { tx.Write(&x, 1) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("never woke")
	}
}

func TestHybridRetryAvoidsSerialization(t *testing.T) {
	// The HyTM extension (§2.2.6): Retry switches a hardware transaction
	// to a concurrent software transaction, so descheduling never
	// suspends system-wide concurrency.
	sys, cs := newSys("hybrid")
	var x uint64
	done := make(chan struct{})
	go func() {
		thr := sys.NewThread()
		thr.Atomic(func(tx *tm.Tx) {
			if tx.Read(&x) == 0 {
				core.Retry(tx)
			}
		})
		close(done)
	}()
	waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
	if sys.Stats.Serializations.Load() != 0 {
		t.Error("hybrid Retry serialized; the STM fallback should be concurrent")
	}
	writer := sys.NewThread()
	writer.Atomic(func(tx *tm.Tx) { tx.Write(&x, 1) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("never woke")
	}
}

func TestForPanicsWithoutEnable(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true}, eager.New)
	thr := sys.NewThread()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when condition sync is not enabled")
		}
	}()
	thr.Atomic(func(tx *tm.Tx) {
		core.Retry(tx)
	})
}

func TestDescheduleStats(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var x uint64
		done := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&x) == 0 {
					core.Retry(tx)
				}
			})
			close(done)
		}()
		waitCond(t, "desched", func() bool { return sys.Stats.Deschedules.Load() == 1 })
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&x, 1) })
		<-done
		if sys.Stats.Wakeups.Load() != 1 {
			t.Errorf("wakeups = %d, want 1", sys.Stats.Wakeups.Load())
		}
	})
}
