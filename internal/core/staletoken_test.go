package core_test

// Reproducer for the stale-token self-clear path of the Deschedule sleep
// cycle (deschedSignal.Handle) interleaved with online stripe resizes.
//
// The fragile window: a waiter consumes a STALE token (a claim-winning
// waker's batched signal from a cycle the thread already departed), so no
// waker has CASed `asleep` for THIS cycle — the waiter must clear the
// claim itself, after the Wait, before withdrawing. Meanwhile a forced
// resize migration scans the old tier and decides, per waiter, whether to
// carry it to the new geometry by reading that same `asleep` flag, and the
// thread immediately re-deschedules, storing `asleep = true` on a fresh
// waiter for the new cycle. Get the ordering wrong — e.g. perform the
// self-clear BEFORE the Wait consumes the token, i.e. before the waker's
// claim CAS can be arbitrated — and a claim-winning waker's CAS fails (or
// a migration carries a departed waiter), wedging the handshake or waking
// threads that never published. This test drives that interleave hard and
// was verified to fail (wedge within the timeout) with the self-clear
// reordered ahead of the Wait/CAS arbitration.
//
// Run under -race in CI: the asleep claim CAS, the migration's shard
// locks, and the semaphore hand-off are exactly what the detector vets.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmsync/internal/core"
	"tmsync/internal/tm"
)

func TestStaleTokenSelfClearAcrossResize(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	forEachCoalesce(t, allEngines, tm.Config{Stripes: 4, MinStripes: 1, MaxStripes: 64},
		func(t *testing.T, sys *tm.System, cs *core.CondSync) {
			var flag uint64
			waiter := sys.NewThread()
			writer := sys.NewThread()
			var stop atomic.Bool
			var wg sync.WaitGroup

			// Prankster: inject a bounded burst of stale tokens into the
			// waiter's semaphore, modelling late batched signals from
			// departed sleep cycles. Every one the waiter consumes
			// mid-sleep is a spurious wakeup whose claim no waker owns —
			// the self-clear path. The burst is finite on purpose: most of
			// the rounds must make progress on REAL wakeups, so a
			// mutation that loses them (e.g. the self-clear performed
			// before the Wait, ahead of the waker's claim CAS) wedges the
			// handshake instead of limping along on injected tokens.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10 && !stop.Load(); i++ {
					waiter.Sem.Signal()
					time.Sleep(time.Millisecond)
				}
			}()

			// Resize storm: cycle the stripe geometry so sleep cycles,
			// spurious wakeups, and re-deschedules keep landing on tiers
			// the migration is scanning or has just abandoned.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					for _, n := range []int{1, 4, 64, 16} {
						cs.Resize(n)
					}
				}
			}()

			done := make(chan struct{})
			go func() {
				defer close(done)
				var inner sync.WaitGroup
				inner.Add(2)
				go func() { // waiter: consume each round's token
					defer inner.Done()
					for r := 0; r < rounds; r++ {
						waiter.Atomic(func(tx *tm.Tx) {
							if tx.Read(&flag) == 0 {
								core.Retry(tx)
							}
							tx.Write(&flag, 0)
						})
					}
				}()
				go func() { // writer: produce a token once the last was taken
					defer inner.Done()
					for r := 0; r < rounds; r++ {
						for {
							var v uint64
							writer.Atomic(func(tx *tm.Tx) { v = tx.Read(&flag) })
							if v == 0 {
								break
							}
							time.Sleep(20 * time.Microsecond)
						}
						// Give the waiter time to publish and genuinely
						// sleep before producing: without this the waiter's
						// double-check usually wins and the rounds never
						// exercise the Wait/self-clear path at all.
						time.Sleep(200 * time.Microsecond)
						writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
					}
				}()
				inner.Wait()
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("handshake wedged: a stale-token wakeup lost its claim arbitration across a resize")
			}
			stop.Store(true)
			wg.Wait()
			if flag != 0 {
				t.Errorf("flag = %d after the final round, want 0", flag)
			}
			waitCond(t, "waiter index drained", func() bool { return cs.WaitingLen() == 0 })
			if got := sys.Stats.StripeResizes.Load(); got == 0 {
				t.Error("no resizes ran; the interleave was not exercised")
			}
			// A healthy share of rounds must involve a genuine sleep, or
			// the test proves nothing about the Wait/self-clear
			// arbitration. The hardware engines' software re-execution
			// legitimately discovers the precondition without sleeping on
			// some rounds, so the floor is deliberately loose.
			if got := sys.Stats.Deschedules.Load(); got < uint64(rounds)/6 {
				t.Errorf("only %d deschedules over %d rounds; the waiter barely slept", got, rounds)
			}
		})
}
