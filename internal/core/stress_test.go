package core_test

import (
	"sync"
	"testing"
	"time"

	"tmsync/internal/core"
	"tmsync/internal/htm"
	"tmsync/internal/hybrid"
	"tmsync/internal/tm"
)

// TestRetryUnderSpuriousAborts injects a high simulated hardware abort
// rate and verifies condition synchronization still makes progress and
// conserves elements — failure injection for the HTM/hybrid retry paths.
func TestRetryUnderSpuriousAborts(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func(cfg tm.Config) *tm.System
	}{
		{"htm", func(cfg tm.Config) *tm.System { return tm.NewSystem(cfg, htm.New) }},
		{"hybrid", func(cfg tm.Config) *tm.System { return tm.NewSystem(cfg, hybrid.New) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			sys := mk.make(tm.Config{HTMSpuriousAbortPerMille: 100})
			core.Enable(sys)
			var slots, count uint64
			_ = slots
			const total = 2000
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < total; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						if tx.Read(&count) == 4 {
							core.Retry(tx)
						}
						tx.Write(&count, tx.Read(&count)+1)
					})
				}
			}()
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < total; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						if tx.Read(&count) == 0 {
							core.Retry(tx)
						}
						tx.Write(&count, tx.Read(&count)-1)
					})
				}
			}()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("wedged under spurious abort injection")
			}
			if count != 0 {
				t.Fatalf("count = %d, want 0", count)
			}
			if sys.Stats.SpuriousAborts.Load() == 0 {
				t.Error("injection did not fire")
			}
		})
	}
}

// TestMixedMechanismsOneSystem runs Retry, Await, WaitPred, and Restart
// waiters concurrently against the same counter on one system: the
// registry must handle heterogeneous waiters.
func TestMixedMechanismsOneSystem(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var level uint64
		var wg sync.WaitGroup
		waiters := []func(tx *tm.Tx){
			func(tx *tm.Tx) {
				if tx.Read(&level) < 1 {
					core.Retry(tx)
				}
			},
			func(tx *tm.Tx) {
				if tx.Read(&level) < 2 {
					core.Await(tx, &level)
				}
			},
			func(tx *tm.Tx) {
				if tx.Read(&level) < 3 {
					core.WaitPred(tx, func(tx *tm.Tx, _ []uint64) bool {
						return tx.Read(&level) >= 3
					})
				}
			},
			func(tx *tm.Tx) {
				if tx.Read(&level) < 4 {
					tx.Restart()
				}
			},
		}
		for _, w := range waiters {
			wg.Add(1)
			go func(body func(tx *tm.Tx)) {
				defer wg.Done()
				thr := sys.NewThread()
				thr.Atomic(body)
			}(w)
		}
		// Raise the level step by step; all waiters must eventually pass.
		writer := sys.NewThread()
		for v := uint64(1); v <= 4; v++ {
			time.Sleep(5 * time.Millisecond)
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&level, v) })
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("mixed waiters wedged")
		}
	})
}

// TestWaiterChurn hammers the registry: many short-lived waiters racing
// with many writers, checking the registry drains to empty.
func TestWaiterChurn(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var token uint64
		const pairs = 3
		const rounds = 300
		var wg sync.WaitGroup
		for p := 0; p < pairs; p++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < rounds; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						v := tx.Read(&token)
						if v == 0 {
							core.Retry(tx)
						}
						tx.Write(&token, v-1)
					})
				}
			}()
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < rounds; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						tx.Write(&token, tx.Read(&token)+1)
					})
				}
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("churn wedged")
		}
		if token != 0 {
			t.Fatalf("token = %d, want 0", token)
		}
		if got := cs.WaitingLen(); got != 0 {
			t.Fatalf("registry holds %d stale waiters", got)
		}
	})
}
