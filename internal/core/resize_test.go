package core_test

// Tests for waiter migration across online stripe resizes: a sleeping
// waiter — including one whose waitset spans several stripes, and a
// Retry-Orig registry entry — must survive any sequence of geometry
// swaps and still be woken exactly by an overlapping commit: no lost
// wakeups (the migration carried it to the right shards of the new
// geometry) and no spurious ones (a resize alone wakes nobody). Run
// under -race in CI: the migration's lock-everything protocol against
// concurrent insert/remove/scan traffic is exactly what the race
// detector should vet.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmsync/internal/core"
	"tmsync/internal/tm"
)

// resizeCycle drives the registries through growth, a collapse to the
// one-stripe global table, and partial regrowth, ending on a geometry
// different from both the start and the extremes.
func resizeCycle(cs *core.CondSync) {
	for _, n := range []int{1, 4, 64, 16} {
		cs.Resize(n)
	}
}

// TestWaitersSurviveResizeExactWake parks one multi-stripe waiter per
// address pair on disjoint stripes, swaps the stripe geometry several
// times while they sleep, and then commits one overlapping write: exactly
// the overlapping waiter must wake, the others must keep sleeping, and a
// later write to each remaining pair must wake each exactly once.
func TestWaitersSurviveResizeExactWake(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		const waiters = 3
		addrs := disjointStripeAddrs(t, sys, 2*waiters)
		var woken [waiters]atomic.Bool
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				a, b := addrs[2*i], addrs[2*i+1]
				thr := sys.NewThread()
				thr.Atomic(func(tx *tm.Tx) {
					if tx.Read(a) == 0 && tx.Read(b) == 0 {
						core.Await(tx, a, b)
					}
					woken[i].Store(true)
				})
			}(i)
		}
		waitCond(t, "all waiters asleep", func() bool { return cs.WaitingLen() == waiters })

		gen := sys.Table.Gen()
		resizeCycle(cs)
		if sys.Table.Gen() == gen {
			t.Fatal("resize cycle did not change the table generation")
		}
		if n := sys.Stats.MigratedWaiters.Load(); n == 0 {
			t.Fatal("no waiters were migrated across the resizes")
		}
		// A resize alone must wake nobody.
		if cs.WaitingLen() != waiters {
			t.Fatalf("resize disturbed the waiter index: %d waiting, want %d", cs.WaitingLen(), waiters)
		}
		for i := range woken {
			if woken[i].Load() {
				t.Fatalf("waiter %d woke from a resize with no overlapping write", i)
			}
		}

		// One overlapping write (second address of pair 0, so the
		// migrated multi-stripe registration is what catches it).
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(addrs[1], 1) })
		waitCond(t, "overlapping waiter woken", func() bool { return woken[0].Load() })
		waitCond(t, "others still parked", func() bool { return cs.WaitingLen() == waiters-1 })
		for i := 1; i < waiters; i++ {
			if woken[i].Load() {
				t.Errorf("waiter %d woke without any write to its stripes", i)
			}
		}

		// Release the rest across one more geometry change: no lost
		// wakeups through the migrated index.
		cs.Resize(64)
		for i := 1; i < waiters; i++ {
			writer.Atomic(func(tx *tm.Tx) { tx.Write(addrs[2*i], 1) })
		}
		wg.Wait()
		if n := cs.WaitingLen(); n != 0 {
			t.Fatalf("waiter index not drained: %d", n)
		}
	})
}

// TestOrigWaiterSurvivesResize registers a Retry-Orig entry, swaps the
// geometry while it sleeps, and checks that an overlapping commit still
// finds it through the migrated registry shards.
func TestOrigWaiterSurvivesResize(t *testing.T) {
	forEach(t, stmEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		addrs := disjointStripeAddrs(t, sys, 2)
		done := make(chan struct{})
		go func() {
			defer close(done)
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(addrs[0]) == 0 && tx.Read(addrs[1]) == 0 {
					core.RetryOrig(tx)
				}
			})
		}()
		waitCond(t, "orig waiter registered", func() bool { return cs.OrigWaitingLen() == 1 })

		resizeCycle(cs)
		if cs.OrigWaitingLen() != 1 {
			t.Fatalf("resize disturbed the Retry-Orig registry: %d entries, want 1", cs.OrigWaitingLen())
		}
		select {
		case <-done:
			t.Fatal("orig waiter woke from a resize with no overlapping write")
		default:
		}

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(addrs[1], 1) })
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("orig waiter wedged: migration lost the registry entry")
		}
		waitCond(t, "registry drained", func() bool { return cs.OrigWaitingLen() == 0 })
	})
}

// TestResizeStressNoLostWakeups hammers the migration protocol: producer
// and consumer goroutines hand tokens through Await-guarded cells while
// another goroutine swaps the stripe geometry continuously. Every
// hand-off must complete (no lost wakeup wedges the ring) and the token
// count must be conserved.
func TestResizeStressNoLostWakeups(t *testing.T) {
	rounds := 400
	if testing.Short() {
		rounds = 80
	}
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		addrs := disjointStripeAddrs(t, sys, 2)
		slotA, slotB := addrs[0], addrs[1]
		*slotA = 1 // one token circulating A -> B -> A

		stop := make(chan struct{})
		var resizes sync.WaitGroup
		resizes.Add(1)
		go func() {
			defer resizes.Done()
			counts := []int{1, 16, 4, 64, 2, 32}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cs.Resize(counts[i%len(counts)])
			}
		}()

		var wg sync.WaitGroup
		move := func(from, to *uint64) {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < rounds; i++ {
				thr.Atomic(func(tx *tm.Tx) {
					if tx.Read(from) == 0 {
						core.Await(tx, from)
					}
					tx.Write(from, tx.Read(from)-1)
					tx.Write(to, tx.Read(to)+1)
				})
			}
		}
		wg.Add(2)
		go move(slotA, slotB)
		go move(slotB, slotA)

		doneCh := make(chan struct{})
		go func() { wg.Wait(); close(doneCh) }()
		select {
		case <-doneCh:
		case <-time.After(60 * time.Second):
			close(stop)
			t.Fatal("ring wedged: a wakeup was lost across a resize")
		}
		close(stop)
		resizes.Wait()
		if got := *slotA + *slotB; got != 1 {
			t.Fatalf("token conservation broken: %d tokens, want 1", got)
		}
		if cs.WaitingLen() != 0 {
			t.Fatalf("waiter index not drained: %d", cs.WaitingLen())
		}
	})
}
