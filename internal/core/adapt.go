// Online stripe resizing: the contention-adaptive controller that picks
// the orec-table stripe count from observed wakeup-scan work, and the
// epoch-swap migration that carries the sharded waiter registries to a
// new stripe geometry while transactions keep running.
//
// A resize is not a stop-the-world: the table's orec words never move
// (storage is chunked at the finest stripe granularity), so only the
// slot→stripe labelling changes. The swap has three parts, in order:
//
//  1. locktable.Table.Resize publishes a new generation-tagged View.
//     Engines stamp each attempt with the View read at Begin and
//     revalidate the generation at commit, so a writer whose stripe set
//     was named under the old geometry aborts and retries on the new one
//     (Stats.GenAborts).
//  2. The migration builds a fresh tier of waiter-index and Retry-Orig
//     registry shards for the new geometry and, holding every shard lock
//     of the old generation, copies each still-sleeping waiter into the
//     shards its waitset (or read set) covers under the new view. The
//     old tier's lists are left intact: a committing writer that loaded
//     the old tier keeps scanning it safely (see wakeWaiters).
//  3. The old shards are marked moved — under their locks — so mutators
//     (insert, remove, validate-and-insert, withdraw) that arrive later
//     reload the current tier and retry. No waiter is ever half-moved,
//     because mutators hold all covering shard locks at once and the
//     migration holds all of them.
package core

import (
	"sync/atomic"

	"tmsync/internal/tm"
)

// controller is the adaptive stripe-sizing policy, sampled on the commit
// path: every AdaptWindow writer commits, the committing thread that
// closes the window examines the window's contention signals —
// Stats.WakeChecks and Stats.OrigShardChecks (how much post-commit scan
// work writers did), Stats.Wakeups (how much of it was useful), and the
// abort rate — and doubles or halves the stripe count within
// [Config.MinStripes, Config.MaxStripes] when the futile-scan load
// crosses the hysteresis thresholds. With Config.ResizeEvery set, the
// thresholds are replaced by a deterministic forced schedule (the
// differential harness's tool for proving resizes observably inert).
type controller struct {
	enabled  bool
	forced   bool
	window   uint64
	grow     float64
	shrink   float64
	min, max int
	schedule []int

	// commits counts postCommit invocations; the thread whose increment
	// crosses a window boundary tries to make the decision.
	commits atomic.Uint64

	// Window-start snapshots of the system counters; guarded by
	// CondSync.resizeMu (only the decision winner touches them).
	schedIdx                                    int
	quiet                                       uint64
	lastWakeChecks, lastOrigChecks, lastWakeups uint64
	lastCommits, lastAborts, lastAttempts       uint64
}

// quietCommits is how many consecutive below-shrink-threshold commits it
// takes before the controller halves the stripe count. Growing reacts to
// a single bad window (futile scans are pure waste); shrinking waits for
// sustained quiet, so a geometry serving sparse-but-live waiter traffic
// — bursts separated by silent stretches — keeps resetting the counter
// and is never torn down only to be rebuilt on the next burst. Counted
// in commits, not windows, so the hysteresis does not collapse when a
// short decision window is configured.
const quietCommits = 4096

func (c *controller) init(cfg tm.Config) {
	c.window = uint64(cfg.AdaptWindow)
	c.grow, c.shrink = cfg.AdaptGrow, cfg.AdaptShrink
	c.min, c.max = cfg.MinStripes, cfg.MaxStripes
	if cfg.ResizeEvery > 0 && len(cfg.ResizeSchedule) > 0 {
		c.forced = true
		c.window = uint64(cfg.ResizeEvery)
		c.schedule = cfg.ResizeSchedule
	}
	c.enabled = c.forced || c.max > c.min
}

// maybeAdapt runs at the tail of every postCommit. It is deliberately
// cheap when no decision is due (one atomic increment), and a decision
// that loses the TryLock race is simply skipped — another window will
// come.
func (cs *CondSync) maybeAdapt() {
	c := &cs.ctl
	if !c.enabled {
		return
	}
	n := c.commits.Add(1)
	if n%c.window != 0 {
		return
	}
	if !cs.resizeMu.TryLock() {
		return
	}
	defer cs.resizeMu.Unlock()

	if c.forced {
		next := c.schedule[c.schedIdx%len(c.schedule)]
		c.schedIdx++
		if next > cs.sys.Table.MaxStripes() {
			next = cs.sys.Table.MaxStripes()
		}
		if next < 1 {
			next = 1
		}
		cs.resizeLocked(next)
		return
	}

	st := &cs.sys.Stats
	wake := st.WakeChecks.Load()
	orig := st.OrigShardChecks.Load()
	woke := st.Wakeups.Load()
	commits := st.Commits.Load()
	aborts := st.Aborts.Load()
	attempts := st.Attempts()
	dChecks := (wake - c.lastWakeChecks) + (orig - c.lastOrigChecks)
	dWakeups := woke - c.lastWakeups
	dCommits := commits - c.lastCommits
	dAborts := aborts - c.lastAborts
	dAttempts := attempts - c.lastAttempts
	c.lastWakeChecks, c.lastOrigChecks, c.lastWakeups = wake, orig, woke
	c.lastCommits, c.lastAborts, c.lastAttempts = commits, aborts, attempts
	if dCommits == 0 {
		return
	}

	// The grow signal is futile scan work: waiter visits and registry
	// checks that woke nobody, per writer commit. Useful visits (one per
	// delivered wakeup) are free no matter the stripe count — a waiter
	// that must wake must be visited — so they are subtracted out. The
	// shrink signal is total scan work: only a registry that is barely
	// consulted at all is worth folding into fewer stripes.
	futile := float64(dChecks) - float64(dWakeups)
	if futile < 0 {
		futile = 0
	}
	load := futile / float64(dCommits)
	total := float64(dChecks) / float64(dCommits)
	abortRate := 0.0
	if dAttempts > 0 {
		abortRate = float64(dAborts) / float64(dAttempts)
	}

	cur := cs.tier.Load().view.NumStripes()
	switch {
	case load > c.grow && cur*2 <= c.max:
		c.quiet = 0
		cs.resizeLocked(cur * 2)
	case total < c.shrink && abortRate < 0.5:
		// Shrinking is cheap to be wrong about upward (the next window
		// regrows) but the scan stats of an abort-heavy window are too
		// noisy to act on, so high-churn windows keep the current count.
		c.quiet += dCommits
		if c.quiet >= quietCommits && cur/2 >= c.min {
			c.quiet = 0
			cs.resizeLocked(cur / 2)
		}
	default:
		c.quiet = 0
	}
}

// Resize performs an online stripe-geometry swap to the given count
// (a power of two within [1, Table.MaxStripes()]): the table publishes a
// new generation and the waiter registries migrate to it. Safe to call
// while transactions run; concurrent resizes serialize. Exported for
// tests and tools — the adaptive controller calls the same path.
func (cs *CondSync) Resize(stripes int) {
	cs.resizeMu.Lock()
	defer cs.resizeMu.Unlock()
	cs.resizeLocked(stripes)
}

// resizeLocked is the epoch swap proper; the caller holds resizeMu.
//
//tm:lockorder-checked
func (cs *CondSync) resizeLocked(stripes int) {
	old := cs.tier.Load()
	if old.view.NumStripes() == stripes {
		return
	}
	nv := cs.sys.Table.Resize(stripes)
	nt := newTier(nv)

	// Lock every shard of the old generation, ascending, waiter shards
	// before registry shards. Mutators only ever hold an ascending subset
	// within one family, and scanners hold one lock at a time, so the
	// total order (waiter shards, then orig shards, each ascending) rules
	// out deadlock. Holding everything makes the copy atomic: no mutator
	// can add, claim, or withdraw between what we read and what we mark
	// moved.
	for i := range old.shards {
		old.shards[i].mu.Lock()
	}
	for i := range old.origShards {
		old.origShards[i].mu.Lock()
	}

	migrated := 0
	seen := make(map[*Waiter]struct{})
	for i := range old.shards {
		for _, w := range old.shards[i].waiters {
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			// A claimed (or departing) waiter will never be woken again
			// through the index; its owner's remove on the new tier is a
			// no-op, so dropping it here is the cleanup.
			if !w.asleep.Load() {
				continue
			}
			for _, s := range cs.shardsOf(nv, w.Waitset) {
				sh := &nt.shards[s].waiterShard
				sh.waiters = append(sh.waiters, w)
			}
			migrated++
		}
	}
	seenOrig := make(map[*origWaiter]struct{})
	for i := range old.origShards {
		for _, ow := range old.origShards[i].waiters {
			if _, dup := seenOrig[ow]; dup {
				continue
			}
			seenOrig[ow] = struct{}{}
			if ow.woken.Load() {
				continue
			}
			for _, s := range nv.StripesOf(ow.slots, nil) {
				sh := &nt.origShards[s].origShard
				sh.waiters = append(sh.waiters, ow)
			}
			migrated++
		}
	}

	// Publish the new tier BEFORE releasing the old locks: a mutator that
	// finds a moved shard must be able to load a tier that is at least as
	// new as the one that moved it. The old lists stay intact for
	// scanners that captured the old tier.
	cs.tier.Store(nt)
	for i := range old.shards {
		old.shards[i].moved = true
		old.shards[i].mu.Unlock()
	}
	for i := range old.origShards {
		old.origShards[i].moved = true
		old.origShards[i].mu.Unlock()
	}

	cs.sys.Stats.StripeResizes.Add(1)
	if migrated > 0 {
		cs.sys.Stats.MigratedWaiters.Add(uint64(migrated))
	}
}
