package core_test

// Tests for cross-commit wakeup coalescing (Config.CoalesceCommits): a
// committing writer defers its post-commit wake scans into a per-thread
// pending buffer, and every flush bound — the K-commit limit, the thread
// blocking, an abort/restart, a read back into a pending stripe, thread
// teardown — must deliver the deferred wakeups. Run under -race in CI: the
// pending buffer is single-thread state, but the flushes drive the same
// claim CASes and shard locks as immediate scans.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmsync/internal/mono"

	"tmsync/internal/condvar"
	"tmsync/internal/core"
	"tmsync/internal/htm"
	"tmsync/internal/hybrid"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

// coalesceSys builds a system for the named engine with cross-commit
// coalescing at bound k and condition synchronization enabled.
func coalesceSys(kind string, cfg tm.Config) (*tm.System, *core.CondSync) {
	var sys *tm.System
	switch kind {
	case "eager":
		cfg.Quiesce = true
		sys = tm.NewSystem(cfg, eager.New)
	case "lazy":
		cfg.Quiesce = true
		sys = tm.NewSystem(cfg, lazy.New)
	case "htm":
		sys = tm.NewSystem(cfg, htm.New)
	case "hybrid":
		cfg.Quiesce = true
		sys = tm.NewSystem(cfg, hybrid.New)
	default:
		panic(kind)
	}
	cs := core.Enable(sys)
	return sys, cs
}

func forEachCoalesce(t *testing.T, kinds []string, cfg tm.Config, fn func(t *testing.T, sys *tm.System, cs *core.CondSync)) {
	t.Helper()
	for _, k := range kinds {
		t.Run(k, func(t *testing.T) {
			sys, cs := coalesceSys(k, cfg)
			fn(t, sys, cs)
		})
	}
}

// park puts a waiter to sleep on *flag (Retry on flag == 0) and returns a
// channel closed when the waiter's atomic block completes.
func park(sys *tm.System, cs *core.CondSync, flag *uint64) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		thr := sys.NewThread()
		thr.Atomic(func(tx *tm.Tx) {
			if tx.Read(flag) == 0 {
				core.Retry(tx)
			}
		})
	}()
	return done
}

// TestCoalesceFlushesAtCommitBound defers a wake-enabling commit behind
// two unrelated ones: the waiter must stay asleep through the deferred
// commits — the whole point of coalescing — and wake exactly when the
// K-commit bound flushes the merged scan.
func TestCoalesceFlushesAtCommitBound(t *testing.T) {
	forEachCoalesce(t, allEngines, tm.Config{CoalesceCommits: 3}, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag, other uint64
		done := park(sys, cs, &flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		time.Sleep(50 * time.Millisecond)
		select {
		case <-done:
			t.Fatal("waiter woke before the flush bound: the scan was not deferred")
		default:
		}
		if got := sys.Stats.Wakeups.Load(); got != 0 {
			t.Fatalf("wakeups = %d before the flush bound, want 0", got)
		}
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&other, 1) })
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&other, 2) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke after the K-commit flush")
		}
		// Commits 1 and 2 stayed deferred past their own postCommit; the
		// third flushed immediately at the K bound and is not counted.
		if got := sys.Stats.CoalescedScans.Load(); got != 2 {
			t.Errorf("coalesced_scans = %d, want 2", got)
		}
		if got := sys.Stats.FlushReasonK.Load(); got != 1 {
			t.Errorf("flush_k = %d, want 1", got)
		}
	})
}

// TestCoalesceFlushesOnReadBack: a writer that reads a pending stripe in a
// later (read-only) transaction is polling the very data its unscanned
// commit changed; the read must trip a flush at that attempt's end.
func TestCoalesceFlushesOnReadBack(t *testing.T) {
	forEachCoalesce(t, allEngines, tm.Config{CoalesceCommits: 1 << 20}, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag uint64
		done := park(sys, cs, &flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		time.Sleep(50 * time.Millisecond)
		if got := sys.Stats.Wakeups.Load(); got != 0 {
			t.Fatalf("wakeups = %d before any flush bound, want 0", got)
		}
		writer.Atomic(func(tx *tm.Tx) { _ = tx.Read(&flag) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke after the writer read back into the pending stripe")
		}
		if got := sys.Stats.FlushReasonRead.Load(); got != 1 {
			t.Errorf("flush_read = %d, want 1", got)
		}
	})
}

// TestCoalesceFlushesAfterIdleReadOnlyAttempts: a thread that stops
// writing but keeps running read-only transactions on UNRELATED data
// trips no other bound — the K backstop must count those attempts and
// flush, or the waiter's delay would be unbounded while the writer is
// still happily transacting.
func TestCoalesceFlushesAfterIdleReadOnlyAttempts(t *testing.T) {
	forEachCoalesce(t, allEngines, tm.Config{CoalesceCommits: 3}, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		// Distinct stripes, so the read-only attempts cannot trip the
		// read-back trigger instead of the backstop under scrutiny.
		addrs := disjointStripeAddrs(t, sys, 2)
		flag, unrelated := addrs[0], addrs[1]
		done := park(sys, cs, flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(flag, 1) })
		time.Sleep(50 * time.Millisecond)
		if got := sys.Stats.Wakeups.Load(); got != 0 {
			t.Fatalf("wakeups = %d before any flush bound, want 0", got)
		}
		// Read-only attempts over data sharing nothing with the pending
		// write; the third one reaches the K backstop.
		for i := 0; i < 3; i++ {
			writer.Atomic(func(tx *tm.Tx) { _ = tx.Read(unrelated) })
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke: idle read-only attempts did not trip the K backstop")
		}
		// STM-instrumented commits flush at the idle backstop; an engine
		// whose commit recorded no orecs (a hardware transaction) marks
		// the buffer full-scan, which makes every subsequent read a
		// conservative read-back hit instead — either way the flush must
		// have come from an attempt-end trigger, not block/abort/teardown.
		k, read := sys.Stats.FlushReasonK.Load(), sys.Stats.FlushReasonRead.Load()
		if k+read != 1 {
			t.Errorf("flush_k = %d, flush_read = %d; want exactly one attempt-end flush", k, read)
		}
	})
}

// TestCoalesceFlushesOnRestart: an aborted/restarted attempt is a flush
// bound — the conflict may be against the very thread the deferred scan
// would wake.
func TestCoalesceFlushesOnRestart(t *testing.T) {
	forEachCoalesce(t, allEngines, tm.Config{CoalesceCommits: 1 << 20}, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag, unrelated uint64
		done := park(sys, cs, &flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		first := true
		writer.Atomic(func(tx *tm.Tx) {
			_ = tx.Read(&unrelated)
			if first {
				first = false
				tx.Restart()
			}
		})
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke after the writer's restarted attempt")
		}
		if got := sys.Stats.FlushReasonAbort.Load(); got < 1 {
			t.Errorf("flush_abort = %d, want >= 1", got)
		}
	})
}

// TestCoalesceAgeBoundRescuesStrandedIdleWriter is the stranding
// reproducer for the PR 5 liveness bug: every flush bound was
// attempt-triggered, so a writer that accumulates K-1 pending commits and
// then goes fully idle — no detach, no further attempts — stranded its
// deferred wakeups indefinitely, leaving the waiter asleep. With
// CoalesceMaxDelay set, the age backstop must drain the idle thread's
// buffer and wake the waiter within the bound (plus scheduling slack)
// even though the owner never runs again.
func TestCoalesceAgeBoundRescuesStrandedIdleWriter(t *testing.T) {
	const bound = 100 * time.Millisecond
	cfg := tm.Config{CoalesceCommits: 8, CoalesceMaxDelay: bound}
	forEachCoalesce(t, allEngines, cfg, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag, other uint64
		done := park(sys, cs, &flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		// K-1 = 7 commits: the wake-enabling write plus six unrelated
		// ones, none reaching the K bound. Then the writer goes idle
		// without detaching — the exact shape the age bound exists for.
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		for i := uint64(2); i <= 7; i++ {
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&other, i) })
		}
		start := mono.Now()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("waiter stranded: the idle writer's pending wakeups were never flushed")
		}
		// The bound is on flush initiation; allow generous scheduling
		// slack on top for loaded CI runners.
		if elapsed := start.Elapsed(); elapsed > bound+2*time.Second {
			t.Errorf("waiter woke after %v, want within the %v age bound (plus slack)", elapsed, bound)
		}
		if got := sys.Stats.FlushReasonAge.Load(); got != 1 {
			t.Errorf("flush_age = %d, want 1", got)
		}
	})
}

// fakeAgeClock is an injectable monotonic clock for the CoalesceMaxDelay
// paths: tests advance it explicitly instead of sleeping, so the deadline
// comparison and the backstop drain are exercised deterministically (and
// under -race, since the backstop goroutine reads it concurrently).
type fakeAgeClock struct{ now atomic.Int64 }

func (c *fakeAgeClock) install(cs *core.CondSync) { cs.SetAgeClock(c.now.Load) }
func (c *fakeAgeClock) advance(d time.Duration)   { c.now.Add(int64(d)) }

// TestCoalesceAgeFlushAtCommitBoundary drives the commit-boundary age
// check against a fake clock: a buffer older than CoalesceMaxDelay must
// flush at the owner's next commit, without any real time passing.
func TestCoalesceAgeFlushAtCommitBoundary(t *testing.T) {
	cfg := tm.Config{CoalesceCommits: 1 << 20, CoalesceMaxDelay: time.Hour}
	forEachCoalesce(t, allEngines, cfg, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var clk fakeAgeClock
		clk.install(cs)
		var flag, other uint64
		done := park(sys, cs, &flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) }) // buffer born at fake t=0
		clk.advance(2 * time.Hour)
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&other, 1) }) // overdue: must flush here
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke: the commit-boundary age check did not flush")
		}
		if got := sys.Stats.FlushReasonAge.Load(); got != 1 {
			t.Errorf("flush_age = %d, want 1", got)
		}
	})
}

// TestCoalesceAgeFlushAtAttemptBoundary drives the read-only-attempt age
// check against a fake clock: an overdue buffer must flush when the owner
// finishes a read-only attempt on unrelated data, long before the K
// idle-attempt backstop would trip. STM engines only: a hardware commit
// records no orecs, marking the buffer full-scan, which turns any
// subsequent read into a read-back flush before the age check is reached.
func TestCoalesceAgeFlushAtAttemptBoundary(t *testing.T) {
	cfg := tm.Config{CoalesceCommits: 1 << 20, CoalesceMaxDelay: time.Hour}
	forEachCoalesce(t, stmEngines, cfg, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var clk fakeAgeClock
		clk.install(cs)
		addrs := disjointStripeAddrs(t, sys, 2)
		flag, unrelated := addrs[0], addrs[1]
		done := park(sys, cs, flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(flag, 1) })
		clk.advance(2 * time.Hour)
		writer.Atomic(func(tx *tm.Tx) { _ = tx.Read(unrelated) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke: the attempt-boundary age check did not flush")
		}
		if got := sys.Stats.FlushReasonAge.Load(); got != 1 {
			t.Errorf("flush_age = %d, want 1", got)
		}
	})
}

// TestDrainOverdueFlushesIdleBuffer drives the backstop drain itself
// against a fake clock: an idle owner's buffer must be claimed and
// flushed by DrainOverdue exactly when it becomes overdue — the direct,
// sleep-free form of the stranding reproducer above.
func TestDrainOverdueFlushesIdleBuffer(t *testing.T) {
	cfg := tm.Config{CoalesceCommits: 1 << 20, CoalesceMaxDelay: time.Hour}
	forEachCoalesce(t, allEngines, cfg, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var clk fakeAgeClock
		clk.install(cs)
		var flag uint64
		done := park(sys, cs, &flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		if got := cs.DrainOverdue(); got != 0 {
			t.Fatalf("DrainOverdue drained %d buffers before the deadline, want 0", got)
		}
		clk.advance(2 * time.Hour)
		if got := cs.DrainOverdue(); got != 1 {
			t.Fatalf("DrainOverdue drained %d overdue buffers, want 1", got)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke after the backstop drained the idle owner's buffer")
		}
		if got := sys.Stats.FlushReasonAge.Load(); got != 1 {
			t.Errorf("flush_age = %d, want 1", got)
		}
		if got := cs.DrainOverdue(); got != 0 {
			t.Errorf("second DrainOverdue drained %d buffers, want 0 (already empty)", got)
		}
	})
}

// TestDrainOverdueRacesOwnerFlush hammers the backstop drain against
// owners that are actively committing, flushing, and sleeping: with a
// one-nanosecond bound every buffer is overdue the moment it exists, so
// the per-thread ownership latch arbitrates a continuous stream of
// drain-vs-owner-flush races. Run under -race in CI; the handoff must
// still conserve its token, and exactly one side must win each buffer
// (a double flush would double-signal, a lost buffer would wedge).
func TestDrainOverdueRacesOwnerFlush(t *testing.T) {
	cfg := tm.Config{CoalesceCommits: 4, CoalesceMaxDelay: time.Nanosecond}
	forEachCoalesce(t, allEngines, cfg, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		const passes = 30
		var slots [2]uint64
		slots[0] = 1
		done := make(chan struct{})
		go func() { // drain hammer, racing the owners' own flush bounds
			for {
				select {
				case <-done:
					return
				default:
					cs.DrainOverdue()
				}
			}
		}()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				thr := sys.NewThread()
				defer thr.Detach()
				for p := 0; p < passes; p++ {
					thr.Atomic(func(tx *tm.Tx) {
						if tx.Read(&slots[i]) == 0 {
							core.Retry(tx)
						}
						tx.Write(&slots[i], 0)
						tx.Write(&slots[1-i], 1)
					})
				}
			}(i)
		}
		finished := make(chan struct{})
		go func() { wg.Wait(); close(finished) }()
		select {
		case <-finished:
		case <-time.After(60 * time.Second):
			t.Fatal("handoff wedged while racing the backstop drain")
		}
		close(done)
		if slots[0] != 1 || slots[1] != 0 {
			t.Errorf("token state %v after even passes, want [1 0]", slots)
		}
	})
}

// TestCoalesceFlushesOnDetach: teardown is the bound of last resort — a
// worker that stops running transactions flushes via Thread.Detach.
func TestCoalesceFlushesOnDetach(t *testing.T) {
	forEachCoalesce(t, allEngines, tm.Config{CoalesceCommits: 1 << 20}, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag uint64
		done := park(sys, cs, &flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		time.Sleep(50 * time.Millisecond)
		if got := sys.Stats.Wakeups.Load(); got != 0 {
			t.Fatalf("wakeups = %d before Detach, want 0", got)
		}
		writer.Detach()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke after Thread.Detach")
		}
		if got := sys.Stats.FlushReasonTeardown.Load(); got != 1 {
			t.Errorf("flush_teardown = %d, want 1", got)
		}
	})
}

// TestCoalesceHandoffNeverWedges runs a two-thread token handoff with a
// coalesce bound far larger than the pass count: the K bound never trips,
// so progress depends entirely on the block-bound flush — each thread must
// drain its deferred scans before sleeping for the next token. A missing
// block flush wedges the ring immediately.
func TestCoalesceHandoffNeverWedges(t *testing.T) {
	forEachCoalesce(t, allEngines, tm.Config{CoalesceCommits: 1 << 20}, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		const passes = 30
		var slots [2]uint64
		slots[0] = 1
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				thr := sys.NewThread()
				defer thr.Detach()
				for p := 0; p < passes; p++ {
					thr.Atomic(func(tx *tm.Tx) {
						if tx.Read(&slots[i]) == 0 {
							core.Retry(tx)
						}
						tx.Write(&slots[i], 0)
						tx.Write(&slots[1-i], 1)
					})
				}
			}(i)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("handoff wedged: a deferred wake scan was not flushed at the block bound")
		}
		if slots[0] != 1 || slots[1] != 0 {
			t.Errorf("token state %v after even passes, want [1 0]", slots)
		}
		// Which bound fires first depends on the engine: Retry's restart-
		// to-populate trips the abort bound before the deschedule itself
		// trips the block bound (hybrid's software re-execution may flush
		// everything at the restart). Either way the scans flushed early.
		if b, a := sys.Stats.FlushReasonBlock.Load(), sys.Stats.FlushReasonAbort.Load(); b+a == 0 {
			t.Error("no block- or abort-bound flushes: the handoff should never reach the K bound")
		}
	})
}

// TestCoalesceAcrossResize accumulates commits across forced online stripe
// resizes: the pending buffer's stripe set is named under a generation the
// table abandons mid-accumulation, so the flush must re-derive coverage
// from the merged orecs — a waiter migrated to the new tier still wakes.
func TestCoalesceAcrossResize(t *testing.T) {
	forEachCoalesce(t, stmEngines, tm.Config{Stripes: 4, MinStripes: 1, MaxStripes: 64, CoalesceCommits: 4},
		func(t *testing.T, sys *tm.System, cs *core.CondSync) {
			var flag, other uint64
			done := park(sys, cs, &flag)
			waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

			writer := sys.NewThread()
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) }) // deferred under gen g0
			cs.Resize(64)                                         // migrate waiter, bump generation
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&other, 1) })
			cs.Resize(16)
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&other, 2) })
			writer.Atomic(func(tx *tm.Tx) { tx.Write(&other, 3) }) // 4th commit: flush
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("waiter never woke: the deferred scan did not survive the geometry change")
			}
			if got := sys.Stats.StripeResizes.Load(); got < 2 {
				t.Errorf("stripe_resizes = %d, want >= 2", got)
			}
		})
}

// TestCoalesceCondvarWaitFlushes: a thread entering a condition-variable
// wait must flush its deferred scans — including the punctuation commit's
// own — before sleeping; the core waiter it owes a wakeup to must not
// sleep with it.
func TestCoalesceCondvarWaitFlushes(t *testing.T) {
	forEachCoalesce(t, allEngines, tm.Config{CoalesceCommits: 1 << 20}, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag uint64
		cv := condvar.New()
		done := park(sys, cs, &flag)
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		waiting := make(chan struct{})
		go func() {
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) }) // deferred
			close(waiting)
			thr.Atomic(func(tx *tm.Tx) { cv.Wait(tx) }) // must flush before sleeping
		}()
		<-waiting
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("core waiter never woke: the condvar sleeper took its deferred scan to bed")
		}
		waitCond(t, "condvar sleeper queued", func() bool { return cv.WaitingLen() == 1 })
		cv.SignalNow() // release the sleeper so the goroutine exits
	})
}

// TestCoalesceConfigContradictions pins the Config-level validation: a
// negative bound and the unbatched/coalesce combination must be rejected
// at system construction, not discovered as silent misbehaviour.
func TestCoalesceConfigContradictions(t *testing.T) {
	for name, cfg := range map[string]tm.Config{
		"negative":           {CoalesceCommits: -1},
		"unbatched":          {CoalesceCommits: 2, UnbatchedWakeups: true},
		"negative-max-delay": {CoalesceCommits: 2, CoalesceMaxDelay: -time.Millisecond},
		"max-delay-alone":    {CoalesceMaxDelay: time.Millisecond},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSystem accepted contradictory config %+v", cfg)
				}
			}()
			tm.NewSystem(cfg, eager.New)
		})
	}
}
