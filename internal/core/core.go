// Package core implements the paper's contribution: the Deschedule
// abstract mechanism for condition synchronization among transactions
// (Algorithm 4), the three language-level constructs built on it —
// Retry (Algorithm 5), Await (Algorithm 6), and WaitPred (Algorithm 7) —
// and, for comparison, the original metadata-based Retry of Harris et al.
// (Algorithm 1, "Retry-Orig").
//
// The design follows §2.2: a thread wishing to delay itself rolls its
// transaction back completely, publishes a predicate f and parameters p
// into a registry of waiting threads, double-checks f(p) in a fresh
// transaction, and sleeps on a private semaphore. After any writer
// commits, wakeWaiters re-evaluates each sleeping waiter's predicate —
// a read-only computation over shared memory, performed strictly after
// commit — and signals threads whose preconditions now hold. Wakeup is
// value-based, so silent stores never wake a waiter.
package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"tmsync/internal/locktable"
	"tmsync/internal/sem"
	"tmsync/internal/spin"
	"tmsync/internal/tm"
)

// Pred is a wakeup predicate evaluated inside a (read-only) transaction.
// It must not write shared memory and must not itself call Retry, Await,
// WaitPred, or condition-variable waits.
type Pred func(tx *tm.Tx, args []uint64) bool

// Waiter is one published deschedule request. A fresh Waiter is created
// per deschedule so that late wakeWaiters scans holding a stale snapshot
// of the registry only ever observe immutable fields. Which waiter-index
// shards the waiter occupies is a pure function of its waitset and the
// registry generation's stripe geometry, recomputed per generation (the
// waiter itself records nothing: an online stripe resize migrates it to
// the new geometry's shards without touching it).
type Waiter struct {
	Thr     *tm.Thread
	Pred    Pred
	Args    []uint64
	Waitset []tm.AddrVal

	// asleep is true from publication until a waker (or the waiter
	// itself, deciding not to sleep) claims the wakeup with a CAS;
	// exactly one Signal is issued per sleep cycle.
	asleep atomic.Bool
}

// origWaiter is a Retry-Orig registry entry (Algorithm 1): the sleeping
// transaction's read-set metadata, to be intersected with committing
// writers' lock sets. The entry is registered on every registry shard
// (orec-table stripe) its read set covers; woken arbitrates between
// concurrent wakers on different shards, the entry's own withdrawal, and
// a spurious (stale-token) wakeup — whichever wins the CAS owns the
// entry's single wakeup. slots duplicates the orecs keys as a slice so
// shard membership can be recomputed under any stripe geometry.
type origWaiter struct {
	thr   *tm.Thread
	orecs map[uint32]struct{}
	slots []uint32
	woken atomic.Bool
}

// waiterShard is one shard of the waiter index: the waiters whose
// waitsets touch one orec-table stripe. moved is set — under mu, with
// every shard of the generation locked — when an online stripe resize has
// migrated the shard's waiters to a newer generation: mutators that find
// it set reload the current generation and retry, while scans may keep
// reading the (intact, now-stale) list safely.
type waiterShard struct {
	mu      spin.Lock
	moved   bool
	waiters []*Waiter
}

// paddedShard keeps adjacent shards on distinct cache lines, so that
// committing writers registering and scanning disjoint stripes do not
// contend on shard metadata.
//
//tm:padded
type paddedShard struct {
	waiterShard
	_ [(64 - unsafe.Sizeof(waiterShard{})%64) % 64]byte
}

// origShard is one shard of the Retry-Orig registry: the entries whose
// read-set orecs touch one orec-table stripe. moved works exactly as in
// waiterShard.
type origShard struct {
	mu      spin.Lock
	moved   bool
	waiters []*origWaiter
}

// paddedOrigShard keeps adjacent Retry-Orig registry shards on distinct
// cache lines, mirroring the waiter-index layout.
//
//tm:padded
type paddedOrigShard struct {
	origShard
	_ [(64 - unsafe.Sizeof(origShard{})%64) % 64]byte
}

// tier is one generation of the sharded condition-synchronization
// registries: the per-stripe waiter index and the sharded Retry-Orig
// registry, both sized to one stripe geometry of the orec table. An
// online stripe resize builds a fresh tier for the new geometry, migrates
// every live waiter into it under all of the old tier's shard locks, and
// publishes it; the old tier's lists are left intact, so a committing
// writer that loaded the old tier before the swap still finds every
// waiter that was published before its commit (see wakeWaiters).
type tier struct {
	view       locktable.View
	shards     []paddedShard
	origShards []paddedOrigShard
}

func newTier(view locktable.View) *tier {
	return &tier{
		view:       view,
		shards:     make([]paddedShard, view.NumStripes()),
		origShards: make([]paddedOrigShard, view.NumStripes()),
	}
}

// CondSync is the condition-synchronization runtime attached to one
// tm.System.
type CondSync struct {
	sys *tm.System

	// tier is the current generation of the sharded registries:
	//
	//   - the per-stripe waiter index, one shard per orec-table stripe: a
	//     waiter with a waitset registers on exactly the stripes covering
	//     its waitset addresses, and a committing writer visits only the
	//     shards of stripes in its write set (Algorithm 4's wakeup made
	//     O(write set) instead of O(waiters));
	//   - the sharded Retry-Orig registry. Algorithm 1 guards the
	//     registry with a single global lock to make read-set validation
	//     atomic with insertion; here that atomicity is preserved across
	//     the shards covering an entry's read set, taken together, so a
	//     committing writer's origWake takes only the locks of stripes in
	//     its captured lock set.
	//
	// A one-stripe geometry degenerates to the old global list and global
	// registry, which the differential harness uses to prove the sharding
	// observably equivalent; running the suite under a forced resize
	// schedule proves the same for the online swap.
	tier atomic.Pointer[tier]

	// mu/waiters is the unindexed list: waiters without a waitset
	// (WaitPred's arbitrary predicates) can depend on any location, so
	// every committing writer re-evaluates them. Unindexed waiters name
	// no stripes and are untouched by resizes.
	mu      spin.Lock
	waiters []*Waiter

	// resizeMu serializes online stripe resizes (adaptive-controller
	// decisions, forced schedules, and tests alike).
	resizeMu sync.Mutex

	// Age-bound backstop state (Config.CoalesceMaxDelay, coalesce.go):
	// the clock the bound reads (replaceable for deterministic tests),
	// whether a backstop goroutine is live, the mutex serializing drain
	// scans, and the drainer's own thread descriptor, created lazily.
	ageClock    func() int64
	backstopOn  atomic.Bool
	backstopMu  sync.Mutex
	backstopThr *tm.Thread

	ctl controller
}

// Enable attaches a condition-synchronization runtime to sys and installs
// the post-commit wakeWaiters hook. It must be called once, before any
// transactions run.
func Enable(sys *tm.System) *CondSync {
	cs := &CondSync{sys: sys, ageClock: ageNow}
	cs.tier.Store(newTier(sys.Table.Current()))
	cs.ctl.init(sys.Cfg)
	sys.Ext = cs
	sys.PostCommit = cs.postCommit
	sys.FlushWakeups = cs.flushWakeups
	return cs
}

// For returns the runtime attached to the transaction's system.
func For(tx *tm.Tx) *CondSync {
	cs, ok := tx.Sys.Ext.(*CondSync)
	if !ok {
		panic("core: condition synchronization not enabled on this system (call core.Enable)")
	}
	return cs
}

// shardsOf maps a waitset to the deduplicated, ascending set of
// waiter-index shards covering its addresses under view v. Ascending
// order matters: every multi-shard lock acquisition in this package goes
// low-to-high, which (together with the migration locking every shard the
// same way) rules out deadlock.
func (cs *CondSync) shardsOf(v locktable.View, ws []tm.AddrVal) []uint32 {
	if len(ws) == 0 {
		return nil
	}
	tbl := cs.sys.Table
	slots := make([]uint32, len(ws))
	for i := range ws {
		slots[i] = tbl.IndexOf(ws[i].Addr)
	}
	return v.StripesOf(slots, nil)
}

// lockShards acquires the waiter-index shard locks for the given
// ascending stripe set. If any shard was migrated to a newer tier it
// releases everything acquired and reports false: the caller must reload
// the current tier and retry. Holding every covering lock at once (rather
// than one at a time) means a mutation is atomic with respect to the
// migration, which takes all of a generation's locks — a waiter can never
// be half-inserted when its shards are carried to a new geometry.
//
//tm:lockorder-checked
func (ti *tier) lockShards(ss []uint32) bool {
	for i, s := range ss {
		sh := &ti.shards[s].waiterShard
		sh.mu.Lock()
		if sh.moved {
			for j := i; j >= 0; j-- {
				ti.shards[ss[j]].mu.Unlock()
			}
			return false
		}
	}
	return true
}

func (ti *tier) unlockShards(ss []uint32) {
	for _, s := range ss {
		ti.shards[s].mu.Unlock()
	}
}

// lockOrigShards / unlockOrigShards are lockShards for the Retry-Orig
// registry shards.
//
//tm:lockorder-checked
func (ti *tier) lockOrigShards(ss []uint32) bool {
	for i, s := range ss {
		sh := &ti.origShards[s].origShard
		sh.mu.Lock()
		if sh.moved {
			for j := i; j >= 0; j-- {
				ti.origShards[ss[j]].mu.Unlock()
			}
			return false
		}
	}
	return true
}

func (ti *tier) unlockOrigShards(ss []uint32) {
	for _, s := range ss {
		ti.origShards[s].mu.Unlock()
	}
}

// insert publishes a waiter: indexed waiters register on every shard their
// waitset touches under the current stripe geometry (a writer that changes
// a waitset value necessarily writes an address covered by one of those
// stripes, so no wakeup can be missed); waiters without a waitset go to
// the unindexed list scanned by every committing writer.
//
//tm:lockorder-checked
func (cs *CondSync) insert(w *Waiter) {
	if len(w.Waitset) == 0 {
		cs.mu.Lock()
		cs.waiters = append(cs.waiters, w)
		cs.mu.Unlock()
		return
	}
	for {
		ti := cs.tier.Load()
		ss := cs.shardsOf(ti.view, w.Waitset)
		if !ti.lockShards(ss) {
			continue
		}
		for _, s := range ss {
			sh := &ti.shards[s].waiterShard
			sh.waiters = append(sh.waiters, w)
		}
		ti.unlockShards(ss)
		return
	}
}

func removeFrom(ws []*Waiter, w *Waiter) []*Waiter {
	for i, x := range ws {
		if x == w {
			ws[i] = ws[len(ws)-1]
			ws[len(ws)-1] = nil
			return ws[:len(ws)-1]
		}
	}
	return ws
}

// remove withdraws a waiter from the current tier. If the waiter was
// inserted under an older geometry, the migration has carried it (still
// asleep) into the current tier's shards — recomputing the shard set from
// the waitset finds it there; a waiter whose wakeup was already claimed
// when a migration ran was dropped by it, making this a no-op.
//
//tm:lockorder-checked
func (cs *CondSync) remove(w *Waiter) {
	if len(w.Waitset) == 0 {
		cs.mu.Lock()
		cs.waiters = removeFrom(cs.waiters, w)
		cs.mu.Unlock()
		return
	}
	for {
		ti := cs.tier.Load()
		ss := cs.shardsOf(ti.view, w.Waitset)
		if !ti.lockShards(ss) {
			continue
		}
		for _, s := range ss {
			sh := &ti.shards[s].waiterShard
			sh.waiters = removeFrom(sh.waiters, w)
		}
		ti.unlockShards(ss)
		return
	}
}

// snapshotShard makes the shallow copy of one shard's waiting list that
// wakeWaiters iterates (Algorithm 4, wakeWaiters line 1), avoiding
// contention with concurrent inserts while predicates are evaluated.
//
//tm:lockorder-checked
func (sh *waiterShard) snapshot() []*Waiter {
	sh.mu.Lock()
	if len(sh.waiters) == 0 {
		sh.mu.Unlock()
		return nil
	}
	out := make([]*Waiter, len(sh.waiters))
	copy(out, sh.waiters)
	sh.mu.Unlock()
	return out
}

// snapshotUnindexed copies the unindexed (no-waitset) waiting list.
//
//tm:lockorder-checked
func (cs *CondSync) snapshotUnindexed() []*Waiter {
	cs.mu.Lock()
	if len(cs.waiters) == 0 {
		cs.mu.Unlock()
		return nil
	}
	out := make([]*Waiter, len(cs.waiters))
	copy(out, cs.waiters)
	cs.mu.Unlock()
	return out
}

// WaitingLen reports the current number of distinct published waiters
// (tests). A waiter whose waitset spans several stripes is registered on
// each, so the shard lists are deduplicated.
//
//tm:lockorder-checked
func (cs *CondSync) WaitingLen() int {
	seen := make(map[*Waiter]struct{})
	cs.mu.Lock()
	for _, w := range cs.waiters {
		seen[w] = struct{}{}
	}
	cs.mu.Unlock()
	ti := cs.tier.Load()
	for i := range ti.shards {
		sh := &ti.shards[i].waiterShard
		sh.mu.Lock()
		for _, w := range sh.waiters {
			seen[w] = struct{}{}
		}
		sh.mu.Unlock()
	}
	return len(seen)
}

// OrigWaitingLen reports the current number of distinct live (unclaimed)
// Retry-Orig registry entries (tests). An entry whose read set spans
// several stripes is registered on each shard, so the lists are
// deduplicated; entries already claimed by a waker but not yet purged do
// not count.
//
//tm:lockorder-checked
func (cs *CondSync) OrigWaitingLen() int {
	seen := make(map[*origWaiter]struct{})
	ti := cs.tier.Load()
	for i := range ti.origShards {
		sh := &ti.origShards[i].origShard
		sh.mu.Lock()
		for _, ow := range sh.waiters {
			if !ow.woken.Load() {
				seen[ow] = struct{}{}
			}
		}
		sh.mu.Unlock()
	}
	return len(seen)
}

// postCommit is installed as the system's PostCommit hook; it runs on the
// committing thread strictly after the writer's effects are visible, with
// the attempt's lock set and write-stripe set captured by the driver (so
// neither OnCommit callbacks nor the nested predicate transactions below
// can clobber them).
//
// Both halves of the wakeup — the Deschedule waiter index and the
// Retry-Orig registry — accumulate their claimed waiters into one
// per-commit batch, and every semaphore signal is issued after the last
// shard lock has been released: the per-commit form of Algorithm 4's
// deferred semaphore operations. Config.UnbatchedWakeups reverts to
// signal-at-claim delivery for measurement; the observable outcome is
// identical either way.
func (cs *CondSync) postCommit(t *tm.Thread, gen uint64, writeOrecs, writeStripes []uint32) {
	if k := cs.sys.Cfg.CoalesceCommits; k > 0 {
		// Cross-commit coalescing (see coalesce.go): defer this commit's
		// scan into the thread's pending buffer and flush here only when
		// the buffer reaches K commits. A read-back hit noted during THIS
		// attempt is cleared, not flushed: the attempt ended in a writer
		// commit, so the K bound governs it — a read-modify-write loop
		// necessarily re-reads its own pending stripes every iteration,
		// and flushing on that would quietly reduce every K to one. The
		// remaining bounds (block, abort, read-only attempts that read a
		// pending stripe, teardown) flush through the FlushWakeups hook,
		// and a buffer that has outlived CoalesceMaxDelay flushes right
		// here — the commit boundary's cheap age comparison. A commit
		// that leaves a fresh buffer pending arms the backstop drainer,
		// the only flush path left for an owner that goes idle.
		first, commits, overdue := cs.accumulate(t, gen, writeOrecs, writeStripes)
		t.PendingReadHit.Store(false)
		switch {
		case commits >= k:
			cs.flushPending(t, &cs.sys.Stats.FlushReasonK)
		case overdue:
			cs.flushPending(t, &cs.sys.Stats.FlushReasonAge)
		default:
			cs.sys.Stats.CoalescedScans.Add(1)
			if first {
				cs.ensureBackstop()
			}
		}
		cs.maybeAdapt()
		return
	}
	var batch sem.Batch
	cs.wakeWaiters(t, gen, writeOrecs, writeStripes, &batch)
	cs.origWake(writeOrecs, &batch)
	if n := batch.SignalAll(); n > 0 {
		cs.sys.Stats.BatchedSignals.Add(uint64(n))
	}
	cs.maybeAdapt()
}

// deliver routes one claimed waiter's wakeup: into the per-commit batch by
// default, or straight to the semaphore under Config.UnbatchedWakeups.
func (cs *CondSync) deliver(batch *sem.Batch, s *sem.Sem) {
	if cs.sys.Cfg.UnbatchedWakeups {
		s.Signal()
		return
	}
	batch.Add(s)
}

// wakeWaiters implements the bottom half of Algorithm 4, indexed by
// stripe: visit the waiter shards of exactly the stripes the committed
// write set touched — a waiter whose waitset is disjoint from the write
// set shares no stripe with it and is never examined — plus the unindexed
// list. Should a writer commit ever fail to record its stripes, fall back
// to scanning every shard rather than risk a lost wakeup.
//
// The scan runs against the tier current at scan time, which may be a
// different generation than the commit's: engines abort stale-generation
// writers at commit time, but a resize can still land between an
// attempt's generation check and this scan. Mismatches are handled
// conservatively — the touched stripes are re-derived from the lock set
// under the scan tier's geometry, or everything is scanned when the
// engine recorded no orecs (the HTM serial fallback). Scanning a tier
// that has since been migrated away from is also safe: its lists are left
// intact by the migration, so they still contain every waiter published
// before this commit's writes became visible, and a waiter published
// later (necessarily into a newer tier) re-checked its predicate after
// those writes were already visible.
func (cs *CondSync) wakeWaiters(t *tm.Thread, gen uint64, writeOrecs, touched []uint32, batch *sem.Batch) {
	ti := cs.tier.Load()
	var stripeBuf [16]uint32
	if gen != ti.view.Gen {
		if len(writeOrecs) > 0 {
			touched = ti.view.StripesOf(writeOrecs, stripeBuf[:0])
		} else {
			touched = nil
		}
	}
	if len(touched) == 0 {
		cs.wakeAllShards(t, ti, batch)
		return
	}
	var seen map[*Waiter]struct{}
	for _, s := range touched {
		for _, w := range ti.shards[s].snapshot() {
			if len(touched) > 1 {
				// The waiter may be registered on several touched
				// stripes: visit once.
				if seen == nil {
					seen = make(map[*Waiter]struct{}, 8)
				}
				if _, dup := seen[w]; dup {
					continue
				}
				seen[w] = struct{}{}
			}
			cs.tryWake(t, w, batch)
		}
	}
	for _, w := range cs.snapshotUnindexed() {
		cs.tryWake(t, w, batch)
	}
}

// wakeAllShards is the conservative full scan (also the exact behaviour of
// a one-stripe table).
func (cs *CondSync) wakeAllShards(t *tm.Thread, ti *tier, batch *sem.Batch) {
	for i := range ti.shards {
		for _, w := range ti.shards[i].snapshot() {
			cs.tryWake(t, w, batch)
		}
	}
	for _, w := range cs.snapshotUnindexed() {
		cs.tryWake(t, w, batch)
	}
}

// tryWake evaluates one sleeping waiter's predicate in a fresh (read-only,
// hardware-friendly) transaction; if the waiter should wake, claim it with
// a CAS and hand its semaphore to the per-commit batch (the claim makes
// the wakeup this commit's responsibility; the signal itself is deferred
// until every shard has been scanned — Algorithm 4 line 9, applied
// per commit rather than per waiter).
func (cs *CondSync) tryWake(t *tm.Thread, w *Waiter, batch *sem.Batch) {
	if !w.asleep.Load() {
		return
	}
	cs.sys.Stats.WakeChecks.Add(1)
	should := false
	t.Atomic(func(tx *tm.Tx) {
		should = w.asleep.Load() && w.Pred(tx, w.Args)
	})
	if should && w.asleep.CompareAndSwap(true, false) {
		cs.deliver(batch, w.Thr.Sem)
	}
}

// origWake implements Algorithm 1's TxCommit lines 10–15 over the sharded
// registry: intersect the just-committed writer's lock set with each
// sleeping transaction's read metadata and wake on overlap. Only the
// registry shards of stripes the lock set covers are visited — an entry
// sharing no stripe with the lock set cannot intersect it orec-by-orec,
// so skipping its shard loses nothing. Entries claimed through another
// shard (or withdrawn by their owner) are purged in passing.
//
//tm:lockorder-checked
func (cs *CondSync) origWake(writeOrecs []uint32, batch *sem.Batch) {
	if len(writeOrecs) == 0 {
		return
	}
	// The covering stripes are always derived here, under the scan tier's
	// own geometry, so the scan and the registry agree on what a stripe
	// means regardless of which generation the writer committed under.
	ti := cs.tier.Load()
	var stripeBuf [16]uint32
	stripes := ti.view.StripesOf(writeOrecs, stripeBuf[:0])
	checks := 0
	for _, s := range stripes {
		sh := &ti.origShards[s].origShard
		sh.mu.Lock()
		for i := 0; i < len(sh.waiters); {
			ow := sh.waiters[i]
			if ow.woken.Load() {
				sh.waiters = removeOrigAt(sh.waiters, i)
				continue
			}
			checks++
			hit := false
			for _, idx := range writeOrecs {
				if _, ok := ow.orecs[idx]; ok {
					hit = true
					break
				}
			}
			if hit && ow.woken.CompareAndSwap(false, true) {
				sh.waiters = removeOrigAt(sh.waiters, i)
				cs.deliver(batch, ow.thr.Sem)
				continue
			}
			i++
		}
		sh.mu.Unlock()
	}
	if checks > 0 {
		cs.sys.Stats.OrigShardChecks.Add(uint64(checks))
	}
}

// removeOrigAt removes index i from a registry shard's list (order is not
// meaningful; swap with the tail).
func removeOrigAt(ws []*origWaiter, i int) []*origWaiter {
	ws[i] = ws[len(ws)-1]
	ws[len(ws)-1] = nil
	return ws[:len(ws)-1]
}

// origWithdraw removes an entry from every registry shard covering its
// read set under the current tier, first racing any concurrent waker for
// the entry's single wakeup (the claim also stops a concurrent migration
// from carrying the entry to a newer tier). If the entry wins, no signal
// is in flight and the withdrawal is silent; if a waker won, its token
// may already be buffered — or may still be sitting in the waker's batch
// — so the best-effort drain here is backstopped by the drain at the
// start of the next sleep cycle.
func (cs *CondSync) origWithdraw(ow *origWaiter) {
	claimed := !ow.woken.CompareAndSwap(false, true)
	for {
		ti := cs.tier.Load()
		ss := ti.view.StripesOf(ow.slots, nil)
		if !ti.lockOrigShards(ss) {
			continue
		}
		for _, s := range ss {
			sh := &ti.origShards[s].origShard
			for i, x := range sh.waiters {
				if x == ow {
					sh.waiters = removeOrigAt(sh.waiters, i)
					break
				}
			}
		}
		ti.unlockOrigShards(ss)
		break
	}
	if claimed {
		ow.thr.Sem.TryDrain()
	}
}

// deschedSignal unwinds a transaction that must be descheduled. By the
// time Handle runs the driver has rolled the attempt back and reset the
// descriptor, so memory is indistinguishable from the transaction never
// having run; what remains is the publish / double-check / sleep protocol
// of Algorithm 4. The attempt's allocations travel in the signal
// (captured-memory rule: the waitset may name them, so their undo is
// deferred until after wakeup).
type deschedSignal struct {
	cs       *CondSync
	w        *Waiter
	deferred [][]uint64 // allocations to undo after wakeup
}

func (s deschedSignal) Handle(tx *tm.Tx) tm.Outcome {
	cs, w := s.cs, s.w
	cs.sys.Stats.Deschedules.Add(1)
	deferred := s.deferred

	// Discard any token left over from an earlier sleep cycle BEFORE this
	// cycle becomes claimable. A claim-winning waker whose (batched)
	// signal landed after the previous cycle's best-effort drain would
	// otherwise satisfy this cycle's Wait immediately, waking the waiter
	// with a predicate that does not hold.
	tx.Thr.Sem.TryDrain()
	w.asleep.Store(true)
	cs.insert(w)

	// Double-check the precondition in a fresh outermost transaction. The
	// waiter is already published, so a writer that commits after this
	// evaluation is guaranteed to observe it — no lost wakeups.
	hold := false
	tx.Thr.Atomic(func(chk *tm.Tx) {
		hold = w.Pred(chk, w.Args)
	})

	if hold {
		cs.remove(w)
		if !w.asleep.CompareAndSwap(true, false) {
			// A racing writer claimed the wakeup; its token may already
			// be buffered, or may still be waiting in the writer's
			// signal batch. Discard what has arrived; the drain at the
			// start of the next sleep cycle catches a late token.
			tx.Thr.Sem.TryDrain()
		}
	} else {
		cs.sys.SemWait(tx.Thr.Sem)
		// Clear the claim flag ourselves: if the consumed token was stale
		// (a pre-drain waker's signal landing mid-cycle), no waker has
		// CASed asleep for THIS cycle, and leaving it set would let a
		// waker holding a stale registry snapshot claim — and signal — a
		// waiter that has already departed.
		w.asleep.Store(false)
		cs.sys.Stats.Wakeups.Add(1)
		cs.remove(w)
	}

	// On wakeup, finally undo the deferred allocations and restart the
	// parent transaction from its checkpoint with fresh scheduling state.
	cs.sys.FreeBlocks(deferred)
	tx.Attempts = 0
	tx.WantSoftware = false
	tx.IsRetry = false
	return tm.OutcomeRetryNow
}

// findChanges is Algorithm 5's wakeup predicate: the waiter should resume
// iff some address in its waitset no longer holds the value the failed
// attempt observed. Reads go through the transaction so the evaluation is
// consistent (and, under HTM, subject to ordinary conflict detection).
func findChanges(w *Waiter) Pred {
	return func(tx *tm.Tx, _ []uint64) bool {
		for _, av := range w.Waitset {
			if tx.Read(av.Addr) != av.Val {
				return true
			}
		}
		return false
	}
}

// Retry implements Algorithm 5. A first call inside an uninstrumented
// attempt restarts the transaction in a mode that logs an address/value
// pair on every read (hardware transactions additionally switch to the
// serial software mode, since HTM lacks escape actions); the re-executed
// attempt reaches Retry with a populated waitset and deschedules on
// findChanges.
func Retry(tx *tm.Tx) {
	cs := For(tx)
	if tx.Mode == tm.ModeHW {
		// Ensure software mode (Algorithm 5 line 1); the switch doubles as
		// backoff: the software re-execution may discover its precondition
		// was established concurrently and never reach Retry again.
		tx.WantSoftware = true
		tx.RestartTagged()
	}
	if !tx.IsRetry {
		tx.RestartTagged()
	}
	tx.IsRetry = false
	w := &Waiter{
		Thr:     tx.Thr,
		Waitset: append([]tm.AddrVal(nil), tx.Waitset...),
	}
	w.Pred = findChanges(w)
	panic(deschedSignal{cs: cs, w: w, deferred: tx.TakeMallocs()})
}

// Await implements Algorithm 6: wait until any of the given addresses —
// which the transaction must already have read — changes value. The
// engine's AwaitSnapshot undoes speculative writes (holding locks where
// read-for-write demands it) and logs the committed values; hardware
// transactions first restart in software mode.
func Await(tx *tm.Tx, addrs ...*uint64) {
	cs := For(tx)
	if tx.Mode == tm.ModeHW {
		tx.RestartSoftware()
	}
	tx.ResetWaitset()
	tx.Sys.Engine.AwaitSnapshot(tx, addrs)
	w := &Waiter{
		Thr:     tx.Thr,
		Waitset: append([]tm.AddrVal(nil), tx.Waitset...),
	}
	w.Pred = findChanges(w)
	panic(deschedSignal{cs: cs, w: w, deferred: tx.TakeMallocs()})
}

// WaitPred implements Algorithm 7: deschedule until the user-supplied
// predicate holds. The arguments are marshalled into the waiter (they
// cannot live in transactional memory, whose writes are about to be
// undone). By default a hardware transaction re-executes in software mode
// first; with Config.HTMWaitPredFastPath the simulator models the 8-bit
// abort-code trick of §2.2.6 and deschedules directly from the hardware
// abort.
func WaitPred(tx *tm.Tx, pred Pred, args ...uint64) {
	cs := For(tx)
	if tx.Mode == tm.ModeHW && !fastPathEnabled(tx) {
		tx.RestartSoftware()
	}
	w := &Waiter{
		Thr:  tx.Thr,
		Pred: pred,
		Args: append([]uint64(nil), args...),
	}
	panic(deschedSignal{cs: cs, w: w, deferred: tx.TakeMallocs()})
}

func fastPathEnabled(tx *tm.Tx) bool {
	return tx.Sys.Cfg.HTMWaitPredFastPath
}

// origSignal implements the sleep half of Algorithm 1, carrying the read
// metadata captured when Retry was called (the descriptor is reset before
// Handle runs). slots duplicates the orecs keys as a slice so Handle can
// group them by registry shard without re-walking the map.
type origSignal struct {
	cs    *CondSync
	start uint64
	orecs map[uint32]struct{}
	slots []uint32
}

// RetryOrig implements the original Retry mechanism (Algorithm 1), the
// good-faith adaptation of Harris et al.'s STM retry: publish the
// transaction's read-set *metadata* (orec slots) atomically with
// validation, and rely on every committing writer intersecting its lock
// set against all sleepers. It requires STM metadata and therefore
// supports neither hardware nor serial HTM modes.
func RetryOrig(tx *tm.Tx) {
	cs := For(tx)
	if tx.Mode != tm.ModeSTM {
		panic("core: RetryOrig requires an STM engine (no HTM support, §2.1)")
	}
	orecs := make(map[uint32]struct{}, len(tx.Reads))
	for i := range tx.Reads {
		orecs[tx.Reads[i].Orec] = struct{}{}
	}
	slots := make([]uint32, 0, len(orecs))
	for idx := range orecs {
		slots = append(slots, idx)
	}
	panic(origSignal{cs: cs, start: tx.Start, orecs: orecs, slots: slots})
}

func (s origSignal) Handle(tx *tm.Tx) tm.Outcome {
	cs := s.cs
	tbl := cs.sys.Table
	cs.sys.Stats.Deschedules.Add(1)
	// Discard any stale token from an earlier sleep cycle before this
	// cycle's registry entry becomes claimable (same rationale as the
	// Deschedule path: a late batched signal must not satisfy a later
	// cycle's Wait).
	tx.Thr.Sem.TryDrain()

	// Atomically with validation, add the calling transaction to the
	// waiting list (Algorithm 1, Retry lines 3–8): every registry shard
	// covering the read set is locked at once, the orecs are validated,
	// and the entry inserted under those locks — each of which is exactly
	// a lock some committing writer to those orecs must take before
	// scanning. So per stripe, either the insertion precedes the writer's
	// scan (the scan finds the entry and wakes it) or the writer's
	// version bump precedes the validation (which then fails and
	// restarts); and because the locks are held together, a stripe resize
	// can never observe a half-inserted entry — the migration takes every
	// shard lock of the generation before carrying entries over. The
	// driver has already undone writes and released locks "as if the
	// transaction never ran", so a valid read is one whose orec is
	// unlocked at a version no newer than the transaction's start.
	ow := &origWaiter{thr: tx.Thr, orecs: s.orecs, slots: s.slots}
	for {
		ti := cs.tier.Load()
		ss := ti.view.StripesOf(s.slots, nil)
		if !ti.lockOrigShards(ss) {
			continue
		}
		valid := true
		for _, idx := range s.slots {
			w := tbl.Get(idx)
			if locktable.Locked(w) || locktable.Version(w) > s.start {
				// A concurrent modification means re-execution may
				// already be profitable; restart instead of risking a
				// missed wakeup.
				valid = false
				break
			}
		}
		if valid {
			for _, st := range ss {
				sh := &ti.origShards[st].origShard
				sh.waiters = append(sh.waiters, ow)
			}
		}
		ti.unlockOrigShards(ss)
		if !valid {
			return tm.OutcomeRetryNow
		}
		break
	}

	cs.sys.SemWait(tx.Thr.Sem)
	cs.sys.Stats.Wakeups.Add(1)
	// Deregister: the claiming waker removed the entry from the shard it
	// scanned, but entries on the entry's other stripes — or, after a
	// spurious (stale-token) wakeup, on every stripe — remain. The
	// withdrawal also self-claims on a spurious wakeup, so no snapshot-
	// holding waker can signal this departed entry.
	cs.origWithdraw(ow)
	tx.Attempts = 0
	return tm.OutcomeRetryNow
}
