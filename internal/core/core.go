// Package core implements the paper's contribution: the Deschedule
// abstract mechanism for condition synchronization among transactions
// (Algorithm 4), the three language-level constructs built on it —
// Retry (Algorithm 5), Await (Algorithm 6), and WaitPred (Algorithm 7) —
// and, for comparison, the original metadata-based Retry of Harris et al.
// (Algorithm 1, "Retry-Orig").
//
// The design follows §2.2: a thread wishing to delay itself rolls its
// transaction back completely, publishes a predicate f and parameters p
// into a registry of waiting threads, double-checks f(p) in a fresh
// transaction, and sleeps on a private semaphore. After any writer
// commits, wakeWaiters re-evaluates each sleeping waiter's predicate —
// a read-only computation over shared memory, performed strictly after
// commit — and signals threads whose preconditions now hold. Wakeup is
// value-based, so silent stores never wake a waiter.
package core

import (
	"sync/atomic"

	"tmsync/internal/locktable"
	"tmsync/internal/spin"
	"tmsync/internal/tm"
)

// Pred is a wakeup predicate evaluated inside a (read-only) transaction.
// It must not write shared memory and must not itself call Retry, Await,
// WaitPred, or condition-variable waits.
type Pred func(tx *tm.Tx, args []uint64) bool

// Waiter is one published deschedule request. A fresh Waiter is created
// per deschedule so that late wakeWaiters scans holding a stale snapshot
// of the registry only ever observe immutable fields.
type Waiter struct {
	Thr     *tm.Thread
	Pred    Pred
	Args    []uint64
	Waitset []tm.AddrVal

	// asleep is true from publication until a waker (or the waiter
	// itself, deciding not to sleep) claims the wakeup with a CAS;
	// exactly one Signal is issued per sleep cycle.
	asleep atomic.Bool
}

// origWaiter is a Retry-Orig registry entry (Algorithm 1): the sleeping
// transaction's read-set metadata, to be intersected with committing
// writers' lock sets.
type origWaiter struct {
	thr   *tm.Thread
	orecs map[uint32]struct{}
}

// CondSync is the condition-synchronization runtime attached to one
// tm.System.
type CondSync struct {
	sys *tm.System

	mu      spin.Lock
	waiters []*Waiter

	// The original Retry mechanism uses a single global lock to make
	// read-set validation atomic with insertion (Algorithm 1 uses the
	// same simplification).
	origMu      spin.Lock
	origWaiters []*origWaiter
}

// Enable attaches a condition-synchronization runtime to sys and installs
// the post-commit wakeWaiters hook. It must be called once, before any
// transactions run.
func Enable(sys *tm.System) *CondSync {
	cs := &CondSync{sys: sys}
	sys.Ext = cs
	sys.PostCommit = cs.postCommit
	return cs
}

// For returns the runtime attached to the transaction's system.
func For(tx *tm.Tx) *CondSync {
	cs, ok := tx.Sys.Ext.(*CondSync)
	if !ok {
		panic("core: condition synchronization not enabled on this system (call core.Enable)")
	}
	return cs
}

func (cs *CondSync) insert(w *Waiter) {
	cs.mu.Lock()
	cs.waiters = append(cs.waiters, w)
	cs.mu.Unlock()
}

func (cs *CondSync) remove(w *Waiter) {
	cs.mu.Lock()
	for i, x := range cs.waiters {
		if x == w {
			cs.waiters[i] = cs.waiters[len(cs.waiters)-1]
			cs.waiters = cs.waiters[:len(cs.waiters)-1]
			break
		}
	}
	cs.mu.Unlock()
}

// snapshot makes the shallow copy of the waiting list that wakeWaiters
// iterates (Algorithm 4, wakeWaiters line 1), avoiding contention with
// concurrent inserts while predicates are evaluated.
func (cs *CondSync) snapshot() []*Waiter {
	cs.mu.Lock()
	if len(cs.waiters) == 0 {
		cs.mu.Unlock()
		return nil
	}
	out := make([]*Waiter, len(cs.waiters))
	copy(out, cs.waiters)
	cs.mu.Unlock()
	return out
}

// WaitingLen reports the current number of published waiters (tests).
func (cs *CondSync) WaitingLen() int {
	cs.mu.Lock()
	n := len(cs.waiters)
	cs.mu.Unlock()
	return n
}

// postCommit is installed as the system's PostCommit hook; it runs on the
// committing thread strictly after the writer's effects are visible.
func (cs *CondSync) postCommit(t *tm.Thread) {
	cs.wakeWaiters(t)
	cs.origWake(t)
}

// wakeWaiters implements the bottom half of Algorithm 4: for each entry in
// a snapshot of the waiting list, evaluate its predicate in a fresh
// (read-only, hardware-friendly) transaction; if the waiter should wake,
// claim it with a CAS and signal its semaphore outside the transaction
// (deferred semaphore operations, line 9).
func (cs *CondSync) wakeWaiters(t *tm.Thread) {
	for _, w := range cs.snapshot() {
		if !w.asleep.Load() {
			continue
		}
		should := false
		t.Atomic(func(tx *tm.Tx) {
			should = w.asleep.Load() && w.Pred(tx, w.Args)
		})
		if should && w.asleep.CompareAndSwap(true, false) {
			w.Thr.Sem.Signal()
		}
	}
}

// origWake implements Algorithm 1's TxCommit lines 10–15: intersect the
// just-committed writer's lock set with each sleeping transaction's read
// metadata and wake on overlap.
func (cs *CondSync) origWake(t *tm.Thread) {
	if len(t.LastWriteOrecs) == 0 {
		return
	}
	cs.origMu.Lock()
	if len(cs.origWaiters) == 0 {
		cs.origMu.Unlock()
		return
	}
	for i := 0; i < len(cs.origWaiters); {
		ow := cs.origWaiters[i]
		hit := false
		for _, idx := range t.LastWriteOrecs {
			if _, ok := ow.orecs[idx]; ok {
				hit = true
				break
			}
		}
		if hit {
			cs.origWaiters[i] = cs.origWaiters[len(cs.origWaiters)-1]
			cs.origWaiters = cs.origWaiters[:len(cs.origWaiters)-1]
			ow.thr.Sem.Signal()
		} else {
			i++
		}
	}
	cs.origMu.Unlock()
}

// deschedSignal unwinds a transaction that must be descheduled. By the
// time Handle runs the driver has rolled the attempt back and reset the
// descriptor, so memory is indistinguishable from the transaction never
// having run; what remains is the publish / double-check / sleep protocol
// of Algorithm 4. The attempt's allocations travel in the signal
// (captured-memory rule: the waitset may name them, so their undo is
// deferred until after wakeup).
type deschedSignal struct {
	cs       *CondSync
	w        *Waiter
	deferred [][]uint64 // allocations to undo after wakeup
}

func (s deschedSignal) Handle(tx *tm.Tx) tm.Outcome {
	cs, w := s.cs, s.w
	cs.sys.Stats.Deschedules.Add(1)
	deferred := s.deferred

	w.asleep.Store(true)
	cs.insert(w)

	// Double-check the precondition in a fresh outermost transaction. The
	// waiter is already published, so a writer that commits after this
	// evaluation is guaranteed to observe it — no lost wakeups.
	hold := false
	tx.Thr.Atomic(func(chk *tm.Tx) {
		hold = w.Pred(chk, w.Args)
	})

	if hold {
		cs.remove(w)
		if !w.asleep.CompareAndSwap(true, false) {
			// A racing writer claimed the wakeup; its token may already
			// be buffered. Discarding it here is best-effort — a token
			// that lands later merely causes one harmless spurious
			// wakeup on the next sleep (§2.2, accidental wakeups).
			tx.Thr.Sem.TryDrain()
		}
	} else {
		tx.Thr.Sem.Wait()
		cs.sys.Stats.Wakeups.Add(1)
		cs.remove(w)
	}

	// On wakeup, finally undo the deferred allocations and restart the
	// parent transaction from its checkpoint with fresh scheduling state.
	cs.sys.FreeBlocks(deferred)
	tx.Attempts = 0
	tx.WantSoftware = false
	tx.IsRetry = false
	return tm.OutcomeRetryNow
}

// findChanges is Algorithm 5's wakeup predicate: the waiter should resume
// iff some address in its waitset no longer holds the value the failed
// attempt observed. Reads go through the transaction so the evaluation is
// consistent (and, under HTM, subject to ordinary conflict detection).
func findChanges(w *Waiter) Pred {
	return func(tx *tm.Tx, _ []uint64) bool {
		for _, av := range w.Waitset {
			if tx.Read(av.Addr) != av.Val {
				return true
			}
		}
		return false
	}
}

// Retry implements Algorithm 5. A first call inside an uninstrumented
// attempt restarts the transaction in a mode that logs an address/value
// pair on every read (hardware transactions additionally switch to the
// serial software mode, since HTM lacks escape actions); the re-executed
// attempt reaches Retry with a populated waitset and deschedules on
// findChanges.
func Retry(tx *tm.Tx) {
	cs := For(tx)
	if tx.Mode == tm.ModeHW {
		// Ensure software mode (Algorithm 5 line 1); the switch doubles as
		// backoff: the software re-execution may discover its precondition
		// was established concurrently and never reach Retry again.
		tx.WantSoftware = true
		tx.RestartTagged()
	}
	if !tx.IsRetry {
		tx.RestartTagged()
	}
	tx.IsRetry = false
	w := &Waiter{
		Thr:     tx.Thr,
		Waitset: append([]tm.AddrVal(nil), tx.Waitset...),
	}
	w.Pred = findChanges(w)
	panic(deschedSignal{cs: cs, w: w, deferred: tx.TakeMallocs()})
}

// Await implements Algorithm 6: wait until any of the given addresses —
// which the transaction must already have read — changes value. The
// engine's AwaitSnapshot undoes speculative writes (holding locks where
// read-for-write demands it) and logs the committed values; hardware
// transactions first restart in software mode.
func Await(tx *tm.Tx, addrs ...*uint64) {
	cs := For(tx)
	if tx.Mode == tm.ModeHW {
		tx.RestartSoftware()
	}
	tx.ResetWaitset()
	tx.Sys.Engine.AwaitSnapshot(tx, addrs)
	w := &Waiter{
		Thr:     tx.Thr,
		Waitset: append([]tm.AddrVal(nil), tx.Waitset...),
	}
	w.Pred = findChanges(w)
	panic(deschedSignal{cs: cs, w: w, deferred: tx.TakeMallocs()})
}

// WaitPred implements Algorithm 7: deschedule until the user-supplied
// predicate holds. The arguments are marshalled into the waiter (they
// cannot live in transactional memory, whose writes are about to be
// undone). By default a hardware transaction re-executes in software mode
// first; with Config.HTMWaitPredFastPath the simulator models the 8-bit
// abort-code trick of §2.2.6 and deschedules directly from the hardware
// abort.
func WaitPred(tx *tm.Tx, pred Pred, args ...uint64) {
	cs := For(tx)
	if tx.Mode == tm.ModeHW && !fastPathEnabled(tx) {
		tx.RestartSoftware()
	}
	w := &Waiter{
		Thr:  tx.Thr,
		Pred: pred,
		Args: append([]uint64(nil), args...),
	}
	panic(deschedSignal{cs: cs, w: w, deferred: tx.TakeMallocs()})
}

func fastPathEnabled(tx *tm.Tx) bool {
	return tx.Sys.Cfg.HTMWaitPredFastPath
}

// origSignal implements the sleep half of Algorithm 1, carrying the read
// metadata captured when Retry was called (the descriptor is reset before
// Handle runs).
type origSignal struct {
	cs    *CondSync
	start uint64
	orecs map[uint32]struct{}
}

// RetryOrig implements the original Retry mechanism (Algorithm 1), the
// good-faith adaptation of Harris et al.'s STM retry: publish the
// transaction's read-set *metadata* (orec slots) atomically with
// validation, and rely on every committing writer intersecting its lock
// set against all sleepers. It requires STM metadata and therefore
// supports neither hardware nor serial HTM modes.
func RetryOrig(tx *tm.Tx) {
	cs := For(tx)
	if tx.Mode != tm.ModeSTM {
		panic("core: RetryOrig requires an STM engine (no HTM support, §2.1)")
	}
	orecs := make(map[uint32]struct{}, len(tx.Reads))
	for i := range tx.Reads {
		orecs[tx.Reads[i].Orec] = struct{}{}
	}
	panic(origSignal{cs: cs, start: tx.Start, orecs: orecs})
}

func (s origSignal) Handle(tx *tm.Tx) tm.Outcome {
	cs := s.cs
	cs.sys.Stats.Deschedules.Add(1)
	// Atomically with validation, add the calling transaction to the
	// waiting list (Algorithm 1, Retry lines 3–8). The driver has already
	// undone writes and released locks "as if the transaction never ran",
	// so a valid read is one whose orec is unlocked at a version no newer
	// than the transaction's start.
	cs.origMu.Lock()
	for idx := range s.orecs {
		w := cs.sys.Table.Get(idx)
		if locktable.Locked(w) || locktable.Version(w) > s.start {
			// A concurrent modification means re-execution may already be
			// profitable; restart instead of risking a missed wakeup.
			cs.origMu.Unlock()
			return tm.OutcomeRetryNow
		}
	}
	ow := &origWaiter{thr: tx.Thr, orecs: s.orecs}
	cs.origWaiters = append(cs.origWaiters, ow)
	cs.origMu.Unlock()

	tx.Thr.Sem.Wait()
	cs.sys.Stats.Wakeups.Add(1)
	tx.Attempts = 0
	return tm.OutcomeRetryNow
}
