package core_test

// Regression tests for the batched post-commit wakeup path, the sharded
// Retry-Orig registry, and the stale-token / clobbered-capture wakeup
// races. Run under -race in CI: the per-commit signal batch, the woken/
// asleep claim CASes, and the per-shard validate-and-insert protocol are
// exactly what the race detector should vet.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmsync/internal/core"
	"tmsync/internal/stm/eager"
	"tmsync/internal/tm"
)

// TestStaleTokenDoesNotCauseSpuriousWakeup seeds a waiter's semaphore
// with a stale token (modelling a claim-winning waker from an earlier
// sleep cycle whose batched signal landed late) before the waiter
// deschedules. The drain at the start of the sleep cycle must discard the
// token: the waiter must stay asleep — with a false predicate it must not
// wake even once — until a real write establishes its precondition.
func TestStaleTokenDoesNotCauseSpuriousWakeup(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag uint64
		thr := sys.NewThread()
		thr.Sem.Signal() // stale token from a "previous cycle"
		done := make(chan struct{})
		go func() {
			defer close(done)
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&flag) == 0 {
					core.Retry(tx)
				}
			})
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
		time.Sleep(100 * time.Millisecond)
		if got := sys.Stats.Wakeups.Load(); got != 0 {
			t.Errorf("stale token caused %d spurious wakeup(s); it should have been drained", got)
		}
		if got := sys.Stats.Deschedules.Load(); got != 1 {
			t.Errorf("deschedules = %d, want 1 (no futile re-sleep cycles)", got)
		}
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke after the real write")
		}
	})
}

// TestStaleTokenDoesNotCauseSpuriousWakeupRetryOrig is the same reproducer
// for the Retry-Orig sleep path, which buffers its entry in the sharded
// registry instead of the waiter index.
func TestStaleTokenDoesNotCauseSpuriousWakeupRetryOrig(t *testing.T) {
	forEach(t, stmEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var flag uint64
		thr := sys.NewThread()
		thr.Sem.Signal() // stale token
		done := make(chan struct{})
		go func() {
			defer close(done)
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&flag) == 0 {
					core.RetryOrig(tx)
				}
			})
		}()
		waitCond(t, "orig waiter registered", func() bool { return cs.OrigWaitingLen() == 1 })
		time.Sleep(100 * time.Millisecond)
		if got := sys.Stats.Wakeups.Load(); got != 0 {
			t.Errorf("stale token caused %d spurious wakeup(s); it should have been drained", got)
		}
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&flag, 1) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("orig waiter never woke after the real write")
		}
		waitCond(t, "registry drained", func() bool { return cs.OrigWaitingLen() == 0 })
	})
}

// TestOnCommitTransactionDoesNotShrinkWakeScan is the lost-wakeup
// reproducer for the OnCommit clobbering window: a deferred commit
// callback that runs its own (committing) transaction on the same thread
// must not shrink the outer writer's post-commit wake scan. The waiter
// sleeps on a word in one stripe; the writer writes that word and defers
// a callback that commits a write to a word in a different stripe. Before
// the capture hardening, the callback's commit overwrote the thread's
// recorded write set, the outer wake scan visited only the callback's
// stripe, and the waiter wedged.
func TestOnCommitTransactionDoesNotShrinkWakeScan(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		addrs := disjointStripeAddrs(t, sys, 2)
		awaited, other := addrs[0], addrs[1]
		done := make(chan struct{})
		go func() {
			defer close(done)
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(awaited) == 0 {
					core.Await(tx, awaited)
				}
			})
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) {
			tx.Write(awaited, 1)
			tx.OnCommit = append(tx.OnCommit, func() {
				writer.Atomic(func(inner *tm.Tx) { inner.Write(other, 1) })
			})
		})
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("lost wakeup: the OnCommit callback's commit clobbered the outer writer's wake scan")
		}
	})
}

// TestBatchedSignalsExactlyOncePerCommit parks several waiters on the
// same word and releases them with a single commit: every claimable
// waiter must be signalled exactly once, all signals must flow through
// the per-commit batch, and no stray token may remain buffered on any
// waiter's semaphore afterwards. The waiters use an instrumented
// predicate so the test can wait until every waiter has finished its
// published double-check — i.e. is past the self-claim window and
// committed to sleeping — before the writer commits; otherwise a waiter
// caught between insert and double-check could legally claim its own
// wakeup and the exact batch count would be racy.
func TestBatchedSignalsExactlyOncePerCommit(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		const waiters = 5
		var word uint64
		var evals atomic.Uint64
		wordSet := func(tx *tm.Tx, _ []uint64) bool {
			evals.Add(1)
			return tx.Read(&word) != 0
		}
		thrs := make([]*tm.Thread, waiters)
		for i := range thrs {
			thrs[i] = sys.NewThread()
		}
		var woke atomic.Uint64
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(thr *tm.Thread) {
				defer wg.Done()
				thr.Atomic(func(tx *tm.Tx) {
					if tx.Read(&word) == 0 {
						core.WaitPred(tx, wordSet)
					}
				})
				woke.Add(1)
			}(thrs[i])
		}
		// Each waiter's deschedule evaluates the predicate once in its
		// double-check; word is still 0, so every check fails and the
		// waiter proceeds to sleep. evals >= waiters with all still
		// published means all are past the self-claim window.
		waitCond(t, "all waiters asleep", func() bool {
			return evals.Load() >= waiters && cs.WaitingLen() == waiters
		})

		batchedBefore := sys.Stats.BatchedSignals.Load()
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&word, 1) })

		// The PostCommit hook completes before Atomic returns, so the
		// batch for this commit has been issued in full here.
		delta := sys.Stats.BatchedSignals.Load() - batchedBefore
		if delta != waiters {
			t.Errorf("commit batched %d signals, want exactly %d (one per claimable waiter)", delta, waiters)
		}
		wg.Wait()
		if got := woke.Load(); got != waiters {
			t.Fatalf("%d waiters completed, want %d", got, waiters)
		}
		waitCond(t, "index drained", func() bool { return cs.WaitingLen() == 0 })
		for i, thr := range thrs {
			if thr.Sem.TryDrain() {
				t.Errorf("waiter %d finished with a stray buffered token (double signal)", i)
			}
		}
	})
}

// TestUnbatchedKnobBypassesBatch pins the measurement baseline: with
// Config.UnbatchedWakeups set, wakeups are delivered at claim time and
// the batch counter stays at zero, while observable behaviour (the waiter
// wakes) is unchanged.
func TestUnbatchedKnobBypassesBatch(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true, UnbatchedWakeups: true}, eager.New)
	cs := core.Enable(sys)
	var word uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		thr := sys.NewThread()
		thr.Atomic(func(tx *tm.Tx) {
			if tx.Read(&word) == 0 {
				core.Await(tx, &word)
			}
		})
	}()
	waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
	writer := sys.NewThread()
	writer.Atomic(func(tx *tm.Tx) { tx.Write(&word, 1) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("unbatched wakeup never arrived")
	}
	if got := sys.Stats.BatchedSignals.Load(); got != 0 {
		t.Errorf("batched_signals = %d with UnbatchedWakeups set, want 0", got)
	}
	if got := sys.Stats.Wakeups.Load(); got != 1 {
		t.Errorf("wakeups = %d, want 1", got)
	}
}

// TestOrigShardedTokenRing circulates one token around a ring of
// Retry-Orig workers under -race: every hand-off commit must wake exactly
// the successor through the sharded registry, with no lost wakeup at any
// point. The final token position and the registry's emptiness pin
// conservation.
func TestOrigShardedTokenRing(t *testing.T) {
	forEach(t, stmEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		const workers = 4
		passes := 50
		if testing.Short() {
			passes = 10
		}
		var slots [workers]uint64
		slots[0] = 1 // the token
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				thr := sys.NewThread()
				next := (i + 1) % workers
				for p := 0; p < passes; p++ {
					thr.Atomic(func(tx *tm.Tx) {
						if tx.Read(&slots[i]) == 0 {
							core.RetryOrig(tx)
						}
						tx.Write(&slots[i], 0)
						tx.Write(&slots[next], tx.Read(&slots[next])+1)
					})
				}
			}(i)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("token ring wedged: lost wakeup in the sharded Retry-Orig registry")
		}
		if slots[0] != 1 {
			t.Errorf("token did not return to slot 0: %v", slots)
		}
		for i := 1; i < workers; i++ {
			if slots[i] != 0 {
				t.Errorf("slot %d = %d, want 0 (token duplicated or stranded)", i, slots[i])
			}
		}
		waitCond(t, "registry drained", func() bool { return cs.OrigWaitingLen() == 0 })
	})
}
