package core_test

// Tests for the per-stripe waiter index: a committing writer must visit
// (and wake) exactly the waiters whose waitsets overlap its write set's
// stripes — no lost wakeups, no thundering herd — while unindexed
// (WaitPred) waiters remain visible to every commit. Run under -race in
// CI: the index's shard locks and the wake CAS protocol are exactly what
// the race detector should vet.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmsync/internal/core"
	"tmsync/internal/tm"
)

// disjointStripeAddrs picks n word addresses that map to pairwise distinct
// orec-table stripes.
func disjointStripeAddrs(t *testing.T, sys *tm.System, n int) []*uint64 {
	t.Helper()
	backing := make([]uint64, 4096)
	used := make(map[uint32]bool)
	var out []*uint64
	for i := range backing {
		s := sys.Table.StripeOf(sys.Table.IndexOf(&backing[i]))
		if used[s] {
			continue
		}
		used[s] = true
		out = append(out, &backing[i])
		if len(out) == n {
			return out
		}
	}
	t.Fatalf("found only %d of %d disjoint-stripe addresses", len(out), n)
	return nil
}

// TestWriterWakesExactlyOverlappingWaiters parks one waiter per stripe on
// disjoint stripes, then commits a single-address write: exactly the
// overlapping waiter must be visited and woken; the others must neither
// wake (no lost exclusivity) nor even be examined (no thundering herd).
func TestWriterWakesExactlyOverlappingWaiters(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		const waiters = 6
		addrs := disjointStripeAddrs(t, sys, waiters)
		if sys.Table.NumStripes() < waiters {
			t.Skipf("table has only %d stripes", sys.Table.NumStripes())
		}

		var woken [waiters]atomic.Bool
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				thr := sys.NewThread()
				thr.Atomic(func(tx *tm.Tx) {
					if tx.Read(addrs[i]) == 0 {
						core.Await(tx, addrs[i])
					}
					woken[i].Store(true)
				})
			}(i)
		}
		waitCond(t, "all waiters asleep", func() bool { return cs.WaitingLen() == waiters })

		checksBefore := sys.Stats.WakeChecks.Load()
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(addrs[0], 1) })

		// The PostCommit hook runs on the committing thread before Atomic
		// returns, so the scan for this commit is complete here.
		delta := sys.Stats.WakeChecks.Load() - checksBefore
		if delta != 1 {
			t.Errorf("writer commit visited %d waiters; the stripe index should visit exactly the 1 overlapping waiter", delta)
		}
		waitCond(t, "overlapping waiter woken", func() bool { return woken[0].Load() })
		waitCond(t, "non-overlapping waiters still parked", func() bool { return cs.WaitingLen() == waiters-1 })
		for i := 1; i < waiters; i++ {
			if woken[i].Load() {
				t.Errorf("waiter %d woke without any write to its stripe", i)
			}
		}

		// Release the rest; every waiter must eventually wake (no lost
		// wakeups through the sharded index).
		for i := 1; i < waiters; i++ {
			writer.Atomic(func(tx *tm.Tx) { tx.Write(addrs[i], 1) })
		}
		wg.Wait()
		for i := range woken {
			if !woken[i].Load() {
				t.Fatalf("waiter %d never woke", i)
			}
		}
		if n := cs.WaitingLen(); n != 0 {
			t.Fatalf("waiter index not drained: %d", n)
		}
	})
}

// TestMultiStripeWaitsetRegistersOnEachStripe parks one waiter whose
// waitset spans two stripes; a write to either stripe alone must wake it.
func TestMultiStripeWaitsetRegistersOnEachStripe(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		for _, wake := range []int{0, 1} {
			addrs := disjointStripeAddrs(t, sys, 2)
			done := make(chan struct{})
			go func() {
				defer close(done)
				thr := sys.NewThread()
				thr.Atomic(func(tx *tm.Tx) {
					if tx.Read(addrs[0]) == 0 && tx.Read(addrs[1]) == 0 {
						core.Await(tx, addrs[0], addrs[1])
					}
				})
			}()
			waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })
			writer := sys.NewThread()
			writer.Atomic(func(tx *tm.Tx) { tx.Write(addrs[wake], 1) })
			<-done
			waitCond(t, "index drained", func() bool { return cs.WaitingLen() == 0 })
		}
	})
}

// TestOrigWaiterWakesDespitePrecedingIndexedScan: the driver captures the
// writer's lock set and hands it to the PostCommit hook, so the nested
// read-only predicate transactions that wakeWaiters runs on the same
// thread must not be able to disturb it before origWake reads it. With a
// Deschedule waiter and a Retry-Orig waiter parked on the same word, the
// orig waiter must still see the intersection and wake.
func TestOrigWaiterWakesDespitePrecedingIndexedScan(t *testing.T) {
	forEach(t, stmEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		var word uint64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&word) == 0 {
					core.Await(tx, &word)
				}
			})
		}()
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(&word) == 0 {
					core.RetryOrig(tx)
				}
			})
		}()
		// WaitingLen counts only Deschedule waiters; give the orig waiter
		// time to publish through the deschedule counter instead.
		waitCond(t, "both waiters asleep", func() bool {
			return cs.WaitingLen() == 1 && sys.Stats.Deschedules.Load() >= 2
		})
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(&word, 1) })
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("orig waiter wedged: writer's lock set was lost before origWake ran")
		}
	})
}

// TestUnindexedWaiterVisitedByEveryCommit: a WaitPred waiter has no
// waitset, so it lives on the unindexed list and every committing writer
// must re-evaluate its predicate — even one whose write set shares no
// stripe with anything the predicate reads.
func TestUnindexedWaiterVisitedByEveryCommit(t *testing.T) {
	forEach(t, allEngines, func(t *testing.T, sys *tm.System, cs *core.CondSync) {
		addrs := disjointStripeAddrs(t, sys, 2)
		flag, unrelated := addrs[0], addrs[1]
		done := make(chan struct{})
		go func() {
			defer close(done)
			thr := sys.NewThread()
			thr.Atomic(func(tx *tm.Tx) {
				if tx.Read(flag) == 0 {
					core.WaitPred(tx, func(tx *tm.Tx, _ []uint64) bool {
						return tx.Read(flag) != 0
					})
				}
			})
		}()
		waitCond(t, "waiter asleep", func() bool { return cs.WaitingLen() == 1 })

		checksBefore := sys.Stats.WakeChecks.Load()
		writer := sys.NewThread()
		writer.Atomic(func(tx *tm.Tx) { tx.Write(unrelated, 7) })
		if sys.Stats.WakeChecks.Load() == checksBefore {
			t.Error("commit to an unrelated stripe skipped the unindexed waiter")
		}
		if cs.WaitingLen() != 1 {
			t.Fatal("unrelated commit woke the predicate waiter")
		}

		writer.Atomic(func(tx *tm.Tx) { tx.Write(flag, 1) })
		<-done
		waitCond(t, "index drained", func() bool { return cs.WaitingLen() == 0 })
	})
}
