package core

import (
	"testing"
	"unsafe"
)

// The //tm:padded annotations on paddedShard and paddedOrigShard are
// verified statically by tmlint's padcheck analyzer using types.Sizes;
// this test pins the same facts at runtime with unsafe, so the invariant
// holds even in builds that never run the linter (and so a platform whose
// real layout diverges from the gc sizing model fails loudly here).
const cacheLine = 64

func TestPaddedShardLayout(t *testing.T) {
	if sz := unsafe.Sizeof(paddedShard{}); sz%cacheLine != 0 || sz == 0 {
		t.Errorf("paddedShard is %d bytes; want a non-zero multiple of %d", sz, cacheLine)
	}
	if sz := unsafe.Sizeof(paddedOrigShard{}); sz%cacheLine != 0 || sz == 0 {
		t.Errorf("paddedOrigShard is %d bytes; want a non-zero multiple of %d", sz, cacheLine)
	}
	// The embedded payload must sit at the front: the pad is a suffix, so
	// element i's hot fields and element i+1's never share a line.
	if off := unsafe.Offsetof(paddedShard{}.waiterShard); off != 0 {
		t.Errorf("paddedShard.waiterShard at offset %d; want 0", off)
	}
	if off := unsafe.Offsetof(paddedOrigShard{}.origShard); off != 0 {
		t.Errorf("paddedOrigShard.origShard at offset %d; want 0", off)
	}
}

func TestAdjacentShardsOnDistinctLines(t *testing.T) {
	shards := make([]paddedShard, 2)
	a := uintptr(unsafe.Pointer(&shards[0].mu))
	b := uintptr(unsafe.Pointer(&shards[1].mu))
	if a/cacheLine == b/cacheLine {
		t.Errorf("adjacent shard locks share cache line %#x", a/cacheLine)
	}
	origs := make([]paddedOrigShard, 2)
	oa := uintptr(unsafe.Pointer(&origs[0].mu))
	ob := uintptr(unsafe.Pointer(&origs[1].mu))
	if oa/cacheLine == ob/cacheLine {
		t.Errorf("adjacent orig-shard locks share cache line %#x", oa/cacheLine)
	}
}
