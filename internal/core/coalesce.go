// Cross-commit wakeup coalescing (Config.CoalesceCommits): instead of
// scanning the waiter registries after every writer commit, the committing
// thread accumulates each commit's write orecs and stripes — generation-
// tagged, merged across the adaptive table's views — into a per-thread
// pending buffer and replays one merged scan when a flush bound trips.
// ROADMAP's "batch wakeups across adjacent commits" item, the cross-commit
// extension of Algorithm 4's deferred semaphore operations.
//
// Deferring a scan is safe because a commit's memory effects are visible
// the moment it commits; only the *notification* is delayed. A waiter
// published after the commit double-checks its predicate against the
// already-committed state and never sleeps on it, and a waiter published
// before stays in the registries (resize migrations keep old-tier lists
// intact) until the merged scan visits it. What deferral does cost is
// latency, so every path on which the owing thread could stop committing
// is a flush bound:
//
//   - the K bound: the buffer holds at most CoalesceCommits commits, and
//     read-only attempts finished while the buffer is pending count
//     toward the same K — a thread that stops writing but keeps
//     transacting on unrelated data must not delay its wakeups forever;
//   - block: the thread deschedules, sleeps in Retry-Orig, or waits on a
//     condition variable (tm's driver flushes before every Signal handler,
//     and condvar's handler flushes again after its punctuation-commit
//     scan, so condvar signal chains are never deferred behind a sleep);
//   - abort: the thread's next attempt aborts or restarts — the conflict
//     it lost may be against the very threads the deferred scans would
//     wake;
//   - read-back: a transaction that ends WITHOUT a writer commit after
//     reading a pending stripe (Tx.Read detects the read) — the thread is
//     polling the very data sleeping waiters watch, possibly waiting for
//     a peer that is itself asleep behind the deferred scan, and no
//     commit bound would ever save it. Writer attempts are exempt: a
//     read-modify-write loop re-reads its own pending stripes on every
//     iteration by construction, and flushing on that would silently
//     collapse every K to one;
//   - age: with Config.CoalesceMaxDelay set, the buffer records the
//     monotonic time of its first accumulation and no wakeup is deferred
//     past that bound. Every attempt boundary compares the deadline (one
//     load and a subtraction), and — because all the bounds above are
//     attempt-triggered — a lazily started backstop goroutine drains the
//     buffer of an owner that has gone fully idle: finished its work
//     loop, blocked on a channel, went off to serve non-TM requests. The
//     pending fields sit behind a small per-thread ownership latch
//     (Thread.PendingMu) so an owner flush and a backstop drain can
//     never race;
//   - teardown: Thread.Detach, for a worker that stops running
//     transactions for good. With no age bound configured it is the
//     bound of last resort: the attempt-triggered bounds alone cannot
//     save a worker that goes idle without detaching, which is why
//     coalescing without CoalesceMaxDelay is only safe for workers with
//     a bounded gap between attempts.
//
// The merged scan itself reuses the single-commit machinery: wakeWaiters
// re-derives stripes from the merged orec set when the table generation
// moved under the buffer, and origWake always derives its shard set from
// orecs under the scan-time view.
package core

import (
	"sync/atomic"
	"time"

	"tmsync/internal/mono"
	"tmsync/internal/sem"
	"tmsync/internal/tm"
)

// ageEpoch anchors the monotonic clock the age bound reads: PendingSince
// and the backstop's deadlines are nanoseconds since this process-wide
// instant, so comparisons never involve wall-clock time.
var ageEpoch = mono.Now()

func ageNow() int64 { return int64(ageEpoch.Elapsed()) }

// SetAgeClock replaces the monotonic clock behind the CoalesceMaxDelay age
// bound, letting tests drive the deadline comparison, the backstop drain,
// and the drain/owner-flush race deterministically instead of sleeping.
// Must be called before the system runs transactions; the clock must be
// safe for concurrent use and non-decreasing.
func (cs *CondSync) SetAgeClock(now func() int64) { cs.ageClock = now }

// accumulate merges one committed attempt's write set into the thread's
// pending buffer, under the buffer's ownership latch (the age backstop may
// drain the buffer from another goroutine). The hook contract forbids
// retaining the driver's slices, so both sets are copied (deduplicated —
// across K adjacent commits of a tight loop they overlap almost
// completely, which is the whole point). Returns whether this commit
// started a fresh buffer, the buffer's commit count, and whether the
// buffer has already outlived CoalesceMaxDelay.
func (cs *CondSync) accumulate(t *tm.Thread, gen uint64, writeOrecs, writeStripes []uint32) (first bool, commits int, overdue bool) {
	maxDelay := int64(cs.sys.Cfg.CoalesceMaxDelay)
	t.PendingMu.Lock()
	first = t.PendingCommits == 0
	t.PendingCommits++
	commits = t.PendingCommits
	if len(writeOrecs) == 0 {
		// The commit recorded no orecs (the HTM serial fallback): the
		// merged flush must scan every shard, exactly as the immediate
		// path would have for this commit alone.
		t.PendingFull = true
	}
	t.PendingOrecs = mergeSlots(t.PendingOrecs, writeOrecs)
	switch {
	case first:
		t.PendingGen = gen
		t.PendingStripes = append(t.PendingStripes[:0], writeStripes...)
	case gen == t.PendingGen:
		t.PendingStripes = mergeSlots(t.PendingStripes, writeStripes)
	default:
		// The stripe geometry moved between accumulated commits: stripe
		// ids from different generations must not be mixed, so re-derive
		// the merged set from the (generation-independent) orecs under the
		// current view. The flush re-derives once more if the table moves
		// again before it runs.
		cur := cs.sys.Table.Current()
		t.PendingGen = cur.Gen
		t.PendingStripes = cur.StripesOf(t.PendingOrecs, t.PendingStripes[:0])
	}
	if maxDelay > 0 {
		if first {
			t.PendingSince = cs.ageClock()
		} else {
			overdue = cs.ageClock()-t.PendingSince >= maxDelay
		}
	}
	if first {
		t.PendingActive.Store(true)
	}
	t.PendingMu.Unlock()
	return first, commits, overdue
}

// mergeSlots appends the elements of src missing from dst. Both sets are
// tiny (bounded by the write set of K commits), so linear dedup beats a map.
func mergeSlots(dst, src []uint32) []uint32 {
outer:
	for _, v := range src {
		for _, x := range dst {
			if x == v {
				continue outer
			}
		}
		dst = append(dst, v)
	}
	return dst
}

// flushWakeups is installed as the system's FlushWakeups hook; the driver
// invokes it at the flush bounds it can see (always on the owning thread).
// FlushAttemptEnd is the one conditional trigger: an attempt that ended
// without a writer commit flushes only if it read a pending stripe, hit
// the K idle-attempt backstop, or aged past CoalesceMaxDelay.
func (cs *CondSync) flushWakeups(t *tm.Thread, why tm.FlushReason) {
	if !t.PendingActive.Load() {
		return
	}
	st := &cs.sys.Stats
	switch why {
	case tm.FlushAttemptEnd:
		if t.PendingReadHit.Load() {
			cs.flushPending(t, &st.FlushReasonRead)
			return
		}
		// Backstop bounds: a thread that stops writing but keeps running
		// read-only transactions on unrelated data trips none of the
		// other triggers, so read-only attempts count toward the same K
		// as commits, and the buffer's age is checked against
		// CoalesceMaxDelay — the deferred wakeups' delay stays bounded
		// whichever limit is hit first.
		t.PendingMu.Lock()
		if t.PendingCommits == 0 {
			t.PendingMu.Unlock()
			return
		}
		t.PendingIdle++
		kflush := t.PendingIdle >= cs.sys.Cfg.CoalesceCommits
		overdue := cs.overdueLocked(t)
		t.PendingMu.Unlock()
		switch {
		case kflush:
			cs.flushPending(t, &st.FlushReasonK)
		case overdue:
			cs.flushPending(t, &st.FlushReasonAge)
		}
	case tm.FlushAbort:
		cs.flushPending(t, &st.FlushReasonAbort)
	case tm.FlushBlock:
		cs.flushPending(t, &st.FlushReasonBlock)
	case tm.FlushTeardown:
		cs.flushPending(t, &st.FlushReasonTeardown)
	}
}

// overdueLocked reports whether the buffer has outlived CoalesceMaxDelay.
// Caller holds t.PendingMu and has checked the buffer is non-empty.
func (cs *CondSync) overdueLocked(t *tm.Thread) bool {
	d := int64(cs.sys.Cfg.CoalesceMaxDelay)
	return d > 0 && cs.ageClock()-t.PendingSince >= d
}

// flushPending runs the merged wake scan for everything in the thread's
// pending buffer and resets it. Snapshot and reset happen under the
// ownership latch; the scan runs outside it (it executes whole read-only
// transactions). The buffer is emptied before the scan for a second
// reason: the scan's predicate evaluations run on this very thread, whose
// attempt-end and abort paths re-enter FlushPending — with the buffer
// already empty those re-entries are no-ops, so the flush cannot recurse.
// If the age backstop drained the buffer between the caller's bound check
// and the latch, there is nothing left to flush and no reason to count.
func (cs *CondSync) flushPending(t *tm.Thread, reason *atomic.Uint64) {
	t.PendingMu.Lock()
	if t.PendingCommits == 0 {
		t.PendingMu.Unlock()
		return
	}
	gen, full := t.PendingGen, t.PendingFull
	orecs, stripes := t.PendingOrecs, t.PendingStripes
	// Truncating (rather than detaching) the backing arrays is safe here
	// and only here: the scan below runs on the owning thread, so nothing
	// can append into them before it finishes.
	t.PendingOrecs = t.PendingOrecs[:0]
	t.PendingStripes = t.PendingStripes[:0]
	t.PendingCommits = 0
	t.PendingIdle = 0
	t.PendingFull = false
	t.PendingActive.Store(false)
	t.PendingMu.Unlock()
	t.PendingReadHit.Store(false)
	reason.Add(1)
	cs.scanMerged(t, gen, full, orecs, stripes)
}

// scanMerged replays one merged post-commit wake scan, shared by the
// owner's flushPending and the backstop's drainPeer.
func (cs *CondSync) scanMerged(t *tm.Thread, gen uint64, full bool, orecs, stripes []uint32) {
	var batch sem.Batch
	if full {
		// Generation 0 never matches a live view and nil orecs cannot be
		// re-derived, so wakeWaiters degenerates to the conservative
		// every-shard scan; the merged orecs still drive origWake.
		cs.wakeWaiters(t, 0, nil, nil, &batch)
	} else {
		cs.wakeWaiters(t, gen, orecs, stripes, &batch)
	}
	cs.origWake(orecs, &batch)
	if n := batch.SignalAll(); n > 0 {
		cs.sys.Stats.BatchedSignals.Add(uint64(n))
	}
}

// ensureBackstop lazily starts the age-bound drainer goroutine. Called
// when a commit leaves a fresh buffer pending; a no-op when no age bound
// is configured or a backstop is already running. The CAS on backstopOn
// plus backstopLoop's exit double-check guarantee exactly one live
// backstop whenever any buffer is pending.
func (cs *CondSync) ensureBackstop() {
	if cs.sys.Cfg.CoalesceMaxDelay <= 0 {
		return
	}
	if cs.backstopOn.CompareAndSwap(false, true) {
		go cs.backstopLoop()
	}
}

// backstopLoop sleeps until the earliest pending buffer's deadline, drains
// whatever is overdue by then, and repeats; it parks itself (exits) when
// no buffer is pending, to be restarted by the next first accumulation.
// Induction on wake times gives the liveness bound: the loop always
// sleeps to the minimum known deadline, and any buffer that goes pending
// mid-sleep has a LATER deadline (its PendingSince is after this scan),
// so every buffer is drained within scheduling slack of its own deadline.
func (cs *CondSync) backstopLoop() {
	d := int64(cs.sys.Cfg.CoalesceMaxDelay)
	for {
		next := int64(-1)
		for _, t := range cs.sys.Threads() {
			if !t.PendingActive.Load() {
				continue
			}
			t.PendingMu.Lock()
			since, pending := t.PendingSince, t.PendingCommits != 0
			t.PendingMu.Unlock()
			if !pending {
				continue
			}
			if dl := since + d; next < 0 || dl < next {
				next = dl
			}
		}
		if next < 0 {
			// Nothing pending: park. A buffer that went pending between
			// the scan above and the flag store would have seen the stale
			// "running" flag and not restarted us, so re-check and
			// reclaim the flag rather than exit with work outstanding.
			cs.backstopOn.Store(false)
			if !cs.anyPending() || !cs.backstopOn.CompareAndSwap(false, true) {
				return
			}
			continue
		}
		if sleep := next - cs.ageClock(); sleep > 0 {
			time.Sleep(time.Duration(sleep))
		}
		cs.DrainOverdue()
	}
}

// anyPending reports whether any registered thread holds a pending buffer.
func (cs *CondSync) anyPending() bool {
	for _, t := range cs.sys.Threads() {
		if t.PendingActive.Load() {
			return true
		}
	}
	return false
}

// DrainOverdue flushes, on behalf of their owners, every pending buffer
// that has outlived Config.CoalesceMaxDelay — the fix for the stranding
// bug: an owner that went idle without detaching will never trip an
// attempt-triggered bound, so somebody else must run its merged scan. The
// backstop goroutine is the production caller; it is exported so
// deterministic tests can drive the drain against an injected clock.
// Returns the number of buffers drained. Drains are serialized (they
// share one scan descriptor) but run concurrently with owner flushes,
// against which the per-thread latch arbitrates: exactly one side wins
// each buffer.
func (cs *CondSync) DrainOverdue() int {
	if cs.sys.Cfg.CoalesceMaxDelay <= 0 {
		return 0
	}
	cs.backstopMu.Lock()
	defer cs.backstopMu.Unlock()
	if cs.backstopThr == nil {
		// The drainer's own descriptor: predicate re-evaluations during a
		// scan are whole transactions and need a thread that is not the
		// (possibly mid-transaction) owner's. Never detached — it holds
		// no pending state of its own, only read-only attempts.
		cs.backstopThr = cs.sys.NewThread()
	}
	now := cs.ageClock()
	drained := 0
	for _, t := range cs.sys.Threads() {
		if t == cs.backstopThr || !t.PendingActive.Load() {
			continue
		}
		if cs.drainPeer(t, now) {
			drained++
		}
	}
	return drained
}

// drainPeer claims and flushes one overdue buffer under its owner's latch.
func (cs *CondSync) drainPeer(t *tm.Thread, now int64) bool {
	t.PendingMu.Lock()
	if t.PendingCommits == 0 || now-t.PendingSince < int64(cs.sys.Cfg.CoalesceMaxDelay) {
		t.PendingMu.Unlock()
		return false
	}
	gen, full := t.PendingGen, t.PendingFull
	orecs, stripes := t.PendingOrecs, t.PendingStripes
	// Detach the backing arrays instead of truncating them: the owner may
	// resume transacting the moment the latch drops, and its appends must
	// not race the scan below. The owner allocates afresh on its next
	// accumulation.
	t.PendingOrecs, t.PendingStripes = nil, nil
	t.PendingCommits = 0
	t.PendingIdle = 0
	t.PendingFull = false
	t.PendingActive.Store(false)
	t.PendingMu.Unlock()
	t.PendingReadHit.Store(false)
	cs.sys.Stats.FlushReasonAge.Add(1)
	cs.scanMerged(cs.backstopThr, gen, full, orecs, stripes)
	return true
}
