// Cross-commit wakeup coalescing (Config.CoalesceCommits): instead of
// scanning the waiter registries after every writer commit, the committing
// thread accumulates each commit's write orecs and stripes — generation-
// tagged, merged across the adaptive table's views — into a per-thread
// pending buffer and replays one merged scan when a flush bound trips.
// ROADMAP's "batch wakeups across adjacent commits" item, the cross-commit
// extension of Algorithm 4's deferred semaphore operations.
//
// Deferring a scan is safe because a commit's memory effects are visible
// the moment it commits; only the *notification* is delayed. A waiter
// published after the commit double-checks its predicate against the
// already-committed state and never sleeps on it, and a waiter published
// before stays in the registries (resize migrations keep old-tier lists
// intact) until the merged scan visits it. What deferral does cost is
// latency, so every path on which the owing thread could stop committing
// is a flush bound:
//
//   - the K bound: the buffer holds at most CoalesceCommits commits, and
//     read-only attempts finished while the buffer is pending count
//     toward the same K — a thread that stops writing but keeps
//     transacting on unrelated data must not delay its wakeups forever;
//   - block: the thread deschedules, sleeps in Retry-Orig, or waits on a
//     condition variable (tm's driver flushes before every Signal handler,
//     and condvar's handler flushes again after its punctuation-commit
//     scan, so condvar signal chains are never deferred behind a sleep);
//   - abort: the thread's next attempt aborts or restarts — the conflict
//     it lost may be against the very threads the deferred scans would
//     wake;
//   - read-back: a transaction that ends WITHOUT a writer commit after
//     reading a pending stripe (Tx.Read detects the read) — the thread is
//     polling the very data sleeping waiters watch, possibly waiting for
//     a peer that is itself asleep behind the deferred scan, and no
//     commit bound would ever save it. Writer attempts are exempt: a
//     read-modify-write loop re-reads its own pending stripes on every
//     iteration by construction, and flushing on that would silently
//     collapse every K to one;
//   - teardown: Thread.Detach, the bound of last resort — without it a
//     worker that simply stops running transactions would strand its
//     deferred wakeups forever, which is why coalescing is opt-in.
//
// The merged scan itself reuses the single-commit machinery: wakeWaiters
// re-derives stripes from the merged orec set when the table generation
// moved under the buffer, and origWake always derives its shard set from
// orecs under the scan-time view.
package core

import (
	"sync/atomic"

	"tmsync/internal/sem"
	"tmsync/internal/tm"
)

// accumulate merges one committed attempt's write set into the thread's
// pending buffer. The hook contract forbids retaining the driver's slices,
// so both sets are copied (deduplicated — across K adjacent commits of a
// tight loop they overlap almost completely, which is the whole point).
func (cs *CondSync) accumulate(t *tm.Thread, gen uint64, writeOrecs, writeStripes []uint32) {
	first := t.PendingCommits == 0
	t.PendingCommits++
	if len(writeOrecs) == 0 {
		// The commit recorded no orecs (the HTM serial fallback): the
		// merged flush must scan every shard, exactly as the immediate
		// path would have for this commit alone.
		t.PendingFull = true
	}
	t.PendingOrecs = mergeSlots(t.PendingOrecs, writeOrecs)
	switch {
	case first:
		t.PendingGen = gen
		t.PendingStripes = append(t.PendingStripes[:0], writeStripes...)
	case gen == t.PendingGen:
		t.PendingStripes = mergeSlots(t.PendingStripes, writeStripes)
	default:
		// The stripe geometry moved between accumulated commits: stripe
		// ids from different generations must not be mixed, so re-derive
		// the merged set from the (generation-independent) orecs under the
		// current view. The flush re-derives once more if the table moves
		// again before it runs.
		cur := cs.sys.Table.Current()
		t.PendingGen = cur.Gen
		t.PendingStripes = cur.StripesOf(t.PendingOrecs, t.PendingStripes[:0])
	}
}

// mergeSlots appends the elements of src missing from dst. Both sets are
// tiny (bounded by the write set of K commits), so linear dedup beats a map.
func mergeSlots(dst, src []uint32) []uint32 {
outer:
	for _, v := range src {
		for _, x := range dst {
			if x == v {
				continue outer
			}
		}
		dst = append(dst, v)
	}
	return dst
}

// flushWakeups is installed as the system's FlushWakeups hook; the driver
// invokes it at the flush bounds it can see (always on the owning thread).
// FlushAttemptEnd is the one conditional trigger: an attempt that ended
// without a writer commit flushes only if it read a pending stripe.
func (cs *CondSync) flushWakeups(t *tm.Thread, why tm.FlushReason) {
	if t.PendingCommits == 0 {
		return
	}
	st := &cs.sys.Stats
	switch why {
	case tm.FlushAttemptEnd:
		if t.PendingReadHit {
			cs.flushPending(t, &st.FlushReasonRead)
			return
		}
		// Backstop bound: a thread that stops writing but keeps running
		// read-only transactions on unrelated data trips none of the
		// other triggers, so read-only attempts count toward the same K
		// as commits — the deferred wakeups' delay stays bounded by K
		// attempts of either kind.
		t.PendingIdle++
		if t.PendingIdle >= cs.sys.Cfg.CoalesceCommits {
			cs.flushPending(t, &st.FlushReasonK)
		}
	case tm.FlushAbort:
		cs.flushPending(t, &st.FlushReasonAbort)
	case tm.FlushBlock:
		cs.flushPending(t, &st.FlushReasonBlock)
	case tm.FlushTeardown:
		cs.flushPending(t, &st.FlushReasonTeardown)
	}
}

// flushPending runs the merged wake scan for everything in the thread's
// pending buffer and resets it. The buffer is emptied (lengths zeroed,
// backing arrays kept for reuse) before the scan: the scan's predicate
// evaluations are read-only transactions on this very thread, whose
// attempt-end and abort paths re-enter FlushPending — with the buffer
// already empty those re-entries are no-ops, so the flush cannot recurse.
func (cs *CondSync) flushPending(t *tm.Thread, reason *atomic.Uint64) {
	gen, full := t.PendingGen, t.PendingFull
	orecs, stripes := t.PendingOrecs, t.PendingStripes
	t.PendingOrecs = t.PendingOrecs[:0]
	t.PendingStripes = t.PendingStripes[:0]
	t.PendingCommits = 0
	t.PendingIdle = 0
	t.PendingFull = false
	t.PendingReadHit = false
	reason.Add(1)

	var batch sem.Batch
	if full {
		// Generation 0 never matches a live view and nil orecs cannot be
		// re-derived, so wakeWaiters degenerates to the conservative
		// every-shard scan; the merged orecs still drive origWake.
		cs.wakeWaiters(t, 0, nil, nil, &batch)
	} else {
		cs.wakeWaiters(t, gen, orecs, stripes, &batch)
	}
	cs.origWake(orecs, &batch)
	if n := batch.SignalAll(); n > 0 {
		cs.sys.Stats.BatchedSignals.Add(uint64(n))
	}
}
