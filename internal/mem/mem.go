// Package mem provides convenience types for word-addressed transactional
// memory: named shared variables and word arrays whose addresses can be
// passed to the STM/HTM engines and to Await.
package mem

import (
	"sync/atomic"

	"tmsync/internal/tm"
)

// Var is one shared 64-bit word.
type Var struct {
	w uint64
}

// Addr returns the word's address for use with tx.Read/tx.Write and Await.
func (v *Var) Addr() *uint64 { return &v.w }

// Get reads the variable transactionally.
func (v *Var) Get(tx *tm.Tx) uint64 { return tx.Read(&v.w) }

// Set writes the variable transactionally.
func (v *Var) Set(tx *tm.Tx, val uint64) { tx.Write(&v.w, val) }

// Add adds delta (two's-complement) to the variable transactionally and
// returns the new value.
func (v *Var) Add(tx *tm.Tx, delta uint64) uint64 {
	n := tx.Read(&v.w) + delta
	tx.Write(&v.w, n)
	return n
}

// Load reads the variable non-transactionally (setup/teardown only).
func (v *Var) Load() uint64 { return atomic.LoadUint64(&v.w) }

// Store writes the variable non-transactionally (setup/teardown only; the
// caller must guarantee no transactions are in flight).
func (v *Var) Store(val uint64) { atomic.StoreUint64(&v.w, val) }

// Array is a fixed-size vector of shared words.
type Array struct {
	ws []uint64
}

// NewArray returns an Array of n words, all zero.
func NewArray(n int) *Array { return &Array{ws: make([]uint64, n)} }

// Len returns the number of words.
func (a *Array) Len() int { return len(a.ws) }

// Addr returns the address of word i.
func (a *Array) Addr(i int) *uint64 { return &a.ws[i] }

// Get reads word i transactionally.
func (a *Array) Get(tx *tm.Tx, i int) uint64 { return tx.Read(&a.ws[i]) }

// Set writes word i transactionally.
func (a *Array) Set(tx *tm.Tx, i int, val uint64) { tx.Write(&a.ws[i], val) }

// Load reads word i non-transactionally (setup/teardown only).
func (a *Array) Load(i int) uint64 { return atomic.LoadUint64(&a.ws[i]) }

// Store writes word i non-transactionally (setup/teardown only).
func (a *Array) Store(i int, val uint64) { atomic.StoreUint64(&a.ws[i], val) }
