package mem_test

import (
	"testing"

	"tmsync/internal/mem"
	"tmsync/internal/stm/eager"
	"tmsync/internal/tm"
)

func TestVarTransactionalAccess(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true}, eager.New)
	thr := sys.NewThread()
	var v mem.Var
	thr.Atomic(func(tx *tm.Tx) {
		if v.Get(tx) != 0 {
			t.Error("zero value not zero")
		}
		v.Set(tx, 41)
		if got := v.Add(tx, 1); got != 42 {
			t.Errorf("Add = %d", got)
		}
	})
	if v.Load() != 42 {
		t.Fatalf("Load = %d", v.Load())
	}
	v.Store(7)
	thr.Atomic(func(tx *tm.Tx) {
		if v.Get(tx) != 7 {
			t.Error("Store not visible transactionally")
		}
	})
}

func TestVarAddWraps(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true}, eager.New)
	thr := sys.NewThread()
	var v mem.Var
	v.Store(^uint64(0))
	thr.Atomic(func(tx *tm.Tx) {
		if got := v.Add(tx, 1); got != 0 {
			t.Errorf("wrap Add = %d", got)
		}
	})
}

func TestArray(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true}, eager.New)
	thr := sys.NewThread()
	a := mem.NewArray(8)
	if a.Len() != 8 {
		t.Fatalf("Len = %d", a.Len())
	}
	thr.Atomic(func(tx *tm.Tx) {
		for i := 0; i < a.Len(); i++ {
			a.Set(tx, i, uint64(i)*10)
		}
	})
	thr.Atomic(func(tx *tm.Tx) {
		for i := 0; i < a.Len(); i++ {
			if a.Get(tx, i) != uint64(i)*10 {
				t.Errorf("a[%d] = %d", i, a.Get(tx, i))
			}
		}
	})
	a.Store(3, 999)
	if a.Load(3) != 999 {
		t.Fatal("non-transactional access broken")
	}
	if a.Addr(3) == a.Addr(4) {
		t.Fatal("distinct elements share an address")
	}
}
