package tm

import "math"

// startSentinel marks a thread that is between publishing activity and
// refining its start time; quiescing writers must wait for it to resolve.
const startSentinel = math.MaxUint64

// PublishStart announces that this thread is beginning a transaction
// attempt and returns the attempt's start time. The two-step publication
// (sentinel, then start+1) closes the race in which a committing writer's
// quiescence scan misses a transaction that sampled the clock before the
// writer's commit but published after the scan.
func (t *Thread) PublishStart() uint64 {
	t.ActiveStart.Store(startSentinel)
	v := t.Sys.Clock.Now()
	t.ActiveStart.Store(v + 1)
	return v
}
