package tm_test

import (
	"testing"
	"testing/quick"

	"tmsync/internal/tm"
)

// TestWriteSetLastWriteWinsProperty: for any sequence of writes over a
// small address set, WriteSet must report the last value written per
// address and exactly the set of distinct addresses.
func TestWriteSetLastWriteWinsProperty(t *testing.T) {
	addrs := make([]uint64, 8)
	f := func(ops []uint8, vals []uint64) bool {
		var ws tm.WriteSet
		model := make(map[*uint64]uint64)
		for i, op := range ops {
			a := &addrs[int(op)%len(addrs)]
			v := uint64(i)
			if i < len(vals) {
				v = vals[i]
			}
			ws.Put(a, v, uint32(op))
			model[a] = v
		}
		if ws.Len() != len(model) {
			return false
		}
		for a, want := range model {
			got, ok := ws.Get(a)
			if !ok || got != want {
				return false
			}
		}
		ws.Reset()
		if ws.Len() != 0 {
			return false
		}
		for a := range model {
			if _, ok := ws.Get(a); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteSetEntryOrderProperty: entries preserve first-write order of
// distinct addresses (the commit loops rely on a stable iteration).
func TestWriteSetEntryOrderProperty(t *testing.T) {
	addrs := make([]uint64, 6)
	f := func(ops []uint8) bool {
		var ws tm.WriteSet
		var order []*uint64
		seen := make(map[*uint64]bool)
		for _, op := range ops {
			a := &addrs[int(op)%len(addrs)]
			ws.Put(a, uint64(op), 0)
			if !seen[a] {
				seen[a] = true
				order = append(order, a)
			}
		}
		if len(ws.Entries) != len(order) {
			return false
		}
		for i := range order {
			if ws.Entries[i].Addr != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOldValueProperty: OldValue returns the value from the first undo
// entry per address — the committed (pre-transaction) value.
func TestOldValueProperty(t *testing.T) {
	addrs := make([]uint64, 4)
	f := func(ops []uint8) bool {
		tx := &tm.Tx{}
		first := make(map[*uint64]uint64)
		for i, op := range ops {
			a := &addrs[int(op)%len(addrs)]
			v := uint64(i) * 7
			tx.Undo = append(tx.Undo, tm.UndoEntry{Addr: a, Old: v})
			if _, ok := first[a]; !ok {
				first[a] = v
			}
		}
		for a, want := range first {
			got, ok := tx.OldValue(a)
			if !ok || got != want {
				return false
			}
		}
		_, ok := tx.OldValue(new(uint64))
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSignatureProperty: the hardware signature must never produce a false
// negative — any added index must test positive.
func TestSignatureProperty(t *testing.T) {
	f := func(idxs []uint32) bool {
		var thr tm.Thread
		for _, i := range idxs {
			thr.SigAdd(i)
		}
		for _, i := range idxs {
			if !thr.SigMightContain(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSigResetClears: after a reset no previously-added index may linger.
func TestSigResetClears(t *testing.T) {
	var thr tm.Thread
	for i := uint32(0); i < 1024; i++ {
		thr.SigAdd(i)
	}
	thr.SigReset()
	for i := uint32(0); i < 1024; i++ {
		if thr.SigMightContain(i) {
			t.Fatalf("index %d survived reset", i)
		}
	}
}
