package tm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"tmsync/internal/tm"
)

// TestIrrevocableExclusive checks that an irrevocable transaction runs
// with system-wide exclusivity on every engine: a non-transactional
// side-effect counter incremented inside irrevocable sections never
// observes concurrency.
func TestIrrevocableExclusive(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		var inside, maxInside atomic.Int64
		var counter uint64
		var wg sync.WaitGroup
		const workers = 4
		const per = 200
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < per; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						tx.Irrevocable()
						cur := inside.Add(1)
						for {
							max := maxInside.Load()
							if cur <= max || maxInside.CompareAndSwap(max, cur) {
								break
							}
						}
						tx.Write(&counter, tx.Read(&counter)+1)
						inside.Add(-1)
					})
				}
			}()
		}
		wg.Wait()
		if counter != workers*per {
			t.Fatalf("counter = %d, want %d", counter, workers*per)
		}
		if m := maxInside.Load(); m != 1 {
			t.Fatalf("irrevocable sections overlapped: max concurrency %d", m)
		}
	})
}

// TestIrrevocableRunsOnce verifies that once a transaction turns
// irrevocable, the body does not re-execute (the "I/O exactly once"
// guarantee): effects after Irrevocable() happen exactly one time.
func TestIrrevocableRunsOnce(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		var ioCount atomic.Int64
		var x uint64
		const workers = 4
		const per = 150
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < per; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						v := tx.Read(&x)
						tx.Irrevocable()
						ioCount.Add(1) // "I/O": must happen exactly once per op
						tx.Write(&x, v+1)
					})
				}
			}()
		}
		wg.Wait()
		if x != workers*per {
			t.Fatalf("x = %d, want %d", x, workers*per)
		}
		if ioCount.Load() != workers*per {
			t.Fatalf("I/O ran %d times for %d operations", ioCount.Load(), workers*per)
		}
	})
}

// TestIrrevocableMixedWithNormal runs irrevocable transactions against a
// background of ordinary transactions on the same data.
func TestIrrevocableMixedWithNormal(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		var counter uint64
		var wg sync.WaitGroup
		const per = 300
		for w := 0; w < 2; w++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < per; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						tx.Write(&counter, tx.Read(&counter)+1)
					})
				}
			}()
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < per; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						tx.Irrevocable()
						tx.Write(&counter, tx.Read(&counter)+1)
					})
				}
			}()
		}
		wg.Wait()
		if counter != 4*per {
			t.Fatalf("counter = %d, want %d", counter, 4*per)
		}
	})
}

// TestIrrevocableIdempotent checks that calling Irrevocable twice in the
// same transaction is a no-op the second time.
func TestIrrevocableIdempotent(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		runs := 0
		var x uint64
		thr.Atomic(func(tx *tm.Tx) {
			runs++
			tx.Irrevocable()
			tx.Irrevocable()
			tx.Write(&x, 9)
		})
		// One speculative run + one irrevocable re-execution.
		if runs != 2 {
			t.Fatalf("body ran %d times, want 2", runs)
		}
		if x != 9 {
			t.Fatalf("x = %d", x)
		}
	})
}
