package tm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

// TestPrivatizationSafety exercises the quiescence mechanism (Appendix A,
// TxCommit line 20): a thread transactionally unlinks ("privatizes") a
// region, then mutates it non-transactionally. Readers that transactionally
// check the published flag before reading the region must never observe
// the non-transactional mutations mid-flight — the writer's quiescence
// waits out every transaction that began before the privatizing commit.
func TestPrivatizationSafety(t *testing.T) {
	for name, mk := range map[string]func() *tm.System{
		"eager": func() *tm.System { return tm.NewSystem(tm.Config{Quiesce: true}, eager.New) },
		"lazy":  func() *tm.System { return tm.NewSystem(tm.Config{Quiesce: true}, lazy.New) },
	} {
		t.Run(name, func(t *testing.T) {
			sys := mk()
			const rounds = 400
			const regionLen = 16

			region := make([]uint64, regionLen)
			var published uint64 = 1 // 1 = region is shared, 0 = privatized
			var wg sync.WaitGroup
			stop := make(chan struct{})
			var torn atomic.Int64

			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := sys.NewThread()
					for {
						select {
						case <-stop:
							return
						default:
						}
						thr.Atomic(func(tx *tm.Tx) {
							if tx.Read(&published) == 0 {
								return // privatized: hands off
							}
							// All words must agree while shared.
							first := tx.Read(&region[0])
							for i := 1; i < regionLen; i++ {
								if tx.Read(&region[i]) != first {
									torn.Add(1)
								}
							}
						})
					}
				}()
			}

			owner := sys.NewThread()
			for round := 0; round < rounds; round++ {
				// Privatize: after this commit (and its quiescence), no
				// reader transaction can still be reading the region.
				owner.Atomic(func(tx *tm.Tx) { tx.Write(&published, 0) })
				// Non-transactional mutation: transiently tears the region.
				for i := range region {
					region[i] = uint64(round*regionLen + i)
				}
				for i := range region {
					region[i] = uint64(round + 1)
				}
				// Re-publish.
				owner.Atomic(func(tx *tm.Tx) { tx.Write(&published, 1) })
			}
			close(stop)
			wg.Wait()
			if n := torn.Load(); n != 0 {
				t.Fatalf("readers observed %d torn region states (privatization unsafe)", n)
			}
		})
	}
}
