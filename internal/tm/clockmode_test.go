package tm_test

// Clock-mode integration tests for the tm layer: Config validation of
// ClockMode, the Stats clock counters, and — the regression the deferred
// protocol makes interesting — Quiesce ordering. Deferred commit
// timestamps are at least Now()+1 without advancing the clock, so end
// is >= the published ActiveStart of every transaction whose snapshot
// the committer could race with; Quiesce must therefore still wait for
// a live earlier-start transaction, even though the committer never
// uniquely owned its timestamp.

import (
	"testing"
	"time"

	"tmsync/internal/stm/eager"
	"tmsync/internal/tm"
)

func TestConfigRejectsUnknownClockMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystem accepted ClockMode \"bogus\"")
		}
	}()
	tm.NewSystem(tm.Config{ClockMode: "bogus"}, eager.New)
}

func TestClockModeAccepted(t *testing.T) {
	for _, mode := range []string{"", "global", "pof", "deferred"} {
		sys := tm.NewSystem(tm.Config{ClockMode: mode, Quiesce: true}, eager.New)
		thr := sys.NewThread()
		var x uint64
		for i := 0; i < 10; i++ {
			thr.Atomic(func(tx *tm.Tx) {
				tx.Write(&x, tx.Read(&x)+1)
			})
		}
		if x != 10 {
			t.Errorf("clock=%q: x = %d, want 10", mode, x)
		}
	}
}

// TestClockCountersExported pins the new Stats counters: the global
// clock counts one advance per writer commit, the deferred clock keeps
// the shared word quiet on the commit path (advances only via NoteStale,
// which single-threaded re-execution also exercises), and both appear in
// the Snapshot map.
func TestClockCountersExported(t *testing.T) {
	sys := tm.NewSystem(tm.Config{ClockMode: "global", Quiesce: true}, eager.New)
	thr := sys.NewThread()
	var x uint64
	const n = 25
	for i := 0; i < n; i++ {
		thr.Atomic(func(tx *tm.Tx) {
			tx.Write(&x, tx.Read(&x)+1)
		})
	}
	snap := sys.Stats.Snapshot()
	if _, ok := snap["clock_advances"]; !ok {
		t.Fatal("Snapshot lacks clock_advances")
	}
	if _, ok := snap["clock_cas_retries"]; !ok {
		t.Fatal("Snapshot lacks clock_cas_retries")
	}
	if got := sys.Stats.ClockAdvances.Load(); got < n {
		t.Errorf("global clock advances = %d, want >= %d (one per writer commit)", got, n)
	}
}

// TestDeferredClockQuiesceOrdering is the quiesce-ordering regression
// test: with the deferred clock, a committing writer's end >= Now()+1 is
// never "ahead" of the clock the way unique global timestamps are, and a
// buggy Quiesce comparison could conclude that a live transaction with
// an equal-or-earlier start needs no wait. Pin the contract directly: a
// reader that published ActiveStart before the writer's commit must
// block the writer's Atomic until the reader retires.
func TestDeferredClockQuiesceOrdering(t *testing.T) {
	sys := tm.NewSystem(tm.Config{ClockMode: "deferred", Quiesce: true}, eager.New)
	reader := sys.NewThread()
	writer := sys.NewThread()

	// The reader publishes a live attempt at the current clock, exactly
	// as Begin would, and stays live (no commit, no abort).
	reader.PublishStart()

	var x uint64
	done := make(chan struct{})
	go func() {
		writer.Atomic(func(tx *tm.Tx) {
			tx.Write(&x, 1)
		})
		close(done)
	}()

	// The writer's commit must stay parked in Quiesce while the
	// earlier-start reader is live. Give it ample time to (wrongly)
	// return early.
	select {
	case <-done:
		t.Fatal("writer commit returned while an earlier-start transaction was live")
	case <-time.After(50 * time.Millisecond):
	}

	// Retiring the reader releases the writer.
	reader.ActiveStart.Store(0)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer commit never returned after the reader retired")
	}
}
