// Package tm defines the engine-independent transactional-memory runtime:
// the transaction descriptor (per-thread metadata of Appendix A), the
// Engine interface implemented by the eager STM, lazy STM, and simulated
// HTM, the atomic-execution driver that plays the role of the C
// checkpoint/restore (setjmp/longjmp) machinery using panic/recover, and
// shared services (logical clock, orec table, quiescence, allocation
// pools, statistics).
//
// Condition synchronization (package core) layers on top through two
// extension points: the Signal interface, which lets a mechanism unwind an
// in-flight transaction and decide how the thread proceeds, and the
// System.PostCommit hook, which runs after every writer commit (the
// wakeWaiters call of Algorithm 4).
package tm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tmsync/internal/clock"
	"tmsync/internal/locktable"
	"tmsync/internal/mono"
	"tmsync/internal/sem"
	"tmsync/internal/spin"
)

// Mode describes how the current transaction attempt executes.
type Mode uint8

const (
	// ModeSTM is an instrumented software transaction.
	ModeSTM Mode = iota
	// ModeHW is a simulated best-effort hardware transaction: invisible
	// buffered writes, eager conflict aborts, capacity limits, and no
	// escape actions.
	ModeHW
	// ModeSerial is the software fallback mode of the HTM engine: the
	// thread holds the global serial lock, concurrency is suspended, and
	// escape actions (waitset logging, descheduling) are permitted.
	ModeSerial
)

func (m Mode) String() string {
	switch m {
	case ModeSTM:
		return "stm"
	case ModeHW:
		return "hw"
	case ModeSerial:
		return "serial"
	}
	return "unknown"
}

// AbortReason classifies why a transaction attempt aborted.
type AbortReason uint8

const (
	AbortConflict AbortReason = iota
	AbortCapacity
	AbortSpurious
	AbortExplicit
)

// ReadEntry records one transactional read for later validation.
type ReadEntry struct {
	Addr *uint64
	Orec uint32 // orec slot covering Addr
	Ver  uint64 // orec version observed at the read (timestamp extension)
}

// UndoEntry records the pre-write value of a word (eager STM / serial mode).
type UndoEntry struct {
	Addr *uint64
	Old  uint64
}

// AddrVal is an address/value pair; the waitset of Algorithm 5 is a list
// of these, enabling value-based wakeup decisions (immune to silent stores).
type AddrVal struct {
	Addr *uint64
	Val  uint64
}

// WriteEntry is one buffered write in a redo log.
type WriteEntry struct {
	Addr *uint64
	Val  uint64
	Orec uint32
}

// WriteSet is an ordered redo log with O(1) lookup, used by the lazy STM
// and the simulated HTM.
type WriteSet struct {
	Entries []WriteEntry
	index   map[*uint64]int
}

// Put buffers a write, overwriting any earlier write to the same address.
func (w *WriteSet) Put(addr *uint64, val uint64, orec uint32) {
	if w.index == nil {
		w.index = make(map[*uint64]int, 16)
	}
	if i, ok := w.index[addr]; ok {
		w.Entries[i].Val = val
		return
	}
	w.index[addr] = len(w.Entries)
	w.Entries = append(w.Entries, WriteEntry{Addr: addr, Val: val, Orec: orec})
}

// Get returns the buffered value for addr, if any.
func (w *WriteSet) Get(addr *uint64) (uint64, bool) {
	if w.index == nil {
		return 0, false
	}
	if i, ok := w.index[addr]; ok {
		return w.Entries[i].Val, true
	}
	return 0, false
}

// Len returns the number of distinct buffered addresses.
func (w *WriteSet) Len() int { return len(w.Entries) }

// Reset clears the write set for reuse.
func (w *WriteSet) Reset() {
	w.Entries = w.Entries[:0]
	clear(w.index)
}

// Tx is the per-thread transaction descriptor. One descriptor lives in each
// Thread and is reused across attempts; flat (subsumption) nesting is
// handled with the Nesting counter exactly as in Algorithm 9.
type Tx struct {
	Thr *Thread
	Sys *System

	Start   uint64      // logical time of transaction start
	Reads   []ReadEntry // locations read (validation)
	Undo    []UndoEntry // eager/serial: writes to undo
	Redo    WriteSet    // lazy/hw: buffered writes
	Locks   []uint32    // orec slots locked by this transaction
	Waitset []AddrVal   // Retry/Await: address/value pairs observed
	Mallocs [][]uint64  // transactional allocations (undone on abort)
	Frees   [][]uint64  // deferred frees (performed on commit)

	// MaxLockVer is the highest pre-acquisition version among the orecs
	// this attempt holds locked, maintained by the engines at lock
	// acquisition and handed to clock.Source.Commit so commit stamps
	// strictly exceed every version the attempt is about to overwrite
	// (the deferred clock needs this to keep per-orec versions strictly
	// increasing; global/pof get it from the shared word).
	MaxLockVer uint64

	// WriteOrecs is filled by the engine during a successful Commit with
	// the orec slots the transaction wrote. The original Retry mechanism
	// (Algorithm 1) intersects it with sleeping transactions' read sets.
	WriteOrecs []uint32

	// WriteStripes is the deduplicated set of orec-table stripes the
	// attempt's write set touched, recorded by the engines as write
	// ownership is established (lock acquisition; serial-mode stores).
	// The post-commit wakeup visits only these stripes, making Algorithm
	// 4's wakeWaiters O(write set) instead of O(waiters). Stripe ids are
	// relative to TableView's geometry.
	WriteStripes []uint32

	// TableView is the orec-table stripe geometry the attempt runs under,
	// stamped by the engine in Begin and revalidated at commit: an online
	// stripe resize between the two bumps the table generation, and a
	// writer whose stripe set was recorded under a stale geometry aborts
	// and re-executes against the new table (RevalidateTableGen).
	TableView locktable.View

	// OnCommit holds actions deferred until the attempt commits (e.g.
	// condition-variable signals, which must not fire from an attempt
	// that may yet abort). Dropped without running if the attempt aborts.
	OnCommit []func()

	Mode     Mode
	Nesting  int
	Attempts int  // attempts of the current Atomic execution
	IsRetry  bool // Algorithm 5: log address/value pairs on every read
	// WantSoftware forces the next HTM attempt into ModeSerial so that
	// escape actions become available (restart_in_STM of Algorithm 5).
	WantSoftware bool
	// SerialHeld records that this attempt owns the system's serial lock
	// (HTM fallback mode or an irrevocable section); it is released
	// exactly once, by the engine or the driver.
	SerialHeld bool
	// WantIrrevocable asks the driver to re-execute the next attempt as
	// an irrevocable (serialized) transaction, the model for the "relaxed
	// transactions" that perform I/O (§2.4.2).
	WantIrrevocable bool

	// hwReads/hwWrites count words accessed by a hardware transaction for
	// capacity accounting.
	HWReads, HWWrites int

	rng uint64 // per-tx xorshift state (spurious-abort draws)
}

// Rand returns a pseudo-random 64-bit value from the descriptor's private
// xorshift generator.
func (tx *Tx) Rand() uint64 {
	x := tx.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	tx.rng = x
	return x
}

// Read performs a transactional load through the system's engine. When the
// thread carries deferred post-commit wake scans (cross-commit wakeup
// coalescing), a read that lands back in a pending stripe requests a
// flush, honoured only if the attempt ends without a writer commit: a
// thread POLLING data its unscanned commits changed (e.g. read-only loops
// waiting for a consumer that is itself asleep behind the deferred scan)
// must not spin forever, while a read-modify-write loop — which re-reads
// its own pending stripes on every iteration by construction — keeps
// accumulating under the K-commit bound.
func (tx *Tx) Read(addr *uint64) uint64 {
	v := tx.Sys.Engine.Read(tx, addr)
	if tx.Thr.PendingActive.Load() && !tx.Thr.PendingReadHit.Load() {
		tx.noteReadHit(addr)
	}
	return v
}

// noteReadHit is the slow half of Read's pending-stripe check, kept out of
// line so the common no-pending case stays a load and a compare. A stale
// pending generation (the table resized under the buffer) or a full-scan
// marker is treated as a hit: re-deriving membership here would cost more
// than the flush it avoids. The stripe walk runs under the pending latch:
// the age backstop may drain the buffer from another goroutine, and a
// drain between Read's gate and this walk just leaves the buffer empty —
// no hit, nothing left to flush.
func (tx *Tx) noteReadHit(addr *uint64) {
	t := tx.Thr
	t.PendingMu.Lock()
	if t.PendingCommits == 0 {
		t.PendingMu.Unlock()
		return
	}
	if t.PendingFull || t.PendingGen != tx.TableView.Gen {
		t.PendingMu.Unlock()
		t.PendingReadHit.Store(true)
		return
	}
	s := tx.TableView.StripeOf(tx.Sys.Table.IndexOf(addr))
	hit := false
	for _, x := range t.PendingStripes {
		if x == s {
			hit = true
			break
		}
	}
	t.PendingMu.Unlock()
	if hit {
		t.PendingReadHit.Store(true)
	}
}

// Write performs a transactional store through the system's engine.
func (tx *Tx) Write(addr *uint64, v uint64) { tx.Sys.Engine.Write(tx, addr, v) }

// DidWrite reports whether the current attempt performed any store.
func (tx *Tx) DidWrite() bool {
	return len(tx.Undo) > 0 || tx.Redo.Len() > 0
}

// OldValue returns the pre-transaction value of addr if this transaction
// wrote it (first undo-log entry wins: Algorithm 10 appends on every
// write, so the earliest entry holds the original memory value).
func (tx *Tx) OldValue(addr *uint64) (uint64, bool) {
	for i := range tx.Undo {
		if tx.Undo[i].Addr == addr {
			return tx.Undo[i].Old, true
		}
	}
	return 0, false
}

// NoteWriteStripe records that the attempt established write ownership of
// orec slot idx, adding the slot's stripe to the write-stripe set. Engines
// call it wherever they acquire a write lock (or, in the HTM serial
// fallback, wherever they store in place). The set is tiny — one entry per
// distinct stripe, bounded by the table's stripe count — so a linear
// dedup scan beats a map.
func (tx *Tx) NoteWriteStripe(idx uint32) {
	s := tx.TableView.StripeOf(idx)
	for _, x := range tx.WriteStripes {
		if x == s {
			return
		}
	}
	tx.WriteStripes = append(tx.WriteStripes, s)
}

// StampTableView captures the orec-table stripe geometry for the attempt.
// Engines call it from Begin so that every stripe the attempt names
// (NoteWriteStripe) is relative to one consistent generation.
func (tx *Tx) StampTableView() { tx.TableView = tx.Sys.Table.Current() }

// RevalidateTableGen aborts the attempt if the orec-table stripe geometry
// changed since Begin. Engines call it in Commit, before making a writer's
// effects durable: the attempt's WriteStripes were named under TableView's
// generation, and the post-commit wakeup must not be handed stripe ids
// from a geometry the condition-synchronization registries have migrated
// away from. Aborting re-executes the transaction against the new table —
// the per-transaction cost of an online stripe resize.
func (tx *Tx) RevalidateTableGen() {
	if tx.TableView.Gen != tx.Sys.Table.Gen() {
		tx.Sys.Stats.GenAborts.Add(1)
		tx.Abort(AbortConflict)
	}
}

// LogWait appends an address/value pair to the waitset.
func (tx *Tx) LogWait(addr *uint64, val uint64) {
	tx.Waitset = append(tx.Waitset, AddrVal{Addr: addr, Val: val})
}

// Abort explicitly aborts the current attempt with the given reason. It
// unwinds to the driver, which rolls back and re-executes after backoff.
//
//tm:noreturn
func (tx *Tx) Abort(reason AbortReason) {
	panic(abortSig{reason: reason})
}

// Restart aborts the current attempt and re-executes immediately, without
// backoff growth. This is the "Restart" baseline of the evaluation: abort
// and immediately re-attempt whenever a precondition does not hold.
//
//tm:noreturn
func (tx *Tx) Restart() {
	tx.Sys.Stats.ExplicitRestarts.Add(1)
	panic(restartSig{})
}

// RestartTagged aborts the current attempt and re-executes it with IsRetry
// set, so the engine logs an address/value waitset on every read
// (restart-to-populate of Algorithm 5).
//
//tm:noreturn
func (tx *Tx) RestartTagged() {
	tx.IsRetry = true
	panic(restartSig{})
}

// RestartSoftware aborts the current attempt and re-executes it in an
// instrumented software mode. Hardware transactions use it when they need
// escape actions (Retry, Await, WaitPred); software engines treat it as a
// plain immediate restart.
//
//tm:noreturn
func (tx *Tx) RestartSoftware() {
	tx.WantSoftware = true
	panic(restartSig{})
}

// Irrevocable makes the transaction irrevocable: the attempt restarts
// under the system's serial lock with all other transactions drained, so
// its effects — including external I/O — can never be rolled back by a
// conflict. This models the "relaxed transactions" of the C++ Draft TM
// Specification that the paper discusses for dedup's I/O critical
// sections (§2.4.2). Condition synchronization before the I/O remains
// safe; a Retry/Await/WaitPred after this call releases irrevocability
// when it unwinds, so the caller must re-establish its precondition on
// re-execution (as the paper requires, condition synchronization must
// precede the I/O).
func (tx *Tx) Irrevocable() {
	if tx.SerialHeld {
		return
	}
	tx.WantIrrevocable = true
	panic(restartSig{})
}

// Alloc returns a transactionally-allocated block of n words. If the
// transaction aborts the block is automatically returned to the pool; if
// it commits the block survives.
func (tx *Tx) Alloc(n int) []uint64 {
	b := tx.Sys.pool.get(n)
	tx.Mallocs = append(tx.Mallocs, b)
	return b
}

// Free defers the reclamation of block b until the transaction commits; an
// abort drops the deferral, matching the malloc/free protocol of Appendix A.
func (tx *Tx) Free(b []uint64) {
	tx.Frees = append(tx.Frees, b)
}

// TakeMallocs removes and returns this attempt's allocations. The
// Deschedule protocol uses it to defer undoing allocations until after the
// waiter has been woken, as required when the waitset names captured memory.
func (tx *Tx) TakeMallocs() [][]uint64 {
	m := tx.Mallocs
	tx.Mallocs = nil
	return m
}

// resetAfterAttempt clears per-attempt state. If committed, deferred frees
// are finalized and allocations survive; otherwise allocations are undone
// and deferred frees dropped.
func (tx *Tx) resetAfterAttempt(committed bool) {
	if committed {
		for _, b := range tx.Frees {
			tx.Sys.pool.put(b)
		}
	} else {
		for _, b := range tx.Mallocs {
			tx.Sys.pool.put(b)
		}
	}
	tx.Reads = tx.Reads[:0]
	tx.Undo = tx.Undo[:0]
	tx.Redo.Reset()
	tx.Locks = tx.Locks[:0]
	tx.MaxLockVer = 0
	tx.Mallocs = tx.Mallocs[:0]
	tx.Frees = tx.Frees[:0]
	tx.WriteOrecs = tx.WriteOrecs[:0]
	tx.WriteStripes = tx.WriteStripes[:0]
	tx.OnCommit = tx.OnCommit[:0]
	tx.HWReads, tx.HWWrites = 0, 0
}

// ResetWaitset lazily clears the waitset (Algorithm 5 resets it lazily).
func (tx *Tx) ResetWaitset() { tx.Waitset = tx.Waitset[:0] }

// Engine is implemented by each TM back end.
type Engine interface {
	// Name identifies the engine ("eager", "lazy", "htm").
	Name() string
	// Begin prepares a new attempt (samples the clock, chooses the mode).
	Begin(tx *Tx)
	// Read performs an instrumented load; it may Abort.
	Read(tx *Tx, addr *uint64) uint64
	// Write performs an instrumented store; it may Abort.
	Write(tx *Tx, addr *uint64, v uint64)
	// Commit attempts to commit the attempt; it may Abort. On return the
	// transaction's effects are durable.
	Commit(tx *Tx)
	// Rollback undoes all speculative effects and releases all locks and
	// engine resources held by the attempt, leaving memory as if the
	// transaction never ran. It must tolerate being called after
	// AwaitSnapshot has already applied the undo log.
	Rollback(tx *Tx)
	// Validate reports whether the attempt's read set is still consistent.
	// Used by the original Retry mechanism (Algorithm 1) and by tests.
	Validate(tx *Tx) bool
	// AwaitSnapshot implements the tricky step of Algorithm 6: undo this
	// transaction's writes (holding locks where the engine requires it),
	// then read each address consistently with the transaction and append
	// the observed address/value pairs to tx.Waitset. It may Abort.
	AwaitSnapshot(tx *Tx, addrs []*uint64)
}

// Outcome tells the driver how to proceed after a Signal was handled.
type Outcome int

const (
	// OutcomeRetry re-executes the transaction body after contention backoff.
	OutcomeRetry Outcome = iota
	// OutcomeRetryNow re-executes the transaction body immediately.
	OutcomeRetryNow
)

// Signal is a control transfer raised inside a transaction body (by
// panicking with a value implementing it). The driver rolls the attempt
// back, then invokes Handle, which decides how the thread proceeds —
// typically by sleeping until a wakeup condition holds. This is the
// mechanism packages core and condvar use to implement Deschedule, Retry,
// Await, WaitPred and transaction-safe condition variables without tm
// depending on them.
type Signal interface {
	Handle(tx *Tx) Outcome
}

type abortSig struct{ reason AbortReason }

type restartSig struct{}

// TraceKind classifies one driver-level execution event reported to the
// System.Tracer hook: the control transfers a transaction attempt can take
// that are invisible to the workload itself. Committed work is not
// reported here — a recorder sees committed operations at the workload
// layer (where they have names), and the driver adds the dynamic events
// only it can see.
type TraceKind uint8

const (
	// TraceAbort reports an aborted attempt; the argument is the
	// AbortReason, or TraceRestartArg for an explicit driver restart.
	TraceAbort TraceKind = iota
	// TraceBlock reports that a condition-synchronization Signal is about
	// to put the thread to sleep (the attempt has been rolled back).
	TraceBlock
	// TraceWake reports that the Signal handler returned and the thread is
	// about to re-execute its transaction body.
	TraceWake
	// TraceDetach reports Thread.Detach: the thread finished its program.
	TraceDetach
)

// TraceRestartArg is the TraceAbort argument distinguishing an explicit
// restart (Tx.Restart and friends) from the enumerated AbortReasons.
const TraceRestartArg = uint64(AbortExplicit) + 1

// Tracer receives driver-level execution events (recorded-trace capture).
// Like PostCommit/FlushWakeups/WakeLatency it is a nil-checked hook on
// System, installed before any thread runs and never changed afterwards;
// implementations must be safe for concurrent use — events arrive from
// every transacting goroutine.
type Tracer interface {
	TraceEvent(t *Thread, kind TraceKind, arg uint64)
}

// FlushReason says why a thread's deferred post-commit wake scans are being
// flushed (cross-commit wakeup coalescing, Config.CoalesceCommits). The
// driver reports the structural triggers it can see; the condition-
// synchronization layer adds its own (the commit bound, a read back into a
// pending stripe) internally.
type FlushReason uint8

const (
	// FlushAttemptEnd fires after an attempt that ended without a writer
	// commit (a read-only commit). The hook flushes only if the attempt
	// read a pending stripe — otherwise accumulation continues.
	FlushAttemptEnd FlushReason = iota
	// FlushAbort fires when an attempt aborted or restarted: the conflict
	// may involve the very waiters the deferred scans would wake.
	FlushAbort
	// FlushBlock fires when the thread is about to sleep (a deschedule,
	// Retry-Orig, or condition-variable wait): a thread must never block
	// while holding wakeups other threads are waiting for.
	FlushBlock
	// FlushTeardown fires from Thread.Detach: the thread will run no more
	// transactions, so nothing else would ever trip a flush bound.
	FlushTeardown
)

// Stats aggregates runtime counters for a System.
type Stats struct {
	Commits          atomic.Uint64
	ROCommits        atomic.Uint64
	Aborts           atomic.Uint64
	ConflictAborts   atomic.Uint64
	CapacityAborts   atomic.Uint64
	SpuriousAborts   atomic.Uint64
	ExplicitAborts   atomic.Uint64
	ExplicitRestarts atomic.Uint64
	Deschedules      atomic.Uint64
	Wakeups          atomic.Uint64
	FutileWakeups    atomic.Uint64
	Serializations   atomic.Uint64

	// WakeChecks counts sleeping waiters visited (predicate considered)
	// by post-commit wakeup scans. With the per-stripe waiter index this
	// is the O(write set) wakeup cost the sharding buys; with one stripe
	// it degenerates to the old O(waiters) global scan.
	WakeChecks atomic.Uint64

	// BatchedSignals counts semaphore signals delivered through the
	// per-commit wakeup batch: claims accumulated during the post-commit
	// scan and issued together after the last shard lock is released
	// (the per-commit form of Algorithm 4's deferred semaphore
	// operations). Zero when Config.UnbatchedWakeups reverts to
	// signal-at-claim delivery.
	BatchedSignals atomic.Uint64

	// OrigShardChecks counts Retry-Orig registry entries examined by
	// committing writers' origWake scans. With the per-stripe registry
	// shards a writer examines only the entries registered on stripes in
	// its lock set; with one stripe this degenerates to the old global
	// every-sleeper scan.
	OrigShardChecks atomic.Uint64

	// StripeResizes counts online stripe-geometry swaps (adaptive
	// controller decisions and forced-schedule resizes alike).
	StripeResizes atomic.Uint64

	// GenAborts counts commit-time aborts caused by a stripe resize
	// landing between an attempt's Begin and its Commit — the
	// per-transaction cost of an epoch swap.
	GenAborts atomic.Uint64

	// MigratedWaiters counts sleeping waiters (Deschedule and Retry-Orig
	// entries together) carried across stripe-geometry swaps by the
	// registry migration.
	MigratedWaiters atomic.Uint64

	// CoalescedScans counts writer commits whose post-commit wake scan
	// remained deferred in the committing thread's pending buffer past the
	// commit itself (Config.CoalesceCommits > 0) — commits that flushed in
	// their own postCommit are not counted, so the ratio of this to
	// Commits is the fraction of scans coalescing actually removed. Each
	// flush below replays the merged scan once for all of its commits.
	CoalescedScans atomic.Uint64

	// FlushReason* count pending-buffer flushes by trigger: the K-commit
	// bound, the thread blocking (deschedule / Retry-Orig / condvar wait),
	// an aborted or restarted attempt, a transaction reading back into a
	// pending stripe, the buffer outliving Config.CoalesceMaxDelay
	// (whether caught at an attempt boundary or drained by the idle-owner
	// backstop), and thread teardown (Thread.Detach).
	FlushReasonK        atomic.Uint64
	FlushReasonBlock    atomic.Uint64
	FlushReasonAbort    atomic.Uint64
	FlushReasonRead     atomic.Uint64
	FlushReasonAge      atomic.Uint64
	FlushReasonTeardown atomic.Uint64

	// ClockAdvances counts successful advances of the shared commit-clock
	// word: global-mode increments (one per writer commit and rollback),
	// pof-mode won CASes, and deferred-mode NoteStale/AtLeast raises.
	// ClockCASRetries counts failed CASes on that word: pof adoptions
	// (commits that shared the winner's timestamp instead of retrying)
	// and AtLeast collisions. Together they make commit-clock cache-line
	// traffic observable per run instead of merely inferable from
	// throughput; (advances + retries) / commits is the per-commit
	// shared-word cost the non-global Config.ClockMode protocols reduce.
	ClockAdvances   atomic.Uint64
	ClockCASRetries atomic.Uint64
}

// Attempts returns the total number of finished transaction attempts
// (commits, read-only commits, and aborts).
func (s *Stats) Attempts() uint64 {
	return s.Commits.Load() + s.ROCommits.Load() + s.Aborts.Load()
}

// AbortRate returns the fraction of attempts that aborted, in [0, 1].
// The differential harness reports it per engine × mechanism.
func (s *Stats) AbortRate() float64 {
	n := s.Attempts()
	if n == 0 {
		return 0
	}
	return float64(s.Aborts.Load()) / float64(n)
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"commits":           s.Commits.Load(),
		"ro_commits":        s.ROCommits.Load(),
		"aborts":            s.Aborts.Load(),
		"conflict_aborts":   s.ConflictAborts.Load(),
		"capacity_aborts":   s.CapacityAborts.Load(),
		"spurious_aborts":   s.SpuriousAborts.Load(),
		"explicit_aborts":   s.ExplicitAborts.Load(),
		"explicit_restarts": s.ExplicitRestarts.Load(),
		"deschedules":       s.Deschedules.Load(),
		"wakeups":           s.Wakeups.Load(),
		"futile_wakeups":    s.FutileWakeups.Load(),
		"serializations":    s.Serializations.Load(),
		"wake_checks":       s.WakeChecks.Load(),
		"batched_signals":   s.BatchedSignals.Load(),
		"orig_shard_checks": s.OrigShardChecks.Load(),
		"stripe_resizes":    s.StripeResizes.Load(),
		"gen_aborts":        s.GenAborts.Load(),
		"migrated_waiters":  s.MigratedWaiters.Load(),
		"coalesced_scans":   s.CoalescedScans.Load(),
		"flush_k":           s.FlushReasonK.Load(),
		"flush_block":       s.FlushReasonBlock.Load(),
		"flush_abort":       s.FlushReasonAbort.Load(),
		"flush_read":        s.FlushReasonRead.Load(),
		"flush_age":         s.FlushReasonAge.Load(),
		"flush_teardown":    s.FlushReasonTeardown.Load(),
		"clock_advances":    s.ClockAdvances.Load(),
		"clock_cas_retries": s.ClockCASRetries.Load(),
	}
}

// Config selects system-wide parameters.
type Config struct {
	// TableSize is the number of orecs (power of two). 0 selects the default.
	TableSize int
	// Stripes is the initial number of cache-line-padded orec-table
	// stripes (power of two, at most TableSize). 0 selects the default
	// (locktable.DefaultStripes, clamped to the table size). Stripe count
	// is a pure performance knob: any value yields identical observable
	// behaviour, which the differential harness checks at {1, 4, 64} and
	// under forced online resizes.
	Stripes int
	// MinStripes / MaxStripes bound the adaptive stripe controller
	// (package core): when MaxStripes > MinStripes, the controller samples
	// contention over fixed commit windows and doubles or halves the
	// stripe count online within these bounds. Both default to Stripes,
	// which pins the count (MinStripes == MaxStripes disables adaptation).
	// Both must be powers of two with MinStripes <= Stripes <= MaxStripes
	// <= TableSize.
	MinStripes, MaxStripes int
	// AdaptWindow is the number of writer commits per controller decision
	// window (default 64: small enough that converging from one stripe to
	// sixty-four costs only a few hundred commits of transient).
	AdaptWindow int
	// AdaptGrow is the futile-scan threshold above which the controller
	// doubles the stripe count: futile wakeup-scan visits (wake checks
	// plus Retry-Orig registry checks that woke nobody) per writer commit
	// in the window. Default 0.005 — one wasted visit per 200 commits.
	AdaptGrow float64
	// AdaptShrink is the total-scan threshold below which a window counts
	// as quiet (default 0.0005): only after several consecutive quiet
	// windows — near-zero waiter visits per commit, useful or not — does
	// the controller halve the stripe count. The asymmetry (grow on one
	// bad window, shrink on sustained silence) plus the gap between the
	// thresholds is the hysteresis that prevents oscillation.
	AdaptShrink float64
	// ResizeEvery, with ResizeSchedule, replaces the adaptive policy with
	// a deterministic forced-resize schedule: every ResizeEvery writer
	// commits the controller resizes to the next count in ResizeSchedule,
	// cycling. A testing knob: the differential harness uses it to prove
	// online resizing observably inert (tmcheck -adaptive).
	ResizeEvery int
	// ResizeSchedule lists the forced-resize stripe counts (powers of
	// two); see ResizeEvery.
	ResizeSchedule []int
	// Quiesce enables privatization safety: a committing writer waits for
	// all concurrent transactions that started before its commit.
	Quiesce bool
	// TimestampExtension lets the software TMs (eager, lazy, and the
	// hybrid's software mode) extend a transaction's start time instead
	// of aborting when it reads a too-new location, by revalidating the
	// read set at the current clock (Riegel et al. [22]; Appendix A
	// notes the abort-on-too-new default is conservative). Hardware
	// attempts never extend.
	TimestampExtension bool
	// ClockMode selects the commit-timestamp protocol: "global" (the
	// default, also selected by ""; one atomic increment of the shared
	// clock word per writer commit), "pof" (GV4 pass-on-CAS-failure:
	// losers adopt the winner's timestamp instead of retrying), or
	// "deferred" (GV5/TicToc-flavored: commits publish one past
	// max(Now(), highest locked orec version) without touching the
	// shared word, which advances only when a reader observes a
	// too-new version). See internal/clock for the
	// protocol and soundness notes. Like the wakeup knobs this is a pure
	// performance knob — every mode must yield identical observable
	// outcomes, which the differential harness checks across all
	// engines and mechanisms (tmcheck -clock). "deferred" trades the
	// quietest clock line for occasional extra false aborts when a
	// reader lands on a freshly published version; TimestampExtension
	// turns most of those aborts into in-place snapshot extensions.
	ClockMode string
	// HTMReadCap / HTMWriteCap bound the simulated hardware read and write
	// sets, in words. 0 selects the defaults (4096 / 448).
	HTMReadCap, HTMWriteCap int
	// HTMSpuriousAbortPerMille injects simulated spurious hardware aborts
	// with probability n/1000 per transactional access.
	HTMSpuriousAbortPerMille int
	// HTMMaxRetries is the number of hardware attempts before the engine
	// serializes on the global lock (GCC uses 2).
	HTMMaxRetries int
	// HTMWaitPredFastPath models the 8-bit abort-code trick of §2.2.6:
	// WaitPred deschedules directly from a hardware abort instead of
	// re-executing in software mode first.
	HTMWaitPredFastPath bool
	// UnbatchedWakeups reverts the post-commit wakeup to signal-at-claim
	// delivery: each waiter's semaphore is signalled the moment its
	// predicate check claims it, instead of being accumulated into a
	// per-commit batch issued after the scan completes. Purely a
	// performance/measurement knob — delivery order is the only thing
	// that changes, so any setting must yield identical observable
	// outcomes (the differential harness checks both).
	UnbatchedWakeups bool
	// CoalesceCommits enables cross-commit wakeup coalescing: a committing
	// writer accumulates up to this many commits' write orecs and stripes
	// in a per-thread pending buffer and runs one merged post-commit wake
	// scan when a flush bound trips — the commit count reaching this value,
	// the thread itself blocking (deschedule, Retry-Orig, condition-
	// variable wait), an attempt aborting or restarting, a read-only
	// attempt reading back into a pending stripe (a writer attempt's
	// read-backs are governed by the commit bound), this many read-only
	// attempts finishing with the buffer pending (the backstop for a
	// thread that stops writing but keeps transacting on unrelated
	// data), or Thread.Detach at teardown.
	// Zero (the default) scans on every commit. Like the other wakeup
	// knobs it must be observably inert, which the differential harness
	// checks at several values; unlike them it bounds wakeup *latency* by
	// the flush triggers, so a worker that stops running transactions must
	// call Thread.Detach or its last scans would be delayed forever.
	// Incompatible with UnbatchedWakeups (a deferred scan is exactly a
	// batch carried across commits).
	CoalesceCommits int
	// CoalesceMaxDelay bounds how long a pending buffer may age before it
	// is flushed regardless of the structural bounds above: the buffer
	// records the monotonic time of its first accumulation
	// (Thread.PendingSince), every attempt boundary compares it against
	// this bound, and a backstop drains buffers whose owner has gone fully
	// idle — stopped transacting without calling Thread.Detach — so no
	// waiter ever sleeps past this delay behind an idle notifier. Zero
	// (the default) disables the age bound and restores the PR 5
	// attempt-triggered-only behaviour. Meaningless without
	// CoalesceCommits (there is no pending buffer to age-bound), which
	// NewSystem rejects.
	CoalesceMaxDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.TableSize == 0 {
		c.TableSize = locktable.DefaultSize
	}
	if c.Stripes == 0 {
		c.Stripes = locktable.DefaultStripes
		if c.Stripes > c.TableSize {
			c.Stripes = c.TableSize
		}
	}
	// Reject malformed stripe bounds and forced schedules here, at system
	// construction, rather than letting locktable panic on a committing
	// application thread at the first resize.
	for _, s := range c.ResizeSchedule {
		if s <= 0 || s&(s-1) != 0 {
			panic(fmt.Sprintf("tm: ResizeSchedule entry %d is not a positive power of two", s))
		}
	}
	if c.MinStripes < 0 || c.MinStripes&(c.MinStripes-1) != 0 {
		panic(fmt.Sprintf("tm: MinStripes %d is not a positive power of two", c.MinStripes))
	}
	if c.CoalesceCommits < 0 {
		panic(fmt.Sprintf("tm: CoalesceCommits %d is negative", c.CoalesceCommits))
	}
	if c.CoalesceCommits > 0 && c.UnbatchedWakeups {
		panic("tm: CoalesceCommits and UnbatchedWakeups are contradictory (a deferred scan is a batch carried across commits)")
	}
	if c.CoalesceMaxDelay < 0 {
		panic(fmt.Sprintf("tm: CoalesceMaxDelay %v is negative", c.CoalesceMaxDelay))
	}
	if c.CoalesceMaxDelay > 0 && c.CoalesceCommits == 0 {
		panic("tm: CoalesceMaxDelay without CoalesceCommits is meaningless (there is no pending buffer to age-bound)")
	}
	if c.MinStripes == 0 {
		c.MinStripes = c.Stripes
	}
	if c.MaxStripes == 0 {
		// Default to a pinned count, except that a forced-resize schedule
		// implies headroom for its largest entry.
		c.MaxStripes = c.Stripes
		for _, s := range c.ResizeSchedule {
			if s > c.MaxStripes {
				c.MaxStripes = s
			}
		}
	}
	if c.MaxStripes > c.TableSize {
		c.MaxStripes = c.TableSize
	}
	if c.MinStripes > c.MaxStripes {
		c.MinStripes = c.MaxStripes
	}
	if c.Stripes < c.MinStripes {
		c.Stripes = c.MinStripes
	}
	if c.Stripes > c.MaxStripes {
		c.Stripes = c.MaxStripes
	}
	if c.AdaptWindow == 0 {
		c.AdaptWindow = 64
	}
	if c.AdaptGrow == 0 {
		c.AdaptGrow = 0.005
	}
	if c.AdaptShrink == 0 {
		c.AdaptShrink = 0.0005
	}
	if c.HTMReadCap == 0 {
		c.HTMReadCap = 4096
	}
	if c.HTMWriteCap == 0 {
		c.HTMWriteCap = 448
	}
	if c.HTMMaxRetries == 0 {
		c.HTMMaxRetries = 2
	}
	if _, err := clock.ParseMode(c.ClockMode); err != nil {
		panic("tm: " + err.Error())
	}
	return c
}

// System owns one TM instance: an engine plus the shared metadata every
// engine needs. Distinct Systems are fully independent.
type System struct {
	Engine Engine
	Clock  clock.Source
	Table  *locktable.Table
	Cfg    Config
	Stats  Stats

	// PostCommit, if set, runs on the committing thread after every
	// writer commit (wakeWaiters of Algorithm 4). It is not re-entered
	// for commits performed inside the hook itself.
	//
	// writeOrecs and writeStripes are the committed attempt's lock set
	// and the stripes it covers, captured by the driver before any
	// OnCommit callback or nested transaction could overwrite per-thread
	// state. gen is the orec-table geometry generation the stripes were
	// named under (the attempt's TableView): a hook whose registries have
	// moved to a newer generation must re-derive stripes from writeOrecs
	// or fall back to a full scan. The hook must treat the slices as
	// read-only and must not retain them past its return: the driver
	// recycles the backing arrays for the thread's next commit.
	//
	//tm:hook
	PostCommit func(t *Thread, gen uint64, writeOrecs, writeStripes []uint32)

	// FlushWakeups, if set, drains the thread's pending deferred wake
	// scans (cross-commit wakeup coalescing). The driver invokes it — on
	// the owning thread, never concurrently — at every structural flush
	// bound it can see: attempts that abort or restart, attempts that end
	// without a writer commit, and before a Signal handler runs (the
	// handler may block). Thread.FlushPending is the guarded entry point;
	// the hook may run whole (read-only) transactions on the thread.
	//
	//tm:hook
	FlushWakeups func(t *Thread, why FlushReason)

	// Tracer, if set, receives driver-level execution events — aborts,
	// restarts, condition-synchronization blocks and wakes, and thread
	// detach — for recorded-trace capture (internal/trace). The hot commit
	// path is untouched: committed operations are recorded by the workload
	// layer, which knows their names; the driver reports only the control
	// transfers invisible to it. Nil outside recording runs, so every
	// emission site pays one predictable branch.
	//
	//tm:hook
	Tracer Tracer

	// WakeLatency, if set, receives the sleep-to-signal duration of every
	// semaphore sleep — Deschedule, Retry-Orig, and condition-variable
	// waits: the time from the waiter parking on its semaphore to the
	// signal releasing it. Installed by measurement harnesses
	// (internal/perf) before any thread runs and never changed afterwards;
	// nil outside benchmarks, so the sleep paths pay one predictable
	// branch. The callback runs on the woken thread and must be safe for
	// concurrent use.
	//
	//tm:hook
	WakeLatency func(d time.Duration)

	// Ext points at the condition-synchronization layer (package core)
	// when one is enabled; tm itself never inspects it.
	Ext any

	// SerialMu is the global serialization lock used by the HTM engine's
	// fallback path and by irrevocable sections.
	SerialMu     sync.Mutex
	SerialActive atomic.Int32

	mu      spin.Lock
	threads []*Thread
	nextID  atomic.Uint64

	pool blockPool
}

// NewSystem creates a System around the given engine factory. Engines are
// constructed by their packages via a func(*System) Engine so that they can
// capture the system's clock and table.
func NewSystem(cfg Config, mk func(*System) Engine) *System {
	cfg = cfg.withDefaults()
	s := &System{Cfg: cfg, Table: locktable.NewResizable(cfg.TableSize, cfg.Stripes, cfg.MaxStripes)}
	s.Clock = clock.New(clock.Mode(cfg.ClockMode), &s.Stats.ClockCASRetries, &s.Stats.ClockAdvances)
	s.pool.init()
	s.Engine = mk(s)
	return s
}

// SemWait parks the calling goroutine on sm, reporting the sleep-to-signal
// duration to the WakeLatency hook when one is installed. Every
// condition-synchronization sleep (deschedule, Retry-Orig, condition-
// variable wait) funnels through it so latency instrumentation covers all
// sleep sites uniformly.
func (s *System) SemWait(sm *sem.Sem) {
	if fn := s.WakeLatency; fn != nil {
		t0 := mono.Now()
		sm.Wait()
		fn(t0.Elapsed())
		return
	}
	sm.Wait()
}

// Threads returns a snapshot of all threads registered with the system.
func (s *System) Threads() []*Thread {
	s.mu.Lock()
	out := make([]*Thread, len(s.threads))
	copy(out, s.threads)
	s.mu.Unlock()
	return out
}

// threadsUnlocked is used on hot paths (quiescence, HTM conflict scans)
// where the slice only grows and entries are immutable once published.
// Callers must tolerate a slightly stale length.
func (s *System) threadsUnlocked() []*Thread {
	s.mu.Lock()
	t := s.threads
	s.mu.Unlock()
	return t
}

// Quiesce blocks until every transaction that was active with a start time
// ≤ end has finished its current attempt, providing privatization safety
// after a writer commit (Appendix A, TxCommit line 20).
//
// The ordering stays correct under every Config.ClockMode, including the
// modes where commit timestamps are shared or the clock is not advanced
// on commit:
//
//   - A transaction that must be waited for is one that could have read
//     the pre-commit state of our write set. Such a transaction's
//     snapshot precedes our publication, so its published ActiveStart
//     (start+1) is <= end in every mode — under "deferred",
//     end >= Now()+1 (Commit may chain even higher off the versions it
//     locked) is >= start+1 for every transaction whose snapshot
//     the committer could race with, which makes the wait conservative
//     (it may also cover some later-started transactions) but never
//     unsound.
//
//   - A transaction with start >= end began after our commit timestamp
//     was fixed. If it touches our write set before our locks are
//     released it aborts on the locked orec; after release it reads the
//     committed values (version end <= its start). Either way it can
//     never observe pre-commit state, so skipping it is safe — even
//     when it shares the timestamp end with us ("pof" adoption), since
//     sharing requires disjoint write-lock sets and a post-publication
//     snapshot.
//
//   - Timestamp extension moves a live transaction's ActiveStart
//     forward, possibly past end, dropping it from our wait set. That
//     is safe for the same reason: extension revalidates every prior
//     read at the new snapshot, so a transaction extended past end has
//     proven it observed none of the pre-commit state.
func (s *System) Quiesce(self *Thread, end uint64) {
	threads := s.threadsUnlocked()
	for _, t := range threads {
		if t == self {
			continue
		}
		for {
			st := t.ActiveStart.Load()
			// st is 0 when inactive, startSentinel while the thread is
			// publishing, and start+1 otherwise. Wait for transactions
			// whose start precedes our commit time.
			if st == 0 || (st != startSentinel && st > end) {
				break
			}
			spinYield()
		}
	}
}

// Thread is the per-worker handle. Each goroutine that executes
// transactions must own exactly one Thread, created with NewThread.
type Thread struct {
	ID  uint64
	Sys *System
	Tx  Tx
	Sem *sem.Sem

	// ActiveStart publishes the start time of an in-flight attempt for
	// quiescence (0 = no attempt in flight).
	ActiveStart atomic.Uint64

	// Simulated-HTM state: a read/write signature for eager conflict
	// detection, an active flag, and a doomed flag set by conflicting
	// committers (the cache-invalidation abort of best-effort HTM).
	HWActive atomic.Bool
	Doomed   atomic.Bool
	Sig      [SigWords]atomic.Uint64

	// Waiter is owned by the condition-synchronization layer (package
	// core); tm never touches it.
	Waiter any

	// Pending* is the thread's deferred wake-scan buffer (cross-commit
	// wakeup coalescing, Config.CoalesceCommits): the merged write orecs
	// and stripes of PendingCommits writer commits whose post-commit scans
	// have not run yet. PendingStripes is named under generation
	// PendingGen; PendingFull records that some accumulated commit logged
	// no orecs (the HTM serial fallback), forcing the flush to scan every
	// shard. PendingSince is the monotonic time of the buffer's first
	// accumulation, which Config.CoalesceMaxDelay ages against.
	//
	// The buffer is maintained by the condition-synchronization layer.
	// Mutations come from the owning thread, with one exception: the age
	// backstop may claim and drain the buffer of an owner that has gone
	// idle. PendingMu is the ownership latch both sides take around every
	// access to the fields below it; it is uncontended in steady state
	// (the backstop only reaches for overdue buffers), so the owner pays a
	// single uncontended CAS per touch. PendingActive mirrors "buffer
	// non-empty" for lock-free gating on hot paths (Tx.Read,
	// FlushPending); it is written only with the latch held.
	// PendingReadHit is set by Tx.Read when a transaction reads back into
	// a pending stripe, requesting a flush at the attempt's end; it is
	// monotonic within an attempt and read only by the owner, so it needs
	// no latch, just atomicity. PendingIdle counts read-only attempts
	// finished since the buffer started pending; the condition-
	// synchronization layer flushes when it reaches the commit bound, so a
	// thread that stops writing but keeps transacting cannot delay its
	// deferred wakeups unboundedly.
	PendingActive  atomic.Bool
	PendingReadHit atomic.Bool
	PendingMu      spin.Lock
	PendingGen     uint64
	PendingOrecs   []uint32
	PendingStripes []uint32
	PendingCommits int
	PendingIdle    int
	PendingSince   int64
	PendingFull    bool

	// DeferredAllocs holds allocations whose undo was postponed by a
	// deschedule (captured-memory rule of Algorithm 6).
	DeferredAllocs [][]uint64

	// postOrecs/postStripes are the scratch buffers the driver copies a
	// committed attempt's write orecs and stripes into before handing
	// them to the PostCommit hook. They are swapped out (set nil) for
	// the duration of the deferred OnCommit callbacks and the hook
	// itself, so a callback that commits its own transaction on this
	// thread allocates a fresh buffer instead of clobbering the capture
	// the outer commit's wake scan is about to use.
	postOrecs   []uint32
	postStripes []uint32

	inPostCommit bool
	backoff      spin.Backoff
}

// SigWords is the size of the simulated hardware signature (512 bits).
const SigWords = 8

// NewThread registers a new worker with the system.
func (s *System) NewThread() *Thread {
	id := s.nextID.Add(1)
	if id > locktable.MaxOwner {
		panic("tm: thread id space exhausted")
	}
	t := &Thread{ID: id, Sys: s, Sem: sem.New()}
	t.Tx.Thr = t
	t.Tx.Sys = s
	t.Tx.rng = id*0x9e3779b97f4a7c15 + 1
	s.mu.Lock()
	s.threads = append(s.threads, t)
	s.mu.Unlock()
	return t
}

// FlushPending invokes the system's FlushWakeups hook if the thread holds
// deferred wake scans; the common empty case is two loads. It must only be
// called from the owning thread, outside any in-flight attempt (the hook
// runs read-only transactions on this descriptor).
func (t *Thread) FlushPending(why FlushReason) {
	if t.PendingActive.Load() && t.Sys.FlushWakeups != nil {
		t.Sys.FlushWakeups(t, why)
	}
}

// Detach flushes the thread's deferred wake scans at teardown. A worker
// running with Config.CoalesceCommits > 0 must call it when it stops
// executing transactions for good — no other flush bound would ever trip
// again, and a waiter claimed by one of the thread's unscanned commits
// would otherwise sleep forever. A no-op (and nil-safe, for the Pthreads
// baseline's nil thread handles) in every other configuration; the thread
// stays registered and may keep running transactions afterwards.
func (t *Thread) Detach() {
	if t == nil {
		return
	}
	t.FlushPending(FlushTeardown)
	t.traceEvent(TraceDetach, 0)
}

// traceEvent reports one driver-level event to the system's Tracer hook;
// the common untraced case is one load and a branch.
func (t *Thread) traceEvent(kind TraceKind, arg uint64) {
	if tr := t.Sys.Tracer; tr != nil {
		tr.TraceEvent(t, kind, arg)
	}
}

// SigReset clears the hardware signature.
func (t *Thread) SigReset() {
	for i := range t.Sig {
		t.Sig[i].Store(0)
	}
}

// SigAdd marks orec slot idx in the hardware signature.
func (t *Thread) SigAdd(idx uint32) {
	b := idx % (SigWords * 64)
	t.Sig[b/64].Or(1 << (b % 64))
}

// SigMightContain reports whether orec slot idx may be in the signature.
func (t *Thread) SigMightContain(idx uint32) bool {
	b := idx % (SigWords * 64)
	return t.Sig[b/64].Load()&(1<<(b%64)) != 0
}

// Atomic executes fn as a transaction, retrying on conflicts and handling
// condition-synchronization signals until fn commits. Nested calls flatten
// into the outer transaction (subsumption nesting). fn must be safe to
// re-execute: all its effects on shared state must go through tx.
func (t *Thread) Atomic(fn func(tx *Tx)) {
	tx := &t.Tx
	if tx.Nesting > 0 {
		tx.Nesting++
		// The decrement must survive control-transfer panics so that the
		// outer driver sees a consistent depth when it re-executes.
		defer func() { tx.Nesting-- }()
		fn(tx)
		return
	}
	tx.Attempts = 0
	tx.IsRetry = false
	tx.ResetWaitset()
	t.backoff.Reset()
	for {
		res := t.attempt(tx, fn)
		switch res.kind {
		case attemptCommitted:
			return
		case attemptAborted:
			t.Sys.Engine.Rollback(tx)
			t.Sys.ExitSerialIfHeld(tx)
			tx.Nesting = 0
			t.ActiveStart.Store(0)
			tx.resetAfterAttempt(false)
			t.recordAbort(res.reason)
			t.traceEvent(TraceAbort, uint64(res.reason))
			// An abort is a flush bound for coalesced wake scans: the
			// conflict this attempt lost may be against the very threads
			// the deferred scans would wake. Runs after the reset, so the
			// flush's predicate transactions see a clean descriptor.
			t.FlushPending(FlushAbort)
			t.backoff.Wait()
		case attemptRestart:
			t.Sys.Engine.Rollback(tx)
			t.Sys.ExitSerialIfHeld(tx)
			tx.Nesting = 0
			t.ActiveStart.Store(0)
			tx.resetAfterAttempt(false)
			t.traceEvent(TraceAbort, TraceRestartArg)
			t.FlushPending(FlushAbort)
			// Immediate re-execution; the Restart baseline relies on the
			// lack of backoff growth here. A bare processor yield is still
			// required: without it a respinning reader starves the writer
			// that would establish its precondition whenever goroutines
			// outnumber cores (worst on a single-core box, where each
			// respin burned a whole preemption quantum).
			spinYield()
		case attemptSignal:
			t.Sys.Engine.Rollback(tx)
			// Release exclusivity before the handler sleeps, or a
			// descheduled irrevocable transaction would block the world.
			t.Sys.ExitSerialIfHeld(tx)
			tx.Nesting = 0
			t.ActiveStart.Store(0)
			// Reset BEFORE Handle: handlers run fresh transactions on this
			// descriptor (predicate double-checks), which must not inherit
			// the rolled-back attempt's logs — a stale redo log would be
			// written back by the inner commit. Handlers capture anything
			// they need from the attempt when they raise the signal.
			tx.resetAfterAttempt(false)
			// Signal handlers typically put the thread to sleep; flush any
			// coalesced wake scans first so this thread never blocks while
			// holding wakeups other threads are waiting for. (The condvar
			// handler flushes again after its own punctuation-commit scan.)
			t.FlushPending(FlushBlock)
			t.traceEvent(TraceBlock, 0)
			out := res.sig.Handle(tx)
			t.traceEvent(TraceWake, 0)
			if out == OutcomeRetry {
				t.backoff.Wait()
			}
		}
	}
}

type attemptKind int

const (
	attemptCommitted attemptKind = iota
	attemptAborted
	attemptRestart
	attemptSignal
)

type attemptResult struct {
	kind   attemptKind
	reason AbortReason
	sig    Signal
}

func (t *Thread) attempt(tx *Tx, fn func(tx *Tx)) (res attemptResult) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch s := r.(type) {
		case abortSig:
			res = attemptResult{kind: attemptAborted, reason: s.reason}
		case restartSig:
			res = attemptResult{kind: attemptRestart}
		case Signal:
			res = attemptResult{kind: attemptSignal, sig: s}
		default:
			// A genuine (user) panic: clean up engine state so locks are
			// not leaked, then propagate.
			t.Sys.Engine.Rollback(tx)
			t.Sys.ExitSerialIfHeld(tx)
			tx.Nesting = 0
			t.ActiveStart.Store(0)
			tx.resetAfterAttempt(false)
			panic(r)
		}
	}()
	tx.Attempts++
	tx.Nesting = 1
	if tx.IsRetry {
		// A fresh tagged attempt rebuilds the waitset from scratch; stale
		// pairs from an aborted attempt would cause futile wakeups.
		tx.ResetWaitset()
	}
	if tx.WantIrrevocable {
		// Irrevocable attempt: run under system-wide exclusivity so the
		// transaction's effects (including I/O) can never be rolled back
		// by a conflict.
		tx.WantIrrevocable = false
		t.Sys.EnterSerial(t)
		tx.SerialHeld = true
		t.Sys.Stats.Serializations.Add(1)
	}
	t.Sys.Engine.Begin(tx)
	fn(tx)
	// Capture write-ness before Commit: engines may consume their logs
	// while committing, and the PostCommit hook must still fire.
	wrote := tx.DidWrite()
	t.Sys.Engine.Commit(tx)
	t.Sys.ExitSerialIfHeld(tx)
	tx.Nesting = 0
	t.ActiveStart.Store(0)
	// Capture the write set into the thread's scratch buffers and detach
	// them: deferred OnCommit callbacks below may run whole transactions on
	// this thread (e.g. a condition-variable signal chain), and those
	// nested commits must not reuse — and thereby clobber — the backing
	// arrays the outer commit's wake scan is about to be handed. A nested
	// commit finds postOrecs nil, allocates its own capture, and restores
	// it on return; our locals stay intact throughout.
	writeOrecs := append(t.postOrecs[:0], tx.WriteOrecs...)
	writeStripes := append(t.postStripes[:0], tx.WriteStripes...)
	gen := tx.TableView.Gen
	t.postOrecs, t.postStripes = nil, nil
	deferred := tx.OnCommit
	tx.OnCommit = nil
	tx.resetAfterAttempt(true)
	if wrote {
		t.Sys.Stats.Commits.Add(1)
	} else {
		t.Sys.Stats.ROCommits.Add(1)
	}
	for _, f := range deferred {
		f()
	}
	if wrote && t.Sys.PostCommit != nil && !t.inPostCommit {
		t.inPostCommit = true
		t.Sys.PostCommit(t, gen, writeOrecs, writeStripes)
		t.inPostCommit = false
	} else if !wrote && !t.inPostCommit {
		// A read-only commit is a flush point for coalesced wake scans iff
		// the attempt read a pending stripe (the hook checks); a thread
		// polling data its own unscanned commits changed must not leave
		// the waiters on that data deferred.
		t.FlushPending(FlushAttemptEnd)
	}
	t.postOrecs, t.postStripes = writeOrecs[:0], writeStripes[:0]
	return attemptResult{kind: attemptCommitted}
}

func (t *Thread) recordAbort(r AbortReason) {
	st := &t.Sys.Stats
	st.Aborts.Add(1)
	switch r {
	case AbortConflict:
		st.ConflictAborts.Add(1)
	case AbortCapacity:
		st.CapacityAborts.Add(1)
	case AbortSpurious:
		st.SpuriousAborts.Add(1)
	case AbortExplicit:
		st.ExplicitAborts.Add(1)
	}
}

// InTx reports whether the thread has a transaction in flight.
func (t *Thread) InTx() bool { return t.Tx.Nesting > 0 }

// blockPool recycles transactional allocations, keyed by block size.
type blockPool struct {
	mu    spin.Lock
	lists map[int][][]uint64
}

func (p *blockPool) init() { p.lists = make(map[int][][]uint64) }

func (p *blockPool) get(n int) []uint64 {
	p.mu.Lock()
	l := p.lists[n]
	if len(l) > 0 {
		b := l[len(l)-1]
		p.lists[n] = l[:len(l)-1]
		p.mu.Unlock()
		clear(b)
		return b
	}
	p.mu.Unlock()
	return make([]uint64, n)
}

func (p *blockPool) put(b []uint64) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.lists[len(b)] = append(p.lists[len(b)], b)
	p.mu.Unlock()
}

// FreeBlocks returns blocks to the allocation pool. The Deschedule
// protocol uses it to finally undo allocations whose reclamation was
// deferred across a sleep (captured memory, Algorithm 6).
func (s *System) FreeBlocks(blocks [][]uint64) {
	for _, b := range blocks {
		s.pool.put(b)
	}
}
