package tm

import "runtime"

// spinYield yields the processor inside metadata spin loops (quiescence,
// serial-lock waits) so oversubscribed configurations keep making progress.
func spinYield() { runtime.Gosched() }
