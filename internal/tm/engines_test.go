package tm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"tmsync/internal/htm"
	"tmsync/internal/hybrid"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

// engines enumerates the three back ends for table-driven tests.
func engines() map[string]func(cfg tm.Config) *tm.System {
	return map[string]func(cfg tm.Config) *tm.System{
		"eager": func(cfg tm.Config) *tm.System {
			cfg.Quiesce = true
			return tm.NewSystem(cfg, eager.New)
		},
		"lazy": func(cfg tm.Config) *tm.System {
			cfg.Quiesce = true
			return tm.NewSystem(cfg, lazy.New)
		},
		"htm": func(cfg tm.Config) *tm.System {
			return tm.NewSystem(cfg, htm.New)
		},
		"hybrid": func(cfg tm.Config) *tm.System {
			cfg.Quiesce = true
			return tm.NewSystem(cfg, hybrid.New)
		},
	}
}

func forEachEngine(t *testing.T, fn func(t *testing.T, sys *tm.System)) {
	t.Helper()
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			fn(t, mk(tm.Config{}))
		})
	}
}

func TestReadWriteSingleThread(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var x, y uint64
		thr.Atomic(func(tx *tm.Tx) {
			tx.Write(&x, 41)
			tx.Write(&y, tx.Read(&x)+1)
		})
		thr.Atomic(func(tx *tm.Tx) {
			if got := tx.Read(&x); got != 41 {
				t.Errorf("x = %d, want 41", got)
			}
			if got := tx.Read(&y); got != 42 {
				t.Errorf("y = %d, want 42", got)
			}
		})
	})
}

func TestReadAfterWriteSeesOwnWrite(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var x uint64 = 7
		thr.Atomic(func(tx *tm.Tx) {
			if tx.Read(&x) != 7 {
				t.Error("initial read wrong")
			}
			tx.Write(&x, 100)
			if tx.Read(&x) != 100 {
				t.Error("read-after-write did not observe own write")
			}
			tx.Write(&x, 200)
			if tx.Read(&x) != 200 {
				t.Error("second read-after-write wrong")
			}
		})
		if x != 200 {
			t.Errorf("committed value %d, want 200", x)
		}
	})
}

func TestWriteSameOrecTwice(t *testing.T) {
	// Adjacent words may or may not share an orec; writing many words in
	// one transaction exercises the owner==me fast path of TxWrite.
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		words := make([]uint64, 256)
		thr.Atomic(func(tx *tm.Tx) {
			for i := range words {
				tx.Write(&words[i], uint64(i))
			}
		})
		for i := range words {
			if words[i] != uint64(i) {
				t.Fatalf("words[%d] = %d", i, words[i])
			}
		}
	})
}

func TestAbortRollsBackWrites(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var x uint64 = 1
		tries := 0
		thr.Atomic(func(tx *tm.Tx) {
			tries++
			tx.Write(&x, 999)
			if tries == 1 {
				tx.Abort(tm.AbortExplicit)
			}
			// Second attempt must observe the rolled-back value.
			if v := tx.Read(&x); v != 999 {
				t.Errorf("attempt %d: read-after-write = %d", tries, v)
			}
		})
		if tries < 2 {
			t.Fatalf("body ran %d times, want ≥ 2", tries)
		}
		if x != 999 {
			t.Fatalf("final x = %d, want 999", x)
		}
		if sys.Stats.ExplicitAborts.Load() != 1 {
			t.Errorf("explicit aborts = %d, want 1", sys.Stats.ExplicitAborts.Load())
		}
	})
}

func TestRestartReexecutesImmediately(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var x uint64
		tries := 0
		thr.Atomic(func(tx *tm.Tx) {
			tries++
			tx.Write(&x, uint64(tries))
			if tries < 3 {
				tx.Restart()
			}
		})
		if tries != 3 {
			t.Fatalf("tries = %d, want 3", tries)
		}
		if x != 3 {
			t.Fatalf("x = %d, want 3", x)
		}
		if sys.Stats.ExplicitRestarts.Load() != 2 {
			t.Errorf("restarts = %d, want 2", sys.Stats.ExplicitRestarts.Load())
		}
	})
}

func TestNestedAtomicFlattens(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var x, y uint64
		outer := 0
		thr.Atomic(func(tx *tm.Tx) {
			outer++
			tx.Write(&x, 1)
			thr.Atomic(func(inner *tm.Tx) {
				if inner != tx {
					t.Error("nested transaction got a different descriptor")
				}
				inner.Write(&y, inner.Read(&x)+1)
			})
			// Inner effects must be visible to the outer continuation.
			if tx.Read(&y) != 2 {
				t.Error("outer did not see nested write")
			}
		})
		if x != 1 || y != 2 {
			t.Fatalf("x,y = %d,%d want 1,2", x, y)
		}
		if outer != 1 {
			t.Fatalf("outer ran %d times", outer)
		}
	})
}

func TestNestedAbortUnrollsEverything(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var x, y uint64
		tries := 0
		thr.Atomic(func(tx *tm.Tx) {
			tries++
			tx.Write(&x, 10)
			thr.Atomic(func(inner *tm.Tx) {
				inner.Write(&y, 20)
				if tries == 1 {
					inner.Abort(tm.AbortExplicit)
				}
			})
		})
		if tries != 2 {
			t.Fatalf("tries = %d, want 2 (inner abort must unroll outer)", tries)
		}
		if x != 10 || y != 20 {
			t.Fatalf("x,y = %d,%d", x, y)
		}
	})
}

func TestConcurrentCounter(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		const workers = 8
		const per = 2000
		var counter uint64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < per; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						tx.Write(&counter, tx.Read(&counter)+1)
					})
				}
			}()
		}
		wg.Wait()
		if counter != workers*per {
			t.Fatalf("counter = %d, want %d", counter, workers*per)
		}
	})
}

func TestBankTransferInvariant(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		const accounts = 32
		const workers = 6
		const per = 1500
		const initial = 1000
		bal := make([]uint64, accounts)
		for i := range bal {
			bal[i] = initial
		}
		var wg sync.WaitGroup
		violations := make([]int, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				thr := sys.NewThread()
				rng := uint64(id)*2654435761 + 1
				next := func(n uint64) uint64 {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					return rng % n
				}
				for i := 0; i < per; i++ {
					from, to := next(accounts), next(accounts)
					if from == to {
						continue
					}
					if i%10 == 0 {
						// Auditor: the total must be invariant inside any
						// transaction (opacity + atomicity probe).
						thr.Atomic(func(tx *tm.Tx) {
							var sum uint64
							for a := 0; a < accounts; a++ {
								sum += tx.Read(&bal[a])
							}
							if sum != accounts*initial {
								violations[id]++
							}
						})
						continue
					}
					thr.Atomic(func(tx *tm.Tx) {
						f := tx.Read(&bal[from])
						if f == 0 {
							return
						}
						tx.Write(&bal[from], f-1)
						tx.Write(&bal[to], tx.Read(&bal[to])+1)
					})
				}
			}(w)
		}
		wg.Wait()
		for id, v := range violations {
			if v != 0 {
				t.Fatalf("worker %d observed %d balance-sum violations", id, v)
			}
		}
		var sum uint64
		for i := range bal {
			sum += bal[i]
		}
		if sum != accounts*initial {
			t.Fatalf("final sum %d, want %d", sum, accounts*initial)
		}
	})
}

func TestOpacityEqualPair(t *testing.T) {
	// Writers keep x == y; readers must never observe x != y inside a
	// transaction, even transiently (eager STM updates in place, so this
	// directly exercises per-read validation).
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		var x, y uint64
		const writers = 3
		const readers = 3
		const rounds = 4000
		var wg sync.WaitGroup
		bad := make([]int, readers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < rounds; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						v := tx.Read(&x) + 1
						tx.Write(&x, v)
						tx.Write(&y, v)
					})
				}
			}()
		}
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				thr := sys.NewThread()
				for i := 0; i < rounds; i++ {
					thr.Atomic(func(tx *tm.Tx) {
						a := tx.Read(&x)
						b := tx.Read(&y)
						if a != b {
							bad[id]++
						}
					})
				}
			}(r)
		}
		wg.Wait()
		for id, n := range bad {
			if n != 0 {
				t.Fatalf("reader %d saw %d torn states", id, n)
			}
		}
		if x != y {
			t.Fatalf("final x=%d y=%d", x, y)
		}
	})
}

func TestAllocCommitAndAbort(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var committed []uint64
		tries := 0
		thr.Atomic(func(tx *tm.Tx) {
			tries++
			b := tx.Alloc(8)
			tx.Write(&b[0], uint64(tries))
			if tries == 1 {
				tx.Abort(tm.AbortExplicit)
			}
			committed = b
		})
		if tries != 2 {
			t.Fatalf("tries = %d", tries)
		}
		if committed[0] != 2 {
			t.Fatalf("committed alloc holds %d, want 2", committed[0])
		}
		// Free defers until commit; the block must remain readable during
		// the transaction that frees it.
		thr.Atomic(func(tx *tm.Tx) {
			if tx.Read(&committed[0]) != 2 {
				t.Error("value lost before free")
			}
			tx.Free(committed)
		})
	})
}

func TestValidateAfterRollback(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		if sys.Engine.Name() == "htm" || sys.Engine.Name() == "hybrid" {
			t.Skip("Validate is an STM-metadata operation; hardware modes skip it")
		}
		thr := sys.NewThread()
		var x uint64 = 5
		// Use a signal to stop mid-transaction with the read set intact.
		probe := &validateProbe{}
		thr.Atomic(func(tx *tm.Tx) {
			if probe.phase == 0 {
				_ = tx.Read(&x)
				probe.phase = 1
				panic(probe)
			}
		})
		if !probe.valid {
			t.Fatal("read set should validate with no concurrent writers")
		}
	})
}

type validateProbe struct {
	phase int
	valid bool
}

func (p *validateProbe) Handle(tx *tm.Tx) tm.Outcome {
	p.valid = tx.Sys.Engine.Validate(tx)
	return tm.OutcomeRetryNow
}

func TestUserPanicPropagatesAndCleansUp(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var x uint64 = 3
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("recovered %v, want boom", r)
				}
			}()
			thr.Atomic(func(tx *tm.Tx) {
				tx.Write(&x, 77)
				panic("boom")
			})
		}()
		if x != 3 {
			t.Fatalf("x = %d after panic, want rollback to 3", x)
		}
		// The system must remain usable: no leaked locks or serial state.
		done := make(chan struct{})
		go func() {
			thr2 := sys.NewThread()
			thr2.Atomic(func(tx *tm.Tx) { tx.Write(&x, 8) })
			close(done)
		}()
		<-done
		if x != 8 {
			t.Fatalf("post-panic transaction failed, x = %d", x)
		}
	})
}

func TestHTMCapacityFallsBackToSerial(t *testing.T) {
	sys := tm.NewSystem(tm.Config{HTMWriteCap: 8, HTMReadCap: 16}, htm.New)
	thr := sys.NewThread()
	words := make([]uint64, 64)
	thr.Atomic(func(tx *tm.Tx) {
		for i := range words {
			tx.Write(&words[i], uint64(i)+1)
		}
	})
	for i := range words {
		if words[i] != uint64(i)+1 {
			t.Fatalf("words[%d] = %d", i, words[i])
		}
	}
	if sys.Stats.CapacityAborts.Load() == 0 {
		t.Error("expected at least one capacity abort")
	}
	if sys.Stats.Serializations.Load() == 0 {
		t.Error("expected a serialized execution")
	}
}

func TestHTMSpuriousAbortsStillCommit(t *testing.T) {
	sys := tm.NewSystem(tm.Config{HTMSpuriousAbortPerMille: 200}, htm.New)
	const workers = 4
	const per = 500
	var counter uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < per; i++ {
				thr.Atomic(func(tx *tm.Tx) {
					tx.Write(&counter, tx.Read(&counter)+1)
				})
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d", counter, workers*per)
	}
	if sys.Stats.SpuriousAborts.Load() == 0 {
		t.Error("expected spurious aborts at 20% per access")
	}
}

func TestHTMSerialSectionsExclusive(t *testing.T) {
	// Force every transaction serial via zero max retries and verify
	// mutual exclusion of serial sections with a non-transactional probe.
	sys := tm.NewSystem(tm.Config{HTMMaxRetries: -1}, htm.New)
	var inside, maxInside atomic.Int64
	var counter uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < 300; i++ {
				thr.Atomic(func(tx *tm.Tx) {
					cur := inside.Add(1)
					for {
						max := maxInside.Load()
						if cur <= max || maxInside.CompareAndSwap(max, cur) {
							break
						}
					}
					tx.Write(&counter, tx.Read(&counter)+1)
					inside.Add(-1)
				})
			}
		}()
	}
	wg.Wait()
	if counter != 1200 {
		t.Fatalf("counter = %d", counter)
	}
	if m := maxInside.Load(); m != 1 {
		t.Fatalf("serial sections overlapped: max concurrency %d", m)
	}
}

func TestStatsCommitCounts(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		thr := sys.NewThread()
		var x uint64
		for i := 0; i < 5; i++ {
			thr.Atomic(func(tx *tm.Tx) { tx.Write(&x, uint64(i)) })
		}
		for i := 0; i < 3; i++ {
			thr.Atomic(func(tx *tm.Tx) { _ = tx.Read(&x) })
		}
		if got := sys.Stats.Commits.Load(); got != 5 {
			t.Errorf("writer commits = %d, want 5", got)
		}
		if got := sys.Stats.ROCommits.Load(); got != 3 {
			t.Errorf("read-only commits = %d, want 3", got)
		}
	})
}

func TestPostCommitHookFiresOnWritesOnly(t *testing.T) {
	forEachEngine(t, func(t *testing.T, sys *tm.System) {
		var fired int
		var sawStripes int
		var sawGen uint64
		sys.PostCommit = func(t *tm.Thread, gen uint64, writeOrecs, writeStripes []uint32) {
			fired++
			sawStripes += len(writeStripes)
			sawGen = gen
		}
		thr := sys.NewThread()
		var x uint64
		thr.Atomic(func(tx *tm.Tx) { tx.Write(&x, 1) })
		thr.Atomic(func(tx *tm.Tx) { _ = tx.Read(&x) })
		thr.Atomic(func(tx *tm.Tx) { tx.Write(&x, 2) })
		if fired != 2 {
			t.Fatalf("PostCommit fired %d times, want 2", fired)
		}
		if sawStripes != 2 {
			t.Fatalf("PostCommit saw %d write stripes across 2 writer commits, want 2", sawStripes)
		}
		if sawGen != sys.Table.Gen() {
			t.Fatalf("PostCommit saw table generation %d, want %d", sawGen, sys.Table.Gen())
		}
	})
}

func TestWriteSet(t *testing.T) {
	var ws tm.WriteSet
	a, b := new(uint64), new(uint64)
	ws.Put(a, 1, 10)
	ws.Put(b, 2, 20)
	ws.Put(a, 3, 10) // overwrite
	if ws.Len() != 2 {
		t.Fatalf("len = %d, want 2", ws.Len())
	}
	if v, ok := ws.Get(a); !ok || v != 3 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if v, ok := ws.Get(b); !ok || v != 2 {
		t.Fatalf("Get(b) = %d,%v", v, ok)
	}
	ws.Reset()
	if ws.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	if _, ok := ws.Get(a); ok {
		t.Fatal("reset left index entries")
	}
}

func TestOldValueFirstEntryWins(t *testing.T) {
	tx := &tm.Tx{}
	a := new(uint64)
	tx.Undo = append(tx.Undo, tm.UndoEntry{Addr: a, Old: 1}, tm.UndoEntry{Addr: a, Old: 2})
	if v, ok := tx.OldValue(a); !ok || v != 1 {
		t.Fatalf("OldValue = %d,%v want 1,true (oldest entry is the committed value)", v, ok)
	}
	if _, ok := tx.OldValue(new(uint64)); ok {
		t.Fatal("OldValue hit for unwritten address")
	}
}

func TestStatsAttemptsAndAbortRate(t *testing.T) {
	var s tm.Stats
	if s.AbortRate() != 0 {
		t.Fatalf("empty AbortRate = %v", s.AbortRate())
	}
	s.Commits.Add(6)
	s.ROCommits.Add(2)
	s.Aborts.Add(2)
	if got := s.Attempts(); got != 10 {
		t.Fatalf("Attempts = %d, want 10", got)
	}
	if got := s.AbortRate(); got != 0.2 {
		t.Fatalf("AbortRate = %v, want 0.2", got)
	}
}
