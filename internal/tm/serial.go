package tm

// EnterSerial acquires system-wide exclusivity for thread t: it takes the
// serial lock, announces the serial section, dooms in-flight hardware
// transactions, and waits for every other thread's current attempt to
// drain. Used by the HTM fallback path and by irrevocable transactions.
func (s *System) EnterSerial(t *Thread) {
	s.SerialMu.Lock()
	s.SerialActive.Store(1)
	threads := s.threadsUnlocked()
	for _, o := range threads {
		if o != t && o.HWActive.Load() {
			o.Doomed.Store(true)
		}
	}
	for _, o := range threads {
		if o == t {
			continue
		}
		for {
			if o.HWActive.Load() {
				o.Doomed.Store(true)
			} else if o.ActiveStart.Load() == 0 {
				break
			}
			spinYield()
		}
	}
}

// ExitSerialIfHeld releases the serial section if this attempt owns it.
// Safe to call when it does not (including after an engine already
// released it).
func (s *System) ExitSerialIfHeld(tx *Tx) {
	if !tx.SerialHeld {
		return
	}
	tx.SerialHeld = false
	s.SerialActive.Store(0)
	s.SerialMu.Unlock()
}

// PublishStartSerialAware is PublishStart for software engines that must
// also respect serial sections: the attempt waits out any active serial
// section (unless it owns it) and re-checks after publishing, closing the
// window in which EnterSerial's drain scan could miss it.
func (t *Thread) PublishStartSerialAware(tx *Tx) uint64 {
	for {
		if !tx.SerialHeld {
			for t.Sys.SerialActive.Load() != 0 {
				spinYield()
			}
		}
		start := t.PublishStart()
		if tx.SerialHeld || t.Sys.SerialActive.Load() == 0 {
			return start
		}
		// A serial section began while we published; stand down and wait.
		t.ActiveStart.Store(0)
	}
}
