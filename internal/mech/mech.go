// Package mech names the seven condition-synchronization mechanisms the
// evaluation compares, shared by the bounded-buffer and PARSEC-skeleton
// workloads and by the benchmark harness.
package mech

// Mechanism names one condition-synchronization technique.
type Mechanism string

const (
	// Pthreads is the lock + condition-variable baseline (no TM).
	Pthreads Mechanism = "pthreads"
	// TMCondVar is transactions + transaction-safe condition variables.
	TMCondVar Mechanism = "tmcondvar"
	// WaitPred is Deschedule with an explicit user predicate (Alg. 7).
	WaitPred Mechanism = "waitpred"
	// Await is Deschedule on a static address list (Alg. 6).
	Await Mechanism = "await"
	// Retry is Deschedule on the dynamic read set (Alg. 5).
	Retry Mechanism = "retry"
	// RetryOrig is the original metadata-based retry (Alg. 1; STM only).
	RetryOrig Mechanism = "retry-orig"
	// Restart aborts and immediately re-attempts (no sleeping).
	Restart Mechanism = "restart"
)

// All lists every mechanism in the order the paper's legends use.
var All = []Mechanism{Pthreads, TMCondVar, WaitPred, Await, Retry, RetryOrig, Restart}

// TM lists the transactional mechanisms (everything but Pthreads).
var TM = []Mechanism{TMCondVar, WaitPred, Await, Retry, RetryOrig, Restart}

// ForEngine returns the mechanisms applicable to an engine: Retry-Orig is
// STM-only (the paper's HTM figures omit it; hardware modes expose no
// metadata), and Pthreads applies to all configurations as the
// non-transactional baseline.
func ForEngine(engine string) []Mechanism {
	out := make([]Mechanism, 0, len(All))
	for _, m := range All {
		if m == RetryOrig && (engine == "htm" || engine == "hybrid") {
			continue
		}
		out = append(out, m)
	}
	return out
}

// Transactional reports whether the mechanism runs inside transactions.
func (m Mechanism) Transactional() bool { return m != Pthreads }
