package mech_test

import (
	"testing"

	"tmsync/internal/mech"
)

func TestAllContainsSeven(t *testing.T) {
	if len(mech.All) != 7 {
		t.Fatalf("All has %d mechanisms, want 7", len(mech.All))
	}
	if mech.All[0] != mech.Pthreads {
		t.Fatal("Pthreads must lead the legend order")
	}
}

func TestTMExcludesPthreads(t *testing.T) {
	if len(mech.TM) != 6 {
		t.Fatalf("TM has %d mechanisms", len(mech.TM))
	}
	for _, m := range mech.TM {
		if m == mech.Pthreads {
			t.Fatal("TM includes Pthreads")
		}
	}
}

func TestForEngine(t *testing.T) {
	for engine, want := range map[string]int{"eager": 7, "lazy": 7, "htm": 6, "hybrid": 6} {
		got := mech.ForEngine(engine)
		if len(got) != want {
			t.Errorf("ForEngine(%s) = %d mechanisms, want %d", engine, len(got), want)
		}
		for _, m := range got {
			if m == mech.RetryOrig && (engine == "htm" || engine == "hybrid") {
				t.Errorf("ForEngine(%s) offers RetryOrig", engine)
			}
		}
	}
}

func TestTransactional(t *testing.T) {
	if mech.Pthreads.Transactional() {
		t.Error("Pthreads is not transactional")
	}
	for _, m := range mech.TM {
		if !m.Transactional() {
			t.Errorf("%s should be transactional", m)
		}
	}
}
