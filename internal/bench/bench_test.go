package bench_test

import (
	"testing"

	"tmsync/internal/bench"
	"tmsync/internal/mech"
)

func TestNewSystemEngines(t *testing.T) {
	for _, e := range []string{"eager", "lazy", "htm"} {
		if _, err := bench.NewSystem(e); err != nil {
			t.Errorf("NewSystem(%s): %v", e, err)
		}
	}
	if _, err := bench.NewSystem("nope"); err == nil {
		t.Error("NewSystem(nope) should fail")
	}
}

func TestRunBufferSmall(t *testing.T) {
	for _, m := range []mech.Mechanism{mech.Pthreads, mech.Retry, mech.TMCondVar} {
		ts, err := bench.RunBuffer(bench.BufferConfig{
			Engine: "lazy", Mech: m,
			Producers: 2, Consumers: 2, BufferSize: 4,
			TotalOps: 2048, Trials: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(ts) != 2 {
			t.Fatalf("%s: %d trials", m, len(ts))
		}
		for _, x := range ts {
			if x <= 0 {
				t.Fatalf("%s: non-positive time %v", m, x)
			}
		}
	}
}

func TestRunBufferRejectsIndivisible(t *testing.T) {
	_, err := bench.RunBuffer(bench.BufferConfig{
		Engine: "lazy", Mech: mech.Retry,
		Producers: 3, Consumers: 2, BufferSize: 4, TotalOps: 100, Trials: 1,
	})
	if err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestRunParsecChecksumAgreement(t *testing.T) {
	var ref uint64
	for i, m := range []mech.Mechanism{mech.Pthreads, mech.Retry, mech.Await} {
		ts, cs, err := bench.RunParsec(bench.ParsecConfig{
			Engine: "eager", Mech: m, Benchmark: "ferret",
			Threads: 2, Scale: 1, Trials: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(ts) != 1 {
			t.Fatalf("%s: %d trials", m, len(ts))
		}
		if i == 0 {
			ref = cs
		} else if cs != ref {
			t.Fatalf("%s checksum %x != pthreads %x", m, cs, ref)
		}
	}
}

func TestRunParsecRejectsInvalidThreads(t *testing.T) {
	if _, _, err := bench.RunParsec(bench.ParsecConfig{
		Engine: "eager", Mech: mech.Retry, Benchmark: "fluidanimate",
		Threads: 3, Scale: 1, Trials: 1,
	}); err == nil {
		t.Fatal("fluidanimate at 3 threads should be rejected")
	}
}

func TestMechsFor(t *testing.T) {
	if len(bench.MechsFor("eager")) != 7 {
		t.Errorf("eager mechanisms = %d, want 7", len(bench.MechsFor("eager")))
	}
	for _, m := range bench.MechsFor("htm") {
		if m == mech.RetryOrig {
			t.Error("RetryOrig offered under HTM")
		}
	}
	if len(bench.MechsFor("htm")) != 6 {
		t.Errorf("htm mechanisms = %d, want 6", len(bench.MechsFor("htm")))
	}
}
