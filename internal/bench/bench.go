// Package bench is the measurement harness behind every table and figure
// of the evaluation (§2.4): it times the bounded-buffer microbenchmark
// grid of Figures 2.3–2.5 and the PARSEC-skeleton matrix of Figures
// 2.6–2.8, averaging multiple trials as the paper does.
package bench

import (
	"fmt"
	"sync"

	"tmsync"
	"tmsync/internal/buffer"
	"tmsync/internal/mech"
	"tmsync/internal/mono"
	"tmsync/internal/parsecsim"
	"tmsync/internal/stats"
	"tmsync/internal/tm"
)

// NewSystem builds a TM system for the named engine ("eager", "lazy",
// "htm"), with condition synchronization enabled.
func NewSystem(engine string) (*tmsync.System, error) {
	switch tmsync.EngineKind(engine) {
	case tmsync.Eager, tmsync.Lazy, tmsync.HTM, tmsync.Hybrid:
		return tmsync.New(tmsync.EngineKind(engine), tmsync.Config{}), nil
	}
	return nil, fmt.Errorf("bench: unknown engine %q", engine)
}

// BufferConfig parameterizes one bounded-buffer cell: the paper's pi-cj
// panels with buffer sizes 4/16/128 (§2.4.1).
type BufferConfig struct {
	Engine     string // ignored for the Pthreads mechanism
	Mech       mech.Mechanism
	Producers  int
	Consumers  int
	BufferSize int
	// TotalOps is the number of elements produced and consumed
	// (the paper uses 2^20); it must be divisible by both thread counts.
	TotalOps int
	Trials   int
}

// RunBuffer measures cfg, returning per-trial wall-clock seconds.
func RunBuffer(cfg BufferConfig) ([]float64, error) {
	if cfg.TotalOps%cfg.Producers != 0 || cfg.TotalOps%cfg.Consumers != 0 {
		return nil, fmt.Errorf("bench: TotalOps %d not divisible by p=%d, c=%d", cfg.TotalOps, cfg.Producers, cfg.Consumers)
	}
	times := make([]float64, 0, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		secs, err := runBufferTrial(cfg)
		if err != nil {
			return nil, err
		}
		times = append(times, secs)
	}
	return times, nil
}

// prefill half-fills the buffer, as the experiments do before each trial.
func prefillVals(size int) []uint64 {
	vals := make([]uint64, size/2)
	for i := range vals {
		vals[i] = uint64(i) + 1
	}
	return vals
}

func runBufferTrial(cfg BufferConfig) (float64, error) {
	perProd := cfg.TotalOps / cfg.Producers
	perCons := cfg.TotalOps / cfg.Consumers
	var wg sync.WaitGroup

	if cfg.Mech == mech.Pthreads {
		b := buffer.NewLock(cfg.BufferSize)
		b.Prefill(prefillVals(cfg.BufferSize))
		start := mono.Now()
		for p := 0; p < cfg.Producers; p++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for i := 0; i < perProd; i++ {
					b.Put(uint64(id*perProd+i) + 1)
				}
			}(p)
		}
		for c := 0; c < cfg.Consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perCons; i++ {
					b.Get()
				}
			}()
		}
		wg.Wait()
		return start.Elapsed().Seconds(), nil
	}

	sys, err := NewSystem(cfg.Engine)
	if err != nil {
		return 0, err
	}
	b := buffer.NewTM(cfg.BufferSize)
	b.Prefill(prefillVals(cfg.BufferSize))
	start := mono.Now()
	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < perProd; i++ {
				b.PutMech(thr, cfg.Mech, uint64(id*perProd+i)+1)
			}
		}(p)
	}
	for c := 0; c < cfg.Consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < perCons; i++ {
				b.GetMech(thr, cfg.Mech)
			}
		}()
	}
	wg.Wait()
	return start.Elapsed().Seconds(), nil
}

// ParsecConfig parameterizes one PARSEC-skeleton cell (Figures 2.6–2.8).
type ParsecConfig struct {
	Engine    string
	Mech      mech.Mechanism
	Benchmark string
	Threads   int
	Scale     int
	Trials    int
}

// RunParsec measures cfg, returning per-trial seconds and the workload
// checksum (identical across mechanisms, or the run is invalid).
func RunParsec(cfg ParsecConfig) ([]float64, uint64, error) {
	b, err := parsecsim.ByName(cfg.Benchmark)
	if err != nil {
		return nil, 0, err
	}
	if !b.ValidThreads(cfg.Threads) {
		return nil, 0, fmt.Errorf("bench: %s does not run at %d threads", cfg.Benchmark, cfg.Threads)
	}
	var sum uint64
	times := make([]float64, 0, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		k := &parsecsim.Kit{Mech: cfg.Mech}
		if cfg.Mech != mech.Pthreads {
			sys, err := NewSystem(cfg.Engine)
			if err != nil {
				return nil, 0, err
			}
			k.Sys = sys.System
		}
		start := mono.Now()
		cs := b.Run(k, cfg.Threads, cfg.Scale)
		times = append(times, start.Elapsed().Seconds())
		if trial == 0 {
			sum = cs
		} else if cs != sum {
			return nil, 0, fmt.Errorf("bench: %s checksum varied across trials (%x vs %x)", cfg.Benchmark, cs, sum)
		}
	}
	return times, sum, nil
}

// MechsFor lists the mechanisms that run under an engine, Pthreads first
// (Retry-Orig is omitted under HTM, as in the paper's figures).
func MechsFor(engine string) []mech.Mechanism { return mech.ForEngine(engine) }

// Cell is one measured (mechanism → timing) entry of a figure panel.
type Cell struct {
	Mech    mech.Mechanism
	Summary stats.Summary
}

// ThreadOf exposes tm.Thread construction to callers that only hold the
// facade type (examples and cmds construct workers themselves).
func ThreadOf(sys *tmsync.System) *tm.Thread { return sys.NewThread() }
