package parsecsim_test

import (
	"testing"

	"tmsync/internal/core"
	"tmsync/internal/htm"
	"tmsync/internal/mech"
	"tmsync/internal/parsecsim"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

func newKit(engine string, m mech.Mechanism) *parsecsim.Kit {
	if m == mech.Pthreads {
		return &parsecsim.Kit{Mech: m}
	}
	var sys *tm.System
	switch engine {
	case "eager":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, eager.New)
	case "lazy":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, lazy.New)
	case "htm":
		sys = tm.NewSystem(tm.Config{}, htm.New)
	}
	core.Enable(sys)
	return &parsecsim.Kit{Mech: m, Sys: sys}
}

// referenceChecksums computes each benchmark's expected checksum once,
// from the trivially-correct configuration (Pthreads, 1 thread).
func referenceChecksums(t *testing.T, scale int) map[string]uint64 {
	t.Helper()
	ref := make(map[string]uint64)
	for _, b := range parsecsim.Benchmarks {
		k := newKit("", mech.Pthreads)
		ref[b.Name] = b.Run(k, 1, scale)
	}
	return ref
}

func TestChecksumThreadIndependentPthreads(t *testing.T) {
	ref := referenceChecksums(t, 1)
	for _, b := range parsecsim.Benchmarks {
		for _, n := range []int{2, 4} {
			if !b.ValidThreads(n) {
				continue
			}
			k := newKit("", mech.Pthreads)
			if got := b.Run(k, n, 1); got != ref[b.Name] {
				t.Errorf("%s: %d-thread checksum %x != reference %x", b.Name, n, got, ref[b.Name])
			}
		}
	}
}

func TestAllMechanismsMatchReference(t *testing.T) {
	// Short mode runs a reduced matrix (one engine) instead of skipping,
	// so `go test -short` still exercises every mechanism × benchmark.
	engines := []string{"eager", "lazy", "htm"}
	if testing.Short() {
		engines = engines[:1]
	}
	ref := referenceChecksums(t, 1)
	for _, engine := range engines {
		t.Run(engine, func(t *testing.T) {
			for _, m := range mech.ForEngine(engine) {
				if m == mech.Pthreads {
					continue
				}
				t.Run(string(m), func(t *testing.T) {
					for _, b := range parsecsim.Benchmarks {
						n := 2
						if !b.ValidThreads(n) {
							n = 1
						}
						k := newKit(engine, m)
						if got := b.Run(k, n, 1); got != ref[b.Name] {
							t.Errorf("%s: checksum %x != reference %x", b.Name, got, ref[b.Name])
						}
					}
				})
			}
		})
	}
}

func TestHigherThreadCounts(t *testing.T) {
	ref := referenceChecksums(t, 1)
	for _, b := range parsecsim.Benchmarks {
		n := 4
		if testing.Short() {
			n = 2 // reduced short-mode variant
		}
		if !b.ValidThreads(n) {
			continue
		}
		k := newKit("lazy", mech.Retry)
		if got := b.Run(k, n, 1); got != ref[b.Name] {
			t.Errorf("%s at 4 threads: %x != %x", b.Name, got, ref[b.Name])
		}
	}
}

func TestByName(t *testing.T) {
	b, err := parsecsim.ByName("dedup")
	if err != nil || b.Name != "dedup" {
		t.Fatalf("ByName(dedup) = %v, %v", b, err)
	}
	if _, err := parsecsim.ByName("nonesuch"); err == nil {
		t.Fatal("ByName(nonesuch) should fail")
	}
}

func TestSyncPointCountsMatchTable21(t *testing.T) {
	want := map[string]int{
		"bodytrack": 5, "dedup": 3, "facesim": 7, "ferret": 2,
		"fluidanimate": 4, "raytrace": 3, "streamcluster": 5, "x264": 1,
	}
	for _, b := range parsecsim.Benchmarks {
		if b.SyncPoints != want[b.Name] {
			t.Errorf("%s: SyncPoints = %d, Table 2.1 says %d", b.Name, b.SyncPoints, want[b.Name])
		}
	}
}

func TestValidThreadConstraints(t *testing.T) {
	fluid, _ := parsecsim.ByName("fluidanimate")
	for n, want := range map[int]bool{1: true, 2: true, 3: false, 4: true, 6: false, 8: true} {
		if fluid.ValidThreads(n) != want {
			t.Errorf("fluidanimate.ValidThreads(%d) = %v", n, !want)
		}
	}
	sc, _ := parsecsim.ByName("streamcluster")
	for n, want := range map[int]bool{1: true, 2: true, 3: false, 4: true, 5: false, 6: true} {
		if sc.ValidThreads(n) != want {
			t.Errorf("streamcluster.ValidThreads(%d) = %v", n, !want)
		}
	}
}

func TestKitPrimitivesBarrier(t *testing.T) {
	// Direct barrier test: n goroutines cross the barrier r times; a
	// shared phase counter may only advance when everyone has arrived.
	for _, engine := range []string{"eager", "htm"} {
		for _, m := range []mech.Mechanism{mech.Pthreads, mech.Retry, mech.WaitPred, mech.TMCondVar} {
			t.Run(engine+"/"+string(m), func(t *testing.T) {
				k := newKit(engine, m)
				bar := k.NewBarrier(4)
				const rounds = 50
				arrive := make([][]int, 4)
				done := make(chan int, 4)
				for w := 0; w < 4; w++ {
					go func(id int) {
						thr := k.NewThread()
						var sense uint64
						for r := 0; r < rounds; r++ {
							arrive[id] = append(arrive[id], r)
							bar.Arrive(thr, &sense)
						}
						done <- id
					}(w)
				}
				for i := 0; i < 4; i++ {
					<-done
				}
				for id := range arrive {
					if len(arrive[id]) != rounds {
						t.Fatalf("worker %d crossed %d times", id, len(arrive[id]))
					}
				}
			})
		}
	}
}

func TestKitCounterWaitAtLeast(t *testing.T) {
	for _, m := range []mech.Mechanism{mech.Pthreads, mech.Await, mech.RetryOrig, mech.Restart} {
		t.Run(string(m), func(t *testing.T) {
			k := newKit("eager", m)
			c := k.NewCounter()
			done := make(chan struct{})
			go func() {
				thr := k.NewThread()
				c.WaitAtLeast(thr, 10)
				close(done)
			}()
			adder := k.NewThread()
			for i := 0; i < 10; i++ {
				c.Add(adder, 1)
			}
			<-done
			if got := c.Value(adder); got != 10 {
				t.Fatalf("value = %d", got)
			}
		})
	}
}
