package parsecsim

import "sync"

// runFerret models PARSEC ferret's similarity-search pipeline: a loader
// feeds query segments through a bounded queue to ranking workers, whose
// results flow through a second queue to a single output stage — two
// condition-synchronization points (Table 2.1 lists 2).
func runFerret(k *Kit, threads, scale int) uint64 {
	queries := 256 * scale

	q1 := k.NewQueue(24)
	q2 := k.NewQueue(24)
	var cs checksum
	var wg sync.WaitGroup

	// Middle stage: ranking workers.
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := k.NewThread()
			defer thr.Detach()
			for {
				v := q1.Get(thr) // syncpoint(ferret): query dequeue
				if v == poison {
					break
				}
				q2.Put(thr, workUnit(5, v)%(poison>>1)+1)
			}
		}()
	}

	// Output stage.
	wg.Add(1)
	go func() {
		defer wg.Done()
		thr := k.NewThread()
		defer thr.Detach()
		var local uint64
		for n := 0; n < queries; n++ {
			v := q2.Get(thr) // syncpoint(ferret): result dequeue
			local += workUnit(1, v)
		}
		cs.add(local)
	}()

	// Load stage.
	main := k.NewThread()
	for n := 0; n < queries; n++ {
		q1.Put(main, uint64(n)+1)
	}
	for w := 0; w < threads; w++ {
		q1.Put(main, poison)
	}
	main.Detach()
	wg.Wait()
	return cs.value()
}
