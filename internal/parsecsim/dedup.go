package parsecsim

import (
	"sync"

	"tmsync/internal/mech"
	"tmsync/internal/tm"
)

// runDedup models PARSEC dedup's three-stage pipeline: a chunker feeds a
// bounded queue, compressor threads transform chunks into a second queue,
// and a writer drains it while performing "I/O". The producer throttles
// against the writer with a window counter. Three condition-
// synchronization points (Table 2.1 lists 3).
//
// The paper observes that dedup performs I/O inside critical sections, so
// the TM runtime forbids concurrency during those transactions (§2.4.2);
// we model this with genuinely irrevocable transactions (tx.Irrevocable),
// which suspend all other transactions for the duration of the "I/O" and
// reproduce dedup's pathological TM slowdown.
func runDedup(k *Kit, threads, scale int) uint64 {
	chunks := 192 * scale
	const window = 64
	compressors := threads

	q1 := k.NewQueue(32)
	q2 := k.NewQueue(32)
	written := k.NewCounter()
	var cs checksum
	var wg sync.WaitGroup

	// Stage 2: compressors.
	for wkr := 0; wkr < compressors; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := k.NewThread()
			defer thr.Detach()
			for {
				v := q1.Get(thr) // syncpoint(dedup): chunk dequeue
				if v == poison {
					break
				}
				q2.Put(thr, workUnit(6, v)%(poison>>1)+1)
			}
		}()
	}

	// Stage 3: writer with irrevocable "I/O" sections.
	wg.Add(1)
	go func() {
		defer wg.Done()
		thr := k.NewThread()
		defer thr.Detach()
		var local uint64
		for n := 0; n < chunks; n++ {
			v := q2.Get(thr) // syncpoint(dedup): compressed-chunk dequeue
			if k.Mech == mech.Pthreads {
				local += workUnit(2, v)
			} else {
				// I/O inside a critical section: the transaction turns
				// irrevocable, suspending all concurrency (§2.4.2). The
				// side effect runs exactly once, in the irrevocable
				// re-execution.
				thr.Atomic(func(tx *tm.Tx) {
					tx.Irrevocable()
					local += workUnit(2, v)
				})
			}
			written.Add(thr, 1)
		}
		cs.add(local)
	}()

	// Stage 1: chunker, throttled against the writer.
	main := k.NewThread()
	for n := 0; n < chunks; n++ {
		if n >= window {
			// syncpoint(dedup): producer window throttle
			written.WaitAtLeast(main, uint64(n-window+1))
		}
		q1.Put(main, uint64(n)+1)
	}
	for wkr := 0; wkr < compressors; wkr++ {
		q1.Put(main, poison)
	}
	main.Detach()
	wg.Wait()
	return cs.value()
}
