// Package parsecsim reproduces the concurrency skeletons of the eight
// PARSEC benchmarks that use condition variables (Table 2.1), each
// runnable under all seven condition-synchronization mechanisms. The
// image/video kernels themselves are replaced by a deterministic
// arithmetic workload; what the paper evaluates — and what these skeletons
// preserve — is the synchronization structure: pipelines with bounded
// queues (dedup, ferret), thread pools with completion counters (bodytrack,
// facesim, raytrace), barrier-phased iteration (fluidanimate,
// streamcluster), and frame-dependency waits (x264).
package parsecsim

import (
	"sync"

	"tmsync/internal/buffer"
	"tmsync/internal/condvar"
	"tmsync/internal/core"
	"tmsync/internal/mech"
	"tmsync/internal/mem"
	"tmsync/internal/tm"
)

// Kit binds a workload run to one mechanism and (for transactional
// mechanisms) one TM system. Sys is nil iff Mech == Pthreads.
type Kit struct {
	Mech mech.Mechanism
	Sys  *tm.System
}

// NewThread returns a TM thread handle, or nil for the Pthreads baseline.
func (k *Kit) NewThread() *tm.Thread {
	if k.Sys == nil {
		return nil
	}
	return k.Sys.NewThread()
}

// Counter is a shared counter with a "wait until at least N" operation —
// the workhorse behind completion counters, start gates, termination
// flags, and frame-progress waits. Each mechanism supplies its own wait
// implementation; increments broadcast under Pthreads because waiters may
// have different targets.
type Counter struct {
	k *Kit

	v    mem.Var // transactional representation
	pred core.Pred

	mu   sync.Mutex // Pthreads representation
	cond *sync.Cond
	pv   uint64

	tcv *condvar.Var // TMCondVar representation
}

// NewCounter returns a counter starting at zero.
func (k *Kit) NewCounter() *Counter {
	c := &Counter{k: k, tcv: condvar.New()}
	c.cond = sync.NewCond(&c.mu)
	c.pred = func(tx *tm.Tx, args []uint64) bool { return c.v.Get(tx) >= args[0] }
	return c
}

// Add increments the counter by delta and wakes eligible waiters.
func (c *Counter) Add(thr *tm.Thread, delta uint64) {
	if c.k.Mech == mech.Pthreads {
		c.mu.Lock()
		c.pv += delta
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	thr.Atomic(func(tx *tm.Tx) {
		c.v.Set(tx, c.v.Get(tx)+delta)
		if c.k.Mech == mech.TMCondVar {
			c.tcv.Broadcast(tx)
		}
	})
}

// Set stores an absolute value (setup and flag use).
func (c *Counter) Set(thr *tm.Thread, val uint64) {
	if c.k.Mech == mech.Pthreads {
		c.mu.Lock()
		c.pv = val
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	thr.Atomic(func(tx *tm.Tx) {
		c.v.Set(tx, val)
		if c.k.Mech == mech.TMCondVar {
			c.tcv.Broadcast(tx)
		}
	})
}

// InitValue stores an initial value before any concurrency begins
// (setup only; no waiters can exist yet).
func (c *Counter) InitValue(v uint64) {
	c.v.Store(v)
	c.pv = v
}

// Value reads the counter (mechanism-appropriate synchronization).
func (c *Counter) Value(thr *tm.Thread) uint64 {
	if c.k.Mech == mech.Pthreads {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.pv
	}
	var out uint64
	thr.Atomic(func(tx *tm.Tx) { out = c.v.Get(tx) })
	return out
}

// WaitAtLeast blocks until the counter reaches target. This is a
// condition-synchronization point; the body is the per-mechanism
// translation of "while (count < target) wait" from the PARSEC ports.
func (c *Counter) WaitAtLeast(thr *tm.Thread, target uint64) {
	if c.k.Mech == mech.Pthreads {
		c.mu.Lock()
		for c.pv < target {
			c.cond.Wait()
		}
		c.mu.Unlock()
		return
	}
	thr.Atomic(func(tx *tm.Tx) {
		if c.v.Get(tx) >= target {
			return
		}
		switch c.k.Mech {
		case mech.TMCondVar:
			c.tcv.Wait(tx)
		case mech.WaitPred:
			core.WaitPred(tx, c.pred, target)
		case mech.Await:
			core.Await(tx, c.v.Addr())
		case mech.Retry:
			core.Retry(tx)
		case mech.RetryOrig:
			core.RetryOrig(tx)
		case mech.Restart:
			tx.Restart()
		}
	})
}

// Barrier is a reusable sense-reversing barrier. As §2.3 observes, the
// classic two-wait reusable barrier cannot be obtained from condition
// variables by simple substitution; the sense-reversing restructuring
// below is the redesign the paper anticipates.
type Barrier struct {
	k     *Kit
	n     uint64
	count mem.Var
	sense mem.Var
	pred  core.Pred

	mu            sync.Mutex
	cond          *sync.Cond
	pcount, psens uint64

	tcv *condvar.Var
}

// NewBarrier returns a barrier for n participants.
func (k *Kit) NewBarrier(n int) *Barrier {
	b := &Barrier{k: k, n: uint64(n), tcv: condvar.New()}
	b.cond = sync.NewCond(&b.mu)
	b.pred = func(tx *tm.Tx, args []uint64) bool { return b.sense.Get(tx) != args[0] }
	return b
}

// Arrive blocks until all n participants have arrived. local is the
// caller's sense word (start at 0, owned by one goroutine).
func (b *Barrier) Arrive(thr *tm.Thread, local *uint64) {
	old := *local
	*local = 1 - old
	if b.k.Mech == mech.Pthreads {
		b.mu.Lock()
		b.pcount++
		if b.pcount == b.n {
			b.pcount = 0
			b.psens = 1 - old
			b.cond.Broadcast()
		} else {
			for b.psens == old {
				b.cond.Wait()
			}
		}
		b.mu.Unlock()
		return
	}
	last := false
	thr.Atomic(func(tx *tm.Tx) {
		c := b.count.Get(tx) + 1
		if c == b.n {
			b.count.Set(tx, 0)
			b.sense.Set(tx, 1-old)
			last = true
			if b.k.Mech == mech.TMCondVar {
				b.tcv.Broadcast(tx)
			}
		} else {
			b.count.Set(tx, c)
		}
	})
	if last {
		return
	}
	thr.Atomic(func(tx *tm.Tx) {
		if b.sense.Get(tx) != old {
			return
		}
		switch b.k.Mech {
		case mech.TMCondVar:
			b.tcv.Wait(tx)
		case mech.WaitPred:
			core.WaitPred(tx, b.pred, old)
		case mech.Await:
			core.Await(tx, b.sense.Addr())
		case mech.Retry:
			core.Retry(tx)
		case mech.RetryOrig:
			core.RetryOrig(tx)
		case mech.Restart:
			tx.Restart()
		}
	})
}

// Queue is a bounded FIFO connecting pipeline stages, backed by the
// bounded buffer of Figure 2.2 in the mechanism-appropriate variant.
type Queue struct {
	k  *Kit
	tb *buffer.TMBuffer
	lb *buffer.LockBuffer
}

// NewQueue returns an empty bounded queue of the given capacity.
func (k *Kit) NewQueue(capacity int) *Queue {
	q := &Queue{k: k}
	if k.Mech == mech.Pthreads {
		q.lb = buffer.NewLock(capacity)
	} else {
		q.tb = buffer.NewTM(capacity)
	}
	return q
}

// Put inserts v, blocking while the queue is full.
func (q *Queue) Put(thr *tm.Thread, v uint64) {
	if q.k.Mech == mech.Pthreads {
		q.lb.Put(v)
		return
	}
	q.tb.PutMech(thr, q.k.Mech, v)
}

// Get removes an element, blocking while the queue is empty.
func (q *Queue) Get(thr *tm.Thread) uint64 {
	if q.k.Mech == mech.Pthreads {
		return q.lb.Get()
	}
	return q.tb.GetMech(thr, q.k.Mech)
}
