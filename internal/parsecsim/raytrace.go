package parsecsim

import "sync"

// runRaytrace models PARSEC raytrace's dynamic tile queue: workers wait
// for the scene-ready flag, pull tiles from a shared bounded queue, and
// the main thread waits for all tiles to finish — three condition-
// synchronization points (Table 2.1 lists 3).
func runRaytrace(k *Kit, threads, scale int) uint64 {
	tiles := 160 * scale

	q := k.NewQueue(16)
	sceneReady := k.NewCounter()
	finished := k.NewCounter()
	var cs checksum
	var wg sync.WaitGroup

	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := k.NewThread()
			defer thr.Detach()
			// syncpoint(raytrace): wait for the scene to be built
			sceneReady.WaitAtLeast(thr, 1)
			var local uint64
			for {
				v := q.Get(thr) // syncpoint(raytrace): tile dequeue
				if v == poison {
					break
				}
				local += workUnit(5, v)
				finished.Add(thr, 1)
			}
			cs.add(local)
		}()
	}

	main := k.NewThread()
	// "Build the scene", then release the workers.
	cs.add(workUnit(8, 12345))
	sceneReady.Set(main, 1)
	for n := 0; n < tiles; n++ {
		q.Put(main, uint64(n)+1)
	}
	for w := 0; w < threads; w++ {
		q.Put(main, poison)
	}
	// syncpoint(raytrace): wait for all tiles to be traced
	finished.WaitAtLeast(main, uint64(tiles))
	main.Detach()
	wg.Wait()
	return cs.value()
}
