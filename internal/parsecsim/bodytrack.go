package parsecsim

import "sync"

// runBodytrack models PARSEC bodytrack's thread-pool structure: for each
// frame the main thread enqueues particle-evaluation tasks into a bounded
// queue, workers drain it, and the frame boundary is enforced by a
// completion counter, a frame gate, and a worker barrier — five distinct
// condition-synchronization points (Table 2.1 lists 5).
func runBodytrack(k *Kit, threads, scale int) uint64 {
	const tasksPerFrame = 48
	frames := 2 * scale

	q := k.NewQueue(16)
	done := k.NewCounter()
	frameGate := k.NewCounter()
	bar := k.NewBarrier(threads)
	var cs checksum
	var wg sync.WaitGroup

	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := k.NewThread()
			defer thr.Detach()
			var sense uint64
			var local uint64
			for f := 0; f < frames; f++ {
				for {
					v := q.Get(thr) // syncpoint(bodytrack): pool task dequeue
					if v == poison {
						break
					}
					local += workUnit(4, v)
					done.Add(thr, 1)
				}
				// syncpoint(bodytrack): wait for the frame gate
				frameGate.WaitAtLeast(thr, uint64(f+1))
				// syncpoint(bodytrack): inter-frame worker barrier
				bar.Arrive(thr, &sense)
			}
			cs.add(local)
		}()
	}

	main := k.NewThread()
	for f := 0; f < frames; f++ {
		for t := 0; t < tasksPerFrame; t++ {
			// syncpoint(bodytrack): bounded task enqueue
			q.Put(main, uint64(f*tasksPerFrame+t)+1)
		}
		for w := 0; w < threads; w++ {
			q.Put(main, poison)
		}
		// syncpoint(bodytrack): wait for all frame tasks to complete
		done.WaitAtLeast(main, uint64((f+1)*tasksPerFrame))
		frameGate.Set(main, uint64(f+1))
	}
	main.Detach()
	wg.Wait()
	return cs.value()
}
