package parsecsim

import "sync"

// runX264 models PARSEC x264's frame-parallel encoder: frame i's encoder
// may only process a macroblock row once frame i-1's encoder has advanced
// past the rows it references, so each worker waits on the previous
// frame's progress counter — a single condition-synchronization point
// (Table 2.1 lists 1).
func runX264(k *Kit, threads, scale int) uint64 {
	frames := 8 * scale
	const rows = 24
	const lag = 3 // rows of the previous frame a row depends on

	progress := make([]*Counter, frames+1)
	for i := range progress {
		progress[i] = k.NewCounter()
	}
	progress[0].InitValue(rows) // virtual frame -1 is fully "encoded"
	var cs checksum
	var wg sync.WaitGroup

	// Workers encode frames round-robin; within a frame, rows are
	// sequential, waiting on the previous frame's row progress.
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := k.NewThread()
			defer thr.Detach()
			var local uint64
			for f := id; f < frames; f += threads {
				for r := 0; r < rows; r++ {
					need := uint64(min(r+lag+1, rows))
					// syncpoint(x264): wait for the reference rows of the
					// previous frame to be encoded
					progress[f].WaitAtLeast(thr, need)
					local += workUnit(2, uint64(f)<<20|uint64(r)+1)
					progress[f+1].Add(thr, 1)
				}
			}
			cs.add(local)
		}(w)
	}
	wg.Wait()
	return cs.value()
}
