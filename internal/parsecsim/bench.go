package parsecsim

import (
	"fmt"
	"sync/atomic"

	"tmsync/internal/mech"
)

// workUnit is the deterministic arithmetic kernel standing in for the
// PARSEC computation: a xorshift mixing loop whose result feeds the
// run's checksum so it cannot be optimized away.
func workUnit(units int, seed uint64) uint64 {
	x := seed*2654435761 + 1
	for i := 0; i < units*32; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// poison marks end-of-stream in pipeline queues. Real payloads are
// sequence numbers well below it.
const poison = ^uint64(0)

// Benchmark describes one PARSEC-skeleton workload.
type Benchmark struct {
	// Name matches the PARSEC benchmark the skeleton models.
	Name string
	// SyncPoints is the number of distinct condition-synchronization call
	// sites, matching the parenthesized counts of Table 2.1.
	SyncPoints int
	// ValidThreads reports whether the benchmark runs at n threads
	// ("some benchmarks only execute for thread counts that are even or
	// powers of two", §2.4.2).
	ValidThreads func(n int) bool
	// Run executes the workload with n worker threads at the given scale
	// and returns a checksum that must be identical across mechanisms,
	// engines, and thread counts.
	Run func(k *Kit, threads, scale int) uint64
}

func anyThreads(int) bool { return true }

func pow2Threads(n int) bool { return n > 0 && n&(n-1) == 0 }

func evenThreads(n int) bool { return n == 1 || n%2 == 0 }

// Benchmarks lists the eight PARSEC workloads that use condition
// synchronization, in Table 2.1 order.
var Benchmarks = []Benchmark{
	{Name: "bodytrack", SyncPoints: 5, ValidThreads: anyThreads, Run: runBodytrack},
	{Name: "dedup", SyncPoints: 3, ValidThreads: anyThreads, Run: runDedup},
	{Name: "facesim", SyncPoints: 7, ValidThreads: anyThreads, Run: runFacesim},
	{Name: "ferret", SyncPoints: 2, ValidThreads: anyThreads, Run: runFerret},
	{Name: "fluidanimate", SyncPoints: 4, ValidThreads: pow2Threads, Run: runFluidanimate},
	{Name: "raytrace", SyncPoints: 3, ValidThreads: anyThreads, Run: runRaytrace},
	{Name: "streamcluster", SyncPoints: 5, ValidThreads: evenThreads, Run: runStreamcluster},
	{Name: "x264", SyncPoints: 1, ValidThreads: anyThreads, Run: runX264},
}

// Reference computes the benchmark's expected checksum at the given
// scale from the trivially-correct configuration — the Pthreads baseline
// on one thread. Every engine × mechanism × thread-count execution must
// reproduce it exactly; the differential harness uses it as the
// sequential oracle for the PARSEC scenarios.
func (b *Benchmark) Reference(scale int) uint64 {
	return b.Run(&Kit{Mech: mech.Pthreads}, 1, scale)
}

// ByName looks a benchmark up.
func ByName(name string) (*Benchmark, error) {
	for i := range Benchmarks {
		if Benchmarks[i].Name == name {
			return &Benchmarks[i], nil
		}
	}
	return nil, fmt.Errorf("parsecsim: unknown benchmark %q", name)
}

// checksum accumulates per-worker results without touching transactional
// state (the checksum is measurement plumbing, not workload state).
type checksum struct {
	v atomic.Uint64
}

func (c *checksum) add(x uint64)  { c.v.Add(x) }
func (c *checksum) value() uint64 { return c.v.Load() }
