package parsecsim

import "sync"

// runFacesim models PARSEC facesim's iterative fork-join solver: each
// iteration runs three dependent phases; workers wait for each phase's
// start gate and the main thread waits for each phase's completion
// counter, plus a final join — seven condition-synchronization points
// (Table 2.1 lists 7).
func runFacesim(k *Kit, threads, scale int) uint64 {
	iters := 6 * scale
	const itemsPerPhase = 24

	start := [3]*Counter{k.NewCounter(), k.NewCounter(), k.NewCounter()}
	done := [3]*Counter{k.NewCounter(), k.NewCounter(), k.NewCounter()}
	joined := k.NewCounter()
	var cs checksum
	var wg sync.WaitGroup

	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := k.NewThread()
			defer thr.Detach()
			var local uint64
			for it := 0; it < iters; it++ {
				// syncpoint(facesim): phase-0 start gate
				start[0].WaitAtLeast(thr, uint64(it+1))
				local += phaseWork(0, it, id, threads, itemsPerPhase)
				done[0].Add(thr, 1)
				// syncpoint(facesim): phase-1 start gate
				start[1].WaitAtLeast(thr, uint64(it+1))
				local += phaseWork(1, it, id, threads, itemsPerPhase)
				done[1].Add(thr, 1)
				// syncpoint(facesim): phase-2 start gate
				start[2].WaitAtLeast(thr, uint64(it+1))
				local += phaseWork(2, it, id, threads, itemsPerPhase)
				done[2].Add(thr, 1)
			}
			cs.add(local)
			joined.Add(thr, 1)
		}(w)
	}

	main := k.NewThread()
	for it := 0; it < iters; it++ {
		start[0].Set(main, uint64(it+1))
		// syncpoint(facesim): phase-0 completion wait
		done[0].WaitAtLeast(main, uint64(threads*(it+1)))
		start[1].Set(main, uint64(it+1))
		// syncpoint(facesim): phase-1 completion wait
		done[1].WaitAtLeast(main, uint64(threads*(it+1)))
		start[2].Set(main, uint64(it+1))
		// syncpoint(facesim): phase-2 completion wait
		done[2].WaitAtLeast(main, uint64(threads*(it+1)))
	}
	// syncpoint(facesim): final join
	joined.WaitAtLeast(main, uint64(threads))
	main.Detach()
	wg.Wait()
	return cs.value()
}

// phaseWork computes worker id's share of a phase's fixed item set; the
// per-item seeds depend only on (phase, iter, item), so the sum over all
// workers is thread-count independent.
func phaseWork(phase, iter, id, threads, items int) uint64 {
	var acc uint64
	for i := id; i < items; i += threads {
		acc += workUnit(3, uint64(phase)<<40|uint64(iter)<<20|uint64(i)+1)
	}
	return acc
}
