package parsecsim

import "sync"

// runFluidanimate models PARSEC fluidanimate's barrier-phased particle
// simulation: every timestep runs four compute phases separated by
// reusable barriers — four condition-synchronization points (Table 2.1
// lists 4). Like the original, it requires a power-of-two thread count.
func runFluidanimate(k *Kit, threads, scale int) uint64 {
	steps := 8 * scale
	const itemsPerPhase = 32

	bar := k.NewBarrier(threads)
	var cs checksum
	var wg sync.WaitGroup

	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := k.NewThread()
			defer thr.Detach()
			var sense uint64
			var local uint64
			for st := 0; st < steps; st++ {
				local += phaseWork(10, st, id, threads, itemsPerPhase)
				bar.Arrive(thr, &sense) // syncpoint(fluidanimate): density barrier
				local += phaseWork(11, st, id, threads, itemsPerPhase)
				bar.Arrive(thr, &sense) // syncpoint(fluidanimate): force barrier
				local += phaseWork(12, st, id, threads, itemsPerPhase)
				bar.Arrive(thr, &sense) // syncpoint(fluidanimate): advance barrier
				local += phaseWork(13, st, id, threads, itemsPerPhase)
				bar.Arrive(thr, &sense) // syncpoint(fluidanimate): rebin barrier
			}
			cs.add(local)
		}(w)
	}
	wg.Wait()
	return cs.value()
}
