package parsecsim

import "sync"

// runStreamcluster models PARSEC streamcluster's barrier-dominated
// k-median loop: each round runs distance evaluation, a serial reduction
// by thread 0, center assignment, a cost update, and a convergence check,
// each separated by a reusable barrier — five condition-synchronization
// points (Table 2.1 lists 5). Streamcluster is the most barrier-intensive
// PARSEC benchmark, so condition-synchronization latency matters most
// here. Thread counts must be 1 or even, as in the original's partitioning.
func runStreamcluster(k *Kit, threads, scale int) uint64 {
	rounds := 10 * scale
	const itemsPerPhase = 16

	bar := k.NewBarrier(threads)
	var cs checksum
	var wg sync.WaitGroup

	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := k.NewThread()
			defer thr.Detach()
			var sense uint64
			var local uint64
			for r := 0; r < rounds; r++ {
				local += phaseWork(20, r, id, threads, itemsPerPhase)
				bar.Arrive(thr, &sense) // syncpoint(streamcluster): distance barrier
				if id == 0 {
					local += workUnit(2, uint64(r)+7) // serial reduction
				}
				bar.Arrive(thr, &sense) // syncpoint(streamcluster): reduction barrier
				local += phaseWork(21, r, id, threads, itemsPerPhase)
				bar.Arrive(thr, &sense) // syncpoint(streamcluster): assignment barrier
				local += phaseWork(22, r, id, threads, itemsPerPhase)
				bar.Arrive(thr, &sense) // syncpoint(streamcluster): cost barrier
				bar.Arrive(thr, &sense) // syncpoint(streamcluster): convergence barrier
			}
			cs.add(local)
		}(w)
	}
	wg.Wait()
	return cs.value()
}
