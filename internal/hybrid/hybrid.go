// Package hybrid implements a Hybrid TM: best-effort hardware transactions
// that fall back to a concurrent lazy STM — not a global lock — after
// exhausting their retry budget. The paper argues (§2.2.6) that the
// Deschedule mechanism supports HyTM with no changes, because both modes
// coordinate through the same orec table and value-based waitsets; this
// engine demonstrates that claim.
//
// Design: hardware attempts behave exactly as in package htm (buffered
// writes, signature-based eager dooming, capacity limits, commit-time orec
// validation). Software attempts are TL2-style transactions that acquire
// orecs at commit, which hardware validation already observes — so the two
// modes serialize against each other with no global lock and no mode
// barrier. Escape actions (waitset logging, descheduling) are available in
// the software mode, so Retry/Await/WaitPred switch a hardware transaction
// to an STM re-execution rather than a serialized one.
package hybrid

import (
	"sync/atomic"

	"tmsync/internal/locktable"
	"tmsync/internal/tm"
)

// Engine is the hybrid back end. Construct with New.
type Engine struct {
	sys *tm.System
}

// New returns the engine factory expected by tm.NewSystem.
func New(sys *tm.System) tm.Engine { return &Engine{sys: sys} }

// Name implements tm.Engine.
func (e *Engine) Name() string { return "hybrid" }

// Begin chooses hardware or software mode: software when escape actions
// were requested (WantSoftware/IsRetry) or the hardware retry budget is
// exhausted; hardware otherwise. Unlike the pure-HTM engine there is no
// serialization — software transactions run concurrently.
func (e *Engine) Begin(tx *tm.Tx) {
	if tx.WantSoftware || tx.IsRetry || tx.Attempts > e.sys.Cfg.HTMMaxRetries || tx.SerialHeld {
		tx.WantSoftware = false
		tx.Mode = tm.ModeSTM
		tx.StampTableView()
		tx.Start = tx.Thr.PublishStartSerialAware(tx)
		return
	}
	t := tx.Thr
	for {
		// Hardware attempts must not start inside an irrevocable section,
		// and must stand down if one begins while they publish: the
		// section's drain loop waits for HWActive to clear.
		for e.sys.SerialActive.Load() != 0 {
			yield()
		}
		t.Doomed.Store(false)
		t.SigReset()
		t.HWActive.Store(true)
		if e.sys.SerialActive.Load() != 0 {
			t.HWActive.Store(false)
			continue
		}
		break
	}
	tx.Mode = tm.ModeHW
	tx.StampTableView()
	tx.Start = t.PublishStart()
}

func (e *Engine) checkHW(tx *tm.Tx) {
	if tx.Thr.Doomed.Load() {
		tx.Thr.HWActive.Store(false)
		tx.Abort(tm.AbortConflict)
	}
	if p := e.sys.Cfg.HTMSpuriousAbortPerMille; p > 0 && tx.Rand()%1000 < uint64(p) {
		tx.Thr.HWActive.Store(false)
		tx.Abort(tm.AbortSpurious)
	}
}

// sampleRead performs the orec/value/orec consistent read shared by both
// modes. In software mode a too-new version tries timestamp extension
// (when enabled and the caller permits it) before aborting; hardware
// attempts never extend — their start is fixed for the signature-based
// conflict window.
func (e *Engine) sampleRead(tx *tm.Tx, addr *uint64, extend bool) (uint64, uint32, uint64) {
	idx := e.sys.Table.IndexOf(addr)
	w1 := e.sys.Table.Get(idx)
	val := atomic.LoadUint64(addr)
	w2 := e.sys.Table.Get(idx)
	if w1 == w2 && !locktable.Locked(w1) {
		v := locktable.Version(w1)
		if v <= tx.Start {
			return val, idx, v
		}
		// Keep a deferred clock moving so the extension (or the
		// re-executed attempt) starts late enough to read this version.
		e.sys.Clock.NoteStale(v)
		// After a successful extension the consistent sample (val, v) is
		// still current iff the extended start covers v and the orec is
		// unchanged. The v <= tx.Start recheck is load-bearing: under
		// global/pof a rollback can republish a version the clock has
		// not reached yet, so the extended start may still predate v.
		// The word recheck is sound because versions strictly increase
		// across lock cycles (clock.Source invariant), so an equal word
		// means no intervening commit.
		if extend && tx.Mode != tm.ModeHW && e.sys.Cfg.TimestampExtension && e.tryExtend(tx) && v <= tx.Start && e.sys.Table.Get(idx) == w1 {
			return val, idx, v
		}
	}
	if tx.Mode == tm.ModeHW {
		tx.Thr.HWActive.Store(false)
	}
	tx.Abort(tm.AbortConflict)
	panic("unreachable")
}

// tryExtend implements timestamp extension for software attempts: if
// every prior read's orec still carries the exact version observed at
// read time, the snapshot is valid at the current clock, so the start
// time advances instead of aborting on a too-new read. Exact-match is
// what keeps this sound under shared and deferred timestamps.
//
//tm:extend
func (e *Engine) tryExtend(tx *tm.Tx) bool {
	now := e.sys.Clock.Now()
	for i := range tx.Reads {
		w := e.sys.Table.Get(tx.Reads[i].Orec)
		if locktable.Locked(w) && locktable.Owner(w) != tx.Thr.ID {
			return false
		}
		if locktable.Version(w) != tx.Reads[i].Ver {
			return false
		}
	}
	tx.Start = now
	tx.Thr.ActiveStart.Store(now + 1)
	return true
}

// Read implements tm.Engine. Both modes buffer writes, so read-after-write
// consults the redo log; software mode additionally logs the waitset when
// re-executing for Retry.
func (e *Engine) Read(tx *tm.Tx, addr *uint64) uint64 {
	if tx.Mode == tm.ModeHW {
		e.checkHW(tx)
		if buf, ok := tx.Redo.Get(addr); ok {
			return buf
		}
		val, idx, ver := e.sampleRead(tx, addr, false)
		tx.Thr.SigAdd(idx)
		tx.Reads = append(tx.Reads, tm.ReadEntry{Addr: addr, Orec: idx, Ver: ver})
		tx.HWReads++
		if tx.HWReads > e.sys.Cfg.HTMReadCap {
			tx.Thr.HWActive.Store(false)
			tx.Abort(tm.AbortCapacity)
		}
		return val
	}
	if tx.IsRetry {
		val, idx, ver := e.sampleRead(tx, addr, true)
		tx.Reads = append(tx.Reads, tm.ReadEntry{Addr: addr, Orec: idx, Ver: ver})
		tx.LogWait(addr, val)
		if buf, ok := tx.Redo.Get(addr); ok {
			return buf
		}
		return val
	}
	if buf, ok := tx.Redo.Get(addr); ok {
		return buf
	}
	val, idx, ver := e.sampleRead(tx, addr, true)
	tx.Reads = append(tx.Reads, tm.ReadEntry{Addr: addr, Orec: idx, Ver: ver})
	return val
}

// Write implements tm.Engine.
func (e *Engine) Write(tx *tm.Tx, addr *uint64, val uint64) {
	idx := e.sys.Table.IndexOf(addr)
	if tx.Mode == tm.ModeHW {
		e.checkHW(tx)
		tx.Thr.SigAdd(idx)
		if _, dup := tx.Redo.Get(addr); !dup {
			tx.HWWrites++
			if tx.HWWrites > e.sys.Cfg.HTMWriteCap {
				tx.Thr.HWActive.Store(false)
				tx.Abort(tm.AbortCapacity)
			}
		}
	}
	tx.Redo.Put(addr, val, idx)
}

// Commit implements tm.Engine: the same two-phase orec commit in both
// modes (the shared orec protocol is what makes the hybrid coherent);
// hardware commits additionally doom overlapping hardware readers.
func (e *Engine) Commit(tx *tm.Tx) {
	hw := tx.Mode == tm.ModeHW
	t := tx.Thr
	if hw {
		e.checkHW(tx)
	}
	if tx.Redo.Len() == 0 {
		if hw {
			t.HWActive.Store(false)
		}
		return
	}
	for i := range tx.Redo.Entries {
		idx := tx.Redo.Entries[i].Orec
		if e.holds(tx, idx) {
			continue
		}
		w := e.sys.Table.Get(idx)
		//tm:lock-acquire
		if locktable.Locked(w) || !e.sys.Table.CAS(idx, w, locktable.LockedBy(t.ID, locktable.Version(w))) {
			if hw {
				t.HWActive.Store(false)
			}
			tx.Abort(tm.AbortConflict)
		}
		if v := locktable.Version(w); v > tx.MaxLockVer {
			tx.MaxLockVer = v
		}
		tx.Locks = append(tx.Locks, idx)
		tx.NoteWriteStripe(idx)
	}
	end, exclusive := e.sys.Clock.Commit(tx.Start, tx.MaxLockVer)
	if !exclusive && !e.validateReads(tx) {
		if hw {
			t.HWActive.Store(false)
		}
		tx.Abort(tm.AbortConflict)
	}
	// An online stripe resize since Begin invalidates the attempt's
	// write-stripe set; abort (Rollback clears HWActive) and re-execute
	// against the new geometry — the same rule in both modes.
	tx.RevalidateTableGen()
	// Doom concurrent hardware transactions whose signatures overlap the
	// write set — software committers must do this too, or hardware
	// readers would miss eager invalidation from the software path.
	others := e.sys.Threads()
	for i := range tx.Redo.Entries {
		idx := tx.Redo.Entries[i].Orec
		for _, o := range others {
			if o != t && o.HWActive.Load() && o.SigMightContain(idx) {
				o.Doomed.Store(true)
			}
		}
	}
	for i := range tx.Redo.Entries {
		atomic.StoreUint64(tx.Redo.Entries[i].Addr, tx.Redo.Entries[i].Val)
	}
	tx.WriteOrecs = append(tx.WriteOrecs, tx.Locks...)
	for _, idx := range tx.Locks {
		e.sys.Table.Set(idx, locktable.UnlockedAt(end))
	}
	tx.Locks = tx.Locks[:0]
	if hw {
		t.HWActive.Store(false)
	} else if e.sys.Cfg.Quiesce {
		t.ActiveStart.Store(0)
		e.sys.Quiesce(t, end)
	}
}

func (e *Engine) holds(tx *tm.Tx, idx uint32) bool {
	for _, l := range tx.Locks {
		if l == idx {
			return true
		}
	}
	return false
}

func (e *Engine) validateReads(tx *tm.Tx) bool {
	for i := range tx.Reads {
		w := e.sys.Table.Get(tx.Reads[i].Orec)
		if locktable.Locked(w) {
			if locktable.Owner(w) != tx.Thr.ID || locktable.Version(w) > tx.Start {
				return false
			}
		} else if v := locktable.Version(w); v > tx.Start {
			e.sys.Clock.NoteStale(v)
			return false
		}
	}
	return true
}

// Validate implements tm.Engine.
func (e *Engine) Validate(tx *tm.Tx) bool { return e.validateReads(tx) }

// Rollback implements tm.Engine: both modes buffer writes, so rollback is
// lock release only.
//
//tm:rollback
func (e *Engine) Rollback(tx *tm.Tx) {
	tx.Thr.HWActive.Store(false)
	if len(tx.Locks) == 0 {
		return
	}
	// Bump before releasing: under global/pof the republished versions
	// must already be covered by the clock when they become visible, or
	// a concurrent Commit could hand the same version out again.
	e.sys.Clock.Bump()
	for _, idx := range tx.Locks {
		w := e.sys.Table.Get(idx)
		e.sys.Table.Set(idx, locktable.UnlockedAt(locktable.Version(w)+1))
	}
	tx.Locks = tx.Locks[:0]
}

// AwaitSnapshot implements tm.Engine: hardware transactions must restart
// in software mode first (core.Await arranges that); in software mode the
// committed values are read directly, as in the lazy STM.
func (e *Engine) AwaitSnapshot(tx *tm.Tx, addrs []*uint64) {
	if tx.Mode == tm.ModeHW {
		panic("hybrid: AwaitSnapshot requires software mode")
	}
	for _, addr := range addrs {
		// No extension here: the attempt is about to deschedule, and the
		// waitset must stay consistent with the start the reads used.
		val, _, _ := e.sampleRead(tx, addr, false)
		tx.LogWait(addr, val)
	}
}
