package hybrid

import "runtime"

// yield parks the goroutine briefly while waiting out a serial
// (irrevocable) section.
func yield() { runtime.Gosched() }
