package hybrid_test

import (
	"sync"
	"testing"

	"tmsync/internal/hybrid"
	"tmsync/internal/tm"
)

// TestFallbackIsConcurrent is the defining hybrid property: software-mode
// transactions (past the hardware retry budget) commit without ever
// taking the serial lock, and do so concurrently with hardware-mode
// transactions on disjoint data.
func TestFallbackIsConcurrent(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true, HTMMaxRetries: 0}, hybrid.New)
	// HTMMaxRetries 0: everything falls back to software on attempt 2;
	// force that by aborting every hardware attempt.
	var counters [4]uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < 500; i++ {
				thr.Atomic(func(tx *tm.Tx) {
					if tx.Mode == tm.ModeHW {
						tx.Abort(tm.AbortExplicit)
					}
					tx.Write(&counters[id], tx.Read(&counters[id])+1)
				})
			}
		}(w)
	}
	wg.Wait()
	for id := range counters {
		if counters[id] != 500 {
			t.Fatalf("counter[%d] = %d", id, counters[id])
		}
	}
	if sys.Stats.Serializations.Load() != 0 {
		t.Fatalf("software fallback serialized %d times; it must be concurrent", sys.Stats.Serializations.Load())
	}
}

// TestModesInteroperate runs hardware and forced-software transactions
// against the same counter; the shared orec protocol must serialize them
// correctly.
func TestModesInteroperate(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true}, hybrid.New)
	var counter uint64
	var wg sync.WaitGroup
	const per = 1000
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func() { // hardware-path incrementer
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < per; i++ {
				thr.Atomic(func(tx *tm.Tx) {
					tx.Write(&counter, tx.Read(&counter)+1)
				})
			}
		}()
		go func() { // software-path incrementer
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < per; i++ {
				thr.Atomic(func(tx *tm.Tx) {
					if tx.Mode == tm.ModeHW {
						tx.RestartSoftware()
					}
					tx.Write(&counter, tx.Read(&counter)+1)
				})
			}
		}()
	}
	wg.Wait()
	if counter != 4*per {
		t.Fatalf("counter = %d, want %d (mode interop broke atomicity)", counter, 4*per)
	}
}

// TestSoftwareWritesInvisibleUntilCommit: the software fallback buffers
// writes exactly like the lazy STM.
func TestSoftwareWritesInvisibleUntilCommit(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true}, hybrid.New)
	t1 := sys.NewThread()
	t2 := sys.NewThread()
	var x uint64 = 1
	t1.Atomic(func(tx *tm.Tx) {
		if tx.Mode == tm.ModeHW {
			tx.RestartSoftware()
		}
		tx.Write(&x, 50)
		var seen uint64
		t2.Atomic(func(tx2 *tm.Tx) { seen = tx2.Read(&x) })
		if seen != 1 {
			t.Errorf("buffered software write leaked: %d", seen)
		}
	})
	if x != 50 {
		t.Fatalf("x = %d", x)
	}
}
