package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// HookNil verifies that every call through a nilable hook field is
// dominated by a nil check. The runtime's System hooks (PostCommit,
// FlushWakeups, Tracer, WakeLatency) are nil outside the configurations
// that install them, and every new call site is a latent nil-dereference
// panic on the commit path — the bug shape PR 7's Tracer plumbing had to
// hand-audit. Hook fields are recognized two ways: the built-in table of
// the runtime's own hooks below, and any struct field annotated //tm:hook
// in its doc comment.
//
// Accepted guard shapes (the ones the driver actually uses):
//
//	if x.Hook != nil { x.Hook(...) }
//	if fn := x.Hook; fn != nil { fn(...) }
//	fn := x.Hook
//	if fn == nil { return }
//	fn(...)
var HookNil = &Analyzer{
	Name: "hooknil",
	Doc:  "calls through nilable hook fields (//tm:hook and the System hooks) must be nil-guarded",
	Run:  runHookNil,
}

// builtinHooks names the runtime's hook fields by declaring package,
// struct, and field — so call sites in *other* packages, where the
// declaring file's //tm:hook comments are not in view, are still checked.
var builtinHooks = map[string]map[string]bool{
	"tmsync/internal/tm.System": {
		"PostCommit":   true,
		"FlushWakeups": true,
		"Tracer":       true,
		"WakeLatency":  true,
	},
}

func runHookNil(p *Pass) {
	annotated := collectAnnotatedHooks(p)

	// aliasOf maps a local object to the hook selector expression it was
	// assigned from (fn := x.Hook).
	aliasOf := make(map[types.Object]*ast.SelectorExpr)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr)
				if !ok || !isHookField(p, annotated, sel) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						aliasOf[obj] = sel
					} else if obj := p.Info.Uses[id]; obj != nil {
						aliasOf[obj] = sel
					}
				}
			}
			return true
		})
	}

	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			hookExpr, fieldName := hookExprOfCall(p, annotated, aliasOf, call)
			if hookExpr == nil {
				return true
			}
			if nilGuarded(p, hookExpr, call, stack) {
				return true
			}
			p.Reportf(call.Pos(),
				"call through nilable hook %s is not dominated by a nil check: the hook is nil outside configurations that install it", fieldName)
			return true
		})
	}
}

// collectAnnotatedHooks gathers the field objects declared with //tm:hook
// in this package.
func collectAnnotatedHooks(p *Pass) map[types.Object]bool {
	hooks := make(map[types.Object]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !groupHasDirective(fld.Doc, DirHook) && !groupHasDirective(fld.Comment, DirHook) {
					continue
				}
				for _, name := range fld.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						hooks[obj] = true
					}
				}
			}
			return true
		})
	}
	return hooks
}

// isHookField reports whether sel selects a hook field: one annotated
// //tm:hook in this package, or one of the runtime's built-in hooks.
func isHookField(p *Pass, annotated map[types.Object]bool, sel *ast.SelectorExpr) bool {
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	if annotated[s.Obj()] {
		return true
	}
	named, ok := deref(s.Recv()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return builtinHooks[key][s.Obj().Name()]
}

// hookExprOfCall identifies the nilable hook expression a call goes
// through: the hook selector itself (x.Hook(...)), a local alias
// (fn(...)), or — for interface-typed hooks — the receiver of a method
// call (x.Hook.Event(...), tr.Event(...)).
func hookExprOfCall(p *Pass, annotated map[types.Object]bool, aliasOf map[types.Object]*ast.SelectorExpr, call *ast.CallExpr) (ast.Expr, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[fun]; obj != nil {
			if sel, ok := aliasOf[obj]; ok {
				return fun, sel.Sel.Name
			}
		}
	case *ast.SelectorExpr:
		if isHookField(p, annotated, fun) {
			return fun, fun.Sel.Name
		}
		// Method call: is the receiver a hook field or an alias of one?
		if s := p.Info.Selections[fun]; s != nil && s.Kind() == types.MethodVal {
			switch recv := ast.Unparen(fun.X).(type) {
			case *ast.SelectorExpr:
				if isHookField(p, annotated, recv) {
					return recv, recv.Sel.Name
				}
			case *ast.Ident:
				if obj := p.Info.Uses[recv]; obj != nil {
					if sel, ok := aliasOf[obj]; ok {
						return recv, sel.Sel.Name
					}
				}
			}
		}
	}
	return nil, ""
}

// nilGuarded reports whether the call is dominated by a nil check of the
// hook expression: an enclosing if whose condition conjoins
// `<hook> != nil`, or an earlier `if <hook> == nil { return/panic }` in a
// block on the ancestor chain.
func nilGuarded(p *Pass, hookExpr ast.Expr, call *ast.CallExpr, stack []ast.Node) bool {
	want := exprString(p.Fset, hookExpr)
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			// Only a check guarding the then-branch dominates the call.
			if within(call, anc.Body) && condHasNilCheck(p, anc.Cond, want, token.NEQ) {
				return true
			}
		case *ast.BlockStmt:
			// An earlier `if <hook> == nil { return }` in this block.
			for _, stmt := range anc.List {
				if stmt.End() >= call.Pos() {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || !condHasNilCheck(p, ifs.Cond, want, token.EQL) {
					continue
				}
				if terminates(ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

func within(n ast.Node, in ast.Node) bool {
	return in != nil && in.Pos() <= n.Pos() && n.End() <= in.End()
}

// condHasNilCheck reports whether cond contains `<want> <op> nil` as a
// conjunct (walks through && and parentheses).
func condHasNilCheck(p *Pass, cond ast.Expr, want string, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op || found {
			return !found
		}
		x, y := exprString(p.Fset, be.X), exprString(p.Fset, be.Y)
		if (x == want && y == "nil") || (y == want && x == "nil") {
			found = true
		}
		return !found
	})
	return found
}

// terminates reports whether a block always leaves the enclosing function
// or loop iteration (the domination argument for early-return guards).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}
