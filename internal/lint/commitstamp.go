package lint

import (
	"go/ast"
	"go/types"

	"tmsync/internal/lint/flow"
)

// CommitStamp checks the publication half of the commit protocol: the
// timestamp returned by Clock.Commit is the only version a committing
// transaction may publish. Every orec Set that runs after writeback
// must be dominated by the Clock.Commit call, and its version argument
// must derive (through local assignments) from Commit's result — a
// version derived from an earlier Now() sample can be at or below a
// concurrently-published version, silently un-serializing the commit
// under the pass-on-failure and deferred clock modes.
//
// Scope: functions that call Clock.Commit. Rollback republishes (which
// intentionally publish bumped old versions) live in functions without
// a Commit call and are bumporder's responsibility.
var CommitStamp = &Analyzer{
	Name: "commitstamp",
	Doc:  "post-writeback orec publishes must carry the Clock.Commit timestamp",
	Run:  runCommitStamp,
}

func runCommitStamp(p *Pass) {
	pr := newProtocol(p)
	for _, fd := range funcDecls(p) {
		// Gather Clock.Commit / Clock.Now assignment roots and all orec
		// publishes in straight-line flow.
		var commitStmts []ast.Node
		stampRoots := map[types.Object]bool{}
		nowRoots := map[types.Object]bool{}
		var publishes []*ast.CallExpr
		inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			if underDeferOrGo(stack) {
				return true
			}
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					if m, ok := pr.clockMethod(call); ok {
						switch m {
						case "Commit":
							commitStmts = append(commitStmts, as)
							if len(as.Lhs) > 0 {
								if obj := lhsObj(p, as.Lhs[0]); obj != nil {
									stampRoots[obj] = true
								}
							}
						case "Now":
							if len(as.Lhs) > 0 {
								if obj := lhsObj(p, as.Lhs[0]); obj != nil {
									nowRoots[obj] = true
								}
							}
						}
					}
				}
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if m, ok := pr.clockMethod(call); ok && m == "Commit" {
					if _, isAssign := findAssignParent(stack); !isAssign {
						commitStmts = append(commitStmts, call)
					}
				}
				if m, ok := pr.orecMethod(call); ok && m == "Set" {
					publishes = append(publishes, call)
				} else if p.DirectiveNear(call.Pos(), DirRepublish) {
					publishes = append(publishes, call)
				}
			}
			return true
		})
		if len(commitStmts) == 0 || len(publishes) == 0 {
			continue
		}

		// Propagate stamp- and Now-derivation through local assignments
		// to a fixpoint: `end2 := end + 1` keeps end2 stamp-derived.
		propagate := func(roots map[types.Object]bool) {
			for changed := true; changed; {
				changed = false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					as, ok := n.(*ast.AssignStmt)
					if !ok || len(as.Rhs) == 0 {
						return true
					}
					rhsDerived := false
					for _, r := range as.Rhs {
						if mentionsObj(p, r, roots) {
							rhsDerived = true
						}
					}
					if !rhsDerived {
						return true
					}
					for _, l := range as.Lhs {
						if obj := lhsObj(p, l); obj != nil && !roots[obj] {
							roots[obj] = true
							changed = true
						}
					}
					return true
				})
			}
		}
		propagate(stampRoots)
		propagate(nowRoots)

		g := flow.New(fd.Body, pr.flowOpts())
		dom := flow.Dominators(g)
		for _, pub := range publishes {
			dominated := false
			for _, cs := range commitStmts {
				if g.NodeDominates(dom, cs, pub) {
					dominated = true
					break
				}
			}
			if !dominated {
				p.Reportf(pub.Pos(), "orec publish precedes the Clock.Commit stamp")
				continue
			}
			stamped := false
			fromNow := false
			for _, arg := range pub.Args {
				if mentionsObj(p, arg, stampRoots) {
					stamped = true
				}
				if mentionsObj(p, arg, nowRoots) {
					fromNow = true
				}
			}
			if !stamped {
				if fromNow {
					p.Reportf(pub.Pos(), "orec publish uses a version derived from a stale Clock.Now sample instead of the Clock.Commit timestamp")
				} else {
					p.Reportf(pub.Pos(), "orec publish does not derive from the Clock.Commit timestamp")
				}
			}
		}
	}
}

// lhsObj resolves the object an assignment target binds or updates.
func lhsObj(p *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Defs[x]; obj != nil {
			return obj
		}
		return p.Info.Uses[x]
	case *ast.SelectorExpr:
		return p.Info.Uses[x.Sel]
	}
	return nil
}

// mentionsObj reports whether e's subtree references any object in set.
func mentionsObj(p *Pass, e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// findAssignParent reports whether the innermost statement ancestor is an
// assignment (the call's result is being bound).
func findAssignParent(stack []ast.Node) (*ast.AssignStmt, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			return s, true
		case ast.Stmt:
			return nil, false
		}
	}
	return nil, false
}
