package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The meta-test proves each analyzer is live end to end: for every
// analyzer it writes a tiny package containing exactly one violation,
// runs the real tmlint driver over it, and asserts the exit code and the
// diagnostic text. If an analyzer silently stops reporting — a refactor
// drops it from the suite, a loader change loses the comments it keys
// on — this test fails even though the repo itself still lints clean.

var seededViolations = []struct {
	analyzer string
	src      string
	wantMsg  string
}{
	{
		analyzer: "lockorder",
		src: `package seed

import "sync"

type shard struct {
	mu      sync.Mutex
	waiters []int
}

func unvetted(s *shard) {
	s.mu.Lock()
	s.mu.Unlock()
}
`,
		wantMsg: "outside a //tm:lockorder-checked helper",
	},
	{
		analyzer: "atomicfield",
		src: `package seed

import "sync/atomic"

type c struct{ n uint64 }

func f(x *c) uint64 {
	atomic.AddUint64(&x.n, 1)
	return x.n
}
`,
		wantMsg: "mixed atomic/non-atomic access",
	},
	{
		analyzer: "noblockinatomic",
		src: `package seed

import "time"

type eng struct{}

func (eng) Atomic(fn func()) { fn() }

func f(e eng) {
	e.Atomic(func() {
		time.Sleep(time.Millisecond)
	})
}
`,
		wantMsg: "inside an Atomic(...) closure",
	},
	{
		analyzer: "monoclock",
		src: `package seed

import "time"

func f() time.Time {
	return time.Now()
}
`,
		wantMsg: "must go through internal/mono",
	},
	{
		analyzer: "padcheck",
		src: `package seed

//tm:padded
type almost struct {
	n uint64
}
`,
		wantMsg: "cache line",
	},
	{
		analyzer: "bumporder",
		src: `package seed

//tm:orec-table
type table struct{ w [4]uint64 }

func (t *table) Get(i int) uint64    { return t.w[i] }
func (t *table) Set(i int, v uint64) { t.w[i] = v }

//tm:clock-source
type clock struct{ t uint64 }

func (c *clock) Bump() { c.t++ }

//tm:rollback
func release(t *table, c *clock, locks []int) {
	for _, i := range locks {
		t.Set(i, t.Get(i)+2)
	}
	c.Bump()
}
`,
		wantMsg: "not dominated by a Clock.Bump call",
	},
	{
		analyzer: "commitstamp",
		src: `package seed

//tm:orec-table
type table struct{ w [4]uint64 }

func (t *table) Set(i int, v uint64) { t.w[i] = v }

//tm:clock-source
type clock struct{ t uint64 }

func (c *clock) Now() uint64 { return c.t }

func (c *clock) Commit(start, max uint64) uint64 { c.t++; return c.t }

func publish(t *table, c *clock, locks []int) {
	now := c.Now()
	_ = c.Commit(now, 0)
	for _, i := range locks {
		t.Set(i, now<<1)
	}
}
`,
		wantMsg: "stale Clock.Now sample",
	},
	{
		analyzer: "extrecheck",
		src: `package seed

//tm:orec-table
type table struct{ w [4]uint64 }

func (t *table) Get(i int) uint64 { return t.w[i] }

//tm:clock-source
type clock struct{ t uint64 }

func (c *clock) Now() uint64 { c.t++; return c.t }

type tx struct {
	Start uint64
	clk   *clock
}

//tm:extend
func (x *tx) tryExtend() bool {
	x.Start = x.clk.Now()
	return true
}

func read(x *tx, t *table, i int) uint64 {
	w := t.Get(i)
	if x.tryExtend() && t.Get(i) == w {
		return w >> 1
	}
	return 0
}
`,
		wantMsg: "without a ver <= tx.Start recheck",
	},
	{
		analyzer: "lockverflow",
		src: `package seed

//tm:orec-table
type table struct{ w [4]uint64 }

func (t *table) Get(i int) uint64 { return t.w[i] }

func (t *table) CAS(i int, old, new uint64) bool {
	if t.w[i] != old {
		return false
	}
	t.w[i] = new
	return true
}

//tm:clock-source
type clock struct{ t uint64 }

func (c *clock) Commit(start, max uint64) uint64 { c.t++; return c.t }

type tx struct {
	Start      uint64
	MaxLockVer uint64
}

func commit(x *tx, t *table, c *clock, locks []int) uint64 {
	for _, i := range locks {
		w := t.Get(i)
		//tm:lock-acquire
		if !t.CAS(i, w, w|1) {
			return 0
		}
	}
	return c.Commit(x.Start, x.MaxLockVer)
}
`,
		wantMsg: "no reaching Tx.MaxLockVer update before the Clock.Commit call",
	},
	{
		analyzer: "hooknil",
		src: `package seed

type sys struct {
	//tm:hook
	Hook func()
}

func f(s *sys) {
	s.Hook()
}
`,
		wantMsg: "not dominated by a nil check",
	},
}

func TestEveryAnalyzerIsLive(t *testing.T) {
	if len(seededViolations) != len(Analyzers) {
		t.Fatalf("meta-test seeds %d violations, suite has %d analyzers", len(seededViolations), len(Analyzers))
	}
	for _, tc := range seededViolations {
		t.Run(tc.analyzer, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "seed")
			if err := os.Mkdir(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(tc.src), 0o644); err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			code := Run([]string{dir}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("tmlint exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
			out := stderr.String()
			if !strings.Contains(out, tc.analyzer+":") {
				t.Errorf("stderr does not name analyzer %q:\n%s", tc.analyzer, out)
			}
			if !strings.Contains(out, tc.wantMsg) {
				t.Errorf("stderr does not contain %q:\n%s", tc.wantMsg, out)
			}
		})
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "clean")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package clean

func Add(a, b int) int { return a + b }
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := Run([]string{dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("tmlint exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "tmlint: ok") {
		t.Errorf("stdout missing ok marker: %q", stdout.String())
	}
}

func TestDriverUsageAndFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-args exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: tmlint") {
		t.Errorf("no-args stderr missing usage: %q", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := Run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Errorf("-list exit code = %d, want 0", code)
	}
	for _, a := range Analyzers {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := Run([]string{"-analyzers", "nosuch", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer exit code = %d, want 2", code)
	}
}
