package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The meta-test proves each analyzer is live end to end: for every
// analyzer it writes a tiny package containing exactly one violation,
// runs the real tmlint driver over it, and asserts the exit code and the
// diagnostic text. If an analyzer silently stops reporting — a refactor
// drops it from the suite, a loader change loses the comments it keys
// on — this test fails even though the repo itself still lints clean.

var seededViolations = []struct {
	analyzer string
	src      string
	wantMsg  string
}{
	{
		analyzer: "lockorder",
		src: `package seed

import "sync"

type shard struct {
	mu      sync.Mutex
	waiters []int
}

func unvetted(s *shard) {
	s.mu.Lock()
	s.mu.Unlock()
}
`,
		wantMsg: "outside a //tm:lockorder-checked helper",
	},
	{
		analyzer: "atomicfield",
		src: `package seed

import "sync/atomic"

type c struct{ n uint64 }

func f(x *c) uint64 {
	atomic.AddUint64(&x.n, 1)
	return x.n
}
`,
		wantMsg: "mixed atomic/non-atomic access",
	},
	{
		analyzer: "noblockinatomic",
		src: `package seed

import "time"

type eng struct{}

func (eng) Atomic(fn func()) { fn() }

func f(e eng) {
	e.Atomic(func() {
		time.Sleep(time.Millisecond)
	})
}
`,
		wantMsg: "inside an Atomic(...) closure",
	},
	{
		analyzer: "monoclock",
		src: `package seed

import "time"

func f() time.Time {
	return time.Now()
}
`,
		wantMsg: "must go through internal/mono",
	},
	{
		analyzer: "padcheck",
		src: `package seed

//tm:padded
type almost struct {
	n uint64
}
`,
		wantMsg: "cache line",
	},
	{
		analyzer: "hooknil",
		src: `package seed

type sys struct {
	//tm:hook
	Hook func()
}

func f(s *sys) {
	s.Hook()
}
`,
		wantMsg: "not dominated by a nil check",
	},
}

func TestEveryAnalyzerIsLive(t *testing.T) {
	if len(seededViolations) != len(Analyzers) {
		t.Fatalf("meta-test seeds %d violations, suite has %d analyzers", len(seededViolations), len(Analyzers))
	}
	for _, tc := range seededViolations {
		t.Run(tc.analyzer, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "seed")
			if err := os.Mkdir(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(tc.src), 0o644); err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			code := Run([]string{dir}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("tmlint exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
			out := stderr.String()
			if !strings.Contains(out, tc.analyzer+":") {
				t.Errorf("stderr does not name analyzer %q:\n%s", tc.analyzer, out)
			}
			if !strings.Contains(out, tc.wantMsg) {
				t.Errorf("stderr does not contain %q:\n%s", tc.wantMsg, out)
			}
		})
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "clean")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package clean

func Add(a, b int) int { return a + b }
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := Run([]string{dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("tmlint exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "tmlint: ok") {
		t.Errorf("stdout missing ok marker: %q", stdout.String())
	}
}

func TestDriverUsageAndFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-args exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: tmlint") {
		t.Errorf("no-args stderr missing usage: %q", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := Run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Errorf("-list exit code = %d, want 0", code)
	}
	for _, a := range Analyzers {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := Run([]string{"-analyzers", "nosuch", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer exit code = %d, want 2", code)
	}
}
