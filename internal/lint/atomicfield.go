package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces the all-or-nothing rule for atomics — the class of
// race behind PR 6's PendingActive/PendingMu split:
//
//  1. A struct field accessed through a sync/atomic function anywhere in
//     the package must be accessed atomically everywhere: one plain read
//     beside an atomic.LoadUint64 is a data race the race detector only
//     catches if a test happens to interleave it.
//  2. A value whose type (transitively, through non-pointer fields and
//     arrays) contains a sync/atomic type must not be copied: the copy
//     forks the atomic's state and silently decouples readers from
//     writers. Composite literals are initialization, not copies, and
//     stay legal.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "atomically-accessed fields must be atomic everywhere; structs containing atomics must not be copied",
	Run:  runAtomicField,
}

func runAtomicField(p *Pass) {
	checkMixedAccess(p)
	checkAtomicCopies(p)
}

// atomicFns is the set of sync/atomic functions whose first argument is
// the address of the word being operated on.
func isAtomicAddrFn(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(obj.Name(), prefix) {
			return true
		}
	}
	return false
}

func checkMixedAccess(p *Pass) {
	// Pass 1: fields whose address is taken by a sync/atomic call, and
	// the selector expressions so used (legal sites).
	atomicFields := make(map[types.Object]ast.Expr)
	atomicUse := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicAddrFn(calleeObj(p, call)) || len(call.Args) == 0 {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
				atomicFields[s.Obj()] = sel
				atomicUse[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: any other selector touching one of those fields is a plain
	// (racy) access. Taking the field's address (&x.f) is exempt: the
	// engine's whole API traffics in word addresses that are then accessed
	// atomically, and the address-of itself reads nothing.
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUse[sel] {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			if len(stack) > 0 {
				if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
					return true
				}
			}
			if first, hit := atomicFields[s.Obj()]; hit {
				p.Reportf(sel.Pos(),
					"plain access to field %s, which is accessed via sync/atomic at %s: mixed atomic/non-atomic access is a data race",
					s.Obj().Name(), p.Fset.Position(first.Pos()))
			}
			return true
		})
	}
}

// containsAtomic reports whether t transitively holds a sync/atomic value
// by value (pointers and maps break the chain: copying them aliases, not
// forks, the atomic).
func containsAtomic(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), seen)
	}
	return false
}

func (p *Pass) atomicBearing(t types.Type) bool {
	if t == nil {
		return false
	}
	return containsAtomic(t, make(map[types.Type]bool))
}

// copyExempt reports expressions whose evaluation is initialization
// rather than a copy of live state: composite literals and conversions of
// them.
func copyExempt(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// A conversion T(CompositeLit) — rare, but still initialization.
		if len(x.Args) == 1 {
			return copyExempt(x.Args[0])
		}
	}
	return false
}

func checkAtomicCopies(p *Pass) {
	report := func(pos ast.Node, how string, t types.Type) {
		p.Reportf(pos.Pos(), "%s copies %s, which contains sync/atomic state: the copy decouples readers from writers (use a pointer)", how, types.TypeString(t, types.RelativeTo(p.Pkg)))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range s.Rhs {
					tv, ok := p.Info.Types[rhs]
					if ok && p.atomicBearing(tv.Type) && !copyExempt(rhs) {
						report(rhs, "assignment", tv.Type)
					}
				}
			case *ast.ValueSpec:
				for _, v := range s.Values {
					tv, ok := p.Info.Types[v]
					if ok && p.atomicBearing(tv.Type) && !copyExempt(v) {
						report(v, "declaration", tv.Type)
					}
				}
			case *ast.CallExpr:
				if isAtomicAddrFn(calleeObj(p, s)) {
					return true
				}
				// unsafe.Offsetof/Sizeof/Alignof operands are not
				// evaluated; nothing is copied at run time.
				if obj := calleeObj(p, s); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "unsafe" {
					return true
				}
				for _, arg := range s.Args {
					tv, ok := p.Info.Types[arg]
					if ok && p.atomicBearing(tv.Type) && !copyExempt(arg) {
						report(arg, "call argument", tv.Type)
					}
				}
			case *ast.RangeStmt:
				if s.Value == nil {
					return true
				}
				// In a `for _, v := range` the value is a defining
				// identifier, recorded in Defs rather than Types.
				var vt types.Type
				if tv, ok := p.Info.Types[s.Value]; ok {
					vt = tv.Type
				} else if id, ok := s.Value.(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						vt = obj.Type()
					}
				}
				if p.atomicBearing(vt) {
					report(s.Value, "range clause", vt)
				}
			case *ast.FuncDecl:
				checkFuncSig(p, s.Recv, s.Type, report)
			case *ast.FuncLit:
				checkFuncSig(p, nil, s.Type, report)
			}
			return true
		})
	}
}

func checkFuncSig(p *Pass, recv *ast.FieldList, ft *ast.FuncType, report func(ast.Node, string, types.Type)) {
	fields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			tv, ok := p.Info.Types[fld.Type]
			if ok && p.atomicBearing(tv.Type) {
				report(fld.Type, what, tv.Type)
			}
		}
	}
	fields(recv, "value receiver")
	fields(ft.Params, "by-value parameter")
	fields(ft.Results, "by-value result")
}
