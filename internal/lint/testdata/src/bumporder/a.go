// Fixture for the bumporder analyzer: in //tm:rollback functions, the
// Clock.Bump call must dominate every orec republish. The annotated
// local types stand in for the runtime's locktable.Table and
// clock.Source, which a single-package fixture cannot import.
package bumporder

//tm:orec-table
type table struct{ words [8]uint64 }

func (t *table) Get(i int) uint64    { return t.words[i] }
func (t *table) Set(i int, w uint64) { t.words[i] = w }

//tm:clock-source
type clock struct{ t uint64 }

func (c *clock) Bump() { c.t++ }

type tx struct {
	locks []int
	tab   *table
	clk   *clock
}

// rollbackGood bumps the clock before the release loop: the Bump
// dominates every Set, so the republished versions are already covered.
//
//tm:rollback
func (x *tx) rollbackGood() {
	if len(x.locks) == 0 {
		return
	}
	x.clk.Bump()
	for _, i := range x.locks {
		x.tab.Set(i, x.tab.Get(i)+2)
	}
	x.locks = x.locks[:0]
}

// rollbackLate is the PR 9 bug shape: the versions become visible before
// the clock covers them.
//
//tm:rollback
func (x *tx) rollbackLate() {
	for _, i := range x.locks {
		x.tab.Set(i, x.tab.Get(i)+2) // want `orec republish is not dominated by a Clock\.Bump call`
	}
	x.clk.Bump()
}

// rollbackDeferred defers the bump, which runs after the releases it was
// supposed to precede — a deferred Bump must not count as dominating.
//
//tm:rollback
func (x *tx) rollbackDeferred() {
	defer x.clk.Bump()
	for _, i := range x.locks {
		x.tab.Set(i, x.tab.Get(i)+2) // want `orec republish is not dominated by a Clock\.Bump call`
	}
}

// rollbackBranch bumps on only one branch; the republish is reachable
// without passing the Bump.
//
//tm:rollback
func (x *tx) rollbackBranch(fast bool) {
	if !fast {
		x.clk.Bump()
	}
	x.tab.Set(0, 3) // want `orec republish is not dominated by a Clock\.Bump call`
}

// Rollback is the backstop: a method literally named Rollback that
// republishes orecs must opt into the check explicitly.
func (x *tx) Rollback() { // want `method Rollback republishes orec versions but is not annotated //tm:rollback`
	x.clk.Bump()
	for _, i := range x.locks {
		x.tab.Set(i, x.tab.Get(i)+2)
	}
}

// republishHelper is recognized through its //tm:republish annotation
// rather than by being an orec Set.
//
//tm:republish
func (x *tx) republishHelper(i int) {
	x.tab.Set(i, x.tab.Get(i)+2)
}

// rollbackViaHelper republishes through the annotated helper without a
// preceding bump.
//
//tm:rollback
func (x *tx) rollbackViaHelper() {
	for _, i := range x.locks {
		x.republishHelper(i) // want `orec republish is not dominated by a Clock\.Bump call`
	}
}

// notRollback uses the same calls outside a rollback context; the
// analyzer must not fire on ordinary publication code.
func (x *tx) notRollback() {
	x.tab.Set(0, 4)
	x.clk.Bump()
}
