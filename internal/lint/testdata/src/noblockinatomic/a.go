// Fixture for the noblockinatomic analyzer: closures handed to an
// Atomic(...) transaction driver may abort and re-execute and must not
// block or perform I/O.
package noblockinatomic

import (
	"fmt"
	"sync"
	"time"
)

type engine struct{}

func (engine) Atomic(fn func()) { fn() }

func blockingBody(e engine, mu *sync.Mutex, wg *sync.WaitGroup, ch chan int) {
	e.Atomic(func() {
		time.Sleep(time.Millisecond) // want `time\.Sleep`
		mu.Lock()                    // want `sync\.Mutex\.Lock`
		wg.Wait()                    // want `sync\.WaitGroup\.Wait`
		ch <- 1                      // want `channel send`
		<-ch                         // want `channel receive`
		fmt.Println("committed?")    // want `I/O \(fmt\.Println\)`
	})
}

func selectBody(e engine, ch chan int) {
	e.Atomic(func() {
		select { // want `select statement`
		case <-ch:
		default:
		}
	})
}

func rangeChanBody(e engine, ch chan int) {
	e.Atomic(func() {
		for range ch { // want `range over a channel`
		}
	})
}

func pureBody(e engine, n *int) {
	e.Atomic(func() {
		*n = *n + 1
	})
}

func outsideIsFine(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond)
	mu.Unlock()
}
