// Fixture for the lockorder analyzer: direct locking of registry-shaped
// shards (a mu beside a waiters slice) is restricted to
// //tm:lockorder-checked helpers, which must acquire ascending and
// waiter-family before orig-family.
package lockorder

import "sync"

type shard struct {
	mu      sync.Mutex
	waiters []int
}

type origShard struct {
	mu      sync.Mutex
	waiters []int
}

type registry struct {
	shards     []shard
	origShards []origShard
}

func unvetted(r *registry) {
	r.shards[0].mu.Lock() // want `outside a //tm:lockorder-checked helper`
	r.shards[0].mu.Unlock()
}

//tm:lockorder-checked
func wrongFamilyOrder(r *registry) {
	r.origShards[0].mu.Lock()
	r.shards[0].mu.Lock() // want `waiter-index shard lock acquired after a Retry-Orig`
	r.shards[0].mu.Unlock()
	r.origShards[0].mu.Unlock()
}

//tm:lockorder-checked
func descendingAcquire(r *registry) {
	for i := len(r.shards) - 1; i >= 0; i-- {
		r.shards[i].mu.Lock() // want `inside a descending index loop`
	}
	for i := range r.shards {
		r.shards[i].mu.Unlock()
	}
}

//tm:lockorder-checked
func vettedTotalOrder(r *registry) {
	for i := range r.shards {
		r.shards[i].mu.Lock()
	}
	for i := range r.origShards {
		r.origShards[i].mu.Lock()
	}
	// Release order is irrelevant; descending unlocks are fine.
	for i := len(r.origShards) - 1; i >= 0; i-- {
		r.origShards[i].mu.Unlock()
	}
	for i := len(r.shards) - 1; i >= 0; i-- {
		r.shards[i].mu.Unlock()
	}
}

type plainMutexHolder struct {
	mu sync.Mutex
	n  int
}

func notRegistryShaped(p *plainMutexHolder) {
	p.mu.Lock() // fine: no waiters slice, not a registry shard
	p.n++
	p.mu.Unlock()
}
