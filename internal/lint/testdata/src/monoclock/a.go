// Fixture for the monoclock analyzer: raw time.Now/time.Since are
// measurement timing and must go through internal/mono; //tm:wallclock
// marks genuine wall-clock sites.
package monoclock

import "time"

func measure() time.Duration {
	start := time.Now() // want `raw time\.Now`
	work()
	return time.Since(start) // want `raw time\.Since`
}

func work() {}

func reportHeader() time.Time {
	return time.Now() //tm:wallclock — report timestamp, not a measurement
}

func alsoFine() time.Time {
	//tm:wallclock
	t := time.Now()
	return t
}

func unrelatedTimeUse() time.Duration {
	return 5 * time.Millisecond
}
