// Fixture for the atomicfield analyzer: a field accessed via sync/atomic
// anywhere must be accessed atomically everywhere, and values containing
// sync/atomic state must not be copied.
package atomicfield

import "sync/atomic"

type counter struct {
	hits  uint64
	other uint64
}

func bump(c *counter) uint64 {
	atomic.AddUint64(&c.hits, 1)
	return atomic.LoadUint64(&c.hits)
}

func mixed(c *counter) uint64 {
	c.other = 1   // fine: other is never accessed atomically
	return c.hits // want `mixed atomic/non-atomic access`
}

func addrEscape(c *counter) *uint64 {
	return &c.hits // fine: taking the address reads nothing
}

type holder struct {
	v atomic.Uint64
}

func copyValue(h *holder) {
	x := *h // want `contains sync/atomic state`
	use(&x)
}

func byValueParam(h holder) { // want `by-value parameter`
	_ = h.v.Load()
}

func byPointer(h *holder) uint64 {
	return h.v.Load()
}

func initialization() *holder {
	return &holder{} // fine: composite literals are initialization
}

func rangeCopy(hs []holder) {
	for i := range hs { // fine: index ranging
		hs[i].v.Store(0)
	}
	for _, h := range hs { // want `range clause`
		use(&h)
	}
}

func use(*holder) {}
