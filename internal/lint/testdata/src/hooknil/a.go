// Fixture for the hooknil analyzer: calls through //tm:hook fields must
// be dominated by a nil check.
package hooknil

type system struct {
	// OnCommit is an optional observer.
	//
	//tm:hook
	OnCommit func(n int)

	// Required is always installed; calls need no guard.
	Required func(n int)
}

func unguarded(s *system) {
	s.OnCommit(1) // want `not dominated by a nil check`
}

func guardedDirect(s *system) {
	if s.OnCommit != nil {
		s.OnCommit(1)
	}
}

func guardedAlias(s *system) {
	if fn := s.OnCommit; fn != nil {
		fn(2)
	}
}

func guardedEarlyReturn(s *system) {
	fn := s.OnCommit
	if fn == nil {
		return
	}
	fn(3)
}

func guardedConjunction(s *system, ready bool) {
	if ready && s.OnCommit != nil {
		s.OnCommit(4)
	}
}

func unguardedAlias(s *system) {
	fn := s.OnCommit
	fn(5) // want `not dominated by a nil check`
}

func notAHook(s *system) {
	s.Required(6) // fine: not annotated
}

type tracer interface {
	Event(kind int)
}

type traced struct {
	//tm:hook
	Tr tracer
}

func unguardedIface(t *traced) {
	t.Tr.Event(1) // want `not dominated by a nil check`
}

func guardedIface(t *traced) {
	if tr := t.Tr; tr != nil {
		tr.Event(2)
	}
}
