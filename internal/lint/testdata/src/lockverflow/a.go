// Fixture for the lockverflow analyzer: every orec lock acquisition in
// an engine commit context must have a reaching Tx.MaxLockVer update
// before the commit timestamp is taken (or before function exit for
// acquisition helpers), and builtin CAS acquisitions must carry the
// //tm:lock-acquire directive.
package lockverflow

//tm:orec-table
type table struct{ words [8]uint64 }

func (t *table) Get(i int) uint64    { return t.words[i] }
func (t *table) Set(i int, w uint64) { t.words[i] = w }

func (t *table) CAS(i int, old, new uint64) bool {
	if t.words[i] != old {
		return false
	}
	t.words[i] = new
	return true
}

//tm:clock-source
type clock struct{ t uint64 }

func (c *clock) Commit(start, maxLock uint64) uint64 {
	if maxLock > c.t {
		c.t = maxLock
	}
	c.t++
	return c.t
}

type tx struct {
	Start      uint64
	MaxLockVer uint64
	Locks      []int
}

//tm:noreturn
func (x *tx) abort() {
	panic("conflict")
}

// commitGood folds every acquired version into MaxLockVer before the
// commit timestamp is taken.
func commitGood(x *tx, t *table, c *clock) {
	for _, i := range x.Locks {
		w := t.Get(i)
		//tm:lock-acquire
		if !t.CAS(i, w, w|1) {
			x.abort()
		}
		if v := w >> 1; v > x.MaxLockVer {
			x.MaxLockVer = v
		}
	}
	end := c.Commit(x.Start, x.MaxLockVer)
	for _, i := range x.Locks {
		t.Set(i, end<<1)
	}
}

// commitMissingFold is the PR 9 bug shape: the acquisition's version
// never reaches MaxLockVer, so the deferred clock can hand out a
// timestamp at or below an already-published version.
func commitMissingFold(x *tx, t *table, c *clock) {
	for _, i := range x.Locks {
		w := t.Get(i)
		//tm:lock-acquire
		if !t.CAS(i, w, w|1) { // want `orec lock acquisition has no reaching Tx\.MaxLockVer update before the Clock\.Commit call`
			x.abort()
		}
	}
	end := c.Commit(x.Start, x.MaxLockVer)
	for _, i := range x.Locks {
		t.Set(i, end<<1)
	}
}

// commitUnannotated folds correctly but hides the acquisition site from
// the vetted-site list.
func commitUnannotated(x *tx, t *table, c *clock) {
	for _, i := range x.Locks {
		w := t.Get(i)
		if !t.CAS(i, w, w|1) { // want `unannotated orec lock-acquisition site`
			x.abort()
		}
		if v := w >> 1; v > x.MaxLockVer {
			x.MaxLockVer = v
		}
	}
	_ = c.Commit(x.Start, x.MaxLockVer)
}

// writeAcquiresGood is an eager-style acquisition helper: no Commit call
// in sight, so the fold must land before the function returns (the abort
// path abandons the attempt and needs no fold).
func writeAcquiresGood(x *tx, t *table, i int) {
	w := t.Get(i)
	//tm:lock-acquire
	if t.CAS(i, w, w|1) {
		x.Locks = append(x.Locks, i)
		if v := w >> 1; v > x.MaxLockVer {
			x.MaxLockVer = v
		}
		return
	}
	x.abort()
}

// writeAcquiresLeaky lets the acquisition escape the helper without ever
// folding its version.
func writeAcquiresLeaky(x *tx, t *table, i int) {
	w := t.Get(i)
	//tm:lock-acquire
	if t.CAS(i, w, w|1) { // want `orec lock acquisition has no reaching Tx\.MaxLockVer update before function exit`
		x.Locks = append(x.Locks, i)
	}
}

// rawTableUse is out of scope: no commit call, no Locks, no directive —
// the locktable's own tests exercise CAS directly without being part of
// the engine commit protocol.
func rawTableUse(t *table) bool {
	w := t.Get(0)
	return t.CAS(0, w, w+1)
}
