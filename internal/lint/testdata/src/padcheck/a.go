// Fixture for the padcheck analyzer: //tm:padded structs must be a
// non-zero whole multiple of the 64-byte cache line.
package padcheck

//tm:padded
type wellPadded struct {
	n uint64
	_ [56]byte
}

//tm:padded
type twoLines struct {
	a, b uint64
	_    [112]byte
}

//tm:padded
type tooSmall struct { // want `is 8 bytes, not a non-zero multiple`
	n uint64
}

//tm:padded
type empty struct{} // want `is 0 bytes, not a non-zero multiple`

//tm:padded
type notAStruct int // want `not a struct`

type unannotated struct {
	n uint64
}
