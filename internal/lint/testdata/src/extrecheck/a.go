// Fixture for the extrecheck analyzer: a value accepted after a
// successful timestamp extension must be guarded by BOTH a
// `ver <= tx.Start` recheck and an orec-word recheck. The annotated
// local types stand in for the runtime's locktable.Table and
// clock.Source.
package extrecheck

//tm:orec-table
type table struct{ words [8]uint64 }

func (t *table) Get(i int) uint64 { return t.words[i] }

//tm:clock-source
type clock struct{ t uint64 }

func (c *clock) Now() uint64 { c.t++; return c.t }

type tx struct {
	Start uint64
	clk   *clock
	tab   *table
}

//tm:noreturn
func (x *tx) abort() {
	panic("conflict")
}

//tm:extend
func (x *tx) tryExtend() bool {
	x.Start = x.clk.Now()
	return true
}

// readGood is the sound acceptance shape: extension success, then the
// start recheck, then the word recheck, all guarding the accept.
func readGood(x *tx, i int) uint64 {
	w := x.tab.Get(i)
	ver := w >> 1
	val := ver + 100
	if ver <= x.Start {
		return val
	}
	if x.tryExtend() && ver <= x.Start && x.tab.Get(i) == w {
		return val
	}
	x.abort()
	panic("unreachable")
}

// readGoodFlipped spells the same rechecks with the operands and
// operators flipped; the analyzer must recognize every spelling.
func readGoodFlipped(x *tx, i int) uint64 {
	w := x.tab.Get(i)
	ver := w >> 1
	val := ver + 100
	if x.tryExtend() {
		if ver > x.Start || w != x.tab.Get(i) {
			x.abort()
		}
		return val
	}
	x.abort()
	panic("unreachable")
}

// readNoStartRecheck validates only the orec word — the PR 9 bug: under
// global/pof a rollback can republish a version the extended start still
// predates.
func readNoStartRecheck(x *tx, i int) uint64 {
	w := x.tab.Get(i)
	val := (w >> 1) + 100
	if x.tryExtend() && x.tab.Get(i) == w { // want `value accepted after timestamp extension without a ver <= tx\.Start recheck`
		return val
	}
	x.abort()
	panic("unreachable")
}

// readNoWordRecheck validates only the start — the orec may have moved
// while the extension validated.
func readNoWordRecheck(x *tx, i int) uint64 {
	w := x.tab.Get(i)
	ver := w >> 1
	val := ver + 100
	if x.tryExtend() && ver <= x.Start { // want `value accepted after timestamp extension without an orec-word recheck`
		return val
	}
	x.abort()
	panic("unreachable")
}

// readIgnoresResult drops the extension result on the floor; success
// must directly guard the accepts.
func readIgnoresResult(x *tx, i int) uint64 {
	_ = x.tryExtend() // want `timestamp-extension result is not branched on`
	return x.tab.Get(i) >> 1
}

// readEscape has both rechecks, but the counter update escapes the
// guards: it runs on extension success before either recheck passes.
func readEscape(x *tx, i int) uint64 {
	w := x.tab.Get(i)
	ver := w >> 1
	val := ver + 100
	if x.tryExtend() {
		val++ // want `runs on extension success but is not guarded by the ver <= tx\.Start recheck` // want `runs on extension success but is not guarded by the orec-word recheck`
		if ver <= x.Start && x.tab.Get(i) == w {
			return val
		}
	}
	x.abort()
	panic("unreachable")
}

// noExtension never extends; plain validated reads are out of scope.
func noExtension(x *tx, i int) uint64 {
	w := x.tab.Get(i)
	if ver := w >> 1; ver <= x.Start {
		return ver
	}
	x.abort()
	panic("unreachable")
}
