// Fixture for the commitstamp analyzer: in functions that take a commit
// timestamp, every orec publish must be dominated by the Clock.Commit
// call and must carry a version derived from its result — not from an
// earlier Clock.Now sample, and not from an unrelated value.
package commitstamp

//tm:orec-table
type table struct{ words [8]uint64 }

func (t *table) Get(i int) uint64    { return t.words[i] }
func (t *table) Set(i int, w uint64) { t.words[i] = w }

//tm:clock-source
type clock struct{ t uint64 }

func (c *clock) Now() uint64 { return c.t }

func (c *clock) Commit(start, maxLock uint64) uint64 {
	if maxLock > c.t {
		c.t = maxLock
	}
	c.t++
	return c.t
}

type tx struct {
	Start      uint64
	MaxLockVer uint64
	Locks      []int
}

// commitGood publishes the commit timestamp itself.
func commitGood(x *tx, t *table, c *clock) {
	end := c.Commit(x.Start, x.MaxLockVer)
	for _, i := range x.Locks {
		t.Set(i, end<<1)
	}
	x.Locks = x.Locks[:0]
}

// commitDerived publishes a value computed from the timestamp through a
// local assignment chain; derivation must propagate.
func commitDerived(x *tx, t *table, c *clock) {
	end := c.Commit(x.Start, x.MaxLockVer)
	word := end << 1
	release := word
	for _, i := range x.Locks {
		t.Set(i, release)
	}
}

// publishEarly stores before the timestamp exists — the publish is not
// dominated by the Clock.Commit call.
func publishEarly(x *tx, t *table, c *clock) {
	for _, i := range x.Locks {
		t.Set(i, x.Start<<1) // want `orec publish precedes the Clock\.Commit stamp`
	}
	_ = c.Commit(x.Start, x.MaxLockVer)
}

// publishNowSample is the stale-clock bug shape: the published version
// comes from a Now sample taken before Commit advanced the clock, so it
// can sit at or below a concurrently-published version.
func publishNowSample(x *tx, t *table, c *clock) {
	now := c.Now()
	_ = c.Commit(x.Start, x.MaxLockVer)
	for _, i := range x.Locks {
		t.Set(i, now<<1) // want `orec publish uses a version derived from a stale Clock\.Now sample`
	}
}

// publishUnrelated derives the version from the start time instead of
// the commit timestamp.
func publishUnrelated(x *tx, t *table, c *clock) {
	_ = c.Commit(x.Start, x.MaxLockVer)
	for _, i := range x.Locks {
		t.Set(i, x.Start<<1) // want `orec publish does not derive from the Clock\.Commit timestamp`
	}
}

// rollbackRepublish has no Commit call: rollback-style republishes of
// bumped old versions are bumporder's responsibility, not commitstamp's.
func rollbackRepublish(x *tx, t *table) {
	for _, i := range x.Locks {
		t.Set(i, t.Get(i)+2)
	}
	x.Locks = x.Locks[:0]
}
