package lint

import (
	"go/ast"

	"tmsync/internal/lint/flow"
)

// LockVerFlow checks that every orec lock acquisition feeds the
// transaction's MaxLockVer high-water mark before the commit timestamp
// is taken. The deferred clock mode computes the commit timestamp from
// the highest version observed under lock — an acquisition whose
// version never reaches Tx.MaxLockVer lets Clock.Commit hand out a
// timestamp at or below an already-published version, breaking the
// strict-increase invariant the word-recheck soundness argument rests
// on (one of the three PR 9 holes).
//
// The analyzer runs a forward reaching-facts pass: each acquisition
// plants a fact, any statement touching MaxLockVer (the fold) or
// aborting the transaction kills it, and a fact still live at a
// Clock.Commit call or at function exit is a violation. Only functions
// that participate in the engine commit protocol are checked (they
// mention Tx.Locks, call Clock.Commit, or carry //tm:lock-acquire
// directives), so raw locktable use in its own tests stays out of
// scope. Builtin Table.CAS acquisitions inside such functions must also
// carry the //tm:lock-acquire directive, keeping the vetted-site list
// explicit in the source.
var LockVerFlow = &Analyzer{
	Name: "lockverflow",
	Doc:  "every orec lock acquisition must update Tx.MaxLockVer before Clock.Commit",
	Run:  runLockVerFlow,
}

func runLockVerFlow(p *Pass) {
	pr := newProtocol(p)
	for _, fd := range funcDecls(p) {
		// Engine-context gate.
		hasCommit := false
		hasAnnotatedAcquire := false
		var acquires []*ast.CallExpr
		unannotated := map[*ast.CallExpr]bool{}
		inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || underDeferOrGo(stack) {
				return true
			}
			if m, ok := pr.clockMethod(call); ok && m == "Commit" {
				hasCommit = true
			}
			if acq, annotated := pr.isAcquire(call); acq {
				acquires = append(acquires, call)
				if annotated {
					hasAnnotatedAcquire = true
				} else {
					unannotated[call] = true
				}
			}
			return true
		})
		engineCtx := hasCommit || hasAnnotatedAcquire || mentionsName(fd.Body, "Locks")
		if !engineCtx || len(acquires) == 0 {
			continue
		}
		for _, call := range acquires {
			if unannotated[call] {
				p.Reportf(call.Pos(), "unannotated orec lock-acquisition site; mark it //%s", DirLockAcquire)
			}
		}

		g := flow.New(fd.Body, pr.flowOpts())
		isAcq := map[*ast.CallExpr]bool{}
		for _, c := range acquires {
			isAcq[c] = true
		}
		r := flow.Reach(g, func(n ast.Node) flow.Transfer {
			var t flow.Transfer
			// A MaxLockVer touch (the fold, including its guard
			// comparison) satisfies every live acquisition; an abort
			// abandons the attempt, so nothing flows past it.
			kills := mentionsName(n, "MaxLockVer")
			for _, c := range callsIn(n) {
				if pr.isNoReturn(c) {
					kills = true
				}
			}
			if kills {
				for _, a := range acquires {
					t.Kill = append(t.Kill, a)
				}
			}
			for _, c := range callsIn(n) {
				if isAcq[c] {
					t.Gen = append(t.Gen, c)
				}
			}
			return t
		})

		report := func(facts flow.Facts, where string) {
			for _, a := range acquires {
				if facts[a] {
					p.Reportf(a.Pos(), "orec lock acquisition has no reaching Tx.MaxLockVer update before %s", where)
				}
			}
		}
		// Check at each Clock.Commit call (facts evaluated before the
		// call's own node, whose arguments typically mention
		// MaxLockVer and would otherwise self-satisfy the check).
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, ok := pr.clockMethod(call); ok && m == "Commit" {
				if b, _ := g.BlockOf(call); b != nil {
					report(r.Before(call), "the Clock.Commit call")
				}
			}
			return true
		})
		if !hasCommit {
			// Acquisition helpers (e.g. an eager engine's Write) never
			// see the commit call; the fold must still land before the
			// function returns.
			report(r.AtExit(), "function exit")
		}
	}
}
