package flow

import "go/ast"

// Facts is a set of opaque fact keys used by the reaching analysis.
type Facts map[any]bool

func (f Facts) clone() Facts {
	c := make(Facts, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}

func (f Facts) addAll(o Facts) bool {
	changed := false
	for k := range o {
		if !f[k] {
			f[k] = true
			changed = true
		}
	}
	return changed
}

// Transfer describes one node's effect on the fact set: Gen facts are
// added after the node executes, Kill facts are removed before Gen is
// applied.
type Transfer struct {
	Gen  []any
	Kill []any
}

// Reaching is the result of a forward may-analysis over a Graph: a
// fact generated at node N "reaches" node M if some path from N to M
// avoids every kill of that fact. Merges union.
type Reaching struct {
	g        *Graph
	transfer func(ast.Node) Transfer
	in       map[*Block]Facts
}

// Reach runs the forward may-analysis to fixpoint. transfer is
// consulted per node; a nil Transfer (zero value) means the node is a
// no-op for the analysis.
func Reach(g *Graph, transfer func(ast.Node) Transfer) *Reaching {
	r := &Reaching{g: g, transfer: transfer, in: make(map[*Block]Facts)}
	for _, b := range g.Blocks {
		r.in[b] = make(Facts)
	}
	// Seed every block, not just Entry: a block must be processed at
	// least once for its own gen facts to propagate even when its
	// in-set never changes from empty.
	work := make([]*Block, len(g.Blocks))
	queued := make(map[*Block]bool, len(g.Blocks))
	for i, b := range g.Blocks {
		work[i] = b
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := r.in[b].clone()
		for _, n := range b.Nodes {
			t := r.transfer(n)
			for _, k := range t.Kill {
				delete(out, k)
			}
			for _, gfact := range t.Gen {
				out[gfact] = true
			}
		}
		for _, s := range b.Succs {
			if r.in[s].addAll(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return r
}

// Before returns the facts that reach node n, evaluated before n's own
// kill/gen apply. Returns nil if n is not a node of the graph.
func (r *Reaching) Before(n ast.Node) Facts {
	b, idx := r.g.BlockOf(n)
	if b == nil {
		return nil
	}
	// Re-run the block's transfer up to (not including) node idx, but
	// only for nodes that are direct members; BlockOf may have resolved
	// n to a containing node, in which case idx is that node's slot.
	out := r.in[b].clone()
	for i := 0; i < idx; i++ {
		t := r.transfer(b.Nodes[i])
		for _, k := range t.Kill {
			delete(out, k)
		}
		for _, g := range t.Gen {
			out[g] = true
		}
	}
	return out
}

// AtExit returns the facts reaching the graph's exit block.
func (r *Reaching) AtExit() Facts {
	return r.in[r.g.Exit].clone()
}
