// Package flow provides the control-flow substrate for tmlint's
// ordering/dataflow analyzers: per-function control-flow graphs built
// from go/ast, dominator trees, and a small forward reaching-facts
// engine. Like the rest of internal/lint it is built on the standard
// library alone, mirroring the shape of golang.org/x/tools/go/cfg and
// the x/tools dataflow idioms without depending on them.
//
// The CFG is built at a granularity chosen for the clock–version
// protocol checks: short-circuit conditions (`a && b && c` chains, the
// shape of every timestamp-extension guard in the engines) are
// decomposed so each atomic conjunct evaluates in its own block, and
// every atomic condition gets dedicated single-predecessor true/false
// edge blocks. "Dominated by the true edge of condition C" — the core
// question behind "was this value accepted only after a successful
// recheck?" — is then an ordinary block-domination query against
// TrueSucc(C).
//
// Deliberate approximations, chosen to be conservative for the
// analyzers built on top:
//
//   - defer statements register at their syntactic position but their
//     calls are NOT treated as executing there (nor anywhere): a
//     deferred Clock.Bump does not dominate anything, which is exactly
//     right — it runs after the republish it was supposed to precede.
//   - goto is modeled as an edge to Exit (flow we do not track). The
//     repo has no gotos; a fixture that adds one loses precision, not
//     soundness, for dominance-based "must happen before" claims.
//   - function literals are opaque: their bodies belong to their own
//     graphs, never to the enclosing function's.
package flow

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of nodes. Nodes are the statements
// and atomic condition expressions that execute, in order, when the
// block runs. Compound statements never appear as nodes; their pieces
// are distributed across blocks.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	trueSucc  map[ast.Expr]*Block
	falseSucc map[ast.Expr]*Block
	owner     map[ast.Node]*Block
}

// Options configures graph construction.
type Options struct {
	// NoReturn reports whether a call terminates the enclosing
	// function abnormally (panic-like). Calls to panic itself are
	// always treated as no-return.
	NoReturn func(*ast.CallExpr) bool
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt, opts Options) *Graph {
	g := &Graph{
		trueSucc:  make(map[ast.Expr]*Block),
		falseSucc: make(map[ast.Expr]*Block),
		owner:     make(map[ast.Node]*Block),
	}
	b := &builder{g: g, opts: opts}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmt(body)
	b.link(b.cur, g.Exit)
	return g
}

// TrueSucc returns the dedicated block entered when the atomic
// condition e evaluates true, or nil when e was not an atomic branch
// condition in this graph. The block has exactly one predecessor (the
// block evaluating e), so "dominated by TrueSucc(e)" means "executes
// only after e held".
func (g *Graph) TrueSucc(e ast.Expr) *Block { return g.trueSucc[e] }

// FalseSucc is TrueSucc's false-edge counterpart.
func (g *Graph) FalseSucc(e ast.Expr) *Block { return g.falseSucc[e] }

// BlockOf returns the block owning the smallest graph node that
// contains n (which may be n itself), along with that node's index in
// the block. It returns (nil, -1) when n is not part of any block —
// e.g. a node inside a function literal, or inside a declaration the
// builder never visited.
func (g *Graph) BlockOf(n ast.Node) (*Block, int) {
	var best ast.Node
	var bestBlock *Block
	for owned, blk := range g.owner {
		if owned.Pos() <= n.Pos() && n.End() <= owned.End() {
			if best == nil || (best.Pos() <= owned.Pos() && owned.End() <= best.End()) {
				best, bestBlock = owned, blk
			}
		}
	}
	if bestBlock == nil {
		return nil, -1
	}
	for i, m := range bestBlock.Nodes {
		if m == best {
			return bestBlock, i
		}
	}
	return nil, -1
}

// NodeDominates reports whether node a is executed before node b on
// every path that reaches b: same block and earlier, or a's block
// strictly dominating b's. Nodes outside the graph (or unreachable)
// never dominate and are never dominated.
func (g *Graph) NodeDominates(d *DomTree, a, b ast.Node) bool {
	ba, ia := g.BlockOf(a)
	bb, ib := g.BlockOf(b)
	if ba == nil || bb == nil || !d.Reachable(ba) || !d.Reachable(bb) {
		return false
	}
	if ba == bb {
		return ia < ib
	}
	return d.Dominates(ba, bb)
}

type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type builder struct {
	g     *Graph
	cur   *Block
	opts  Options
	loops []loopFrame
	label string // pending label for the next for/range/switch/select
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends n to the current block and records ownership.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.owner[n] = b.cur
}

// terminate ends the current flow: subsequent statements land in a
// fresh block with no predecessors (unreachable until something links
// to it — e.g. a label, which we do not model, so it simply stays
// unreachable).
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) noReturn(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.opts.NoReturn != nil && b.opts.NoReturn(call)
}

// hasShortCircuit reports whether e branches via && or || (possibly
// under parentheses or !).
func hasShortCircuit(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		return x.Op == token.LAND || x.Op == token.LOR
	case *ast.UnaryExpr:
		return x.Op == token.NOT && hasShortCircuit(x.X)
	}
	return false
}

// cond evaluates e for control flow in the current block, returning
// dedicated true- and false-edge blocks. Short-circuit operators are
// decomposed; every atomic condition becomes a node with its own edge
// blocks.
func (b *builder) cond(e ast.Expr) (t, f *Block) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			t1, f1 := b.cond(x.X)
			b.cur = t1
			t2, f2 := b.cond(x.Y)
			f := b.newBlock()
			b.link(f1, f)
			b.link(f2, f)
			return t2, f
		case token.LOR:
			t1, f1 := b.cond(x.X)
			b.cur = f1
			t2, f2 := b.cond(x.Y)
			t := b.newBlock()
			b.link(t1, t)
			b.link(t2, t)
			return t, f2
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			t, f := b.cond(x.X)
			return f, t
		}
	}
	atom := ast.Unparen(e)
	b.add(atom)
	t = b.newBlock()
	f = b.newBlock()
	b.link(b.cur, t)
	b.link(b.cur, f)
	b.g.trueSucc[atom] = t
	b.g.falseSucc[atom] = f
	return t, f
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		t, f := b.cond(s.Cond)
		b.cur = t
		b.stmt(s.Body)
		thenEnd := b.cur
		elseEnd := f
		if s.Else != nil {
			b.cur = f
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		b.link(thenEnd, join)
		b.link(elseEnd, join)
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		var bodyEntry, after *Block
		if s.Cond != nil {
			bodyEntry, after = b.cond(s.Cond)
		} else {
			bodyEntry = b.newBlock()
			b.link(head, bodyEntry)
			after = b.newBlock() // break target only
		}
		post := b.newBlock()
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, continueTo: post})
		b.cur = bodyEntry
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.link(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.link(b.cur, head)
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		// The ranged-over expression (not the body) evaluates at the
		// head, once per iteration decision.
		b.add(s.X)
		bodyEntry := b.newBlock()
		after := b.newBlock()
		b.link(head, bodyEntry)
		b.link(head, after)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, continueTo: head})
		b.cur = bodyEntry
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.link(b.cur, head)
		b.cur = after
	case *ast.SwitchStmt:
		b.caseSwitch(s.Init, s.Tag, s.Body)
	case *ast.TypeSwitchStmt:
		b.caseSwitch(s.Init, s.Assign, s.Body)
	case *ast.SelectStmt:
		label := b.takeLabel()
		join := b.newBlock()
		head := b.cur
		b.loops = append(b.loops, loopFrame{label: label, breakTo: join})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			entry := b.newBlock()
			b.link(head, entry)
			b.cur = entry
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.link(b.cur, join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			// An empty select blocks forever.
			b.terminate()
			return
		}
		b.cur = join
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.Exit)
		b.terminate()
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if fr := b.findFrame(s, false); fr != nil {
				b.link(b.cur, fr.breakTo)
			}
			b.terminate()
		case token.CONTINUE:
			if fr := b.findFrame(s, true); fr != nil {
				b.link(b.cur, fr.continueTo)
			}
			b.terminate()
		case token.GOTO:
			// Unmodeled flow: conservatively an edge to Exit.
			b.link(b.cur, b.g.Exit)
			b.terminate()
		case token.FALLTHROUGH:
			// Handled structurally by caseSwitch; reaching here means
			// a stray fallthrough — ignore.
		}
	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.noReturn(call) {
			b.add(s)
			b.link(b.cur, b.g.Exit)
			b.terminate()
			return
		}
		b.add(s)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && hasShortCircuit(s.Rhs[0]) {
			// Decompose the short-circuit RHS so conjuncts evaluated
			// only under earlier conjuncts get their own blocks, then
			// record the binding itself at the join.
			t, f := b.cond(s.Rhs[0])
			join := b.newBlock()
			b.link(t, join)
			b.link(f, join)
			b.cur = join
		}
		b.add(s)
	case *ast.EmptyStmt:
		// nothing
	default:
		// DeclStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt, ...
		b.add(s)
	}
}

// caseSwitch builds expression and type switches: every clause branches
// from the head; fallthrough links a clause body to the next clause's
// body, skipping its case expressions.
func (b *builder) caseSwitch(init ast.Stmt, tag ast.Node, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	join := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, breakTo: join})

	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	entries := make([]*Block, len(clauses))
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		entries[i] = b.newBlock()
		bodies[i] = b.newBlock()
		b.link(head, entries[i])
		b.link(entries[i], bodies[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(head, join)
	}
	for i, cc := range clauses {
		b.cur = entries[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.cur = bodies[i]
		fell := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(bodies) {
					b.link(b.cur, bodies[i+1])
					fell = true
				}
				break
			}
			b.stmt(st)
		}
		if !fell {
			b.link(b.cur, join)
		} else {
			b.terminate()
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = join
}

// findFrame resolves a break/continue target, honoring labels.
// needContinue restricts to loop frames.
func (b *builder) findFrame(s *ast.BranchStmt, needContinue bool) *loopFrame {
	want := ""
	if s.Label != nil {
		want = s.Label.Name
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		fr := &b.loops[i]
		if needContinue && fr.continueTo == nil {
			continue
		}
		if want == "" || fr.label == want {
			return fr
		}
	}
	return nil
}
