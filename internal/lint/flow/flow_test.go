package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses src as the body of the first function declaration in
// a synthetic file and returns the file set, the function, and a graph
// built with the given options.
func parseFunc(t *testing.T, src string, opts Options) (*token.FileSet, *ast.FuncDecl, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flowtest.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fset, fd, New(fd.Body, opts)
		}
	}
	t.Fatalf("no function in %q", src)
	return nil, nil, nil
}

// findCall returns the first call expression whose callee source text
// matches name.
func findCall(t *testing.T, fset *token.FileSet, fd *ast.FuncDecl, name string) *ast.CallExpr {
	t.Helper()
	var found *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = call
				return false
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no call to %s", name)
	}
	return found
}

// findCond returns the atomic condition expression whose source text is
// exactly want (conditions are idents or calls in these tests).
func findCond(t *testing.T, fset *token.FileSet, fd *ast.FuncDecl, g *Graph, want string) ast.Expr {
	t.Helper()
	var found ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && g.TrueSucc(e) != nil {
			if exprString(e) == want {
				found = e
				return false
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no atomic condition %q", want)
	}
	return found
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	case *ast.BinaryExpr:
		return exprString(x.X) + " " + x.Op.String() + " " + exprString(x.Y)
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "?"
}

func TestBranchDominance(t *testing.T) {
	_, fd, g := parseFunc(t, `
func f(c bool) {
	before()
	if c {
		inThen()
	} else {
		inElse()
	}
	after()
}
func before(); func inThen(); func inElse(); func after()
`, Options{})
	d := Dominators(g)
	fset := token.NewFileSet()
	before := findCall(t, fset, fd, "before")
	then := findCall(t, fset, fd, "inThen")
	els := findCall(t, fset, fd, "inElse")
	after := findCall(t, fset, fd, "after")

	for _, tc := range []struct {
		a, b ast.Node
		want bool
		desc string
	}{
		{before, then, true, "before dominates then-branch"},
		{before, after, true, "before dominates join"},
		{then, after, false, "then-branch does not dominate join"},
		{els, after, false, "else-branch does not dominate join"},
		{then, els, false, "then does not dominate else"},
		{after, then, false, "join does not dominate branch"},
	} {
		if got := g.NodeDominates(d, tc.a, tc.b); got != tc.want {
			t.Errorf("%s: NodeDominates = %v, want %v", tc.desc, got, tc.want)
		}
	}
}

func TestTrueEdgeDominance(t *testing.T) {
	// The extension-guard shape: statements inside the if run only
	// when every conjunct held, so they are dominated by the true
	// edge of each atomic condition in the && chain.
	_, fd, g := parseFunc(t, `
func f() {
	if extend() && recheckStart() && recheckWord() {
		accept()
	}
	reject()
}
func extend() bool; func recheckStart() bool; func recheckWord() bool
func accept(); func reject()
`, Options{})
	d := Dominators(g)
	fset := token.NewFileSet()
	accept := findCall(t, fset, fd, "accept")
	reject := findCall(t, fset, fd, "reject")

	for _, name := range []string{"extend()", "recheckStart()", "recheckWord()"} {
		cond := findCond(t, fset, fd, g, name)
		ts := g.TrueSucc(cond)
		if ts == nil {
			t.Fatalf("no true edge for %s", name)
		}
		if len(ts.Preds) != 1 {
			t.Errorf("%s: true-edge block has %d preds, want 1", name, len(ts.Preds))
		}
		ab, _ := g.BlockOf(accept)
		if !d.Dominates(ts, ab) {
			t.Errorf("%s: true edge should dominate accept()", name)
		}
		rb, _ := g.BlockOf(reject)
		if d.Dominates(ts, rb) {
			t.Errorf("%s: true edge must not dominate reject()", name)
		}
	}
}

func TestShortCircuitAssign(t *testing.T) {
	// ok = a() && b(): b evaluates only under a's true edge, and the
	// assignment itself happens on both paths (at the join).
	_, fd, g := parseFunc(t, `
func f() bool {
	ok := a() && b()
	use()
	return ok
}
func a() bool; func b() bool; func use()
`, Options{})
	d := Dominators(g)
	fset := token.NewFileSet()
	aCond := findCond(t, fset, fd, g, "a()")
	bCall := findCall(t, fset, fd, "b")
	use := findCall(t, fset, fd, "use")

	if !g.NodeDominates(d, aCond, bCall) {
		t.Errorf("a() should dominate b() in short-circuit chain")
	}
	ts := g.TrueSucc(aCond)
	bb, _ := g.BlockOf(bCall)
	if !d.Dominates(ts, bb) {
		t.Errorf("b() should be dominated by a()'s true edge")
	}
	ub, _ := g.BlockOf(use)
	if d.Dominates(ts, ub) {
		t.Errorf("use() after the assignment must not be dominated by a()'s true edge")
	}
	if !g.NodeDominates(d, aCond, use) {
		t.Errorf("a() itself dominates the post-assign statement")
	}
}

func TestNegationSwapsEdges(t *testing.T) {
	_, fd, g := parseFunc(t, `
func f() {
	if !c() {
		bail()
	}
	proceed()
}
func c() bool; func bail(); func proceed()
`, Options{})
	d := Dominators(g)
	fset := token.NewFileSet()
	cond := findCond(t, fset, fd, g, "c()")
	bail := findCall(t, fset, fd, "bail")
	bb, _ := g.BlockOf(bail)
	if d.Dominates(g.TrueSucc(cond), bb) {
		t.Errorf("bail() runs on c()'s FALSE edge; true edge must not dominate it")
	}
	if !d.Dominates(g.FalseSucc(cond), bb) {
		t.Errorf("c()'s false edge should dominate bail()")
	}
}

func TestLoopStructure(t *testing.T) {
	_, fd, g := parseFunc(t, `
func f() {
	pre()
	for cond() {
		body()
	}
	post()
}
func pre(); func cond() bool; func body(); func post()
`, Options{})
	d := Dominators(g)
	fset := token.NewFileSet()
	pre := findCall(t, fset, fd, "pre")
	body := findCall(t, fset, fd, "body")
	post := findCall(t, fset, fd, "post")
	condE := findCond(t, fset, fd, g, "cond()")

	if !g.NodeDominates(d, pre, body) {
		t.Errorf("pre should dominate loop body")
	}
	if !g.NodeDominates(d, condE, body) {
		t.Errorf("loop condition should dominate loop body")
	}
	if g.NodeDominates(d, body, post) {
		t.Errorf("loop body must not dominate the loop exit (zero-iteration path)")
	}
	if !g.NodeDominates(d, condE, post) {
		t.Errorf("loop condition dominates the loop exit")
	}
	// The body block must be able to reach the condition again (back edge).
	bb, _ := g.BlockOf(body)
	cb, _ := g.BlockOf(condE)
	if !reaches(bb, cb) {
		t.Errorf("no back edge from body to condition")
	}
}

func TestRangeLoopAndBreak(t *testing.T) {
	_, fd, g := parseFunc(t, `
func f(xs []int) {
	for range xs {
		if stop() {
			break
		}
		work()
	}
	done()
}
func stop() bool; func work(); func done()
`, Options{})
	d := Dominators(g)
	fset := token.NewFileSet()
	work := findCall(t, fset, fd, "work")
	done := findCall(t, fset, fd, "done")
	if g.NodeDominates(d, work, done) {
		t.Errorf("work() must not dominate done() (break and zero-iteration paths skip it)")
	}
	wb, _ := g.BlockOf(work)
	db, _ := g.BlockOf(done)
	if !reaches(wb, db) {
		t.Errorf("work() should reach done()")
	}
}

func TestDeferDoesNotDominateAsCall(t *testing.T) {
	// A deferred bump() registers where it syntactically appears, but
	// the call does not execute there: flow records the DeferStmt as a
	// node, and analyzers looking for bump() calls must not find one
	// dominating release(). We model that by checking that the only
	// bump() call in the graph sits inside a DeferStmt node.
	_, fd, g := parseFunc(t, `
func f() {
	defer bump()
	release()
}
func bump(); func release()
`, Options{})
	fset := token.NewFileSet()
	bump := findCall(t, fset, fd, "bump")
	b, idx := g.BlockOf(bump)
	if b == nil {
		t.Fatalf("defer statement not recorded in graph")
	}
	if _, ok := b.Nodes[idx].(*ast.DeferStmt); !ok {
		t.Errorf("bump() resolved to node %T, want *ast.DeferStmt (deferred calls must not appear as executed calls)", b.Nodes[idx])
	}
}

func TestNoReturnTerminatesFlow(t *testing.T) {
	opts := Options{NoReturn: func(call *ast.CallExpr) bool {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Abort"
		}
		return false
	}}
	_, fd, g := parseFunc(t, `
func f(tx T, c bool) {
	if c {
		tx.Abort()
		unreachable()
	}
	after()
}
type T struct{}
func (T) Abort()
func unreachable(); func after()
`, opts)
	d := Dominators(g)
	fset := token.NewFileSet()
	unreach := findCall(t, fset, fd, "unreachable")
	after := findCall(t, fset, fd, "after")
	ub, _ := g.BlockOf(unreach)
	if ub != nil && d.Reachable(ub) {
		t.Errorf("code after a no-return call should be unreachable")
	}
	ab, _ := g.BlockOf(after)
	if ab == nil || !d.Reachable(ab) {
		t.Errorf("the no-abort path must stay reachable")
	}
	// panic gets the same treatment with no Options at all.
	_, fd2, g2 := parseFunc(t, `
func f() {
	panic("x")
	dead()
}
func dead()
`, Options{})
	d2 := Dominators(g2)
	dead := findCall(t, fset, fd2, "dead")
	db, _ := g2.BlockOf(dead)
	if db != nil && d2.Reachable(db) {
		t.Errorf("code after panic should be unreachable")
	}
}

func TestSwitchAndSelect(t *testing.T) {
	_, fd, g := parseFunc(t, `
func f(x int, ch chan int) {
	switch x {
	case 1:
		one()
	case 2:
		two()
	default:
		other()
	}
	mid()
	select {
	case <-ch:
		recv()
	default:
		none()
	}
	end()
}
func one(); func two(); func other(); func mid(); func recv(); func none(); func end()
`, Options{})
	d := Dominators(g)
	fset := token.NewFileSet()
	one := findCall(t, fset, fd, "one")
	mid := findCall(t, fset, fd, "mid")
	recv := findCall(t, fset, fd, "recv")
	end := findCall(t, fset, fd, "end")
	if g.NodeDominates(d, one, mid) {
		t.Errorf("a single switch case must not dominate the join")
	}
	if !g.NodeDominates(d, mid, recv) {
		t.Errorf("mid dominates every select clause")
	}
	if g.NodeDominates(d, recv, end) {
		t.Errorf("a single select clause must not dominate the join")
	}
	if !g.NodeDominates(d, mid, end) {
		t.Errorf("mid dominates the select join")
	}
}

func TestReachingFacts(t *testing.T) {
	// gen() plants a fact; kill() removes it. The fact reaches use()
	// only on paths avoiding kill().
	src := `
func f(c bool) {
	gen()
	if c {
		kill()
	}
	use()
}
func gen(); func kill(); func use()
`
	_, fd, g := parseFunc(t, src, Options{})
	fset := token.NewFileSet()
	genCall := findCall(t, fset, fd, "gen")
	killCall := findCall(t, fset, fd, "kill")
	use := findCall(t, fset, fd, "use")

	const fact = "planted"
	callOf := func(n ast.Node) *ast.CallExpr {
		if es, ok := n.(*ast.ExprStmt); ok {
			if c, ok := es.X.(*ast.CallExpr); ok {
				return c
			}
		}
		return nil
	}
	r := Reach(g, func(n ast.Node) Transfer {
		c := callOf(n)
		switch {
		case c == genCall:
			return Transfer{Gen: []any{fact}}
		case c == killCall:
			return Transfer{Kill: []any{fact}}
		}
		return Transfer{}
	})
	if !r.Before(use)[fact] {
		t.Errorf("fact should reach use() via the kill-free path (may-analysis)")
	}
	if !r.AtExit()[fact] {
		t.Errorf("fact should reach exit via the kill-free path")
	}

	// With an unconditional kill the fact must not survive.
	src2 := strings.Replace(src, "if c {\n\t\tkill()\n\t}", "kill()", 1)
	_, fd2, g2 := parseFunc(t, src2, Options{})
	gen2 := findCall(t, fset, fd2, "gen")
	kill2 := findCall(t, fset, fd2, "kill")
	use2 := findCall(t, fset, fd2, "use")
	r2 := Reach(g2, func(n ast.Node) Transfer {
		c := callOf(n)
		switch {
		case c == gen2:
			return Transfer{Gen: []any{fact}}
		case c == kill2:
			return Transfer{Kill: []any{fact}}
		}
		return Transfer{}
	})
	if r2.Before(use2)[fact] {
		t.Errorf("fact must not survive an unconditional kill")
	}
	if r2.Before(kill2)[fact] != true {
		t.Errorf("Before(kill) is evaluated before the node's own kill")
	}
}

func TestReachingFactsLoop(t *testing.T) {
	// A fact generated inside a loop body reaches the loop condition
	// on the next iteration (back edge) and the loop exit.
	_, fd, g := parseFunc(t, `
func f() {
	for cond() {
		gen()
	}
	use()
}
func cond() bool; func gen(); func use()
`, Options{})
	fset := token.NewFileSet()
	genCall := findCall(t, fset, fd, "gen")
	use := findCall(t, fset, fd, "use")
	condE := findCond(t, fset, fd, g, "cond()")
	const fact = "looped"
	r := Reach(g, func(n ast.Node) Transfer {
		if es, ok := n.(*ast.ExprStmt); ok {
			if c, ok := es.X.(*ast.CallExpr); ok && c == genCall {
				return Transfer{Gen: []any{fact}}
			}
		}
		return Transfer{}
	})
	if !r.Before(condE)[fact] {
		t.Errorf("fact should flow around the back edge to the loop condition")
	}
	if !r.Before(use)[fact] {
		t.Errorf("fact should reach the loop exit")
	}
}

// reaches reports whether b can reach target through successor edges.
func reaches(b, target *Block) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(x *Block) bool {
		if x == target {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(b)
}
