package flow

// DomTree holds immediate-dominator information for a Graph, computed
// with the iterative Cooper–Harvey–Kennedy algorithm over the blocks
// reachable from Entry. Unreachable blocks have no dominator
// relationships: they neither dominate nor are dominated.
type DomTree struct {
	idom map[*Block]*Block // immediate dominator; Entry maps to itself
	rpo  map[*Block]int    // reverse-postorder index of reachable blocks
}

// Dominators computes the dominator tree of g.
func Dominators(g *Graph) *DomTree {
	// Depth-first postorder over reachable blocks.
	var post []*Block
	seen := make(map[*Block]bool)
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)

	d := &DomTree{
		idom: make(map[*Block]*Block, len(post)),
		rpo:  make(map[*Block]int, len(post)),
	}
	for i := len(post) - 1; i >= 0; i-- {
		d.rpo[post[i]] = len(post) - 1 - i
	}
	d.idom[g.Entry] = g.Entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for d.rpo[a] > d.rpo[b] {
				a = d.idom[a]
			}
			for d.rpo[b] > d.rpo[a] {
				b = d.idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if d.idom[p] == nil {
					continue // p unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// Reachable reports whether b is reachable from the graph's entry.
func (d *DomTree) Reachable(b *Block) bool {
	_, ok := d.rpo[b]
	return ok
}

// Dominates reports whether a dominates b (reflexively): every path
// from entry to b passes through a. Unreachable blocks dominate
// nothing and are dominated by nothing.
func (d *DomTree) Dominates(a, b *Block) bool {
	if !d.Reachable(a) || !d.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}
