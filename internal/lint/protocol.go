package lint

import (
	"go/ast"
	"go/types"

	"tmsync/internal/lint/flow"
)

// The qualified names of the runtime's protocol participants. Directives
// written in other packages are invisible to a Pass (it sees one package's
// syntax), so the real orec table, clock, and abort primitives are
// recognized by identity here — mirroring how hooknil carries builtinHooks.
const (
	locktablePath = "tmsync/internal/locktable"
	clockPath     = "tmsync/internal/clock"
	tmPath        = "tmsync/internal/tm"
)

// protocol is the shared recognition layer for the flow analyzers: it
// resolves which calls are orec-table operations, clock operations,
// no-return aborts, timestamp extensions, and republishes — combining the
// builtin runtime identities above with the package-local directive
// vocabulary (tm:orec-table, tm:clock-source, tm:noreturn, tm:extend,
// tm:republish, tm:lock-acquire).
type protocol struct {
	pass *Pass

	orecTypes  map[*types.TypeName]bool // //tm:orec-table types in this package
	clockTypes map[*types.TypeName]bool // //tm:clock-source types
	noReturnFn map[types.Object]bool    // //tm:noreturn functions
	extendFn   map[types.Object]bool    // //tm:extend functions
	republishF map[types.Object]bool    // //tm:republish functions
	acquireFn  map[types.Object]bool    // //tm:lock-acquire functions
}

func newProtocol(p *Pass) *protocol {
	pr := &protocol{
		pass:       p,
		orecTypes:  make(map[*types.TypeName]bool),
		clockTypes: make(map[*types.TypeName]bool),
		noReturnFn: make(map[types.Object]bool),
		extendFn:   make(map[types.Object]bool),
		republishF: make(map[types.Object]bool),
		acquireFn:  make(map[types.Object]bool),
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
					if tn == nil {
						continue
					}
					if groupHasDirective(d.Doc, DirOrecTable) || groupHasDirective(ts.Doc, DirOrecTable) {
						pr.orecTypes[tn] = true
					}
					if groupHasDirective(d.Doc, DirClockSource) || groupHasDirective(ts.Doc, DirClockSource) {
						pr.clockTypes[tn] = true
					}
				}
			case *ast.FuncDecl:
				obj := p.Info.Defs[d.Name]
				if obj == nil {
					continue
				}
				if groupHasDirective(d.Doc, DirNoReturn) {
					pr.noReturnFn[obj] = true
				}
				if groupHasDirective(d.Doc, DirExtend) {
					pr.extendFn[obj] = true
				}
				if groupHasDirective(d.Doc, DirRepublish) {
					pr.republishF[obj] = true
				}
				if groupHasDirective(d.Doc, DirLockAcquire) {
					pr.acquireFn[obj] = true
				}
			}
		}
	}
	return pr
}

// methodRecvType resolves the named type (pointer-stripped) a method is
// declared on, or nil for plain functions.
func methodRecvType(obj types.Object) *types.TypeName {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	// Interface methods carry the interface as receiver; resolve the
	// declaring type through the method's position in its package scope.
	return nil
}

// isBuiltinType reports whether tn is the named type pkgPath.name.
func isBuiltinType(tn *types.TypeName, pkgPath, name string) bool {
	return tn != nil && tn.Pkg() != nil && tn.Pkg().Path() == pkgPath && tn.Name() == name
}

// orecMethod resolves a call to an orec-table method, returning the
// method name ("Get", "Set", "CAS") and true when the receiver is the
// runtime locktable.Table or a //tm:orec-table-annotated type.
func (pr *protocol) orecMethod(call *ast.CallExpr) (string, bool) {
	obj := calleeObj(pr.pass, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	switch fn.Name() {
	case "Get", "Set", "CAS":
	default:
		return "", false
	}
	tn := methodRecvType(fn)
	if isBuiltinType(tn, locktablePath, "Table") || pr.orecTypes[tn] {
		return fn.Name(), true
	}
	return "", false
}

// clockMethod resolves a call to a clock-source method ("Now", "Commit",
// "Bump", "NoteStale"): any method of those names declared in the runtime
// clock package (including on the Source interface) or on a
// //tm:clock-source-annotated type.
func (pr *protocol) clockMethod(call *ast.CallExpr) (string, bool) {
	obj := calleeObj(pr.pass, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	switch fn.Name() {
	case "Now", "Commit", "Bump", "NoteStale":
	default:
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == clockPath {
		return fn.Name(), true
	}
	if pr.clockTypes[methodRecvType(fn)] {
		return fn.Name(), true
	}
	return "", false
}

// isNoReturn reports whether a call never returns normally: panic, the
// tm.Tx abort/restart family, or a //tm:noreturn-annotated function.
func (pr *protocol) isNoReturn(call *ast.CallExpr) bool {
	obj := calleeObj(pr.pass, call)
	if obj == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
		return false
	}
	if _, ok := obj.(*types.Builtin); ok && obj.Name() == "panic" {
		return true
	}
	if fn, ok := obj.(*types.Func); ok {
		switch fn.Name() {
		case "Abort", "Restart", "RestartTagged", "RestartSoftware":
			if isBuiltinType(methodRecvType(fn), tmPath, "Tx") {
				return true
			}
		}
	}
	return pr.noReturnFn[obj]
}

// isExtendCall reports whether a call invokes a timestamp-extension
// routine: a //tm:extend-annotated function, or a call site carrying the
// directive inline.
func (pr *protocol) isExtendCall(call *ast.CallExpr) bool {
	if obj := calleeObj(pr.pass, call); obj != nil && pr.extendFn[obj] {
		return true
	}
	return pr.pass.DirectiveNear(call.Pos(), DirExtend)
}

// isRepublish reports whether a call republishes an orec word: an orec
// Set, a //tm:republish-annotated helper, or an inline directive.
func (pr *protocol) isRepublish(call *ast.CallExpr) bool {
	if m, ok := pr.orecMethod(call); ok && m == "Set" {
		return true
	}
	if obj := calleeObj(pr.pass, call); obj != nil && pr.republishF[obj] {
		return true
	}
	return pr.pass.DirectiveNear(call.Pos(), DirRepublish)
}

// isAcquire reports whether a call acquires an orec lock: an orec CAS, a
// //tm:lock-acquire-annotated helper, or an inline directive. annotated
// reports whether the site (or callee) carries the directive explicitly.
// Runtime accessors (locktable.Locked, clock reads, ...) sharing a
// directive line are not acquisitions — the directive marks exactly the
// acquiring call.
func (pr *protocol) isAcquire(call *ast.CallExpr) (acquire, annotated bool) {
	if obj := calleeObj(pr.pass, call); obj != nil && pr.acquireFn[obj] {
		return true, true
	}
	if m, ok := pr.orecMethod(call); ok {
		if m != "CAS" {
			return false, false
		}
		return true, pr.pass.DirectiveNear(call.Pos(), DirLockAcquire)
	}
	if pr.pass.DirectiveNear(call.Pos(), DirLockAcquire) {
		if fn, ok := calleeObj(pr.pass, call).(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case locktablePath, clockPath:
				return false, false
			}
		}
		return true, true
	}
	return false, false
}

// flowOpts builds the flow options wired to this protocol's no-return
// recognition.
func (pr *protocol) flowOpts() flow.Options {
	return flow.Options{NoReturn: pr.isNoReturn}
}

// mentionsName reports whether n's subtree (excluding nested function
// literals) contains an identifier or field selector with the given name.
func mentionsName(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if x.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callsIn returns the call expressions in n's subtree, excluding nested
// function literals (their bodies have their own control flow).
func callsIn(n ast.Node) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := x.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	return calls
}

// funcDecls yields every function declaration with a body in the pass's
// files.
func funcDecls(p *Pass) []*ast.FuncDecl {
	var fds []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fds = append(fds, fd)
			}
		}
	}
	return fds
}

// underDeferOrGo reports whether any ancestor in stack is a defer or go
// statement or a function literal — positions where a call does not
// execute as part of the enclosing function's straight-line flow.
func underDeferOrGo(stack []ast.Node) bool {
	for _, a := range stack {
		switch a.(type) {
		case *ast.DeferStmt, *ast.GoStmt, *ast.FuncLit:
			return true
		}
	}
	return false
}
