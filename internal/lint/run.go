package lint

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Analyzers is the full tmlint suite, in reporting order.
var Analyzers = []*Analyzer{
	AtomicField,
	HookNil,
	LockOrder,
	MonoClock,
	NoBlockInAtomic,
	PadCheck,
}

// Run is the tmlint driver: it parses flags, loads the named packages,
// runs the (possibly filtered) suite, prints diagnostics to stderr, and
// returns the process exit code — 0 clean, 1 findings, 2 usage or load
// error.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tmlint [-list] [-analyzers a,b,...] packages...\n\n")
		fmt.Fprintf(stderr, "tmlint machine-checks the runtime's concurrency invariants.\nAnalyzers:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected := Analyzers
	if *only != "" {
		byName := make(map[string]*Analyzer, len(Analyzers))
		for _, a := range Analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "tmlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	pkgs, err := NewLoader().LoadPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "tmlint: %v\n", err)
		return 2
	}
	diags := Check(selected, pkgs)
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(stderr, d.String())
		}
		fmt.Fprintf(stderr, "tmlint: %d violation(s)\n", len(diags))
		return 1
	}
	fmt.Fprintf(stdout, "tmlint: ok (%d packages, %d analyzers)\n", len(pkgs), len(selected))
	return 0
}
