package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
)

// Analyzers is the full tmlint suite, in reporting order. The first six
// are the AST-level checks from the original suite; bumporder,
// commitstamp, extrecheck, and lockverflow are the flow-sensitive
// clock–version protocol checks built on internal/lint/flow.
var Analyzers = []*Analyzer{
	AtomicField,
	BumpOrder,
	CommitStamp,
	ExtRecheck,
	HookNil,
	LockOrder,
	LockVerFlow,
	MonoClock,
	NoBlockInAtomic,
	PadCheck,
}

// Run is the tmlint driver: it parses flags, loads the named packages,
// runs the (possibly filtered) suite, prints diagnostics to stderr, and
// returns the process exit code — 0 clean, 1 findings, 2 usage or load
// error.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	tests := fs.Bool("tests", false, "also load _test.go files (in-package and external test packages)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tmlint [-list] [-analyzers a,b,...] [-tests] [-json] packages...\n\n")
		fmt.Fprintf(stderr, "tmlint machine-checks the runtime's concurrency invariants.\nAnalyzers:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected := Analyzers
	if *only != "" {
		byName := make(map[string]*Analyzer, len(Analyzers))
		for _, a := range Analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "tmlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	loader := NewLoader()
	loader.IncludeTests = *tests
	pkgs, err := loader.LoadPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "tmlint: %v\n", err)
		return 2
	}
	diags := Check(selected, pkgs)
	if *jsonOut {
		writeJSON(stdout, selected, pkgs, diags)
		if len(diags) > 0 {
			return 1
		}
		return 0
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(stderr, d.String())
		}
		fmt.Fprintf(stderr, "tmlint: %d violation(s)\n", len(diags))
		return 1
	}
	fmt.Fprintf(stdout, "tmlint: ok (%d packages, %d analyzers)\n", len(pkgs), len(selected))
	return 0
}

// jsonReport is the -json output schema: one object per run, with one
// entry per violation carrying the analyzer, position, message, and the
// //tm: directives in effect at the reported line.
type jsonReport struct {
	OK         bool            `json:"ok"`
	Packages   int             `json:"packages"`
	Analyzers  []string        `json:"analyzers"`
	Violations []jsonViolation `json:"violations"`
}

type jsonViolation struct {
	Analyzer   string   `json:"analyzer"`
	File       string   `json:"file"`
	Line       int      `json:"line"`
	Col        int      `json:"col"`
	Message    string   `json:"message"`
	Directives []string `json:"directives,omitempty"`
}

func writeJSON(w io.Writer, selected []*Analyzer, pkgs []*Package, diags []Diagnostic) {
	rep := jsonReport{
		OK:         len(diags) == 0,
		Packages:   len(pkgs),
		Violations: []jsonViolation{},
	}
	for _, a := range selected {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, d := range diags {
		rep.Violations = append(rep.Violations, jsonViolation{
			Analyzer:   d.Analyzer,
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			Directives: d.Directives,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}
