package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrder polices the sharded-registry locking protocol that the
// deadlock-freedom argument in internal/core rests on:
//
//  1. Direct mu.Lock()/mu.TryLock() on a registry-shaped type (a struct
//     carrying a `mu` lock beside a `waiters` slice — the waiter-index
//     shards, the Retry-Orig registry shards, and CondSync's unindexed
//     list) is only legal inside functions annotated
//     //tm:lockorder-checked, the vetted helpers whose acquisition order
//     has been argued through.
//  2. Inside a checked helper, a loop that acquires shard locks by index
//     must ascend: every multi-shard acquisition goes low-to-high, which
//     (together with the migration locking every shard the same way)
//     rules out deadlock. Descending unlock loops are fine — release
//     order is irrelevant.
//  3. Inside a checked helper that locks both families, every
//     waiter-index shard lock must be acquired before any Retry-Orig
//     registry shard lock, matching the total order resizeLocked
//     documents (waiter shards, then orig shards, each ascending).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "restrict direct registry-shard locking to //tm:lockorder-checked helpers with ascending, waiter-before-orig acquisition",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checked := groupHasDirective(fn.Doc, DirLockorderChecked)
			var waiterLocks, origLocks []token.Pos
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, base, kind := shardLockCall(p, call)
				if sel == nil {
					return true
				}
				if !checked {
					p.Reportf(call.Pos(),
						"direct %s on a registry shard outside a //tm:lockorder-checked helper: shard acquisition order is load-bearing (see core.resizeLocked)",
						kind)
					return true
				}
				if exprMentionsOrig(base) {
					origLocks = append(origLocks, call.Pos())
				} else {
					waiterLocks = append(waiterLocks, call.Pos())
				}
				return true
			})
			if !checked {
				continue
			}
			// Family order: every waiter-index lock before any orig lock.
			for _, wp := range waiterLocks {
				for _, op := range origLocks {
					if op < wp {
						p.Reportf(wp,
							"waiter-index shard lock acquired after a Retry-Orig registry shard lock: the documented total order is waiter shards first (deadlock freedom, core.resizeLocked)")
					}
				}
			}
			// Ascending loops: a for-loop that acquires shard locks must
			// not step its index downward.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				fs, ok := n.(*ast.ForStmt)
				if !ok || !descendingPost(fs.Post) {
					return true
				}
				ast.Inspect(fs.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if sel, _, kind := shardLockCall(p, call); sel != nil {
						p.Reportf(call.Pos(),
							"%s on a registry shard inside a descending index loop: multi-shard acquisition must ascend (deadlock freedom)", kind)
					}
					return true
				})
				return true
			})
		}
	}
}

// shardLockCall matches calls of the form <base>.mu.Lock() or
// <base>.mu.TryLock() where <base>'s type is registry-shaped. It returns
// the mu selector, the base expression, and the method name.
func shardLockCall(p *Pass, call *ast.CallExpr) (sel *ast.SelectorExpr, base ast.Expr, kind string) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (fun.Sel.Name != "Lock" && fun.Sel.Name != "TryLock") {
		return nil, nil, ""
	}
	mu, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return nil, nil, ""
	}
	tv, ok := p.Info.Types[mu.X]
	if !ok || !isRegistryShaped(tv.Type, p.Pkg) {
		return nil, nil, ""
	}
	return mu, mu.X, "mu." + fun.Sel.Name + "()"
}

// isRegistryShaped reports whether t (after one deref) is a struct —
// possibly via embedding — with a slice field named `waiters` beside its
// `mu`: the shape of the waiter-index shards, the Retry-Orig registry
// shards, and the unindexed-waiter list head.
func isRegistryShaped(t types.Type, from *types.Package) bool {
	t = deref(t)
	obj, _, _ := types.LookupFieldOrMethod(t, true, from, "waiters")
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	_, isSlice := v.Type().Underlying().(*types.Slice)
	return isSlice
}

// exprMentionsOrig reports whether any identifier in the expression names
// the Retry-Orig family (contains "orig", any case) — the syntactic family
// tag distinguishing origShards from the waiter-index shards.
func exprMentionsOrig(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "orig") {
			found = true
		}
		return !found
	})
	return found
}

// descendingPost reports whether a for-loop post statement steps its
// index downward (i-- or i -= k).
func descendingPost(post ast.Stmt) bool {
	switch s := post.(type) {
	case *ast.IncDecStmt:
		return s.Tok == token.DEC
	case *ast.AssignStmt:
		return s.Tok == token.SUB_ASSIGN
	}
	return false
}
