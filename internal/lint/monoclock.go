package lint

import (
	"go/ast"
)

// MonoClock forbids raw time.Now / time.Since outside internal/mono. A
// wall-clock step (NTP adjustment, suspend/resume) between a hand-rolled
// start/elapsed pair once corrupted a committed BENCH report; all
// duration measurement must go through the monotonic helper instead.
// Genuine wall-clock timestamp sites (a report's Generated field) opt out
// with a //tm:wallclock directive on, or immediately above, the call.
var MonoClock = &Analyzer{
	Name: "monoclock",
	Doc:  "forbid raw time.Now/time.Since outside internal/mono (//tm:wallclock opts out)",
	Run:  runMonoClock,
}

func runMonoClock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			name := obj.Name()
			if name != "Now" && name != "Since" {
				return true
			}
			if p.DirectiveNear(call.Pos(), DirWallclock) {
				return true
			}
			p.Reportf(call.Pos(),
				"raw time.%s: measurement timing must go through internal/mono (annotate a genuine wall-clock site with //tm:wallclock)",
				name)
			return true
		})
	}
}
