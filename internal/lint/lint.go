// Package lint is tmlint: a repo-aware static-analysis suite that
// machine-checks the runtime's concurrency invariants. Seven PRs of
// wake-path work left the codebase full of rules that existed only as
// comments and reviewer memory — shard-lock ordering, cache-line padding,
// nil-guarded System hooks, monotonic-only measurement timing, and the
// no-blocking-actions-inside-a-transaction discipline the paper's
// condition-synchronization mechanisms exist to replace. Each analyzer
// here encodes one of those invariants so CI, not a reviewer, enforces it.
//
// The suite is deliberately built on the standard library alone (go/ast,
// go/parser, go/types): the API mirrors golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — so the analyzers could be rehosted on the
// upstream framework verbatim, but nothing outside the Go distribution is
// required to run them.
//
// Analyzers communicate with the code under analysis through a small
// directive vocabulary, written in ordinary comments:
//
//	//tm:padded            this struct must be a whole multiple of the
//	                       64-byte cache line (checked with types.Sizes)
//	//tm:wallclock         this time.Now/time.Since call site is a
//	                       genuine wall-clock timestamp, not a measurement
//	//tm:lockorder-checked this function is a vetted shard-lock helper
//	                       and may lock registry shards directly
//	//tm:hook              this nilable function/interface field is an
//	                       optional hook; every call must be nil-guarded
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// CacheLine is the coherence granularity padcheck verifies against; it
// must match the constant the runtime pads to (internal/locktable).
const CacheLine = 64

// The directive vocabulary.
const (
	DirPadded           = "tm:padded"
	DirWallclock        = "tm:wallclock"
	DirLockorderChecked = "tm:lockorder-checked"
	DirHook             = "tm:hook"

	// Flow-analyzer directives (the clock–version protocol vocabulary).
	DirRollback    = "tm:rollback"     // this function is an engine rollback path
	DirRepublish   = "tm:republish"    // this call republishes an orec word
	DirLockAcquire = "tm:lock-acquire" // this call/site acquires an orec lock
	DirExtend      = "tm:extend"       // this function implements timestamp extension
	DirNoReturn    = "tm:noreturn"     // this function never returns normally
	DirOrecTable   = "tm:orec-table"   // this type is an orec table (Get/Set/CAS)
	DirClockSource = "tm:clock-source" // this type is a transactional clock source
)

// An Analyzer is one invariant checker. Run inspects the package held by
// the Pass and reports violations through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Diagnostic is one reported violation, already resolved to a position.
// Directives lists the //tm: directives in effect at the reported line
// (same line or the line above), so machine consumers see the annotation
// context the analyzer saw.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Directives []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Sizes    types.Sizes

	dirs  directiveIndex
	diags *[]Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	pp := p.Fset.Position(pos)
	var near []string
	if lines := p.dirs[pp.Filename]; lines != nil {
		near = append(near, lines[pp.Line-1]...)
		near = append(near, lines[pp.Line]...)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:        pp,
		Analyzer:   p.Analyzer.Name,
		Message:    fmt.Sprintf(format, args...),
		Directives: near,
	})
}

// directiveIndex records, per file and line, the //tm: directives whose
// comments touch that line — so analyzers can honor both trailing
// (same-line) and immediately-preceding-line directive placement.
type directiveIndex map[string]map[int][]string

var directiveRE = regexp.MustCompile(`//tm:([a-z-]+)`)

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := make(directiveIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range directiveRE.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					lines := idx[pos.Filename]
					if lines == nil {
						lines = make(map[int][]string)
						idx[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], "tm:"+m[1])
				}
			}
		}
	}
	return idx
}

// DirectiveNear reports whether the named directive appears on the same
// line as pos or on the line immediately above it.
func (p *Pass) DirectiveNear(pos token.Pos, name string) bool {
	pp := p.Fset.Position(pos)
	lines := p.dirs[pp.Filename]
	if lines == nil {
		return false
	}
	for _, d := range lines[pp.Line] {
		if d == name {
			return true
		}
	}
	for _, d := range lines[pp.Line-1] {
		if d == name {
			return true
		}
	}
	return false
}

// groupHasDirective reports whether a doc-comment group carries the named
// directive.
func groupHasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		for _, m := range directiveRE.FindAllStringSubmatch(c.Text, -1) {
			if "tm:"+m[1] == name {
				return true
			}
		}
	}
	return false
}

// calleeObj resolves the object a call expression invokes, or nil when the
// callee is not a simple identifier or selector (e.g. a call of a call).
func calleeObj(p *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// inspectWithStack walks root like ast.Inspect while maintaining the
// ancestor stack (excluding the visited node itself).
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// Check runs the given analyzers over the given packages and returns all
// diagnostics, sorted by position then analyzer name.
func Check(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		idx := buildDirectiveIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Sizes:    pkg.Sizes,
				dirs:     idx,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
