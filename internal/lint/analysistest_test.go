package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture suites mirror golang.org/x/tools analysistest: each
// analyzer has a package under testdata/src/<name>/ mixing firing and
// clean code, and every expected diagnostic is declared in the source
// with a same-line comment of the form:
//
//	expr // want `regex`
//
// The test demands a 1:1 match — every want must be reported, and every
// report must be wanted — so a fixture both proves the analyzer fires
// and pins the rule's blind spots (the clean code) against regression.

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type wantKey struct {
	file string
	line int
}

// collectWants scans the fixture sources for want comments.
func collectWants(t *testing.T, dir string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, line, m[1], err)
				}
				k := wantKey{e.Name(), line}
				wants[k] = append(wants[k], re)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// runFixture loads testdata/src/<fixture>, runs the analyzer, and
// demands a 1:1 match between reported diagnostics and want comments.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := NewLoader().LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := collectWants(t, dir)
	for _, d := range Check([]*Analyzer{a}, []*Package{pkg}) {
		k := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s/%s:%d: expected diagnostic matching %q was not reported", dir, k.file, k.line, re)
		}
	}
}

func TestLockOrderFixture(t *testing.T)       { runFixture(t, LockOrder, "lockorder") }
func TestBumpOrderFixture(t *testing.T)       { runFixture(t, BumpOrder, "bumporder") }
func TestCommitStampFixture(t *testing.T)     { runFixture(t, CommitStamp, "commitstamp") }
func TestExtRecheckFixture(t *testing.T)      { runFixture(t, ExtRecheck, "extrecheck") }
func TestLockVerFlowFixture(t *testing.T)     { runFixture(t, LockVerFlow, "lockverflow") }
func TestAtomicFieldFixture(t *testing.T)     { runFixture(t, AtomicField, "atomicfield") }
func TestNoBlockInAtomicFixture(t *testing.T) { runFixture(t, NoBlockInAtomic, "noblockinatomic") }
func TestMonoClockFixture(t *testing.T)       { runFixture(t, MonoClock, "monoclock") }
func TestPadCheckFixture(t *testing.T)        { runFixture(t, PadCheck, "padcheck") }
func TestHookNilFixture(t *testing.T)         { runFixture(t, HookNil, "hooknil") }

// TestFixturesStayFixtures guards the harness itself: a fixture package
// that fails to load, or a want regex that never compiles, must fail the
// suite rather than silently skip an analyzer.
func TestFixturesStayFixtures(t *testing.T) {
	ents, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) != len(Analyzers) {
		t.Fatalf("testdata/src has %d fixture packages, suite has %d analyzers", len(names), len(Analyzers))
	}
	for _, a := range Analyzers {
		dir := filepath.Join("testdata", "src", a.Name)
		if _, err := os.Stat(dir); err != nil {
			t.Errorf("analyzer %s has no fixture package: %v", a.Name, err)
		}
	}
}
