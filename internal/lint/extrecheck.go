package lint

import (
	"go/ast"
	"go/token"

	"tmsync/internal/lint/flow"
)

// ExtRecheck checks the acceptance half of timestamp extension — the
// exact PR 9 bug shape. A successful tryExtend proves the read set is
// valid at the *new* start time, but says nothing about the sample in
// hand: under global/pof a rollback can republish a version the clock
// has not reached yet, so the extended start may still predate the
// sampled version, and the orec may have moved while the extension
// validated. Any value accepted on the extension-success path must
// therefore be dominated by BOTH a `ver <= tx.Start` recheck and an
// orec-word recheck (word equality implies no intervening commit,
// because versions strictly increase across lock cycles).
//
// Extension routines are identified by //tm:extend on their declaration
// (or inline at the call site), and their success must be branched on
// directly — typically as a conjunct in the read's guard chain.
var ExtRecheck = &Analyzer{
	Name: "extrecheck",
	Doc:  "values accepted after timestamp extension need ver<=Start and orec-word rechecks",
	Run:  runExtRecheck,
}

func runExtRecheck(p *Pass) {
	pr := newProtocol(p)
	for _, fd := range funcDecls(p) {
		var extends []*ast.CallExpr
		inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && !underDeferOrGo(stack) && pr.isExtendCall(call) {
				extends = append(extends, call)
			}
			return true
		})
		if len(extends) == 0 {
			continue
		}
		g := flow.New(fd.Body, pr.flowOpts())
		dom := flow.Dominators(g)
		for _, ext := range extends {
			checkExtension(p, pr, g, dom, ext)
		}
	}
}

// checkExtension verifies one extension call's success region.
func checkExtension(p *Pass, pr *protocol, g *flow.Graph, dom *flow.DomTree, ext *ast.CallExpr) {
	succ := g.TrueSucc(ext)
	if succ == nil || !dom.Reachable(succ) {
		p.Reportf(ext.Pos(), "timestamp-extension result is not branched on; successful extension must directly guard its accepts")
		return
	}

	// The success region: every reachable block dominated by the
	// extension's true edge.
	var region []*flow.Block
	for _, b := range g.Blocks {
		if dom.Reachable(b) && dom.Dominates(succ, b) {
			region = append(region, b)
		}
	}

	// Find the recheck shapes inside the region and their passing edges.
	var startEdges, wordEdges []*flow.Block
	var accepts []ast.Node
	for _, b := range region {
		for _, n := range b.Nodes {
			if e, ok := n.(ast.Expr); ok {
				if edge := pr.startRecheckEdge(g, e); edge != nil {
					startEdges = append(startEdges, edge)
					continue
				}
				if edge := pr.wordRecheckEdge(g, e); edge != nil {
					wordEdges = append(wordEdges, edge)
					continue
				}
			}
			if acceptsValue(pr, n) {
				accepts = append(accepts, n)
			}
		}
	}

	if len(startEdges) == 0 {
		p.Reportf(ext.Pos(), "value accepted after timestamp extension without a ver <= tx.Start recheck")
	}
	if len(wordEdges) == 0 {
		p.Reportf(ext.Pos(), "value accepted after timestamp extension without an orec-word recheck")
	}

	// When the shapes exist, every accept must sit under both passing
	// edges; report escapes individually.
	dominatedByAny := func(edges []*flow.Block, n ast.Node) bool {
		nb, _ := g.BlockOf(n)
		if nb == nil {
			return false
		}
		for _, e := range edges {
			if dom.Dominates(e, nb) {
				return true
			}
		}
		return false
	}
	for _, acc := range accepts {
		if len(startEdges) > 0 && !dominatedByAny(startEdges, acc) {
			p.Reportf(acc.Pos(), "runs on extension success but is not guarded by the ver <= tx.Start recheck")
		}
		if len(wordEdges) > 0 && !dominatedByAny(wordEdges, acc) {
			p.Reportf(acc.Pos(), "runs on extension success but is not guarded by the orec-word recheck")
		}
	}
}

// startRecheckEdge recognizes the `ver <= tx.Start` comparison (in any
// of its spellings) and returns the block entered when it passes.
func (pr *protocol) startRecheckEdge(g *flow.Graph, e ast.Expr) *flow.Block {
	be, ok := e.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	left := mentionsName(be.X, "Start")
	right := mentionsName(be.Y, "Start")
	switch be.Op {
	case token.LEQ: // ver <= tx.Start passes on true
		if right {
			return g.TrueSucc(be)
		}
	case token.GEQ: // tx.Start >= ver passes on true
		if left {
			return g.TrueSucc(be)
		}
	case token.GTR: // ver > tx.Start passes on false
		if right {
			return g.FalseSucc(be)
		}
	case token.LSS: // tx.Start < ver passes on false
		if left {
			return g.FalseSucc(be)
		}
	}
	return nil
}

// wordRecheckEdge recognizes the orec-word equality recheck — a
// comparison with an orec Get call on one side — and returns the block
// entered when the word is unchanged.
func (pr *protocol) wordRecheckEdge(g *flow.Graph, e ast.Expr) *flow.Block {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil
	}
	hasGet := false
	for _, side := range []ast.Expr{be.X, be.Y} {
		for _, c := range callsIn(side) {
			if m, ok := pr.orecMethod(c); ok && m == "Get" {
				hasGet = true
			}
		}
	}
	if !hasGet {
		return nil
	}
	if be.Op == token.EQL {
		return g.TrueSucc(be)
	}
	return g.FalseSucc(be)
}

// acceptsValue reports whether a graph node is a statement that uses or
// escapes a value on the success path — anything other than the recheck
// comparisons themselves, aborts, and clock notifications.
func acceptsValue(pr *protocol, n ast.Node) bool {
	switch s := n.(type) {
	case *ast.ReturnStmt:
		return len(s.Results) > 0
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt:
		return true
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		if pr.isNoReturn(call) {
			return false
		}
		if m, ok := pr.clockMethod(call); ok && (m == "NoteStale" || m == "Bump") {
			return false
		}
		return true
	}
	return false
}
