package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoBlockInAtomic scans every func literal passed to an Atomic(...)
// transaction driver for actions that are not speculation-safe: a
// transaction body may abort and re-execute any number of times, and under
// the STM engines it runs with orec locks held, so blocking inside it —
// channel operations, mutex acquisition, time.Sleep, semaphore waits,
// I/O — can deadlock the system or replay a side effect. This is exactly
// the pitfall the paper's condition-synchronization mechanisms (Retry,
// Await, WaitPred, transactional condvars) exist to replace; those are
// implemented as control transfers (panics) and stay legal.
//
// The check is syntactic over the literal's body (calls into helpers are
// not followed); it exists to catch the common shape of the mistake, not
// to prove its absence.
var NoBlockInAtomic = &Analyzer{
	Name: "noblockinatomic",
	Doc:  "forbid channel ops, mutex locks, sleeps, semaphore waits, and I/O inside Atomic(...) closures",
	Run:  runNoBlockInAtomic,
}

func runNoBlockInAtomic(p *Pass) {
	reported := make(map[ast.Node]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicDriverCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					scanTxBody(p, lit, reported)
				}
			}
			return true
		})
	}
}

// isAtomicDriverCall matches calls of a function or method named Atomic —
// the transaction drivers (tm.Thread.Atomic and the tmsync facade).
func isAtomicDriverCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "Atomic"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Atomic"
	}
	return false
}

func scanTxBody(p *Pass, lit *ast.FuncLit, reported map[ast.Node]bool) {
	report := func(n ast.Node, what string) {
		if reported[n] {
			return
		}
		reported[n] = true
		p.Reportf(n.Pos(),
			"%s inside an Atomic(...) closure: transaction bodies may abort and re-execute and must not block or perform I/O (use Retry/Await/WaitPred/condvar for condition synchronization)", what)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			report(s, "channel send")
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" {
				report(s, "channel receive")
			}
		case *ast.SelectStmt:
			report(s, "select statement")
			return false
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(s, "range over a channel")
				}
			}
		case *ast.CallExpr:
			if what := blockingCall(p, s); what != "" {
				report(s, what)
			}
		}
		return true
	})
}

// blockingCall classifies a call as a non-speculation-safe action, or
// returns "".
func blockingCall(p *Pass, call *ast.CallExpr) string {
	obj := calleeObj(p, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg, name := obj.Pkg().Path(), obj.Name()
	switch pkg {
	case "time":
		if name == "Sleep" || name == "After" || name == "Tick" {
			return "time." + name
		}
	case "sync":
		switch name {
		case "Lock", "RLock", "Wait":
			return "sync." + recvTypeName(p, call) + "." + name
		}
	case "os", "io", "bufio", "net", "net/http", "log":
		return "I/O (" + pkg + "." + name + ")"
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Scan") {
			return "I/O (fmt." + name + ")"
		}
	}
	if strings.HasSuffix(pkg, "/sem") && (name == "Wait" || name == "Acquire") {
		return "semaphore " + name
	}
	if name == "SemWait" {
		return "semaphore wait (SemWait)"
	}
	return ""
}

func recvTypeName(p *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "Locker"
	}
	if s := p.Info.Selections[sel]; s != nil {
		if named, ok := deref(s.Recv()).(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return "Locker"
}
