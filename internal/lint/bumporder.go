package lint

import (
	"go/ast"

	"tmsync/internal/lint/flow"
)

// BumpOrder checks the rollback half of the clock–version protocol: in
// every function annotated //tm:rollback, the Clock.Bump call must
// dominate every orec republish (lock-release) — under the global and
// pass-on-failure clock modes a republished version becomes visible the
// moment the orec word is stored, and if the clock has not yet covered
// it a concurrent Commit can hand the same version out again (the PR 9
// rollback bug). A deferred Bump does not count: it runs after the
// republish it was supposed to precede.
var BumpOrder = &Analyzer{
	Name: "bumporder",
	Doc:  "in rollback paths, Clock.Bump must dominate every orec republish",
	Run:  runBumpOrder,
}

func runBumpOrder(p *Pass) {
	pr := newProtocol(p)
	for _, fd := range funcDecls(p) {
		isRollback := groupHasDirective(fd.Doc, DirRollback)

		// Collect republishes and straight-line Bump calls (calls under
		// defer/go/func-literals do not execute in this function's flow).
		var republishes, bumps []*ast.CallExpr
		inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if underDeferOrGo(stack) {
				return true
			}
			if pr.isRepublish(call) {
				republishes = append(republishes, call)
			}
			if m, ok := pr.clockMethod(call); ok && m == "Bump" {
				bumps = append(bumps, call)
			}
			return true
		})

		if !isRollback {
			// Backstop: a method literally named Rollback that
			// republishes orecs must opt into the check explicitly, or
			// renames/refactors would silently shed it.
			if fd.Name.Name == "Rollback" && len(republishes) > 0 {
				p.Reportf(fd.Pos(), "method Rollback republishes orec versions but is not annotated //%s", DirRollback)
			}
			continue
		}
		if len(republishes) == 0 {
			continue
		}

		g := flow.New(fd.Body, pr.flowOpts())
		dom := flow.Dominators(g)
		for _, rep := range republishes {
			covered := false
			for _, b := range bumps {
				if g.NodeDominates(dom, b, rep) {
					covered = true
					break
				}
			}
			if !covered {
				p.Reportf(rep.Pos(), "orec republish is not dominated by a Clock.Bump call on the rollback path")
			}
		}
	}
}
