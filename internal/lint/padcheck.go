package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PadCheck verifies //tm:padded structs against types.Sizes: a struct so
// annotated must be a non-zero whole multiple of the 64-byte cache line.
// The PR 2 wake-check win depends on adjacent paddedShard / paddedOrigShard
// array elements (and locktable storage chunks) living on distinct cache
// lines; a field added to one of these without growing the trailing pad
// would silently reintroduce false sharing. The static check makes that a
// CI failure instead of a perf regression hunt.
var PadCheck = &Analyzer{
	Name: "padcheck",
	Doc:  "verify //tm:padded structs are whole multiples of the cache line",
	Run:  runPadCheck,
}

func runPadCheck(p *Pass) {
	if p.Sizes == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !groupHasDirective(doc, DirPadded) && !p.DirectiveNear(ts.Pos(), DirPadded) {
					continue
				}
				obj := p.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Struct); !ok {
					p.Reportf(ts.Pos(), "//tm:padded on %s, which is not a struct", ts.Name.Name)
					continue
				}
				sz := p.Sizes.Sizeof(obj.Type())
				if sz == 0 || sz%CacheLine != 0 {
					p.Reportf(ts.Pos(),
						"//tm:padded struct %s is %d bytes, not a non-zero multiple of the %d-byte cache line: adjacent array elements would share a line (false sharing)",
						ts.Name.Name, sz, CacheLine)
				}
			}
		}
	}
}
