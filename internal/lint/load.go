// Package loading. tmlint needs type-checked packages but must run from
// the bare Go distribution, so loading is built on go/parser + go/types
// with the source importer (which type-checks imports from source) and a
// single `go list -json` invocation to expand ./...-style patterns. A
// pattern that names an existing directory is loaded directly without
// consulting the go command — this is how the analysistest-style fixture
// suites load their testdata trees.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Sizes      types.Sizes
}

// A Loader parses and type-checks packages. One Loader shares a FileSet
// and an import cache across every package it loads, so common
// dependencies are type-checked once per process.
//
// IncludeTests closes the historical test-file blind spot: when set,
// in-package _test.go files type-check into the package under test, and
// external (package foo_test) test files load as their own package, so
// lock/timing code in the test tree faces the same analyzers as the
// runtime.
type Loader struct {
	fset         *token.FileSet
	imp          types.Importer
	sizes        types.Sizes
	IncludeTests bool
}

// NewLoader returns a ready Loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &Loader{
		fset:  fset,
		imp:   importer.ForCompiler(fset, "source", nil),
		sizes: sizes,
	}
}

// LoadPatterns loads the packages named by the given patterns. Patterns
// that name existing directories load directly; anything else (./...,
// import paths) goes through `go list`.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	var dirs, rest []string
	for _, pat := range patterns {
		if st, err := os.Stat(pat); err == nil && st.IsDir() && !strings.Contains(pat, "...") {
			dirs = append(dirs, pat)
		} else {
			rest = append(rest, pat)
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(rest) > 0 {
		listed, err := goList(rest)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if len(lp.GoFiles) == 0 && (!l.IncludeTests || len(lp.TestGoFiles) == 0) {
				continue
			}
			var files []string
			for _, f := range lp.GoFiles {
				files = append(files, filepath.Join(lp.Dir, f))
			}
			if l.IncludeTests {
				for _, f := range lp.TestGoFiles {
					files = append(files, filepath.Join(lp.Dir, f))
				}
			}
			pkg, err := l.load(lp.ImportPath, lp.Dir, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
			if l.IncludeTests && len(lp.XTestGoFiles) > 0 {
				xfiles := make([]string, len(lp.XTestGoFiles))
				for i, f := range lp.XTestGoFiles {
					xfiles[i] = filepath.Join(lp.Dir, f)
				}
				xpkg, err := l.load(lp.ImportPath+"_test", lp.Dir, xfiles)
				if err != nil {
					return nil, err
				}
				pkgs = append(pkgs, xpkg)
			}
		}
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}
	return pkgs, nil
}

// LoadDir loads the single package rooted at dir: every non-test .go file
// in the directory, type-checked as one package. With IncludeTests,
// in-package _test.go files join it; external (package foo_test) files
// are skipped — direct-dir loads produce exactly one package, and `go
// list`-driven loads handle external test packages separately.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, testFiles []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, filepath.Join(dir, name))
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	if l.IncludeTests {
		pkgName, err := packageName(files[0])
		if err != nil {
			return nil, err
		}
		for _, tf := range testFiles {
			tn, err := packageName(tf)
			if err != nil {
				return nil, err
			}
			if tn == pkgName {
				files = append(files, tf)
			}
		}
	}
	return l.load("fixture/"+filepath.Base(dir), dir, files)
}

// packageName reads just the package clause of a file.
func packageName(filename string) (string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), filename, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	return f.Name.Name, nil
}

func (l *Loader) load(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l.imp, Sizes: l.sizes}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      l.sizes,
	}, nil
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

func goList(patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(errb.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
