// Package clock provides the logical commit clock used by the STM
// engines, in the style of TL2 and TinySTM: a monotonically increasing
// counter that orders writer commits and stamps orec versions.
//
// The clock is pluggable. Three protocols from the TL2/TinySTM lineage
// are provided, selected by Mode; all three expose the same Source
// interface and are observably equivalent at the transaction level (the
// differential harness proves this), differing only in how much traffic
// they put on the shared clock word:
//
//   - Global: the classic protocol. Every writer commit (and every
//     abort that republishes lock versions) atomically increments one
//     shared word. Timestamps are unique, so a committer whose
//     increment yields exactly start+1 knows nobody committed since its
//     snapshot and may skip read-set validation. The single cache line
//     is a scalability ceiling at high core counts.
//
//   - POF (GV4-style pass-on-failure): commit attempts one CAS to
//     advance the clock; on failure it adopts the winning committer's
//     value instead of retrying, eliminating the CAS-retry storm. Two
//     writers may then share a timestamp. That is serializable: a
//     conflicting pair can never share a stamp (their write-lock sets
//     would have collided first), and an adopter's snapshot predates
//     the shared stamp so it can never have read the winner's writes.
//     Adopters must always validate; only a committer whose own CAS
//     uniquely moved start to start+1 may skip validation.
//
//   - Deferred (GV5/TicToc-flavored): commit returns Now()+1 without
//     touching the shared word at all, so many writers share each
//     stamp and the clock advances only when a reader actually
//     observes a too-new version (NoteStale) or a snapshot is
//     extended. This trades rare extra false aborts — a reader that
//     trips over a freshly published version must retry or extend —
//     for near-zero clock traffic. Commit can never skip validation.
//
// Invariant across all modes: no published orec version ever exceeds
// Now()+1, and a version v becomes readable without abort once
// Now() >= v (NoteStale guarantees progress toward that under
// Deferred).
package clock

import (
	"fmt"
	"sync/atomic"
)

// Mode names a commit-timestamp protocol.
type Mode string

const (
	// Global is the default TL2/TinySTM protocol: one atomic increment
	// of the shared clock word per writer commit. Unique timestamps.
	Global Mode = "global"
	// POF is GV4-style pass-on-CAS-failure: a failed increment adopts
	// the winner's timestamp instead of retrying.
	POF Mode = "pof"
	// Deferred is GV5/TicToc-flavored: commits publish at Now()+1
	// without advancing the shared word; the clock moves only on
	// too-new observations and snapshot extensions.
	Deferred Mode = "deferred"
)

// Modes lists every mode, default first.
func Modes() []Mode { return []Mode{Global, POF, Deferred} }

// ParseMode validates a mode name. The empty string means Global.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "":
		return Global, nil
	case Global, POF, Deferred:
		return Mode(s), nil
	}
	return "", fmt.Errorf("unknown clock mode %q (want global, pof, or deferred)", s)
}

// Source is a logical commit-timestamp source. Implementations are
// safe for concurrent use; the zero time is 0.
type Source interface {
	// Now returns the current logical time. Transactions snapshot it
	// at begin.
	Now() uint64

	// Commit returns the timestamp a writer that began at start must
	// publish its orec versions at. exclusive reports that no other
	// writer can have taken a timestamp in (start, end], which
	// licenses the TL2 fast path of skipping read-set validation.
	// Under POF and Deferred, end may be shared with concurrent
	// committers; callers must tolerate that (the engines'
	// "Version(w) > tx.Start" comparisons already do).
	Commit(start uint64) (end uint64, exclusive bool)

	// Bump advances time past versions republished outside a normal
	// commit: rollback's version+1 lock release and the HTM serial
	// fallback's unversioned stores. Under Deferred it is a no-op —
	// rollback republishes at most Version+1 <= Now()+1, which that
	// mode's invariant already permits.
	Bump()

	// NoteStale records that a transaction observed orec version v
	// ahead of its snapshot. Global and POF ignore it (their clock
	// already reached v when v was published); Deferred advances the
	// clock to at least v so the retry — or an in-place timestamp
	// extension — sees a fresh enough snapshot. Without this the
	// deferred clock would never move and too-new aborts would loop
	// forever.
	NoteStale(v uint64)

	// AtLeast advances the clock to at least t.
	AtLeast(t uint64)

	// Mode identifies the protocol.
	Mode() Mode
}

// New builds a Source for mode. casRetries counts failed CASes on the
// shared word (POF adoptions, AtLeast collisions); advances counts
// successful advances of it. Either may be nil to discard the count;
// tm.System wires them to Stats.ClockCASRetries / Stats.ClockAdvances.
// Unknown modes panic — validate user input with ParseMode first.
func New(mode Mode, casRetries, advances *atomic.Uint64) Source {
	c := counters{retries: casRetries, advances: advances}
	if c.retries == nil {
		c.retries = &atomic.Uint64{}
	}
	if c.advances == nil {
		c.advances = &atomic.Uint64{}
	}
	switch mode {
	case "", Global:
		return &global{c: c}
	case POF:
		return &pof{c: c}
	case Deferred:
		return &deferred{c: c}
	}
	panic("clock: unknown mode " + string(mode))
}

// counters aggregates shared-word traffic into the owning System's
// stats. Both pointers are always non-nil after New.
type counters struct {
	retries  *atomic.Uint64 // failed CASes on the shared word
	advances *atomic.Uint64 // successful advances of the shared word
}

// word isolates the hot shared clock word on its own cache line so the
// counters (and anything the runtime allocates adjacently) never false-
// share with it — the whole point of the POF/Deferred modes is to keep
// this line quiet.
//
//tm:padded
type word struct {
	now atomic.Uint64
	_   [56]byte
}

// atLeast CAS-advances w to at least t, feeding the traffic counters.
// It reports whether this call moved the clock.
func atLeast(w *word, c *counters, t uint64) bool {
	for {
		cur := w.now.Load()
		if cur >= t {
			return false
		}
		if w.now.CompareAndSwap(cur, t) {
			c.advances.Add(1)
			return true
		}
		c.retries.Add(1)
	}
}

// global is the classic TL2 clock: Commit = fetch-and-add.
type global struct {
	w word
	c counters
}

func (g *global) Mode() Mode  { return Global }
func (g *global) Now() uint64 { return g.w.now.Load() }

func (g *global) Commit(start uint64) (uint64, bool) {
	end := g.w.now.Add(1)
	g.c.advances.Add(1)
	// Timestamps are unique, so end == start+1 proves no other writer
	// committed since this transaction's snapshot.
	return end, end == start+1
}

func (g *global) Bump() {
	g.w.now.Add(1)
	g.c.advances.Add(1)
}

func (g *global) NoteStale(uint64) {}
func (g *global) AtLeast(t uint64) { atLeast(&g.w, &g.c, t) }

// pof is GV4: one CAS attempt; losers adopt the winner's timestamp.
type pof struct {
	w word
	c counters
}

func (p *pof) Mode() Mode  { return POF }
func (p *pof) Now() uint64 { return p.w.now.Load() }

func (p *pof) Commit(start uint64) (uint64, bool) {
	cur := p.w.now.Load()
	if p.w.now.CompareAndSwap(cur, cur+1) {
		p.c.advances.Add(1)
		// Exclusivity needs more than end == start+1 here: it needs
		// this CAS to be the unique advance from start to start+1.
		// Adoption can only follow some writer's successful CAS, so a
		// clock that never left start also had no adopters in the
		// window, and skipping validation is as sound as under Global.
		return cur + 1, cur == start
	}
	// Pass on failure: somebody else just advanced the clock — share
	// their timestamp instead of fighting for the cache line. The
	// adopted value is at least cur+1 >= start+1 (the clock is
	// monotonic and start <= cur), and never exclusive: a concurrent
	// committer self-evidently exists.
	p.c.retries.Add(1)
	return p.w.now.Load(), false
}

func (p *pof) Bump() {
	// Aborts republish versions at Version+1; the clock must cover
	// them. A lost CAS means a concurrent advance already did.
	cur := p.w.now.Load()
	if p.w.now.CompareAndSwap(cur, cur+1) {
		p.c.advances.Add(1)
	} else {
		p.c.retries.Add(1)
	}
}

func (p *pof) NoteStale(uint64) {}
func (p *pof) AtLeast(t uint64) { atLeast(&p.w, &p.c, t) }

// deferred is GV5/TicToc-flavored: commit never touches the shared
// word; readers that trip over fresh versions advance it via NoteStale.
type deferred struct {
	w word
	c counters
}

func (d *deferred) Mode() Mode  { return Deferred }
func (d *deferred) Now() uint64 { return d.w.now.Load() }

func (d *deferred) Commit(start uint64) (uint64, bool) {
	// Publish one past the current time. Many committers share each
	// stamp, and end == start+1 proves nothing (nobody advances the
	// clock on commit), so this mode never grants the fast path.
	return d.w.now.Load() + 1, false
}

// Bump is a no-op: rollback republishes at Version+1, and every
// published version already satisfies v <= Now()+1 in this mode, so
// the republished versions are exactly as "one past the clock" as a
// regular deferred commit's.
func (d *deferred) Bump() {}

func (d *deferred) NoteStale(v uint64) { atLeast(&d.w, &d.c, v) }
func (d *deferred) AtLeast(t uint64)   { atLeast(&d.w, &d.c, t) }
