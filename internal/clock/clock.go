// Package clock provides the global logical commit clock used by the STM
// engines, in the style of TL2 and TinySTM: a monotonically increasing
// counter incremented on each writer commit (and on aborts that must
// republish lock versions).
package clock

import "sync/atomic"

// Clock is a monotonically increasing logical timestamp source.
// The zero value starts at time 0 and is ready to use.
type Clock struct {
	now atomic.Uint64
}

// Now returns the current logical time.
func (c *Clock) Now() uint64 { return c.now.Load() }

// Inc atomically advances the clock and returns the new value, which the
// caller owns as its commit timestamp.
func (c *Clock) Inc() uint64 { return c.now.Add(1) }

// AtLeast advances the clock to at least t. It is used when recovering
// orec versions that must not run ahead of the clock.
func (c *Clock) AtLeast(t uint64) {
	for {
		cur := c.now.Load()
		if cur >= t || c.now.CompareAndSwap(cur, t) {
			return
		}
	}
}
