// Package clock provides the logical commit clock used by the STM
// engines, in the style of TL2 and TinySTM: a monotonically increasing
// counter that orders writer commits and stamps orec versions.
//
// The clock is pluggable. Three protocols from the TL2/TinySTM lineage
// are provided, selected by Mode; all three expose the same Source
// interface and are observably equivalent at the transaction level (the
// differential harness proves this), differing only in how much traffic
// they put on the shared clock word:
//
//   - Global: the classic protocol. Every writer commit (and every
//     abort that republishes lock versions) atomically increments one
//     shared word. Timestamps are unique, so a committer whose
//     increment yields exactly start+1 knows nobody committed since its
//     snapshot and may skip read-set validation. The single cache line
//     is a scalability ceiling at high core counts.
//
//   - POF (GV4-style pass-on-failure): commit attempts one CAS to
//     advance the clock; on failure it adopts the winning committer's
//     value instead of retrying, eliminating the CAS-retry storm. Two
//     writers may then share a timestamp. That is serializable: a
//     conflicting pair can never share a stamp (their write-lock sets
//     would have collided first), and an adopter's snapshot predates
//     the shared stamp so it can never have read the winner's writes.
//     Adopters must always validate; only a committer whose own CAS
//     uniquely moved start to start+1 may skip validation.
//
//   - Deferred (GV5/TicToc-flavored): commit returns one past
//     max(Now(), held) — held being the highest version among the
//     orecs the committer locked — without touching the shared word
//     at all, so unrelated writers share stamps and the clock advances
//     only when a reader actually observes a too-new version
//     (NoteStale) or a snapshot is extended. This trades rare extra
//     false aborts — a reader that trips over a freshly published
//     version must retry or extend — for near-zero clock traffic.
//     Commit can never skip validation.
//
// Invariants across all modes:
//
//   - Per-orec versions strictly increase across lock cycles. Global
//     and POF stamps strictly exceed the clock value sampled during
//     Commit, which already covers every version the committer locked;
//     Deferred gets the same guarantee from the held argument. Abort
//     republishes at the locked version + 1. The engines' timestamp
//     extension relies on this: an orec word unchanged since a
//     consistent sample proves no commit intervened.
//
//   - A version v becomes readable without abort once Now() >= v.
//     Under Global and POF every version is covered by the clock when
//     it is published (commit stamps by construction; abort
//     republishes only after Bump has advanced the clock past them).
//     Under Deferred published versions may run ahead of the clock —
//     commit stamps chain off held versions and abort republish never
//     bumps — and NoteStale is what moves Now() up to any version a
//     reader trips over, guaranteeing progress.
package clock

import (
	"fmt"
	"sync/atomic"
)

// Mode names a commit-timestamp protocol.
type Mode string

const (
	// Global is the default TL2/TinySTM protocol: one atomic increment
	// of the shared clock word per writer commit. Unique timestamps.
	Global Mode = "global"
	// POF is GV4-style pass-on-CAS-failure: a failed increment adopts
	// the winner's timestamp instead of retrying.
	POF Mode = "pof"
	// Deferred is GV5/TicToc-flavored: commits publish at Now()+1
	// without advancing the shared word; the clock moves only on
	// too-new observations and snapshot extensions.
	Deferred Mode = "deferred"
)

// Modes lists every mode, default first.
func Modes() []Mode { return []Mode{Global, POF, Deferred} }

// ParseMode validates a mode name. The empty string means Global.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "":
		return Global, nil
	case Global, POF, Deferred:
		return Mode(s), nil
	}
	return "", fmt.Errorf("unknown clock mode %q (want global, pof, or deferred)", s)
}

// Source is a logical commit-timestamp source. Implementations are
// safe for concurrent use; the zero time is 0.
//
//tm:clock-source
type Source interface {
	// Now returns the current logical time. Transactions snapshot it
	// at begin.
	Now() uint64

	// Commit returns the timestamp a writer that began at start must
	// publish its orec versions at. held is the highest version among
	// the orecs the writer locked (tm.Tx.MaxLockVer; 0 when untracked):
	// end always strictly exceeds it, keeping per-orec versions
	// strictly increasing even when the shared word has not moved since
	// the previous commit to the same orec (Deferred). exclusive
	// reports that no other writer can have taken a timestamp in
	// (start, end], which licenses the TL2 fast path of skipping
	// read-set validation. Under POF and Deferred, end may be shared
	// with concurrent committers; callers must tolerate that (the
	// engines' "Version(w) > tx.Start" comparisons already do).
	Commit(start, held uint64) (end uint64, exclusive bool)

	// Bump advances time past versions republished outside a normal
	// commit: rollback's version+1 lock release and the HTM serial
	// fallback's unversioned stores. The engines call it BEFORE
	// releasing rollback locks, so under Global and POF a republished
	// version is covered by the clock by the time it becomes visible —
	// a concurrent committer can then never reuse it. Under Deferred it
	// is a no-op: republished versions may run ahead of the clock there
	// (NoteStale provides reader progress), and reuse is ruled out by
	// Commit's held argument instead.
	Bump()

	// NoteStale records that a transaction observed orec version v
	// ahead of its snapshot. Global and POF ignore it (their clock
	// already reached v when v was published); Deferred advances the
	// clock to at least v so the retry — or an in-place timestamp
	// extension — sees a fresh enough snapshot. Without this the
	// deferred clock would never move and too-new aborts would loop
	// forever.
	NoteStale(v uint64)

	// AtLeast advances the clock to at least t.
	AtLeast(t uint64)

	// Mode identifies the protocol.
	Mode() Mode
}

// New builds a Source for mode. casRetries counts failed CASes on the
// shared word (POF adoptions, AtLeast collisions); advances counts
// successful advances of it. Either may be nil to discard the count;
// tm.System wires them to Stats.ClockCASRetries / Stats.ClockAdvances.
// Unknown modes panic — validate user input with ParseMode first.
func New(mode Mode, casRetries, advances *atomic.Uint64) Source {
	c := counters{retries: casRetries, advances: advances}
	if c.retries == nil {
		c.retries = &atomic.Uint64{}
	}
	if c.advances == nil {
		c.advances = &atomic.Uint64{}
	}
	switch mode {
	case "", Global:
		return &global{c: c}
	case POF:
		return &pof{c: c}
	case Deferred:
		return &deferred{c: c}
	}
	panic("clock: unknown mode " + string(mode))
}

// counters aggregates shared-word traffic into the owning System's
// stats. Both pointers are always non-nil after New.
type counters struct {
	retries  *atomic.Uint64 // failed CASes on the shared word
	advances *atomic.Uint64 // successful advances of the shared word
}

// word isolates the hot shared clock word on its own cache line so the
// counters (and anything the runtime allocates adjacently) never false-
// share with it — the whole point of the POF/Deferred modes is to keep
// this line quiet.
//
//tm:padded
type word struct {
	now atomic.Uint64
	_   [56]byte
}

// atLeast CAS-advances w to at least t, feeding the traffic counters.
// It reports whether this call moved the clock.
func atLeast(w *word, c *counters, t uint64) bool {
	for {
		cur := w.now.Load()
		if cur >= t {
			return false
		}
		if w.now.CompareAndSwap(cur, t) {
			c.advances.Add(1)
			return true
		}
		c.retries.Add(1)
	}
}

// global is the classic TL2 clock: Commit = fetch-and-add.
type global struct {
	w word
	c counters
}

func (g *global) Mode() Mode  { return Global }
func (g *global) Now() uint64 { return g.w.now.Load() }

// Commit ignores held: the fetch-and-add yields a value strictly above
// the pre-add clock, which covers every published version — including
// the ones this committer locked (rollback Bumps before republishing,
// so even abort-released versions never run ahead of the clock).
func (g *global) Commit(start, _ uint64) (uint64, bool) {
	end := g.w.now.Add(1)
	g.c.advances.Add(1)
	// Timestamps are unique, so end == start+1 proves no other writer
	// committed since this transaction's snapshot.
	return end, end == start+1
}

func (g *global) Bump() {
	g.w.now.Add(1)
	g.c.advances.Add(1)
}

func (g *global) NoteStale(uint64) {}
func (g *global) AtLeast(t uint64) { atLeast(&g.w, &g.c, t) }

// pof is GV4: one CAS attempt; losers adopt the winner's timestamp.
type pof struct {
	w word
	c counters
}

func (p *pof) Mode() Mode  { return POF }
func (p *pof) Now() uint64 { return p.w.now.Load() }

// Commit ignores held for the same reason Global does: both return
// paths yield a value strictly above the clock sampled here, and the
// clock already covers every version this committer locked (commit
// stamps by construction; rollback republishes only after Bump).
func (p *pof) Commit(start, _ uint64) (uint64, bool) {
	cur := p.w.now.Load()
	if p.w.now.CompareAndSwap(cur, cur+1) {
		p.c.advances.Add(1)
		// Exclusivity needs more than end == start+1 here: it needs
		// this CAS to be the unique advance from start to start+1.
		// Adoption can only follow some writer's successful CAS, so a
		// clock that never left start also had no adopters in the
		// window, and skipping validation is as sound as under Global.
		return cur + 1, cur == start
	}
	// Pass on failure: somebody else just advanced the clock — share
	// their timestamp instead of fighting for the cache line. The
	// adopted value is at least cur+1 >= start+1 (the clock is
	// monotonic and start <= cur), and never exclusive: a concurrent
	// committer self-evidently exists.
	p.c.retries.Add(1)
	return p.w.now.Load(), false
}

func (p *pof) Bump() {
	// Aborts republish versions at Version+1; the clock must cover
	// them. A lost CAS means a concurrent advance already did.
	cur := p.w.now.Load()
	if p.w.now.CompareAndSwap(cur, cur+1) {
		p.c.advances.Add(1)
	} else {
		p.c.retries.Add(1)
	}
}

func (p *pof) NoteStale(uint64) {}
func (p *pof) AtLeast(t uint64) { atLeast(&p.w, &p.c, t) }

// deferred is GV5/TicToc-flavored: commit never touches the shared
// word; readers that trip over fresh versions advance it via NoteStale.
type deferred struct {
	w word
	c counters
}

func (d *deferred) Mode() Mode  { return Deferred }
func (d *deferred) Now() uint64 { return d.w.now.Load() }

func (d *deferred) Commit(start, held uint64) (uint64, bool) {
	// Publish one past the current time — or one past the highest
	// version this committer locked, whichever is later. Without held,
	// two back-to-back commits to the same orec could reuse a stamp
	// (the shared word never moves on commit), and an extending reader
	// whose NoteStale raced ahead could mistake the second commit's
	// republished word for its own consistent sample. Chaining off held
	// keeps per-orec versions strictly increasing with zero shared-word
	// traffic. end == start+1 proves nothing here (nobody advances the
	// clock on commit), so this mode never grants the fast path.
	end := d.w.now.Load() + 1
	if held >= end {
		end = held + 1
	}
	return end, false
}

// Bump is a no-op: deferred published versions may legitimately run
// ahead of the clock (Commit chains off held versions; rollback
// republishes at Version+1, which can exceed Now()+1 when the locked
// orec was already one past the clock). Readers that trip over such a
// version advance the clock themselves via NoteStale, and version
// reuse is ruled out by Commit's held argument, so rollback has
// nothing to cover here.
func (d *deferred) Bump() {}

func (d *deferred) NoteStale(v uint64) { atLeast(&d.w, &d.c, v) }
func (d *deferred) AtLeast(t uint64)   { atLeast(&d.w, &d.c, t) }
