package clock

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Mode
	}{
		{"", Global},
		{"global", Global},
		{"pof", POF},
		{"deferred", Deferred},
	} {
		got, err := ParseMode(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) did not fail")
	}
}

func TestNewUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(bogus) did not panic")
		}
	}()
	New(Mode("bogus"), nil, nil)
}

func TestZeroTime(t *testing.T) {
	for _, m := range Modes() {
		if c := New(m, nil, nil); c.Now() != 0 {
			t.Errorf("%s: fresh clock reads %d", m, c.Now())
		}
	}
}

func TestModeIdentity(t *testing.T) {
	for _, m := range Modes() {
		if got := New(m, nil, nil).Mode(); got != m {
			t.Errorf("New(%s).Mode() = %s", m, got)
		}
	}
}

// TestAtLeastNeverRegresses covers every mode: AtLeast moves the clock
// forward to the target and never backwards.
func TestAtLeastNeverRegresses(t *testing.T) {
	for _, m := range Modes() {
		c := New(m, nil, nil)
		c.AtLeast(100)
		if c.Now() != 100 {
			t.Fatalf("%s: AtLeast(100): now=%d", m, c.Now())
		}
		c.AtLeast(50) // must not go backwards
		if c.Now() != 100 {
			t.Fatalf("%s: AtLeast(50) moved clock backwards to %d", m, c.Now())
		}
	}
}

// TestCommitMonotonic pins the single-threaded contract of every mode:
// Commit's end always exceeds the start it was given, and Now never
// runs ahead of published versions by more than the mode's invariant
// (versions <= Now()+1).
func TestCommitMonotonic(t *testing.T) {
	for _, m := range Modes() {
		c := New(m, nil, nil)
		for i := 0; i < 100; i++ {
			start := c.Now()
			end, _ := c.Commit(start, 0)
			if end <= start {
				t.Fatalf("%s: Commit(%d) = %d, not after start", m, start, end)
			}
			if end > c.Now()+1 {
				t.Fatalf("%s: end %d exceeds Now()+1 = %d", m, end, c.Now()+1)
			}
			// Simulate the release: published versions become visible,
			// so a later snapshot must be able to read them eventually.
			c.NoteStale(end)
			if c.Now() < end && m == Deferred {
				t.Fatalf("%s: NoteStale(%d) left clock at %d", m, end, c.Now())
			}
		}
	}
}

// TestGlobalExclusiveUncontended: with no concurrent committers, every
// global-mode commit gets the validation-skipping fast path, and
// timestamps advance by exactly one.
func TestGlobalExclusiveUncontended(t *testing.T) {
	c := New(Global, nil, nil)
	for i := uint64(1); i <= 10; i++ {
		end, excl := c.Commit(i-1, 0)
		if end != i || !excl {
			t.Fatalf("Commit #%d = %d, exclusive=%v", i, end, excl)
		}
	}
}

// TestDeferredCommitQuiet: deferred commits never touch the shared
// word — Now stays put and no advances are counted.
func TestDeferredCommitQuiet(t *testing.T) {
	var retries, advances atomic.Uint64
	c := New(Deferred, &retries, &advances)
	c.AtLeast(7)
	advances.Store(0)
	for i := 0; i < 100; i++ {
		end, excl := c.Commit(7, 0)
		if end != 8 || excl {
			t.Fatalf("Commit = %d, exclusive=%v; want 8, false", end, excl)
		}
	}
	c.Bump() // must also stay quiet in this mode
	if c.Now() != 7 || advances.Load() != 0 || retries.Load() != 0 {
		t.Fatalf("deferred commit produced clock traffic: now=%d advances=%d retries=%d",
			c.Now(), advances.Load(), retries.Load())
	}
}

// TestCounters pins the uncontended counter semantics: every global
// advance is counted, pof counts its successful CAS, and AtLeast on an
// already-ahead clock counts nothing.
func TestCounters(t *testing.T) {
	for _, m := range []Mode{Global, POF} {
		var retries, advances atomic.Uint64
		c := New(m, &retries, &advances)
		c.Commit(0, 0)
		c.Bump()
		c.AtLeast(10)
		c.AtLeast(5) // no-op: already past 5
		if advances.Load() != 3 {
			t.Errorf("%s: advances = %d, want 3", m, advances.Load())
		}
		if retries.Load() != 0 {
			t.Errorf("%s: retries = %d, want 0", m, retries.Load())
		}
	}
}

// TestConcurrentCommitUniqueTimestamps is the global mode's defining
// property: concurrent committers all receive distinct timestamps and
// the final clock equals the number of commits.
func TestConcurrentCommitUniqueTimestamps(t *testing.T) {
	c := New(Global, nil, nil)
	const goroutines = 8
	const per = 10000
	results := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out := make([]uint64, per)
			for i := range out {
				out[i], _ = c.Commit(0, 0)
			}
			results[id] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*per)
	for _, r := range results {
		prev := uint64(0)
		for _, v := range r {
			if v <= prev {
				t.Fatal("Commit not monotonic within a goroutine")
			}
			prev = v
			if seen[v] {
				t.Fatalf("timestamp %d issued twice", v)
			}
			seen[v] = true
		}
	}
	if c.Now() != goroutines*per {
		t.Fatalf("final clock %d, want %d", c.Now(), goroutines*per)
	}
}

// TestPOFSharedTimestampTolerance is the pof property test from the
// issue: hammer Commit from many goroutines, each simulating the
// engine protocol (snapshot Now, commit, "publish" version end). The
// published versions must never exceed the clock, per-goroutine ends
// never regress, exclusivity is only ever granted for end == start+1,
// and the clock's final value never exceeds the number of commits
// (adoption means it is usually far less).
func TestPOFSharedTimestampTolerance(t *testing.T) {
	var retries, advances atomic.Uint64
	c := New(POF, &retries, &advances)
	const goroutines = 8
	const per = 5000
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := uint64(0)
			for i := 0; i < per; i++ {
				start := c.Now()
				end, excl := c.Commit(start, 0)
				if end <= start {
					errs <- "end not after start"
					return
				}
				if excl && end != start+1 {
					errs <- "exclusive commit with end != start+1"
					return
				}
				// The version this commit would publish must already be
				// covered by the clock: pof only hands out end values the
				// shared word has reached.
				if now := c.Now(); end > now {
					errs <- "published version ahead of the clock"
					return
				}
				if end < prev {
					errs <- "per-goroutine end regressed"
					return
				}
				prev = end
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	total := uint64(goroutines * per)
	if now := c.Now(); now > total {
		t.Fatalf("clock %d ran ahead of %d commits", now, total)
	}
	if advances.Load()+retries.Load() == 0 {
		t.Fatal("no clock traffic counted")
	}
}

// TestCommitExceedsHeld pins the per-orec monotonicity contract of
// every mode: a commit stamp strictly exceeds the highest version the
// committer holds locked, so two successive commits to the same orec
// can never publish the same version.
func TestCommitExceedsHeld(t *testing.T) {
	for _, m := range Modes() {
		c := New(m, nil, nil)
		held := uint64(0)
		for i := 0; i < 100; i++ {
			end, _ := c.Commit(c.Now(), held)
			if end <= held {
				t.Fatalf("%s: Commit with held=%d returned %d (version reuse)", m, held, end)
			}
			held = end // the next committer of this orec locks version end
		}
	}
}

// TestDeferredStampsChainOffHeld is the regression for the deferred
// stamp-collision bug: the shared word never moves on commit, so
// without the held argument two back-to-back commits to the same orec
// would both publish Now()+1 — letting an extending reader validate a
// stale value against a bit-identical republished orec word. The stamps
// must chain off the held version with zero shared-word traffic.
func TestDeferredStampsChainOffHeld(t *testing.T) {
	var retries, advances atomic.Uint64
	c := New(Deferred, &retries, &advances)
	end1, _ := c.Commit(0, 0)
	end2, _ := c.Commit(0, end1)
	end3, _ := c.Commit(0, end2)
	if end1 != 1 || end2 != 2 || end3 != 3 {
		t.Fatalf("chained deferred stamps = %d, %d, %d; want 1, 2, 3", end1, end2, end3)
	}
	if c.Now() != 0 || advances.Load() != 0 || retries.Load() != 0 {
		t.Fatalf("held chaining touched the shared word: now=%d advances=%d retries=%d",
			c.Now(), advances.Load(), retries.Load())
	}
}

// TestNowMonotonicUnderConcurrency samples Now while other goroutines
// drive each mode's advance paths; observed time must never decrease.
func TestNowMonotonicUnderConcurrency(t *testing.T) {
	for _, m := range Modes() {
		c := New(m, nil, nil)
		var committers sync.WaitGroup
		for g := 0; g < 4; g++ {
			committers.Add(1)
			go func() {
				defer committers.Done()
				for i := 0; i < 2000; i++ {
					end, _ := c.Commit(c.Now(), 0)
					c.NoteStale(end)
					if i%64 == 0 {
						c.Bump()
					}
				}
			}()
		}
		stop := make(chan struct{})
		samplerDone := make(chan struct{})
		go func() {
			defer close(samplerDone)
			prev := uint64(0)
			for {
				now := c.Now()
				if now < prev {
					t.Errorf("%s: Now went backwards: %d after %d", m, now, prev)
					return
				}
				prev = now
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
		committers.Wait()
		close(stop)
		<-samplerDone
	}
}
