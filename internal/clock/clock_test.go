package clock

import (
	"sync"
	"testing"
)

func TestZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %d", c.Now())
	}
}

func TestIncReturnsNewValue(t *testing.T) {
	var c Clock
	for i := uint64(1); i <= 10; i++ {
		if got := c.Inc(); got != i {
			t.Fatalf("Inc #%d = %d", i, got)
		}
	}
}

func TestAtLeast(t *testing.T) {
	var c Clock
	c.AtLeast(100)
	if c.Now() != 100 {
		t.Fatalf("AtLeast(100): now=%d", c.Now())
	}
	c.AtLeast(50) // must not go backwards
	if c.Now() != 100 {
		t.Fatalf("AtLeast(50) moved clock backwards to %d", c.Now())
	}
}

func TestConcurrentIncUniqueTimestamps(t *testing.T) {
	var c Clock
	const goroutines = 8
	const per = 10000
	results := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out := make([]uint64, per)
			for i := range out {
				out[i] = c.Inc()
			}
			results[id] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*per)
	for _, r := range results {
		prev := uint64(0)
		for _, v := range r {
			if v <= prev {
				t.Fatal("Inc not monotonic within a goroutine")
			}
			prev = v
			if seen[v] {
				t.Fatalf("timestamp %d issued twice", v)
			}
			seen[v] = true
		}
	}
	if c.Now() != goroutines*per {
		t.Fatalf("final clock %d, want %d", c.Now(), goroutines*per)
	}
}
