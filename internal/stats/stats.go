// Package stats provides the summary statistics the evaluation reports:
// each plotted point is the average of several trials, with variance
// tracked because the oversubscribed configurations are noisy (§2.4.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of trial measurements.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1)
	Stddev   float64
	Min      float64
	Max      float64
	Median   float64
}

// Summarize computes summary statistics over xs. It panics on an empty
// sample, which would indicate a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(len(xs)-1)
		s.Stddev = math.Sqrt(s.Variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders "mean ± stddev" in seconds, the form the figures plot.
func (s Summary) String() string {
	return fmt.Sprintf("%.4f±%.4f", s.Mean, s.Stddev)
}

// Table accumulates rows of text cells and renders them with aligned
// columns — the plain-text report format behind cmd/tmcheck's
// pass/abort-rate tables.
type Table struct {
	rows [][]string
}

// Header adds a header row.
func (t *Table) Header(cells ...string) { t.rows = append(t.rows, cells) }

// Row adds a data row.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with each column padded to its widest cell.
func (t *Table) String() string {
	widths := make([]int, 0, 8)
	for _, r := range t.rows {
		for i, c := range r {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b []byte
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b = append(b, ' ', ' ')
			}
			b = append(b, c...)
			if i < len(r)-1 {
				for p := len(c); p < widths[i]; p++ {
					b = append(b, ' ')
				}
			}
		}
		b = append(b, '\n')
	}
	return string(b)
}
