package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !near(s.Mean, 2.5) || !near(s.Min, 1) || !near(s.Max, 4) {
		t.Fatalf("bad summary %+v", s)
	}
	// variance of {1,2,3,4} with n-1: ((1.5^2)*2 + (0.5^2)*2)/3 = 5/3
	if !near(s.Variance, 5.0/3.0) {
		t.Fatalf("variance = %v", s.Variance)
	}
	if !near(s.Median, 2.5) {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Variance != 0 || s.Stddev != 0 || s.Median != 7 {
		t.Fatalf("bad single-sample summary %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if !near(s.Median, 5) {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Min <= s.Median && s.Median <= s.Max && s.Variance >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.Header("engine", "pass", "abort-rate")
	tb.Row("eager", "50/50", "0.12")
	tb.Row("htm", "49/50", "0.30")
	got := tb.String()
	want := "engine  pass   abort-rate\n" +
		"eager   50/50  0.12\n" +
		"htm     49/50  0.30\n"
	if got != want {
		t.Errorf("Table.String() =\n%q\nwant\n%q", got, want)
	}
}
