package txds

import (
	"tmsync/internal/core"
	"tmsync/internal/mem"
	"tmsync/internal/tm"
)

// Map is a transactional hash map from word keys to word values, using
// per-bucket chains of arena nodes. Its WaitFor operation shows WaitPred
// as a library primitive: wait until a key is present, waking only when
// it actually appears.
//
// Node layout: word 0 = next index, word 1 = key, word 2 = value.
type Map struct {
	arena   *Arena
	buckets *mem.Array
	size    mem.Var
	nb      uint64
}

// MapNodeWords is the arena node width a Map requires.
const MapNodeWords = 3

// NewMap returns an empty map with nbuckets chains (power of two).
func NewMap(arena *Arena, nbuckets int) *Map {
	if arena.nodeWords != MapNodeWords {
		panic("txds: map arena must have 3 words per node")
	}
	if nbuckets <= 0 || nbuckets&(nbuckets-1) != 0 {
		panic("txds: bucket count must be a positive power of two")
	}
	return &Map{arena: arena, buckets: mem.NewArray(nbuckets), nb: uint64(nbuckets)}
}

func (m *Map) bucket(key uint64) int {
	h := key * 0x9e3779b97f4a7c15
	return int((h >> 32) & (m.nb - 1))
}

// find returns the node holding key and its predecessor (Nil if none/head).
func (m *Map) find(tx *tm.Tx, key uint64) (node, prev uint64) {
	prev = Nil
	node = m.buckets.Get(tx, m.bucket(key))
	for node != Nil {
		if tx.Read(m.arena.Word(node, 1)) == key {
			return node, prev
		}
		prev = node
		node = tx.Read(m.arena.Word(node, 0))
	}
	return Nil, Nil
}

// PutTx inserts or updates key → val; reports whether the key was new.
func (m *Map) PutTx(tx *tm.Tx, key, val uint64) bool {
	if n, _ := m.find(tx, key); n != Nil {
		tx.Write(m.arena.Word(n, 2), val)
		return false
	}
	n := m.arena.Alloc(tx)
	b := m.bucket(key)
	tx.Write(m.arena.Word(n, 1), key)
	tx.Write(m.arena.Word(n, 2), val)
	tx.Write(m.arena.Word(n, 0), m.buckets.Get(tx, b))
	m.buckets.Set(tx, b, n)
	m.size.Set(tx, m.size.Get(tx)+1)
	return true
}

// GetTx looks key up.
func (m *Map) GetTx(tx *tm.Tx, key uint64) (uint64, bool) {
	n, _ := m.find(tx, key)
	if n == Nil {
		return 0, false
	}
	return tx.Read(m.arena.Word(n, 2)), true
}

// DeleteTx removes key, reporting whether it was present.
func (m *Map) DeleteTx(tx *tm.Tx, key uint64) bool {
	n, prev := m.find(tx, key)
	if n == Nil {
		return false
	}
	next := tx.Read(m.arena.Word(n, 0))
	if prev == Nil {
		m.buckets.Set(tx, m.bucket(key), next)
	} else {
		tx.Write(m.arena.Word(prev, 0), next)
	}
	m.arena.Free(tx, n)
	m.size.Set(tx, m.size.Get(tx)-1)
	return true
}

// LenTx returns the number of entries.
func (m *Map) LenTx(tx *tm.Tx) int { return int(m.size.Get(tx)) }

// SnapshotTx returns the map's entire contents (read-only state-snapshot
// hook for the differential harness; cost is O(buckets + entries)).
func (m *Map) SnapshotTx(tx *tm.Tx) map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for b := 0; b < int(m.nb); b++ {
		for n := m.buckets.Get(tx, b); n != Nil; n = tx.Read(m.arena.Word(n, 0)) {
			out[tx.Read(m.arena.Word(n, 1))] = tx.Read(m.arena.Word(n, 2))
		}
	}
	return out
}

// WaitForTx returns key's value, descheduling on a predicate — "key is
// present" — until some transaction inserts it. Unrelated insertions do
// not wake the waiter.
func (m *Map) WaitForTx(tx *tm.Tx, key uint64) uint64 {
	v, ok := m.GetTx(tx, key)
	if !ok {
		core.WaitPred(tx, func(tx *tm.Tx, args []uint64) bool {
			_, ok := m.GetTx(tx, args[0])
			return ok
		}, key)
	}
	return v
}

// Put inserts or updates in its own transaction.
func (m *Map) Put(thr *tm.Thread, key, val uint64) bool {
	var fresh bool
	thr.Atomic(func(tx *tm.Tx) { fresh = m.PutTx(tx, key, val) })
	return fresh
}

// Get looks up in its own transaction.
func (m *Map) Get(thr *tm.Thread, key uint64) (uint64, bool) {
	var v uint64
	var ok bool
	thr.Atomic(func(tx *tm.Tx) { v, ok = m.GetTx(tx, key) })
	return v, ok
}

// Delete removes in its own transaction.
func (m *Map) Delete(thr *tm.Thread, key uint64) bool {
	var ok bool
	thr.Atomic(func(tx *tm.Tx) { ok = m.DeleteTx(tx, key) })
	return ok
}

// WaitFor blocks until key is present, then returns its value.
func (m *Map) WaitFor(thr *tm.Thread, key uint64) uint64 {
	var v uint64
	thr.Atomic(func(tx *tm.Tx) { v = m.WaitForTx(tx, key) })
	return v
}
