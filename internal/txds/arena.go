// Package txds provides transactional data structures — an arena
// allocator, an unbounded FIFO queue, a LIFO stack, and a hash map — built
// entirely on the word-based TM API, with blocking variants of their
// operations expressed through the paper's condition-synchronization
// mechanisms (a Take on an empty queue Retries; an exhausted arena makes
// allocators wait for a Free). They demonstrate the composability argument
// of §1.2: because Retry does not break atomicity, these structures can be
// combined into larger atomic operations freely.
package txds

import (
	"fmt"

	"tmsync/internal/core"
	"tmsync/internal/mem"
	"tmsync/internal/tm"
)

// Nil is the null node index. Arena indices are 1-based so the zero word
// means "no node", matching the zero value of fresh transactional memory.
const Nil = uint64(0)

// Arena is a fixed-capacity allocator of equal-sized nodes inside one
// slab of transactional words. Structures link nodes by index, the
// word-TM analogue of pointers. Allocation and reclamation are
// transactional: an aborted transaction's allocations are undone with it.
type Arena struct {
	nodeWords int
	slab      *mem.Array
	freeHead  mem.Var // index of first free node
}

// NewArena returns an arena of capacity nodes, each nodeWords words wide.
func NewArena(capacity, nodeWords int) *Arena {
	if capacity <= 0 || nodeWords <= 0 {
		panic(fmt.Sprintf("txds: invalid arena geometry %d×%d", capacity, nodeWords))
	}
	a := &Arena{
		nodeWords: nodeWords,
		slab:      mem.NewArray(capacity * nodeWords),
	}
	// Thread the freelist through word 0 of each node.
	for i := 1; i < capacity; i++ {
		a.slab.Store((i-1)*nodeWords, uint64(i+1))
	}
	a.slab.Store((capacity-1)*nodeWords, Nil)
	a.freeHead.Store(1)
	return a
}

// Word returns the address of word off of node idx, for use with
// tx.Read/tx.Write and Await.
func (a *Arena) Word(idx uint64, off int) *uint64 {
	if idx == Nil {
		panic("txds: nil node dereference")
	}
	return a.slab.Addr((int(idx)-1)*a.nodeWords + off)
}

// TryAlloc pops a node from the freelist, returning Nil when the arena is
// exhausted. The node's words are zeroed.
func (a *Arena) TryAlloc(tx *tm.Tx) uint64 {
	head := a.freeHead.Get(tx)
	if head == Nil {
		return Nil
	}
	a.freeHead.Set(tx, tx.Read(a.Word(head, 0)))
	for off := 0; off < a.nodeWords; off++ {
		tx.Write(a.Word(head, off), 0)
	}
	return head
}

// Alloc pops a node from the freelist, descheduling the transaction until
// another transaction frees a node if the arena is exhausted — memory
// pressure expressed as condition synchronization.
func (a *Arena) Alloc(tx *tm.Tx) uint64 {
	idx := a.TryAlloc(tx)
	if idx == Nil {
		core.Retry(tx)
	}
	return idx
}

// Free pushes node idx back onto the freelist.
func (a *Arena) Free(tx *tm.Tx, idx uint64) {
	tx.Write(a.Word(idx, 0), a.freeHead.Get(tx))
	a.freeHead.Set(tx, idx)
}

// FreeCount walks the freelist and returns its length (tests; O(capacity)).
func (a *Arena) FreeCount(tx *tm.Tx) int {
	n := 0
	for idx := a.freeHead.Get(tx); idx != Nil; idx = tx.Read(a.Word(idx, 0)) {
		n++
	}
	return n
}
