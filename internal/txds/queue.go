package txds

import (
	"tmsync/internal/core"
	"tmsync/internal/mem"
	"tmsync/internal/tm"
)

// Queue is an unbounded transactional FIFO queue of word values. Nodes
// come from a caller-supplied Arena, so "unbounded" means bounded by the
// arena; a Put on an exhausted arena waits for a reclamation.
//
// Node layout: word 0 = next index, word 1 = value.
const queueNodeWords = 2

// Queue methods ending in Tx run inside the caller's transaction and
// compose with other transactional operations; the rest open their own.
type Queue struct {
	arena *Arena
	head  mem.Var // oldest node, Nil when empty
	tail  mem.Var // newest node, Nil when empty
	size  mem.Var
}

// NewQueue returns an empty queue drawing nodes from arena, which must
// have been built with NodeWords() words per node.
func NewQueue(arena *Arena) *Queue {
	if arena.nodeWords != queueNodeWords {
		panic("txds: queue arena must have 2 words per node")
	}
	return &Queue{arena: arena}
}

// QueueNodeWords is the arena node width a Queue requires.
const QueueNodeWords = queueNodeWords

// PutTx appends v, waiting for arena capacity if necessary.
func (q *Queue) PutTx(tx *tm.Tx, v uint64) {
	n := q.arena.Alloc(tx)
	tx.Write(q.arena.Word(n, 1), v)
	if t := q.tail.Get(tx); t == Nil {
		q.head.Set(tx, n)
	} else {
		tx.Write(q.arena.Word(t, 0), n)
	}
	q.tail.Set(tx, n)
	q.size.Set(tx, q.size.Get(tx)+1)
}

// TryTakeTx removes and returns the oldest element, or reports emptiness.
func (q *Queue) TryTakeTx(tx *tm.Tx) (uint64, bool) {
	h := q.head.Get(tx)
	if h == Nil {
		return 0, false
	}
	v := tx.Read(q.arena.Word(h, 1))
	next := tx.Read(q.arena.Word(h, 0))
	q.head.Set(tx, next)
	if next == Nil {
		q.tail.Set(tx, Nil)
	}
	q.arena.Free(tx, h)
	q.size.Set(tx, q.size.Get(tx)-1)
	return v, true
}

// TakeTx removes and returns the oldest element, descheduling until one
// exists (Retry on the dynamic read set).
func (q *Queue) TakeTx(tx *tm.Tx) uint64 {
	v, ok := q.TryTakeTx(tx)
	if !ok {
		core.Retry(tx)
	}
	return v
}

// LenTx returns the current length.
func (q *Queue) LenTx(tx *tm.Tx) int { return int(q.size.Get(tx)) }

// HeadAddr returns the address of the head word. A Take that finds the
// queue empty has necessarily read it, and the Put that un-empties the
// queue necessarily writes it, so it is the right Await address for
// "queue is non-empty" (differential harness and Await callers).
func (q *Queue) HeadAddr() *uint64 { return q.head.Addr() }

// SizeAddr returns the address of the size word (Await callers, tests).
func (q *Queue) SizeAddr() *uint64 { return q.size.Addr() }

// SnapshotTx returns the queued values in FIFO order (oldest first). It
// is a read-only state-snapshot hook for the differential harness; cost
// is O(len).
func (q *Queue) SnapshotTx(tx *tm.Tx) []uint64 {
	var out []uint64
	for n := q.head.Get(tx); n != Nil; n = tx.Read(q.arena.Word(n, 0)) {
		out = append(out, tx.Read(q.arena.Word(n, 1)))
	}
	return out
}

// Put appends v in its own transaction.
func (q *Queue) Put(thr *tm.Thread, v uint64) {
	thr.Atomic(func(tx *tm.Tx) { q.PutTx(tx, v) })
}

// Take removes the oldest element in its own transaction, blocking while
// the queue is empty.
func (q *Queue) Take(thr *tm.Thread) uint64 {
	var v uint64
	thr.Atomic(func(tx *tm.Tx) { v = q.TakeTx(tx) })
	return v
}

// Len reports the length in its own transaction.
func (q *Queue) Len(thr *tm.Thread) int {
	var n int
	thr.Atomic(func(tx *tm.Tx) { n = q.LenTx(tx) })
	return n
}
