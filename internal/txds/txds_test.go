package txds_test

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tmsync/internal/core"
	"tmsync/internal/htm"
	"tmsync/internal/hybrid"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
	"tmsync/internal/txds"
)

func newSys(kind string) *tm.System {
	var sys *tm.System
	switch kind {
	case "eager":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, eager.New)
	case "lazy":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, lazy.New)
	case "htm":
		sys = tm.NewSystem(tm.Config{}, htm.New)
	case "hybrid":
		sys = tm.NewSystem(tm.Config{Quiesce: true}, hybrid.New)
	}
	core.Enable(sys)
	return sys
}

var allEngines = []string{"eager", "lazy", "htm", "hybrid"}

func TestArenaAllocFree(t *testing.T) {
	sys := newSys("eager")
	thr := sys.NewThread()
	a := txds.NewArena(4, 2)
	var nodes []uint64
	thr.Atomic(func(tx *tm.Tx) {
		nodes = nodes[:0] // tolerate re-execution
		for i := 0; i < 4; i++ {
			n := a.TryAlloc(tx)
			if n == txds.Nil {
				t.Error("arena exhausted early")
			}
			nodes = append(nodes, n)
		}
		if a.TryAlloc(tx) != txds.Nil {
			t.Error("over-allocated")
		}
	})
	seen := map[uint64]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatalf("node %d allocated twice", n)
		}
		seen[n] = true
	}
	thr.Atomic(func(tx *tm.Tx) {
		for _, n := range nodes {
			a.Free(tx, n)
		}
		if a.FreeCount(tx) != 4 {
			t.Errorf("free count = %d", a.FreeCount(tx))
		}
	})
}

func TestArenaAbortUndoesAllocation(t *testing.T) {
	sys := newSys("lazy")
	thr := sys.NewThread()
	a := txds.NewArena(2, 2)
	tries := 0
	thr.Atomic(func(tx *tm.Tx) {
		tries++
		_ = a.Alloc(tx)
		if tries == 1 {
			tx.Abort(tm.AbortExplicit)
		}
	})
	thr.Atomic(func(tx *tm.Tx) {
		// One node used by the committed attempt; one must remain.
		if got := a.FreeCount(tx); got != 1 {
			t.Fatalf("free count = %d, want 1 (abort leaked a node)", got)
		}
	})
}

func TestArenaExhaustionBlocksUntilFree(t *testing.T) {
	sys := newSys("eager")
	a := txds.NewArena(1, 2)
	holder := sys.NewThread()
	var node uint64
	holder.Atomic(func(tx *tm.Tx) { node = a.Alloc(tx) })

	done := make(chan uint64, 1)
	go func() {
		thr := sys.NewThread()
		var n uint64
		thr.Atomic(func(tx *tm.Tx) { n = a.Alloc(tx) })
		done <- n
	}()
	select {
	case <-done:
		t.Fatal("allocation succeeded from an exhausted arena")
	case <-time.After(50 * time.Millisecond):
	}
	holder.Atomic(func(tx *tm.Tx) { a.Free(tx, node) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked allocator never woke after Free")
	}
}

func TestQueueFIFO(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			sys := newSys(kind)
			thr := sys.NewThread()
			q := txds.NewQueue(txds.NewArena(16, txds.QueueNodeWords))
			for i := uint64(1); i <= 10; i++ {
				q.Put(thr, i*i)
			}
			if q.Len(thr) != 10 {
				t.Fatalf("len = %d", q.Len(thr))
			}
			for i := uint64(1); i <= 10; i++ {
				if got := q.Take(thr); got != i*i {
					t.Fatalf("Take = %d, want %d", got, i*i)
				}
			}
			if q.Len(thr) != 0 {
				t.Fatalf("len = %d after drain", q.Len(thr))
			}
		})
	}
}

func TestQueueBlockingTake(t *testing.T) {
	sys := newSys("htm")
	q := txds.NewQueue(txds.NewArena(4, txds.QueueNodeWords))
	got := make(chan uint64, 1)
	go func() {
		thr := sys.NewThread()
		got <- q.Take(thr)
	}()
	select {
	case v := <-got:
		t.Fatalf("Take returned %d from an empty queue", v)
	case <-time.After(50 * time.Millisecond):
	}
	w := sys.NewThread()
	q.Put(w, 31)
	select {
	case v := <-got:
		if v != 31 {
			t.Fatalf("Take = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Take never woke")
	}
}

func TestQueueConcurrentConservation(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			sys := newSys(kind)
			q := txds.NewQueue(txds.NewArena(8, txds.QueueNodeWords))
			const workers = 3
			const per = 500
			var wg sync.WaitGroup
			consumed := make([]map[uint64]bool, workers)
			for w := 0; w < workers; w++ {
				wg.Add(2)
				go func(id int) {
					defer wg.Done()
					thr := sys.NewThread()
					for i := 0; i < per; i++ {
						q.Put(thr, uint64(id*per+i)+1)
					}
				}(w)
				go func(id int) {
					defer wg.Done()
					thr := sys.NewThread()
					m := make(map[uint64]bool, per)
					for i := 0; i < per; i++ {
						m[q.Take(thr)] = true
					}
					consumed[id] = m
				}(w)
			}
			ch := make(chan struct{})
			go func() { wg.Wait(); close(ch) }()
			select {
			case <-ch:
			case <-time.After(60 * time.Second):
				t.Fatal("wedged")
			}
			all := make(map[uint64]bool)
			for _, m := range consumed {
				for v := range m {
					if all[v] {
						t.Fatalf("value %d consumed twice", v)
					}
					all[v] = true
				}
			}
			if len(all) != workers*per {
				t.Fatalf("consumed %d values, want %d", len(all), workers*per)
			}
		})
	}
}

func TestStackLIFO(t *testing.T) {
	sys := newSys("lazy")
	thr := sys.NewThread()
	s := txds.NewStack(txds.NewArena(8, txds.StackNodeWords))
	for i := uint64(1); i <= 5; i++ {
		s.Push(thr, i)
	}
	for i := uint64(5); i >= 1; i-- {
		if got := s.Pop(thr); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
}

func TestStackBlockingPop(t *testing.T) {
	sys := newSys("eager")
	s := txds.NewStack(txds.NewArena(4, txds.StackNodeWords))
	got := make(chan uint64, 1)
	go func() {
		thr := sys.NewThread()
		got <- s.Pop(thr)
	}()
	time.Sleep(20 * time.Millisecond)
	w := sys.NewThread()
	s.Push(w, 7)
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("Pop = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Pop never woke")
	}
}

func TestMapBasics(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			sys := newSys(kind)
			thr := sys.NewThread()
			m := txds.NewMap(txds.NewArena(32, txds.MapNodeWords), 8)
			if !m.Put(thr, 1, 100) {
				t.Fatal("first Put not fresh")
			}
			if m.Put(thr, 1, 200) {
				t.Fatal("update reported fresh")
			}
			if v, ok := m.Get(thr, 1); !ok || v != 200 {
				t.Fatalf("Get = %d,%v", v, ok)
			}
			if _, ok := m.Get(thr, 2); ok {
				t.Fatal("phantom key")
			}
			if !m.Delete(thr, 1) {
				t.Fatal("Delete missed")
			}
			if m.Delete(thr, 1) {
				t.Fatal("double Delete succeeded")
			}
		})
	}
}

func TestMapCollidingKeys(t *testing.T) {
	// 2 buckets force chains; keys must remain distinct entries.
	sys := newSys("eager")
	thr := sys.NewThread()
	m := txds.NewMap(txds.NewArena(64, txds.MapNodeWords), 2)
	for k := uint64(1); k <= 40; k++ {
		m.Put(thr, k, k*3)
	}
	for k := uint64(1); k <= 40; k++ {
		if v, ok := m.Get(thr, k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	// Delete every other key and re-verify.
	for k := uint64(2); k <= 40; k += 2 {
		if !m.Delete(thr, k) {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	for k := uint64(1); k <= 40; k++ {
		_, ok := m.Get(thr, k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", k, ok, want)
		}
	}
}

func TestMapWaitForWakesOnlyOnKey(t *testing.T) {
	sys := newSys("hybrid")
	m := txds.NewMap(txds.NewArena(32, txds.MapNodeWords), 8)
	got := make(chan uint64, 1)
	go func() {
		thr := sys.NewThread()
		got <- m.WaitFor(thr, 42)
	}()
	time.Sleep(20 * time.Millisecond)
	w := sys.NewThread()
	for k := uint64(1); k <= 10; k++ {
		m.Put(w, k, k) // unrelated keys must not complete the wait
	}
	select {
	case v := <-got:
		t.Fatalf("WaitFor returned %d before the key existed", v)
	case <-time.After(50 * time.Millisecond):
	}
	m.Put(w, 42, 4242)
	select {
	case v := <-got:
		if v != 4242 {
			t.Fatalf("WaitFor = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor never woke on its key")
	}
}

// TestMapMatchesModelProperty drives the transactional map with random
// operation sequences and compares against Go's map as the model.
func TestMapMatchesModelProperty(t *testing.T) {
	sys := newSys("lazy")
	thr := sys.NewThread()
	f := func(ops []uint16) bool {
		m := txds.NewMap(txds.NewArena(256, txds.MapNodeWords), 16)
		model := make(map[uint64]uint64)
		for i, op := range ops {
			key := uint64(op % 32)
			switch op % 3 {
			case 0:
				val := uint64(i) + 1
				fresh := m.Put(thr, key, val)
				_, had := model[key]
				if fresh == had {
					return false
				}
				model[key] = val
			case 1:
				v, ok := m.Get(thr, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 2:
				ok := m.Delete(thr, key)
				_, mok := model[key]
				if ok != mok {
					return false
				}
				delete(model, key)
			}
		}
		var n int
		thr.Atomic(func(tx *tm.Tx) { n = m.LenTx(tx) })
		return n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueMatchesModelProperty compares queue behaviour against a slice
// model under random put/take sequences.
func TestQueueMatchesModelProperty(t *testing.T) {
	sys := newSys("eager")
	thr := sys.NewThread()
	f := func(ops []bool) bool {
		q := txds.NewQueue(txds.NewArena(128, txds.QueueNodeWords))
		var model []uint64
		next := uint64(1)
		for _, isPut := range ops {
			if isPut && len(model) < 128 {
				q.Put(thr, next)
				model = append(model, next)
				next++
			} else if !isPut && len(model) > 0 {
				var got uint64
				var ok bool
				thr.Atomic(func(tx *tm.Tx) { got, ok = q.TryTakeTx(tx) })
				if !ok || got != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len(thr) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestComposedTransfer moves an element from one queue to another
// atomically, waiting on the source — the §1.2 composability argument as
// a data-structure operation.
func TestComposedTransfer(t *testing.T) {
	for _, kind := range allEngines {
		t.Run(kind, func(t *testing.T) {
			sys := newSys(kind)
			a1 := txds.NewArena(8, txds.QueueNodeWords)
			a2 := txds.NewArena(8, txds.QueueNodeWords)
			src := txds.NewQueue(a1)
			dst := txds.NewQueue(a2)
			done := make(chan struct{})
			go func() {
				thr := sys.NewThread()
				thr.Atomic(func(tx *tm.Tx) {
					v := src.TakeTx(tx) // retries inside the composition
					dst.PutTx(tx, v+1000)
				})
				close(done)
			}()
			time.Sleep(20 * time.Millisecond)
			w := sys.NewThread()
			src.Put(w, 5)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("composed transfer never completed")
			}
			if got := dst.Take(w); got != 1005 {
				t.Fatalf("transferred %d", got)
			}
			if src.Len(w) != 0 || dst.Len(w) != 0 {
				t.Fatal("queues not drained")
			}
		})
	}
}

func TestSnapshotHooks(t *testing.T) {
	sys := newSys("lazy")
	thr := sys.NewThread()

	q := txds.NewQueue(txds.NewArena(8, txds.QueueNodeWords))
	for _, v := range []uint64{10, 20, 30} {
		q.Put(thr, v)
	}
	s := txds.NewStack(txds.NewArena(8, txds.StackNodeWords))
	for _, v := range []uint64{1, 2, 3} {
		s.Push(thr, v)
	}
	m := txds.NewMap(txds.NewArena(8, txds.MapNodeWords), 4)
	m.Put(thr, 7, 70)
	m.Put(thr, 8, 80)

	thr.Atomic(func(tx *tm.Tx) {
		qs := q.SnapshotTx(tx)
		if len(qs) != 3 || qs[0] != 10 || qs[1] != 20 || qs[2] != 30 {
			t.Errorf("queue snapshot = %v, want [10 20 30]", qs)
		}
		ss := s.SnapshotTx(tx)
		if len(ss) != 3 || ss[0] != 3 || ss[1] != 2 || ss[2] != 1 {
			t.Errorf("stack snapshot = %v, want [3 2 1]", ss)
		}
		ms := m.SnapshotTx(tx)
		if len(ms) != 2 || ms[7] != 70 || ms[8] != 80 {
			t.Errorf("map snapshot = %v", ms)
		}
	})

	// The wait-address hooks must point at words the blocking paths read
	// and the unblocking ops write.
	thr.Atomic(func(tx *tm.Tx) {
		if tx.Read(q.HeadAddr()) == txds.Nil {
			t.Error("non-empty queue has Nil head")
		}
		if tx.Read(q.SizeAddr()) != 3 {
			t.Errorf("queue size word = %d", tx.Read(q.SizeAddr()))
		}
		if tx.Read(s.TopAddr()) == txds.Nil {
			t.Error("non-empty stack has Nil top")
		}
	})
}

func TestSnapshotEmptyStructures(t *testing.T) {
	sys := newSys("eager")
	thr := sys.NewThread()
	q := txds.NewQueue(txds.NewArena(4, txds.QueueNodeWords))
	s := txds.NewStack(txds.NewArena(4, txds.StackNodeWords))
	m := txds.NewMap(txds.NewArena(4, txds.MapNodeWords), 2)
	thr.Atomic(func(tx *tm.Tx) {
		if got := q.SnapshotTx(tx); len(got) != 0 {
			t.Errorf("empty queue snapshot = %v", got)
		}
		if got := s.SnapshotTx(tx); len(got) != 0 {
			t.Errorf("empty stack snapshot = %v", got)
		}
		if got := m.SnapshotTx(tx); len(got) != 0 {
			t.Errorf("empty map snapshot = %v", got)
		}
	})
}
