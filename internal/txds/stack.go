package txds

import (
	"tmsync/internal/core"
	"tmsync/internal/mem"
	"tmsync/internal/tm"
)

// Stack is a transactional LIFO stack of word values over an Arena.
// Node layout: word 0 = next index, word 1 = value.
type Stack struct {
	arena *Arena
	top   mem.Var
	size  mem.Var
}

// StackNodeWords is the arena node width a Stack requires.
const StackNodeWords = 2

// NewStack returns an empty stack drawing nodes from arena.
func NewStack(arena *Arena) *Stack {
	if arena.nodeWords != StackNodeWords {
		panic("txds: stack arena must have 2 words per node")
	}
	return &Stack{arena: arena}
}

// PushTx pushes v, waiting for arena capacity if necessary.
func (s *Stack) PushTx(tx *tm.Tx, v uint64) {
	n := s.arena.Alloc(tx)
	tx.Write(s.arena.Word(n, 1), v)
	tx.Write(s.arena.Word(n, 0), s.top.Get(tx))
	s.top.Set(tx, n)
	s.size.Set(tx, s.size.Get(tx)+1)
}

// TryPopTx pops the newest element, or reports emptiness.
func (s *Stack) TryPopTx(tx *tm.Tx) (uint64, bool) {
	t := s.top.Get(tx)
	if t == Nil {
		return 0, false
	}
	v := tx.Read(s.arena.Word(t, 1))
	s.top.Set(tx, tx.Read(s.arena.Word(t, 0)))
	s.arena.Free(tx, t)
	s.size.Set(tx, s.size.Get(tx)-1)
	return v, true
}

// PopTx pops the newest element, descheduling until one exists.
func (s *Stack) PopTx(tx *tm.Tx) uint64 {
	v, ok := s.TryPopTx(tx)
	if !ok {
		core.Retry(tx)
	}
	return v
}

// LenTx returns the current depth.
func (s *Stack) LenTx(tx *tm.Tx) int { return int(s.size.Get(tx)) }

// TopAddr returns the address of the top word. A Pop that finds the stack
// empty has read it and every Push writes it, so it is the right Await
// address for "stack is non-empty".
func (s *Stack) TopAddr() *uint64 { return s.top.Addr() }

// SnapshotTx returns the stacked values top-first (read-only state-
// snapshot hook for the differential harness).
func (s *Stack) SnapshotTx(tx *tm.Tx) []uint64 {
	var out []uint64
	for n := s.top.Get(tx); n != Nil; n = tx.Read(s.arena.Word(n, 0)) {
		out = append(out, tx.Read(s.arena.Word(n, 1)))
	}
	return out
}

// Push pushes v in its own transaction.
func (s *Stack) Push(thr *tm.Thread, v uint64) {
	thr.Atomic(func(tx *tm.Tx) { s.PushTx(tx, v) })
}

// Pop pops in its own transaction, blocking while empty.
func (s *Stack) Pop(thr *tm.Thread) uint64 {
	var v uint64
	thr.Atomic(func(tx *tm.Tx) { v = s.PopTx(tx) })
	return v
}
