// Package eager implements the undo-log software TM of Appendix A
// (Algorithms 8–11): word-based, encounter-time locking, in-place updates,
// a TL2-style logical clock, per-read consistency checks, commit-time read
// validation, and post-commit quiescence for privatization safety. It
// corresponds to the GCC "ml-wt" configuration of the evaluation (a
// privatization-safe variant of TinySTM with undo logs).
package eager

import (
	"sync/atomic"

	"tmsync/internal/locktable"
	"tmsync/internal/tm"
)

// Engine is the eager STM back end. Construct with New.
type Engine struct {
	sys *tm.System
}

// New returns the engine factory expected by tm.NewSystem.
func New(sys *tm.System) tm.Engine { return &Engine{sys: sys} }

// Name implements tm.Engine.
func (e *Engine) Name() string { return "eager" }

// Begin samples the clock and publishes the attempt for quiescence
// (Algorithm 9, TxBegin), waiting out any irrevocable section.
func (e *Engine) Begin(tx *tm.Tx) {
	tx.Mode = tm.ModeSTM
	tx.StampTableView()
	tx.Start = tx.Thr.PublishStartSerialAware(tx)
}

// Read implements Algorithm 10's TxRead: atomically read the lock object,
// the location, then the lock object again, and succeed only when the
// caller holds the lock or the read is consistent with the start time.
// When the transaction is re-executing for Retry it also logs the
// committed address/value pair to the waitset (Algorithm 5).
func (e *Engine) Read(tx *tm.Tx, addr *uint64) uint64 {
	idx := e.sys.Table.IndexOf(addr)
	w1 := e.sys.Table.Get(idx)
	val := atomic.LoadUint64(addr)
	w2 := e.sys.Table.Get(idx)

	if locktable.Locked(w1) && locktable.Owner(w1) == tx.Thr.ID {
		if tx.IsRetry {
			// The in-memory value may be this transaction's own
			// speculative write; the waitset needs the committed value,
			// which the oldest undo-log entry preserves (Algorithm 5).
			if old, ok := tx.OldValue(addr); ok {
				tx.LogWait(addr, old)
			} else {
				tx.LogWait(addr, val)
			}
		}
		return val
	}
	if w1 == w2 && !locktable.Locked(w1) {
		ver := locktable.Version(w1)
		if ver <= tx.Start {
			tx.Reads = append(tx.Reads, tm.ReadEntry{Addr: addr, Orec: idx, Ver: ver})
			if tx.IsRetry {
				tx.LogWait(addr, val)
			}
			return val
		}
		// Too new: under a deferred clock the shared word may still be
		// behind this version, so record the observation before the
		// extension (or the retry after abort) resamples the clock.
		e.sys.Clock.NoteStale(ver)
		// After a successful extension the consistent sample (val, ver)
		// taken above is still current iff the extended start covers ver
		// and the orec is unchanged. The ver <= tx.Start recheck is
		// load-bearing: under global/pof a rollback can republish a
		// version the clock has not reached yet, so the extended start
		// may still predate ver — accepting the sample then would record
		// a read the snapshot does not cover. The word recheck is sound
		// because orec versions strictly increase across lock cycles
		// (clock.Source invariant), so an equal word means no
		// intervening commit; checking it (after tryExtend sampled the
		// clock) is cheaper than re-reading the location.
		if e.sys.Cfg.TimestampExtension && e.tryExtend(tx) && ver <= tx.Start && e.sys.Table.Get(idx) == w1 {
			tx.Reads = append(tx.Reads, tm.ReadEntry{Addr: addr, Orec: idx, Ver: ver})
			if tx.IsRetry {
				tx.LogWait(addr, val)
			}
			return val
		}
	}
	tx.Abort(tm.AbortConflict)
	panic("unreachable")
}

// tryExtend implements timestamp extension: if every prior read's orec
// still carries the version observed at read time, the transaction's
// snapshot is valid at the current clock, so its start time may advance
// instead of aborting on a too-new read.
//
//tm:extend
func (e *Engine) tryExtend(tx *tm.Tx) bool {
	now := e.sys.Clock.Now()
	for i := range tx.Reads {
		w := e.sys.Table.Get(tx.Reads[i].Orec)
		if locktable.Locked(w) && locktable.Owner(w) != tx.Thr.ID {
			return false
		}
		if locktable.Version(w) != tx.Reads[i].Ver {
			return false
		}
	}
	tx.Start = now
	tx.Thr.ActiveStart.Store(now + 1)
	return true
}

// Write implements Algorithm 10's TxWrite: acquire the covering orec with
// CAS (keeping its version for abort), record the old value in the undo
// log, and update memory in place.
func (e *Engine) Write(tx *tm.Tx, addr *uint64, val uint64) {
	idx := e.sys.Table.IndexOf(addr)
	w := e.sys.Table.Get(idx)

	if locktable.Locked(w) && locktable.Owner(w) == tx.Thr.ID {
		tx.Undo = append(tx.Undo, tm.UndoEntry{Addr: addr, Old: atomic.LoadUint64(addr)})
		atomic.StoreUint64(addr, val)
		return
	}
	if !locktable.Locked(w) {
		ver := locktable.Version(w)
		ok := ver <= tx.Start
		if !ok {
			e.sys.Clock.NoteStale(ver)
			// As in Read, the post-extension ver <= tx.Start recheck is
			// required: without it a rollback-republished version ahead
			// of the clock could be locked and committed by a snapshot
			// that never covered it.
			// The orec-word recheck is subsumed by the CAS below (it
			// only succeeds against the sampled word w), but stating it
			// here keeps the extension-acceptance shape uniform across
			// engines and lets extrecheck verify it structurally.
			ok = e.sys.Cfg.TimestampExtension && e.tryExtend(tx) && ver <= tx.Start && e.sys.Table.Get(idx) == w
		}
		//tm:lock-acquire
		if ok && e.sys.Table.CAS(idx, w, locktable.LockedBy(tx.Thr.ID, ver)) {
			if ver > tx.MaxLockVer {
				tx.MaxLockVer = ver
			}
			tx.Locks = append(tx.Locks, idx)
			tx.NoteWriteStripe(idx)
			tx.Undo = append(tx.Undo, tm.UndoEntry{Addr: addr, Old: atomic.LoadUint64(addr)})
			atomic.StoreUint64(addr, val)
			return
		}
	}
	tx.Abort(tm.AbortConflict)
}

// Commit implements Algorithm 9's TxCommit: read-only transactions commit
// for free; writers take a commit timestamp, validate their read set
// (unless the clock proves exclusivity — the TL2 end == start+1 fast
// path), release locks at the new version, and quiesce for privatization
// safety.
func (e *Engine) Commit(tx *tm.Tx) {
	if len(tx.Locks) == 0 {
		return
	}
	end, exclusive := e.sys.Clock.Commit(tx.Start, tx.MaxLockVer)
	if !exclusive && !e.validateReads(tx) {
		tx.Abort(tm.AbortConflict)
	}
	// An online stripe resize since Begin invalidates the attempt's
	// write-stripe set; abort and re-execute against the new geometry.
	tx.RevalidateTableGen()
	tx.WriteOrecs = append(tx.WriteOrecs, tx.Locks...)
	for _, idx := range tx.Locks {
		e.sys.Table.Set(idx, locktable.UnlockedAt(end))
	}
	tx.Locks = tx.Locks[:0]
	tx.Undo = tx.Undo[:0]
	if e.sys.Cfg.Quiesce {
		// The transaction is logically committed: retire its activity
		// before quiescing, or two committers would wait on each other.
		tx.Thr.ActiveStart.Store(0)
		e.sys.Quiesce(tx.Thr, end)
	}
}

func (e *Engine) validateReads(tx *tm.Tx) bool {
	for i := range tx.Reads {
		w := e.sys.Table.Get(tx.Reads[i].Orec)
		if locktable.Locked(w) {
			if locktable.Owner(w) != tx.Thr.ID {
				return false
			}
		} else if v := locktable.Version(w); v > tx.Start {
			e.sys.Clock.NoteStale(v)
			return false
		}
	}
	return true
}

// Validate implements tm.Engine.
func (e *Engine) Validate(tx *tm.Tx) bool { return e.validateReads(tx) }

// Rollback implements Algorithm 11's TxAbort: undo writes in reverse,
// bump the clock once, and release locks with an incremented version so
// concurrent TxReads notice. The bump precedes the release so that under
// global/pof the republished versions are already covered by the clock
// when they become visible — a version ahead of the clock could be
// handed out again by a concurrent Commit, breaking the strict per-orec
// version increase that timestamp extension relies on. It is safe to
// call when the undo log has already been applied (AwaitSnapshot) and is
// idempotent across repeated calls.
//
//tm:rollback
func (e *Engine) Rollback(tx *tm.Tx) {
	for i := len(tx.Undo) - 1; i >= 0; i-- {
		atomic.StoreUint64(tx.Undo[i].Addr, tx.Undo[i].Old)
	}
	tx.Undo = tx.Undo[:0]
	if len(tx.Locks) == 0 {
		return
	}
	e.sys.Clock.Bump()
	for _, idx := range tx.Locks {
		w := e.sys.Table.Get(idx)
		e.sys.Table.Set(idx, locktable.UnlockedAt(locktable.Version(w)+1))
	}
	tx.Locks = tx.Locks[:0]
}

// AwaitSnapshot implements the Await re-read step (Algorithm 6): undo the
// transaction's writes while still holding their locks (releasing would be
// incorrect for read-for-write accesses), then for each address perform a
// read that is consistent with the whole transaction and log the observed
// value to the waitset. The caller subsequently deschedules, at which point
// Rollback releases the retained locks.
func (e *Engine) AwaitSnapshot(tx *tm.Tx, addrs []*uint64) {
	for i := len(tx.Undo) - 1; i >= 0; i-- {
		atomic.StoreUint64(tx.Undo[i].Addr, tx.Undo[i].Old)
	}
	tx.Undo = tx.Undo[:0]
	for _, addr := range addrs {
		idx := e.sys.Table.IndexOf(addr)
		w1 := e.sys.Table.Get(idx)
		val := atomic.LoadUint64(addr)
		if locktable.Locked(w1) && locktable.Owner(w1) == tx.Thr.ID {
			tx.LogWait(addr, val)
			continue
		}
		w2 := e.sys.Table.Get(idx)
		if w1 == w2 && !locktable.Locked(w1) {
			if v := locktable.Version(w1); v <= tx.Start {
				tx.LogWait(addr, val)
				continue
			} else {
				// Keep a deferred clock moving so the re-executed
				// attempt starts late enough to read this address.
				e.sys.Clock.NoteStale(v)
			}
		}
		tx.Abort(tm.AbortConflict)
	}
}
