package eager_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"tmsync/internal/stm/eager"
	"tmsync/internal/tm"
)

// TestTimestampExtensionAvoidsAbort constructs the exact scenario Appendix
// A calls conservative: a transaction starts, another commits a disjoint
// location, and the first transaction then reads it. Without extension the
// too-new version aborts; with extension the snapshot revalidates and the
// read proceeds on the first attempt.
func TestTimestampExtensionAvoidsAbort(t *testing.T) {
	run := func(extension bool) int {
		// Quiesce off: the helper writer commits on the same goroutine as
		// the in-flight transaction, which quiescence would wait for.
		sys := tm.NewSystem(tm.Config{TimestampExtension: extension}, eager.New)
		t1 := sys.NewThread()
		t2 := sys.NewThread()
		var a, b uint64
		attempts := 0
		step := 0
		t1.Atomic(func(tx *tm.Tx) {
			attempts++
			_ = tx.Read(&a)
			if step == 0 {
				step = 1
				// Concurrent writer commits b, advancing the clock past
				// this transaction's start.
				t2.Atomic(func(tx2 *tm.Tx) { tx2.Write(&b, 7) })
			}
			_ = tx.Read(&b) // too-new without extension
		})
		return attempts
	}
	if got := run(false); got < 2 {
		t.Errorf("without extension: %d attempts, expected an abort (≥2)", got)
	}
	if got := run(true); got != 1 {
		t.Errorf("with extension: %d attempts, want 1", got)
	}
}

// TestTimestampExtensionDetectsRealConflict verifies extension never masks
// a genuine conflict: if the concurrent commit overwrote something the
// transaction already read, extension must fail and the transaction abort.
func TestTimestampExtensionDetectsRealConflict(t *testing.T) {
	sys := tm.NewSystem(tm.Config{TimestampExtension: true}, eager.New)
	t1 := sys.NewThread()
	t2 := sys.NewThread()
	var a, b uint64
	attempts := 0
	fired := false
	var seenA, seenB uint64
	t1.Atomic(func(tx *tm.Tx) {
		attempts++
		seenA = tx.Read(&a)
		if !fired {
			fired = true
			t2.Atomic(func(tx2 *tm.Tx) {
				tx2.Write(&a, 1) // invalidates t1's read of a
				tx2.Write(&b, 1)
			})
		}
		seenB = tx.Read(&b)
	})
	if attempts < 2 {
		t.Fatalf("attempts = %d, want ≥2 (extension must not mask the conflict)", attempts)
	}
	if seenA != 1 || seenB != 1 {
		t.Fatalf("final attempt read a=%d b=%d, want the committed 1,1", seenA, seenB)
	}
}

// TestTimestampExtensionConcurrent stress-checks serializability with
// extension enabled: the x==y invariant must hold inside every reader.
func TestTimestampExtensionConcurrent(t *testing.T) {
	sys := tm.NewSystem(tm.Config{Quiesce: true, TimestampExtension: true}, eager.New)
	var x, y uint64
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < 3000; i++ {
				thr.Atomic(func(tx *tm.Tx) {
					v := tx.Read(&x) + 1
					tx.Write(&x, v)
					tx.Write(&y, v)
				})
			}
		}()
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < 3000; i++ {
				thr.Atomic(func(tx *tm.Tx) {
					a := tx.Read(&x)
					b := tx.Read(&y)
					if a != b {
						bad.Add(1)
					}
				})
			}
		}()
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("readers saw %d torn states with extension enabled", n)
	}
	if x != y || x != 9000 {
		t.Fatalf("final x=%d y=%d", x, y)
	}
}
