package lazy_test

import (
	"testing"

	"tmsync/internal/locktable"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

// TestWritesInvisibleUntilCommit is the defining lazy-STM property:
// another thread reading mid-transaction sees only committed state.
func TestWritesInvisibleUntilCommit(t *testing.T) {
	sys := tm.NewSystem(tm.Config{}, lazy.New)
	t1 := sys.NewThread()
	t2 := sys.NewThread()
	var x uint64 = 1
	var observed uint64
	t1.Atomic(func(tx *tm.Tx) {
		tx.Write(&x, 99)
		// Direct memory must still hold the committed value; a concurrent
		// reader commits against the old state.
		t2.Atomic(func(tx2 *tm.Tx) { observed = tx2.Read(&x) })
		if observed != 1 {
			t.Errorf("concurrent reader saw buffered write: %d", observed)
		}
	})
	if x != 99 {
		t.Fatalf("x = %d after commit", x)
	}
}

// TestCommitLocksReleasedOnAbort checks that a commit that fails
// validation releases all acquired orecs so the system keeps running.
func TestCommitLocksReleasedOnAbort(t *testing.T) {
	sys := tm.NewSystem(tm.Config{}, lazy.New)
	t1 := sys.NewThread()
	t2 := sys.NewThread()
	var a, b uint64
	attempts := 0
	t1.Atomic(func(tx *tm.Tx) {
		attempts++
		_ = tx.Read(&a)
		tx.Write(&b, 5)
		if attempts == 1 {
			// Invalidate t1's read so its commit must abort after having
			// acquired b's orec.
			t2.Atomic(func(tx2 *tm.Tx) { tx2.Write(&a, 1) })
		}
	})
	if attempts < 2 {
		t.Fatalf("attempts = %d, want ≥ 2", attempts)
	}
	// Every orec must be unlocked now.
	idx := sys.Table.IndexOf(&b)
	if locktable.Locked(sys.Table.Get(idx)) {
		t.Fatal("orec leaked after commit-time abort")
	}
	if b != 5 {
		t.Fatalf("b = %d", b)
	}
}

// TestReadOwnWriteThroughRedo checks read-after-write served from the redo
// log, including after overwrites.
func TestReadOwnWriteThroughRedo(t *testing.T) {
	sys := tm.NewSystem(tm.Config{}, lazy.New)
	thr := sys.NewThread()
	var x uint64 = 3
	thr.Atomic(func(tx *tm.Tx) {
		tx.Write(&x, 10)
		tx.Write(&x, 20)
		if got := tx.Read(&x); got != 20 {
			t.Errorf("read-own-write = %d", got)
		}
		if x != 3 {
			t.Errorf("memory mutated before commit: %d", x)
		}
	})
	if x != 20 {
		t.Fatalf("x = %d", x)
	}
}

// TestSameOrecMultipleWrites exercises commit when several written
// addresses share one orec (the holds() fast path).
func TestSameOrecMultipleWrites(t *testing.T) {
	sys := tm.NewSystem(tm.Config{TableSize: 4}, lazy.New) // force collisions
	thr := sys.NewThread()
	words := make([]uint64, 32)
	thr.Atomic(func(tx *tm.Tx) {
		for i := range words {
			tx.Write(&words[i], uint64(i)+1)
		}
	})
	for i := range words {
		if words[i] != uint64(i)+1 {
			t.Fatalf("words[%d] = %d", i, words[i])
		}
	}
	for idx := 0; idx < sys.Table.Len(); idx++ {
		if locktable.Locked(sys.Table.Get(uint32(idx))) {
			t.Fatalf("orec %d left locked", idx)
		}
	}
}
