// Package lazy implements a redo-log software TM in the style of TL2:
// writes are buffered until commit, locks are acquired at commit time, and
// the read set is validated against a global logical clock. It corresponds
// to the "Lazy STM" configuration of the evaluation (a privatization-safe
// TL2 variant).
package lazy

import (
	"sync/atomic"

	"tmsync/internal/locktable"
	"tmsync/internal/tm"
)

// Engine is the lazy STM back end. Construct with New.
type Engine struct {
	sys *tm.System
}

// New returns the engine factory expected by tm.NewSystem.
func New(sys *tm.System) tm.Engine { return &Engine{sys: sys} }

// Name implements tm.Engine.
func (e *Engine) Name() string { return "lazy" }

// Begin samples the clock and publishes the attempt for quiescence,
// waiting out any irrevocable section.
func (e *Engine) Begin(tx *tm.Tx) {
	tx.Mode = tm.ModeSTM
	tx.StampTableView()
	tx.Start = tx.Thr.PublishStartSerialAware(tx)
}

// sampleRead performs a consistent read of committed memory: orec, value,
// orec again, unlocked and no newer than the transaction's start. A
// too-new version first tries timestamp extension (when enabled and the
// caller permits it) before aborting: under the deferred clock every
// fresh version is "too new" for a start sampled from a word that never
// moved, and extension is what keeps that from costing an abort per
// dependent read.
func (e *Engine) sampleRead(tx *tm.Tx, addr *uint64, extend bool) (uint64, uint32, uint64) {
	idx := e.sys.Table.IndexOf(addr)
	w1 := e.sys.Table.Get(idx)
	val := atomic.LoadUint64(addr)
	w2 := e.sys.Table.Get(idx)
	if w1 == w2 && !locktable.Locked(w1) {
		v := locktable.Version(w1)
		if v <= tx.Start {
			return val, idx, v
		}
		// Keep a deferred clock moving so the extension (or the
		// re-executed attempt) starts late enough to read this version.
		e.sys.Clock.NoteStale(v)
		// After a successful extension the consistent sample (val, v) is
		// still current iff the extended start covers v and the orec is
		// unchanged. The v <= tx.Start recheck is load-bearing: under
		// global/pof a rollback can republish a version the clock has
		// not reached yet, so the extended start may still predate v.
		// The word recheck is sound because versions strictly increase
		// across lock cycles (clock.Source invariant), so an equal word
		// means no intervening commit; checking it (after tryExtend
		// sampled the clock) is cheaper than re-sampling the location.
		if extend && e.sys.Cfg.TimestampExtension && e.tryExtend(tx) && v <= tx.Start && e.sys.Table.Get(idx) == w1 {
			return val, idx, v
		}
	}
	tx.Abort(tm.AbortConflict)
	panic("unreachable")
}

// tryExtend implements timestamp extension for the redo-log TM: if every
// prior read's orec still carries the exact version observed at read
// time, the buffered values are all current at the present clock, so the
// start time may advance instead of aborting on a too-new read. The
// exact-match comparison is what makes this sound under shared and
// deferred timestamps: a version that merely stayed <= the new start
// could still have been republished by an intervening commit.
//
//tm:extend
func (e *Engine) tryExtend(tx *tm.Tx) bool {
	now := e.sys.Clock.Now()
	for i := range tx.Reads {
		w := e.sys.Table.Get(tx.Reads[i].Orec)
		if locktable.Locked(w) && locktable.Owner(w) != tx.Thr.ID {
			return false
		}
		if locktable.Version(w) != tx.Reads[i].Ver {
			return false
		}
	}
	tx.Start = now
	tx.Thr.ActiveStart.Store(now + 1)
	return true
}

// Read returns the transaction's own buffered write if one exists,
// otherwise performs a validated read of committed memory. When
// re-executing for Retry it logs the committed value to the waitset even
// for read-after-write accesses, so that the waitset never contains
// speculative (out-of-thin-air) values.
func (e *Engine) Read(tx *tm.Tx, addr *uint64) uint64 {
	if tx.IsRetry {
		val, idx, ver := e.sampleRead(tx, addr, true)
		tx.Reads = append(tx.Reads, tm.ReadEntry{Addr: addr, Orec: idx, Ver: ver})
		tx.LogWait(addr, val)
		if buf, ok := tx.Redo.Get(addr); ok {
			return buf
		}
		return val
	}
	if buf, ok := tx.Redo.Get(addr); ok {
		return buf
	}
	val, idx, ver := e.sampleRead(tx, addr, true)
	tx.Reads = append(tx.Reads, tm.ReadEntry{Addr: addr, Orec: idx, Ver: ver})
	return val
}

// Write buffers the store in the redo log.
func (e *Engine) Write(tx *tm.Tx, addr *uint64, val uint64) {
	tx.Redo.Put(addr, val, e.sys.Table.IndexOf(addr))
}

// Commit implements TL2-style two-phase commit: acquire the write set's
// orecs with CAS, take a commit timestamp, validate the read set (unless
// the clock proves exclusivity — the start+1 fast path), write back the
// redo log, and release the locks at the commit time. Read-only
// transactions commit for free.
func (e *Engine) Commit(tx *tm.Tx) {
	if tx.Redo.Len() == 0 {
		return
	}
	for i := range tx.Redo.Entries {
		idx := tx.Redo.Entries[i].Orec
		if e.holds(tx, idx) {
			continue
		}
		w := e.sys.Table.Get(idx)
		//tm:lock-acquire
		if locktable.Locked(w) || !e.sys.Table.CAS(idx, w, locktable.LockedBy(tx.Thr.ID, locktable.Version(w))) {
			tx.Abort(tm.AbortConflict)
		}
		if v := locktable.Version(w); v > tx.MaxLockVer {
			tx.MaxLockVer = v
		}
		tx.Locks = append(tx.Locks, idx)
		tx.NoteWriteStripe(idx)
	}
	end, exclusive := e.sys.Clock.Commit(tx.Start, tx.MaxLockVer)
	if !exclusive && !e.validateReads(tx) {
		tx.Abort(tm.AbortConflict)
	}
	// An online stripe resize since Begin invalidates the attempt's
	// write-stripe set; abort and re-execute against the new geometry.
	tx.RevalidateTableGen()
	for i := range tx.Redo.Entries {
		atomic.StoreUint64(tx.Redo.Entries[i].Addr, tx.Redo.Entries[i].Val)
	}
	tx.WriteOrecs = append(tx.WriteOrecs, tx.Locks...)
	for _, idx := range tx.Locks {
		e.sys.Table.Set(idx, locktable.UnlockedAt(end))
	}
	tx.Locks = tx.Locks[:0]
	if e.sys.Cfg.Quiesce {
		// The transaction is logically committed: retire its activity
		// before quiescing, or two committers would wait on each other.
		tx.Thr.ActiveStart.Store(0)
		e.sys.Quiesce(tx.Thr, end)
	}
}

func (e *Engine) holds(tx *tm.Tx, idx uint32) bool {
	for _, l := range tx.Locks {
		if l == idx {
			return true
		}
	}
	return false
}

// validateReads checks that every read is still unlocked at a version no
// newer than the start time, or locked by this transaction with its
// pre-acquisition version no newer than the start time.
func (e *Engine) validateReads(tx *tm.Tx) bool {
	for i := range tx.Reads {
		w := e.sys.Table.Get(tx.Reads[i].Orec)
		if locktable.Locked(w) {
			if locktable.Owner(w) != tx.Thr.ID || locktable.Version(w) > tx.Start {
				return false
			}
		} else if v := locktable.Version(w); v > tx.Start {
			e.sys.Clock.NoteStale(v)
			return false
		}
	}
	return true
}

// Validate implements tm.Engine.
func (e *Engine) Validate(tx *tm.Tx) bool { return e.validateReads(tx) }

// Rollback discards the redo log (memory was never touched before
// validation succeeded) and releases any commit-time locks with a bumped
// version so concurrent readers notice the ownership change. The clock
// bump precedes the release so that under global/pof the republished
// versions are already covered by the clock when they become visible —
// a version ahead of the clock could be handed out again by a concurrent
// Commit, breaking the strict per-orec version increase that timestamp
// extension relies on.
//
//tm:rollback
func (e *Engine) Rollback(tx *tm.Tx) {
	if len(tx.Locks) == 0 {
		return
	}
	e.sys.Clock.Bump()
	for _, idx := range tx.Locks {
		w := e.sys.Table.Get(idx)
		e.sys.Table.Set(idx, locktable.UnlockedAt(locktable.Version(w)+1))
	}
	tx.Locks = tx.Locks[:0]
}

// AwaitSnapshot implements the Await re-read (Algorithm 6) for a lazy TM:
// speculative writes live only in the redo log, so the committed value of
// each address is read directly from memory — validated against the
// transaction's start time — and logged to the waitset.
func (e *Engine) AwaitSnapshot(tx *tm.Tx, addrs []*uint64) {
	for _, addr := range addrs {
		// No extension here: the attempt is about to deschedule, and the
		// waitset must stay consistent with the start the reads used.
		val, _, _ := e.sampleRead(tx, addr, false)
		tx.LogWait(addr, val)
	}
}
