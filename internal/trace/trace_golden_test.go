package trace_test

// Golden-trace regression fixtures. Each file under testdata/ distills
// one historical wakeup race from internal/core's history into a
// committed, replayable artifact: the trace pins the program shape and
// the knob configuration the race shipped under, and this test replays
// every fixture through all four engines × every applicable mechanism,
// asserting the oracle holds. A regression of any of those races shows up
// here as a wedge (lost wakeup) or an oracle diff, with the fixture file
// itself as the reproducer. The digest pins detect silent drift of the
// fixtures or of the trace→scenario reconstruction.

import (
	"os"
	"path/filepath"
	"testing"

	"tmsync/internal/harness"
	"tmsync/internal/trace"
)

var goldenTraces = []struct {
	file   string
	digest string
	knobs  string
}{
	{file: "stale_token.trace", digest: "6cacdc9e810837ce", knobs: ""},
	{file: "oncommit_clobber.trace", digest: "44f7a954d559aa81", knobs: "coalesce=2"},
	{file: "idle_strand.trace", digest: "9e439c2183bfa843", knobs: "coalesce=8 max-delay=5ms"},
}

func TestGoldenTracesReplayOracleIdentical(t *testing.T) {
	for _, g := range goldenTraces {
		g := g
		t.Run(g.file, func(t *testing.T) {
			t.Parallel()
			f, err := os.Open(filepath.Join("testdata", g.file))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, err := trace.Decode(f)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			s, k, err := harness.ReplayTrace(tr)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if got := harness.EncodeKnobs(k); got != g.knobs {
				t.Errorf("knob stamp %q, want %q", got, g.knobs)
			}
			if s.Digest != g.digest {
				t.Errorf("digest %s, golden %s — fixture or reconstruction drift; if intentional, update the golden and explain why", s.Digest, g.digest)
			}
			for _, res := range harness.RunScenarioKnobs(s, harness.Engines, "", k) {
				if res.Failed() {
					t.Errorf("%s", res.String())
				}
			}
		})
	}
}
