package trace_test

// Decoder robustness. Replay makes the decoder a parser of committed (and
// potentially hand-edited) artifacts, so it must hold two properties:
// malformed input of any shape errors — with a positioned DecodeError,
// never a panic — and input it does accept is canonical: encode→decode→
// encode is a fixed point. The table pins the specific error classes the
// format promises to catch (truncation, version skew, interleaving-
// invalid event orders); the fuzz target generalizes both properties to
// arbitrary bytes, with the seed corpus (plus testdata/fuzz/FuzzDecode)
// doubling as a regression suite under plain `go test`.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tmsync/internal/harness"
	"tmsync/internal/trace"
)

const validTrace = `tmtrace 1
source hand
seed 7
knobs coalesce=2
replay -threads 2

# comments and blank lines are fine anywhere
world threads=2 counters=2 bufcap=0 queue=1 stack=0 map=1 mapkeys=6 qcap=4 scap=0 mcap=8
ev 1 block
ev 0 begin
ev 0 write q 1
ev 0 commit
ev 1 wake
ev 1 begin
ev 1 read q
ev 1 commit
ev 0 begin
ev 0 write c 0 + 3
ev 0 commit
ev 1 begin
ev 1 write m 4 99
ev 1 commit
ev 1 begin
ev 1 del m 4
ev 1 commit
ev 0 begin
ev 0 read c 0
ev 0 read c 1
ev 0 write c 1 + 2
ev 0 commit
ev 0 abort conflict
ev 0 detach
ev 1 detach
end 25
`

var decodeErrorCases = []struct {
	name  string
	input string
	want  string // substring of the expected error
}{
	{"empty", "", "missing tmtrace header"},
	{"bad first line", "hello\n", "first line must be"},
	{"version mismatch", "tmtrace 2\nend 0\n", "unsupported trace version 2"},
	{"version junk", "tmtrace one\nend 0\n", "malformed version"},
	{"missing end", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\n", "truncated: missing"},
	{"end count mismatch", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 write c 0 + 1\nev 0 commit\nend 7\n", "trailer says 7 events, log has 3"},
	{"event before world", "tmtrace 1\nev 0 begin\n", "event before the world declaration"},
	{"world missing field", "tmtrace 1\nworld threads=1 counters=1\n", "world line needs exactly"},
	{"world bad thread count", "tmtrace 1\nworld threads=65 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\n", "threads 65 out of range"},
	{"duplicate header", "tmtrace 1\nseed 1\nseed 2\n", "duplicate header line"},
	{"header after event", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 write c 0 + 1\nev 0 commit\nseed 3\nend 3\n", "after the first event"},
	{"nested begin", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 begin\n", "nested begin"},
	{"commit without begin", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 commit\n", "commit without begin"},
	{"empty transaction", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 commit\n", "empty transaction"},
	{"read outside txn", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=1 stack=0 map=0 mapkeys=0 qcap=2 scap=0 mcap=0\nev 0 read q\n", "read outside a transaction"},
	{"runtime event inside txn", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 block\n", "runtime event inside a transaction"},
	{"open txn at end", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 write c 0 + 1\nend 2\n", "ends inside an open transaction"},
	{"event after detach", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 detach\nev 0 begin\n", "event after thread 0 detached"},
	{"trailing content", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nend 0\nev 0 begin\n", "trailing content after"},
	{"unknown directive", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nbogus line here\n", "unknown directive"},
	{"unknown event kind", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 explode\n", "unknown event kind"},
	{"thread out of range", "tmtrace 1\nworld threads=2 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 2 begin\n", "out of range [0, 2)"},
	// Indices >= 2^63 wrap negative if converted to int before the range
	// check, sailing past it into a panicking slice index — the checks must
	// compare in uint64 space.
	{"thread index int64 overflow", "tmtrace 1\nworld threads=2 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 9223372036854775808 begin\n", "out of range [0, 2)"},
	{"counter index out of range", "tmtrace 1\nworld threads=1 counters=2 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 write c 2 + 1\n", "counter index"},
	{"counter write index int64 overflow", "tmtrace 1\nworld threads=1 counters=4 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 write c 9223372036854775808 + 1\n", "counter index"},
	{"counter read index int64 overflow", "tmtrace 1\nworld threads=1 counters=4 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 read c 9223372036854775808\n", "counter index"},
	{"zero counter delta", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 write c 0 + 0\n", "must be a positive integer"},
	{"queue event without queue", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 write q 1\n", "the world has no queue"},
	{"map event without map", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 begin\nev 0 write m 1 2\n", "the world has no map"},
	{"bad abort reason", "tmtrace 1\nworld threads=1 counters=1 bufcap=0 queue=0 stack=0 map=0 mapkeys=0 qcap=0 scap=0 mcap=0\nev 0 abort whatever\n", "abort takes one reason"},
}

func TestDecodeErrors(t *testing.T) {
	for _, c := range decodeErrorCases {
		t.Run(c.name, func(t *testing.T) {
			_, err := trace.Decode(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("decoded without error, want %q", c.want)
			}
			var de *trace.DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v is not a *DecodeError", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestDecodeValidTrace(t *testing.T) {
	tr, err := trace.Decode(strings.NewReader(validTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Source != "hand" || tr.Seed != 7 || tr.Knobs != "coalesce=2" || tr.Replay != "-threads 2" {
		t.Errorf("headers decoded wrong: %+v", tr)
	}
	if len(tr.Events) != 25 {
		t.Fatalf("got %d events, want 25", len(tr.Events))
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-decode of canonical encoding: %v\n%s", err, buf.String())
	}
	var buf2 bytes.Buffer
	if err := trace.Encode(&buf2, tr2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("encode→decode→encode is not a fixed point")
	}
	if _, _, err := harness.ReplayTrace(tr); err != nil {
		t.Errorf("valid hand trace failed scenario reconstruction: %v", err)
	}
}

// FuzzDecode: arbitrary bytes must either fail with a *DecodeError or
// decode into a trace whose canonical encoding round-trips; scenario
// reconstruction on accepted traces may reject semantically (that layer
// has its own cross-event rules) but must never panic. Seeds below plus
// testdata/fuzz/FuzzDecode run as regression cases under plain `go test`.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(validTrace))
	for _, c := range decodeErrorCases {
		f.Add([]byte(c.input))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			var de *trace.DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode error %v is not a *DecodeError", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := trace.Encode(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		tr2, err := trace.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding failed to re-decode: %v\n%s", err, buf.String())
		}
		var buf2 bytes.Buffer
		if err := trace.Encode(&buf2, tr2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("encode→decode→encode is not a fixed point")
		}
		_, _, _ = harness.ReplayTrace(tr) // must not panic; errors are fine
	})
}
