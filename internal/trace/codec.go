package trace

// The wire codec. Traces are line-oriented text so committed fixtures
// stay reviewable: a versioned header, one event per line, and an
// `end <count>` trailer whose absence (or wrong count) flags truncation.
// Decode is strict — unknown kinds, malformed operands, out-of-range
// indices, and order-invalid event sequences (a read outside a
// transaction, a nested begin, anything after a detach) are errors, never
// panics and never events that would replay silently as something else.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Decode limits. A trace is a test artifact, not a bulk format; bounding
// the geometry and event count keeps a hostile or fuzzer-built input from
// turning the decoder (or a later replay) into a resource sink.
const (
	MaxThreads  = 64
	MaxCounters = 4096
	MaxEvents   = 1 << 20
	maxCap      = 1 << 20
)

// DecodeError describes why an input is not a valid trace.
type DecodeError struct {
	Line int // 1-based input line, 0 when the problem is global (e.g. truncation)
	Msg  string
}

func (e *DecodeError) Error() string {
	if e.Line == 0 {
		return "trace: " + e.Msg
	}
	return fmt.Sprintf("trace: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &DecodeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Encode writes tr in canonical text form.
func Encode(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "tmtrace %d\n", tr.Version)
	if tr.Source != "" {
		fmt.Fprintf(bw, "source %s\n", tr.Source)
	}
	if tr.Seed != 0 {
		fmt.Fprintf(bw, "seed %d\n", tr.Seed)
	}
	if tr.Knobs != "" {
		fmt.Fprintf(bw, "knobs %s\n", tr.Knobs)
	}
	if tr.Replay != "" {
		fmt.Fprintf(bw, "replay %s\n", tr.Replay)
	}
	wd := tr.World
	fmt.Fprintf(bw, "world threads=%d counters=%d bufcap=%d queue=%d stack=%d map=%d mapkeys=%d qcap=%d scap=%d mcap=%d\n",
		wd.Threads, wd.Counters, wd.BufCap, b2i(wd.HasQueue), b2i(wd.HasStack), b2i(wd.HasMap), wd.MapKeys, wd.QueueCap, wd.StackCap, wd.MapCap)
	for i := range tr.Events {
		ev := &tr.Events[i]
		line, err := formatEvent(ev)
		if err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		fmt.Fprintln(bw, line)
	}
	fmt.Fprintf(bw, "end %d\n", len(tr.Events))
	return bw.Flush()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func formatEvent(ev *Event) (string, error) {
	p := fmt.Sprintf("ev %d %s", ev.Thread, ev.Kind)
	switch ev.Kind {
	case Begin, Commit, Block, Wake, Detach:
		return p, nil
	case Abort:
		return p + " " + ev.Arg, nil
	case Read:
		if ev.Obj == Counter {
			return fmt.Sprintf("%s c %d", p, ev.K), nil
		}
		return p + " " + ev.Obj.String(), nil
	case Write:
		switch ev.Obj {
		case Counter:
			sign := "+"
			if ev.Neg {
				sign = "-"
			}
			return fmt.Sprintf("%s c %d %s %d", p, ev.K, sign, ev.V), nil
		case Buf, Queue, Stack:
			return fmt.Sprintf("%s %s %d", p, ev.Obj, ev.V), nil
		case Map:
			return fmt.Sprintf("%s m %d %d", p, ev.K, ev.V), nil
		}
	case Del:
		if ev.Obj == Map {
			return fmt.Sprintf("%s m %d", p, ev.K), nil
		}
	}
	return "", fmt.Errorf("unencodable event %s/%s", ev.Kind, ev.Obj)
}

// Decode parses one trace from r, validating syntax, geometry bounds, and
// per-thread event order. It returns a *DecodeError (wrapped positions
// included) for any malformed input and never panics.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<16)
	tr := &Trace{}
	st := &decodeState{tr: tr}
	for sc.Scan() {
		st.lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue // blank lines and comments keep fixtures readable
		}
		if err := st.line(line); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, errf(st.lineNo, "read: %v", err)
	}
	if !st.sawVersion {
		return nil, errf(0, "empty input: missing tmtrace header")
	}
	if !st.sawEnd {
		return nil, errf(0, "truncated: missing `end %d` trailer", len(tr.Events))
	}
	return tr, nil
}

type decodeState struct {
	tr         *Trace
	lineNo     int
	sawVersion bool
	sawWorld   bool
	sawEnd     bool
	seen       map[string]bool // header keys already consumed

	inTxn    []bool // per-thread: inside begin..commit
	txnOps   []int  // per-thread: payload events in the open transaction
	detached []bool
}

func (st *decodeState) line(line string) error {
	f := strings.Fields(line)
	key := f[0]
	if !st.sawVersion {
		if key != "tmtrace" {
			return errf(st.lineNo, "first line must be `tmtrace %d`, got %q", Version, key)
		}
		if len(f) != 2 {
			return errf(st.lineNo, "malformed version line")
		}
		v, err := parseUint(f[1])
		if err != nil {
			return errf(st.lineNo, "malformed version %q", f[1])
		}
		if v != Version {
			return errf(st.lineNo, "unsupported trace version %d (this build reads version %d)", v, Version)
		}
		st.tr.Version = int(v)
		st.sawVersion = true
		return nil
	}
	if st.sawEnd {
		return errf(st.lineNo, "trailing content after `end` trailer")
	}
	switch key {
	case "source", "seed", "knobs", "replay", "world":
		if len(st.tr.Events) > 0 {
			return errf(st.lineNo, "header line %q after the first event", key)
		}
		if st.seen == nil {
			st.seen = map[string]bool{}
		}
		if st.seen[key] {
			return errf(st.lineNo, "duplicate header line %q", key)
		}
		st.seen[key] = true
		return st.header(key, f, line)
	case "ev":
		if !st.sawWorld {
			return errf(st.lineNo, "event before the world declaration")
		}
		if len(st.tr.Events) >= MaxEvents {
			return errf(st.lineNo, "too many events (max %d)", MaxEvents)
		}
		return st.event(f)
	case "end":
		if !st.sawWorld {
			return errf(st.lineNo, "end trailer before the world declaration")
		}
		if len(f) != 2 {
			return errf(st.lineNo, "malformed end trailer")
		}
		n, err := parseUint(f[1])
		if err != nil {
			return errf(st.lineNo, "malformed end count %q", f[1])
		}
		if n != uint64(len(st.tr.Events)) {
			return errf(st.lineNo, "truncated or corrupt: trailer says %d events, log has %d", n, len(st.tr.Events))
		}
		for t, open := range st.inTxn {
			if open {
				return errf(st.lineNo, "thread %d ends inside an open transaction", t)
			}
		}
		st.sawEnd = true
		return nil
	}
	return errf(st.lineNo, "unknown directive %q", key)
}

func (st *decodeState) header(key string, f []string, line string) error {
	switch key {
	case "source":
		if len(f) != 2 {
			return errf(st.lineNo, "malformed source line")
		}
		st.tr.Source = f[1]
	case "seed":
		if len(f) != 2 {
			return errf(st.lineNo, "malformed seed line")
		}
		v, err := parseUint(f[1])
		if err != nil {
			return errf(st.lineNo, "malformed seed %q", f[1])
		}
		st.tr.Seed = v
	case "knobs":
		st.tr.Knobs = strings.TrimSpace(strings.TrimPrefix(line, "knobs"))
	case "replay":
		st.tr.Replay = strings.TrimSpace(strings.TrimPrefix(line, "replay"))
	case "world":
		return st.world(f)
	}
	return nil
}

var worldFields = []string{"threads", "counters", "bufcap", "queue", "stack", "map", "mapkeys", "qcap", "scap", "mcap"}

func (st *decodeState) world(f []string) error {
	if len(f) != 1+len(worldFields) {
		return errf(st.lineNo, "world line needs exactly the fields %s", strings.Join(worldFields, ", "))
	}
	vals := make([]uint64, len(worldFields))
	for i, name := range worldFields {
		kv := strings.SplitN(f[i+1], "=", 2)
		if len(kv) != 2 || kv[0] != name {
			return errf(st.lineNo, "world field %d must be %s=<n>, got %q", i+1, name, f[i+1])
		}
		v, err := parseUint(kv[1])
		if err != nil {
			return errf(st.lineNo, "malformed world field %q", f[i+1])
		}
		vals[i] = v
	}
	w := World{
		Threads: int(vals[0]), Counters: int(vals[1]), BufCap: int(vals[2]),
		HasQueue: vals[3] != 0, HasStack: vals[4] != 0, HasMap: vals[5] != 0,
		MapKeys: int(vals[6]), QueueCap: int(vals[7]), StackCap: int(vals[8]), MapCap: int(vals[9]),
	}
	for i, name := range []string{"queue", "stack", "map"} {
		if vals[3+i] > 1 {
			return errf(st.lineNo, "world field %s must be 0 or 1", name)
		}
	}
	if w.Threads < 1 || w.Threads > MaxThreads {
		return errf(st.lineNo, "threads %d out of range [1, %d]", w.Threads, MaxThreads)
	}
	if w.Counters < 0 || w.Counters > MaxCounters {
		return errf(st.lineNo, "counters %d out of range [0, %d]", w.Counters, MaxCounters)
	}
	for _, c := range []struct {
		name string
		v    uint64
	}{{"bufcap", vals[2]}, {"mapkeys", vals[6]}, {"qcap", vals[7]}, {"scap", vals[8]}, {"mcap", vals[9]}} {
		if c.v > maxCap {
			return errf(st.lineNo, "%s %d out of range [0, %d]", c.name, c.v, maxCap)
		}
	}
	st.tr.World = w
	st.sawWorld = true
	st.inTxn = make([]bool, w.Threads)
	st.txnOps = make([]int, w.Threads)
	st.detached = make([]bool, w.Threads)
	return nil
}

func (st *decodeState) event(f []string) error {
	if len(f) < 3 {
		return errf(st.lineNo, "malformed event line")
	}
	tv, err := parseUint(f[1])
	// Compare in uint64 space: converting first would let indices >= 2^63
	// wrap negative and slip past the range check into a slice index.
	if err != nil || tv >= uint64(st.tr.World.Threads) {
		return errf(st.lineNo, "thread %q out of range [0, %d)", f[1], st.tr.World.Threads)
	}
	t := int(tv)
	if st.detached[t] {
		return errf(st.lineNo, "event after thread %d detached", t)
	}
	ev := Event{Thread: t}
	args := f[3:]
	switch f[2] {
	case "begin":
		if st.inTxn[t] {
			return errf(st.lineNo, "nested begin on thread %d", t)
		}
		if len(args) != 0 {
			return errf(st.lineNo, "begin takes no operands")
		}
		ev.Kind = Begin
		st.inTxn[t] = true
		st.txnOps[t] = 0
	case "commit":
		if !st.inTxn[t] {
			return errf(st.lineNo, "commit without begin on thread %d", t)
		}
		if st.txnOps[t] == 0 {
			return errf(st.lineNo, "empty transaction on thread %d", t)
		}
		if len(args) != 0 {
			return errf(st.lineNo, "commit takes no operands")
		}
		ev.Kind = Commit
		st.inTxn[t] = false
	case "read":
		if !st.inTxn[t] {
			return errf(st.lineNo, "read outside a transaction on thread %d", t)
		}
		ev.Kind = Read
		if err := st.readOperands(&ev, args); err != nil {
			return err
		}
		st.txnOps[t]++
	case "write":
		if !st.inTxn[t] {
			return errf(st.lineNo, "write outside a transaction on thread %d", t)
		}
		ev.Kind = Write
		if err := st.writeOperands(&ev, args); err != nil {
			return err
		}
		st.txnOps[t]++
	case "del":
		if !st.inTxn[t] {
			return errf(st.lineNo, "del outside a transaction on thread %d", t)
		}
		if len(args) != 2 || args[0] != "m" {
			return errf(st.lineNo, "del takes `m <key>`")
		}
		k, err := parseUint(args[1])
		if err != nil {
			return errf(st.lineNo, "malformed map key %q", args[1])
		}
		if !st.tr.World.HasMap {
			return errf(st.lineNo, "map event but the world has no map")
		}
		ev.Kind, ev.Obj, ev.K = Del, Map, k
		st.txnOps[t]++
	case "abort":
		if st.inTxn[t] {
			return errf(st.lineNo, "runtime event inside a transaction on thread %d", t)
		}
		if len(args) != 1 || !validAbortArg(args[0]) {
			return errf(st.lineNo, "abort takes one reason (conflict, capacity, spurious, explicit, restart)")
		}
		ev.Kind, ev.Arg = Abort, args[0]
	case "block", "wake":
		if st.inTxn[t] {
			return errf(st.lineNo, "runtime event inside a transaction on thread %d", t)
		}
		if len(args) != 0 {
			return errf(st.lineNo, "%s takes no operands", f[2])
		}
		if f[2] == "block" {
			ev.Kind = Block
		} else {
			ev.Kind = Wake
		}
	case "detach":
		if st.inTxn[t] {
			return errf(st.lineNo, "detach inside a transaction on thread %d", t)
		}
		if len(args) != 0 {
			return errf(st.lineNo, "detach takes no operands")
		}
		ev.Kind = Detach
		st.detached[t] = true
	default:
		return errf(st.lineNo, "unknown event kind %q", f[2])
	}
	st.tr.Events = append(st.tr.Events, ev)
	return nil
}

func (st *decodeState) readOperands(ev *Event, args []string) error {
	if len(args) == 0 {
		return errf(st.lineNo, "read needs an object")
	}
	switch args[0] {
	case "c":
		if len(args) != 2 {
			return errf(st.lineNo, "read c takes `<index>`")
		}
		idx, err := parseUint(args[1])
		if err != nil || idx >= uint64(st.tr.World.Counters) {
			return errf(st.lineNo, "counter index %q out of range [0, %d)", args[1], st.tr.World.Counters)
		}
		ev.Obj, ev.K = Counter, idx
		return nil
	case "buf", "q", "s":
		if len(args) != 1 {
			return errf(st.lineNo, "read %s takes no operands", args[0])
		}
		return st.structObj(ev, args[0])
	}
	return errf(st.lineNo, "unknown read object %q", args[0])
}

func (st *decodeState) writeOperands(ev *Event, args []string) error {
	if len(args) == 0 {
		return errf(st.lineNo, "write needs an object")
	}
	switch args[0] {
	case "c":
		if len(args) != 4 || (args[2] != "+" && args[2] != "-") {
			return errf(st.lineNo, "write c takes `<index> +|- <delta>`")
		}
		idx, err := parseUint(args[1])
		if err != nil || idx >= uint64(st.tr.World.Counters) {
			return errf(st.lineNo, "counter index %q out of range [0, %d)", args[1], st.tr.World.Counters)
		}
		d, err := parseUint(args[3])
		if err != nil || d == 0 {
			return errf(st.lineNo, "counter delta %q must be a positive integer", args[3])
		}
		ev.Obj, ev.K, ev.V, ev.Neg = Counter, idx, d, args[2] == "-"
		return nil
	case "buf", "q", "s":
		if len(args) != 2 {
			return errf(st.lineNo, "write %s takes `<value>`", args[0])
		}
		v, err := parseUint(args[1])
		if err != nil {
			return errf(st.lineNo, "malformed value %q", args[1])
		}
		ev.V = v
		return st.structObj(ev, args[0])
	case "m":
		if len(args) != 3 {
			return errf(st.lineNo, "write m takes `<key> <value>`")
		}
		k, err := parseUint(args[1])
		if err != nil {
			return errf(st.lineNo, "malformed map key %q", args[1])
		}
		v, err := parseUint(args[2])
		if err != nil {
			return errf(st.lineNo, "malformed map value %q", args[2])
		}
		if !st.tr.World.HasMap {
			return errf(st.lineNo, "map event but the world has no map")
		}
		ev.Obj, ev.K, ev.V = Map, k, v
		return nil
	}
	return errf(st.lineNo, "unknown write object %q", args[0])
}

func (st *decodeState) structObj(ev *Event, name string) error {
	w := &st.tr.World
	switch name {
	case "buf":
		if w.BufCap == 0 {
			return errf(st.lineNo, "buffer event but the world has no buffer")
		}
		ev.Obj = Buf
	case "q":
		if !w.HasQueue {
			return errf(st.lineNo, "queue event but the world has no queue")
		}
		ev.Obj = Queue
	case "s":
		if !w.HasStack {
			return errf(st.lineNo, "stack event but the world has no stack")
		}
		ev.Obj = Stack
	}
	return nil
}

func validAbortArg(s string) bool {
	switch s {
	case "conflict", "capacity", "spurious", "explicit", "restart":
		return true
	}
	return false
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(s, 10, 64)
}
