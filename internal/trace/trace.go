// Package trace defines the recorded-trace format of the differential
// harness: an append-only event log that captures one concurrent
// execution — the per-thread programs it ran plus the dynamic control
// transfers the TM driver saw — in a form that replays deterministically
// through every engine × mechanism against the sequential oracle.
//
// A trace has two layers. Program events (begin / read / write / del /
// commit) are emitted by the workload layer once per completed operation,
// in each thread's program order; grouping them begin..commit per thread
// reconstructs the thread programs exactly, which is what makes replay
// possible and the record→replay digest round-trip exact. Runtime events
// (abort / block / wake / detach) are emitted by the tm driver through
// the System.Tracer hook and record what actually happened — which
// attempts aborted, who slept, who woke — as commentary that a replay
// does not re-enforce (scheduling belongs to the engines) but that turns
// a one-off failing run into a readable, committable artifact.
//
// The wire format is line-oriented text (versioned header, one event per
// line, an `end <count>` trailer that detects truncation), so fixtures
// under testdata/ diff cleanly in review. Package harness owns the
// record/replay glue: it maps its scenario ops onto these events and
// reconstructs scenarios from them.
package trace

import (
	"fmt"
	"sync"

	"tmsync/internal/tm"
)

// Version is the trace format version this package reads and writes.
const Version = 1

// Kind enumerates the event vocabulary.
type Kind uint8

const (
	// Begin opens one atomic operation on a thread.
	Begin Kind = iota
	// Read is a transactional read: a blocking take from a structure
	// (buf/q/s) or a counter read inside a read-heavy transaction.
	Read
	// Write is a transactional write: a structure put (with value), a map
	// put (key and value), or a counter delta (signed).
	Write
	// Del removes a map key.
	Del
	// Commit closes the operation opened by Begin.
	Commit
	// Abort records an aborted or restarted attempt (runtime event).
	Abort
	// Block records the thread going to sleep under a condition-
	// synchronization mechanism (runtime event).
	Block
	// Wake records the thread waking from Block (runtime event).
	Wake
	// Detach records thread teardown; it must be the thread's last event.
	Detach
)

var kindNames = [...]string{"begin", "read", "write", "del", "commit", "abort", "block", "wake", "detach"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Runtime reports whether the kind is driver commentary rather than part
// of a thread's program.
func (k Kind) Runtime() bool { return k >= Abort }

// Obj names the shared object a Read/Write/Del event touches.
type Obj uint8

const (
	// None is the object of events that touch nothing (begin, commit,
	// runtime events).
	None Obj = iota
	// Counter is one cell of the shared counter array (K = index).
	Counter
	// Buf is the bounded buffer.
	Buf
	// Queue is the FIFO queue.
	Queue
	// Stack is the LIFO stack.
	Stack
	// Map is the hash map (K = key).
	Map
)

var objNames = [...]string{"", "c", "buf", "q", "s", "m"}

func (o Obj) String() string {
	if int(o) < len(objNames) {
		return objNames[o]
	}
	return fmt.Sprintf("obj(%d)", o)
}

// Event is one log record.
type Event struct {
	// Thread is the scenario-level thread index the event belongs to.
	Thread int
	Kind   Kind
	Obj    Obj
	// K is the counter index or map key.
	K uint64
	// V is the written value, or the counter delta magnitude.
	V uint64
	// Neg marks a negative counter delta (the taking half of a transfer).
	Neg bool
	// Arg annotates runtime events (the abort reason).
	Arg string
}

// World is the shared-state geometry a trace's program runs over. It
// mirrors the differential harness's scenario world and carries every
// field the scenario digest covers, so a reconstructed program fingerprints
// identically to the one that was recorded.
type World struct {
	Threads  int
	Counters int
	BufCap   int // 0 = no bounded buffer
	HasQueue bool
	HasStack bool
	HasMap   bool
	MapKeys  int
	QueueCap int
	StackCap int
	MapCap   int
}

// Trace is one decoded (or under-construction) event log.
type Trace struct {
	Version int
	// Source names where the trace came from ("gen-42", "tmbench/buffer").
	Source string
	// Seed is the generator seed that produced the recorded program, when
	// there was one (0 otherwise).
	Seed uint64
	// Knobs is the performance-knob stamp of the recorded run, in the
	// key=value form package harness encodes; replay runs under the same
	// knobs unless overridden.
	Knobs string
	// Replay carries extra generator flags needed to regenerate the
	// program from Seed (the scenario's ReplayArgs), when any.
	Replay string
	World  World
	Events []Event
}

// AbortReasonName renders a TraceAbort argument for the log.
func AbortReasonName(arg uint64) string {
	switch arg {
	case uint64(tm.AbortConflict):
		return "conflict"
	case uint64(tm.AbortCapacity):
		return "capacity"
	case uint64(tm.AbortSpurious):
		return "spurious"
	case uint64(tm.AbortExplicit):
		return "explicit"
	case tm.TraceRestartArg:
		return "restart"
	}
	return fmt.Sprintf("reason(%d)", arg)
}

// Recorder accumulates one trace from a live run: the workload layer
// appends program-event groups as operations complete, and the tm driver
// appends runtime events through the System.Tracer hook. All methods are
// safe for concurrent use; per-thread event order is append order, which
// for program events is each thread's program order (one group per
// completed op, emitted by the op's own goroutine).
type Recorder struct {
	mu  sync.Mutex
	tr  Trace
	ids map[uint64]int // tm thread ID -> scenario thread index
}

// NewRecorder starts a trace with the given provenance header.
func NewRecorder(source string, seed uint64, knobs, replay string, w World) *Recorder {
	return &Recorder{
		tr:  Trace{Version: Version, Source: source, Seed: seed, Knobs: knobs, Replay: replay, World: w},
		ids: make(map[uint64]int),
	}
}

// Bind associates a tm thread with a scenario thread index, so runtime
// events reported by the driver land on the right program thread. Unbound
// tm threads (the harness's snapshot thread, for instance) are ignored.
func (r *Recorder) Bind(t *tm.Thread, thread int) {
	r.mu.Lock()
	r.ids[t.ID] = thread
	r.mu.Unlock()
}

// Group appends one completed operation's program events atomically, so
// concurrent threads' groups never interleave mid-operation.
func (r *Recorder) Group(evs ...Event) {
	r.mu.Lock()
	r.tr.Events = append(r.tr.Events, evs...)
	r.mu.Unlock()
}

// TraceEvent implements tm.Tracer: runtime events from the driver.
func (r *Recorder) TraceEvent(t *tm.Thread, kind tm.TraceKind, arg uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	thread, ok := r.ids[t.ID]
	if !ok {
		return
	}
	switch kind {
	case tm.TraceAbort:
		r.tr.Events = append(r.tr.Events, Event{Thread: thread, Kind: Abort, Arg: AbortReasonName(arg)})
	case tm.TraceBlock:
		r.tr.Events = append(r.tr.Events, Event{Thread: thread, Kind: Block})
	case tm.TraceWake:
		r.tr.Events = append(r.tr.Events, Event{Thread: thread, Kind: Wake})
	case tm.TraceDetach:
		r.tr.Events = append(r.tr.Events, Event{Thread: thread, Kind: Detach})
	}
}

// Attach installs the recorder as sys's driver tracer. Call before any
// bound thread runs.
func (r *Recorder) Attach(sys *tm.System) { sys.Tracer = r }

// Trace returns the accumulated trace. Call only after the recorded run
// has fully joined.
func (r *Recorder) Trace() *Trace { return &r.tr }
