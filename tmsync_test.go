package tmsync_test

import (
	"sync"
	"testing"
	"time"

	"tmsync"
)

func TestNewAllEngines(t *testing.T) {
	for _, k := range tmsync.EngineKinds {
		sys := tmsync.New(k, tmsync.Config{})
		if sys.Engine.Name() != string(k) {
			t.Errorf("engine name %q for kind %q", sys.Engine.Name(), k)
		}
		thr := sys.NewThread()
		var x uint64
		thr.Atomic(func(tx *tmsync.Tx) { tx.Write(&x, 1) })
		if x != 1 {
			t.Errorf("%s: write lost", k)
		}
	}
}

func TestNewUnknownEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown engine")
		}
	}()
	tmsync.New("quantum", tmsync.Config{})
}

func TestFacadeRetryRoundTrip(t *testing.T) {
	for _, k := range tmsync.EngineKinds {
		t.Run(string(k), func(t *testing.T) {
			sys := tmsync.New(k, tmsync.Config{})
			var flag uint64
			done := make(chan struct{})
			go func() {
				thr := sys.NewThread()
				thr.Atomic(func(tx *tmsync.Tx) {
					if tx.Read(&flag) == 0 {
						tmsync.Retry(tx)
					}
				})
				close(done)
			}()
			for sys.CS.WaitingLen() == 0 {
				time.Sleep(time.Millisecond)
			}
			w := sys.NewThread()
			w.Atomic(func(tx *tmsync.Tx) { tx.Write(&flag, 1) })
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Retry waiter never woke through the facade")
			}
		})
	}
}

func TestFacadeAwaitAndWaitPred(t *testing.T) {
	sys := tmsync.New(tmsync.Lazy, tmsync.Config{})
	var a, b uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		thr := sys.NewThread()
		thr.Atomic(func(tx *tmsync.Tx) {
			if tx.Read(&a) == 0 {
				tmsync.Await(tx, &a)
			}
		})
	}()
	go func() {
		defer wg.Done()
		thr := sys.NewThread()
		thr.Atomic(func(tx *tmsync.Tx) {
			if tx.Read(&b) < 3 {
				tmsync.WaitPred(tx, func(tx *tmsync.Tx, _ []uint64) bool {
					return tx.Read(&b) >= 3
				})
			}
		})
	}()
	for sys.CS.WaitingLen() < 2 {
		time.Sleep(time.Millisecond)
	}
	w := sys.NewThread()
	w.Atomic(func(tx *tmsync.Tx) { tx.Write(&a, 1) })
	w.Atomic(func(tx *tmsync.Tx) { tx.Write(&b, 3) })
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("facade waiters never woke")
	}
}

func TestFacadeCondVar(t *testing.T) {
	sys := tmsync.New(tmsync.Eager, tmsync.Config{})
	cv := tmsync.NewCondVar()
	var ready uint64
	done := make(chan struct{})
	go func() {
		thr := sys.NewThread()
		thr.Atomic(func(tx *tmsync.Tx) {
			if tx.Read(&ready) == 0 {
				cv.Wait(tx)
			}
		})
		close(done)
	}()
	for cv.WaitingLen() == 0 {
		time.Sleep(time.Millisecond)
	}
	s := sys.NewThread()
	s.Atomic(func(tx *tmsync.Tx) {
		tx.Write(&ready, 1)
		cv.Signal(tx)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("condvar waiter never woke through the facade")
	}
}

func TestFacadeRetryOrigSTMOnly(t *testing.T) {
	sys := tmsync.New(tmsync.HTM, tmsync.Config{})
	thr := sys.NewThread()
	defer func() {
		if recover() == nil {
			t.Fatal("RetryOrig under HTM should panic")
		}
	}()
	var x uint64
	thr.Atomic(func(tx *tmsync.Tx) {
		_ = tx.Read(&x)
		tmsync.RetryOrig(tx)
	})
}

func TestHarnessEngineParity(t *testing.T) {
	// The harness enumerates engines by name; it must stay in lockstep
	// with the facade's EngineKinds so "all four engines" means the same
	// thing in both places.
	s := tmsync.GenerateScenario(1, tmsync.ScenarioGenConfig{})
	seen := map[string]bool{}
	for _, r := range tmsync.RunScenario(s) {
		seen[r.Engine] = true
		if !r.Pass {
			t.Errorf("%s", r.String())
		}
	}
	if len(seen) != len(tmsync.EngineKinds) {
		t.Fatalf("harness ran %d engines, facade has %d", len(seen), len(tmsync.EngineKinds))
	}
	for _, k := range tmsync.EngineKinds {
		if !seen[string(k)] {
			t.Errorf("harness never ran engine %q", k)
		}
	}
}

func TestHarnessFacadeFaultDetection(t *testing.T) {
	s := tmsync.GenerateScenario(5, tmsync.ScenarioGenConfig{InjectFault: true})
	caught := false
	for _, r := range tmsync.RunScenario(s) {
		if !r.Pass {
			caught = true
		}
	}
	if !caught {
		t.Fatal("injected fault escaped the facade harness")
	}
}
