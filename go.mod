module tmsync

go 1.24
