// Pipeline: a dedup-style three-stage pipeline (chunk → compress → write)
// whose stages coordinate through transactional queues, each demonstrating
// a different mechanism: the first queue waits with WaitPred (wake only
// when the predicate holds), the second with Await (wake on changes to one
// named address), and the producer throttles with Retry. Run with:
//
//	go run ./examples/pipeline [-engine lazy] [-items 5000]
package main

import (
	"flag"
	"fmt"
	"sync"

	"tmsync"
)

// ring is a minimal transactional ring buffer.
type ring struct {
	slots []uint64
	cap   uint64
	count uint64
	head  uint64
	tail  uint64
}

func newRing(n int) *ring { return &ring{slots: make([]uint64, n), cap: uint64(n)} }

func (r *ring) push(tx *tmsync.Tx, v uint64) {
	t := tx.Read(&r.tail)
	tx.Write(&r.slots[t], v)
	tx.Write(&r.tail, (t+1)%r.cap)
	tx.Write(&r.count, tx.Read(&r.count)+1)
}

func (r *ring) pop(tx *tmsync.Tx) uint64 {
	h := tx.Read(&r.head)
	v := tx.Read(&r.slots[h])
	tx.Write(&r.head, (h+1)%r.cap)
	tx.Write(&r.count, tx.Read(&r.count)-1)
	return v
}

const done = ^uint64(0)

func mix(v uint64, rounds int) uint64 {
	x := v*2654435761 + 1
	for i := 0; i < rounds*16; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x % (done >> 1)
}

func main() {
	engine := flag.String("engine", "lazy", "TM engine: eager | lazy | htm")
	items := flag.Int("items", 5000, "items to push through the pipeline")
	workers := flag.Int("workers", 3, "stage-2 workers")
	flag.Parse()

	sys := tmsync.New(tmsync.EngineKind(*engine), tmsync.Config{})
	q1 := newRing(16)
	q2 := newRing(16)
	var written uint64 // items completed by stage 3

	// WaitPred predicate: queue 1 has data.
	q1NotEmpty := func(tx *tmsync.Tx, _ []uint64) bool { return tx.Read(&q1.count) > 0 }

	var wg sync.WaitGroup
	var sum uint64
	var mu sync.Mutex

	// Stage 2: compressors — wait with WaitPred, publish into q2.
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			for {
				var v uint64
				thr.Atomic(func(tx *tmsync.Tx) {
					if tx.Read(&q1.count) == 0 {
						tmsync.WaitPred(tx, q1NotEmpty)
					}
					v = q1.pop(tx)
					if v == done {
						return
					}
					if tx.Read(&q2.count) == q2.cap {
						tmsync.Retry(tx)
					}
					q2.push(tx, mix(v, 4)+1)
				})
				if v == done {
					return
				}
			}
		}()
	}

	// Stage 3: writer — wait with Await on q2's count word.
	wg.Add(1)
	go func() {
		defer wg.Done()
		thr := sys.NewThread()
		var local uint64
		for n := 0; n < *items; n++ {
			var v uint64
			thr.Atomic(func(tx *tmsync.Tx) {
				if tx.Read(&q2.count) == 0 {
					tmsync.Await(tx, &q2.count)
				}
				v = q2.pop(tx)
				tx.Write(&written, tx.Read(&written)+1)
			})
			local += mix(v, 1)
		}
		mu.Lock()
		sum += local
		mu.Unlock()
	}()

	// Stage 1: chunker — throttle against the writer with Retry.
	const window = 64
	thr := sys.NewThread()
	for n := 0; n < *items; n++ {
		v := uint64(n) + 1
		thr.Atomic(func(tx *tmsync.Tx) {
			if n >= window && tx.Read(&written) < uint64(n-window+1) {
				tmsync.Retry(tx)
			}
			if tx.Read(&q1.count) == q1.cap {
				tmsync.Retry(tx)
			}
			q1.push(tx, v)
		})
	}
	for w := 0; w < *workers; w++ {
		thr.Atomic(func(tx *tmsync.Tx) {
			if tx.Read(&q1.count) == q1.cap {
				tmsync.Retry(tx)
			}
			q1.push(tx, done)
		})
	}
	wg.Wait()

	var want uint64
	for n := 1; n <= *items; n++ {
		want += mix(mix(uint64(n), 4)+1, 1)
	}
	status := "OK"
	if sum != want {
		status = "MISMATCH"
	}
	fmt.Printf("engine=%s pipelined %d items; checksum %x (want %x) — %s\n",
		*engine, *items, sum, want, status)
	fmt.Printf("deschedules=%d wakeups=%d aborts=%d\n",
		sys.Stats.Deschedules.Load(), sys.Stats.Wakeups.Load(), sys.Stats.Aborts.Load())
}
