// Barrier: a reusable sense-reversing barrier built from WaitPred,
// demonstrating §2.3's point that the classic two-wait barrier needs
// restructuring (not simple substitution) to move from condition variables
// to transactional condition synchronization. N workers run a phased
// computation; the barrier guarantees no worker enters phase k+1 before
// all have finished phase k. Run with:
//
//	go run ./examples/barrier [-engine htm] [-workers 4] [-rounds 100]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"

	"tmsync"
)

// barrier is a transactional sense-reversing barrier.
type barrier struct {
	n     uint64
	count uint64
	sense uint64
}

// arrive blocks until all n participants have arrived. sense is the
// caller's private sense word (initially 0).
func (b *barrier) arrive(sys *tmsync.System, thr *tmsync.Thread, sense *uint64) {
	old := *sense
	*sense = 1 - old
	last := false
	thr.Atomic(func(tx *tmsync.Tx) {
		c := tx.Read(&b.count) + 1
		if c == b.n {
			tx.Write(&b.count, 0)
			tx.Write(&b.sense, 1-old)
			last = true
		} else {
			tx.Write(&b.count, c)
		}
	})
	if last {
		return
	}
	flipped := func(tx *tmsync.Tx, args []uint64) bool { return tx.Read(&b.sense) != args[0] }
	thr.Atomic(func(tx *tmsync.Tx) {
		if tx.Read(&b.sense) == old {
			tmsync.WaitPred(tx, flipped, old)
		}
	})
}

func main() {
	engine := flag.String("engine", "htm", "TM engine: eager | lazy | htm")
	workers := flag.Int("workers", 4, "participants")
	rounds := flag.Int("rounds", 200, "barrier crossings")
	flag.Parse()

	sys := tmsync.New(tmsync.EngineKind(*engine), tmsync.Config{})
	bar := &barrier{n: uint64(*workers)}

	// phase[w] is worker w's current round; the barrier invariant is that
	// no two workers' phases ever differ by more than one.
	phases := make([]atomic.Int64, *workers)
	var violations atomic.Int64
	var wg sync.WaitGroup

	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := sys.NewThread()
			var sense uint64
			for r := 0; r < *rounds; r++ {
				phases[id].Store(int64(r))
				for other := range phases {
					d := phases[other].Load() - int64(r)
					if d < -1 || d > 1 {
						violations.Add(1)
					}
				}
				bar.arrive(sys, thr, &sense)
			}
		}(w)
	}
	wg.Wait()

	status := "OK"
	if violations.Load() != 0 {
		status = "BROKEN"
	}
	fmt.Printf("engine=%s workers=%d rounds=%d phase-skew violations=%d — %s\n",
		*engine, *workers, *rounds, violations.Load(), status)
	fmt.Printf("deschedules=%d wakeups=%d serializations=%d\n",
		sys.Stats.Deschedules.Load(), sys.Stats.Wakeups.Load(), sys.Stats.Serializations.Load())
}
