// Datastructures: transactional queue/map composition. A bank of workers
// drains a work queue, publishes results into a transactional map, and a
// collector waits for *specific* keys with WaitPred-backed Map.WaitFor —
// no polling, no condition variables, and the queue-take plus map-put of
// each worker is one atomic transaction (a Retry inside the composition
// unrolls all of it, §1.2). Run with:
//
//	go run ./examples/datastructures [-engine hybrid] [-jobs 200]
package main

import (
	"flag"
	"fmt"
	"sync"

	"tmsync"
)

func mix(v uint64) uint64 {
	x := v*2654435761 + 1
	for i := 0; i < 64; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x%1_000_000_000 + 1
}

func main() {
	engine := flag.String("engine", "hybrid", "TM engine: eager | lazy | htm | hybrid")
	jobs := flag.Int("jobs", 200, "jobs to process")
	workers := flag.Int("workers", 4, "worker goroutines")
	flag.Parse()

	sys := tmsync.New(tmsync.EngineKind(*engine), tmsync.Config{})
	queue := tmsync.NewQueue(tmsync.NewArena(64, tmsync.QueueNodeWords))
	results := tmsync.NewMap(tmsync.NewArena(*jobs+1, tmsync.MapNodeWords), 64)

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			for {
				var job uint64
				thr.Atomic(func(tx *tmsync.Tx) {
					// One atomic step: take a job and publish its result.
					// TakeTx retries (sleeps) while the queue is empty.
					job = queue.TakeTx(tx)
					if job == 0 { // shutdown pill
						return
					}
					results.PutTx(tx, job, mix(job))
				})
				if job == 0 {
					return
				}
			}
		}()
	}

	// Collector: wait for each job's result by key, in order, while the
	// producers are still feeding the queue — WaitFor wakes only when its
	// own key appears, not on unrelated insertions.
	collected := make(chan uint64, 1)
	go func() {
		thr := sys.NewThread()
		var sum uint64
		for j := 1; j <= *jobs; j++ {
			sum += results.WaitFor(thr, uint64(j))
		}
		collected <- sum
	}()

	// Producer: feed jobs, then one shutdown pill per worker.
	main := sys.NewThread()
	for j := 1; j <= *jobs; j++ {
		queue.Put(main, uint64(j))
	}
	sum := <-collected
	for w := 0; w < *workers; w++ {
		queue.Put(main, 0)
	}
	wg.Wait()

	var want uint64
	for j := 1; j <= *jobs; j++ {
		want += mix(uint64(j))
	}
	status := "OK"
	if sum != want {
		status = "MISMATCH"
	}
	fmt.Printf("engine=%s processed %d jobs via queue→map composition; sum %d (want %d) — %s\n",
		*engine, *jobs, sum, want, status)
	fmt.Printf("deschedules=%d wakeups=%d aborts=%d\n",
		sys.Stats.Deschedules.Load(), sys.Stats.Wakeups.Load(), sys.Stats.Aborts.Load())
}
