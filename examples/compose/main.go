// Compose: the dangerous scenario of the paper's §2.2.1 (Algorithm 3).
// An outer transaction produces one element into a bounded buffer and then
// atomically consumes two. A nested wait with Retry unrolls the WHOLE
// composition — observers never see the temporary `inprogress` flag — while
// a transaction-safe condition variable commits the outer transaction at
// the wait point, exposing the partial state. The example runs both and
// reports what a concurrent observer saw. Run with:
//
//	go run ./examples/compose [-engine eager]
package main

import (
	"flag"
	"fmt"
	"sync/atomic"
	"time"

	"tmsync"
	"tmsync/internal/mono"
)

type buffer struct {
	slots []uint64
	cap   uint64
	count uint64
	head  uint64
	tail  uint64
}

func newBuffer(n int) *buffer { return &buffer{slots: make([]uint64, n), cap: uint64(n)} }

func (b *buffer) put(tx *tmsync.Tx, v uint64) {
	t := tx.Read(&b.tail)
	tx.Write(&b.slots[t], v)
	tx.Write(&b.tail, (t+1)%b.cap)
	tx.Write(&b.count, tx.Read(&b.count)+1)
}

func (b *buffer) get(tx *tmsync.Tx) uint64 {
	h := tx.Read(&b.head)
	v := tx.Read(&b.slots[h])
	tx.Write(&b.head, (h+1)%b.cap)
	tx.Write(&b.count, tx.Read(&b.count)-1)
	return v
}

// runComposition runs Produce1Consume2 against an initially-empty buffer:
// the second consume must wait. wait is either Retry-style (atomic) or
// CondVar-style (atomicity-breaking). A concurrent observer polls the
// inprogress flag; a feeder supplies the missing element once the composer
// blocks. Returns how often the observer saw the partial state.
func runComposition(sys *tmsync.System, name string, wait func(tx *tmsync.Tx, b *buffer, cv *tmsync.CondVar)) int {
	b := newBuffer(8)
	var inprogress uint64
	cv := tmsync.NewCondVar()
	doneCh := make(chan [2]uint64, 1)

	go func() {
		thr := sys.NewThread()
		var first, second uint64
		thr.Atomic(func(tx *tmsync.Tx) {
			tx.Write(&inprogress, 1)
			b.put(tx, 77)
			// First consume always succeeds (we just produced).
			first = b.get(tx)
			// Second consume finds the buffer empty and must wait.
			if tx.Read(&b.count) == 0 {
				wait(tx, b, cv)
			}
			second = b.get(tx)
			tx.Write(&inprogress, 0)
		})
		doneCh <- [2]uint64{first, second}
	}()

	obs := sys.NewThread()
	var violations atomic.Int64
	fed := false
	start := mono.Now()
	for {
		var ip uint64
		obs.Atomic(func(tx *tmsync.Tx) { ip = tx.Read(&inprogress) })
		if ip != 0 {
			violations.Add(1)
		}
		if !fed && sys.Stats.Deschedules.Load()+uint64(cv.WaitingLen()) > 0 {
			time.Sleep(5 * time.Millisecond) // let the waiter go to sleep
			obs.Atomic(func(tx *tmsync.Tx) {
				b.put(tx, 55)
				cv.Signal(tx)
			})
			fed = true
		}
		select {
		case pair := <-doneCh:
			fmt.Printf("%-9s consumed (%d,%d); observer saw partial state %d time(s)\n",
				name+":", pair[0], pair[1], violations.Load())
			return int(violations.Load())
		default:
		}
		if start.Elapsed() > 10*time.Second {
			fmt.Printf("%-9s wedged (should not happen)\n", name+":")
			return -1
		}
	}
}

func main() {
	engine := flag.String("engine", "eager", "TM engine: eager | lazy | htm")
	flag.Parse()

	fmt.Println("Produce1Consume2 against an empty buffer (Algorithm 3):")
	fmt.Println()

	sysA := tmsync.New(tmsync.EngineKind(*engine), tmsync.Config{})
	vA := runComposition(sysA, "Retry", func(tx *tmsync.Tx, b *buffer, _ *tmsync.CondVar) {
		tmsync.Retry(tx)
	})

	sysB := tmsync.New(tmsync.EngineKind(*engine), tmsync.Config{})
	vB := runComposition(sysB, "CondVar", func(tx *tmsync.Tx, _ *buffer, cv *tmsync.CondVar) {
		cv.Wait(tx)
	})

	fmt.Println()
	switch {
	case vA == 0 && vB > 0:
		fmt.Println("Retry preserved atomicity; the condition variable broke it —")
		fmt.Println("exactly the contrast motivating the paper's mechanisms (§2.2.1).")
	case vA == 0:
		fmt.Println("Retry preserved atomicity; the condvar race was not observed this run (try again).")
	default:
		fmt.Println("UNEXPECTED: Retry exposed partial state — this is a bug.")
	}
}
