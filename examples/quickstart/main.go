// Quickstart: a multi-producer multi-consumer bounded buffer coordinated
// with Retry — the dynamic-read-set condition synchronization of the
// paper's Figure 2.2 (right column). Run with:
//
//	go run ./examples/quickstart [-engine eager|lazy|htm]
package main

import (
	"flag"
	"fmt"
	"sync"

	"tmsync"
)

// boundedBuffer is the example's shared state: plain Go words accessed
// only through transactions.
type boundedBuffer struct {
	slots    []uint64
	capacity uint64
	count    uint64
	nextProd uint64
	nextCons uint64
}

func (b *boundedBuffer) put(tx *tmsync.Tx, v uint64) {
	// If the buffer is full, undo everything and sleep until something we
	// read changes — no condition variable, no retry loop, no signals.
	if tx.Read(&b.count) == b.capacity {
		tmsync.Retry(tx)
	}
	np := tx.Read(&b.nextProd)
	tx.Write(&b.slots[np], v)
	tx.Write(&b.nextProd, (np+1)%b.capacity)
	tx.Write(&b.count, tx.Read(&b.count)+1)
}

func (b *boundedBuffer) get(tx *tmsync.Tx) uint64 {
	if tx.Read(&b.count) == 0 {
		tmsync.Retry(tx)
	}
	nc := tx.Read(&b.nextCons)
	v := tx.Read(&b.slots[nc])
	tx.Write(&b.nextCons, (nc+1)%b.capacity)
	tx.Write(&b.count, tx.Read(&b.count)-1)
	return v
}

func main() {
	engine := flag.String("engine", "eager", "TM engine: eager | lazy | htm")
	flag.Parse()

	sys := tmsync.New(tmsync.EngineKind(*engine), tmsync.Config{})
	buf := &boundedBuffer{slots: make([]uint64, 8), capacity: 8}

	const producers, consumers = 3, 3
	const perProducer = 10000
	total := producers * perProducer

	var sum, want uint64
	var mu sync.Mutex
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := sys.NewThread()
			for i := 0; i < perProducer; i++ {
				v := uint64(id*perProducer+i) + 1
				thr.Atomic(func(tx *tmsync.Tx) { buf.put(tx, v) })
			}
		}(p)
	}
	for i := 1; i <= total; i++ {
		want += uint64(i)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := sys.NewThread()
			var local uint64
			for i := 0; i < total/consumers; i++ {
				var v uint64
				thr.Atomic(func(tx *tmsync.Tx) { v = buf.get(tx) })
				local += v
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	wg.Wait()

	fmt.Printf("engine=%s moved %d elements; checksum %d (want %d) — %s\n",
		*engine, total, sum, want, okStr(sum == want))
	fmt.Printf("commits=%d aborts=%d deschedules=%d wakeups=%d\n",
		sys.Stats.Commits.Load(), sys.Stats.Aborts.Load(),
		sys.Stats.Deschedules.Load(), sys.Stats.Wakeups.Load())
}

func okStr(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}
