// Package tmsync is a Go reproduction of "Practical Condition
// Synchronization for Transactional Memory" (Wang, 2016; the EuroSys 2016
// line of work from Spear's group at Lehigh).
//
// It provides three transactional-memory engines — an eager (undo-log)
// STM, a lazy (redo-log) STM, and a simulated best-effort HTM with a
// serial software fallback — plus the paper's condition-synchronization
// mechanisms layered on a single HTM-friendly Deschedule primitive:
//
//   - Retry:    wait until anything the transaction read changes value.
//   - Await:    wait until one of an explicit list of addresses changes.
//   - WaitPred: wait until a user predicate over shared state holds.
//
// For comparison it also ships transaction-safe condition variables
// (TMCondVar), the original metadata-based Retry (RetryOrig), and an
// abort-and-respin Restart helper — the full set of mechanisms evaluated
// in the paper.
//
// Quick start:
//
//	sys := tmsync.New(tmsync.Eager, tmsync.Config{})
//	thr := sys.NewThread()
//	var count mem-style shared word … (see package examples)
//	thr.Atomic(func(tx *tmsync.Tx) {
//		if tx.Read(addr) == 0 {
//			tmsync.Retry(tx) // sleep until a writer changes something we read
//		}
//		tx.Write(addr, tx.Read(addr)-1)
//	})
package tmsync

import (
	"fmt"

	"tmsync/internal/condvar"
	"tmsync/internal/core"
	"tmsync/internal/htm"
	"tmsync/internal/hybrid"
	"tmsync/internal/stm/eager"
	"tmsync/internal/stm/lazy"
	"tmsync/internal/tm"
)

// EngineKind selects a TM back end.
type EngineKind string

const (
	// Eager is the undo-log STM of Appendix A (GCC "ml-wt" analogue).
	Eager EngineKind = "eager"
	// Lazy is the redo-log, TL2-style STM.
	Lazy EngineKind = "lazy"
	// HTM is the simulated best-effort hardware TM with serial fallback.
	HTM EngineKind = "htm"
	// Hybrid is the simulated best-effort hardware TM with a concurrent
	// lazy-STM fallback instead of a global lock (the HyTM extension of
	// §2.2.6).
	Hybrid EngineKind = "hybrid"
)

// EngineKinds lists all back ends, in the order the paper evaluates them
// (Hybrid is this reproduction's extension).
var EngineKinds = []EngineKind{Eager, Lazy, HTM, Hybrid}

// Config re-exports the runtime configuration.
type Config = tm.Config

// Tx is a transaction handle passed to atomic blocks.
type Tx = tm.Tx

// Thread is a per-worker handle; each goroutine running transactions owns
// exactly one.
type Thread = tm.Thread

// Pred is a WaitPred wakeup predicate.
type Pred = core.Pred

// System bundles a TM instance with its condition-synchronization runtime.
type System struct {
	*tm.System
	CS *core.CondSync
}

// New builds a System with the chosen engine. STM engines default to
// privatization safety (quiescence), matching the paper's
// privatization-safe configurations.
func New(kind EngineKind, cfg Config) *System {
	var mk func(*tm.System) tm.Engine
	switch kind {
	case Eager:
		mk = eager.New
		cfg.Quiesce = true
	case Lazy:
		mk = lazy.New
		cfg.Quiesce = true
	case HTM:
		mk = htm.New
	case Hybrid:
		mk = hybrid.New
		cfg.Quiesce = true // software-mode commits are privatization-safe
	default:
		panic(fmt.Sprintf("tmsync: unknown engine %q", kind))
	}
	sys := tm.NewSystem(cfg, mk)
	cs := core.Enable(sys)
	return &System{System: sys, CS: cs}
}

// Retry suspends the transaction until some location it read changes value
// (Algorithm 5). The transaction is fully rolled back first; on wakeup it
// re-executes from the top of the atomic block.
func Retry(tx *Tx) { core.Retry(tx) }

// Await suspends the transaction until one of addrs — which it must have
// read — changes value (Algorithm 6).
func Await(tx *Tx, addrs ...*uint64) { core.Await(tx, addrs...) }

// WaitPred suspends the transaction until pred(args) holds (Algorithm 7).
func WaitPred(tx *Tx, pred Pred, args ...uint64) { core.WaitPred(tx, pred, args...) }

// RetryOrig is the original metadata-based Retry (Algorithm 1); STM only.
func RetryOrig(tx *Tx) { core.RetryOrig(tx) }

// CondVar is a transaction-safe condition variable (the paper's TMCondVar
// baseline): Wait commits the in-flight transaction — breaking atomicity —
// sleeps, and re-executes the atomic block; Signal and Broadcast are
// deferred until the signalling transaction commits.
type CondVar = condvar.Var

// NewCondVar returns an empty transaction-safe condition variable.
func NewCondVar() *CondVar { return condvar.New() }
