package tmsync_test

// Smoke tests for the runnable surfaces of the repository: every program
// under examples/ and cmd/ is compiled once and executed with a small
// workload, so a refactor of the engines or mechanisms cannot silently
// break a run path no unit test happens to cover. Each run asserts exit
// status 0 and, where the program prints a verdict, the expected marker
// in its output.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildDir compiles every main package once per test binary invocation.
var buildDir struct {
	path string
	err  error
	done bool
}

func smokeBinaries(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	if !buildDir.done {
		buildDir.done = true
		dir, err := os.MkdirTemp("", "tmsync-smoke")
		if err != nil {
			buildDir.err = err
		} else {
			buildDir.path = dir
			cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./...")
			cmd.Dir = repoRoot(t)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildDir.err = &buildError{out: string(out), err: err}
			}
		}
	}
	if buildDir.err != nil {
		t.Fatalf("building binaries: %v", buildDir.err)
	}
	return buildDir.path
}

type buildError struct {
	out string
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + e.out }

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// runSmoke executes one built binary with args and returns its output.
func runSmoke(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(smokeBinaries(t), name)
	cmd := exec.Command(bin, args...)
	cmd.Dir = repoRoot(t) // cmd/loctable reads the repo sources
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatalf("%s %v: wedged", name, args)
	}
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestSmokeExamples(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring the run must print
	}{
		{"quickstart", []string{"-engine", "eager"}, "OK"},
		{"barrier", []string{"-engine", "htm", "-workers", "2", "-rounds", "20"}, ""},
		{"compose", []string{"-engine", "lazy"}, "consumed"},
		{"pipeline", []string{"-engine", "hybrid", "-items", "300", "-workers", "2"}, ""},
		{"datastructures", []string{"-engine", "eager", "-jobs", "40", "-workers", "2"}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := runSmoke(t, c.name, c.args...)
			if c.want != "" && !strings.Contains(out, c.want) {
				t.Errorf("output lacks %q:\n%s", c.want, out)
			}
			lower := strings.ToLower(out)
			for _, bad := range []string{"panic", "wedged", "mismatch"} {
				if strings.Contains(lower, bad) {
					t.Errorf("output contains %q:\n%s", bad, out)
				}
			}
		})
	}
}

func TestSmokeCommands(t *testing.T) {
	benchOut := filepath.Join(t.TempDir(), "bench.json")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"tmcheck", []string{"-n", "3", "-seed", "1"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-stripes", "1"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-stripes", "4", "-mech", "retry-orig", "-engine", "eager"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-unbatched"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-adaptive", "-resize-every", "5"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-coalesce", "2"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-coalesce", "8", "-adaptive"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-coalesce", "8", "-max-delay", "2ms"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-clock", "pof"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-clock", "deferred", "-ext"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-clock", "deferred", "-coalesce", "2"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-zipf", "1.2"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-read-mostly"}, "OK: every engine x mechanism pair matched"},
		{"tmcheck", []string{"-n", "2", "-seed", "1", "-phases", "6:counters,6:readmostly,4:map"}, "OK: every engine x mechanism pair matched"},
		{"tmbench", []string{"-quick", "-threads", "1,2", "-workloads", "buffer,parsec/x264", "-clock-threads", "", "-out", benchOut}, "retry-orig sweep"},
		{"tmbench", []string{"-quick", "-threads", "1,2", "-workloads", "buffer", "-mechs", "retry,await", "-orig-threads", "2", "-adaptive-threads", "2", "-clock-threads", "", "-no-baseline", "-out", benchOut}, "adaptive sweep"},
		{"tmbench", []string{"-quick", "-threads", "1", "-workloads", "buffer", "-mechs", "retry", "-orig-threads", "2", "-adaptive-threads", "", "-coalesce-threads", "2", "-clock-threads", "", "-no-baseline", "-out", benchOut}, "coalesce sweep"},
		{"tmbench", []string{"-quick", "-threads", "1", "-workloads", "buffer", "-mechs", "retry", "-orig-threads", "", "-adaptive-threads", "", "-coalesce-threads", "2", "-latency-threads", "2", "-max-delay", "10ms", "-clock-threads", "", "-no-baseline", "-diff", "", "-out", benchOut}, "latency verdict: HOLDS"},
		{"tmbench", []string{"-quick", "-threads", "1", "-workloads", "buffer", "-mechs", "retry", "-engines", "eager,lazy", "-orig-threads", "", "-adaptive-threads", "", "-coalesce-threads", "", "-latency-threads", "", "-clock-threads", "2", "-no-baseline", "-diff", "", "-out", benchOut}, "clock sweep (2 goroutines, modes global,pof,deferred)"},
		{"tmcheck", []string{"-n", "1", "-seed", "2", "-inject"}, "OK: all injected violations caught"},
		{"tmstress", []string{"-engine", "hybrid", "-mech", "retry", "-threads", "4", "-seconds", "0.3", "-cap", "2"}, "OK"},
		{"boundedbuffer", []string{"-quick", "-engine", "eager", "-ops", "2048", "-trials", "1"}, "bounded buffer performance"},
		{"parsecbench", []string{"-quick", "-engine", "lazy", "-trials", "1", "-bench", "dedup"}, "dedup"},
		{"loctable", nil, "bodytrack"},
		{"tmlint", []string{"./..."}, "tmlint: ok"},
		{"tmlint", []string{"-tests", "./..."}, "tmlint: ok"},
		{"tmlint", []string{"-list"}, "lockorder"},
		{"tmlint", []string{"-list"}, "bumporder"},
		{"tmlint", []string{"-analyzers", "monoclock,padcheck", "./internal/core/"}, "tmlint: ok"},
		{"tmlint", []string{"-analyzers", "bumporder,commitstamp,extrecheck,lockverflow", "./internal/stm/...", "./internal/hybrid/", "./internal/htm/"}, "tmlint: ok"},
		{"tmlint", []string{"-json", "./internal/locktable/"}, `"ok": true`},
	}
	for _, c := range cases {
		name := c.name + strings.Join(c.args, "_")
		t.Run(name, func(t *testing.T) {
			out := runSmoke(t, c.name, c.args...)
			if !strings.Contains(out, c.want) {
				t.Errorf("%s output lacks %q:\n%s", c.name, c.want, out)
			}
		})
	}
}

// TestSmokeTmcheckRecordReplay pins the capture→replay workflow end to
// end through real files: record a few scenarios, replay the directory,
// and replay again with a knob override merged over the stamp.
func TestSmokeTmcheckRecordReplay(t *testing.T) {
	dir := t.TempDir()
	out := runSmoke(t, "tmcheck", "-n", "2", "-seed", "3", "-engine", "eager", "-coalesce", "2", "-record", dir)
	if !strings.Contains(out, "OK: every engine x mechanism pair matched") {
		t.Fatalf("record run did not pass:\n%s", out)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(matches) != 2 {
		t.Fatalf("want 2 recorded traces, got %v (err %v)", matches, err)
	}
	out = runSmoke(t, "tmcheck", "-replay", filepath.Join(dir, "*.trace"))
	if !strings.Contains(out, "OK: every engine x mechanism pair matched") {
		t.Fatalf("replay did not pass:\n%s", out)
	}
	// Knob override merges over the stamped coalesce=2 and must still pass.
	out = runSmoke(t, "tmcheck", "-replay", filepath.Join(dir, "*.trace"), "-coalesce", "8", "-max-delay", "2ms")
	if !strings.Contains(out, "OK: every engine x mechanism pair matched") {
		t.Fatalf("replay with knob override did not pass:\n%s", out)
	}
}

// TestSmokeTmlintUsage pins the lint driver's CLI contract: no package
// patterns (or an unknown analyzer name) is a usage error, exit 2, with
// the usage text on stderr — so the CI gate can distinguish "misinvoked"
// from "found violations" (exit 1) from "clean" (exit 0).
func TestSmokeTmlintUsage(t *testing.T) {
	bin := filepath.Join(smokeBinaries(t), "tmlint")
	for _, args := range [][]string{
		{},
		{"-analyzers", "nosuch", "./..."},
	} {
		t.Run(strings.Join(args, "_"), func(t *testing.T) {
			out, err := exec.Command(bin, args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("tmlint %v: want exit status 2, got err=%v\n%s", args, err, out)
			}
			if !strings.Contains(string(out), "tmlint") {
				t.Errorf("tmlint %v: no diagnostic printed:\n%s", args, out)
			}
		})
	}
}

// TestSmokeTmlintJSON pins the machine-readable output contract: a
// firing fixture package must exit 1 and emit a JSON report whose
// violations carry the analyzer name, position, message, and the //tm:
// directives in effect at the reported line.
func TestSmokeTmlintJSON(t *testing.T) {
	bin := filepath.Join(smokeBinaries(t), "tmlint")
	fixture := filepath.Join("internal", "lint", "testdata", "src", "lockverflow")
	cmd := exec.Command(bin, "-json", "-analyzers", "lockverflow", fixture)
	cmd.Dir = repoRoot(t)
	out, err := cmd.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("tmlint -json on firing fixture: want exit status 1, got err=%v\n%s", err, out)
	}
	var rep struct {
		OK         bool     `json:"ok"`
		Packages   int      `json:"packages"`
		Analyzers  []string `json:"analyzers"`
		Violations []struct {
			Analyzer   string   `json:"analyzer"`
			File       string   `json:"file"`
			Line       int      `json:"line"`
			Col        int      `json:"col"`
			Message    string   `json:"message"`
			Directives []string `json:"directives"`
		} `json:"violations"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("tmlint -json output is not valid JSON: %v\n%s", err, out)
	}
	if rep.OK || rep.Packages != 1 || len(rep.Violations) == 0 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	foundDirective := false
	for _, v := range rep.Violations {
		if v.Analyzer != "lockverflow" {
			t.Errorf("violation names analyzer %q, want lockverflow", v.Analyzer)
		}
		if !strings.Contains(v.File, "lockverflow") || v.Line == 0 || v.Col == 0 || v.Message == "" {
			t.Errorf("violation missing position or message: %+v", v)
		}
		for _, d := range v.Directives {
			if d == "tm:lock-acquire" {
				foundDirective = true
			}
		}
	}
	if !foundDirective {
		t.Errorf("no violation carried the tm:lock-acquire directive context: %+v", rep.Violations)
	}
}

// TestSmokeTmcheckRejectsContradictoryFlags pins the CLI's mode-flag
// validation: contradictory combinations must exit 2 with a diagnostic,
// not silently run only one of the requested modes.
func TestSmokeTmcheckRejectsContradictoryFlags(t *testing.T) {
	bin := filepath.Join(smokeBinaries(t), "tmcheck")
	for _, args := range [][]string{
		{"-n", "1", "-stripes", "4", "-adaptive"},
		{"-n", "1", "-unbatched", "-coalesce", "2"},
		{"-n", "1", "-resize-every", "5"},
		{"-n", "1", "-coalesce", "-3"},
		{"-n", "1", "-max-delay", "2ms"},
		{"-n", "1", "-coalesce", "2", "-max-delay", "0s"},
		{"-n", "1", "-coalesce", "2", "-max-delay", "-1ms"},
		{"-n", "1", "-clock", "bogus"},
		{"-zipf", "-0.5"},
		{"-phases", "10:bogus"},
		{"-phases", "0:counters"},
		{"-read-mostly", "-phases", "5:counters"},
		{"-parsec", "-zipf", "1.1"},
		{"-parsec", "-record", "/tmp/nope"},
		{"-replay", "x.trace", "-seed", "7"},
		{"-replay", "x.trace", "-n", "3"},
		{"-replay", "x.trace", "-threads", "4"},
		{"-replay", "x.trace", "-ops", "9"},
		{"-replay", "x.trace", "-inject"},
		{"-replay", "x.trace", "-parsec"},
		{"-replay", "x.trace", "-zipf", "1.1"},
		{"-replay", "x.trace", "-record", "/tmp/nope"},
		{"-replay", "no-such-file-anywhere.trace"},
	} {
		t.Run(strings.Join(args, "_"), func(t *testing.T) {
			out, err := exec.Command(bin, args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("tmcheck %v: want exit status 2, got err=%v\n%s", args, err, out)
			}
			if !strings.Contains(string(out), "tmcheck:") {
				t.Errorf("tmcheck %v: no diagnostic printed:\n%s", args, out)
			}
		})
	}
}
