package tmsync

import "tmsync/internal/txds"

// Transactional data structures: an arena allocator plus a queue, stack,
// and hash map whose blocking operations are built from the condition-
// synchronization mechanisms (a Take on an empty queue Retries; an
// exhausted arena makes allocators wait for a Free; Map.WaitFor waits on
// one key with WaitPred). Because Retry composes, the *Tx methods of these
// structures can be combined into larger atomic operations — see
// examples/datastructures.

// NilNode is the null node index of an Arena.
const NilNode = txds.Nil

// Arena is a fixed-capacity transactional node allocator.
type Arena = txds.Arena

// NewArena returns an arena of capacity nodes, each nodeWords words wide.
func NewArena(capacity, nodeWords int) *Arena { return txds.NewArena(capacity, nodeWords) }

// Queue is an unbounded transactional FIFO queue (bounded by its arena).
type Queue = txds.Queue

// QueueNodeWords is the arena node width a Queue requires.
const QueueNodeWords = txds.QueueNodeWords

// NewQueue returns an empty queue drawing nodes from arena.
func NewQueue(arena *Arena) *Queue { return txds.NewQueue(arena) }

// Stack is a transactional LIFO stack.
type Stack = txds.Stack

// StackNodeWords is the arena node width a Stack requires.
const StackNodeWords = txds.StackNodeWords

// NewStack returns an empty stack drawing nodes from arena.
func NewStack(arena *Arena) *Stack { return txds.NewStack(arena) }

// Map is a transactional hash map from word keys to word values.
type Map = txds.Map

// MapNodeWords is the arena node width a Map requires.
const MapNodeWords = txds.MapNodeWords

// NewMap returns an empty map with nbuckets chains (power of two).
func NewMap(arena *Arena, nbuckets int) *Map { return txds.NewMap(arena, nbuckets) }
